// Package tempo_test hosts the repository-level benchmarks: one
// testing.B entry per table and figure of the paper's evaluation
// (backed by internal/bench; see EXPERIMENTS.md for full-scale output
// and the paper-vs-measured comparison), plus micro-benchmarks of the
// protocol hot paths.
package tempo_test

import (
	"math/rand"
	"testing"
	"time"

	"tempo/internal/bench"
	"tempo/internal/command"
	"tempo/internal/ids"
	"tempo/internal/promise"
	"tempo/internal/proto"
	"tempo/internal/sim"
	"tempo/internal/tempo"
	"tempo/internal/topology"
	"tempo/internal/workload"
)

// benchOpts shrinks the experiments so `go test -bench .` stays fast; use
// cmd/bench for full-scale runs.
func benchOpts() bench.Options {
	return bench.Options{
		Scale:    256,
		Duration: 500 * time.Millisecond,
		Warmup:   200 * time.Millisecond,
		Seed:     1,
	}
}

// BenchmarkFig5PerSiteLatency regenerates Figure 5 (per-site latency
// fairness across Tempo/Atlas/FPaxos/Caesar).
func BenchmarkFig5PerSiteLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Fig5(benchOpts())
		if i == 0 {
			for _, r := range rows {
				if r.Protocol == "tempo f=1" {
					b.ReportMetric(float64(r.Average)/1e6, "tempo-avg-ms")
				}
			}
		}
	}
}

// BenchmarkFig6TailLatency regenerates Figure 6 (latency percentiles).
func BenchmarkFig6TailLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Fig6(benchOpts())
		if i == 0 {
			for _, r := range rows {
				if r.Protocol == "tempo f=1" && r.ClientsPerSite == 512 {
					b.ReportMetric(float64(r.P999)/1e6, "tempo-p99.9-ms")
				}
			}
		}
	}
}

// BenchmarkFig7ThroughputSweep regenerates Figure 7 (throughput/latency
// under increasing load with the CPU/NIC model).
func BenchmarkFig7ThroughputSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points := bench.Fig7(benchOpts())
		if i == 0 {
			b.ReportMetric(bench.MaxThroughput(points, "tempo f=1", 0.02), "tempo-maxops")
			b.ReportMetric(bench.MaxThroughput(points, "fpaxos f=1", 0.02), "fpaxos-maxops")
		}
	}
}

// BenchmarkFig8Batching regenerates Figure 8 (batching on/off).
func BenchmarkFig8Batching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Fig8(benchOpts())
		if i == 0 {
			r := bench.Find(rows, "fpaxos f=1 batched", true, 256)
			b.ReportMetric(r.MaxTput, "fpaxos-batched-256B-ops")
		}
	}
}

// BenchmarkFig9PartialReplication regenerates Figure 9 (YCSB+T over
// 2/4/6 shards, Tempo vs Janus*).
func BenchmarkFig9PartialReplication(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Fig9(benchOpts())
		if i == 0 {
			b.ReportMetric(bench.FindFig9(rows, "tempo f=1", 6, 0.7, 0.5), "tempo-6shard-ops")
			b.ReportMetric(bench.FindFig9(rows, "janus*", 6, 0.7, 0.5), "janus-w50-6shard-ops")
		}
	}
}

// BenchmarkAblationMBump measures the Figure 4 "faster stability"
// optimization on/off.
func BenchmarkAblationMBump(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.AblationMBump(benchOpts())
	}
}

// --- micro-benchmarks of the protocol hot paths ---
//
// The three named loops below (codec, tracker stability, process steady
// state) are shared with `bench -exp micro`, which emits them to
// BENCH_micro.json so successive PRs track the trajectory.

// BenchmarkCodec measures encode+decode of a fast-path message mix:
// the hand-rolled binary wire codec vs the legacy gob codec. The
// encoded-bytes metric compares wire sizes.
func BenchmarkCodec(b *testing.B) {
	b.Run("binary/encode", func(b *testing.B) { bench.CodecEncodeLoop(b, "binary") })
	b.Run("gob/encode", func(b *testing.B) { bench.CodecEncodeLoop(b, "gob") })
	b.Run("binary/decode", func(b *testing.B) { bench.CodecDecodeLoop(b, "binary") })
	b.Run("gob/decode", func(b *testing.B) { bench.CodecDecodeLoop(b, "gob") })
}

// BenchmarkTrackerStable measures the Theorem 1 stability watermark in
// the advanceExecution pattern: a read per step, occasional insertions.
func BenchmarkTrackerStable(b *testing.B) {
	bench.TrackerStableLoop(b)
}

// BenchmarkProcessSteadyState measures the full per-command protocol
// cost (submit through execution and GC) across 5 replicas, with
// promise gossip flowing. The allocs/op figure is the headline number
// of the hot-path overhaul.
func BenchmarkProcessSteadyState(b *testing.B) {
	bench.SteadyStateLoop(b)
}

// BenchmarkClientRoundTrip measures closed-loop client throughput over
// a real loopback cluster: the legacy one-request-at-a-time gob client
// vs the pipelined binary session with 64 requests in flight. The ops/s
// ratio is the headline number of the client API redesign.
func BenchmarkClientRoundTrip(b *testing.B) {
	b.Run("legacy-gob", bench.ClientLegacyRoundTripLoop)
	b.Run("pipelined-64", bench.ClientPipelinedRoundTripLoop)
}

// BenchmarkTempoCommitPath measures the in-memory cost of one full
// commit+execute round (Table 1's machinery) across 5 replicas.
func BenchmarkTempoCommitPath(b *testing.B) {
	topo := topology.EC2(1)
	reps := make(map[ids.ProcessID]proto.Replica)
	for _, pi := range topo.Processes() {
		reps[pi.ID] = tempo.New(pi.ID, topo, tempo.Config{RecoveryTimeout: time.Hour})
	}
	coordinator := topo.ProcessAt(0, 0)
	type env struct {
		from, to ids.ProcessID
		msg      proto.Message
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cmd := command.NewPut(ids.Dot{Source: coordinator, Seq: uint64(i + 1)}, "k", nil)
		queue := []env{}
		push := func(from ids.ProcessID, acts []proto.Action) {
			for _, a := range acts {
				for _, to := range a.To {
					queue = append(queue, env{from, to, a.Msg})
				}
			}
		}
		push(coordinator, reps[coordinator].Submit(cmd))
		for len(queue) > 0 {
			e := queue[0]
			queue = queue[1:]
			push(e.to, reps[e.to].Handle(e.from, e.msg))
		}
	}
}

// BenchmarkPromiseTrackerStability measures Theorem 1's stability
// computation over a populated tracker.
func BenchmarkPromiseTrackerStability(b *testing.B) {
	tr := promise.NewTracker(5)
	for rank := ids.Rank(1); rank <= 5; rank++ {
		for t := uint64(1); t <= 10000; t += 2 {
			tr.AddDetached(rank, t, t)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.Stable()
	}
}

// BenchmarkSimulatorEventRate measures raw simulator throughput
// (events/sec) on a standard Tempo run.
func BenchmarkSimulatorEventRate(b *testing.B) {
	topo := topology.EC2(1)
	for i := 0; i < b.N; i++ {
		sim.Run(sim.Config{
			Topo: topo,
			NewReplica: func(id ids.ProcessID) proto.Replica {
				return tempo.New(id, topo, tempo.Config{RecoveryTimeout: time.Hour})
			},
			Workload:       workload.NewMicrobench(0.02, 100, rand.New(rand.NewSource(int64(i)))),
			ClientsPerSite: 4,
			Warmup:         100 * time.Millisecond,
			Duration:       400 * time.Millisecond,
			Seed:           int64(i),
		})
	}
}

// BenchmarkZipfian measures the YCSB zipfian sampler.
func BenchmarkZipfian(b *testing.B) {
	z := workload.NewZipfian(1_000_000, 0.7)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Sample(rng)
	}
}
