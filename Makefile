GO ?= go

## GOVULNCHECK_VERSION pins the govulncheck build installed by the CI
## lint job; `make lint` uses whatever is on PATH and skips when absent
## (the container has no module proxy access).
GOVULNCHECK_VERSION ?= golang.org/x/vuln/cmd/govulncheck@v1.1.4

.PHONY: ci fmt vet lint doc-check build test test-race conformance bench-smoke fuzz-smoke bench-micro bench-cluster bench-fault bench-shard bench-wan bench-compare bench-reconfig soak soak-short FORCE

## ci: the main CI job, in order (the race and bench-smoke jobs run in
## parallel in the workflow)
ci: fmt vet lint build test

## lint: the invariant analyzer suite (lockcheck, wirecheck, noalloc,
## ctxcheck, doccheck + curated standard passes) over the whole tree,
## then govulncheck when installed. Required in CI; see
## docs/ARCHITECTURE.md "Checked invariants" for the annotation syntax.
lint: bin/analyze
	$(GO) vet -vettool=bin/analyze ./...
	@if command -v govulncheck >/dev/null 2>&1; then 		govulncheck ./...; 	else 		echo "lint: govulncheck not on PATH; skipping (CI installs $(GOVULNCHECK_VERSION))"; 	fi

## bin/analyze: the unitchecker-based multichecker binary driven via
## `go vet -vettool` (rebuilt every run; the go build cache makes a
## no-change rebuild near-instant)
bin/analyze: FORCE
	$(GO) build -o bin/analyze ./tools/analyze

FORCE:

## doc-check: fail on packages or exported identifiers without doc
## comments (alias for the doccheck pass of the analyzer suite)
doc-check: bin/analyze
	$(GO) vet -vettool=bin/analyze -doccheck ./...

## fmt: fail if any file is not gofmt-clean
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## test-race: the full suite under the race detector (the client demux
## loop and the server completion path are concurrency-heavy)
test-race:
	$(GO) test -race ./...

## conformance: the engine conformance matrix under the race detector —
## every registered consensus engine (tempo, epaxos, fpaxos) through the
## shared suite (linearizability, batching, deadlines, partition+heal,
## durable restart), plus the negative controls proving the suite
## catches broken engines
conformance:
	$(GO) test -race -run 'TestConformance' -count=1 ./internal/cluster/

## bench-smoke: one iteration of every benchmark plus a short run of the
## micro, cluster, fault, shard, compare and reconfig experiments —
## catches perf-path regressions that compile but deadlock or stall, not
## perf itself. The fault run is a real kill-restart of subprocess
## replicas with durable directories; the shard run is a real 2-shard
## partial-replication deployment of psmr groups; the reconfig run
## replaces every site of a live durable cluster (drain + two SIGKILLs)
## with the vulture attached and fails on any consistency violation.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
	$(GO) run ./cmd/bench -exp micro -microout /tmp/bench_micro_smoke.json
	$(GO) run ./cmd/bench -exp cluster -clusterdur 300ms -clusterwarm 200ms \
		-clusterout /tmp/bench_cluster_smoke.json
	$(GO) run ./cmd/bench -exp fault -faultphase 800ms \
		-faultout /tmp/bench_fault_smoke.json
	$(GO) run ./cmd/bench -exp shard -sharddur 400ms -shardwarm 200ms -shardmax 2 \
		-shardout /tmp/bench_shard_smoke.json
	$(GO) run ./cmd/bench -exp compare -comparedur 300ms -comparewarm 200ms \
		-compareout /tmp/bench_compare_smoke.json
	$(GO) run ./cmd/bench -exp reconfig -reconfigphase 1500ms -reconfigavail -1 \
		-reconfigout /tmp/bench_reconfig_smoke.json
	$(MAKE) soak-short

## fuzz-smoke: a short run of each fuzz target
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzIntervalSet -fuzztime 10s ./internal/promise
	$(GO) test -run '^$$' -fuzz FuzzCodecRoundTrip -fuzztime 10s ./internal/tempo
	$(GO) test -run '^$$' -fuzz FuzzShardMsgRoundTrip -fuzztime 10s ./internal/cluster
	$(GO) test -run '^$$' -fuzz FuzzCompareCodecRoundTrip -fuzztime 10s ./internal/engine

## bench-micro: regenerate BENCH_micro.json (commit it when a PR moves a hot path)
bench-micro:
	$(GO) run ./cmd/bench -exp micro

## bench-cluster: regenerate BENCH_cluster.json (loaded TCP cluster sweep)
bench-cluster:
	$(GO) run ./cmd/bench -exp cluster

## bench-fault: regenerate BENCH_fault.json (kill-restart a durable
## replica under load; real subprocesses)
bench-fault:
	$(GO) run ./cmd/bench -exp fault

## bench-shard: regenerate BENCH_shard.json (real sharded TCP clusters,
## 1..4 shards, cross-shard ratios 0/5/50%)
bench-shard:
	$(GO) run ./cmd/bench -exp shard

## bench-wan: regenerate BENCH_wan.json (durable 3-region deployments
## link-shaped by the named chaos profiles)
bench-wan:
	$(GO) run ./cmd/bench -exp wan

## bench-compare: regenerate BENCH_compare.json (tempo vs epaxos vs
## fpaxos on the paper's 5-site ring WAN, conflict ratios 0/5/50%)
bench-compare:
	$(GO) run ./cmd/bench -exp compare

## bench-reconfig: regenerate BENCH_reconfig.json (rolling replacement
## of every site of a live durable cluster — graceful drain plus two
## SIGKILL crash-replaces — under closed-loop load with the consistency
## vulture attached; fails on any violation or on availability below
## 0.75x steady outside the takeover windows)
bench-reconfig:
	$(GO) run ./cmd/bench -exp reconfig

## soak: the full chaos soak — the consistency vulture probing a shaped
## durable cluster for 10 minutes through a partition, a SIGKILL+restart
## and a slow-fsync replica. Exits non-zero on ANY consistency
## violation; the report lands in BENCH_chaos.json.
soak:
	$(GO) run ./cmd/bench -exp chaos -chaosdur 10m

## soak-short: the same soak compressed to 72s (12s per schedule slice)
## so CI exercises the whole fault sequence on every run; still fails on
## any violation.
soak-short:
	$(GO) run ./cmd/bench -exp chaos -chaosdur 72s -chaosout /tmp/bench_chaos_smoke.json
