GO ?= go

.PHONY: ci fmt vet build test test-race bench-smoke fuzz-smoke bench-micro

## ci: everything CI runs, in order
ci: fmt vet build test bench-smoke

## fmt: fail if any file is not gofmt-clean
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## test-race: the full suite under the race detector (the client demux
## loop and the server completion path are concurrency-heavy)
test-race:
	$(GO) test -race ./...

## bench-smoke: one iteration of every benchmark (catches bit-rot, not perf)
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

## fuzz-smoke: a short run of each fuzz target
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzIntervalSet -fuzztime 10s ./internal/promise
	$(GO) test -run '^$$' -fuzz FuzzCodecRoundTrip -fuzztime 10s ./internal/tempo

## bench-micro: regenerate BENCH_micro.json (commit it when a PR moves a hot path)
bench-micro:
	$(GO) run ./cmd/bench -exp micro
