// Command bench regenerates the paper's evaluation tables and figures on
// the discrete-event simulator.
//
// Usage:
//
//	bench -exp fig5                # one experiment
//	bench -exp all -scale 16       # everything, at 1/16 of paper load
//	bench -exp fig7 -scale 4 -duration 4s
//	bench -exp micro               # hot-path micro-benchmarks -> BENCH_micro.json
//	bench -exp cluster             # loaded TCP cluster sweep -> BENCH_cluster.json
//	bench -exp fault               # kill-restart a durable replica -> BENCH_fault.json
//	bench -exp shard               # sharded TCP clusters 1..4 shards -> BENCH_shard.json
//	bench -exp wan                 # durable 3-region clusters under WAN profiles -> BENCH_wan.json
//	bench -exp chaos               # vulture soak under partition+SIGKILL+slow-fsync -> BENCH_chaos.json
//	bench -exp compare             # consensus engines on the ring WAN across conflict ratios -> BENCH_compare.json
//	bench -exp reconfig            # rolling replacement of every site under load -> BENCH_reconfig.json
//
// Experiments: fig5, fig6, fig7, fig8, fig9, ablation-mbump,
// ablation-piggyback, ablation-f, micro, cluster, fault, shard, wan,
// chaos, compare, reconfig, all.
// See EXPERIMENTS.md for the paper-vs-reproduction comparison. The
// micro experiment writes its results to -microout (default
// BENCH_micro.json); the cluster experiment — a real loopback cluster
// driven by concurrent pipelined sessions across server-side batching
// configs — writes -clusterout (default BENCH_cluster.json); the fault
// experiment — real durable replica processes, one SIGKILL'd and
// restarted under load — writes -faultout (default BENCH_fault.json);
// the shard experiment — real durable partial-replication deployments
// (psmr groups) swept over shard counts and cross-shard ratios — writes
// -shardout (default BENCH_shard.json); the wan experiment — durable
// 3-region deployments link-shaped by the named chaos profiles (paper
// EC2 ring, asymmetric transatlantic, flapping link, slow-fsync site) —
// writes -wanout (default BENCH_wan.json); the chaos experiment — the
// consistency vulture soaking a shaped cluster through a partition, a
// SIGKILL+restart and a slow-fsync replica, exiting non-zero on any
// violation — writes -chaosout (default BENCH_chaos.json); the compare
// experiment — every registered consensus engine (tempo, epaxos,
// fpaxos) on the paper's 5-site EC2 topology under the ring chaos
// profile, swept across key-conflict ratios — writes -compareout
// (default BENCH_compare.json); the reconfig experiment — a rolling
// replacement of all three sites of a durable psmr deployment (one
// graceful drain, two SIGKILL + fence replacements) under load with
// the vulture attached, exiting non-zero on any violation or when
// availability outside the takeover windows drops below 0.75x steady
// — writes -reconfigout (default BENCH_reconfig.json). Successive PRs
// track the hot-path, failure-path and scaling trajectory through
// these files.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"tempo/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (fig5..fig9, ablation-*, micro, cluster, fault, all)")
	scale := flag.Int("scale", 16, "divide the paper's client counts by this factor")
	duration := flag.Duration("duration", 2*time.Second, "measured simulated time per run")
	warmup := flag.Duration("warmup", 500*time.Millisecond, "simulated warmup before measurement")
	seed := flag.Int64("seed", 1, "random seed")
	microOut := flag.String("microout", "BENCH_micro.json", "output path for the micro experiment")
	clusterOut := flag.String("clusterout", "BENCH_cluster.json", "output path for the cluster experiment")
	clusterDur := flag.Duration("clusterdur", 2*time.Second, "measured wall-clock time per cluster load point")
	clusterWarm := flag.Duration("clusterwarm", 500*time.Millisecond, "cluster warmup before measurement")
	faultOut := flag.String("faultout", "BENCH_fault.json", "output path for the fault experiment")
	faultPhase := flag.Duration("faultphase", 3*time.Second, "per-phase duration of the fault experiment (steady, outage, post-restart)")
	shardOut := flag.String("shardout", "BENCH_shard.json", "output path for the shard experiment")
	shardDur := flag.Duration("sharddur", 2*time.Second, "measured wall-clock time per shard load point")
	shardWarm := flag.Duration("shardwarm", 500*time.Millisecond, "shard-experiment warmup before measurement")
	shardMax := flag.Int("shardmax", 4, "largest shard count the shard experiment sweeps")
	wanOut := flag.String("wanout", "BENCH_wan.json", "output path for the WAN experiment")
	wanDur := flag.Duration("wandur", 4*time.Second, "measured wall-clock time per WAN profile")
	wanWarm := flag.Duration("wanwarm", 1*time.Second, "WAN-experiment warmup before measurement")
	chaosOut := flag.String("chaosout", "BENCH_chaos.json", "output path for the chaos soak")
	chaosDur := flag.Duration("chaosdur", 60*time.Second, "total chaos-soak duration, fault schedule included")
	chaosProfile := flag.String("chaosprofile", "metro", "chaos link profile the soak replicas run under")
	compareOut := flag.String("compareout", "BENCH_compare.json", "output path for the engine-comparison experiment")
	compareDur := flag.Duration("comparedur", 3*time.Second, "measured wall-clock time per compare load point")
	compareWarm := flag.Duration("comparewarm", 1*time.Second, "compare-experiment warmup before measurement")
	reconfigOut := flag.String("reconfigout", "BENCH_reconfig.json", "output path for the reconfig experiment")
	reconfigPhase := flag.Duration("reconfigphase", 3*time.Second, "steady-state measurement length of the reconfig experiment")
	reconfigAvail := flag.Float64("reconfigavail", 0.75, "reconfig availability gate (avail/steady); negative disables the gate, violations stay fatal")

	// Node-runner mode: the fault and chaos experiments re-exec this
	// binary as the cluster's replica processes, so a SIGKILL is a real
	// process death.
	faultNode := flag.Bool("fault-node", false, "internal: run as one durable replica of the fault experiment")
	chaosNode := flag.Bool("chaos-node", false, "internal: run as one durable shaped replica of the chaos soak")
	reconfigNode := flag.Bool("reconfig-node", false, "internal: run as one durable psmr site of the reconfig experiment")
	nodeID := flag.Int("node-id", 0, "internal: node-runner replica id")
	nodeSite := flag.Int("node-site", 0, "internal: reconfig-node site id")
	nodeAddr := flag.String("node-addr", "", "internal: reconfig-node advertised address (join mode)")
	nodeJoin := flag.String("node-join", "", "internal: reconfig-node join seed replica address")
	nodePeers := flag.String("node-peers", "", "internal: node-runner peer addresses")
	nodeDir := flag.String("node-dir", "", "internal: node-runner data directory")
	nodeFsync := flag.Duration("node-fsync", 2*time.Millisecond, "internal: node-runner WAL fsync interval")
	nodeFsyncDelay := flag.Duration("node-fsync-delay", 0, "internal: chaos-node per-fsync stall (slow-disk fault)")
	nodeProfile := flag.String("node-profile", "lan", "internal: chaos-node link profile")
	flag.Parse()

	if *faultNode {
		if err := bench.RunFaultNode(*nodeID, *nodePeers, *nodeDir, *nodeFsync); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *chaosNode {
		if err := bench.RunChaosNode(*nodeID, *nodePeers, *nodeDir, *nodeFsync, *nodeFsyncDelay, *nodeProfile); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *reconfigNode {
		if err := bench.RunReconfigNode(*nodeSite, *nodePeers, *nodeAddr, *nodeJoin, *nodeDir, *nodeFsync); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	o := bench.Options{
		Scale:    *scale,
		Duration: *duration,
		Warmup:   *warmup,
		Seed:     *seed,
		Out:      os.Stdout,
	}

	run := func(name string, fn func()) {
		start := time.Now()
		fn()
		fmt.Printf("[%s done in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	runMicro := func() {
		results := bench.RunMicro(os.Stdout)
		if err := bench.WriteMicroJSON(*microOut, results); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *microOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *microOut)
	}

	runCluster := func() {
		results, err := bench.RunCluster(os.Stdout, bench.DefaultClusterConfigs(), *clusterDur, *clusterWarm)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cluster experiment: %v\n", err)
			os.Exit(1)
		}
		if err := bench.WriteClusterJSON(*clusterOut, results, *clusterDur); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *clusterOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *clusterOut)
	}

	runFault := func() {
		res, err := bench.RunFault(os.Stdout, bench.FaultOptions{Phase: *faultPhase})
		if err != nil {
			fmt.Fprintf(os.Stderr, "fault experiment: %v\n", err)
			os.Exit(1)
		}
		if err := bench.WriteFaultJSON(*faultOut, res); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *faultOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *faultOut)
	}

	runShard := func() {
		results, err := bench.RunShard(os.Stdout, bench.DefaultShardConfigs(*shardMax), *shardDur, *shardWarm)
		if err != nil {
			fmt.Fprintf(os.Stderr, "shard experiment: %v\n", err)
			os.Exit(1)
		}
		if err := bench.WriteShardJSON(*shardOut, results, *shardDur); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *shardOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *shardOut)
	}

	runWAN := func() {
		results, err := bench.RunWAN(os.Stdout, bench.DefaultWANConfigs(), *wanDur, *wanWarm)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wan experiment: %v\n", err)
			os.Exit(1)
		}
		if err := bench.WriteWANJSON(*wanOut, results, *wanDur); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *wanOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *wanOut)
	}

	runChaos := func() {
		res, err := bench.RunChaos(os.Stdout, bench.ChaosOptions{
			Profile:  *chaosProfile,
			Duration: *chaosDur,
		})
		if werr := bench.WriteChaosJSON(*chaosOut, res); werr != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *chaosOut, werr)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *chaosOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaos soak: %v\n", err)
			os.Exit(1)
		}
	}

	runCompare := func() {
		results, err := bench.RunCompare(os.Stdout, bench.DefaultCompareConfigs(), *compareDur, *compareWarm)
		if err != nil {
			fmt.Fprintf(os.Stderr, "compare experiment: %v\n", err)
			os.Exit(1)
		}
		if err := bench.WriteCompareJSON(*compareOut, results, *compareDur); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *compareOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *compareOut)
	}

	runReconfig := func() {
		res, err := bench.RunReconfig(os.Stdout, bench.ReconfigOptions{Phase: *reconfigPhase, AvailGate: *reconfigAvail})
		if werr := bench.WriteReconfigJSON(*reconfigOut, res); werr != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *reconfigOut, werr)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *reconfigOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "reconfig experiment: %v\n", err)
			os.Exit(1)
		}
	}

	experiments := map[string]func(){
		"fig5":               func() { bench.Fig5(o) },
		"fig6":               func() { bench.Fig6(o) },
		"fig7":               func() { bench.Fig7(o) },
		"fig8":               func() { bench.Fig8(o) },
		"fig9":               func() { bench.Fig9(o) },
		"ablation-mbump":     func() { bench.AblationMBump(o) },
		"ablation-piggyback": func() { bench.AblationPiggyback(o) },
		"ablation-f":         func() { bench.AblationFaultTolerance(o) },
		"micro":              runMicro,
		"cluster":            runCluster,
		"fault":              runFault,
		"shard":              runShard,
		"wan":                runWAN,
		"chaos":              runChaos,
		"compare":            runCompare,
		"reconfig":           runReconfig,
	}
	order := []string{"fig5", "fig6", "fig7", "fig8", "fig9",
		"ablation-mbump", "ablation-piggyback", "ablation-f", "micro", "cluster", "fault", "shard", "wan", "chaos", "compare", "reconfig"}

	if *exp == "all" {
		for _, name := range order {
			run(name, experiments[name])
		}
		return
	}
	fn, ok := experiments[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; known: %v, all\n", *exp, order)
		os.Exit(2)
	}
	run(*exp, fn)
}
