// Command tempo-server runs one Tempo replica as a networked process.
//
// A three-replica local cluster:
//
//	tempo-server -id 1 -peers 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 &
//	tempo-server -id 2 -peers 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 &
//	tempo-server -id 3 -peers 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 &
//	tempo-client -servers 127.0.0.1:7001,127.0.0.1:7002 put greeting hello
//	tempo-client -servers 127.0.0.1:7002 get greeting
//
// The i-th entry of -peers is the address of the replica with -id i.
// Each replica serves peers and clients on the same port: the pipelined
// binary client protocol (the top-level client package), the legacy gob
// client protocol, both peer codecs, and the state-sync protocol used
// by restarting peers are all auto-detected per connection.
//
// With -data-dir the replica is durable: applied commands go to a
// write-ahead log (fsync-batched per -fsync), periodic snapshots bound
// replay length (-snapshot-every), and a killed process restarted on
// the same directory replays its state, catches up from its peers and
// rejoins. See docs/OPERATIONS.md for tuning and the crash-recovery
// runbook.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tempo/internal/cluster"
	"tempo/internal/ids"
	"tempo/internal/tempo"
	"tempo/internal/topology"
)

func main() {
	id := flag.Int("id", 1, "replica id (1-based index into -peers)")
	peers := flag.String("peers", "", "comma-separated replica addresses, in id order")
	f := flag.Int("f", 1, "tolerated failures")
	batchOps := flag.Int("batch-ops", cluster.DefaultBatchOps, "max client ops coalesced into one command (<=1 disables batching)")
	batchWindow := flag.Duration("batch-window", cluster.DefaultBatchWindow, "submit-batch flush window (<=0 disables batching)")
	pprofAddr := flag.String("pprof", "", "listen address for net/http/pprof (e.g. 127.0.0.1:6060); empty disables")
	dataDir := flag.String("data-dir", "", "data directory for WAL+snapshot persistence; empty runs in-memory (a crash loses the replica's local state)")
	fsync := flag.Duration("fsync", 2*time.Millisecond, "WAL fsync batching interval; 0 makes every command durable before its reply")
	snapshotEvery := flag.Int("snapshot-every", cluster.DefaultSnapshotEvery, "applied commands between kvstore snapshots (bounds WAL replay length)")
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			// The default mux carries the pprof handlers via the blank
			// import above.
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof: %v", err)
			}
		}()
		log.Printf("pprof serving on http://%s/debug/pprof/", *pprofAddr)
	}

	addrList := strings.Split(*peers, ",")
	if len(addrList) < 3 {
		log.Fatal("need at least 3 peers (-peers a,b,c)")
	}
	if *id < 1 || *id > len(addrList) {
		log.Fatalf("-id %d out of range 1..%d", *id, len(addrList))
	}

	names := make([]string, len(addrList))
	rtt := make([][]time.Duration, len(addrList))
	for i := range names {
		names[i] = fmt.Sprintf("site-%d", i)
		rtt[i] = make([]time.Duration, len(addrList))
	}
	topo, err := topology.New(topology.Config{
		SiteNames: names, RTT: rtt, NumShards: 1, F: *f,
	})
	if err != nil {
		log.Fatal(err)
	}

	addrs := make(map[ids.ProcessID]string, len(addrList))
	for i, a := range addrList {
		addrs[ids.ProcessID(i+1)] = a
	}
	rep := tempo.New(ids.ProcessID(*id), topo, tempo.Config{})
	node := cluster.NewNode(ids.ProcessID(*id), rep, addrs)
	node.SetBatch(*batchOps, *batchWindow)
	if *dataDir != "" {
		sync := *fsync
		if sync == 0 {
			sync = -1 // flag 0 means "fsync every append"
		}
		if err := node.SetDurable(cluster.DurableConfig{
			Dir:           *dataDir,
			SyncInterval:  sync,
			SnapshotEvery: *snapshotEvery,
		}); err != nil {
			log.Fatal(err)
		}
	}
	if err := node.Start(); err != nil {
		log.Fatal(err)
	}
	if *dataDir != "" {
		log.Printf("tempo replica %d serving on %s (r=%d, f=%d, data-dir=%s)", *id, node.Addr(), len(addrList), *f, *dataDir)
	} else {
		log.Printf("tempo replica %d serving on %s (r=%d, f=%d, in-memory)", *id, node.Addr(), len(addrList), *f)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	node.Close()
}
