// Command tempo-server runs Tempo replicas as a networked process.
//
// # Single-shard mode (-peers)
//
// One replica of a full-replication cluster:
//
//	tempo-server -id 1 -peers 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 &
//	tempo-server -id 2 -peers 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 &
//	tempo-server -id 3 -peers 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 &
//	tempo-client -servers 127.0.0.1:7001,127.0.0.1:7002 put greeting hello
//
// The i-th entry of -peers is the address of the replica with -id i.
// Each replica serves peers and clients on the same port: the pipelined
// binary client protocol (the top-level client package), the legacy gob
// client protocol, both peer codecs, and the state-sync protocol used
// by restarting peers are all auto-detected per connection.
//
// -engine selects the consensus protocol: tempo (default), epaxos or
// fpaxos (internal/engine). The baselines serve the same client
// protocols over the same runtime; every replica of a cluster must run
// the same engine. Durability (-data-dir) is Tempo-only, and sharded
// mode always runs Tempo.
//
// # Sharded mode (-sites)
//
// One server process per site, hosting one replica for every shard the
// site replicates (partial replication, internal/psmr). A 2-shard
// deployment across three sites:
//
//	tempo-server -site 0 -sites a:7001,b:7001,c:7001 -shards 2 &   # on a
//	tempo-server -site 1 -sites a:7001,b:7001,c:7001 -shards 2 &   # on b
//	tempo-server -site 2 -sites a:7001,b:7001,c:7001 -shards 2 &   # on c
//
// All of a site's shards share one listener and one set of inter-site
// links; cross-shard commands are first-class (the client package
// merges per-shard results). -shard-sites restricts which sites
// replicate each shard, e.g. "0,1,2;1,2,3" for two shards over four
// sites; by default every site replicates every shard.
//
// With -data-dir the replicas are durable: applied commands go to a
// write-ahead log (fsync-batched per -fsync, one log per shard in
// sharded mode), periodic snapshots bound replay length
// (-snapshot-every), and a killed process restarted on the same
// directory replays its state, catches up from its peers and rejoins.
// With -metrics-addr the server reports serving counters — ops/s, mean
// batch size, executor queue depth, per-shard submit counts — as JSON.
//
// With -chaos-profile the server's outgoing inter-replica links run
// through a traffic shaper configured from a named WAN profile (lan,
// metro, ring, transatlantic, flap, slow-fsync — internal/chaos),
// adding per-direction delay, jitter, bandwidth and loss; the profile's
// standing faults (link flapping, per-site fsync stalls) start with the
// server, and -chaos-fsync-delay adds an explicit WAL fsync stall on
// top. When -metrics-addr is set the shaper is also runtime-controllable
// over HTTP: GET /chaos shows the profile and live partition state, and
// /chaos/cut, /chaos/heal, /chaos/isolate, /chaos/rejoin,
// /chaos/cut-site, /chaos/heal-site, /chaos/isolate-site and
// /chaos/heal-all inject and lift partitions on this server's outgoing
// links without restarting it.
// See docs/OPERATIONS.md for tuning, the crash-recovery runbook and the
// chaos runbook.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"tempo/internal/chaos"
	"tempo/internal/cluster"
	"tempo/internal/engine"
	"tempo/internal/ids"
	"tempo/internal/membership"
	"tempo/internal/metrics"
	"tempo/internal/psmr"
	"tempo/internal/topology"
)

func main() {
	id := flag.Int("id", 1, "single-shard mode: replica id (1-based index into -peers)")
	engineName := flag.String("engine", engine.Tempo, "consensus engine: tempo, epaxos or fpaxos (single-shard mode; sharded mode always runs tempo)")
	peers := flag.String("peers", "", "single-shard mode: comma-separated replica addresses, in id order")
	site := flag.Int("site", 0, "sharded mode: this server's site (0-based index into -sites)")
	sites := flag.String("sites", "", "sharded mode: comma-separated site addresses; hosts one replica per locally replicated shard")
	shards := flag.Int("shards", 1, "sharded mode: number of shards")
	shardSites := flag.String("shard-sites", "", "sharded mode: per-shard site lists, e.g. \"0,1,2;1,2,3\" (default: every site replicates every shard)")
	joinSeed := flag.String("join", "", "sharded mode: join a running deployment instead of bootstrapping one — fetch the configuration from this seed replica address, take over this site's slot (which must be Dead or Left) at a new incarnation, catch up from peers, then flip Active")
	f := flag.Int("f", 1, "tolerated failures")
	batchOps := flag.Int("batch-ops", cluster.DefaultBatchOps, "max client ops coalesced into one command (<=1 disables batching)")
	batchWindow := flag.Duration("batch-window", cluster.DefaultBatchWindow, "submit-batch flush window (<=0 disables batching)")
	batchPace := flag.Duration("batch-pace", 0, "min interval between batch flushes per shard (bounds each shard's consensus round rate; 0 disables pacing)")
	pprofAddr := flag.String("pprof", "", "listen address for net/http/pprof (e.g. 127.0.0.1:6060); empty disables")
	metricsAddr := flag.String("metrics-addr", "", "listen address for the JSON metrics endpoint (e.g. 127.0.0.1:9090); empty disables")
	dataDir := flag.String("data-dir", "", "data directory for WAL+snapshot persistence; empty runs in-memory (a crash loses the replica's local state)")
	fsync := flag.Duration("fsync", 2*time.Millisecond, "WAL fsync batching interval; 0 makes every command durable before its reply")
	snapshotEvery := flag.Int("snapshot-every", cluster.DefaultSnapshotEvery, "applied commands between kvstore snapshots (bounds WAL replay length)")
	chaosProfile := flag.String("chaos-profile", "", "chaos link profile shaping this server's outgoing inter-replica traffic (lan, metro, ring, transatlantic, flap, slow-fsync); empty disables")
	chaosFsyncDelay := flag.Duration("chaos-fsync-delay", 0, "stall every WAL fsync by this much (slow-disk fault injection; adds to the profile's slow-fsync site, needs -data-dir)")
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			// The default mux carries the pprof handlers via the blank
			// import above.
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof: %v", err)
			}
		}()
		log.Printf("pprof serving on http://%s/debug/pprof/", *pprofAddr)
	}

	var nodes []*cluster.Node
	var closeAll func()
	var ctl *chaosCtl
	var group *psmr.Group
	if *sites != "" {
		if *engineName != engine.Tempo {
			log.Fatalf("-engine %s is single-shard only; sharded deployments (-sites) run tempo", *engineName)
		}
		nodes, closeAll, ctl, group = startSharded(*site, *sites, *shards, *shardSites, *f,
			*batchOps, *batchWindow, *batchPace, *dataDir, *fsync, *snapshotEvery,
			*chaosProfile, *chaosFsyncDelay, *joinSeed)
	} else {
		if *joinSeed != "" {
			log.Fatal("-join requires sharded mode (-sites)")
		}
		nodes, closeAll, ctl = startSingleShard(*id, *engineName, *peers, *f,
			*batchOps, *batchWindow, *batchPace, *dataDir, *fsync, *snapshotEvery,
			*chaosProfile, *chaosFsyncDelay)
	}

	if *metricsAddr != "" {
		serveMetrics(*metricsAddr, nodes, ctl, group)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	closeAll()
}

// chaosCtl carries a server's chaos state: the shaper its outgoing
// inter-replica links run through, for the runtime /chaos endpoints.
type chaosCtl struct {
	profile string
	sh      *cluster.Shaper
	topo    *topology.Topology
}

// newChaosCtl builds the server's shaper from the named profile (nil
// ctl when chaos is disabled) and starts the profile's standing faults.
// It returns the ctl, the effective WAL fsync stall for this site, and
// a stop function folded into the server's shutdown.
func newChaosCtl(profile string, topo *topology.Topology, site ids.SiteID, fsyncDelay time.Duration) (*chaosCtl, time.Duration, func()) {
	if profile == "" {
		return nil, fsyncDelay, func() {}
	}
	p, err := chaos.Lookup(profile)
	if err != nil {
		log.Fatal(err)
	}
	sh := chaos.NewShaper(topo, p)
	stopFaults := p.StartFaults(sh, topo)
	if d := p.FsyncDelayFor(site); d > fsyncDelay {
		fsyncDelay = d
	}
	log.Printf("chaos: profile %q shaping outgoing links (%s)", p.Name, p.Description)
	return &chaosCtl{profile: profile, sh: sh, topo: topo}, fsyncDelay, func() {
		stopFaults()
		sh.Close()
	}
}

// startSingleShard runs one replica of a full-replication cluster (the
// historical mode), on the selected consensus engine.
func startSingleShard(id int, engineName, peers string, f, batchOps int, batchWindow, batchPace time.Duration,
	dataDir string, fsync time.Duration, snapshotEvery int,
	chaosProfile string, chaosFsyncDelay time.Duration) ([]*cluster.Node, func(), *chaosCtl) {
	addrList := strings.Split(peers, ",")
	if len(addrList) < 3 {
		log.Fatal("need at least 3 peers (-peers a,b,c) or a sharded deployment (-sites)")
	}
	if id < 1 || id > len(addrList) {
		log.Fatalf("-id %d out of range 1..%d", id, len(addrList))
	}

	names := make([]string, len(addrList))
	rtt := make([][]time.Duration, len(addrList))
	for i := range names {
		names[i] = fmt.Sprintf("site-%d", i)
		rtt[i] = make([]time.Duration, len(addrList))
	}
	topo, err := topology.New(topology.Config{
		SiteNames: names, RTT: rtt, NumShards: 1, F: f,
	})
	if err != nil {
		log.Fatal(err)
	}

	addrs := make(map[ids.ProcessID]string, len(addrList))
	for i, a := range addrList {
		addrs[ids.ProcessID(i+1)] = a
	}
	// Each single-shard replica is its own site: site index = id-1.
	ctl, fsyncDelay, stopChaos := newChaosCtl(chaosProfile, topo, ids.SiteID(id-1), chaosFsyncDelay)
	rep, err := engine.New(engineName, ids.ProcessID(id), topo, engineRuntimeConfig())
	if err != nil {
		log.Fatal(err)
	}
	if dataDir != "" && engineName != engine.Tempo {
		log.Fatalf("-data-dir requires -engine tempo (%s is not durable)", engineName)
	}
	node := cluster.NewNode(ids.ProcessID(id), rep, addrs)
	node.SetBatch(batchOps, batchWindow)
	if batchPace > 0 {
		node.SetBatchPace(batchPace)
	}
	if ctl != nil {
		node.SetShaper(ctl.sh)
	}
	if dataDir != "" {
		if err := node.SetDurable(cluster.DurableConfig{
			Dir:           dataDir,
			SyncInterval:  durableSync(fsync),
			SnapshotEvery: snapshotEvery,
			FsyncDelay:    fsyncDelay,
		}); err != nil {
			log.Fatal(err)
		}
	}
	if err := node.Start(); err != nil {
		log.Fatal(err)
	}
	mode := "in-memory"
	if dataDir != "" {
		mode = "data-dir=" + dataDir
	}
	log.Printf("%s replica %d serving on %s (r=%d, f=%d, %s)", engineName, id, node.Addr(), len(addrList), f, mode)
	return []*cluster.Node{node}, func() {
		node.Close()
		stopChaos()
	}, ctl
}

// engineRuntimeConfig tunes the baselines for a real, lossy network:
// their recovery machinery (resends, commit/slot catch-up) must be
// armed, unlike in the loss-free simulator runs. Tempo's defaults
// already include recovery.
func engineRuntimeConfig() engine.Config {
	var cfg engine.Config
	cfg.EPaxos.ResendInterval = 250 * time.Millisecond
	cfg.FPaxos.ResendInterval = 250 * time.Millisecond
	return cfg
}

// startSharded runs one site of a partial-replication deployment: one
// hosted replica per shard the site replicates, behind one listener.
// With joinSeed the site joins a running deployment (psmr.Join) instead
// of bootstrapping one.
func startSharded(site int, sites string, shards int, shardSitesSpec string, f, batchOps int,
	batchWindow, batchPace time.Duration, dataDir string, fsync time.Duration, snapshotEvery int,
	chaosProfile string, chaosFsyncDelay time.Duration, joinSeed string) ([]*cluster.Node, func(), *chaosCtl, *psmr.Group) {
	addrList := strings.Split(sites, ",")
	if site < 0 || site >= len(addrList) {
		log.Fatalf("-site %d out of range 0..%d", site, len(addrList)-1)
	}
	names := make([]string, len(addrList))
	rtt := make([][]time.Duration, len(addrList))
	siteAddrs := make(map[ids.SiteID]string, len(addrList))
	for i, a := range addrList {
		names[i] = fmt.Sprintf("site-%d", i)
		rtt[i] = make([]time.Duration, len(addrList))
		siteAddrs[ids.SiteID(i)] = a
	}
	var shardSites [][]int
	if shardSitesSpec != "" {
		var err error
		if shardSites, err = parseShardSites(shardSitesSpec, shards, len(addrList)); err != nil {
			log.Fatal(err)
		}
	}
	topo, err := topology.New(topology.Config{
		SiteNames: names, RTT: rtt, NumShards: shards, F: f, ShardSites: shardSites,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctl, fsyncDelay, stopChaos := newChaosCtl(chaosProfile, topo, ids.SiteID(site), chaosFsyncDelay)
	cfg := psmr.Config{
		Topo:          topo,
		Site:          ids.SiteID(site),
		SiteAddrs:     siteAddrs,
		BatchOps:      batchOps,
		BatchWindow:   batchWindow,
		BatchPace:     batchPace,
		DataDir:       dataDir,
		FsyncInterval: durableSync(fsync),
		SnapshotEvery: snapshotEvery,
		FsyncDelay:    fsyncDelay,
	}
	if ctl != nil {
		cfg.Shaper = ctl.sh
	}
	var g *psmr.Group
	if joinSeed != "" {
		g, err = psmr.Join(cfg, joinSeed, 0)
	} else {
		g, err = psmr.Start(cfg)
	}
	if err != nil {
		log.Fatal(err)
	}
	mode := "in-memory"
	if dataDir != "" {
		mode = "data-dir=" + dataDir
	}
	log.Printf("tempo site %d serving %d shard(s) on %s (sites=%d, f=%d, epoch=%d, %s)",
		site, len(g.Nodes()), g.Addr(), len(addrList), f, g.Epoch(), mode)
	return g.Nodes(), func() {
		g.Close()
		stopChaos()
	}, ctl, g
}

// durableSync maps the -fsync flag onto DurableConfig.SyncInterval
// semantics (flag 0 = "fsync every append" = config -1).
func durableSync(fsync time.Duration) time.Duration {
	if fsync == 0 {
		return -1
	}
	return fsync
}

// parseShardSites parses "0,1,2;1,2,3": one comma-separated site-index
// list per shard, semicolon-separated.
func parseShardSites(spec string, shards, sites int) ([][]int, error) {
	parts := strings.Split(spec, ";")
	if len(parts) != shards {
		return nil, fmt.Errorf("-shard-sites has %d shard entries, want %d", len(parts), shards)
	}
	out := make([][]int, len(parts))
	for i, p := range parts {
		for _, fld := range strings.Split(p, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(fld))
			if err != nil || v < 0 || v >= sites {
				return nil, fmt.Errorf("-shard-sites shard %d: bad site index %q", i, fld)
			}
			out[i] = append(out[i], v)
		}
	}
	return out, nil
}

// serveMetrics exposes the nodes' serving counters as JSON: cumulative
// per-shard counters plus ops/s computed between successive scrapes,
// the membership epoch, per-peer link state, and — on sharded
// deployments — the /membership admin verbs (see mountMembership).
func serveMetrics(addr string, nodes []*cluster.Node, ctl *chaosCtl, group *psmr.Group) {
	start := time.Now()
	rates := metrics.NewRateTracker()
	snapshot := func() any {
		type shardStats struct {
			cluster.Stats
			OpsPerSec     float64                             `json:"ops_per_sec"`
			ReqsPerSec    float64                             `json:"reqs_per_sec"`
			MeanBatchSize float64                             `json:"mean_batch_size"`
			Draining      bool                                `json:"draining"`
			Links         map[ids.ProcessID]cluster.LinkState `json:"links,omitempty"`
		}
		out := struct {
			UptimeSec  float64      `json:"uptime_sec"`
			Epoch      uint64       `json:"epoch"`
			OpsPerSec  float64      `json:"ops_per_sec"`
			ReqsPerSec float64      `json:"reqs_per_sec"`
			Shards     []shardStats `json:"shards"`
		}{UptimeSec: time.Since(start).Seconds()}
		for i, n := range nodes {
			st := n.Stats()
			ss := shardStats{Stats: st, Draining: n.Draining(), Links: n.Links()}
			// Operations vs requests: one multi-op command carries many
			// client ops, so the two rates differ by the mean batch size.
			ss.OpsPerSec = rates.Rate(fmt.Sprintf("ops-%d", i), st.SubmittedOps)
			ss.ReqsPerSec = rates.Rate(fmt.Sprintf("reqs-%d", i), st.CompletedReqs)
			if st.BatchFlushes > 0 {
				ss.MeanBatchSize = float64(st.BatchedOps) / float64(st.BatchFlushes)
			}
			out.OpsPerSec += ss.OpsPerSec
			out.ReqsPerSec += ss.ReqsPerSec
			out.Epoch = max(out.Epoch, n.Epoch())
			out.Shards = append(out.Shards, ss)
		}
		return out
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", metrics.JSONHandler(snapshot))
	if ctl != nil {
		mountChaos(mux, ctl)
	}
	if group != nil {
		mountMembership(mux, group)
	}
	go func() {
		if err := http.ListenAndServe(addr, mux); err != nil {
			log.Printf("metrics: %v", err)
		}
	}()
	log.Printf("metrics serving on http://%s/metrics", addr)
}

// mountMembership wires the dynamic-membership admin verbs beside
// /metrics (sharded deployments only):
//
//	curl 'host:9090/membership'                    # current config epoch
//	curl 'host:9090/membership/join?site=2&addr=d:7001'  # pre-flight a successor
//	curl 'host:9090/membership/drain'              # gracefully leave (this site)
//	curl 'host:9090/membership/remove?site=2'      # fence a crashed site
//
// drain runs the full graceful departure of THIS site — clients
// re-route, pipelines flush, the slot goes Left — and leaves the
// process running but fenced; terminate it afterwards. remove fences a
// crashed site without drain (the operator asserts it is really gone;
// see docs/OPERATIONS.md). join validates that a slot is ready for a
// successor and replies with the flags the new process must start
// with: the join itself runs at process start (-join), because the
// successor has to bootstrap state before it can serve.
func mountMembership(mux *http.ServeMux, g *psmr.Group) {
	writeJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(v)
	}
	timeoutOf := func(r *http.Request) time.Duration {
		if d, err := time.ParseDuration(r.URL.Query().Get("timeout")); err == nil && d > 0 {
			return d
		}
		return 30 * time.Second
	}
	mux.HandleFunc("/membership", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, g.View().State().Config)
	})
	mux.HandleFunc("/membership/join", func(w http.ResponseWriter, r *http.Request) {
		site, err := strconv.Atoi(r.URL.Query().Get("site"))
		if err != nil || site < 0 {
			http.Error(w, "need ?site=<site>[&addr=<host:port>]", http.StatusBadRequest)
			return
		}
		cfg := g.View().State().Config
		m, ok := cfg.Member(ids.SiteID(site))
		if !ok {
			http.Error(w, fmt.Sprintf("site %d not in the configuration", site), http.StatusBadRequest)
			return
		}
		if m.Status != membership.Dead && m.Status != membership.Left {
			http.Error(w, fmt.Sprintf("site %d is %s at epoch %d; drain or remove it first", site, m.Status, cfg.Epoch), http.StatusConflict)
			return
		}
		addr := r.URL.Query().Get("addr")
		if addr == "" {
			addr = "<host:port>"
		}
		writeJSON(w, struct {
			Epoch       uint64 `json:"epoch"`
			Site        int    `json:"site"`
			Status      string `json:"status"`
			Incarnation uint64 `json:"next_incarnation"`
			Start       string `json:"start"`
		}{cfg.Epoch, site, m.Status.String(), m.Incarnation + 1,
			fmt.Sprintf("tempo-server -site %d -sites ...,%s,... -join <live-replica-addr>", site, addr)})
	})
	mux.HandleFunc("/membership/drain", func(w http.ResponseWriter, r *http.Request) {
		err := g.Leave(timeoutOf(r))
		resp := struct {
			Epoch      uint64     `json:"epoch"`
			Site       ids.SiteID `json:"site"`
			Status     string     `json:"status"`
			DrainError string     `json:"drain_error,omitempty"`
		}{g.Epoch(), g.Site(), "left", ""}
		if err != nil {
			resp.DrainError = err.Error()
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("/membership/remove", func(w http.ResponseWriter, r *http.Request) {
		site, err := strconv.Atoi(r.URL.Query().Get("site"))
		if err != nil || site < 0 {
			http.Error(w, "need ?site=<site>", http.StatusBadRequest)
			return
		}
		cfg, err := psmr.Remove(g.Addr(), ids.SiteID(site), timeoutOf(r))
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, cfg)
	})
}

// mountChaos wires the runtime fault-injection endpoints beside
// /metrics. All take query parameters and reply with the shaper state,
// so a curl both acts and shows the result:
//
//	curl 'host:9090/chaos'                        # profile + live state
//	curl 'host:9090/chaos/cut?a=1&b=3'            # sever 1<->3 (oneway=1: only 1->3)
//	curl 'host:9090/chaos/heal?a=1&b=3'           # restore 1<->3
//	curl 'host:9090/chaos/isolate?p=3'            # sever all of 3's links
//	curl 'host:9090/chaos/rejoin?p=3'             # undo isolate
//	curl 'host:9090/chaos/cut-site?a=0&b=1'       # sever every link between two sites
//	curl 'host:9090/chaos/heal-site?s=1'          # reconnect a site to all others
//	curl 'host:9090/chaos/isolate-site?s=1'       # partition a whole site off
//	curl 'host:9090/chaos/heal-all'               # drop every standing cut
//
// Only this server's outgoing links are controlled: partitioning a
// site both ways means hitting the endpoint on every involved server
// (or using the in-process harness, which shares one shaper).
func mountChaos(mux *http.ServeMux, ctl *chaosCtl) {
	state := func(w http.ResponseWriter) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			Profile string              `json:"profile"`
			State   cluster.ShaperState `json:"state"`
		}{ctl.profile, ctl.sh.State()})
	}
	pid := func(r *http.Request, key string) (ids.ProcessID, bool) {
		v, err := strconv.Atoi(r.URL.Query().Get(key))
		return ids.ProcessID(v), err == nil && v > 0
	}
	sid := func(r *http.Request, key string) (ids.SiteID, bool) {
		v, err := strconv.Atoi(r.URL.Query().Get(key))
		return ids.SiteID(v), err == nil && v >= 0
	}
	badParams := func(w http.ResponseWriter, msg string) {
		http.Error(w, msg, http.StatusBadRequest)
	}
	mux.HandleFunc("/chaos", func(w http.ResponseWriter, r *http.Request) { state(w) })
	mux.HandleFunc("/chaos/cut", func(w http.ResponseWriter, r *http.Request) {
		a, oka := pid(r, "a")
		b, okb := pid(r, "b")
		if !oka || !okb {
			badParams(w, "need ?a=<pid>&b=<pid>")
			return
		}
		if r.URL.Query().Get("oneway") != "" {
			ctl.sh.CutOneWay(a, b)
		} else {
			ctl.sh.Cut(a, b)
		}
		state(w)
	})
	mux.HandleFunc("/chaos/heal", func(w http.ResponseWriter, r *http.Request) {
		a, oka := pid(r, "a")
		b, okb := pid(r, "b")
		if !oka || !okb {
			badParams(w, "need ?a=<pid>&b=<pid>")
			return
		}
		ctl.sh.Heal(a, b)
		state(w)
	})
	mux.HandleFunc("/chaos/isolate", func(w http.ResponseWriter, r *http.Request) {
		p, ok := pid(r, "p")
		if !ok {
			badParams(w, "need ?p=<pid>")
			return
		}
		ctl.sh.Isolate(p)
		state(w)
	})
	mux.HandleFunc("/chaos/rejoin", func(w http.ResponseWriter, r *http.Request) {
		p, ok := pid(r, "p")
		if !ok {
			badParams(w, "need ?p=<pid>")
			return
		}
		ctl.sh.Rejoin(p)
		state(w)
	})
	mux.HandleFunc("/chaos/cut-site", func(w http.ResponseWriter, r *http.Request) {
		a, oka := sid(r, "a")
		b, okb := sid(r, "b")
		if !oka || !okb {
			badParams(w, "need ?a=<site>&b=<site>")
			return
		}
		chaos.CutSiteLink(ctl.sh, ctl.topo, a, b)
		state(w)
	})
	mux.HandleFunc("/chaos/heal-site", func(w http.ResponseWriter, r *http.Request) {
		s, ok := sid(r, "s")
		if !ok {
			badParams(w, "need ?s=<site>")
			return
		}
		chaos.HealSite(ctl.sh, ctl.topo, s)
		state(w)
	})
	mux.HandleFunc("/chaos/isolate-site", func(w http.ResponseWriter, r *http.Request) {
		s, ok := sid(r, "s")
		if !ok {
			badParams(w, "need ?s=<site>")
			return
		}
		chaos.IsolateSite(ctl.sh, ctl.topo, s)
		state(w)
	})
	mux.HandleFunc("/chaos/heal-all", func(w http.ResponseWriter, r *http.Request) {
		ctl.sh.HealAll()
		state(w)
	})
}
