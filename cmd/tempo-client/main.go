// Command tempo-client talks to a tempo-server replica.
//
//	tempo-client -server 127.0.0.1:7001 put mykey myvalue
//	tempo-client -server 127.0.0.1:7001 get mykey
//	tempo-client -server 127.0.0.1:7001 bench 1000
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"tempo/internal/cluster"
)

func main() {
	server := flag.String("server", "127.0.0.1:7001", "replica address")
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		log.Fatal("usage: tempo-client [-server addr] put <key> <value> | get <key> | bench <n>")
	}

	c, err := cluster.Dial(*server)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	switch args[0] {
	case "put":
		if len(args) != 3 {
			log.Fatal("put <key> <value>")
		}
		if err := c.Put(args[1], []byte(args[2])); err != nil {
			log.Fatal(err)
		}
		fmt.Println("OK")
	case "get":
		if len(args) != 2 {
			log.Fatal("get <key>")
		}
		v, err := c.Get(args[1])
		if err != nil {
			log.Fatal(err)
		}
		if v == nil {
			fmt.Println("(nil)")
		} else {
			fmt.Println(string(v))
		}
	case "bench":
		n := 1000
		if len(args) == 2 {
			fmt.Sscanf(args[1], "%d", &n)
		}
		start := time.Now()
		for i := 0; i < n; i++ {
			if err := c.Put(fmt.Sprintf("bench-%d", i%64), []byte("x")); err != nil {
				log.Fatal(err)
			}
		}
		el := time.Since(start)
		fmt.Printf("%d ops in %v: %.0f ops/s, %.2fms/op\n",
			n, el.Round(time.Millisecond), float64(n)/el.Seconds(),
			float64(el.Milliseconds())/float64(n))
	default:
		fmt.Fprintf(os.Stderr, "unknown command %q\n", args[0])
		os.Exit(2)
	}
}
