// Command tempo-client talks to tempo-server replicas over the
// pipelined binary client protocol (the top-level client package).
//
//	tempo-client -servers 127.0.0.1:7001 put mykey myvalue
//	tempo-client -servers 127.0.0.1:7001,127.0.0.1:7002 get mykey
//	tempo-client -servers 127.0.0.1:7001 bench -n 10000 -inflight 128
//
// -servers lists replica addresses in -id order (the same order as
// tempo-server's -peers); the session fails over between them. bench
// runs a closed-loop load with the given number of requests in flight
// on one session and reports throughput and latency percentiles.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"tempo/client"
)

func main() {
	servers := flag.String("servers", "127.0.0.1:7001", "comma-separated replica addresses, in id order")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request deadline, propagated to the replica")
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		log.Fatal("usage: tempo-client [-servers a,b,c] put <key> <value> | get <key> | bench [-n N] [-inflight W] [-size B] [-keys K]")
	}

	sess, err := client.Dial(strings.Split(*servers, ",")...)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	switch args[0] {
	case "put":
		if len(args) != 3 {
			log.Fatal("put <key> <value>")
		}
		if err := sess.Put(ctx, args[1], []byte(args[2])); err != nil {
			log.Fatal(err)
		}
		fmt.Println("OK")
	case "get":
		if len(args) != 2 {
			log.Fatal("get <key>")
		}
		v, err := sess.Get(ctx, args[1])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(v))
	case "bench":
		bench(sess, args[1:])
	default:
		fmt.Fprintf(os.Stderr, "unknown command %q\n", args[0])
		os.Exit(2)
	}
}

// bench drives a closed loop of concurrent puts: inflight requests stay
// pending on the session at all times, each measured from submission to
// completion.
func bench(sess *client.Session, args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	n := fs.Int("n", 10000, "total requests")
	inflight := fs.Int("inflight", 128, "requests kept in flight")
	size := fs.Int("size", 100, "value size in bytes")
	keys := fs.Int("keys", 64, "distinct keys")
	fs.Parse(args)

	value := make([]byte, *size)
	lat := make([]time.Duration, 0, *n)
	var mu sync.Mutex
	var failed int
	sem := make(chan struct{}, *inflight)
	var wg sync.WaitGroup
	ctx := context.Background()

	start := time.Now()
	for i := 0; i < *n; i++ {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			t0 := time.Now()
			err := sess.Put(ctx, fmt.Sprintf("bench-%d", i%*keys), value)
			d := time.Since(t0)
			mu.Lock()
			if err != nil {
				failed++
			} else {
				lat = append(lat, d)
			}
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	if len(lat) == 0 {
		log.Fatalf("all %d requests failed", *n)
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(lat)-1))
		return lat[i]
	}
	fmt.Printf("%d ops (%d failed), %d in flight, %dB values\n", *n, failed, *inflight, *size)
	fmt.Printf("elapsed %v: %.0f ops/s\n", elapsed.Round(time.Millisecond), float64(len(lat))/elapsed.Seconds())
	fmt.Printf("latency p50=%v p90=%v p99=%v p99.9=%v max=%v\n",
		pct(0.50).Round(10*time.Microsecond), pct(0.90).Round(10*time.Microsecond),
		pct(0.99).Round(10*time.Microsecond), pct(0.999).Round(10*time.Microsecond),
		lat[len(lat)-1].Round(10*time.Microsecond))
}
