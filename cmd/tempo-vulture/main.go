// Command tempo-vulture is the always-on consistency prober: it writes,
// reads, and verifies versioned tagged keys against a live cluster
// through the public client package, and reports violations plus
// availability windows as JSON.
//
//	tempo-vulture -servers 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 \
//	    -metrics-addr 127.0.0.1:9091 -duration 5m
//
// The i-th entry of -servers is the address of the replica with id i+1
// (the same order as tempo-server's -peers). The prober exits 0 when
// the run observed no consistency violation and 2 otherwise, so it
// slots directly into CI soak jobs; `curl <metrics-addr>` serves the
// live report (see internal/vulture for the probe model and the report
// schema). Fault injectors can mark their actions on the timeline by
// POSTing /event?name=sigkill to the same address, which attributes
// subsequent availability windows to that fault.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tempo/client"
	"tempo/internal/ids"
	"tempo/internal/vulture"
)

func main() {
	servers := flag.String("servers", "", "comma-separated replica addresses, in replica-id order")
	writers := flag.Int("writers", 2, "writer workers (each owns a slice of the tagged keys)")
	readers := flag.Int("readers", 2, "reader workers")
	keys := flag.Int("keys", 64, "tagged keyspace size")
	theta := flag.Float64("theta", 0.9, "zipfian skew with which workers pick keys")
	interval := flag.Duration("interval", 2*time.Millisecond, "pause between operations per worker")
	timeout := flag.Duration("timeout", 2*time.Second, "per-request timeout")
	duration := flag.Duration("duration", 0, "how long to probe; 0 runs until SIGINT/SIGTERM")
	outage := flag.Duration("outage-threshold", 500*time.Millisecond, "success gaps longer than this count as availability windows")
	metricsAddr := flag.String("metrics-addr", "", "listen address for the JSON report (e.g. 127.0.0.1:9091); empty disables")
	flag.Parse()

	if *servers == "" {
		log.Fatal("need -servers a,b,c")
	}
	addrs := make(map[ids.ProcessID]string)
	for i, a := range strings.Split(*servers, ",") {
		addrs[ids.ProcessID(i+1)] = strings.TrimSpace(a)
	}
	v, err := vulture.New(vulture.Config{
		Client: client.Config{
			Addrs:          addrs,
			RequestTimeout: *timeout,
		},
		Writers:         *writers,
		Readers:         *readers,
		Keys:            *keys,
		Theta:           *theta,
		Interval:        *interval,
		OutageThreshold: *outage,
	})
	if err != nil {
		log.Fatal(err)
	}

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/", v.Handler())
		mux.HandleFunc("/event", func(w http.ResponseWriter, r *http.Request) {
			name := r.URL.Query().Get("name")
			if name == "" {
				http.Error(w, "need ?name=", http.StatusBadRequest)
				return
			}
			v.Event(name)
		})
		go func() {
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				log.Printf("metrics: %v", err)
			}
		}()
		log.Printf("report serving on http://%s/", *metricsAddr)
	}

	ctx, cancel := context.WithCancel(context.Background())
	if *duration > 0 {
		ctx, cancel = context.WithTimeout(ctx, *duration)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sig
		cancel()
	}()
	go func() {
		t := time.NewTicker(10 * time.Second)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				r := v.Report()
				log.Printf("ops=%d errors=%d violations=%d outages=%d", r.Ops, r.Errors, r.Violations, len(r.Outages))
			}
		}
	}()

	if err := v.Run(ctx); err != nil {
		log.Fatal(err)
	}
	cancel()
	r := v.Report()
	log.Printf("done: ops=%d errors=%d timeouts=%d violations=%d outages=%d",
		r.Ops, r.Errors, r.Timeouts, r.Violations, len(r.Outages))
	if err := v.Failed(); err != nil {
		log.Printf("FAIL: %v", err)
		os.Exit(2)
	}
}
