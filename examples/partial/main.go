// Partial replication: the state is split into four shards, and a single
// command atomically updates keys living on different shards — the
// multi-partition protocol of §4 (per-shard timestamps, final timestamp =
// max, MStable barriers) makes the cross-shard update linearizable.
package main

import (
	"fmt"
	"log"

	"tempo/internal/command"
	"tempo/internal/core"
)

func main() {
	cluster, err := core.New(core.Options{
		Sites:  []string{"ireland", "n-california", "singapore"},
		Shards: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	topo := cluster.Topology()

	// Find two account keys that live on different shards.
	var alice, bob string
	for i := 0; alice == "" || bob == ""; i++ {
		k := fmt.Sprintf("account-%d", i)
		switch topo.ShardOf(command.Key(k)) {
		case 0:
			if alice == "" {
				alice = k
			}
		case 1:
			if bob == "" {
				bob = k
			}
		}
	}
	fmt.Printf("alice=%s (shard %d), bob=%s (shard %d)\n",
		alice, topo.ShardOf(command.Key(alice)), bob, topo.ShardOf(command.Key(bob)))

	client := cluster.Client(0)
	if err := client.Put(alice, []byte("100")); err != nil {
		log.Fatal(err)
	}
	if err := client.Put(bob, []byte("0")); err != nil {
		log.Fatal(err)
	}

	// One command, two shards: a transfer. Both writes execute under one
	// final timestamp, so no observer can see the money in flight.
	if _, err := client.Execute(
		command.Op{Kind: command.Put, Key: command.Key(alice), Value: []byte("60")},
		command.Op{Kind: command.Put, Key: command.Key(bob), Value: []byte("40")},
	); err != nil {
		log.Fatal(err)
	}

	// A client at another site reads both accounts consistently.
	other := cluster.Client(1)
	a, _ := other.Get(alice)
	b, _ := other.Get(bob)
	fmt.Printf("after transfer: alice=%s bob=%s\n", a, b)
}
