// Partial replication over real TCP: the state is split into four
// shards replicated at three sites (12 processes on loopback), and a
// topology-aware client session routes each command to a replica of the
// shard owning its key. A single command atomically updates keys living
// on different shards — the multi-partition protocol of §4 (per-shard
// timestamps, final timestamp = max, MStable barriers) makes the
// cross-shard update linearizable.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"tempo/client"
	"tempo/internal/cluster"
	"tempo/internal/command"
	"tempo/internal/ids"
	"tempo/internal/tempo"
	"tempo/internal/topology"
)

func main() {
	topo, addrs := startShardedCluster([]string{"ireland", "n-california", "singapore"}, 4)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Find two account keys that live on different shards.
	var alice, bob string
	for i := 0; alice == "" || bob == ""; i++ {
		k := fmt.Sprintf("account-%d", i)
		switch topo.ShardOf(command.Key(k)) {
		case 0:
			if alice == "" {
				alice = k
			}
		case 1:
			if bob == "" {
				bob = k
			}
		}
	}
	fmt.Printf("alice=%s (shard %d), bob=%s (shard %d)\n",
		alice, topo.ShardOf(command.Key(alice)), bob, topo.ShardOf(command.Key(bob)))

	// A session in Ireland: the topology routes each key's command to
	// the co-located replica of the owning shard.
	sess, err := client.New(client.Config{Addrs: addrs, Topo: topo, Site: 0})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	if err := sess.Put(ctx, alice, []byte("100")); err != nil {
		log.Fatal(err)
	}
	if err := sess.Put(ctx, bob, []byte("0")); err != nil {
		log.Fatal(err)
	}

	// One command, two shards: a transfer. Both writes execute under one
	// final timestamp, so no observer can see the money in flight.
	if _, err := sess.Execute(ctx,
		command.Op{Kind: command.Put, Key: command.Key(alice), Value: []byte("60")},
		command.Op{Kind: command.Put, Key: command.Key(bob), Value: []byte("40")},
	); err != nil {
		log.Fatal(err)
	}

	// A session at another site reads both accounts consistently.
	other, err := client.New(client.Config{Addrs: addrs, Topo: topo, Site: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer other.Close()
	a, _ := other.Get(ctx, alice)
	b, _ := other.Get(ctx, bob)
	fmt.Printf("after transfer: alice=%s bob=%s\n", a, b)
}

// startShardedCluster boots one Tempo process per (site, shard) pair on
// loopback and returns the topology plus the address map a
// topology-aware session needs.
func startShardedCluster(sites []string, shards int) (*topology.Topology, map[ids.ProcessID]string) {
	rtt := make([][]time.Duration, len(sites))
	for i := range rtt {
		rtt[i] = make([]time.Duration, len(sites))
	}
	topo, err := topology.New(topology.Config{
		SiteNames: sites, RTT: rtt, NumShards: shards, F: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	addrs := make(map[ids.ProcessID]string)
	lns := make(map[ids.ProcessID]net.Listener)
	for _, pi := range topo.Processes() {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		lns[pi.ID] = ln
		addrs[pi.ID] = ln.Addr().String()
	}
	for _, pi := range topo.Processes() {
		rep := tempo.New(pi.ID, topo, tempo.Config{
			PromiseInterval: 2 * time.Millisecond,
			RecoveryTimeout: time.Hour,
		})
		cluster.NewNode(pi.ID, rep, addrs).StartListener(lns[pi.ID])
	}
	return topo, addrs
}
