// Partial replication over real TCP, the paper's §6.4 deployment shape:
// the state is split into four shards replicated at three sites, and
// each site runs ONE server process (a psmr group) hosting a replica of
// every shard behind a single listener — 3 processes, not 12. A
// topology-aware client session routes single-shard commands to a
// replica of the owning shard, and ops spanning shards become true
// cross-shard transactions: ordered per shard, executed at the maximum
// timestamp across shards (per-shard timestamps + MStable barriers,
// Algorithm 3), with the per-shard result segments merged back into one
// op-ordered result at the client.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"tempo/client"
	"tempo/internal/command"
	"tempo/internal/ids"
	"tempo/internal/psmr"
	"tempo/internal/tempo"
	"tempo/internal/topology"
)

func main() {
	topo, addrs := startSites([]string{"ireland", "n-california", "singapore"}, 4)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Find two account keys that live on different shards.
	var alice, bob string
	for i := 0; alice == "" || bob == ""; i++ {
		k := fmt.Sprintf("account-%d", i)
		switch topo.ShardOf(command.Key(k)) {
		case 0:
			if alice == "" {
				alice = k
			}
		case 1:
			if bob == "" {
				bob = k
			}
		}
	}
	fmt.Printf("alice=%s (shard %d), bob=%s (shard %d)\n",
		alice, topo.ShardOf(command.Key(alice)), bob, topo.ShardOf(command.Key(bob)))

	// A session in Ireland: the topology routes each key's command to
	// the co-located replica of the owning shard.
	sess, err := client.New(client.Config{Addrs: addrs, Topo: topo, Site: 0})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	if err := sess.Put(ctx, alice, []byte("100")); err != nil {
		log.Fatal(err)
	}
	if err := sess.Put(ctx, bob, []byte("0")); err != nil {
		log.Fatal(err)
	}

	// One command, two shards: a transfer that also reads both balances
	// it overwrites. The command is submitted under one id to a replica
	// of alice's shard while a watch rides to bob's; both shards execute
	// at the same final timestamp and the session merges their result
	// segments, so the reads and writes are one atomic step — no
	// observer can see the money in flight.
	vals, err := sess.Execute(ctx,
		command.Op{Kind: command.Get, Key: command.Key(alice)},
		command.Op{Kind: command.Get, Key: command.Key(bob)},
		command.Op{Kind: command.Put, Key: command.Key(alice), Value: []byte("60")},
		command.Op{Kind: command.Put, Key: command.Key(bob), Value: []byte("40")},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transfer read balances atomically: alice=%s bob=%s\n", vals[0], vals[1])

	// A session at another site reads both accounts in one cross-shard
	// command: a consistent snapshot of the pair.
	other, err := client.New(client.Config{Addrs: addrs, Topo: topo, Site: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer other.Close()
	pair, err := other.Execute(ctx,
		command.Op{Kind: command.Get, Key: command.Key(alice)},
		command.Op{Kind: command.Get, Key: command.Key(bob)},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after transfer: alice=%s bob=%s\n", pair[0], pair[1])
}

// startSites boots one psmr group per site on loopback — each hosting
// one Tempo replica per shard behind a single listener — and returns
// the topology plus the per-process address map a topology-aware
// session needs.
func startSites(sites []string, shards int) (*topology.Topology, map[ids.ProcessID]string) {
	rtt := make([][]time.Duration, len(sites))
	for i := range rtt {
		rtt[i] = make([]time.Duration, len(sites))
	}
	topo, err := topology.New(topology.Config{
		SiteNames: sites, RTT: rtt, NumShards: shards, F: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	siteAddrs := make(map[ids.SiteID]string)
	lns := make(map[ids.SiteID]net.Listener)
	for _, site := range topo.Sites() {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		lns[site.ID] = ln
		siteAddrs[site.ID] = ln.Addr().String()
	}
	var wg sync.WaitGroup
	for _, site := range topo.Sites() {
		wg.Add(1)
		go func(id ids.SiteID) {
			defer wg.Done()
			if _, err := psmr.StartListener(psmr.Config{
				Topo:      topo,
				Site:      id,
				SiteAddrs: siteAddrs,
				Tempo: tempo.Config{
					PromiseInterval: 2 * time.Millisecond,
					RecoveryTimeout: time.Hour,
				},
			}, lns[id]); err != nil {
				log.Fatal(err)
			}
		}(site.ID)
	}
	wg.Wait()
	addrs, _, err := psmr.ProcessAddrs(topo, siteAddrs)
	if err != nil {
		log.Fatal(err)
	}
	return topo, addrs
}
