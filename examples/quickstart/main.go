// Quickstart: a five-site geo-replicated key-value store running Tempo
// in-process. Writes and reads are linearizable; any site can serve any
// client with no leader in sight.
package main

import (
	"fmt"
	"log"

	"tempo/internal/core"
)

func main() {
	// Five replicas, placed at the paper's EC2 regions, tolerating one
	// failure; Tempo is the default protocol.
	cluster, err := core.New(core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// A client in Ireland writes...
	ireland := cluster.Client(0)
	if err := ireland.Put("motd", []byte("tempo: ordering by timestamp stability")); err != nil {
		log.Fatal(err)
	}
	fmt.Println("ireland wrote motd")

	// ...and a client in Singapore immediately observes it
	// (linearizability), without any designated leader.
	singapore := cluster.Client(2)
	v, err := singapore.Get("motd")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("singapore read motd = %q\n", v)

	// Conflicting writes from different sites are ordered identically at
	// every replica by their stable timestamps.
	for site := 0; site < 5; site++ {
		c := cluster.Client(site)
		if err := c.Put("counter", []byte{byte(site)}); err != nil {
			log.Fatal(err)
		}
	}
	a, _ := cluster.Client(1).Get("counter")
	b, _ := cluster.Client(4).Get("counter")
	fmt.Printf("counter at canada = %v, at s.paulo = %v (identical: %v)\n",
		a, b, a[0] == b[0])
}
