// Quickstart: a three-replica key-value store over real TCP, driven
// through the public client API. One session pipelines writes and
// reads; any replica serves any client with no leader in sight, and the
// session fails over between replicas.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"tempo/client"
	"tempo/internal/cluster"
	"tempo/internal/command"
	"tempo/internal/ids"
	"tempo/internal/tempo"
	"tempo/internal/topology"
)

func main() {
	addrs := startReplicas(3)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// A session against all three replicas: requests carry ids, so any
	// number can be in flight on one connection.
	sess, err := client.Dial(addrs...)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	if err := sess.Put(ctx, "motd", []byte("tempo: ordering by timestamp stability")); err != nil {
		log.Fatal(err)
	}
	v, err := sess.Get(ctx, "motd")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("motd = %q\n", v)

	// Pipelining: issue 100 writes without waiting, then collect the
	// futures. They share one connection and apply in submission order.
	start := time.Now()
	futs := make([]*client.Future, 100)
	for i := range futs {
		futs[i] = sess.Do(ctx, command.Op{
			Kind: command.Put, Key: "counter", Value: []byte(fmt.Sprint(i + 1)),
		})
	}
	for _, f := range futs {
		if _, err := f.Wait(ctx); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("100 pipelined writes in %v\n", time.Since(start).Round(time.Millisecond))

	// A second session (say, another process) preferring a different
	// replica observes the final write — linearizability, no leader.
	sess2, err := client.Dial(addrs[2], addrs[0], addrs[1])
	if err != nil {
		log.Fatal(err)
	}
	defer sess2.Close()
	n, err := sess2.Get(ctx, "counter")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("counter = %q (read at another replica)\n", n)
}

// startReplicas boots r Tempo replicas on loopback and returns their
// client addresses.
func startReplicas(r int) []string {
	names := make([]string, r)
	rtt := make([][]time.Duration, r)
	for i := range names {
		names[i] = fmt.Sprintf("site-%d", i)
		rtt[i] = make([]time.Duration, r)
	}
	topo, err := topology.New(topology.Config{SiteNames: names, RTT: rtt, NumShards: 1, F: 1})
	if err != nil {
		log.Fatal(err)
	}
	addrs := make(map[ids.ProcessID]string)
	lns := make(map[ids.ProcessID]net.Listener)
	var out []string
	for _, pi := range topo.Processes() {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		lns[pi.ID] = ln
		addrs[pi.ID] = ln.Addr().String()
		out = append(out, ln.Addr().String())
	}
	for _, pi := range topo.Processes() {
		rep := tempo.New(pi.ID, topo, tempo.Config{
			PromiseInterval: 2 * time.Millisecond,
			RecoveryTimeout: time.Hour,
		})
		cluster.NewNode(pi.ID, rep, addrs).StartListener(lns[pi.ID])
	}
	return out
}
