// Geo-replication: reproduce the paper's fairness finding (Figure 5) in
// miniature. The same workload runs against Tempo (leaderless) and
// FPaxos (leader in Ireland) over the five EC2 sites; the per-site mean
// latencies show why leaderless SMR treats clients uniformly while
// leader-based SMR privileges the leader's neighbourhood.
package main

import (
	"fmt"
	"math/rand"
	"time"

	"tempo/internal/fpaxos"
	"tempo/internal/ids"
	"tempo/internal/proto"
	"tempo/internal/sim"
	"tempo/internal/tempo"
	"tempo/internal/topology"
	"tempo/internal/workload"
)

func main() {
	topo := topology.EC2(1)
	protocols := []struct {
		name string
		nr   func(ids.ProcessID) proto.Replica
	}{
		{"tempo (leaderless)", func(id ids.ProcessID) proto.Replica {
			return tempo.New(id, topo, tempo.Config{
				PromiseInterval: 2 * time.Millisecond,
				RecoveryTimeout: time.Hour,
			})
		}},
		{"fpaxos (leader: ireland)", func(id ids.ProcessID) proto.Replica {
			return fpaxos.New(id, topo, fpaxos.Config{})
		}},
	}

	fmt.Println("per-site mean latency, 8 clients/site, 2% conflicts:")
	for _, p := range protocols {
		res := sim.Run(sim.Config{
			Topo:           topo,
			NewReplica:     p.nr,
			Workload:       workload.NewMicrobench(0.02, 100, rand.New(rand.NewSource(1))),
			ClientsPerSite: 8,
			Warmup:         300 * time.Millisecond,
			Duration:       2 * time.Second,
			Seed:           1,
		})
		fmt.Printf("\n%s\n", p.name)
		for _, site := range topo.Sites() {
			fmt.Printf("  %-14s %6.0f ms\n", site.Name,
				float64(res.SiteMean(site.ID))/float64(time.Millisecond))
		}
	}
	fmt.Println("\nFPaxos favours Ireland and its neighbours; Tempo serves every site alike.")
}
