// Recovery, in two acts.
//
// Act 1 — protocol recovery (in-memory, the paper's crash-stop model): a
// replica crashes mid-run; the Ω failure detector settles on a new shard
// leader, the recovery protocol (Algorithm 4) takes over pending
// commands, and the system keeps serving clients at the surviving sites
// — no reconfiguration needed, f=1 of 5 replicas lost.
//
// Act 2 — crash-restart recovery (real TCP cluster, durable nodes): the
// same scenario the tempo-server -data-dir flag exists for. A
// three-replica cluster persists every applied command to a write-ahead
// log with periodic kvstore snapshots; one replica goes down after
// acknowledging writes, comes back on the same data directory, replays
// snapshot+WAL, catches up from its peers, and serves linearizable
// reads of everything — including writes acknowledged while it was
// down.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"
	"time"

	"tempo/client"
	"tempo/internal/cluster"
	"tempo/internal/core"
	"tempo/internal/ids"
	"tempo/internal/tempo"
	"tempo/internal/topology"
)

func main() {
	inMemoryRecovery()
	durableRestart()
}

// inMemoryRecovery is Act 1: Algorithm 4 over the in-process core.
func inMemoryRecovery() {
	ctx := context.Background()
	cluster, err := core.New(core.Options{
		Tempo: tempo.Config{
			PromiseInterval: 5 * time.Millisecond,
			RecoveryTimeout: 20 * time.Millisecond,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	canada := cluster.Client(3)
	if err := canada.Put(ctx, "ledger", []byte("v1")); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote ledger=v1 via canada")

	// Ireland (rank 1, the default Ω choice) fail-stops.
	cluster.Crash(0, 0)
	fmt.Println("ireland crashed")

	// Ω nominates rank 2 (N. California); pending commands coordinated
	// by Ireland are recovered with their original timestamps
	// (Properties 1 and 4 of the paper).
	cluster.SetLeader(2)
	cluster.Settle(10, 20*time.Millisecond)

	// The system remains available for reads and writes.
	if err := canada.Put(ctx, "ledger", []byte("v2")); err != nil {
		log.Fatal(err)
	}
	v, err := cluster.Client(4).Get(ctx, "ledger")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after crash+recovery: ledger=%s (read via s.paulo)\n", v)
}

// durableRestart is Act 2: a real TCP cluster whose nodes persist to
// data directories (the in-process equivalent of running each replica
// as `tempo-server -data-dir ...`), with one replica taken down and
// restarted in place.
func durableRestart() {
	const r = 3
	names := make([]string, r)
	rtt := make([][]time.Duration, r)
	for i := range names {
		names[i] = fmt.Sprintf("site-%d", i)
		rtt[i] = make([]time.Duration, r)
	}
	topo, err := topology.New(topology.Config{SiteNames: names, RTT: rtt, NumShards: 1, F: 1})
	if err != nil {
		log.Fatal(err)
	}

	base, err := os.MkdirTemp("", "tempo-recovery-example-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(base)

	addrs := make(map[ids.ProcessID]string)
	lns := make(map[ids.ProcessID]net.Listener)
	for _, pi := range topo.Processes() {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		lns[pi.ID] = ln
		addrs[pi.ID] = ln.Addr().String()
	}
	startNode := func(id ids.ProcessID, ln net.Listener) *cluster.Node {
		rep := tempo.New(id, topo, tempo.Config{PromiseInterval: 2 * time.Millisecond})
		n := cluster.NewNode(id, rep, addrs)
		if err := n.SetDurable(cluster.DurableConfig{
			Dir: filepath.Join(base, fmt.Sprintf("node-%d", id)),
		}); err != nil {
			log.Fatal(err)
		}
		if ln != nil {
			err = n.StartListener(ln)
		} else {
			err = n.Start()
		}
		if err != nil {
			log.Fatal(err)
		}
		return n
	}
	nodes := make(map[ids.ProcessID]*cluster.Node)
	for _, pi := range topo.Processes() {
		nodes[pi.ID] = startNode(pi.ID, lns[pi.ID])
	}
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()
	fmt.Println("\ndurable TCP cluster up (3 replicas, WAL+snapshots)")

	ctx := context.Background()
	sess, err := client.Dial(addrs[1], addrs[2], addrs[3])
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	if err := sess.Put(ctx, "account", []byte("balance=100")); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote account=balance=100")
	time.Sleep(50 * time.Millisecond) // let replica 3 apply+log the write

	// Replica 3 goes down (a SIGKILL'd tempo-server; see
	// docs/OPERATIONS.md for the runbook with real processes).
	nodes[3].Close()
	fmt.Println("replica 3 down")

	// The cluster still serves (f=1): a write lands during the outage.
	if err := sess.Put(ctx, "account", []byte("balance=250")); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote account=balance=250 during the outage")

	// Replica 3 restarts on its data directory: WAL replay restores the
	// pre-crash state, the peer sync fetches what it missed, and the
	// node serves again.
	nodes[3] = startNode(3, nil)
	fmt.Println("replica 3 restarted on its data directory")

	probe, err := client.New(client.Config{Addrs: map[ids.ProcessID]string{3: addrs[3]}})
	if err != nil {
		log.Fatal(err)
	}
	defer probe.Close()
	v, err := probe.Get(ctx, "account")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after restart: account=%s (read via the restarted replica)\n", v)
}
