// Recovery: a replica (here, the coordinator-rich Ireland site) crashes
// mid-run; the Ω failure detector settles on a new shard leader, the
// recovery protocol (Algorithm 4) takes over pending commands, and the
// system keeps serving clients at the surviving sites — no
// reconfiguration needed, f=1 of 5 replicas lost.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"tempo/internal/core"
	"tempo/internal/tempo"
)

func main() {
	ctx := context.Background()
	cluster, err := core.New(core.Options{
		Tempo: tempo.Config{
			PromiseInterval: 5 * time.Millisecond,
			RecoveryTimeout: 20 * time.Millisecond,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	canada := cluster.Client(3)
	if err := canada.Put(ctx, "ledger", []byte("v1")); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote ledger=v1 via canada")

	// Ireland (rank 1, the default Ω choice) fail-stops.
	cluster.Crash(0, 0)
	fmt.Println("ireland crashed")

	// Ω nominates rank 2 (N. California); pending commands coordinated
	// by Ireland are recovered with their original timestamps
	// (Properties 1 and 4 of the paper).
	cluster.SetLeader(2)
	cluster.Settle(10, 20*time.Millisecond)

	// The system remains available for reads and writes.
	if err := canada.Put(ctx, "ledger", []byte("v2")); err != nil {
		log.Fatal(err)
	}
	v, err := cluster.Client(4).Get(ctx, "ledger")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after crash+recovery: ledger=%s (read via s.paulo)\n", v)
}
