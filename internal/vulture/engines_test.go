package vulture

import (
	"context"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"tempo/client"
	"tempo/internal/cluster"
	"tempo/internal/epaxos"
	"tempo/internal/ids"
	"tempo/internal/topology"
)

// startEPaxosCluster boots a 3-replica EPaxos loopback cluster sharing
// one Shaper for fault injection. No Incremental checker is attached:
// that checker asserts a per-shard total order, which EPaxos — ordering
// only conflicting commands — deliberately does not provide. The
// vulture's own single-writer register checking is engine-agnostic.
func startEPaxosCluster(t *testing.T) (map[ids.ProcessID]string, *cluster.Shaper) {
	t.Helper()
	const r = 3
	names := make([]string, r)
	rtt := make([][]time.Duration, r)
	for i := range names {
		names[i] = fmt.Sprintf("s%d", i)
		rtt[i] = make([]time.Duration, r)
	}
	topo, err := topology.New(topology.Config{SiteNames: names, RTT: rtt, NumShards: 1, F: 1})
	if err != nil {
		t.Fatal(err)
	}
	addrs := make(map[ids.ProcessID]string)
	lns := make(map[ids.ProcessID]net.Listener)
	for _, pi := range topo.Processes() {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[pi.ID] = ln
		addrs[pi.ID] = ln.Addr().String()
	}
	shaper := cluster.NewShaper(nil)
	t.Cleanup(shaper.Close)
	for _, pi := range topo.Processes() {
		rep := epaxos.New(pi.ID, topo, epaxos.Config{ResendInterval: 50 * time.Millisecond})
		n := cluster.NewNode(pi.ID, rep, addrs)
		n.SetShaper(shaper)
		if err := n.StartListener(lns[pi.ID]); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
	}
	return addrs, shaper
}

// TestVultureOverEPaxos points the consistency vulture at a non-Tempo
// engine: probing an EPaxos cluster through a partition and heal must
// produce zero safety violations, and the stall while the client-facing
// replica is isolated must surface as an availability window attributed
// to an injected fault event.
func TestVultureOverEPaxos(t *testing.T) {
	addrs, shaper := startEPaxosCluster(t)
	v, err := New(Config{
		Client: client.Config{
			Addrs:          addrs,
			RequestTimeout: 300 * time.Millisecond,
		},
		Writers:         2,
		Readers:         2,
		Keys:            8,
		Interval:        time.Millisecond,
		OutageThreshold: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	var runErr atomic.Value
	go func() {
		defer close(done)
		if err := v.Run(ctx); err != nil {
			runErr.Store(err)
		}
	}()

	time.Sleep(400 * time.Millisecond) // healthy probing establishes version floors
	// Clients route to the lowest-id reachable replica, and the shaper
	// leaves client TCP alone — so isolating replica 1 stalls every
	// probe without disconnecting anyone.
	v.Event("partition")
	shaper.Isolate(1)
	time.Sleep(700 * time.Millisecond)
	v.Event("heal")
	shaper.Rejoin(1)
	time.Sleep(1200 * time.Millisecond) // recovery resends commit the backlog; probes succeed again
	cancel()
	<-done
	if err, ok := runErr.Load().(error); ok {
		t.Fatalf("run: %v", err)
	}

	if dropped := shaper.Dropped(); dropped == 0 {
		t.Fatal("shaper dropped nothing; the partition never bit")
	}
	r := v.Report()
	if r.Ops < 50 {
		t.Fatalf("only %d ops completed", r.Ops)
	}
	if err := v.Failed(); err != nil {
		t.Fatalf("vulture flagged EPaxos: %v", err)
	}
	if len(r.Outages) == 0 {
		t.Fatalf("no availability window recorded across a %v isolation", 700*time.Millisecond)
	}
	for _, o := range r.Outages {
		if o.After == "" {
			t.Fatalf("outage window %+v not attributed to any injected event", o)
		}
	}
}
