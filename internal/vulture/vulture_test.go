package vulture

import (
	"context"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tempo/client"
	"tempo/internal/check"
	"tempo/internal/cluster"
	"tempo/internal/ids"
	"tempo/internal/proto"
	"tempo/internal/tempo"
	"tempo/internal/topology"
)

func TestValueCodecRoundTrip(t *testing.T) {
	for _, ver := range []uint64{0, 1, 7, 1 << 40} {
		val := encodeValue("vult-0001", ver)
		got, err := decodeValue("vult-0001", val)
		if err != nil {
			t.Fatalf("decode(%q): %v", val, err)
		}
		if got != ver {
			t.Fatalf("round trip %d -> %d", ver, got)
		}
	}
	if _, err := decodeValue("vult-0002", encodeValue("vult-0001", 3)); err == nil {
		t.Fatal("wrong key echo must not decode")
	}
	bad := encodeValue("vult-0001", 3)
	bad[0] ^= 0x40
	if _, err := decodeValue("vult-0001", bad); err == nil {
		t.Fatal("corrupted value must not decode")
	}
	if _, err := decodeValue("vult-0001", []byte("junk")); err == nil {
		t.Fatal("junk must not decode")
	}
}

// startVultureCluster boots a plain 3-replica loopback cluster and
// returns the client address map; when checker is non-nil every node's
// execution stream is fed into it.
func startVultureCluster(t *testing.T, checker *check.Incremental) map[ids.ProcessID]string {
	t.Helper()
	const r = 3
	names := make([]string, r)
	rtt := make([][]time.Duration, r)
	for i := range names {
		names[i] = fmt.Sprintf("s%d", i)
		rtt[i] = make([]time.Duration, r)
	}
	topo, err := topology.New(topology.Config{SiteNames: names, RTT: rtt, NumShards: 1, F: 1})
	if err != nil {
		t.Fatal(err)
	}
	addrs := make(map[ids.ProcessID]string)
	lns := make(map[ids.ProcessID]net.Listener)
	for _, pi := range topo.Processes() {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[pi.ID] = ln
		addrs[pi.ID] = ln.Addr().String()
	}
	for _, pi := range topo.Processes() {
		pi := pi
		rep := tempo.New(pi.ID, topo, tempo.Config{
			PromiseInterval: time.Millisecond,
			RecoveryTimeout: time.Hour,
		})
		n := cluster.NewNode(pi.ID, rep, addrs)
		if checker != nil {
			checker.AddProcess(0, pi.ID)
			n.SetExecObserver(func(st proto.Stable) {
				checker.Executed(pi.ID, st.Shard, st.Cmd.ID, st.TS)
			})
		}
		n.StartListener(lns[pi.ID])
		t.Cleanup(func() { n.Close() })
	}
	return addrs
}

// TestVultureCleanRun probes a healthy cluster (with the execution
// checker attached) and must come back with operations done and zero
// violations.
func TestVultureCleanRun(t *testing.T) {
	checker := check.NewIncremental()
	addrs := startVultureCluster(t, checker)
	v, err := New(Config{
		Client:   client.Config{Addrs: addrs},
		Writers:  2,
		Readers:  2,
		Keys:     16,
		Interval: time.Millisecond,
		Checker:  checker,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 1500*time.Millisecond)
	defer cancel()
	if err := v.Run(ctx); err != nil {
		t.Fatalf("run: %v", err)
	}
	r := v.Report()
	if r.Ops < 100 {
		t.Fatalf("only %d ops completed", r.Ops)
	}
	if r.Writes == 0 || r.Reads == 0 {
		t.Fatalf("lopsided probe mix: %d writes, %d reads", r.Writes, r.Reads)
	}
	if err := v.Failed(); err != nil {
		t.Fatalf("healthy cluster flagged: %v", err)
	}
	if r.CheckerStats == nil || r.CheckerStats.Seen == 0 {
		t.Fatal("execution checker saw no stream")
	}
}

// TestVultureDetectsSeededViolations is the negative control: a rogue
// writer outside the vulture plants (a) a phantom version and (b) a
// corrupt value on vulture-owned keys, and the vulture must flag both.
func TestVultureDetectsSeededViolations(t *testing.T) {
	addrs := startVultureCluster(t, nil)
	v, err := New(Config{
		Client:   client.Config{Addrs: addrs},
		Writers:  1,
		Readers:  2,
		Keys:     2, // tiny keyspace: readers hit the seeded keys fast
		Interval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	var runErr atomic.Value
	go func() {
		defer close(done)
		if err := v.Run(ctx); err != nil {
			runErr.Store(err)
		}
	}()

	rogue, err := client.New(client.Config{Addrs: addrs})
	if err != nil {
		t.Fatal(err)
	}
	defer rogue.Close()
	time.Sleep(100 * time.Millisecond) // let the vulture establish floors
	// The owners keep overwriting their keys, so keep re-planting until
	// a probe wins the race and reads the seeded value.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		r := v.Report()
		if r.Kinds["phantom-version"] > 0 && r.Kinds["corrupt-value"] > 0 {
			break
		}
		if r.Kinds["phantom-version"] == 0 {
			// Phantom: a version far above anything the owner attempted.
			if err := rogue.Put(ctx, v.keyName(0), encodeValue(v.keyName(0), 1<<40)); err != nil {
				t.Fatalf("seed phantom: %v", err)
			}
		}
		if r.Kinds["corrupt-value"] == 0 {
			// Corruption: bytes that fail the checksum outright.
			if err := rogue.Put(ctx, v.keyName(1), []byte("rotten")); err != nil {
				t.Fatalf("seed corruption: %v", err)
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	<-done
	if err, ok := runErr.Load().(error); ok {
		t.Fatalf("run: %v", err)
	}
	r := v.Report()
	if r.Kinds["phantom-version"] == 0 {
		t.Fatalf("seeded phantom version not detected: %+v", r.Kinds)
	}
	if r.Kinds["corrupt-value"] == 0 {
		t.Fatalf("seeded corruption not detected: %+v", r.Kinds)
	}
	err = v.Failed()
	if err == nil {
		t.Fatal("Failed() nil despite violations")
	}
	if !strings.Contains(err.Error(), "violation") {
		t.Fatalf("unhelpful failure: %v", err)
	}
}

// TestOutageAttribution exercises the availability-window bookkeeping
// directly: a success after a long gap closes a window attributed to
// the latest injected fault event.
func TestOutageAttribution(t *testing.T) {
	v, err := New(Config{
		Client:          client.Config{Addrs: map[ids.ProcessID]string{1: "127.0.0.1:1"}},
		OutageThreshold: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	v.mu.Lock()
	v.started = now.Add(-10 * time.Second)
	v.lastOK = now.Add(-2 * time.Second)
	v.mu.Unlock()
	v.Event("sigkill")
	v.Event("partition")
	v.noteOp(nil)
	r := v.Report()
	if len(r.Outages) != 1 {
		t.Fatalf("outages = %+v, want one window", r.Outages)
	}
	o := r.Outages[0]
	if o.DurationMS < 1900 {
		t.Fatalf("window %v ms, want ~2000", o.DurationMS)
	}
	if o.After != "partition" {
		t.Fatalf("window attributed to %q, want the latest event", o.After)
	}
	if len(r.Events) != 2 {
		t.Fatalf("events = %+v", r.Events)
	}
	// A prompt follow-up success opens no second window.
	v.noteOp(nil)
	if got := len(v.Report().Outages); got != 1 {
		t.Fatalf("spurious extra window: %d", got)
	}
}
