// Package vulture is the always-on consistency prober: a long-running
// client that continuously writes, reads, and verifies tagged keys
// through the public client package against a *live* cluster — under
// whatever faults the chaos layer injects — instead of only checking
// execution logs offline after a run.
//
// The probe model is single-writer versioned registers. Every tagged
// key is owned by exactly one writer worker, which stamps each write
// with a strictly increasing version (a self-describing, checksummed
// value). That turns consistency checking into arithmetic on three
// monotone per-key counters:
//
//   - attempted: the highest version ever submitted (acked or not);
//   - acked: the highest version whose write completed OK;
//   - observed: the highest version any completed read returned.
//
// A read returning a version below max(acked, observed) at the time it
// was issued is a stale read — by the specification's Ordering property
// (which includes the real-time order), a committed conflicting write
// cannot execute after a later-submitted read, and versions on one key
// only grow. A read above `attempted` is a phantom — a version nobody
// wrote. A value that fails its checksum or echoes the wrong key is
// corruption. Reads and writes verify opportunistically on every
// operation, hours on end, with O(keys) memory.
//
// Optionally the vulture also carries a check.Incremental fed by the
// deployment's execution observers (in-process harnesses), folding the
// total-order stream check into the same report. Reports — violations,
// per-fault availability windows, op counters — are JSON, served on the
// existing -metrics-addr endpoint style via Handler.
package vulture

import (
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tempo/client"
	"tempo/internal/check"
	"tempo/internal/metrics"
	"tempo/internal/workload"
)

// Config tunes a Vulture.
type Config struct {
	// Client is the session template (addresses, topology, timeouts);
	// every worker clones it into its own session.
	Client client.Config
	// Writers and Readers set the worker counts (defaults 2 and 2).
	Writers, Readers int
	// Keys is the tagged keyspace size (default 64). Each key is owned
	// by exactly one writer.
	Keys int
	// KeyPrefix tags the vulture's keys (default "vult").
	KeyPrefix string
	// Theta is the zipfian skew with which workers pick keys (default
	// 0.9 — hot keys are contended keys, where ordering must hold).
	Theta float64
	// Interval paces each worker between operations (default 2ms).
	Interval time.Duration
	// OutageThreshold is the longest gap between successful operations
	// that does not count as an availability window (default 500ms).
	OutageThreshold time.Duration
	// Checker, when set, is the execution-stream verifier fed by the
	// deployment's exec observers; its verdict joins the report.
	Checker *check.Incremental
}

// Vulture is the running prober. Create with New, drive with Run,
// snapshot with Report, gate CI with Failed.
type Vulture struct {
	cfg  Config
	keys []*keyState

	ops, errs, timeouts  atomic.Uint64
	reads, writes        atomic.Uint64
	notFound, violations atomic.Uint64

	mu       sync.Mutex
	started  time.Time
	lastOK   time.Time
	outages  []Outage
	events   []EventMark
	kinds    map[string]uint64
	details  []string
	startErr error
}

// keyState is one tagged key's monotone version accounting.
type keyState struct {
	mu        sync.Mutex
	attempted uint64
	acked     uint64
	observed  uint64
}

// Outage is one availability window: a gap between successful
// operations longer than the configured threshold, attributed to the
// most recent injected fault event.
type Outage struct {
	// Start and End bound the window, as offsets from Run start.
	StartSec float64 `json:"start_sec"`
	EndSec   float64 `json:"end_sec"`
	// DurationMS is the window length.
	DurationMS float64 `json:"duration_ms"`
	// After names the last fault event injected before the window
	// ended ("" when none was).
	After string `json:"after,omitempty"`
}

// EventMark is one injected-fault mark on the vulture's timeline.
type EventMark struct {
	// Name labels the fault ("sigkill", "partition", "heal", ...).
	Name string `json:"name"`
	// AtSec is the offset from Run start.
	AtSec float64 `json:"at_sec"`
}

// Report is the vulture's JSON snapshot.
type Report struct {
	// RunningSec is how long the prober has been running.
	RunningSec float64 `json:"running_sec"`
	// Ops counts completed operations; Errors those that failed
	// (Timeouts the subset that timed out); Reads/Writes split Ops.
	Ops      uint64 `json:"ops"`
	Errors   uint64 `json:"errors"`
	Timeouts uint64 `json:"timeouts"`
	Reads    uint64 `json:"reads"`
	Writes   uint64 `json:"writes"`
	// NotFound counts reads of never-written keys (normal early on).
	NotFound uint64 `json:"not_found"`
	// Violations counts consistency violations observed; Kinds and
	// Details break them down (details capped).
	Violations uint64            `json:"violations"`
	Kinds      map[string]uint64 `json:"violation_kinds,omitempty"`
	Details    []string          `json:"violation_details,omitempty"`
	// CheckerStats and CheckerViolation report the execution-stream
	// verifier, when one is attached.
	CheckerStats     *check.IncrementalStats `json:"checker,omitempty"`
	CheckerViolation string                  `json:"checker_violation,omitempty"`
	// Outages lists availability windows; Events the injected faults.
	Outages []Outage    `json:"outages,omitempty"`
	Events  []EventMark `json:"events,omitempty"`
}

// detailCap bounds the retained violation detail strings.
const detailCap = 64

// New builds a vulture.
func New(cfg Config) (*Vulture, error) {
	if len(cfg.Client.Addrs) == 0 {
		return nil, errors.New("vulture: no replica addresses")
	}
	if cfg.Writers <= 0 {
		cfg.Writers = 2
	}
	if cfg.Readers <= 0 {
		cfg.Readers = 2
	}
	if cfg.Keys <= 0 {
		cfg.Keys = 64
	}
	if cfg.Keys < cfg.Writers {
		cfg.Keys = cfg.Writers
	}
	if cfg.KeyPrefix == "" {
		cfg.KeyPrefix = "vult"
	}
	if cfg.Theta == 0 {
		cfg.Theta = 0.9
	}
	if cfg.Interval == 0 {
		cfg.Interval = 2 * time.Millisecond
	}
	if cfg.OutageThreshold == 0 {
		cfg.OutageThreshold = 500 * time.Millisecond
	}
	v := &Vulture{cfg: cfg, kinds: make(map[string]uint64)}
	v.keys = make([]*keyState, cfg.Keys)
	for i := range v.keys {
		v.keys[i] = &keyState{}
	}
	return v, nil
}

// keyName returns the tagged key for index k.
func (v *Vulture) keyName(k int) string {
	return fmt.Sprintf("%s-%04d", v.cfg.KeyPrefix, k)
}

// encodeValue builds the self-describing value for (key, version):
// "key|version|crc32(key|version)".
func encodeValue(key string, version uint64) []byte {
	body := key + "|" + strconv.FormatUint(version, 10)
	sum := crc32.ChecksumIEEE([]byte(body))
	return []byte(body + "|" + strconv.FormatUint(uint64(sum), 16))
}

// decodeValue parses and verifies a tagged value, returning its
// version. A wrong key echo or checksum is corruption.
func decodeValue(key string, val []byte) (uint64, error) {
	s := string(val)
	i := strings.LastIndexByte(s, '|')
	if i < 0 {
		return 0, fmt.Errorf("no checksum separator in %q", s)
	}
	body, sumHex := s[:i], s[i+1:]
	sum, err := strconv.ParseUint(sumHex, 16, 32)
	if err != nil {
		return 0, fmt.Errorf("bad checksum %q", sumHex)
	}
	if crc32.ChecksumIEEE([]byte(body)) != uint32(sum) {
		return 0, fmt.Errorf("checksum mismatch on %q", s)
	}
	j := strings.LastIndexByte(body, '|')
	if j < 0 || body[:j] != key {
		return 0, fmt.Errorf("key echo %q does not match %q", body, key)
	}
	return strconv.ParseUint(body[j+1:], 10, 64)
}

// Event marks an injected fault on the timeline; subsequent
// availability windows are attributed to the latest mark.
func (v *Vulture) Event(name string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	at := time.Duration(0)
	if !v.started.IsZero() {
		at = time.Since(v.started)
	}
	v.events = append(v.events, EventMark{Name: name, AtSec: at.Seconds()})
}

// Run starts the workers and blocks until ctx is cancelled, then stops
// them and closes their sessions. Violations and counters accumulate in
// the vulture across the run; Report/Failed read them at any time.
func (v *Vulture) Run(ctx context.Context) error {
	v.mu.Lock()
	v.started = time.Now()
	v.lastOK = v.started
	v.mu.Unlock()

	var wg sync.WaitGroup
	var firstErr error
	var errOnce sync.Once
	worker := func(i int, run func(ctx context.Context, sess *client.Session, rng *rand.Rand)) {
		defer wg.Done()
		sess, err := client.New(v.cfg.Client)
		if err != nil {
			errOnce.Do(func() { firstErr = err })
			return
		}
		defer sess.Close()
		run(ctx, sess, rand.New(rand.NewSource(int64(i)*104729+1)))
	}
	for i := 0; i < v.cfg.Writers; i++ {
		wg.Add(1)
		go func(i int) {
			worker(i, func(ctx context.Context, s *client.Session, rng *rand.Rand) { v.writeLoop(ctx, s, rng, i) })
		}(i)
	}
	for i := 0; i < v.cfg.Readers; i++ {
		wg.Add(1)
		go func(i int) { worker(v.cfg.Writers+i, v.readLoop) }(i)
	}
	wg.Wait()
	return firstErr
}

// writeLoop is one writer worker: zipfian over its owned keys, each
// write the key's next version; occasionally it reads an owned key back
// (read-your-writes through the same session).
func (v *Vulture) writeLoop(ctx context.Context, sess *client.Session, rng *rand.Rand, worker int) {
	owned := make([]int, 0, len(v.keys)/v.cfg.Writers+1)
	for k := range v.keys {
		if k%v.cfg.Writers == worker {
			owned = append(owned, k)
		}
	}
	z := workload.NewZipfian(len(owned), v.cfg.Theta)
	for ctx.Err() == nil {
		k := owned[z.Sample(rng)]
		if rng.Intn(4) == 0 {
			v.probeRead(ctx, sess, k)
		} else {
			v.probeWrite(ctx, sess, k)
		}
		v.pause(ctx)
	}
}

// readLoop is one reader worker: zipfian reads over the whole tagged
// keyspace.
func (v *Vulture) readLoop(ctx context.Context, sess *client.Session, rng *rand.Rand) {
	z := workload.NewZipfian(len(v.keys), v.cfg.Theta)
	for ctx.Err() == nil {
		v.probeRead(ctx, sess, z.Sample(rng))
		v.pause(ctx)
	}
}

func (v *Vulture) pause(ctx context.Context) {
	t := time.NewTimer(v.cfg.Interval)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// probeWrite submits the key's next version. An unacknowledged write
// stays in `attempted`: it may or may not have executed, and a later
// read returning it is legitimate either way.
func (v *Vulture) probeWrite(ctx context.Context, sess *client.Session, k int) {
	ks := v.keys[k]
	ks.mu.Lock()
	ks.attempted++
	next := ks.attempted
	ks.mu.Unlock()
	err := sess.Put(ctx, v.keyName(k), encodeValue(v.keyName(k), next))
	v.writes.Add(1)
	v.noteOp(err)
	if err == nil {
		ks.mu.Lock()
		if next > ks.acked {
			ks.acked = next
		}
		ks.mu.Unlock()
	}
}

// probeRead reads a key and verifies the returned version against the
// key's monotone floor (captured at issue time) and ceiling.
func (v *Vulture) probeRead(ctx context.Context, sess *client.Session, k int) {
	ks := v.keys[k]
	key := v.keyName(k)
	ks.mu.Lock()
	floor := ks.acked
	if ks.observed > floor {
		floor = ks.observed
	}
	ks.mu.Unlock()

	val, err := sess.Get(ctx, key)
	v.reads.Add(1)
	if errors.Is(err, client.ErrNotFound) {
		v.notFound.Add(1)
		v.noteOp(nil)
		if floor > 0 {
			v.violate("stale-read", "%s: read not-found after version %d was known", key, floor)
		}
		return
	}
	v.noteOp(err)
	if err != nil {
		return
	}
	ver, derr := decodeValue(key, val)
	if derr != nil {
		v.violate("corrupt-value", "%s: %v", key, derr)
		return
	}
	if ver < floor {
		v.violate("stale-read", "%s: read version %d below known floor %d", key, ver, floor)
		return
	}
	ks.mu.Lock()
	phantom := ver > ks.attempted
	if ver > ks.observed {
		ks.observed = ver
	}
	ks.mu.Unlock()
	if phantom {
		v.violate("phantom-version", "%s: read version %d, never written (attempted <= it at completion)", key, ver)
	}
}

// noteOp accounts one completed operation and maintains the
// availability timeline: a success after a long all-ops gap closes an
// outage window.
func (v *Vulture) noteOp(err error) {
	v.ops.Add(1)
	if err != nil {
		v.errs.Add(1)
		if errors.Is(err, client.ErrTimeout) {
			v.timeouts.Add(1)
		}
		return
	}
	now := time.Now()
	v.mu.Lock()
	if gap := now.Sub(v.lastOK); gap > v.cfg.OutageThreshold {
		o := Outage{
			StartSec:   v.lastOK.Sub(v.started).Seconds(),
			EndSec:     now.Sub(v.started).Seconds(),
			DurationMS: float64(gap.Nanoseconds()) / 1e6,
		}
		for i := len(v.events) - 1; i >= 0; i-- {
			if v.events[i].AtSec <= o.EndSec {
				o.After = v.events[i].Name
				break
			}
		}
		v.outages = append(v.outages, o)
	}
	v.lastOK = now
	v.mu.Unlock()
}

// violate records one consistency violation.
func (v *Vulture) violate(kind, format string, args ...any) {
	v.violations.Add(1)
	v.mu.Lock()
	v.kinds[kind]++
	if len(v.details) < detailCap {
		v.details = append(v.details, kind+": "+fmt.Sprintf(format, args...))
	}
	v.mu.Unlock()
}

// Report snapshots the vulture.
func (v *Vulture) Report() Report {
	r := Report{
		Ops:        v.ops.Load(),
		Errors:     v.errs.Load(),
		Timeouts:   v.timeouts.Load(),
		Reads:      v.reads.Load(),
		Writes:     v.writes.Load(),
		NotFound:   v.notFound.Load(),
		Violations: v.violations.Load(),
	}
	v.mu.Lock()
	if !v.started.IsZero() {
		r.RunningSec = time.Since(v.started).Seconds()
	}
	if len(v.kinds) > 0 {
		r.Kinds = make(map[string]uint64, len(v.kinds))
		for k, n := range v.kinds {
			r.Kinds[k] = n
		}
	}
	r.Details = append(r.Details, v.details...)
	r.Outages = append(r.Outages, v.outages...)
	r.Events = append(r.Events, v.events...)
	v.mu.Unlock()
	if c := v.cfg.Checker; c != nil {
		st := c.Stats()
		r.CheckerStats = &st
		if err := c.Err(); err != nil {
			r.CheckerViolation = err.Error()
		}
	}
	return r
}

// Failed returns a non-nil error when the vulture (or its attached
// checker) observed any consistency violation — the CI gate for soaks.
func (v *Vulture) Failed() error {
	r := v.Report()
	switch {
	case r.Violations > 0:
		first := ""
		if len(r.Details) > 0 {
			first = ": " + r.Details[0]
		}
		return fmt.Errorf("vulture: %d violation(s)%s", r.Violations, first)
	case r.CheckerViolation != "":
		return fmt.Errorf("vulture: execution stream: %s", r.CheckerViolation)
	default:
		return nil
	}
}

// Handler serves the report as JSON (mount beside the server's
// /metrics endpoint).
func (v *Vulture) Handler() http.Handler {
	return metrics.JSONHandler(func() any { return v.Report() })
}
