package check

import (
	"strings"
	"testing"

	"tempo/internal/command"
	"tempo/internal/ids"
)

func dot(s, q int) ids.Dot { return ids.Dot{Source: ids.ProcessID(s), Seq: uint64(q)} }

func put(id ids.Dot, k command.Key) *command.Command { return command.NewPut(id, k, nil) }

func TestValidOrdering(t *testing.T) {
	c := New()
	a, b := put(dot(1, 1), "x"), put(dot(2, 1), "x")
	c.Submitted(a)
	c.Submitted(b)
	c.Executed(Log{Process: 1, Order: []ids.Dot{a.ID, b.ID}})
	c.Executed(Log{Process: 2, Order: []ids.Dot{a.ID, b.ID}})
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyTotalOrder(); err != nil {
		t.Fatal(err)
	}
}

func TestDetectsOppositeOrders(t *testing.T) {
	c := New()
	a, b := put(dot(1, 1), "x"), put(dot(2, 1), "x")
	c.Submitted(a)
	c.Submitted(b)
	c.Executed(Log{Process: 1, Order: []ids.Dot{a.ID, b.ID}})
	c.Executed(Log{Process: 2, Order: []ids.Dot{b.ID, a.ID}})
	err := c.Verify()
	if err == nil || !strings.Contains(err.Error(), "opposite orders") {
		t.Fatalf("want opposite-orders violation, got %v", err)
	}
}

func TestNonConflictingReorderAllowed(t *testing.T) {
	c := New()
	a, b := put(dot(1, 1), "x"), put(dot(2, 1), "y")
	c.Submitted(a)
	c.Submitted(b)
	c.Executed(Log{Process: 1, Order: []ids.Dot{a.ID, b.ID}})
	c.Executed(Log{Process: 2, Order: []ids.Dot{b.ID, a.ID}})
	if err := c.Verify(); err != nil {
		t.Fatalf("non-conflicting reorder must be allowed: %v", err)
	}
	if err := c.VerifyTotalOrder(); err == nil {
		t.Fatal("total-order check should flag the reorder")
	}
}

func TestReadsDoNotConflict(t *testing.T) {
	c := New()
	a := command.NewGet(dot(1, 1), "x")
	b := command.NewGet(dot(2, 1), "x")
	c.Submitted(a)
	c.Submitted(b)
	c.Executed(Log{Process: 1, Order: []ids.Dot{a.ID, b.ID}})
	c.Executed(Log{Process: 2, Order: []ids.Dot{b.ID, a.ID}})
	if err := c.Verify(); err != nil {
		t.Fatalf("reads must not conflict: %v", err)
	}
}

func TestDetectsDuplicateExecution(t *testing.T) {
	c := New()
	a := put(dot(1, 1), "x")
	c.Submitted(a)
	c.Executed(Log{Process: 1, Order: []ids.Dot{a.ID, a.ID}})
	if err := c.Verify(); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("want duplicate violation, got %v", err)
	}
}

func TestDetectsUnsubmitted(t *testing.T) {
	c := New()
	c.Executed(Log{Process: 1, Order: []ids.Dot{dot(9, 9)}})
	if err := c.Verify(); err == nil || !strings.Contains(err.Error(), "unsubmitted") {
		t.Fatalf("want unsubmitted violation, got %v", err)
	}
}

func TestDetectsThreeCycle(t *testing.T) {
	// a<b at p1, b<c at p2, c<a at p3: no pair contradicts, but the
	// union is cyclic. Commands pairwise conflict via distinct keys.
	c := New()
	a := command.New(dot(1, 1),
		command.Op{Kind: command.Put, Key: "ab"},
		command.Op{Kind: command.Put, Key: "ca"})
	b := command.New(dot(2, 1),
		command.Op{Kind: command.Put, Key: "ab"},
		command.Op{Kind: command.Put, Key: "bc"})
	cc := command.New(dot(3, 1),
		command.Op{Kind: command.Put, Key: "bc"},
		command.Op{Kind: command.Put, Key: "ca"})
	c.Submitted(a)
	c.Submitted(b)
	c.Submitted(cc)
	c.Executed(Log{Process: 1, Shard: 0, Order: []ids.Dot{a.ID, b.ID}})
	c.Executed(Log{Process: 2, Shard: 1, Order: []ids.Dot{b.ID, cc.ID}})
	c.Executed(Log{Process: 3, Shard: 2, Order: []ids.Dot{cc.ID, a.ID}})
	if err := c.Verify(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("want cycle violation, got %v", err)
	}
}
