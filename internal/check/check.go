// Package check verifies executions against the PSMR specification (§2 of
// the paper): Validity (each command executed at most once per process,
// only if submitted) and Ordering (the union of per-process execution
// orders on conflicting commands, plus the real-time order, is acyclic).
//
// Runtimes feed it per-process execution logs; tests call Verify at the
// end of a run.
package check

import (
	"fmt"

	"tempo/internal/command"
	"tempo/internal/ids"
)

// Log is one process's execution history for one shard, in order.
type Log struct {
	Process ids.ProcessID
	Shard   ids.ShardID
	Order   []ids.Dot
}

// Checker accumulates logs and command metadata.
type Checker struct {
	cmds      map[ids.Dot]*command.Command
	submitted map[ids.Dot]bool
	logs      []Log
}

// New creates a Checker.
func New() *Checker {
	return &Checker{
		cmds:      make(map[ids.Dot]*command.Command),
		submitted: make(map[ids.Dot]bool),
	}
}

// Submitted registers a submitted command (for Validity).
func (c *Checker) Submitted(cmd *command.Command) {
	c.cmds[cmd.ID] = cmd
	c.submitted[cmd.ID] = true
}

// Executed appends a full execution log for a process/shard.
func (c *Checker) Executed(l Log) { c.logs = append(c.logs, l) }

// Verify checks Validity and Ordering; it returns the first violation
// found, or nil.
func (c *Checker) Verify() error {
	// Validity: executed at most once per process, and only submitted
	// commands.
	for _, l := range c.logs {
		seen := make(map[ids.Dot]bool, len(l.Order))
		for _, id := range l.Order {
			if seen[id] {
				return fmt.Errorf("validity: process %d executed %v twice", l.Process, id)
			}
			seen[id] = true
			if !c.submitted[id] {
				return fmt.Errorf("validity: process %d executed unsubmitted %v", l.Process, id)
			}
		}
	}
	// Ordering: build the ↦ relation restricted to conflicting pairs and
	// detect cycles. Since each process's log is a total order, a cycle
	// can only appear if two processes order some conflicting pair in
	// opposite directions, or via longer cycles; we detect both with a
	// DFS over the pairwise edges.
	edges := make(map[ids.Dot]map[ids.Dot]bool)
	addEdge := func(a, b ids.Dot) {
		if edges[a] == nil {
			edges[a] = make(map[ids.Dot]bool)
		}
		edges[a][b] = true
	}
	for _, l := range c.logs {
		for i := 0; i < len(l.Order); i++ {
			ci := c.cmds[l.Order[i]]
			for j := i + 1; j < len(l.Order); j++ {
				cj := c.cmds[l.Order[j]]
				if ci != nil && cj != nil && ci.Conflicts(cj) {
					addEdge(l.Order[i], l.Order[j])
				}
			}
		}
	}
	// Direct contradiction check (fast, yields good messages).
	for a, out := range edges {
		for b := range out {
			if edges[b][a] {
				return fmt.Errorf("ordering: conflicting commands %v and %v executed in opposite orders", a, b)
			}
		}
	}
	// General cycle detection.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[ids.Dot]int)
	var visit func(ids.Dot) error
	visit = func(n ids.Dot) error {
		color[n] = grey
		for m := range edges[n] {
			switch color[m] {
			case grey:
				return fmt.Errorf("ordering: cycle through %v and %v", n, m)
			case white:
				if err := visit(m); err != nil {
					return err
				}
			}
		}
		color[n] = black
		return nil
	}
	for n := range edges {
		if color[n] == white {
			if err := visit(n); err != nil {
				return err
			}
		}
	}
	return nil
}

// VerifyTotalOrder additionally requires that all logs of the same shard
// are prefixes of one common total order (Tempo and FPaxos provide this;
// EPaxos-family protocols only order conflicting commands).
func (c *Checker) VerifyTotalOrder() error {
	byShard := make(map[ids.ShardID][]Log)
	for _, l := range c.logs {
		byShard[l.Shard] = append(byShard[l.Shard], l)
	}
	for shard, logs := range byShard {
		var ref Log
		for _, l := range logs {
			if len(l.Order) > len(ref.Order) {
				ref = l
			}
		}
		for _, l := range logs {
			for i, id := range l.Order {
				if ref.Order[i] != id {
					return fmt.Errorf("total order: shard %d, process %d diverges from process %d at index %d (%v vs %v)",
						shard, l.Process, ref.Process, i, id, ref.Order[i])
				}
			}
		}
	}
	return nil
}
