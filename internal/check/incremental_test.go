package check

import (
	"strings"
	"testing"

	"tempo/internal/ids"
)

// feed synthesizes a shard-0 execution stream: entry i is the command
// (source 1, seq i+1) at ts i+1.
func entryAt(i uint64) (ids.Dot, uint64) {
	return ids.Dot{Source: 1, Seq: i + 1}, i + 1
}

func newShardChecker(procs ...ids.ProcessID) *Incremental {
	c := NewIncremental()
	for _, p := range procs {
		c.AddProcess(0, p)
	}
	return c
}

func TestIncrementalAgreementPrunes(t *testing.T) {
	const n = 10_000
	c := newShardChecker(1, 2, 3)
	for i := uint64(0); i < n; i++ {
		id, ts := entryAt(i)
		for _, p := range []ids.ProcessID{1, 2, 3} {
			c.Executed(p, 0, id, ts)
		}
	}
	if err := c.Err(); err != nil {
		t.Fatalf("agreeing streams flagged: %v", err)
	}
	st := c.Stats()
	if st.Seen != 3*n {
		t.Fatalf("Seen = %d, want %d", st.Seen, 3*n)
	}
	if st.Pruned == 0 {
		t.Fatal("long agreeing run pruned nothing: memory would grow unbounded")
	}
	if st.Retained > 2*pruneBatch {
		t.Fatalf("Retained = %d entries after full agreement, want <= %d", st.Retained, 2*pruneBatch)
	}
}

func TestIncrementalLaggardHoldsWatermark(t *testing.T) {
	// Process 3 never reports: the watermark must wait for it, not
	// prune past it (pruning early could mask its future divergence).
	const n = 5_000
	c := newShardChecker(1, 2, 3)
	for i := uint64(0); i < n; i++ {
		id, ts := entryAt(i)
		c.Executed(1, 0, id, ts)
		c.Executed(2, 0, id, ts)
	}
	if st := c.Stats(); st.Pruned != 0 || st.Retained != n {
		t.Fatalf("pruned %d/retained %d with a registered process at index 0", st.Pruned, st.Retained)
	}
	// The laggard wakes up and disagrees at index 0.
	c.Executed(3, 0, ids.Dot{Source: 9, Seq: 9}, 1)
	if err := c.Err(); err == nil {
		t.Fatal("laggard divergence at index 0 not flagged")
	}
}

func TestIncrementalDivergenceAfterPruning(t *testing.T) {
	// Both processes agree long enough for heavy pruning, then process
	// 2 executes the next two commands in swapped order. Pruning must
	// not mask the divergence.
	const n = 8_000
	c := newShardChecker(1, 2)
	for i := uint64(0); i < n; i++ {
		id, ts := entryAt(i)
		c.Executed(1, 0, id, ts)
		c.Executed(2, 0, id, ts)
	}
	if st := c.Stats(); st.Pruned == 0 {
		t.Fatal("setup: no pruning happened; test would not cover the pruned path")
	}
	x, xts := entryAt(n)
	y, yts := entryAt(n + 1)
	c.Executed(1, 0, x, xts)
	c.Executed(1, 0, y, yts)
	c.Executed(2, 0, y, yts) // swapped: diverges from the agreed order
	err := c.Err()
	if err == nil {
		t.Fatal("post-prune divergence not flagged")
	}
	if !strings.Contains(err.Error(), "agreed order") {
		t.Fatalf("unexpected violation: %v", err)
	}
}

func TestIncrementalDuplicateAcrossPruneBoundary(t *testing.T) {
	// Process 1 re-executes a command whose reference entry was pruned
	// thousands of entries ago: the interval sets must still remember.
	const n = 8_000
	c := newShardChecker(1, 2)
	for i := uint64(0); i < n; i++ {
		id, ts := entryAt(i)
		c.Executed(1, 0, id, ts)
		c.Executed(2, 0, id, ts)
	}
	if st := c.Stats(); st.Pruned == 0 {
		t.Fatal("setup: no pruning happened")
	}
	dup, _ := entryAt(3) // long since pruned
	c.Executed(1, 0, dup, n+100)
	err := c.Err()
	if err == nil {
		t.Fatal("duplicate execution across the prune boundary not flagged")
	}
	if !strings.Contains(err.Error(), "twice") {
		t.Fatalf("unexpected violation: %v", err)
	}
}

func TestIncrementalTimestampMismatch(t *testing.T) {
	c := newShardChecker(1, 2)
	id, _ := entryAt(0)
	c.Executed(1, 0, id, 5)
	c.Executed(2, 0, id, 7) // same command, different final timestamp
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "stabilized") {
		t.Fatalf("timestamp disagreement not flagged: %v", c.Err())
	}
}

func TestIncrementalTimestampRegression(t *testing.T) {
	c := newShardChecker(1)
	c.Executed(1, 0, ids.Dot{Source: 1, Seq: 1}, 10)
	c.Executed(1, 0, ids.Dot{Source: 1, Seq: 2}, 9)
	if err := c.Err(); err == nil {
		t.Fatal("timestamp regression not flagged")
	}
}

func TestIncrementalRestartResync(t *testing.T) {
	const crashAt, catchUpTo, end = 100, 150, 220
	c := newShardChecker(1, 2)
	// Both execute to crashAt; process 2 crashes, process 1 runs on.
	for i := uint64(0); i < crashAt; i++ {
		id, ts := entryAt(i)
		c.Executed(1, 0, id, ts)
		c.Executed(2, 0, id, ts)
	}
	for i := uint64(crashAt); i < catchUpTo; i++ {
		id, ts := entryAt(i)
		c.Executed(1, 0, id, ts)
	}
	// Process 2 restarts, recovers [crashAt, catchUpTo) via peer
	// catch-up (never observed), and resumes executing at catchUpTo.
	c.ResetProcess(0, 2)
	for i := uint64(catchUpTo); i < end; i++ {
		id, ts := entryAt(i)
		c.Executed(1, 0, id, ts)
		c.Executed(2, 0, id, ts)
	}
	if err := c.Err(); err != nil {
		t.Fatalf("clean restart flagged: %v", err)
	}

	// A second restart followed by divergence must still be caught.
	c.ResetProcess(0, 2)
	id, ts := entryAt(end)
	c.Executed(1, 0, id, ts)
	c.Executed(1, 0, ids.Dot{Source: 1, Seq: end + 2}, ts+1)
	c.Executed(2, 0, id, ts)                             // re-anchors at `end`
	c.Executed(2, 0, ids.Dot{Source: 7, Seq: 777}, ts+1) // diverges next
	if err := c.Err(); err == nil {
		t.Fatal("post-restart divergence not flagged")
	}
}

func TestIncrementalRestartReplayBelowWatermark(t *testing.T) {
	// The replayed tail can even reach below the prune watermark; the
	// pruned-id record classifies those as old (skip), not new
	// (which would falsely extend the frontier).
	const n = 2_000
	c := newShardChecker(1, 2)
	for i := uint64(0); i < n; i++ {
		id, ts := entryAt(i)
		c.Executed(1, 0, id, ts)
		c.Executed(2, 0, id, ts)
	}
	if st := c.Stats(); st.Pruned == 0 {
		t.Fatal("setup: no pruning happened")
	}
	c.ResetProcess(0, 2)
	for i := uint64(1020); i < n; i++ { // 1020..1023 are pruned
		id, ts := entryAt(i)
		c.Executed(2, 0, id, ts)
	}
	id, ts := entryAt(n)
	c.Executed(1, 0, id, ts)
	c.Executed(2, 0, id, ts)
	if err := c.Err(); err != nil {
		t.Fatalf("below-watermark replay flagged: %v", err)
	}
}

func TestIncrementalRestartMayReapplyTail(t *testing.T) {
	// A crash can lose the WAL's unsynced tail: the new incarnation
	// legitimately re-executes those commands. ResetProcess must not
	// flag them as duplicates.
	c := newShardChecker(1, 2)
	for i := uint64(0); i < 10; i++ {
		id, ts := entryAt(i)
		c.Executed(1, 0, id, ts)
		c.Executed(2, 0, id, ts)
	}
	c.ResetProcess(0, 2)
	// Process 2 lost entries 8..9 and re-executes them.
	for i := uint64(8); i < 12; i++ {
		id, ts := entryAt(i)
		if i >= 10 {
			c.Executed(1, 0, id, ts)
		}
		c.Executed(2, 0, id, ts)
	}
	if err := c.Err(); err != nil {
		t.Fatalf("re-applied unsynced tail flagged: %v", err)
	}
}
