package check

import (
	"fmt"
	"sync"

	"tempo/internal/ids"
	"tempo/internal/promise"
)

// Incremental is the streaming verify mode behind long soaks (the
// vulture): it checks, online and with bounded memory, that every
// process of a shard executes the same commands in the same order at
// the same final timestamps — Tempo's total-order guarantee, of which
// the specification's Ordering property is a corollary — plus
// per-incarnation Validity (no command executed twice by one process)
// and per-process timestamp monotonicity.
//
// Memory stays bounded by pruning: each shard keeps only the suffix of
// the agreed execution order above the *stable watermark* — the lowest
// index some registered process has not yet confirmed. Everything below
// has been cross-checked by every process and can never be contradicted
// retroactively (each process's stream is consumed in order), so
// pruning never masks a violation. Duplicate detection survives pruning
// unconditionally: executed command ids are remembered as per-source
// interval sets (promise.IntervalSet), whose size tracks fragmentation,
// not history length.
//
// Register every replica of every shard with AddProcess before feeding
// (the watermark waits for registered processes, so a slow or
// not-yet-started replica holds history instead of losing it). Feed
// executions from each process in its execution order — e.g. from
// cluster.Node.SetExecObserver — via Executed; they may interleave
// arbitrarily across processes. After a crash-restart, call
// ResetProcess: the new incarnation resumes wherever its recovery
// (snapshot + WAL + peer catch-up) left it, and the checker re-anchors
// its stream at the first execution it reports.
//
// The first violation sticks and is returned by Err; later input is
// ignored (a live cluster keeps executing — one sticky report beats an
// avalanche).
type Incremental struct {
	mu     sync.Mutex
	shards map[ids.ShardID]*shardStream
	err    error
	seen   uint64
	pruned uint64
}

// refEntry is one slot of a shard's agreed execution order.
type refEntry struct {
	id ids.Dot
	ts uint64
}

// shardStream is one shard's reference order suffix plus its process
// cursors.
type shardStream struct {
	base  uint64 // global index of ref[0]
	ref   []refEntry
	procs map[ids.ProcessID]*procStream
	// prunedIDs records, per command source, every command id whose
	// reference entry was pruned — interval-compressed, so its size
	// tracks sequence fragmentation, not history length. Resync uses
	// it to tell a replayed old command (verified before a crash) from
	// a genuinely new one.
	prunedIDs map[ids.ProcessID]*promise.IntervalSet
}

// procStream is one process's cursor into a shard's reference order.
type procStream struct {
	next     uint64 // global index of the next expected execution
	resync   bool   // re-anchor at the next execution (crash-restart)
	started  bool
	lastTS   uint64
	lastID   ids.Dot
	executed map[ids.ProcessID]*promise.IntervalSet // per Dot.Source, this incarnation
}

// pruneBatch amortizes the reference-suffix copy: prune only once this
// many entries are below the stable watermark.
const pruneBatch = 1024

// NewIncremental creates an empty incremental checker.
func NewIncremental() *Incremental {
	return &Incremental{shards: make(map[ids.ShardID]*shardStream)}
}

// AddProcess registers one replica of a shard. Call for every replica
// before feeding executions: the shard's stable watermark — and with it
// pruning — waits for every registered process.
func (c *Incremental) AddProcess(shard ids.ShardID, p ids.ProcessID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ss := c.shard(shard)
	if _, ok := ss.procs[p]; !ok {
		ss.procs[p] = newProcStream(ss.base)
	}
}

// ResetProcess starts a new incarnation of a registered process after a
// crash-restart: its duplicate-detection sets reset (recovery may
// legitimately re-apply a lost unsynced tail) and its stream re-anchors
// at the first execution the new incarnation reports — skipping the
// entries it recovered via snapshot/peer catch-up, which never pass the
// execution observer.
func (c *Incremental) ResetProcess(shard ids.ShardID, p ids.ProcessID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ss := c.shard(shard)
	ps, ok := ss.procs[p]
	if !ok {
		ps = newProcStream(ss.base)
		ss.procs[p] = ps
		return
	}
	ps.resync = true
	ps.started = false
	ps.executed = make(map[ids.ProcessID]*promise.IntervalSet)
}

// Executed feeds one execution: process p applied command id at final
// timestamp ts on shard. Calls for one process must arrive in that
// process's execution order; processes may interleave freely.
func (c *Incremental) Executed(p ids.ProcessID, shard ids.ShardID, id ids.Dot, ts uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return
	}
	c.seen++
	ss := c.shard(shard)
	ps, ok := ss.procs[p]
	if !ok {
		// Late registration: best effort — anchor at the current
		// watermark and re-sync like a restarted process. Register
		// upfront with AddProcess to verify the full stream.
		ps = newProcStream(ss.base)
		ps.resync = true
		ss.procs[p] = ps
	}

	// Validity (per incarnation): never execute the same command twice.
	set := ps.executed[id.Source]
	if set == nil {
		set = &promise.IntervalSet{}
		ps.executed[id.Source] = set
	}
	if set.Contains(id.Seq) {
		c.err = fmt.Errorf("check: validity: process %d executed %v twice on shard %d", p, id, shard)
		return
	}
	set.Add(id.Seq)

	// Per-process timestamp monotonicity: the executor applies in
	// (ts, id) order, strictly increasing.
	if ps.started && !tsIDAfter(ts, id, ps.lastTS, ps.lastID) {
		c.err = fmt.Errorf("check: ordering: process %d executed %v at ts %d after (%v, ts %d) on shard %d",
			p, id, ts, ps.lastID, ps.lastTS, shard)
		return
	}
	ps.lastTS, ps.lastID, ps.started = ts, id, true

	if ps.resync {
		// Re-anchor the new incarnation. Three cases:
		//   - id is in the retained suffix: resume there (possibly
		//     *below* the old cursor — a crash can lose the WAL's
		//     unsynced tail, which the new incarnation re-executes);
		//   - id was pruned: a replayed command below the watermark,
		//     verified before the crash; its position is gone, skip it
		//     and keep looking for the anchor;
		//   - otherwise it is new: the incarnation is at the frontier.
		if idx, ok := ss.find(id, ss.base); ok {
			ps.next = idx
			ps.resync = false
		} else if pr := ss.prunedIDs[id.Source]; pr != nil && pr.Contains(id.Seq) {
			return
		} else {
			ps.next = ss.base + uint64(len(ss.ref))
			ps.resync = false
		}
	}

	// Total order: compare against the agreed reference order, or
	// extend it when this process is the first to execute index next.
	idx := ps.next
	frontier := ss.base + uint64(len(ss.ref))
	switch {
	case idx > frontier:
		c.err = fmt.Errorf("check: internal: process %d cursor %d beyond frontier %d on shard %d", p, idx, frontier, shard)
		return
	case idx == frontier:
		ss.ref = append(ss.ref, refEntry{id: id, ts: ts})
	default:
		want := ss.ref[idx-ss.base]
		if want.id != id {
			c.err = fmt.Errorf("check: ordering: process %d executed %v at position %d of shard %d, but the agreed order has %v",
				p, id, idx, shard, want.id)
			return
		}
		if want.ts != ts {
			c.err = fmt.Errorf("check: ordering: process %d executed %v at ts %d on shard %d, but it stabilized at ts %d elsewhere",
				p, id, ts, shard, want.ts)
			return
		}
	}
	ps.next = idx + 1
	c.pruneLocked(ss)
}

// Err returns the first violation observed, or nil.
func (c *Incremental) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// IncrementalStats snapshots the checker's memory accounting.
type IncrementalStats struct {
	// Seen counts executions fed in.
	Seen uint64 `json:"seen"`
	// Pruned counts reference entries discarded below the stable
	// watermark.
	Pruned uint64 `json:"pruned"`
	// Retained counts reference entries currently held across shards.
	Retained uint64 `json:"retained"`
	// Shards counts shard streams.
	Shards int `json:"shards"`
}

// Stats snapshots the checker.
func (c *Incremental) Stats() IncrementalStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := IncrementalStats{Seen: c.seen, Pruned: c.pruned, Shards: len(c.shards)}
	for _, ss := range c.shards {
		st.Retained += uint64(len(ss.ref))
	}
	return st
}

func (c *Incremental) shard(s ids.ShardID) *shardStream {
	ss, ok := c.shards[s]
	if !ok {
		ss = &shardStream{
			procs:     make(map[ids.ProcessID]*procStream),
			prunedIDs: make(map[ids.ProcessID]*promise.IntervalSet),
		}
		c.shards[s] = ss
	}
	return ss
}

// pruneLocked drops the reference prefix every registered process has
// confirmed, in batches.
func (c *Incremental) pruneLocked(ss *shardStream) {
	min := ss.base + uint64(len(ss.ref))
	for _, ps := range ss.procs {
		if ps.next < min {
			min = ps.next
		}
	}
	if min-ss.base < pruneBatch {
		return
	}
	drop := min - ss.base
	for _, e := range ss.ref[:drop] {
		set := ss.prunedIDs[e.id.Source]
		if set == nil {
			set = &promise.IntervalSet{}
			ss.prunedIDs[e.id.Source] = set
		}
		set.Add(e.id.Seq)
	}
	ss.ref = append([]refEntry(nil), ss.ref[drop:]...)
	ss.base = min
	c.pruned += drop
}

// find locates id in the retained suffix at an index >= from.
func (ss *shardStream) find(id ids.Dot, from uint64) (uint64, bool) {
	start := from
	if start < ss.base {
		start = ss.base
	}
	for i := start - ss.base; i < uint64(len(ss.ref)); i++ {
		if ss.ref[i].id == id {
			return ss.base + i, true
		}
	}
	return 0, false
}

func newProcStream(base uint64) *procStream {
	return &procStream{next: base, executed: make(map[ids.ProcessID]*promise.IntervalSet)}
}

// tsIDAfter reports whether (ts, id) strictly follows (lastTS, lastID)
// in the executor's (timestamp, command-id) order.
func tsIDAfter(ts uint64, id ids.Dot, lastTS uint64, lastID ids.Dot) bool {
	if ts != lastTS {
		return ts > lastTS
	}
	if id.Source != lastID.Source {
		return id.Source > lastID.Source
	}
	return id.Seq > lastID.Seq
}
