package psmr

import (
	"fmt"
	"log"
	"time"

	"tempo/internal/ids"
	"tempo/internal/membership"
)

// Dynamic membership orchestration: the join, drain and replace flows
// of the control plane. The membership package defines the epoch
// configs and their wire protocol, internal/cluster the runtime
// mechanisms (fencing, frontier answers, drain, bootstrap); this file
// sequences them into the three operator-visible verbs:
//
//   - Join: a fresh process takes over a Dead or Left slot — fetch the
//     current config from a seed replica, announce itself Joining at
//     the next incarnation, query the surviving shard peers for the
//     predecessor's observed frontier (the successor-safety floors),
//     bootstrap state over the sync protocol, start serving, then
//     flip the slot Active.
//   - Leave (graceful drain): mark the site Draining so clients
//     re-route, flush every hosted pipeline and the durable state,
//     then mark the slot Left — fenced until a successor joins.
//   - Remove: fence a crashed site (Dead) without drain, the first
//     half of a replacement; the paper's recovery protocol finishes
//     the dead rank's in-flight commands via the surviving quorums.

// Floor carries one joining replica's successor-safety floors: the
// max of the live shard peers' observed frontier for the slot's
// process id, plus membership.FrontierMargin.
type Floor struct {
	// Clock floors the logical clock (no pre-crash promise is reissued).
	Clock uint64
	// Seq floors the command-id sequence (no Dot is minted twice).
	Seq uint64
}

// View returns the group's live configuration view (never nil).
func (g *Group) View() *membership.View { return g.view }

// Epoch returns the group's current configuration epoch.
func (g *Group) Epoch() uint64 { return g.view.Epoch() }

// Site returns the site this group runs.
func (g *Group) Site() ids.SiteID { return g.cfg.Site }

// pushTimeout bounds one config round trip when the caller gave none.
const pushTimeout = 2 * time.Second

// Join admits this process into a running deployment at cfg.Site's
// slot, which must be Dead or Left (drain with Leave or fence with
// Remove first — joining over a live member would fork the slot).
// cfg.SiteAddrs needs only the local entry: the address this process
// binds and advertises; every other address comes from the fetched
// config. cfg.Topo may be nil (the config's derived topology is
// used). On return the group serves and the slot is Active at a new
// incarnation.
func Join(cfg Config, seed string, timeout time.Duration) (*Group, error) {
	if timeout <= 0 {
		timeout = pushTimeout
	}
	advertise, ok := cfg.SiteAddrs[cfg.Site]
	if !ok {
		return nil, fmt.Errorf("psmr: join needs the local site %d address", cfg.Site)
	}
	cur, err := membership.Fetch(seed, timeout)
	if err != nil {
		return nil, fmt.Errorf("psmr: fetch config from %s: %w", seed, err)
	}
	old, ok := cur.Member(cfg.Site)
	if !ok {
		return nil, fmt.Errorf("psmr: site %d not in the fetched config (epoch %d)", cfg.Site, cur.Epoch)
	}
	if old.Status != membership.Dead && old.Status != membership.Left {
		return nil, fmt.Errorf("psmr: site %d is %s at epoch %d; drain (Leave) or fence (Remove) it before joining a successor",
			cfg.Site, old.Status, cur.Epoch)
	}
	if cfg.Topo == nil {
		if cfg.Topo, err = cur.Topology(); err != nil {
			return nil, err
		}
	}
	joining, err := cur.WithMember(membership.Member{
		Site:        cfg.Site,
		Name:        old.Name,
		Addr:        advertise,
		Status:      membership.Joining,
		Incarnation: old.Incarnation + 1,
	})
	if err != nil {
		return nil, err
	}
	// Announce the Joining epoch to every live peer before anything
	// else: from here on the predecessor incarnation stays fenced (it
	// was Dead/Left already) and peers route this slot's traffic to the
	// new address. A push answered with a higher epoch means another
	// transition won the slot; abort rather than fork.
	for _, addr := range remoteAddrs(joining, cfg.Site) {
		got, err := membership.Push(addr, joining, timeout)
		if err != nil {
			return nil, fmt.Errorf("psmr: push joining epoch %d to %s: %w", joining.Epoch, addr, err)
		}
		if got.Epoch > joining.Epoch {
			return nil, fmt.Errorf("psmr: join lost an epoch race (%s is at epoch %d)", addr, got.Epoch)
		}
	}
	// Successor-safety floors: every live replica of each hosted shard
	// must answer for the predecessor's process id — the frontier
	// argument needs the max over all of them (see
	// membership.FrontierMargin for what the margin absorbs).
	floors := make(map[ids.ProcessID]Floor)
	for _, pi := range cfg.Topo.Processes() {
		if pi.Site != cfg.Site {
			continue
		}
		var maxClock, maxSeq uint64
		answered := 0
		for _, peer := range cfg.Topo.ShardProcesses(pi.Shard) {
			ps := cfg.Topo.Process(peer).Site
			if ps == cfg.Site {
				continue
			}
			pm, ok := joining.Member(ps)
			if !ok || pm.Addr == "" || pm.Status == membership.Dead || pm.Status == membership.Left {
				continue
			}
			clock, seq, ok, err := membership.QueryFrontier(pm.Addr, pi.ID, timeout)
			if err != nil || !ok {
				return nil, fmt.Errorf("psmr: frontier of process %d unavailable from site %d (%s): ok=%v err=%v; every live shard peer must answer",
					pi.ID, ps, pm.Addr, ok, err)
			}
			maxClock, maxSeq = max(maxClock, clock), max(maxSeq, seq)
			answered++
		}
		if answered == 0 {
			return nil, fmt.Errorf("psmr: no live peer replicates shard %d; cannot admit a successor", pi.Shard)
		}
		floors[pi.ID] = Floor{Clock: maxClock + membership.FrontierMargin, Seq: maxSeq + membership.FrontierMargin}
	}
	// Start serving under the Joining config: state bootstraps over the
	// sync protocol (inside durable recovery, or BootstrapFromPeers for
	// memory-only nodes), the floors apply before the first protocol
	// step, and peers already link to us.
	sa := make(map[ids.SiteID]string)
	for _, m := range joining.Members {
		if m.Addr != "" {
			sa[m.Site] = m.Addr
		}
	}
	sa[cfg.Site] = advertise
	cfg.SiteAddrs = sa
	cfg.Membership = joining
	cfg.Bootstrap = true
	cfg.JoinFloors = floors
	g, err := Start(cfg)
	if err != nil {
		return nil, err
	}
	// Caught up and serving: flip the slot Active and fan the epoch
	// out. Peers that miss the push hand it to clients on their next
	// refresh anyway (configs spread epidemically through fetch).
	active, err := joining.WithStatus(cfg.Site, membership.Active)
	if err != nil {
		g.Close()
		return nil, err
	}
	if _, err := g.view.Install(active); err != nil {
		g.Close()
		return nil, err
	}
	if _, err := membership.PushAll(remoteAddrs(active, cfg.Site), active, timeout); err != nil {
		log.Printf("psmr: activation epoch %d fan-out incomplete (config spreads via fetch): %v", active.Epoch, err)
	}
	log.Printf("psmr: site %d joined at %s (epoch %d, incarnation %d)", cfg.Site, advertise, active.Epoch, old.Incarnation+1)
	return g, nil
}

// Leave drains this site out of the deployment: one epoch marks it
// Draining (clients re-route as they refresh, new submissions are
// rejected with the draining error), every hosted node flushes its
// pipeline and rotates its durable state, and a final epoch marks the
// slot Left — fenced until a successor joins. The caller closes the
// group afterwards. A drain error (unflushed pipeline at timeout) is
// returned but the departure completes anyway: the surviving quorums
// recover whatever was in flight, as with a crash.
func (g *Group) Leave(timeout time.Duration) error {
	if timeout <= 0 {
		timeout = pushTimeout
	}
	cur := g.view.State().Config
	draining, err := cur.WithStatus(g.cfg.Site, membership.Draining)
	if err != nil {
		return err
	}
	if _, err := g.view.Install(draining); err != nil {
		return err
	}
	if _, err := membership.PushAll(remoteAddrs(draining, g.cfg.Site), draining, timeout); err != nil {
		log.Printf("psmr: draining epoch %d fan-out incomplete: %v", draining.Epoch, err)
	}
	var drainErr error
	for _, n := range g.nodes {
		if err := n.Drain(timeout); err != nil && drainErr == nil {
			drainErr = err
		}
	}
	left, err := draining.WithStatus(g.cfg.Site, membership.Left)
	if err != nil {
		return err
	}
	if _, err := membership.PushAll(remoteAddrs(left, g.cfg.Site), left, timeout); err != nil {
		return fmt.Errorf("psmr: no replica accepted the departure epoch %d: %w", left.Epoch, err)
	}
	// Install Left locally last: it fences this site's own slots.
	if _, err := g.view.Install(left); err != nil {
		return err
	}
	log.Printf("psmr: site %d left (epoch %d)", g.cfg.Site, left.Epoch)
	return drainErr
}

// Remove fences a crashed site without drain — the first half of a
// replacement. It is idempotent; the caller asserts the site is
// really gone AND that the shard's surviving replicas have been
// continuously live since the site last communicated (the frontier
// assumption, see membership.FrontierMargin). The returned config is
// the Dead epoch as accepted by the live replicas.
func Remove(seed string, site ids.SiteID, timeout time.Duration) (*membership.Config, error) {
	if timeout <= 0 {
		timeout = pushTimeout
	}
	cur, err := membership.Fetch(seed, timeout)
	if err != nil {
		return nil, fmt.Errorf("psmr: fetch config from %s: %w", seed, err)
	}
	m, ok := cur.Member(site)
	if !ok {
		return nil, fmt.Errorf("psmr: site %d not in the config (epoch %d)", site, cur.Epoch)
	}
	if m.Status == membership.Dead {
		return cur, nil
	}
	dead, err := cur.WithStatus(site, membership.Dead)
	if err != nil {
		return nil, err
	}
	n, err := membership.PushAll(remoteAddrs(dead, site), dead, timeout)
	if err != nil {
		return nil, fmt.Errorf("psmr: removal epoch %d rejected everywhere: %w", dead.Epoch, err)
	}
	if n == 0 {
		return nil, fmt.Errorf("psmr: no replica accepted the removal epoch %d", dead.Epoch)
	}
	log.Printf("psmr: site %d fenced (epoch %d, %d replicas accepted)", site, dead.Epoch, n)
	return dead, nil
}

// remoteAddrs lists the config fan-out targets: every routable member
// address except the subject site's own.
func remoteAddrs(c *membership.Config, self ids.SiteID) []string {
	seen := make(map[string]bool)
	var out []string
	for _, m := range c.Members {
		if m.Site == self || m.Addr == "" || seen[m.Addr] {
			continue
		}
		if m.Status == membership.Dead || m.Status == membership.Left {
			continue
		}
		seen[m.Addr] = true
		out = append(out, m.Addr)
	}
	return out
}
