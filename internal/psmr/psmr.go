// Package psmr deploys partial state-machine replication over real TCP
// clusters: one server process per site, hosting one Tempo replica for
// every shard that site replicates, behind a single listener and a
// single set of inter-site peer links (cluster.Group).
//
// The topology drives everything: which shards this site replicates,
// who the peer processes are, and how clients route. A cross-shard
// command submitted at any hosted replica is ordered independently by
// each accessed shard, the shard groups exchange stability signals over
// the shared links, and every replica executes it at the maximum
// timestamp across its shards — the paper's Algorithm 3, running over
// TCP instead of the in-process simulator.
//
//	topo := topology.EC2Sharded(4) // or any topology.New(...)
//	g, err := psmr.Start(psmr.Config{
//	    Topo:      topo,
//	    Site:      0,
//	    SiteAddrs: map[ids.SiteID]string{0: ":7001", 1: "b:7001", 2: "c:7001"},
//	})
//
// Clients use the topology-aware client package against ClientAddrs().
package psmr

import (
	"fmt"
	"net"
	"path/filepath"
	"time"

	"tempo/internal/cluster"
	"tempo/internal/ids"
	"tempo/internal/membership"
	"tempo/internal/proto"
	"tempo/internal/tempo"
	"tempo/internal/topology"
)

// Config describes one site's deployment.
type Config struct {
	// Topo is the full deployment topology (required).
	Topo *topology.Topology
	// Site is the site this process runs.
	Site ids.SiteID
	// SiteAddrs maps every site to its server's listen address
	// (required). The local entry is the address to bind.
	SiteAddrs map[ids.SiteID]string
	// Tempo tunes the hosted replicas.
	Tempo tempo.Config
	// BatchOps/BatchWindow tune per-shard submit batching (zero values
	// take the cluster defaults; BatchOps <= 1 or BatchWindow < 0
	// disables batching).
	BatchOps    int
	BatchWindow time.Duration
	// BatchPace, when non-zero, bounds each shard's consensus round
	// rate: at most one batch flush per pace interval per hosted shard,
	// each of at most BatchOps operations (see cluster.Node.SetBatchPace).
	BatchPace time.Duration
	// DataDir, when set, makes every hosted replica durable: each shard
	// persists under DataDir/shard-<id>.
	DataDir string
	// FsyncInterval batches WAL fsyncs (cluster.DurableConfig
	// semantics: 0 takes the default, negative fsyncs every append).
	FsyncInterval time.Duration
	// SnapshotEvery rotates each shard's log after this many applies.
	SnapshotEvery int
	// NoPeerSync skips the startup state-catch-up round (tests only).
	NoPeerSync bool
	// FsyncDelay injects a per-fsync stall into every hosted replica's
	// WAL (the chaos profiles' "slow-fsync site"); zero disables.
	FsyncDelay time.Duration
	// Shaper, when set, interposes WAN emulation and runtime partitions
	// on the site's outgoing inter-process messages (cluster.Shaper).
	// The caller owns it; one shaper may be shared across in-process
	// sites.
	Shaper *cluster.Shaper
	// ExecObserver, when set, is called by each hosted node's executor
	// for every command just before it is applied (instrumentation).
	ExecObserver func(proto.Stable)
	// Membership, when set, is the configuration epoch to start under
	// (a joiner passes the fetched Joining config); nil lifts the
	// static Topo/SiteAddrs wiring into epoch 1. Either way the group
	// and every hosted node share one live membership.View.
	Membership *membership.Config
	// Bootstrap runs a pre-serve state-catch-up round even without a
	// data directory (the join flow's snapshot bootstrap; durable
	// nodes sync inside recovery regardless).
	Bootstrap bool
	// JoinFloors carries a joining replica's successor-safety floors,
	// applied per hosted process before its first protocol step.
	JoinFloors map[ids.ProcessID]Floor
}

// Group is one running site: a cluster.Group plus its hosted nodes
// and the site's live configuration view.
type Group struct {
	cfg   Config
	cg    *cluster.Group
	nodes []*cluster.Node
	view  *membership.View
}

// Start binds the site's listen address and runs the group.
func Start(cfg Config) (*Group, error) {
	addr, ok := cfg.SiteAddrs[cfg.Site]
	if !ok {
		return nil, fmt.Errorf("psmr: no address for site %d", cfg.Site)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("psmr: listen %s: %w", addr, err)
	}
	g, err := StartListener(cfg, ln)
	if err != nil {
		ln.Close()
	}
	return g, err
}

// StartListener runs the site's group on an already-bound listener:
// it builds one Tempo replica and one hosted cluster node per shard the
// site replicates, starts the shared listener (so co-recovering sites
// can answer each other's state-sync requests), recovers each node, and
// opens for client traffic.
func StartListener(cfg Config, ln net.Listener) (*Group, error) {
	if cfg.Topo == nil {
		return nil, fmt.Errorf("psmr: config needs a topology")
	}
	addrs, shardOf, err := ProcessAddrs(cfg.Topo, cfg.SiteAddrs)
	if err != nil {
		return nil, err
	}
	// Every deployment runs under a membership view: the static wiring
	// becomes epoch 1, a joiner starts at its fetched epoch. The
	// latency-aware topology rides along so quorum selection is
	// unaffected.
	mcfg := cfg.Membership
	if mcfg == nil {
		mcfg = membership.FromTopology(cfg.Topo, cfg.SiteAddrs)
	} else if err := mcfg.MatchesTopology(cfg.Topo); err != nil {
		return nil, fmt.Errorf("psmr: membership config does not match the topology: %w", err)
	}
	view, err := membership.NewView(mcfg, cfg.Topo)
	if err != nil {
		return nil, err
	}
	cg := cluster.NewGroup(addrs, shardOf)
	cg.SetMembership(view)
	if cfg.Shaper != nil {
		cg.SetShaper(cfg.Shaper)
	}
	g := &Group{cfg: cfg, cg: cg, view: view}
	for _, pi := range cfg.Topo.Processes() {
		if pi.Site != cfg.Site {
			continue
		}
		rep := tempo.New(pi.ID, cfg.Topo, cfg.Tempo)
		n := cluster.NewNode(pi.ID, rep, addrs)
		// Zero-valued batch fields take the cluster defaults; setting one
		// must not silently zero the other (a zero window would disable
		// batching entirely).
		bo, bw := cfg.BatchOps, cfg.BatchWindow
		if bo == 0 {
			bo = cluster.DefaultBatchOps
		}
		if bw == 0 {
			bw = cluster.DefaultBatchWindow
		}
		n.SetBatch(bo, bw)
		if cfg.BatchPace > 0 {
			n.SetBatchPace(cfg.BatchPace)
		}
		n.SetSyncPeers(cfg.Topo.ShardProcesses(pi.Shard))
		n.SetMembership(view)
		if f, ok := cfg.JoinFloors[pi.ID]; ok {
			n.SetJoinFloor(f.Clock, f.Seq)
		}
		if cfg.ExecObserver != nil {
			n.SetExecObserver(cfg.ExecObserver)
		}
		if cfg.DataDir != "" {
			if err := n.SetDurable(cluster.DurableConfig{
				Dir:           filepath.Join(cfg.DataDir, fmt.Sprintf("shard-%d", pi.Shard)),
				SyncInterval:  cfg.FsyncInterval,
				SnapshotEvery: cfg.SnapshotEvery,
				NoPeerSync:    cfg.NoPeerSync,
				FsyncDelay:    cfg.FsyncDelay,
			}); err != nil {
				return nil, err
			}
		}
		cg.AddNode(n)
		g.nodes = append(g.nodes, n)
	}
	if len(g.nodes) == 0 {
		return nil, fmt.Errorf("psmr: site %d replicates no shard", cfg.Site)
	}
	cg.StartListener(ln)
	// Sequential recovery: each node's state-sync requests go to other
	// sites' groups (already listening, serving sync even mid-recovery),
	// never to a sibling node of this group.
	for _, n := range g.nodes {
		if cfg.Bootstrap && cfg.DataDir == "" {
			if err := n.BootstrapFromPeers(); err != nil {
				g.Close()
				return nil, err
			}
		}
		if err := n.StartHosted(); err != nil {
			g.Close()
			return nil, err
		}
	}
	cg.SetReady()
	return g, nil
}

// Addr returns the site's bound listen address.
func (g *Group) Addr() string { return g.cg.Addr() }

// Nodes returns the hosted nodes, one per locally replicated shard.
func (g *Group) Nodes() []*cluster.Node { return g.nodes }

// Close shuts the site down: nodes first (queueing shutdown replies for
// pending requests), then the shared listener and links.
func (g *Group) Close() {
	for _, n := range g.nodes {
		n.Close()
	}
	g.cg.Close()
}

// ProcessAddrs derives the per-process address map of a sharded
// deployment — every process is reachable at its site's shared address
// — plus the process-to-shard map the group demultiplexers use. It
// fails if any site of the topology lacks an address.
func ProcessAddrs(topo *topology.Topology, siteAddrs map[ids.SiteID]string) (map[ids.ProcessID]string, map[ids.ProcessID]ids.ShardID, error) {
	addrs := make(map[ids.ProcessID]string)
	shardOf := make(map[ids.ProcessID]ids.ShardID)
	for _, pi := range topo.Processes() {
		a, ok := siteAddrs[pi.Site]
		if !ok {
			return nil, nil, fmt.Errorf("psmr: no address for site %d (process %d)", pi.Site, pi.ID)
		}
		addrs[pi.ID] = a
		shardOf[pi.ID] = pi.Shard
	}
	return addrs, shardOf, nil
}
