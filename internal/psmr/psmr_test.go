package psmr_test

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"tempo/client"
	"tempo/internal/command"
	"tempo/internal/ids"
	"tempo/internal/psmr"
	"tempo/internal/tempo"
	"tempo/internal/topology"
)

// flatTopo builds a zero-RTT topology of the given shape.
func flatTopo(t *testing.T, sites, shards int) *topology.Topology {
	t.Helper()
	names := make([]string, sites)
	rtt := make([][]time.Duration, sites)
	for i := range names {
		names[i] = fmt.Sprintf("s%d", i)
		rtt[i] = make([]time.Duration, sites)
	}
	topo, err := topology.New(topology.Config{SiteNames: names, RTT: rtt, NumShards: shards, F: 1})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// startSites boots one psmr group per site on loopback and returns the
// per-site groups plus the site address map. mutate lets callers adjust
// each site's config (durability etc.) before start.
func startSites(t *testing.T, topo *topology.Topology, mutate func(site ids.SiteID, cfg *psmr.Config)) ([]*psmr.Group, map[ids.SiteID]string) {
	t.Helper()
	siteAddrs := make(map[ids.SiteID]string)
	lns := make(map[ids.SiteID]net.Listener)
	for _, site := range topo.Sites() {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[site.ID] = ln
		siteAddrs[site.ID] = ln.Addr().String()
	}
	// Start sites concurrently, as real deployments do: a durable site's
	// recovery asks its peers for state, so sites must be able to answer
	// each other's sync requests while they all come up.
	groups := make([]*psmr.Group, len(topo.Sites()))
	errs := make([]error, len(groups))
	var wg sync.WaitGroup
	for i, site := range topo.Sites() {
		cfg := psmr.Config{
			Topo:      topo,
			Site:      site.ID,
			SiteAddrs: siteAddrs,
			Tempo: tempo.Config{
				PromiseInterval: 2 * time.Millisecond,
				RecoveryTimeout: time.Hour,
			},
		}
		if mutate != nil {
			mutate(site.ID, &cfg)
		}
		wg.Add(1)
		go func(i int, cfg psmr.Config, ln net.Listener) {
			defer wg.Done()
			groups[i], errs[i] = psmr.StartListener(cfg, ln)
		}(i, cfg, lns[site.ID])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, g := range groups {
			g.Close()
		}
	})
	return groups, siteAddrs
}

func sessionAt(t *testing.T, topo *topology.Topology, siteAddrs map[ids.SiteID]string, site ids.SiteID) *client.Session {
	t.Helper()
	addrs, _, err := psmr.ProcessAddrs(topo, siteAddrs)
	if err != nil {
		t.Fatal(err)
	}
	s, err := client.New(client.Config{Addrs: addrs, Topo: topo, Site: site})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func keyOn(t *testing.T, topo *topology.Topology, shard ids.ShardID, tag string) string {
	t.Helper()
	for i := 0; i < 100000; i++ {
		k := fmt.Sprintf("%s-%d", tag, i)
		if topo.ShardOf(command.Key(k)) == shard {
			return k
		}
	}
	t.Fatalf("no key on shard %d", shard)
	return ""
}

// TestGroupClusterCrossShard boots a real 3-site, 2-shard TCP cluster
// of co-hosting groups and checks single-shard routing and cross-shard
// commands end-to-end: one merged result per command, atomicity across
// shards, and visibility from another site.
func TestGroupClusterCrossShard(t *testing.T) {
	topo := flatTopo(t, 3, 2)
	_, siteAddrs := startSites(t, topo, nil)
	sess := sessionAt(t, topo, siteAddrs, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	k0 := keyOn(t, topo, 0, "g0")
	k1 := keyOn(t, topo, 1, "g1")

	if err := sess.Put(ctx, k0, []byte("a")); err != nil {
		t.Fatalf("single-shard put shard 0: %v", err)
	}
	if err := sess.Put(ctx, k1, []byte("b")); err != nil {
		t.Fatalf("single-shard put shard 1: %v", err)
	}
	vals, err := sess.Execute(ctx,
		command.Op{Kind: command.Get, Key: command.Key(k1)},
		command.Op{Kind: command.Put, Key: command.Key(k0), Value: []byte("a2")},
	)
	if err != nil {
		t.Fatalf("cross-shard execute: %v", err)
	}
	if len(vals) != 2 || string(vals[0]) != "b" || vals[1] != nil {
		t.Fatalf("cross-shard result = %q, want [b, nil]", vals)
	}
	// Another site observes the cross-shard write.
	other := sessionAt(t, topo, siteAddrs, 2)
	got, err := other.Get(ctx, k0)
	if err != nil || string(got) != "a2" {
		t.Fatalf("site-2 read after cross-shard write: %q, %v", got, err)
	}
}

// TestGroupClusterPipelined drives many concurrent single- and
// cross-shard commands through one group-hosted cluster.
func TestGroupClusterPipelined(t *testing.T) {
	topo := flatTopo(t, 3, 4)
	groups, siteAddrs := startSites(t, topo, nil)
	sess := sessionAt(t, topo, siteAddrs, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	keys := make([]string, 4)
	for s := range keys {
		keys[s] = keyOn(t, topo, ids.ShardID(s), "p")
	}
	const n = 100
	futs := make([]*client.Future, 0, 2*n)
	for i := 0; i < n; i++ {
		futs = append(futs, sess.Do(ctx, command.Op{
			Kind: command.Put, Key: command.Key(fmt.Sprintf("%s-%d", keys[i%4], i)), Value: []byte{byte(i)},
		}))
		futs = append(futs, sess.Do(ctx,
			command.Op{Kind: command.Put, Key: command.Key(keys[i%4]), Value: []byte{byte(i)}},
			command.Op{Kind: command.Put, Key: command.Key(keys[(i+1)%4]), Value: []byte{byte(i)}},
		))
	}
	for i, f := range futs {
		if _, err := f.Wait(ctx); err != nil {
			t.Fatalf("future %d: %v", i, err)
		}
	}

	// The serving counters saw the load: submissions and applies on
	// every shard of the session's home site, and cross-shard machinery
	// (gateway submissions, watches) somewhere in the cluster.
	var cross, watches, applied uint64
	for _, g := range groups {
		for _, n := range g.Nodes() {
			st := n.Stats()
			cross += st.CrossSubmitted
			watches += st.Watches
			applied += st.AppliedCmds
		}
	}
	if cross == 0 || watches == 0 {
		t.Fatalf("cross-shard counters flat: cross=%d watches=%d", cross, watches)
	}
	if applied == 0 {
		t.Fatal("no applies counted")
	}
}

// TestGroupDurableRestart makes every site durable, writes state (incl.
// cross-shard), restarts one whole site in-process on the same data
// directories, and checks the restarted site serves the recovered state.
func TestGroupDurableRestart(t *testing.T) {
	topo := flatTopo(t, 3, 2)
	dirs := make(map[ids.SiteID]string)
	groups, siteAddrs := startSites(t, topo, func(site ids.SiteID, cfg *psmr.Config) {
		dirs[site] = t.TempDir()
		cfg.DataDir = dirs[site]
		cfg.FsyncInterval = -1 // fsync every append: restart loses nothing
	})
	sess := sessionAt(t, topo, siteAddrs, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	k0 := keyOn(t, topo, 0, "d0")
	k1 := keyOn(t, topo, 1, "d1")
	if _, err := sess.Execute(ctx,
		command.Op{Kind: command.Put, Key: command.Key(k0), Value: []byte("x")},
		command.Op{Kind: command.Put, Key: command.Key(k1), Value: []byte("x")},
	); err != nil {
		t.Fatalf("cross-shard put: %v", err)
	}

	// Restart site 1: close its group, rebind its address, recover.
	groups[1].Close()
	var ln net.Listener
	deadline := time.Now().Add(5 * time.Second)
	for {
		var err error
		ln, err = net.Listen("tcp", siteAddrs[1])
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebind site 1: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	g1, err := psmr.StartListener(psmr.Config{
		Topo:      topo,
		Site:      1,
		SiteAddrs: siteAddrs,
		Tempo: tempo.Config{
			PromiseInterval: 2 * time.Millisecond,
			RecoveryTimeout: time.Hour,
		},
		DataDir:       dirs[1],
		FsyncInterval: -1,
	}, ln)
	if err != nil {
		t.Fatalf("restart site 1: %v", err)
	}
	groups[1] = g1

	// A session homed at the restarted site reads the recovered state.
	restarted := sessionAt(t, topo, siteAddrs, 1)
	for _, k := range []string{k0, k1} {
		v, err := restarted.Get(ctx, k)
		if err != nil || string(v) != "x" {
			t.Fatalf("read %q after restart: %q, %v", k, v, err)
		}
	}
	// And the cluster still commits new cross-shard commands.
	if _, err := sess.Execute(ctx,
		command.Op{Kind: command.Put, Key: command.Key(k0), Value: []byte("y")},
		command.Op{Kind: command.Put, Key: command.Key(k1), Value: []byte("y")},
	); err != nil {
		t.Fatalf("cross-shard put after restart: %v", err)
	}
}
