package chaos

import (
	"fmt"
	"testing"
	"time"

	"tempo/internal/cluster"
	"tempo/internal/ids"
	"tempo/internal/topology"
)

func testTopo(t *testing.T, sites, shards int) *topology.Topology {
	t.Helper()
	names := make([]string, sites)
	rtt := make([][]time.Duration, sites)
	for i := range names {
		names[i] = fmt.Sprintf("s%d", i)
		rtt[i] = make([]time.Duration, sites)
	}
	topo, err := topology.New(topology.Config{SiteNames: names, RTT: rtt, NumShards: shards, F: 1})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestLookup(t *testing.T) {
	for _, name := range Names() {
		p, err := Lookup(name)
		if err != nil || p.Name != name {
			t.Fatalf("Lookup(%q) = %+v, %v", name, p, err)
		}
	}
	if len(Names()) < 5 {
		t.Fatalf("want at least 5 named profiles, have %v", Names())
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("Lookup of unknown profile succeeded")
	}
}

func TestRingUsesPaperRTT(t *testing.T) {
	p, err := Lookup("ring")
	if err != nil {
		t.Fatal(err)
	}
	// Table 2: ireland <-> n-california ping is 141ms; one-way is half.
	got := p.SiteLink(0, 1)
	if want := 141 * time.Millisecond / 2; got.Delay != want {
		t.Fatalf("ring 0->1 delay = %v, want %v (half the paper's RTT)", got.Delay, want)
	}
	if same := p.SiteLink(2, 2); same.Delay != 0 || same.Jitter != 0 {
		t.Fatalf("ring same-site link shaped: %+v", same)
	}
}

func TestTransatlanticAsymmetry(t *testing.T) {
	p, err := Lookup("transatlantic")
	if err != nil {
		t.Fatal(err)
	}
	east, west := p.SiteLink(0, 1), p.SiteLink(1, 0)
	if east.Delay == west.Delay {
		t.Fatalf("transatlantic link symmetric (%v both ways), want asymmetric routes", east.Delay)
	}
	if east.Loss == 0 || west.Loss == 0 {
		t.Fatal("transatlantic link lossless, want nonzero loss")
	}
	if near := p.SiteLink(0, 2); near.Delay >= east.Delay {
		t.Fatalf("near-site delay %v not below transatlantic %v", near.Delay, east.Delay)
	}
}

func TestPolicyForMapsProcessesToSites(t *testing.T) {
	topo := testTopo(t, 3, 2)
	p, err := Lookup("metro")
	if err != nil {
		t.Fatal(err)
	}
	pol := p.PolicyFor(topo)
	a := topo.ProcessAt(0, 0)
	b := topo.ProcessAt(1, 0)
	sib := topo.ProcessAt(0, 1)
	if got := pol(a, b); got.Delay != 5*time.Millisecond {
		t.Fatalf("cross-site policy = %+v, want 5ms delay", got)
	}
	if got := pol(a, sib); got.Delay != 0 || got.Jitter != 0 {
		t.Fatalf("co-sited policy shaped: %+v", got)
	}

	if lan, _ := Lookup("lan"); lan.PolicyFor(topo) != nil {
		t.Fatal("lan profile produced a shaping policy")
	}
}

func TestFsyncDelayFor(t *testing.T) {
	p, err := Lookup("slow-fsync")
	if err != nil {
		t.Fatal(err)
	}
	if p.FsyncDelayFor(2) == 0 {
		t.Fatal("slow-fsync profile has no delay on its slow site")
	}
	if p.FsyncDelayFor(0) != 0 || p.FsyncDelayFor(1) != 0 {
		t.Fatal("slow-fsync profile delays healthy sites")
	}
	if metro, _ := Lookup("metro"); metro.FsyncDelayFor(2) != 0 {
		t.Fatal("metro profile has a slow-fsync site")
	}
}

func TestSitePartitionHelpers(t *testing.T) {
	topo := testTopo(t, 3, 2)
	sh := cluster.NewShaper(nil)
	defer sh.Close()

	IsolateSite(sh, topo, 2)
	st := sh.State()
	// Site 2 hosts 2 processes, the other sites 4: 2*4 pairs, both
	// directions.
	if len(st.Cuts) != 16 {
		t.Fatalf("IsolateSite cut %d directed links, want 16", len(st.Cuts))
	}
	a0 := topo.ProcessAt(0, 0)
	a1 := topo.ProcessAt(0, 1)
	c0 := topo.ProcessAt(2, 0)
	if !cutIn(st, c0, a0) || !cutIn(st, a0, c0) {
		t.Fatal("site 2 process still linked to site 0")
	}
	if cutIn(st, a0, a1) {
		t.Fatal("IsolateSite severed an intra-site link")
	}
	HealSite(sh, topo, 2)
	if st := sh.State(); len(st.Cuts) != 0 {
		t.Fatalf("HealSite left cuts: %+v", st.Cuts)
	}
}

func cutIn(st cluster.ShaperState, from, to ids.ProcessID) bool {
	for _, c := range st.Cuts {
		if c[0] == from && c[1] == to {
			return true
		}
	}
	return false
}

func TestFlapCutsAndHeals(t *testing.T) {
	topo := testTopo(t, 3, 1)
	sh := cluster.NewShaper(nil)
	defer sh.Close()
	p := Profile{
		Name: "test-flap",
		Flap: &FlapSpec{A: 0, B: 1, Period: 60 * time.Millisecond, Down: 25 * time.Millisecond},
	}
	stop := p.StartFaults(sh, topo)

	sawCut, sawHeal := false, false
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) && !(sawCut && sawHeal) {
		if n := len(sh.State().Cuts); n > 0 {
			sawCut = true
			if sawCut && n != 2 {
				t.Fatalf("flap cut %d directed links, want 2", n)
			}
		} else if sawCut {
			sawHeal = true
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !sawCut || !sawHeal {
		t.Fatalf("flapper never cycled: sawCut=%v sawHeal=%v", sawCut, sawHeal)
	}
	stop()
	if st := sh.State(); len(st.Cuts) != 0 {
		t.Fatalf("stop left the flapped link cut: %+v", st.Cuts)
	}
	stop() // idempotent

	if lan, _ := Lookup("lan"); lan.StartFaults(sh, topo) == nil {
		t.Fatal("StartFaults returned nil stop for a fault-free profile")
	}
}
