// Package chaos names the fault-injection shapes used by benches, the
// vulture, and tempo-server: multi-region WAN profiles (link delay,
// jitter, loss, bandwidth per site pair), periodically flapping links,
// and slow-fsync sites — all mapped onto a deployment topology and
// enforced by a cluster.Shaper plus the WAL's FsyncDelay hook.
//
// Profiles are selected by name (-chaos-profile on tempo-server,
// -profile(s) on bench experiments):
//
//	lan            no shaping (the loopback baseline)
//	metro          5ms one-way mesh with 1ms jitter (a metro triangle)
//	ring           the paper's EC2 regions (Table 2 RTTs)
//	transatlantic  an asymmetric transatlantic pair plus a nearby site
//	flap           metro links with one link flapping down every cycle
//	slow-fsync     metro links with one site's WAL fsyncs stalled
package chaos

import (
	"fmt"
	"sort"
	"time"

	"tempo/internal/cluster"
	"tempo/internal/ids"
	"tempo/internal/topology"
)

// Profile is one named chaos shape: per-site-pair link policies plus
// optional standing faults (a flapping link, a slow-fsync site).
type Profile struct {
	// Name selects the profile from flags.
	Name string
	// Description is a one-line operator summary.
	Description string
	// SiteLink returns the one-direction policy from site `from` to
	// site `to`; nil means no link shaping. Implementations must be
	// safe for concurrent use and treat same-site pairs as unshaped.
	SiteLink func(from, to ids.SiteID) cluster.LinkPolicy
	// Flap, when set, is a standing fault: one inter-site link
	// periodically cut and healed (see StartFaults).
	Flap *FlapSpec
	// SlowFsyncSite, when non-negative, marks the site whose replicas
	// run with FsyncDelay on every WAL fsync.
	SlowFsyncSite int
	// FsyncDelay is the per-fsync stall for SlowFsyncSite's replicas.
	FsyncDelay time.Duration
}

// FlapSpec describes a flapping inter-site link: every Period the link
// between sites A and B is cut for Down, then healed again.
type FlapSpec struct {
	// A and B are the sites joined by the flapping link.
	A, B ids.SiteID
	// Period is the full flap cycle length.
	Period time.Duration
	// Down is how long the link stays cut within each period.
	Down time.Duration
}

// none marks profiles without a slow-fsync site.
const none = -1

// metroLink is the 5ms one-way mesh shared by metro/flap/slow-fsync.
func metroLink(from, to ids.SiteID) cluster.LinkPolicy {
	if from == to {
		return cluster.LinkPolicy{}
	}
	return cluster.LinkPolicy{Delay: 5 * time.Millisecond, Jitter: time.Millisecond}
}

// ringLink maps the paper's EC2 RTT matrix (Table 2) onto site pairs:
// one-way delay is half the measured RTT, with 2ms jitter. Sites beyond
// the five measured regions wrap around the matrix.
func ringLink(from, to ids.SiteID) cluster.LinkPolicy {
	if from == to {
		return cluster.LinkPolicy{}
	}
	m := topology.EC2RTT()
	a, b := int(from)%len(m), int(to)%len(m)
	if a == b {
		return cluster.LinkPolicy{}
	}
	return cluster.LinkPolicy{Delay: m[a][b] / 2, Jitter: 2 * time.Millisecond}
}

// transatlanticLink is an asymmetric pair: sites 0 and 1 sit on
// opposite sides of the Atlantic with asymmetric routes (40ms east,
// 55ms west, 0.1% loss), site 2 (and beyond) is near site 0.
func transatlanticLink(from, to ids.SiteID) cluster.LinkPolicy {
	if from == to {
		return cluster.LinkPolicy{}
	}
	pol := func(d time.Duration, loss float64) cluster.LinkPolicy {
		return cluster.LinkPolicy{Delay: d, Jitter: 2 * time.Millisecond, Loss: loss}
	}
	across := func(s ids.SiteID) bool { return s == 1 } // site 1 is alone across the ocean
	switch {
	case across(from) == across(to):
		return pol(8*time.Millisecond, 0)
	case across(to):
		return pol(40*time.Millisecond, 0.001)
	default:
		return pol(55*time.Millisecond, 0.001)
	}
}

// profiles is the registry, in presentation order.
var profiles = []Profile{
	{
		Name:          "lan",
		Description:   "no shaping: the loopback baseline",
		SlowFsyncSite: none,
	},
	{
		Name:          "metro",
		Description:   "5ms one-way mesh with 1ms jitter (metro triangle)",
		SiteLink:      metroLink,
		SlowFsyncSite: none,
	},
	{
		Name:          "ring",
		Description:   "the paper's EC2 regions (Table 2 RTTs, 2ms jitter)",
		SiteLink:      ringLink,
		SlowFsyncSite: none,
	},
	{
		Name:          "transatlantic",
		Description:   "asymmetric transatlantic pair (40/55ms, 0.1% loss) plus a nearby site",
		SiteLink:      transatlanticLink,
		SlowFsyncSite: none,
	},
	{
		Name:          "flap",
		Description:   "metro mesh with the 0-1 link down 1s in every 5s",
		SiteLink:      metroLink,
		Flap:          &FlapSpec{A: 0, B: 1, Period: 5 * time.Second, Down: time.Second},
		SlowFsyncSite: none,
	},
	{
		Name:          "slow-fsync",
		Description:   "metro mesh with site 2's WAL fsyncs stalled 5ms each",
		SiteLink:      metroLink,
		SlowFsyncSite: 2,
		FsyncDelay:    5 * time.Millisecond,
	},
}

// Names lists the profile names in presentation order.
func Names() []string {
	out := make([]string, len(profiles))
	for i, p := range profiles {
		out[i] = p.Name
	}
	return out
}

// Lookup resolves a profile by name.
func Lookup(name string) (Profile, error) {
	for _, p := range profiles {
		if p.Name == name {
			return p, nil
		}
	}
	names := Names()
	sort.Strings(names)
	return Profile{}, fmt.Errorf("chaos: unknown profile %q (have %v)", name, names)
}

// PolicyFor maps the profile's site-pair policies onto a topology's
// processes, for cluster.NewShaper.
func (p Profile) PolicyFor(topo *topology.Topology) cluster.PolicyFunc {
	if p.SiteLink == nil {
		return nil
	}
	siteOf := make(map[ids.ProcessID]ids.SiteID)
	for _, pi := range topo.Processes() {
		siteOf[pi.ID] = pi.Site
	}
	link := p.SiteLink
	return func(from, to ids.ProcessID) cluster.LinkPolicy {
		return link(siteOf[from], siteOf[to])
	}
}

// NewShaper builds a shaper enforcing the profile over topo. Even
// delay-free profiles get a shaper, so runtime partition control
// (cut/heal endpoints, benches) always has a hook.
func NewShaper(topo *topology.Topology, p Profile) *cluster.Shaper {
	return cluster.NewShaper(p.PolicyFor(topo))
}

// FsyncDelayFor returns the WAL fsync stall for one site under the
// profile (zero for all sites of profiles without a slow-fsync fault).
func (p Profile) FsyncDelayFor(site ids.SiteID) time.Duration {
	if p.SlowFsyncSite >= 0 && site == ids.SiteID(p.SlowFsyncSite) {
		return p.FsyncDelay
	}
	return 0
}

// StartFaults starts the profile's standing faults (today: the flapping
// link) against sh and returns a stop function that heals and waits for
// the fault goroutines. The returned stop is never nil and is safe to
// call for profiles without standing faults.
func (p Profile) StartFaults(sh *cluster.Shaper, topo *topology.Topology) (stop func()) {
	if p.Flap == nil {
		return func() {}
	}
	return startFlap(sh, topo, *p.Flap)
}

// sitePairs lists the directed process pairs joining two sites.
func sitePairs(topo *topology.Topology, a, b ids.SiteID) [][2]ids.ProcessID {
	var as, bs []ids.ProcessID
	for _, pi := range topo.Processes() {
		switch pi.Site {
		case a:
			as = append(as, pi.ID)
		case b:
			bs = append(bs, pi.ID)
		}
	}
	var out [][2]ids.ProcessID
	for _, x := range as {
		for _, y := range bs {
			out = append(out, [2]ids.ProcessID{x, y})
		}
	}
	return out
}

// CutSiteLink severs every link between the processes of sites a and b.
func CutSiteLink(sh *cluster.Shaper, topo *topology.Topology, a, b ids.SiteID) {
	for _, pr := range sitePairs(topo, a, b) {
		sh.Cut(pr[0], pr[1])
	}
}

// HealSiteLink heals every link between the processes of sites a and b.
func HealSiteLink(sh *cluster.Shaper, topo *topology.Topology, a, b ids.SiteID) {
	for _, pr := range sitePairs(topo, a, b) {
		sh.Heal(pr[0], pr[1])
	}
}

// IsolateSite cuts site s off from every other site (intra-site links
// between co-hosted shards keep working, like a datacenter losing its
// WAN uplink).
func IsolateSite(sh *cluster.Shaper, topo *topology.Topology, s ids.SiteID) {
	for _, site := range topo.Sites() {
		if site.ID != s {
			CutSiteLink(sh, topo, s, site.ID)
		}
	}
}

// HealSite undoes IsolateSite(s) (and any other cuts touching s's
// links to other sites).
func HealSite(sh *cluster.Shaper, topo *topology.Topology, s ids.SiteID) {
	for _, site := range topo.Sites() {
		if site.ID != s {
			HealSiteLink(sh, topo, s, site.ID)
		}
	}
}

// startFlap runs one flapping link until stop is called.
func startFlap(sh *cluster.Shaper, topo *topology.Topology, spec FlapSpec) func() {
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		t := time.NewTimer(spec.Period - spec.Down)
		defer t.Stop()
		down := false
		for {
			select {
			case <-done:
				if down {
					HealSiteLink(sh, topo, spec.A, spec.B)
				}
				return
			case <-t.C:
			}
			if down {
				HealSiteLink(sh, topo, spec.A, spec.B)
				t.Reset(spec.Period - spec.Down)
			} else {
				CutSiteLink(sh, topo, spec.A, spec.B)
				t.Reset(spec.Down)
			}
			down = !down
		}
	}()
	var once bool
	return func() {
		if !once {
			once = true
			close(done)
			<-exited
		}
	}
}
