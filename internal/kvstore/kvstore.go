// Package kvstore implements the replicated state machine of the
// evaluation: an in-memory key-value store. Each shard's replica holds one
// Store and applies the operations of executed commands that touch its
// shard, in execution order.
package kvstore

import (
	"sync"

	"tempo/internal/command"
	"tempo/internal/ids"
)

// Store is an in-memory key-value store. It is safe for concurrent use;
// protocols apply commands sequentially but runtimes may read
// concurrently.
type Store struct {
	mu      sync.RWMutex
	data    map[command.Key][]byte
	applied uint64
}

// New creates an empty store.
func New() *Store {
	return &Store{data: make(map[command.Key][]byte)}
}

// Apply executes the operations of cmd that belong to the given shard and
// returns their results (one entry per operation on the shard; reads
// return the stored value, writes return nil).
func (s *Store) Apply(cmd *command.Command, shard ids.ShardID, shardOf func(command.Key) ids.ShardID) *command.Result {
	// Batched commands carry many ops; size the result once instead of
	// growing it op by op.
	res := &command.Result{ID: cmd.ID, Shard: shard, Values: make([][]byte, 0, len(cmd.Ops))}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, op := range cmd.Ops {
		if shardOf != nil && shardOf(op.Key) != shard {
			continue
		}
		switch op.Kind {
		case command.Get:
			res.Values = append(res.Values, s.data[op.Key])
		case command.Put:
			v := make([]byte, len(op.Value))
			copy(v, op.Value)
			s.data[op.Key] = v
			res.Values = append(res.Values, nil)
		}
	}
	s.applied++
	return res
}

// Get returns the current value of a key and whether it is present.
func (s *Store) Get(k command.Key) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.data[k]
	return v, ok
}

// Len returns the number of keys stored.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// Applied returns the number of commands applied.
func (s *Store) Applied() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.applied
}
