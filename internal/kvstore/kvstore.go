// Package kvstore implements the replicated state machine of the
// evaluation: an in-memory key-value store. Each shard's replica holds one
// Store and applies the operations of executed commands that touch its
// shard, in execution order.
//
// For durable deployments the store also tracks the applied watermark —
// the (timestamp, id) point of the last command applied — and can
// serialize itself to a snapshot that is consistent with that watermark
// (both are written under one lock acquisition). The cluster runtime's
// durability layer (internal/cluster with a data directory) snapshots
// stores to bound WAL length and ships them to restarting peers.
package kvstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"io"
	"sync"

	"tempo/internal/command"
	"tempo/internal/ids"
)

// ErrCorrupt reports an undecodable snapshot.
var ErrCorrupt = errors.New("kvstore: corrupt snapshot")

// snapMagic heads every serialized snapshot; the trailing byte versions
// the format.
var snapMagic = [4]byte{'T', 'K', 'V', 1}

// Store is an in-memory key-value store. It is safe for concurrent use;
// protocols apply commands sequentially but runtimes may read
// concurrently.
type Store struct {
	mu      sync.RWMutex
	data    map[command.Key][]byte
	applied uint64
	// Applied watermark: commands are applied in (ts, id) order, so the
	// last applied point identifies exactly which prefix of the execution
	// order this store's contents reflect.
	wmTS uint64
	wmID ids.Dot
}

// New creates an empty store.
func New() *Store {
	return &Store{data: make(map[command.Key][]byte)}
}

// Apply executes the operations of cmd that belong to the given shard and
// returns their results (one entry per operation on the shard; reads
// return the stored value, writes return nil).
func (s *Store) Apply(cmd *command.Command, shard ids.ShardID, shardOf func(command.Key) ids.ShardID) *command.Result {
	return s.ApplyAt(cmd, shard, shardOf, 0)
}

// ApplyAt is Apply for stores that track the applied watermark: ts is the
// command's final timestamp in the execution order. A command at or below
// the current watermark has already been applied (the store was restored
// from a snapshot or replayed log covering it) and is skipped — the
// returned result then carries no values, which is fine because the only
// idempotent re-applies are replay and catch-up paths with no client
// waiting. ts 0 (protocols that do not timestamp) bypasses the guard and
// leaves the watermark untouched.
func (s *Store) ApplyAt(cmd *command.Command, shard ids.ShardID, shardOf func(command.Key) ids.ShardID, ts uint64) *command.Result {
	// Batched commands carry many ops; size the result once instead of
	// growing it op by op.
	res := &command.Result{ID: cmd.ID, Shard: shard, Values: make([][]byte, 0, len(cmd.Ops))}
	s.mu.Lock()
	defer s.mu.Unlock()
	if ts != 0 {
		if ts < s.wmTS || (ts == s.wmTS && !s.wmID.Less(cmd.ID)) {
			return res // at or below the watermark: already applied
		}
		s.wmTS, s.wmID = ts, cmd.ID
	}
	for _, op := range cmd.Ops {
		if shardOf != nil && shardOf(op.Key) != shard {
			continue
		}
		switch op.Kind {
		case command.Get:
			res.Values = append(res.Values, s.data[op.Key])
		case command.Put:
			v := make([]byte, len(op.Value))
			copy(v, op.Value)
			s.data[op.Key] = v
			res.Values = append(res.Values, nil)
		}
	}
	s.applied++
	return res
}

// Get returns the current value of a key and whether it is present.
func (s *Store) Get(k command.Key) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.data[k]
	return v, ok
}

// Len returns the number of keys stored.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// Applied returns the number of commands applied.
func (s *Store) Applied() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.applied
}

// AppliedWM returns the applied watermark: the (ts, id) of the last
// command applied through ApplyAt. Everything at or below it is reflected
// in the store's contents.
func (s *Store) AppliedWM() (uint64, ids.Dot) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.wmTS, s.wmID
}

// WriteSnapshot serializes the store to w: magic, watermark, applied
// count, then every key/value pair. The contents and the watermark are
// read under one lock acquisition, so the snapshot is consistent — it
// holds exactly the effects of the execution prefix the watermark names,
// even while an executor keeps applying concurrently.
func (s *Store) WriteSnapshot(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snapMagic[:]); err != nil {
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	for _, v := range []uint64{s.wmTS, uint64(s.wmID.Source), s.wmID.Seq, s.applied, uint64(len(s.data))} {
		if err := writeUvarint(v); err != nil {
			return err
		}
	}
	for k, v := range s.data {
		if err := writeUvarint(uint64(len(k))); err != nil {
			return err
		}
		if _, err := bw.WriteString(string(k)); err != nil {
			return err
		}
		if err := writeUvarint(uint64(len(v))); err != nil {
			return err
		}
		if _, err := bw.Write(v); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// maxSnapshotEntry bounds a single key or value length claimed by a
// snapshot, and maxKeysHint bounds the map pre-size. Snapshots from the
// local WAL are CRC-checked, but peer-sync replies arrive over plain
// TCP from whatever answered the port — a lying length must fail with
// ErrCorrupt (at worst after one bounded allocation), never panic or
// OOM the recovering node.
const (
	maxSnapshotEntry = 64 << 20
	maxKeysHint      = 1 << 20
)

// ReadSnapshot replaces the store's contents and watermark with a
// snapshot produced by WriteSnapshot. It is meant for recovery paths
// (log replay, peer catch-up) before or between applies; a partial read
// error leaves the store unchanged.
func (s *Store) ReadSnapshot(r io.Reader) error {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return ErrCorrupt
	}
	if magic != snapMagic {
		return ErrCorrupt
	}
	var hdr [5]uint64
	for i := range hdr {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return ErrCorrupt
		}
		hdr[i] = v
	}
	nkeys := hdr[4]
	data := make(map[command.Key][]byte, min(nkeys, maxKeysHint))
	readBlob := func() ([]byte, error) {
		n, err := binary.ReadUvarint(br)
		if err != nil || n > maxSnapshotEntry {
			return nil, ErrCorrupt
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return nil, ErrCorrupt
		}
		return b, nil
	}
	for i := uint64(0); i < nkeys; i++ {
		kb, err := readBlob()
		if err != nil {
			return err
		}
		vb, err := readBlob()
		if err != nil {
			return err
		}
		data[command.Key(kb)] = vb
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wmTS = hdr[0]
	s.wmID = ids.Dot{Source: ids.ProcessID(hdr[1]), Seq: hdr[2]}
	s.applied = hdr[3]
	s.data = data
	return nil
}
