package kvstore

import (
	"bytes"
	"sync"
	"testing"

	"tempo/internal/command"
	"tempo/internal/ids"
)

func dot(s, q int) ids.Dot { return ids.Dot{Source: ids.ProcessID(s), Seq: uint64(q)} }

func TestPutGet(t *testing.T) {
	s := New()
	put := command.NewPut(dot(1, 1), "k", []byte("v1"))
	res := s.Apply(put, 0, nil)
	if len(res.Values) != 1 || res.Values[0] != nil {
		t.Fatalf("put result = %v", res.Values)
	}
	get := command.NewGet(dot(1, 2), "k")
	res = s.Apply(get, 0, nil)
	if len(res.Values) != 1 || !bytes.Equal(res.Values[0], []byte("v1")) {
		t.Fatalf("get result = %q", res.Values)
	}
	if v, ok := s.Get("k"); !ok || !bytes.Equal(v, []byte("v1")) {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	if s.Applied() != 2 || s.Len() != 1 {
		t.Fatalf("applied=%d len=%d", s.Applied(), s.Len())
	}
}

func TestApplyShardFilter(t *testing.T) {
	s := New()
	shardOf := func(k command.Key) ids.ShardID {
		if k == "a" {
			return 0
		}
		return 1
	}
	c := command.New(dot(1, 1),
		command.Op{Kind: command.Put, Key: "a", Value: []byte("x")},
		command.Op{Kind: command.Put, Key: "b", Value: []byte("y")},
	)
	s.Apply(c, 0, shardOf)
	if _, ok := s.Get("b"); ok {
		t.Error("shard 0 store must not apply shard 1 keys")
	}
	if v, _ := s.Get("a"); !bytes.Equal(v, []byte("x")) {
		t.Error("shard 0 key not applied")
	}
}

func TestWriteIsolation(t *testing.T) {
	s := New()
	val := []byte("mutable")
	s.Apply(command.NewPut(dot(1, 1), "k", val), 0, nil)
	val[0] = 'X'
	if v, _ := s.Get("k"); v[0] == 'X' {
		t.Error("store must copy values on write")
	}
}

func TestConcurrentReads(t *testing.T) {
	s := New()
	s.Apply(command.NewPut(dot(1, 1), "k", []byte("v")), 0, nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				s.Get("k")
				s.Len()
			}
		}()
	}
	wg.Wait()
}

func TestMissingKey(t *testing.T) {
	s := New()
	res := s.Apply(command.NewGet(dot(1, 1), "nope"), 0, nil)
	if res.Values[0] != nil {
		t.Error("missing key should read nil")
	}
}
