package kvstore

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"tempo/internal/command"
	"tempo/internal/ids"
)

func dot(s, q int) ids.Dot { return ids.Dot{Source: ids.ProcessID(s), Seq: uint64(q)} }

func TestPutGet(t *testing.T) {
	s := New()
	put := command.NewPut(dot(1, 1), "k", []byte("v1"))
	res := s.Apply(put, 0, nil)
	if len(res.Values) != 1 || res.Values[0] != nil {
		t.Fatalf("put result = %v", res.Values)
	}
	get := command.NewGet(dot(1, 2), "k")
	res = s.Apply(get, 0, nil)
	if len(res.Values) != 1 || !bytes.Equal(res.Values[0], []byte("v1")) {
		t.Fatalf("get result = %q", res.Values)
	}
	if v, ok := s.Get("k"); !ok || !bytes.Equal(v, []byte("v1")) {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	if s.Applied() != 2 || s.Len() != 1 {
		t.Fatalf("applied=%d len=%d", s.Applied(), s.Len())
	}
}

func TestApplyShardFilter(t *testing.T) {
	s := New()
	shardOf := func(k command.Key) ids.ShardID {
		if k == "a" {
			return 0
		}
		return 1
	}
	c := command.New(dot(1, 1),
		command.Op{Kind: command.Put, Key: "a", Value: []byte("x")},
		command.Op{Kind: command.Put, Key: "b", Value: []byte("y")},
	)
	s.Apply(c, 0, shardOf)
	if _, ok := s.Get("b"); ok {
		t.Error("shard 0 store must not apply shard 1 keys")
	}
	if v, _ := s.Get("a"); !bytes.Equal(v, []byte("x")) {
		t.Error("shard 0 key not applied")
	}
}

func TestWriteIsolation(t *testing.T) {
	s := New()
	val := []byte("mutable")
	s.Apply(command.NewPut(dot(1, 1), "k", val), 0, nil)
	val[0] = 'X'
	if v, _ := s.Get("k"); v[0] == 'X' {
		t.Error("store must copy values on write")
	}
}

func TestConcurrentReads(t *testing.T) {
	s := New()
	s.Apply(command.NewPut(dot(1, 1), "k", []byte("v")), 0, nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				s.Get("k")
				s.Len()
			}
		}()
	}
	wg.Wait()
}

func TestMissingKey(t *testing.T) {
	s := New()
	res := s.Apply(command.NewGet(dot(1, 1), "nope"), 0, nil)
	if res.Values[0] != nil {
		t.Error("missing key should read nil")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := New()
	for i := 0; i < 100; i++ {
		cmd := command.NewPut(ids.Dot{Source: 1, Seq: uint64(i + 1)}, command.Key(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i)))
		s.ApplyAt(cmd, 0, nil, uint64(i+1))
	}
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	r := New()
	if err := r.ReadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 100 || r.Applied() != 100 {
		t.Fatalf("restored len=%d applied=%d", r.Len(), r.Applied())
	}
	ts, id := r.AppliedWM()
	if ts != 100 || id != (ids.Dot{Source: 1, Seq: 100}) {
		t.Fatalf("restored wm = %d %v", ts, id)
	}
	v, ok := r.Get("k42")
	if !ok || string(v) != "v42" {
		t.Fatalf("k42 = %q, %v", v, ok)
	}
	// Truncated snapshot leaves the target untouched.
	var buf2 bytes.Buffer
	if err := s.WriteSnapshot(&buf2); err != nil {
		t.Fatal(err)
	}
	cut := buf2.Bytes()[:buf2.Len()/2]
	fresh := New()
	if err := fresh.ReadSnapshot(bytes.NewReader(cut)); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
	if fresh.Len() != 0 {
		t.Fatalf("failed restore mutated the store: len=%d", fresh.Len())
	}
}

func TestApplyAtWatermarkIdempotent(t *testing.T) {
	s := New()
	put := func(seq, ts uint64, val string) *command.Result {
		return s.ApplyAt(command.NewPut(ids.Dot{Source: 2, Seq: seq}, "k", []byte(val)), 0, nil, ts)
	}
	put(1, 10, "first")
	put(2, 20, "second")
	// Replaying history at or below the watermark is a no-op.
	if res := put(1, 10, "stale-replay"); len(res.Values) != 0 {
		t.Fatalf("replay below watermark produced values: %v", res.Values)
	}
	if res := put(2, 20, "same-point"); len(res.Values) != 0 {
		t.Fatalf("replay at watermark produced values: %v", res.Values)
	}
	if v, _ := s.Get("k"); string(v) != "second" {
		t.Fatalf("k = %q after replays, want %q", v, "second")
	}
	if s.Applied() != 2 {
		t.Fatalf("applied = %d, want 2", s.Applied())
	}
	// ts 0 bypasses the guard (protocols that do not timestamp).
	s.Apply(command.NewPut(ids.Dot{Source: 9, Seq: 9}, "k", []byte("untimed")), 0, nil)
	if v, _ := s.Get("k"); string(v) != "untimed" {
		t.Fatalf("k = %q after untimestamped apply", v)
	}
	if ts, _ := s.AppliedWM(); ts != 20 {
		t.Fatalf("untimestamped apply moved the watermark to %d", ts)
	}
}
