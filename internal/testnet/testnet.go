// Package testnet provides a deterministic in-memory message pump for
// protocol-level tests: messages are delivered with zero latency and
// per-link FIFO order (as TCP provides), ticks are injected manually, and
// messages can be dropped or held to script failure scenarios. An optional
// seeded RNG interleaves different links to explore schedules while
// preserving per-link FIFO.
//
// It is intentionally much simpler than internal/sim (no time, no
// latency); use it to unit-test protocol logic, and internal/sim for
// end-to-end behaviour.
package testnet

import (
	"math/rand"
	"sort"
	"time"

	"tempo/internal/command"
	"tempo/internal/ids"
	"tempo/internal/proto"
)

// Env is an in-flight message.
type Env struct {
	From, To ids.ProcessID
	Msg      proto.Message
}

type link struct{ from, to ids.ProcessID }

// Net is the harness.
type Net struct {
	Replicas map[ids.ProcessID]proto.Replica
	links    map[link][]Env
	order    []link // links with queued traffic, in arrival order
	held     []Env
	now      time.Duration
	// Rng, if set, picks which link delivers next (per-link FIFO is
	// always preserved).
	Rng *rand.Rand
	// Drop decides whether to drop a message (e.g. crashed destination);
	// nil drops nothing.
	Drop func(Env) bool
	// Duplicate decides whether to deliver a message twice (modelling
	// sender retries); nil duplicates nothing.
	Duplicate func(Env) bool
	// Hold decides whether to park a message for later release; nil
	// holds nothing.
	Hold func(Env) bool
	// Delivered counts delivered messages.
	Delivered int
}

// New creates a harness over the given replicas.
func New(replicas ...proto.Replica) *Net {
	n := &Net{
		Replicas: make(map[ids.ProcessID]proto.Replica, len(replicas)),
		links:    make(map[link][]Env),
	}
	for _, r := range replicas {
		n.Replicas[r.ID()] = r
	}
	return n
}

// Submit injects a client command at a process and enqueues the resulting
// messages.
func (n *Net) Submit(at ids.ProcessID, cmd *command.Command) {
	n.enqueue(at, n.Replicas[at].Submit(cmd))
}

// Deliver hands a message straight to a replica (bypassing the queue) and
// enqueues whatever it produces. Tests use it to script exact scenarios.
func (n *Net) Deliver(from, to ids.ProcessID, msg proto.Message) {
	n.Delivered++
	n.enqueue(to, n.Replicas[to].Handle(from, msg))
}

// enqueue expands actions into per-destination envelopes.
func (n *Net) enqueue(from ids.ProcessID, acts []proto.Action) {
	for _, a := range acts {
		for _, to := range a.To {
			e := Env{From: from, To: to, Msg: a.Msg}
			if n.Drop != nil && n.Drop(e) {
				continue
			}
			if n.Hold != nil && n.Hold(e) {
				n.held = append(n.held, e)
				continue
			}
			l := link{from, to}
			if len(n.links[l]) == 0 {
				n.order = append(n.order, l)
			}
			n.links[l] = append(n.links[l], e)
			if n.Duplicate != nil && n.Duplicate(e) {
				n.links[l] = append(n.links[l], e)
			}
		}
	}
}

// Step delivers one message (the oldest link's head, or a random link's
// head if Rng is set); returns false if the network is quiet.
func (n *Net) Step() bool {
	if len(n.order) == 0 {
		return false
	}
	idx := 0
	if n.Rng != nil {
		idx = n.Rng.Intn(len(n.order))
	}
	l := n.order[idx]
	q := n.links[l]
	e := q[0]
	if len(q) == 1 {
		delete(n.links, l)
		n.order = append(n.order[:idx], n.order[idx+1:]...)
	} else {
		n.links[l] = q[1:]
		// Rotate the link to the back so links are served round-robin
		// rather than drained one at a time (per-link FIFO preserved).
		n.order = append(append(n.order[:idx], n.order[idx+1:]...), l)
	}
	r, ok := n.Replicas[e.To]
	if !ok {
		return true
	}
	n.Delivered++
	n.enqueue(e.To, r.Handle(e.From, e.Msg))
	return true
}

// Drain delivers messages until the network is quiet (bounded by limit
// deliveries to catch livelock; 0 means 1e6).
func (n *Net) Drain(limit int) int {
	if limit == 0 {
		limit = 1_000_000
	}
	steps := 0
	for steps < limit && n.Step() {
		steps++
	}
	return steps
}

// Tick advances fake time and invokes Tick on every replica (in id order
// for determinism), enqueuing the results.
func (n *Net) Tick(dt time.Duration) {
	n.now += dt
	order := make([]ids.ProcessID, 0, len(n.Replicas))
	for id := range n.Replicas {
		order = append(order, id)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, id := range order {
		n.enqueue(id, n.Replicas[id].Tick(n.now))
	}
}

// Settle alternates ticks and drains; use it to reach quiescence
// including periodic work (promise broadcast, recovery).
func (n *Net) Settle(rounds int, dt time.Duration) {
	for i := 0; i < rounds; i++ {
		n.Tick(dt)
		n.Drain(0)
	}
}

// ReleaseHeld re-enqueues all held messages (Hold is not re-applied to
// them).
func (n *Net) ReleaseHeld() {
	hold := n.Hold
	n.Hold = nil
	held := n.held
	n.held = nil
	for _, e := range held {
		n.enqueue(e.From, []proto.Action{proto.Send(e.Msg, e.To)})
	}
	n.Hold = hold
}

// HeldCount returns the number of parked messages.
func (n *Net) HeldCount() int { return len(n.held) }

// QueueLen returns the number of in-flight messages.
func (n *Net) QueueLen() int {
	total := 0
	for _, q := range n.links {
		total += len(q)
	}
	return total
}

// Crash marks a replica crashed (if supported) and drops all its traffic,
// present and future.
func (n *Net) Crash(id ids.ProcessID) {
	if c, ok := n.Replicas[id].(proto.Crashable); ok {
		c.Crash()
	}
	prev := n.Drop
	n.Drop = func(e Env) bool {
		if e.From == id || e.To == id {
			return true
		}
		if prev != nil {
			return prev(e)
		}
		return false
	}
	for l := range n.links {
		if l.from == id || l.to == id {
			delete(n.links, l)
		}
	}
	var order []link
	for _, l := range n.order {
		if l.from != id && l.to != id {
			order = append(order, l)
		}
	}
	n.order = order
}

// SetLeader informs every leader-aware replica of a new leader rank.
func (n *Net) SetLeader(rank ids.Rank) {
	for _, r := range n.Replicas {
		if la, ok := r.(proto.LeaderAware); ok {
			la.SetLeader(rank)
		}
	}
}

// DrainExecuted collects executed commands from every replica, keyed by
// process.
func (n *Net) DrainExecuted() map[ids.ProcessID][]proto.Executed {
	out := make(map[ids.ProcessID][]proto.Executed)
	for id, r := range n.Replicas {
		if ex := r.Drain(); len(ex) > 0 {
			out[id] = ex
		}
	}
	return out
}
