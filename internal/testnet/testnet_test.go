package testnet

import (
	"testing"
	"time"

	"tempo/internal/command"
	"tempo/internal/ids"
	"tempo/internal/proto"
)

// echoReplica is a minimal replica: on submit it pings every peer; on
// ping it replies pong; pongs count as "executed".
type echoReplica struct {
	id      ids.ProcessID
	peers   []ids.ProcessID
	pongs   int
	ticks   int
	crashed bool
	leader  ids.Rank
}

type ping struct{ N int }
type pong struct{ N int }

func (ping) Size() int { return 8 }
func (pong) Size() int { return 8 }

func (e *echoReplica) ID() ids.ProcessID { return e.id }
func (e *echoReplica) Submit(cmd *command.Command) []proto.Action {
	if e.crashed {
		return nil
	}
	return []proto.Action{proto.Send(ping{N: int(cmd.ID.Seq)}, e.peers...)}
}
func (e *echoReplica) Handle(from ids.ProcessID, msg proto.Message) []proto.Action {
	if e.crashed {
		return nil
	}
	switch m := msg.(type) {
	case ping:
		return []proto.Action{proto.Send(pong(m), from)}
	case pong:
		e.pongs++
	}
	return nil
}
func (e *echoReplica) Tick(time.Duration) []proto.Action {
	e.ticks++
	return nil
}
func (e *echoReplica) Drain() []proto.Executed { return nil }
func (e *echoReplica) Crash()                  { e.crashed = true }
func (e *echoReplica) SetLeader(r ids.Rank)    { e.leader = r }

func newTrio() (*echoReplica, *echoReplica, *echoReplica, *Net) {
	a := &echoReplica{id: 1, peers: []ids.ProcessID{2, 3}}
	b := &echoReplica{id: 2, peers: []ids.ProcessID{1, 3}}
	c := &echoReplica{id: 3, peers: []ids.ProcessID{1, 2}}
	return a, b, c, New(a, b, c)
}

func cmdAt(p ids.ProcessID, seq int) *command.Command {
	return command.NewPut(ids.Dot{Source: p, Seq: uint64(seq)}, "k", nil)
}

func TestPingPongDelivery(t *testing.T) {
	a, _, _, net := newTrio()
	net.Submit(1, cmdAt(1, 1))
	if steps := net.Drain(0); steps != 4 { // 2 pings + 2 pongs
		t.Fatalf("delivered %d messages, want 4", steps)
	}
	if a.pongs != 2 {
		t.Fatalf("a received %d pongs, want 2", a.pongs)
	}
}

func TestPerLinkFIFO(t *testing.T) {
	_, b, _, net := newTrio()
	_ = b
	// Two pings on the same link must arrive in order; we detect order
	// through the pong sequence at the sender.
	var got []int
	orig := net.Replicas[ids.ProcessID(1)]
	net.Replicas[1] = &hookReplica{Replica: orig, onPong: func(n int) { got = append(got, n) }}
	net.Submit(1, cmdAt(1, 10))
	net.Submit(1, cmdAt(1, 20))
	net.Drain(0)
	if len(got) != 4 || got[0] != 10 || got[1] != 10 || got[2] != 20 || got[3] != 20 {
		// Round-robin across the two peer links: 10,10 then 20,20.
		t.Fatalf("pong order %v violates per-link FIFO", got)
	}
}

type hookReplica struct {
	proto.Replica
	onPong func(int)
}

func (h *hookReplica) Handle(from ids.ProcessID, msg proto.Message) []proto.Action {
	if p, ok := msg.(pong); ok && h.onPong != nil {
		h.onPong(p.N)
	}
	return h.Replica.Handle(from, msg)
}

func TestDropFilter(t *testing.T) {
	a, _, _, net := newTrio()
	net.Drop = func(e Env) bool { return e.To == 3 }
	net.Submit(1, cmdAt(1, 1))
	net.Drain(0)
	if a.pongs != 1 {
		t.Fatalf("pongs = %d, want 1 (replies from 3 dropped)", a.pongs)
	}
}

func TestHoldAndRelease(t *testing.T) {
	a, _, _, net := newTrio()
	net.Hold = func(e Env) bool { _, isPong := e.Msg.(pong); return isPong }
	net.Submit(1, cmdAt(1, 1))
	net.Drain(0)
	if a.pongs != 0 || net.HeldCount() != 2 {
		t.Fatalf("pongs=%d held=%d, want 0/2", a.pongs, net.HeldCount())
	}
	net.ReleaseHeld()
	net.Drain(0)
	if a.pongs != 2 {
		t.Fatalf("pongs=%d after release, want 2", a.pongs)
	}
}

func TestDuplicateFilter(t *testing.T) {
	a, _, _, net := newTrio()
	net.Duplicate = func(e Env) bool { _, isPing := e.Msg.(ping); return isPing }
	net.Submit(1, cmdAt(1, 1))
	net.Drain(0)
	if a.pongs != 4 { // each duplicated ping produces a pong
		t.Fatalf("pongs = %d, want 4 under duplication", a.pongs)
	}
}

func TestCrashStopsTraffic(t *testing.T) {
	a, b, _, net := newTrio()
	net.Submit(1, cmdAt(1, 1))
	net.Crash(2)
	net.Drain(0)
	if !b.crashed {
		t.Error("crash must reach the replica")
	}
	if a.pongs != 1 {
		t.Fatalf("pongs = %d, want 1 (only process 3 replies)", a.pongs)
	}
	// Future traffic to/from 2 is dropped too.
	net.Submit(1, cmdAt(1, 2))
	net.Drain(0)
	if a.pongs != 2 {
		t.Fatalf("pongs = %d, want 2", a.pongs)
	}
}

func TestTickReachesAllReplicas(t *testing.T) {
	a, b, c, net := newTrio()
	net.Tick(time.Millisecond)
	net.Tick(time.Millisecond)
	if a.ticks != 2 || b.ticks != 2 || c.ticks != 2 {
		t.Fatalf("ticks = %d/%d/%d, want 2 each", a.ticks, b.ticks, c.ticks)
	}
}

func TestSetLeaderBroadcast(t *testing.T) {
	a, b, c, net := newTrio()
	net.SetLeader(3)
	if a.leader != 3 || b.leader != 3 || c.leader != 3 {
		t.Error("SetLeader must reach every leader-aware replica")
	}
}

func TestQueueLenAccounting(t *testing.T) {
	_, _, _, net := newTrio()
	net.Submit(1, cmdAt(1, 1))
	if net.QueueLen() != 2 {
		t.Fatalf("queue = %d, want 2 pings", net.QueueLen())
	}
	net.Step()
	if net.QueueLen() != 2 { // one ping delivered, one pong enqueued
		t.Fatalf("queue = %d, want 2", net.QueueLen())
	}
	net.Drain(0)
	if net.QueueLen() != 0 {
		t.Fatalf("queue = %d after drain, want 0", net.QueueLen())
	}
}
