package epaxos

import (
	"testing"
	"time"

	"tempo/internal/command"
	"tempo/internal/testnet"
)

// The cluster runtime delivers Tick to every engine identically; these
// tests pin down that EPaxos turns those ticks into actual recovery on a
// lossy transport — a stalled replica's round is resent, and a replica
// blocked on a dependency whose commit was lost re-requests it.

// TestResendPreAcceptAfterStall cuts the coordinator's pre-accept to the
// rest of its fast quorum, so the round stalls with no acks. Ticking past
// ResendInterval must resend the pre-accepts and complete the commit.
func TestResendPreAcceptAfterStall(t *testing.T) {
	topo := lineTopo(t, 3, 1, 1)
	procs, net := makeNet(t, topo, Config{ResendInterval: 10 * time.Millisecond})
	a := at(topo, 0, 0)
	drop := true
	net.Drop = func(e testnet.Env) bool {
		_, isPA := e.Msg.(*EPreAccept)
		return drop && isPA
	}
	cmd := command.NewPut(procs[a].NextID(), "x", []byte("v"))
	net.Submit(a, cmd)
	net.Drain(0)
	if got := procs[a].graph.Executed(); got != 0 {
		t.Fatalf("command executed despite dropped pre-accepts: %d", got)
	}
	drop = false
	net.Settle(4, 20*time.Millisecond)
	for pid, p := range procs {
		if got := p.graph.Executed(); got != 1 {
			t.Fatalf("process %d executed %d after recovery, want 1", pid, got)
		}
	}
}

// TestCommitReqUnblocksMissedDependency loses the commit of cmd1 at one
// replica, then commits a conflicting cmd2: the replica learns cmd2 but
// its executor blocks on the unknown dependency cmd1. Ticking past
// ResendInterval must issue ECommitReq and unblock execution.
func TestCommitReqUnblocksMissedDependency(t *testing.T) {
	topo := lineTopo(t, 3, 1, 1)
	procs, net := makeNet(t, topo, Config{ResendInterval: 10 * time.Millisecond})
	a, c := at(topo, 0, 0), at(topo, 2, 0)
	drop := true
	net.Drop = func(e testnet.Env) bool {
		_, isCommit := e.Msg.(*ECommit)
		return drop && isCommit && e.To == c
	}
	cmd1 := command.NewPut(procs[a].NextID(), "x", []byte("v1"))
	net.Submit(a, cmd1)
	net.Drain(0)
	drop = false
	cmd2 := command.NewPut(procs[a].NextID(), "x", []byte("v2"))
	net.Submit(a, cmd2)
	net.Drain(0)
	if got := procs[c].graph.Executed(); got != 0 {
		t.Fatalf("replica executed %d commands despite missing dependency commit", got)
	}
	if missing := procs[c].graph.MissingDeps(); len(missing) != 1 || missing[0] != cmd1.ID {
		t.Fatalf("missing deps = %v, want [%v]", missing, cmd1.ID)
	}
	net.Settle(4, 20*time.Millisecond)
	for pid, p := range procs {
		if got := p.graph.Executed(); got != 2 {
			t.Fatalf("process %d executed %d after recovery, want 2", pid, got)
		}
		if v, ok := p.Store().Get("x"); !ok || string(v) != "v2" {
			t.Errorf("process %d: x = %q, want v2", pid, v)
		}
	}
}
