// Package epaxos implements the dependency-based leaderless baselines of
// the paper: EPaxos (Moraru et al., SOSP 2013) and Atlas (Enes et al.,
// EuroSys 2020), which differ in fast-quorum size and fast-path condition.
// The same implementation generalized to multiple shards — per-shard
// dependency collection, union of per-shard dependencies, and non-genuine
// commit broadcast — is the paper's improved Janus baseline ("Janus*",
// §6), constructed by internal/janus.
//
// Commands are committed with explicit dependency sets and executed by the
// strongly-connected-component executor of internal/depgraph; this is the
// execution mechanism whose unbounded chains cause the tail-latency
// pathologies the paper measures (§3.3, Appendix D).
//
// Recovery is not implemented for the baselines (the paper's evaluation
// runs them failure-free); Tempo, the paper's contribution, has full
// recovery.
package epaxos

import (
	"tempo/internal/command"
	"tempo/internal/ids"
)

// Quorums maps each shard accessed by a command to the fast quorum used
// there; the first element is the shard's coordinator.
type Quorums map[ids.ShardID][]ids.ProcessID

func (q Quorums) size() int {
	n := 0
	for _, ps := range q {
		n += 8 + 4*len(ps)
	}
	return n
}

// ESubmit asks a process to coordinate the command at its shard.
//
//tempo:wire
type ESubmit struct {
	ID      ids.Dot
	Cmd     *command.Command
	Quorums Quorums
}

// EPreAccept asks a fast-quorum process for its dependency/seq report.
//
//tempo:wire
type EPreAccept struct {
	ID      ids.Dot
	Cmd     *command.Command
	Quorums Quorums
	Seq     uint64
	Deps    []ids.Dot
}

// EPreAcceptAck reports the merged dependencies and sequence number.
//
//tempo:wire
type EPreAcceptAck struct {
	ID   ids.Dot
	Seq  uint64
	Deps []ids.Dot
}

// EAccept is the slow-path (Paxos-Accept) message for the shard-local
// (seq, deps) decision.
//
//tempo:wire
type EAccept struct {
	ID     ids.Dot
	Ballot ids.Ballot
	Seq    uint64
	Deps   []ids.Dot
}

// EAcceptAck acknowledges EAccept.
//
//tempo:wire
type EAcceptAck struct {
	ID     ids.Dot
	Ballot ids.Ballot
}

// ECommit announces the shard-local decision. It carries the payload so
// that processes outside the fast quorum (and, for Janus, outside the
// command's shards) learn the command.
//
//tempo:wire
type ECommit struct {
	ID    ids.Dot
	Shard ids.ShardID
	Cmd   *command.Command
	Seq   uint64
	Deps  []ids.Dot
}

// ECommitReq asks a peer to resend its commit decisions for one command.
// Replicas blocked on a dependency whose ECommit was lost (dropped on a
// cut link) issue it from Tick; any peer that committed the command
// answers with one ECommit per shard decision.
//
//tempo:wire
type ECommitReq struct {
	ID ids.Dot
}

const hdr = 24

func cmdSize(c *command.Command) int {
	if c == nil {
		return 0
	}
	return c.SizeBytes()
}

// Size implements proto.Message.
func (m *ESubmit) Size() int { return hdr + cmdSize(m.Cmd) + m.Quorums.size() }

// Size implements proto.Message.
func (m *EPreAccept) Size() int {
	return hdr + 8 + cmdSize(m.Cmd) + m.Quorums.size() + 16*len(m.Deps)
}

// Size implements proto.Message.
func (m *EPreAcceptAck) Size() int { return hdr + 8 + 16*len(m.Deps) }

// Size implements proto.Message.
func (m *EAccept) Size() int { return hdr + 16 + 16*len(m.Deps) }

// Size implements proto.Message.
func (m *EAcceptAck) Size() int { return hdr + 8 }

// Size implements proto.Message.
func (m *ECommit) Size() int { return hdr + 12 + cmdSize(m.Cmd) + 16*len(m.Deps) }

// Size implements proto.Message.
func (m *ECommitReq) Size() int { return hdr }
