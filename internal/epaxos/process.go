package epaxos

import (
	"fmt"
	"sort"
	"time"

	"tempo/internal/command"
	"tempo/internal/depgraph"
	"tempo/internal/ids"
	"tempo/internal/kvstore"
	"tempo/internal/proto"
	"tempo/internal/topology"
)

// Variant selects the protocol flavour.
type Variant uint8

const (
	// VariantEPaxos: fast quorum ⌊3r/4⌋, fast path only when all
	// reports match; slow quorum is a majority.
	VariantEPaxos Variant = iota
	// VariantAtlas: fast quorum ⌊r/2⌋+f, fast path when every reported
	// dependency is recoverable (reported by >= f processes or by the
	// coordinator); slow quorum f+1.
	VariantAtlas
)

// String names the protocol variant ("epaxos" or "atlas").
func (v Variant) String() string {
	if v == VariantEPaxos {
		return "epaxos"
	}
	return "atlas"
}

// Config tunes a replica.
type Config struct {
	Variant Variant
	// NonGenuineCommit broadcasts commits to every process in the system
	// rather than just the command's shards. Janus* requires it: its
	// dependency graphs reference commands of other shards (§6, "Janus*
	// is non-genuine").
	NonGenuineCommit bool
	// ExecuteOnCommit skips dependency-graph execution and executes
	// commands as soon as committed. Used to measure the commit
	// protocol in isolation (the paper's "Caesar*"-style idealization is
	// analogous); it breaks cross-replica ordering and must only be used
	// for throughput measurements.
	ExecuteOnCommit bool
	// ResendInterval arms the recovery machinery for lossy transports
	// (the cluster runtime): every interval, Tick resends the pending
	// round of commands this process coordinates and requests re-commits
	// for dependencies the executor is blocked on (ECommitReq). Zero
	// disables it — the simulator and testnet runs are loss-free and
	// expect no spontaneous traffic.
	ResendInterval time.Duration
}

// FastQuorumSize returns the variant's fast-quorum size.
func (c Config) FastQuorumSize(r, f int) int {
	if c.Variant == VariantEPaxos {
		return 3 * r / 4
	}
	return topology.TempoFastQuorumSize(r, f) // ⌊r/2⌋+f, same as Tempo
}

// keyInfo tracks, per key of the local shard, the last writer and the
// reads since it — the conflict index used to compute dependencies.
type keyInfo struct {
	lastWrite    ids.Dot
	lastWriteSeq uint64
	reads        map[ids.Dot]uint64
}

type cmdState struct {
	cmd     *command.Command
	shards  []ids.ShardID
	quorums Quorums
	// Coordinator state.
	acks     map[ids.ProcessID]*EPreAcceptAck
	accepted map[ids.ProcessID]bool
	seq      uint64
	deps     []ids.Dot
	slowPath bool
	// Commit state: per-shard reports.
	shardSeq  map[ids.ShardID]uint64
	shardDeps map[ids.ShardID][]ids.Dot
	committed bool
	seen      bool // registered in the conflict index
	// born is the tick-clock time this process became coordinator, so
	// recovery resends only rounds that have actually stalled.
	born time.Duration
}

// Process is an EPaxos/Atlas replica. It implements proto.Replica.
type Process struct {
	id    ids.ProcessID
	shard ids.ShardID
	rank  ids.Rank
	r, f  int
	topo  *topology.Topology
	cfg   Config

	shardProcs []ids.ProcessID
	keys       map[command.Key]*keyInfo
	cmds       map[ids.Dot]*cmdState
	graph      *depgraph.Graph
	store      *kvstore.Store

	nextSeq uint64
	// seenSeq tracks the highest command-sequence number observed per
	// source process — the membership frontier (see ObservedFrom).
	seenSeq     map[ids.ProcessID]uint64
	crashed     bool
	executedOut []proto.Executed

	deferApply bool
	stableOut  []proto.Stable

	now       time.Duration
	lastSweep time.Duration

	statFast, statSlow uint64
}

var _ proto.Replica = (*Process)(nil)
var _ proto.Crashable = (*Process)(nil)
var _ proto.IDMinter = (*Process)(nil)
var _ proto.DeferredApplier = (*Process)(nil)
var _ proto.Joiner = (*Process)(nil)

// New creates a replica for process id.
func New(id ids.ProcessID, topo *topology.Topology, cfg Config) *Process {
	pi := topo.Process(id)
	if pi.ID != id {
		panic(fmt.Sprintf("epaxos: unknown process %d", id))
	}
	return &Process{
		id:         id,
		shard:      pi.Shard,
		rank:       pi.Rank,
		r:          topo.R(),
		f:          topo.F(),
		topo:       topo,
		cfg:        cfg,
		shardProcs: topo.ShardProcesses(pi.Shard),
		keys:       make(map[command.Key]*keyInfo),
		cmds:       make(map[ids.Dot]*cmdState),
		seenSeq:    make(map[ids.ProcessID]uint64),
		graph:      depgraph.New(),
		store:      kvstore.New(),
	}
}

// ID implements proto.Replica.
func (p *Process) ID() ids.ProcessID { return p.id }

// Store returns the local key-value store.
func (p *Process) Store() *kvstore.Store { return p.store }

// Graph exposes the dependency graph (metrics: SCC sizes, blocked peak).
func (p *Process) Graph() *depgraph.Graph { return p.graph }

// Stats returns (fast, slow) path commit counts at this coordinator.
func (p *Process) Stats() (fast, slow uint64) { return p.statFast, p.statSlow }

// Crash implements proto.Crashable.
func (p *Process) Crash() { p.crashed = true }

// NextID mints a fresh command identifier. It implements proto.IDMinter.
func (p *Process) NextID() ids.Dot {
	p.nextSeq++
	return ids.Dot{Source: p.id, Seq: p.nextSeq}
}

// Shard returns the one shard this replica replicates. The cluster
// runtime uses it to route client requests.
func (p *Process) Shard() ids.ShardID { return p.shard }

// OpsShard returns the shard owning every key of ops and true, or false
// when the ops span shards. It reads only immutable topology, so it is
// safe to call concurrently with protocol steps.
func (p *Process) OpsShard(ops []command.Op) (ids.ShardID, bool) {
	if len(ops) == 0 {
		return 0, false
	}
	s := p.topo.ShardOf(ops[0].Key)
	for _, op := range ops[1:] {
		if p.topo.ShardOf(op.Key) != s {
			return 0, false
		}
	}
	return s, true
}

// SetDeferredApply implements proto.DeferredApplier.
func (p *Process) SetDeferredApply(on bool) { p.deferApply = on }

// DrainStable implements proto.DeferredApplier.
func (p *Process) DrainStable() []proto.Stable {
	out := p.stableOut
	p.stableOut = nil
	return out
}

// ApplyStable implements proto.DeferredApplier. The ts argument is
// ignored: EPaxos sequence numbers are not monotone along execution
// order (SCC topological order can execute a low-seq command after a
// high-seq one), so the store's watermark entry point cannot be used.
// Re-apply idempotency is not needed — the baselines are not Durable.
func (p *Process) ApplyStable(cmd *command.Command, _ uint64) *command.Result {
	return p.store.Apply(cmd, p.shard, p.topo.ShardOf)
}

// Submit implements proto.Replica.
func (p *Process) Submit(cmd *command.Command) []proto.Action {
	if p.crashed {
		return nil
	}
	shards := p.topo.CmdShards(cmd)
	coords := p.topo.ClosestPerShard(p.id, shards)
	quorums := make(Quorums, len(shards))
	size := p.cfg.FastQuorumSize(p.r, p.f)
	for i, s := range shards {
		quorums[s] = p.topo.FastQuorum(coords[i], size)
	}
	return p.route([]proto.Action{proto.Send(&ESubmit{ID: cmd.ID, Cmd: cmd, Quorums: quorums}, coords...)})
}

// Handle implements proto.Replica.
func (p *Process) Handle(from ids.ProcessID, msg proto.Message) []proto.Action {
	if p.crashed {
		return nil
	}
	return p.route(p.handle(from, msg))
}

// Tick implements proto.Replica. With Config.ResendInterval set it
// drives recovery on lossy transports: stalled rounds this process
// coordinates are resent (pre-accepts and accepts are idempotent at the
// receivers; the coordinator ignores duplicate acks), and dependencies
// the executor is blocked on are re-requested with ECommitReq. Without
// it EPaxos has no periodic machinery — the failure-free runs of the
// paper.
func (p *Process) Tick(now time.Duration) []proto.Action {
	if p.crashed {
		return nil
	}
	p.now = now
	if p.cfg.ResendInterval <= 0 || now-p.lastSweep < p.cfg.ResendInterval {
		return nil
	}
	p.lastSweep = now
	var acts []proto.Action
	for id, st := range p.cmds {
		if st.committed || st.acks == nil || now-st.born < p.cfg.ResendInterval {
			continue
		}
		if st.slowPath {
			acc := &EAccept{ID: id, Ballot: ids.InitialBallot(p.rank), Seq: st.seq, Deps: st.deps}
			acts = append(acts, proto.Send(acc, othersOf(p.shardProcs, p.id)...))
			continue
		}
		pa := &EPreAccept{ID: id, Cmd: st.cmd, Quorums: st.quorums, Seq: st.seq, Deps: st.deps}
		acts = append(acts, proto.Send(pa, othersOf(st.quorums[p.shard], p.id)...))
	}
	for _, d := range p.graph.MissingDeps() {
		to := othersOf(p.shardProcs, p.id)
		if d.Source != p.id && !containsProc(to, d.Source) {
			to = append(to, d.Source)
		}
		acts = append(acts, proto.Send(&ECommitReq{ID: d}, to...))
	}
	return p.route(acts)
}

// othersOf returns procs minus self.
func othersOf(procs []ids.ProcessID, self ids.ProcessID) []ids.ProcessID {
	var out []ids.ProcessID
	for _, q := range procs {
		if q != self {
			out = append(out, q)
		}
	}
	return out
}

func containsProc(procs []ids.ProcessID, q ids.ProcessID) bool {
	for _, x := range procs {
		if x == q {
			return true
		}
	}
	return false
}

// Drain implements proto.Replica.
func (p *Process) Drain() []proto.Executed {
	out := p.executedOut
	p.executedOut = nil
	return out
}

func (p *Process) route(acts []proto.Action) []proto.Action {
	var out []proto.Action
	queue := acts
	for len(queue) > 0 {
		a := queue[0]
		queue = queue[1:]
		var others []ids.ProcessID
		self := false
		for _, to := range a.To {
			if to == p.id {
				self = true
			} else {
				others = append(others, to)
			}
		}
		if len(others) > 0 {
			out = append(out, proto.Action{To: others, Msg: a.Msg})
		}
		if self {
			queue = append(queue, p.handle(p.id, a.Msg)...)
		}
	}
	return out
}

func (p *Process) handle(from ids.ProcessID, msg proto.Message) []proto.Action {
	switch m := msg.(type) {
	case *ESubmit:
		return p.onSubmit(m)
	case *EPreAccept:
		return p.onPreAccept(from, m)
	case *EPreAcceptAck:
		return p.onPreAcceptAck(from, m)
	case *EAccept:
		return p.onAccept(from, m)
	case *EAcceptAck:
		return p.onAcceptAck(from, m)
	case *ECommit:
		return p.onCommit(m)
	case *ECommitReq:
		return p.onCommitReq(from, m)
	default:
		panic(fmt.Sprintf("epaxos: unknown message %T", msg))
	}
}

func (p *Process) state(id ids.Dot) *cmdState {
	if id.Seq > p.seenSeq[id.Source] {
		p.seenSeq[id.Source] = id.Seq
	}
	st, ok := p.cmds[id]
	if !ok {
		st = &cmdState{
			shardSeq:  make(map[ids.ShardID]uint64),
			shardDeps: make(map[ids.ShardID][]ids.Dot),
		}
		p.cmds[id] = st
	}
	return st
}

// ObservedFrom implements proto.Joiner: EPaxos has no logical clock,
// so the frontier is the highest command-sequence number (instance id)
// observed from pid — dots double as instance ids, and every message
// that references an instance passes through state.
func (p *Process) ObservedFrom(pid ids.ProcessID) (clock, seq uint64) {
	return 0, p.seenSeq[pid]
}

// JoinFloor implements proto.Joiner: a successor must not re-mint its
// predecessor's dots (they ARE the instance ids).
func (p *Process) JoinFloor(clock, seq uint64) {
	if seq > p.nextSeq {
		p.nextSeq = seq
	}
}

// localDeps computes (deps, seq) for cmd against the local conflict index
// and registers the command in it.
func (p *Process) localDeps(cmd *command.Command) ([]ids.Dot, uint64) {
	depSet := make(map[ids.Dot]uint64)
	for _, op := range cmd.Ops {
		if p.topo.ShardOf(op.Key) != p.shard {
			continue
		}
		ki := p.keys[op.Key]
		if ki == nil {
			continue
		}
		if !ki.lastWrite.IsZero() && ki.lastWrite != cmd.ID {
			depSet[ki.lastWrite] = ki.lastWriteSeq
		}
		if op.Kind == command.Put {
			for d, s := range ki.reads {
				if d != cmd.ID {
					depSet[d] = s
				}
			}
		}
	}
	var maxSeq uint64
	deps := make([]ids.Dot, 0, len(depSet))
	for d, s := range depSet {
		deps = append(deps, d)
		if s > maxSeq {
			maxSeq = s
		}
	}
	sortDots(deps)
	return deps, maxSeq + 1
}

// register records cmd in the conflict index with its sequence number.
func (p *Process) register(cmd *command.Command, seq uint64) {
	st := p.state(cmd.ID)
	if st.seen {
		return
	}
	st.seen = true
	for _, op := range cmd.Ops {
		if p.topo.ShardOf(op.Key) != p.shard {
			continue
		}
		ki := p.keys[op.Key]
		if ki == nil {
			ki = &keyInfo{reads: make(map[ids.Dot]uint64)}
			p.keys[op.Key] = ki
		}
		if op.Kind == command.Put {
			ki.lastWrite = cmd.ID
			ki.lastWriteSeq = seq
			ki.reads = make(map[ids.Dot]uint64)
		} else {
			ki.reads[cmd.ID] = seq
		}
	}
}

// onSubmit makes this process the coordinator at its shard.
func (p *Process) onSubmit(m *ESubmit) []proto.Action {
	deps, seq := p.localDeps(m.Cmd)
	p.register(m.Cmd, seq)
	st := p.state(m.ID)
	st.cmd = m.Cmd
	st.shards = p.topo.CmdShards(m.Cmd)
	st.quorums = m.Quorums
	st.seq, st.deps = seq, deps
	st.born = p.now
	st.acks = map[ids.ProcessID]*EPreAcceptAck{
		p.id: {ID: m.ID, Seq: seq, Deps: deps},
	}
	fq := m.Quorums[p.shard]
	var others []ids.ProcessID
	for _, q := range fq {
		if q != p.id {
			others = append(others, q)
		}
	}
	pa := &EPreAccept{ID: m.ID, Cmd: m.Cmd, Quorums: m.Quorums, Seq: seq, Deps: deps}
	return []proto.Action{proto.Send(pa, others...)}
}

// onPreAccept merges the coordinator's report with local conflicts.
func (p *Process) onPreAccept(from ids.ProcessID, m *EPreAccept) []proto.Action {
	st := p.state(m.ID)
	if st.committed {
		return nil
	}
	st.cmd = m.Cmd
	st.shards = p.topo.CmdShards(m.Cmd)
	st.quorums = m.Quorums
	localDeps, localSeq := p.localDeps(m.Cmd)
	seq := m.Seq
	if localSeq > seq {
		seq = localSeq
	}
	deps := unionDots(m.Deps, localDeps)
	p.register(m.Cmd, seq)
	return []proto.Action{proto.Send(&EPreAcceptAck{ID: m.ID, Seq: seq, Deps: deps}, from)}
}

// onPreAcceptAck gathers fast-quorum reports at the coordinator.
func (p *Process) onPreAcceptAck(from ids.ProcessID, m *EPreAcceptAck) []proto.Action {
	st, ok := p.cmds[m.ID]
	if !ok || st.acks == nil || st.committed || st.slowPath {
		return nil
	}
	if _, dup := st.acks[from]; dup {
		return nil
	}
	st.acks[from] = m
	fq := st.quorums[p.shard]
	if len(st.acks) < len(fq) {
		return nil
	}
	// All reports in: merge.
	union := st.deps
	maxSeq := st.seq
	for _, a := range st.acks {
		union = unionDots(union, a.Deps)
		if a.Seq > maxSeq {
			maxSeq = a.Seq
		}
	}
	if p.fastPathOK(st, union) {
		p.statFast++
		return p.sendCommit(m.ID, st, maxSeq, union)
	}
	// Slow path: Paxos-Accept on (seq, deps).
	p.statSlow++
	st.slowPath = true
	st.seq, st.deps = maxSeq, union
	st.accepted = map[ids.ProcessID]bool{p.id: true}
	acc := &EAccept{ID: m.ID, Ballot: ids.InitialBallot(p.rank), Seq: maxSeq, Deps: union}
	var others []ids.ProcessID
	for _, q := range p.shardProcs {
		if q != p.id {
			others = append(others, q)
		}
	}
	return []proto.Action{proto.Send(acc, others...)}
}

// fastPathOK implements the variant's fast-path condition.
func (p *Process) fastPathOK(st *cmdState, union []ids.Dot) bool {
	switch p.cfg.Variant {
	case VariantEPaxos:
		// Classic EPaxos: every non-coordinator report must equal the
		// coordinator's initial (seq, deps).
		for from, a := range st.acks {
			if from == p.id {
				continue
			}
			if a.Seq != st.seq || !equalDots(a.Deps, st.deps) {
				return false
			}
		}
		return true
	default: // VariantAtlas
		// Atlas: fast path iff every dependency in the union was
		// reported by at least f fast-quorum processes or is part of the
		// coordinator's report (then it survives f failures).
		if p.f == 1 {
			return true
		}
		coordDeps := dotSet(st.deps)
		for _, d := range union {
			if coordDeps[d] {
				continue
			}
			count := 0
			for _, a := range st.acks {
				if containsDot(a.Deps, d) {
					count++
				}
			}
			if count < p.f {
				return false
			}
		}
		return true
	}
}

func (p *Process) slowQuorum() int {
	if p.cfg.Variant == VariantEPaxos {
		return p.r/2 + 1
	}
	return p.f + 1
}

// onAccept is the acceptor side of the slow path.
func (p *Process) onAccept(from ids.ProcessID, m *EAccept) []proto.Action {
	st := p.state(m.ID)
	if st.committed {
		return nil
	}
	st.seq, st.deps = m.Seq, m.Deps
	return []proto.Action{proto.Send(&EAcceptAck{ID: m.ID, Ballot: m.Ballot}, from)}
}

// onAcceptAck finishes the slow path.
func (p *Process) onAcceptAck(from ids.ProcessID, m *EAcceptAck) []proto.Action {
	st, ok := p.cmds[m.ID]
	if !ok || st.accepted == nil || st.committed {
		return nil
	}
	st.accepted[from] = true
	if len(st.accepted) != p.slowQuorum() {
		return nil
	}
	st.accepted = nil
	return p.sendCommit(m.ID, st, st.seq, st.deps)
}

// sendCommit broadcasts the shard's decision.
func (p *Process) sendCommit(id ids.Dot, st *cmdState, seq uint64, deps []ids.Dot) []proto.Action {
	mc := &ECommit{ID: id, Shard: p.shard, Cmd: st.cmd, Seq: seq, Deps: deps}
	var to []ids.ProcessID
	if p.cfg.NonGenuineCommit {
		for _, pi := range p.topo.Processes() {
			to = append(to, pi.ID)
		}
	} else {
		seen := map[ids.ProcessID]bool{}
		for _, s := range st.shards {
			for _, q := range p.topo.ShardProcesses(s) {
				if !seen[q] {
					seen[q] = true
					to = append(to, q)
				}
			}
		}
	}
	return []proto.Action{proto.Send(mc, to...)}
}

// onCommit records a shard decision; once every accessed shard decided,
// the command enters the dependency graph with the union of deps and max
// of seqs.
func (p *Process) onCommit(m *ECommit) []proto.Action {
	st := p.state(m.ID)
	if st.committed {
		return nil
	}
	st.cmd = m.Cmd
	if st.shards == nil {
		st.shards = p.topo.CmdShards(m.Cmd)
	}
	st.shardSeq[m.Shard] = m.Seq
	st.shardDeps[m.Shard] = m.Deps
	for _, s := range st.shards {
		if _, ok := st.shardSeq[s]; !ok {
			return nil
		}
	}
	st.committed = true
	// Register in the conflict index (no-op if already seen at
	// pre-accept), so later commands depend on this one.
	var seq uint64
	var deps []ids.Dot
	for _, s := range st.shards {
		if st.shardSeq[s] > seq {
			seq = st.shardSeq[s]
		}
		deps = unionDots(deps, st.shardDeps[s])
	}
	p.register(m.Cmd, seq)
	if p.cfg.ExecuteOnCommit {
		p.executeNow(st.cmd, seq)
		return nil
	}
	p.graph.Commit(m.ID, seq, deps, st.cmd)
	p.runExecutor()
	return nil
}

// onCommitReq answers a peer's re-commit request for a command this
// process has committed: one ECommit per shard decision, rebuilding what
// the requester lost on a cut link. Uncommitted or unknown ids are
// silently ignored (the requester retries next sweep).
func (p *Process) onCommitReq(from ids.ProcessID, m *ECommitReq) []proto.Action {
	st, ok := p.cmds[m.ID]
	if !ok || !st.committed {
		return nil
	}
	var acts []proto.Action
	for _, s := range st.shards {
		seq, ok := st.shardSeq[s]
		if !ok {
			continue
		}
		mc := &ECommit{ID: m.ID, Shard: s, Cmd: st.cmd, Seq: seq, Deps: st.shardDeps[s]}
		acts = append(acts, proto.Send(mc, from))
	}
	return acts
}

func (p *Process) runExecutor() {
	for _, n := range p.graph.Executable() {
		p.executeNow(n.Cmd, n.Seq)
	}
}

func (p *Process) executeNow(cmd *command.Command, seq uint64) {
	shards := p.topo.CmdShards(cmd)
	touchesShard := false
	for _, s := range shards {
		if s == p.shard {
			touchesShard = true
		}
	}
	if !touchesShard {
		// Janus non-genuine: the command is in our graph only for
		// ordering; nothing to apply locally.
		return
	}
	if p.deferApply {
		p.stableOut = append(p.stableOut,
			proto.Stable{Cmd: cmd, Shard: p.shard, TS: seq, Multi: len(shards) > 1})
		return
	}
	res := p.store.Apply(cmd, p.shard, p.topo.ShardOf)
	p.executedOut = append(p.executedOut, proto.Executed{Cmd: cmd, Shard: p.shard, Result: res})
}

// --- small dot-set helpers ---

func sortDots(d []ids.Dot) {
	sort.Slice(d, func(i, j int) bool { return d[i].Less(d[j]) })
}

func unionDots(a, b []ids.Dot) []ids.Dot {
	if len(b) == 0 {
		return a
	}
	set := make(map[ids.Dot]bool, len(a)+len(b))
	for _, d := range a {
		set[d] = true
	}
	for _, d := range b {
		set[d] = true
	}
	out := make([]ids.Dot, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sortDots(out)
	return out
}

func equalDots(a, b []ids.Dot) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func containsDot(list []ids.Dot, d ids.Dot) bool {
	for _, x := range list {
		if x == d {
			return true
		}
	}
	return false
}

func dotSet(list []ids.Dot) map[ids.Dot]bool {
	m := make(map[ids.Dot]bool, len(list))
	for _, d := range list {
		m[d] = true
	}
	return m
}
