package epaxos

import (
	"encoding/gob"

	"tempo/internal/command"
	"tempo/internal/ids"
	"tempo/internal/proto"
)

// Binary wire codec for the EPaxos/Atlas messages, mirroring the Tempo
// codec: hand-rolled, varint-based, append-style encoders
// (proto.BinaryMessage) plus registered decoders. Encodings are
// deterministic (Quorums maps are serialized in shard order, dependency
// sets travel pre-sorted), so decode∘encode is the identity on bytes —
// pinned by FuzzCompareCodecRoundTrip in internal/engine.

// Wire tags. Tempo owns 1–14; EPaxos owns the 32-range. Never reuse or
// renumber: the tag is the cross-version contract.
const (
	tagESubmit byte = iota + 32
	tagEPreAccept
	tagEPreAcceptAck
	tagEAccept
	tagEAcceptAck
	tagECommit
	tagECommitReq
)

func init() {
	proto.RegisterWire(tagESubmit, decodeESubmit)
	proto.RegisterWire(tagEPreAccept, decodeEPreAccept)
	proto.RegisterWire(tagEPreAcceptAck, decodeEPreAcceptAck)
	proto.RegisterWire(tagEAccept, decodeEAccept)
	proto.RegisterWire(tagEAcceptAck, decodeEAcceptAck)
	proto.RegisterWire(tagECommit, decodeECommit)
	proto.RegisterWire(tagECommitReq, decodeECommitReq)

	// Concrete-type registrations for the legacy gob peer codec.
	gob.Register(&ESubmit{})
	gob.Register(&EPreAccept{})
	gob.Register(&EPreAcceptAck{})
	gob.Register(&EAccept{})
	gob.Register(&EAcceptAck{})
	gob.Register(&ECommit{})
	gob.Register(&ECommitReq{})
}

// --- shared field helpers ---

//
//tempo:noalloc
func appendDot(buf []byte, d ids.Dot) []byte {
	buf = proto.AppendUvarint(buf, uint64(d.Source))
	return proto.AppendUvarint(buf, d.Seq)
}

func readDot(b []byte) (ids.Dot, []byte, error) {
	src, b, err := proto.ReadUvarint(b)
	if err != nil {
		return ids.Dot{}, b, err
	}
	seq, b, err := proto.ReadUvarint(b)
	if err != nil {
		return ids.Dot{}, b, err
	}
	return ids.Dot{Source: ids.ProcessID(src), Seq: seq}, b, nil
}

// appendDots serializes a dependency set as-is: the protocol keeps deps
// sorted (sortDots/unionDots), so equal sets produce equal bytes.
//
//tempo:noalloc
func appendDots(buf []byte, deps []ids.Dot) []byte {
	buf = proto.AppendUvarint(buf, uint64(len(deps)))
	for _, d := range deps {
		buf = appendDot(buf, d)
	}
	return buf
}

func readDots(b []byte) ([]ids.Dot, []byte, error) {
	n, b, err := proto.ReadUvarint(b)
	if err != nil || n > uint64(len(b)) {
		return nil, b, proto.ErrCorrupt
	}
	var deps []ids.Dot // nil when empty, matching gob
	if n > 0 {
		deps = make([]ids.Dot, n)
	}
	for i := range deps {
		if deps[i], b, err = readDot(b); err != nil {
			return nil, b, err
		}
	}
	return deps, b, nil
}

// appendQuorums serializes the map in ascending shard order so equal
// maps always produce equal bytes.
//
//tempo:noalloc
func appendQuorums(buf []byte, q Quorums) []byte {
	buf = proto.AppendUvarint(buf, uint64(len(q)))
	var stack [8]ids.ShardID
	keys := stack[:0]
	for s := range q {
		//tempo:allowalloc stack-backed up to 8 shards; grows only beyond that
		keys = append(keys, s)
	}
	for i := 1; i < len(keys); i++ { // insertion sort; quorum maps are tiny
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	for _, s := range keys {
		buf = proto.AppendUvarint(buf, uint64(s))
		ps := q[s]
		buf = proto.AppendUvarint(buf, uint64(len(ps)))
		for _, p := range ps {
			buf = proto.AppendUvarint(buf, uint64(p))
		}
	}
	return buf
}

func readQuorums(b []byte) (Quorums, []byte, error) {
	n, b, err := proto.ReadUvarint(b)
	if err != nil || n > uint64(len(b)) {
		return nil, b, proto.ErrCorrupt
	}
	if n == 0 {
		return nil, b, nil
	}
	q := make(Quorums, n)
	for i := uint64(0); i < n; i++ {
		var s, k uint64
		if s, b, err = proto.ReadUvarint(b); err != nil {
			return nil, b, err
		}
		if k, b, err = proto.ReadUvarint(b); err != nil || k > uint64(len(b)) {
			return nil, b, proto.ErrCorrupt
		}
		var ps []ids.ProcessID // nil when empty, matching gob
		if k > 0 {
			ps = make([]ids.ProcessID, k)
		}
		for j := uint64(0); j < k; j++ {
			var p uint64
			if p, b, err = proto.ReadUvarint(b); err != nil {
				return nil, b, err
			}
			ps[j] = ids.ProcessID(p)
		}
		q[ids.ShardID(s)] = ps
	}
	return q, b, nil
}

// --- per-message encoders and decoders ---

// WireTag implements proto.BinaryMessage.
func (m *ESubmit) WireTag() byte { return tagESubmit }

// AppendBinary implements proto.BinaryMessage.
//
//tempo:noalloc
func (m *ESubmit) AppendBinary(buf []byte) []byte {
	buf = appendDot(buf, m.ID)
	buf = command.AppendCommand(buf, m.Cmd)
	return appendQuorums(buf, m.Quorums)
}

func decodeESubmit(b []byte) (proto.Message, []byte, error) {
	m := &ESubmit{}
	var err error
	if m.ID, b, err = readDot(b); err != nil {
		return nil, b, err
	}
	if m.Cmd, b, err = command.DecodeCommand(b); err != nil {
		return nil, b, err
	}
	if m.Quorums, b, err = readQuorums(b); err != nil {
		return nil, b, err
	}
	return m, b, nil
}

// WireTag implements proto.BinaryMessage.
func (m *EPreAccept) WireTag() byte { return tagEPreAccept }

// AppendBinary implements proto.BinaryMessage.
//
//tempo:noalloc
func (m *EPreAccept) AppendBinary(buf []byte) []byte {
	buf = appendDot(buf, m.ID)
	buf = command.AppendCommand(buf, m.Cmd)
	buf = appendQuorums(buf, m.Quorums)
	buf = proto.AppendUvarint(buf, m.Seq)
	return appendDots(buf, m.Deps)
}

func decodeEPreAccept(b []byte) (proto.Message, []byte, error) {
	m := &EPreAccept{}
	var err error
	if m.ID, b, err = readDot(b); err != nil {
		return nil, b, err
	}
	if m.Cmd, b, err = command.DecodeCommand(b); err != nil {
		return nil, b, err
	}
	if m.Quorums, b, err = readQuorums(b); err != nil {
		return nil, b, err
	}
	if m.Seq, b, err = proto.ReadUvarint(b); err != nil {
		return nil, b, err
	}
	if m.Deps, b, err = readDots(b); err != nil {
		return nil, b, err
	}
	return m, b, nil
}

// WireTag implements proto.BinaryMessage.
func (m *EPreAcceptAck) WireTag() byte { return tagEPreAcceptAck }

// AppendBinary implements proto.BinaryMessage.
//
//tempo:noalloc
func (m *EPreAcceptAck) AppendBinary(buf []byte) []byte {
	buf = appendDot(buf, m.ID)
	buf = proto.AppendUvarint(buf, m.Seq)
	return appendDots(buf, m.Deps)
}

func decodeEPreAcceptAck(b []byte) (proto.Message, []byte, error) {
	m := &EPreAcceptAck{}
	var err error
	if m.ID, b, err = readDot(b); err != nil {
		return nil, b, err
	}
	if m.Seq, b, err = proto.ReadUvarint(b); err != nil {
		return nil, b, err
	}
	if m.Deps, b, err = readDots(b); err != nil {
		return nil, b, err
	}
	return m, b, nil
}

// WireTag implements proto.BinaryMessage.
func (m *EAccept) WireTag() byte { return tagEAccept }

// AppendBinary implements proto.BinaryMessage.
//
//tempo:noalloc
func (m *EAccept) AppendBinary(buf []byte) []byte {
	buf = appendDot(buf, m.ID)
	buf = proto.AppendUvarint(buf, uint64(m.Ballot))
	buf = proto.AppendUvarint(buf, m.Seq)
	return appendDots(buf, m.Deps)
}

func decodeEAccept(b []byte) (proto.Message, []byte, error) {
	m := &EAccept{}
	var err error
	if m.ID, b, err = readDot(b); err != nil {
		return nil, b, err
	}
	var bal uint64
	if bal, b, err = proto.ReadUvarint(b); err != nil {
		return nil, b, err
	}
	m.Ballot = ids.Ballot(bal)
	if m.Seq, b, err = proto.ReadUvarint(b); err != nil {
		return nil, b, err
	}
	if m.Deps, b, err = readDots(b); err != nil {
		return nil, b, err
	}
	return m, b, nil
}

// WireTag implements proto.BinaryMessage.
func (m *EAcceptAck) WireTag() byte { return tagEAcceptAck }

// AppendBinary implements proto.BinaryMessage.
//
//tempo:noalloc
func (m *EAcceptAck) AppendBinary(buf []byte) []byte {
	buf = appendDot(buf, m.ID)
	return proto.AppendUvarint(buf, uint64(m.Ballot))
}

func decodeEAcceptAck(b []byte) (proto.Message, []byte, error) {
	m := &EAcceptAck{}
	var err error
	if m.ID, b, err = readDot(b); err != nil {
		return nil, b, err
	}
	var bal uint64
	if bal, b, err = proto.ReadUvarint(b); err != nil {
		return nil, b, err
	}
	m.Ballot = ids.Ballot(bal)
	return m, b, nil
}

// WireTag implements proto.BinaryMessage.
func (m *ECommit) WireTag() byte { return tagECommit }

// AppendBinary implements proto.BinaryMessage.
//
//tempo:noalloc
func (m *ECommit) AppendBinary(buf []byte) []byte {
	buf = appendDot(buf, m.ID)
	buf = proto.AppendUvarint(buf, uint64(m.Shard))
	buf = command.AppendCommand(buf, m.Cmd)
	buf = proto.AppendUvarint(buf, m.Seq)
	return appendDots(buf, m.Deps)
}

func decodeECommit(b []byte) (proto.Message, []byte, error) {
	m := &ECommit{}
	var err error
	if m.ID, b, err = readDot(b); err != nil {
		return nil, b, err
	}
	var shard uint64
	if shard, b, err = proto.ReadUvarint(b); err != nil {
		return nil, b, err
	}
	m.Shard = ids.ShardID(shard)
	if m.Cmd, b, err = command.DecodeCommand(b); err != nil {
		return nil, b, err
	}
	if m.Seq, b, err = proto.ReadUvarint(b); err != nil {
		return nil, b, err
	}
	if m.Deps, b, err = readDots(b); err != nil {
		return nil, b, err
	}
	return m, b, nil
}

// WireTag implements proto.BinaryMessage.
func (m *ECommitReq) WireTag() byte { return tagECommitReq }

// AppendBinary implements proto.BinaryMessage.
//
//tempo:noalloc
func (m *ECommitReq) AppendBinary(buf []byte) []byte {
	return appendDot(buf, m.ID)
}

func decodeECommitReq(b []byte) (proto.Message, []byte, error) {
	m := &ECommitReq{}
	var err error
	if m.ID, b, err = readDot(b); err != nil {
		return nil, b, err
	}
	return m, b, nil
}
