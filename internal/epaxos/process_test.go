package epaxos

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"tempo/internal/check"
	"tempo/internal/command"
	"tempo/internal/ids"
	"tempo/internal/proto"
	"tempo/internal/testnet"
	"tempo/internal/topology"
)

func lineTopo(t *testing.T, r, f, shards int) *topology.Topology {
	t.Helper()
	names := make([]string, r)
	rtt := make([][]time.Duration, r)
	for i := range names {
		names[i] = string(rune('A' + i))
		rtt[i] = make([]time.Duration, r)
		for j := range rtt[i] {
			d := i - j
			if d < 0 {
				d = -d
			}
			rtt[i][j] = time.Duration(d) * 2 * time.Millisecond
		}
	}
	topo, err := topology.New(topology.Config{SiteNames: names, RTT: rtt, NumShards: shards, F: f})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func makeNet(t *testing.T, topo *topology.Topology, cfg Config) (map[ids.ProcessID]*Process, *testnet.Net) {
	t.Helper()
	procs := make(map[ids.ProcessID]*Process)
	var reps []proto.Replica
	for _, pi := range topo.Processes() {
		p := New(pi.ID, topo, cfg)
		procs[pi.ID] = p
		reps = append(reps, p)
	}
	return procs, testnet.New(reps...)
}

func at(topo *topology.Topology, site, shard int) ids.ProcessID {
	return topo.ProcessAt(ids.SiteID(site), ids.ShardID(shard))
}

func TestAtlasSingleCommand(t *testing.T) {
	topo := lineTopo(t, 5, 1, 1)
	procs, net := makeNet(t, topo, Config{Variant: VariantAtlas})
	a := at(topo, 0, 0)
	cmd := command.NewPut(procs[a].NextID(), "x", []byte("v"))
	net.Submit(a, cmd)
	net.Drain(0)
	for pid, p := range procs {
		if got := p.graph.Executed(); got != 1 {
			t.Fatalf("process %d executed %d, want 1", pid, got)
		}
		if v, ok := p.Store().Get("x"); !ok || string(v) != "v" {
			t.Errorf("process %d store missing x", pid)
		}
	}
	if fast, slow := procs[a].Stats(); fast != 1 || slow != 0 {
		t.Errorf("want fast path, got fast=%d slow=%d", fast, slow)
	}
}

func TestAtlasF1AlwaysFast(t *testing.T) {
	topo := lineTopo(t, 5, 1, 1)
	procs, net := makeNet(t, topo, Config{Variant: VariantAtlas})
	for site := 0; site < 5; site++ {
		p := procs[at(topo, site, 0)]
		for k := 0; k < 4; k++ {
			net.Submit(p.ID(), command.NewPut(p.NextID(), "hot", nil))
		}
	}
	net.Drain(0)
	for _, p := range procs {
		if _, slow := p.Stats(); slow != 0 {
			t.Fatalf("Atlas f=1 must always take the fast path")
		}
	}
}

func TestEPaxosConflictForcesSlowPath(t *testing.T) {
	topo := lineTopo(t, 5, 1, 1)
	procs, net := makeNet(t, topo, Config{Variant: VariantEPaxos})
	// Two conflicting commands from different coordinators, delivered
	// concurrently: at least one coordinator sees mismatched deps.
	pa := procs[at(topo, 0, 0)]
	pe := procs[at(topo, 4, 0)]
	net.Submit(pa.ID(), command.NewPut(pa.NextID(), "hot", nil))
	net.Submit(pe.ID(), command.NewPut(pe.NextID(), "hot", nil))
	net.Drain(0)
	var slowTotal uint64
	for _, p := range procs {
		_, slow := p.Stats()
		slowTotal += slow
	}
	if slowTotal == 0 {
		t.Fatal("concurrent conflicts must force EPaxos off the fast path")
	}
	// Both commands still execute everywhere, consistently.
	for pid, p := range procs {
		if got := p.graph.Executed(); got != 2 {
			t.Fatalf("process %d executed %d, want 2", pid, got)
		}
	}
}

func TestEPaxosNonConflictingStayFast(t *testing.T) {
	topo := lineTopo(t, 5, 1, 1)
	procs, net := makeNet(t, topo, Config{Variant: VariantEPaxos})
	for site := 0; site < 5; site++ {
		p := procs[at(topo, site, 0)]
		net.Submit(p.ID(), command.NewPut(p.NextID(), command.Key(fmt.Sprintf("k%d", site)), nil))
	}
	net.Drain(0)
	for _, p := range procs {
		if _, slow := p.Stats(); slow != 0 {
			t.Fatal("disjoint keys must stay on the fast path")
		}
	}
}

func TestReadsDoNotDependOnReads(t *testing.T) {
	topo := lineTopo(t, 3, 1, 1)
	procs, net := makeNet(t, topo, Config{Variant: VariantAtlas})
	p := procs[at(topo, 0, 0)]
	w := command.NewPut(p.NextID(), "k", []byte("v"))
	net.Submit(p.ID(), w)
	net.Drain(0)
	r1 := command.NewGet(p.NextID(), "k")
	net.Submit(p.ID(), r1)
	net.Drain(0)
	r2 := command.NewGet(p.NextID(), "k")
	net.Submit(p.ID(), r2)
	net.Drain(0)
	// r2 depends on w (last write) but not on r1.
	st := p.cmds[r2.ID]
	if !containsDot(st.deps, w.ID) {
		t.Error("read must depend on the last write")
	}
	if containsDot(st.deps, r1.ID) {
		t.Error("read must not depend on a read")
	}
	// A subsequent write depends on both reads.
	w2 := command.NewPut(p.NextID(), "k", []byte("v2"))
	net.Submit(p.ID(), w2)
	net.Drain(0)
	st2 := p.cmds[w2.ID]
	if !containsDot(st2.deps, r1.ID) || !containsDot(st2.deps, r2.ID) {
		t.Errorf("write must depend on prior reads, got %v", st2.deps)
	}
}

func randomWorkload(t *testing.T, variant Variant, seed int64, f int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	topo := lineTopo(t, 5, f, 1)
	procs, net := makeNet(t, topo, Config{Variant: variant})
	net.Rng = rng
	chk := check.New()
	n := 30
	for i := 0; i < n; i++ {
		p := procs[at(topo, rng.Intn(5), 0)]
		var c *command.Command
		key := command.Key(fmt.Sprintf("k%d", rng.Intn(3)))
		if rng.Intn(2) == 0 {
			c = command.NewPut(p.NextID(), key, nil)
		} else {
			c = command.NewGet(p.NextID(), key)
		}
		chk.Submitted(c)
		net.Submit(p.ID(), c)
		for s := 0; s < rng.Intn(15); s++ {
			net.Step()
		}
	}
	net.Drain(0)
	for pid, p := range procs {
		if got := p.graph.Executed(); got != uint64(n) {
			t.Fatalf("process %d executed %d/%d (pending %d)", pid, got, n, p.graph.Pending())
		}
		var order []ids.Dot
		for _, e := range p.Drain() {
			order = append(order, e.Cmd.ID)
		}
		chk.Executed(check.Log{Process: pid, Shard: 0, Order: order})
	}
	if err := chk.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomWorkloadsOrdering(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		for _, v := range []Variant{VariantEPaxos, VariantAtlas} {
			for _, f := range []int{1, 2} {
				if v == VariantEPaxos && f == 2 {
					continue // classic EPaxos fixes f = ⌊(r-1)/2⌋; skip
				}
				t.Run(fmt.Sprintf("%v_seed%d_f%d", v, seed, f), func(t *testing.T) {
					randomWorkload(t, v, seed, f)
				})
			}
		}
	}
}

func TestJanusStyleMultiShard(t *testing.T) {
	topo := lineTopo(t, 3, 1, 2)
	procs, net := makeNet(t, topo, Config{Variant: VariantAtlas, NonGenuineCommit: true})
	// Find keys on each shard.
	var k0, k1 command.Key
	for i := 0; k0 == "" || k1 == ""; i++ {
		k := command.Key(fmt.Sprintf("key%d", i))
		if topo.ShardOf(k) == 0 && k0 == "" {
			k0 = k
		} else if topo.ShardOf(k) == 1 && k1 == "" {
			k1 = k
		}
	}
	p := procs[at(topo, 0, 0)]
	c := command.New(p.NextID(),
		command.Op{Kind: command.Put, Key: k0, Value: []byte("v0")},
		command.Op{Kind: command.Put, Key: k1, Value: []byte("v1")},
	)
	net.Submit(p.ID(), c)
	net.Drain(0)
	// Executed at every replica of both shards.
	for pid, proc := range procs {
		if got := proc.graph.Executed(); got != 1 {
			t.Fatalf("process %d executed %d, want 1", pid, got)
		}
	}
	if v, ok := procs[at(topo, 1, 1)].Store().Get(k1); !ok || string(v) != "v1" {
		t.Error("shard-1 replica missing write")
	}
	if _, ok := procs[at(topo, 1, 1)].Store().Get(k0); ok {
		t.Error("shard-1 replica must not store shard-0 key")
	}
}

func TestExecuteOnCommit(t *testing.T) {
	topo := lineTopo(t, 3, 1, 1)
	procs, net := makeNet(t, topo, Config{Variant: VariantAtlas, ExecuteOnCommit: true})
	p := procs[at(topo, 0, 0)]
	c := command.NewPut(p.NextID(), "k", []byte("v"))
	net.Submit(p.ID(), c)
	net.Drain(0)
	if len(p.Drain()) != 1 {
		t.Fatal("command should execute immediately on commit")
	}
	if p.graph.Pending() != 0 || p.graph.Executed() != 0 {
		t.Error("graph should be bypassed")
	}
}
