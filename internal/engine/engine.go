// Package engine names the consensus engines that run on the cluster
// runtime and constructs their replicas: Tempo (the paper's protocol),
// EPaxos (the conflict-sensitive leaderless baseline) and FPaxos (the
// leader-based baseline). tempo-server's -engine flag, the compare
// benchmark and the conformance suite all resolve engines here, so the
// set of runnable protocols lives in exactly one place.
//
// Every engine satisfies the cluster runtime's required capabilities
// (proto.Replica + proto.IDMinter) plus deferred apply, shard routing
// and op-batching (proto.DeferredApplier, Shard, OpsShard). Tempo alone
// is Durable; FPaxos alone is LeaderAware. See docs/ARCHITECTURE.md
// "Pluggable engines" for the capability matrix.
package engine

import (
	"fmt"

	"tempo/internal/epaxos"
	"tempo/internal/fpaxos"
	"tempo/internal/ids"
	"tempo/internal/proto"
	"tempo/internal/tempo"
	"tempo/internal/topology"
)

// Engine names accepted by New.
const (
	Tempo  = "tempo"
	EPaxos = "epaxos"
	FPaxos = "fpaxos"
)

// Names returns the engines New accepts, in documentation order.
func Names() []string { return []string{Tempo, EPaxos, FPaxos} }

// Config carries per-engine tuning; New reads only the section matching
// the requested engine.
type Config struct {
	Tempo  tempo.Config
	EPaxos epaxos.Config
	FPaxos fpaxos.Config
}

// New constructs the named engine's replica for process id. The empty
// name selects Tempo (the default engine everywhere).
func New(name string, id ids.ProcessID, topo *topology.Topology, cfg Config) (proto.Replica, error) {
	switch name {
	case Tempo, "":
		return tempo.New(id, topo, cfg.Tempo), nil
	case EPaxos:
		return epaxos.New(id, topo, cfg.EPaxos), nil
	case FPaxos:
		return fpaxos.New(id, topo, cfg.FPaxos), nil
	}
	return nil, fmt.Errorf("engine: unknown engine %q (have %v)", name, Names())
}
