package engine

import (
	"bytes"
	"reflect"
	"testing"

	"tempo/internal/command"
	"tempo/internal/epaxos"
	"tempo/internal/fpaxos"
	"tempo/internal/ids"
	"tempo/internal/proto"
	"tempo/internal/tempo"
	"tempo/internal/topology"
)

func TestNewConstructsEveryEngine(t *testing.T) {
	topo := topology.EC2(1)
	for _, name := range Names() {
		rep, err := New(name, topo.Processes()[0].ID, topo, Config{})
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if _, ok := rep.(proto.IDMinter); !ok {
			t.Errorf("engine %q does not mint ids; the cluster runtime cannot run it", name)
		}
		if _, ok := rep.(proto.DeferredApplier); !ok {
			t.Errorf("engine %q does not defer apply; execution would run under the protocol lock", name)
		}
	}
	if rep, err := New("", topo.Processes()[0].ID, topo, Config{}); err != nil {
		t.Fatalf("New(\"\"): %v", err)
	} else if _, ok := rep.(*tempo.Process); !ok {
		t.Errorf("empty engine name resolved to %T, want Tempo", rep)
	}
	if _, err := New("caesar", topo.Processes()[0].ID, topo, Config{}); err == nil {
		t.Error("unknown engine accepted")
	}
}

func sampleCmd(seq uint64) *command.Command {
	c := command.New(ids.Dot{Source: 3, Seq: seq},
		command.Op{Kind: command.Put, Key: "alpha", Value: []byte("v-alpha")},
		command.Op{Kind: command.Get, Key: "beta"},
	)
	c.Padding = 64
	return c
}

// compareSampleMessages covers every message type of the compare-bench
// engines' wire codecs (EPaxos and FPaxos; the Tempo codec has its own
// suite in internal/tempo) with representative field values, including
// empty/nil optional fields.
func compareSampleMessages() []proto.Message {
	cmd := sampleCmd(41)
	deps := []ids.Dot{{Source: 1, Seq: 3}, {Source: 2, Seq: 9}}
	q := epaxos.Quorums{0: {1, 2, 3}, 1: {4, 5}}
	return []proto.Message{
		&epaxos.ESubmit{ID: ids.Dot{Source: 1, Seq: 7}, Cmd: cmd, Quorums: q},
		&epaxos.EPreAccept{ID: ids.Dot{Source: 1, Seq: 8}, Cmd: cmd, Quorums: q, Seq: 4, Deps: deps},
		&epaxos.EPreAccept{ID: ids.Dot{Source: 1, Seq: 9}, Cmd: cmd, Seq: 1},
		&epaxos.EPreAcceptAck{ID: ids.Dot{Source: 2, Seq: 10}, Seq: 5, Deps: deps},
		&epaxos.EPreAcceptAck{ID: ids.Dot{Source: 2, Seq: 11}, Seq: 2},
		&epaxos.EAccept{ID: ids.Dot{Source: 3, Seq: 12}, Ballot: 7, Seq: 6, Deps: deps},
		&epaxos.EAcceptAck{ID: ids.Dot{Source: 3, Seq: 13}, Ballot: 7},
		&epaxos.ECommit{ID: ids.Dot{Source: 4, Seq: 14}, Shard: 1, Cmd: cmd, Seq: 8, Deps: deps},
		&epaxos.ECommitReq{ID: ids.Dot{Source: 4, Seq: 15}},
		&fpaxos.FForward{Cmds: []*command.Command{cmd, sampleCmd(42)}},
		&fpaxos.FForward{},
		&fpaxos.FAccept{Slot: 9, Ballot: 1, Cmds: []*command.Command{cmd}},
		&fpaxos.FAcceptAck{Slot: 9, Ballot: 1},
		&fpaxos.FCommit{Slot: 9, Cmds: []*command.Command{cmd}},
		&fpaxos.FSlotReq{Next: 10},
	}
}

// TestCompareCodecRoundTrip pins the acceptance property for the new
// engine codecs: every message round-trips byte-identically.
func TestCompareCodecRoundTrip(t *testing.T) {
	for _, m := range compareSampleMessages() {
		b1, err := proto.AppendMessage(nil, m)
		if err != nil {
			t.Fatalf("%T: %v", m, err)
		}
		m2, rest, err := proto.DecodeMessage(b1)
		if err != nil {
			t.Fatalf("%T: decode: %v", m, err)
		}
		if len(rest) != 0 {
			t.Fatalf("%T: %d trailing bytes", m, len(rest))
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("%T: decoded %+v != original %+v", m, m2, m)
		}
		b2, err := proto.AppendMessage(nil, m2)
		if err != nil {
			t.Fatalf("%T: re-encode: %v", m, err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("%T: re-encode not byte-identical:\n  %x\n  %x", m, b1, b2)
		}
	}
}

// FuzzCompareCodecRoundTrip fuzzes the EPaxos/FPaxos decoders with raw
// bytes: anything that decodes must re-encode byte-identically
// (canonical bytes) and decode back DeepEqual; corrupt or truncated
// input must be rejected with an error, never mis-decoded into another
// engine's message type.
func FuzzCompareCodecRoundTrip(f *testing.F) {
	for _, m := range compareSampleMessages() {
		b, err := proto.AppendMessage(nil, m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, _, err := proto.DecodeMessage(data)
		if err != nil {
			return // corrupt input rejected: fine
		}
		b1, err := proto.AppendMessage(nil, msg)
		if err != nil {
			t.Fatalf("decoded %T does not re-encode: %v", msg, err)
		}
		msg2, rest2, err := proto.DecodeMessage(b1)
		if err != nil || len(rest2) != 0 {
			t.Fatalf("re-decode %T: %v (%d trailing)", msg, err, len(rest2))
		}
		if !reflect.DeepEqual(msg, msg2) {
			t.Fatalf("round trip changed %T:\n  %+v\n  %+v", msg, msg, msg2)
		}
		b2, err := proto.AppendMessage(nil, msg2)
		if err != nil || !bytes.Equal(b1, b2) {
			t.Fatalf("%T encoding not canonical", msg)
		}
	})
}
