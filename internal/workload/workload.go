// Package workload implements the paper's benchmark workloads:
//
//   - the conflict-rate microbenchmark of §6.3 (a command picks the shared
//     key 0 with probability ρ and a unique per-client key otherwise, with
//     a configurable payload size), and
//   - YCSB+T (§6.4): transactions accessing two keys drawn from a zipfian
//     distribution over a large keyspace, with a configurable write ratio
//     (w=0%: YCSB C, w=5%: YCSB B, w=50%: YCSB A).
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"tempo/internal/command"
	"tempo/internal/ids"
)

// Workload generates the operations for one client's next command.
type Workload interface {
	// NextOps returns the operations of the client's next command.
	NextOps(client int) []command.Op
	// PayloadBytes returns the extra padding attached to each command.
	PayloadBytes() int
}

// Microbench is the conflict-rate microbenchmark (§6.3).
type Microbench struct {
	// ConflictRate is ρ: the probability of touching the shared key.
	ConflictRate float64
	// Payload is the command payload size in bytes (default 100).
	Payload int
	// Rng drives the key choice.
	Rng *rand.Rand

	counters map[int]int
}

// NewMicrobench creates the microbenchmark with conflict rate rho.
func NewMicrobench(rho float64, payload int, rng *rand.Rand) *Microbench {
	if payload == 0 {
		payload = 100
	}
	return &Microbench{ConflictRate: rho, Payload: payload, Rng: rng, counters: map[int]int{}}
}

// NextOps implements Workload: key 0 with probability ρ, else a key
// unique to this client.
func (m *Microbench) NextOps(client int) []command.Op {
	var key command.Key
	if m.Rng.Float64() < m.ConflictRate {
		key = "0"
	} else {
		m.counters[client]++
		key = command.Key(fmt.Sprintf("c%d-%d", client, m.counters[client]))
	}
	return []command.Op{{Kind: command.Put, Key: key, Value: []byte{1}}}
}

// PayloadBytes implements Workload.
func (m *Microbench) PayloadBytes() int { return m.Payload }

// YCSBT is the YCSB+T transactional workload (§6.4): each command
// accesses KeysPerCmd keys sampled zipfian from Keys keys, each operation
// a write with probability WriteRatio.
type YCSBT struct {
	Keys       int
	KeysPerCmd int
	WriteRatio float64
	Rng        *rand.Rand
	zipf       *Zipfian
}

// NewYCSBT builds the workload; theta is the zipfian constant (the
// paper uses 0.5 and 0.7).
func NewYCSBT(keys int, theta, writeRatio float64, rng *rand.Rand) *YCSBT {
	return &YCSBT{
		Keys:       keys,
		KeysPerCmd: 2,
		WriteRatio: writeRatio,
		Rng:        rng,
		zipf:       NewZipfian(keys, theta),
	}
}

// NextOps implements Workload.
func (y *YCSBT) NextOps(int) []command.Op {
	ops := make([]command.Op, 0, y.KeysPerCmd)
	seen := map[int]bool{}
	for len(ops) < y.KeysPerCmd {
		k := y.zipf.Sample(y.Rng)
		if seen[k] {
			continue
		}
		seen[k] = true
		kind := command.Get
		var val []byte
		if y.Rng.Float64() < y.WriteRatio {
			kind = command.Put
			val = []byte{1}
		}
		ops = append(ops, command.Op{Kind: kind, Key: command.Key(fmt.Sprintf("y%d", k)), Value: val})
	}
	return ops
}

// PayloadBytes implements Workload.
func (y *YCSBT) PayloadBytes() int { return 100 }

// Zipfian samples ranks 0..n-1 with the YCSB zipfian distribution
// (Gray et al.), which supports any theta in (0, 1) — unlike
// math/rand.Zipf, which requires s > 1.
type Zipfian struct {
	n              int
	theta          float64
	alpha          float64
	zetan, zeta2   float64
	eta, threshold float64
}

// NewZipfian precomputes the distribution constants for n items.
func NewZipfian(n int, theta float64) *Zipfian {
	z := &Zipfian{n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.zeta2 = zeta(2, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	z.threshold = 1 + math.Pow(0.5, theta)
	return z
}

func zeta(n int, theta float64) float64 {
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Sample draws a rank in [0, n).
func (z *Zipfian) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < z.threshold {
		return 1
	}
	return int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// MakeCommand materializes a command from workload ops.
func MakeCommand(id ids.Dot, ops []command.Op, payload int) *command.Command {
	c := command.New(id, ops...)
	c.Padding = payload
	return c
}
