package workload

import (
	"math"
	"math/rand"
	"testing"

	"tempo/internal/command"
	"tempo/internal/ids"
)

func TestMicrobenchConflictRate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := NewMicrobench(0.1, 100, rng)
	n := 20000
	hot := 0
	for i := 0; i < n; i++ {
		ops := w.NextOps(i % 16)
		if len(ops) != 1 || ops[0].Kind != command.Put {
			t.Fatal("microbench commands are single-key writes")
		}
		if ops[0].Key == "0" {
			hot++
		}
	}
	got := float64(hot) / float64(n)
	if math.Abs(got-0.1) > 0.01 {
		t.Errorf("observed conflict rate %.3f, want ~0.10", got)
	}
}

func TestMicrobenchUniqueKeysDontRepeat(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := NewMicrobench(0, 0, rng)
	seen := map[command.Key]bool{}
	for i := 0; i < 1000; i++ {
		k := w.NextOps(7)[0].Key
		if seen[k] {
			t.Fatalf("key %s repeated", k)
		}
		seen[k] = true
	}
}

func TestMicrobenchZeroAndFullConflicts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w0 := NewMicrobench(0, 0, rng)
	for i := 0; i < 100; i++ {
		if w0.NextOps(1)[0].Key == "0" {
			t.Fatal("rho=0 must never pick the hot key")
		}
	}
	w1 := NewMicrobench(1, 0, rng)
	for i := 0; i < 100; i++ {
		if w1.NextOps(1)[0].Key != "0" {
			t.Fatal("rho=1 must always pick the hot key")
		}
	}
}

func TestYCSBTShape(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	w := NewYCSBT(10000, 0.7, 0.5, rng)
	writes, total := 0, 0
	for i := 0; i < 5000; i++ {
		ops := w.NextOps(0)
		if len(ops) != 2 {
			t.Fatal("YCSB+T commands access two keys")
		}
		if ops[0].Key == ops[1].Key {
			t.Fatal("keys within a command must be distinct")
		}
		for _, op := range ops {
			total++
			if op.Kind == command.Put {
				writes++
			}
		}
	}
	ratio := float64(writes) / float64(total)
	if math.Abs(ratio-0.5) > 0.03 {
		t.Errorf("write ratio %.3f, want ~0.5", ratio)
	}
}

func TestZipfianSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 100000
	zLow := NewZipfian(n, 0.5)
	zHigh := NewZipfian(n, 0.99)
	top := func(z *Zipfian) float64 {
		hits := 0
		draws := 50000
		for i := 0; i < draws; i++ {
			if z.Sample(rng) < n/100 {
				hits++
			}
		}
		return float64(hits) / float64(draws)
	}
	lo, hi := top(zLow), top(zHigh)
	if hi <= lo {
		t.Errorf("higher theta must be more skewed: top1%% mass %.3f (0.5) vs %.3f (0.99)", lo, hi)
	}
	if lo < 0.02 {
		t.Errorf("zipf 0.5 should still skew toward the head, got %.3f", lo)
	}
}

// TestZipfianHeadMassMatchesTheory pins the sampler to the
// distribution it claims: the hottest rank's draw probability is
// exactly 1/zeta(n, theta), and empirical frequencies must match it —
// over the 1024-key keyspace the cluster bench's zipf load points and
// the vulture use.
func TestZipfianHeadMassMatchesTheory(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n, draws = 1024, 200000
	for _, theta := range []float64{0.5, 0.7, 0.99} {
		z := NewZipfian(n, theta)
		want := 1 / zeta(n, theta)
		hits := 0
		for i := 0; i < draws; i++ {
			if z.Sample(rng) == 0 {
				hits++
			}
		}
		got := float64(hits) / float64(draws)
		if math.Abs(got-want) > 0.15*want+0.005 {
			t.Errorf("theta %.2f: top-rank mass %.4f, theory %.4f", theta, got, want)
		}
	}
}

// TestZipfianRankMonotonicity checks the defining shape: lower ranks
// are at least as hot as higher ones (binned to smooth sampling noise).
func TestZipfianRankMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const n, draws = 1024, 200000
	z := NewZipfian(n, 0.99)
	var bins [4]int // ranks [0,4) [4,16) [16,64) [64,n)
	for i := 0; i < draws; i++ {
		k := z.Sample(rng)
		switch {
		case k < 4:
			bins[0]++
		case k < 16:
			bins[1]++
		case k < 64:
			bins[2]++
		default:
			bins[3]++
		}
	}
	// Per-key mass must decrease across bins.
	per := [4]float64{
		float64(bins[0]) / 4,
		float64(bins[1]) / 12,
		float64(bins[2]) / 48,
		float64(bins[3]) / float64(n-64),
	}
	for i := 1; i < len(per); i++ {
		if per[i] >= per[i-1] {
			t.Fatalf("per-key mass not decreasing: bin %d (%.1f) >= bin %d (%.1f)", i, per[i], i-1, per[i-1])
		}
	}
}

func TestZipfianRange(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	z := NewZipfian(1000, 0.7)
	for i := 0; i < 20000; i++ {
		k := z.Sample(rng)
		if k < 0 || k >= 1000 {
			t.Fatalf("sample %d out of range", k)
		}
	}
}

func TestMakeCommand(t *testing.T) {
	c := MakeCommand(
		ids.Dot{Source: 1, Seq: 1},
		[]command.Op{{Kind: command.Put, Key: "k"}},
		4096,
	)
	if c.Padding != 4096 || len(c.Ops) != 1 {
		t.Fatal("MakeCommand lost fields")
	}
	if c.SizeBytes() < 4096 {
		t.Error("payload not reflected in size")
	}
}
