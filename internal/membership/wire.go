package membership

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"time"

	"tempo/internal/ids"
	"tempo/internal/proto"
)

// --- configuration wire protocol ---
//
// One frame each way on a fresh connection to a replica's shared
// listen port (the listener auto-detects the magic, like the peer,
// client and sync protocols):
//
//	request:  ConfigMagic || frame( kind, ... )
//	            kind 0 (fetch):    no operands
//	            kind 1 (push):     config bytes
//	            kind 2 (frontier): subject process id
//	reply:    fetch/push → frame( config bytes )   — the replica's
//	            current config, after installing a pushed one if newer
//	          frontier   → frame( ok, clock, seq ) — the highest
//	            logical-clock value and command-sequence number the
//	            replica has observed *from* the subject process
//	            (ok=0: the replica cannot answer for that shard)
//
// Fetch is how clients and joiners discover the current epoch; push is
// the reconfiguration fan-out (the reply doubles as an ack carrying
// the receiver's view, so the pusher learns if it lost a race to a
// higher epoch); frontier is the successor-safety query of the replace
// flow (see FrontierMargin).

// ConfigMagic prefixes configuration-protocol connections ('M' for
// membership; 'C' is taken by the client protocol).
var ConfigMagic = [4]byte{0xFF, 'T', 'M', 1}

// Request kinds.
const (
	// KindFetch asks for the replica's current config.
	KindFetch = 0
	// KindPush offers a config; the replica installs it if newer.
	KindPush = 1
	// KindFrontier asks for the replica's observed frontier of a
	// (typically dead) process.
	KindFrontier = 2
)

// FrameLimit bounds config frames; configurations are small (one
// member per site).
const FrameLimit = 1 << 20

// FrontierMargin is added to a dead process's observed frontier before
// its successor adopts it as a floor for fresh logical-clock values
// and command ids.
//
// The safety argument for a drain-less replacement: any promise or
// command id minted by the dead incarnation that can still affect a
// commit must have reached some live shard peer (commits need quorum
// acks, and promise gossip is continuous), so max-ing the frontier
// over the live peers bounds everything observable. What it cannot
// bound is values the dead process minted but that never left its
// process — those are harmless (they are in no quorum) — and values
// in flight from a peer that itself died after observing them. The
// margin absorbs that residue the same way the durable runtime's
// crash reservation chunk does (internal/cluster reserves 1<<19 per
// restart); the replacement flow additionally requires that the
// shard's surviving replicas have been continuously live since the
// dead node last communicated, which the operator asserts by issuing
// the remove. This mirrors the paper's fail-stop recovery assumption
// (Algorithm 5 recovers in-flight commands via live quorums).
const FrontierMargin = 1 << 19

// Fetch asks the replica at addr for its current configuration.
func Fetch(addr string, timeout time.Duration) (*Config, error) {
	req := proto.AppendUvarint(nil, KindFetch)
	reply, err := roundTrip(addr, req, timeout)
	if err != nil {
		return nil, err
	}
	return DecodeConfig(reply)
}

// Push offers cfg to the replica at addr and returns the replica's
// resulting configuration (cfg itself when installed, a newer one when
// the push lost a race, the replica's older one only when cfg failed
// validation there).
func Push(addr string, cfg *Config, timeout time.Duration) (*Config, error) {
	req := proto.AppendUvarint(nil, KindPush)
	req = AppendConfig(req, cfg)
	reply, err := roundTrip(addr, req, timeout)
	if err != nil {
		return nil, err
	}
	return DecodeConfig(reply)
}

// PushAll pushes cfg to every address, returning the number of
// replicas that now hold an epoch >= cfg's and the first error when
// none do.
func PushAll(addrs []string, cfg *Config, timeout time.Duration) (int, error) {
	var firstErr error
	n := 0
	for _, addr := range addrs {
		got, err := Push(addr, cfg, timeout)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("push to %s: %w", addr, err)
			}
			continue
		}
		if got.Epoch >= cfg.Epoch {
			n++
		}
	}
	if n == 0 && firstErr != nil {
		return 0, firstErr
	}
	return n, nil
}

// QueryFrontier asks the replica at addr for the highest clock value
// and command-sequence number it has observed from the subject
// process. ok=false means the replica does not replicate the
// subject's shard (or cannot answer).
func QueryFrontier(addr string, subject ids.ProcessID, timeout time.Duration) (clock, seq uint64, ok bool, err error) {
	req := proto.AppendUvarint(nil, KindFrontier)
	req = proto.AppendUvarint(req, uint64(subject))
	reply, err := roundTrip(addr, req, timeout)
	if err != nil {
		return 0, 0, false, err
	}
	var okv uint64
	if okv, reply, err = proto.ReadUvarint(reply); err != nil {
		return 0, 0, false, err
	}
	if clock, reply, err = proto.ReadUvarint(reply); err != nil {
		return 0, 0, false, err
	}
	if seq, _, err = proto.ReadUvarint(reply); err != nil {
		return 0, 0, false, err
	}
	return clock, seq, okv == 1, nil
}

// roundTrip performs one config-protocol exchange: magic, one request
// frame, one reply frame.
func roundTrip(addr string, body []byte, timeout time.Duration) ([]byte, error) {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * timeout))
	req := append([]byte(nil), ConfigMagic[:]...)
	req = proto.AppendUvarint(req, uint64(len(body)))
	req = append(req, body...)
	if _, err := conn.Write(req); err != nil {
		return nil, err
	}
	return readRawFrame(bufio.NewReader(conn), FrameLimit)
}

// Request is one decoded configuration-protocol request.
//
//tempo:wire encode=- decode=ReadRequest
type Request struct {
	// Kind selects fetch, push or frontier.
	Kind uint64
	// Cfg is the offered configuration (push only).
	Cfg *Config
	// Subject is the queried process (frontier only).
	Subject ids.ProcessID
}

// ReadRequest reads and decodes the one request frame of a config
// connection (the magic has already been consumed by the listener).
func ReadRequest(br *bufio.Reader) (Request, error) {
	body, err := readRawFrame(br, FrameLimit)
	if err != nil {
		return Request{}, err
	}
	var r Request
	if r.Kind, body, err = proto.ReadUvarint(body); err != nil {
		return r, err
	}
	switch r.Kind {
	case KindFetch:
	case KindPush:
		if r.Cfg, err = DecodeConfig(body); err != nil {
			return r, err
		}
	case KindFrontier:
		var subj uint64
		if subj, _, err = proto.ReadUvarint(body); err != nil {
			return r, err
		}
		r.Subject = ids.ProcessID(subj)
	default:
		return r, fmt.Errorf("membership: unknown request kind %d: %w", r.Kind, proto.ErrCorrupt)
	}
	return r, nil
}

// WriteConfigReply writes the reply frame of a fetch or push.
func WriteConfigReply(w io.Writer, cfg *Config) error {
	body := AppendConfig(nil, cfg)
	out := proto.AppendUvarint(nil, uint64(len(body)))
	_, err := w.Write(append(out, body...))
	return err
}

// WriteFrontierReply writes the reply frame of a frontier query.
func WriteFrontierReply(w io.Writer, ok bool, clock, seq uint64) error {
	var body []byte
	if ok {
		body = proto.AppendUvarint(body, 1)
	} else {
		body = proto.AppendUvarint(body, 0)
	}
	body = proto.AppendUvarint(body, clock)
	body = proto.AppendUvarint(body, seq)
	out := proto.AppendUvarint(nil, uint64(len(body)))
	_, err := w.Write(append(out, body...))
	return err
}

// readRawFrame reads one uvarint-length-prefixed frame. (The cluster
// package has an identical helper; duplicated here because cluster
// imports membership.)
func readRawFrame(br *bufio.Reader, limit uint64) ([]byte, error) {
	size, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if size > limit {
		return nil, proto.ErrCorrupt
	}
	b := make([]byte, size)
	if _, err := io.ReadFull(br, b); err != nil {
		return nil, err
	}
	return b, nil
}
