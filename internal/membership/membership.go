// Package membership is the cluster's dynamic-configuration control
// plane: an epoch-stamped description of the deployment — which site
// runs at which address, in which lifecycle state, replicating which
// shards — that replicas agree on and can change while serving.
//
// The static wiring (`-sites/-shards` flags frozen at process start)
// becomes epoch 1 of a Config. Reconfiguration produces a new Config
// with a higher epoch and pushes it to every live replica; a replica
// installs any config whose epoch exceeds its own (configs are
// totally ordered by epoch because every transition is produced by one
// orchestrator — an operator verb or a joining node — from the current
// config; concurrent conflicting transitions are not arbitrated here
// but by the admission procedure in internal/psmr).
//
// The key design choice is that reconfiguration is *slot-based*:
// process ids, ranks, shard→site assignment and therefore the quorum
// geometry (r, f, fast/slow quorum sizes) are fixed for the lifetime of
// a deployment. An epoch rebinds a site's slot to a new address and
// incarnation and moves it through a lifecycle (Active → Draining →
// Left, or Active → Dead → Joining → Active for a replacement), but
// never changes r or f. That keeps every quorum intersection argument
// of the paper intact across reconfigurations: a successor process
// takes over the dead process's id and rank, and the paper's recovery
// protocol (Algorithm 5) — which is rank-based — applies unchanged.
// What the successor must NOT do is reuse promises or command ids its
// predecessor already handed out; see the frontier protocol in wire.go
// and the caveats on FrontierMargin.
package membership

import (
	"fmt"
	"sort"
	"time"

	"tempo/internal/ids"
	"tempo/internal/proto"
	"tempo/internal/topology"
)

// Status is a member's lifecycle state within the current epoch.
type Status uint8

// The member lifecycle. Active serves; Joining is admitted but still
// bootstrapping (peers link to it, clients do not route to it);
// Draining rejects new submissions while flushing; Dead was removed
// without drain (its old incarnation is fenced); Left drained out
// cleanly. Dead and Left slots can be re-admitted as Joining with a
// higher incarnation.
const (
	Active Status = iota
	Joining
	Draining
	Dead
	Left
)

// String renders the status for logs and JSON.
func (s Status) String() string {
	switch s {
	case Active:
		return "active"
	case Joining:
		return "joining"
	case Draining:
		return "draining"
	case Dead:
		return "dead"
	case Left:
		return "left"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// MarshalText implements encoding.TextMarshaler so JSON reports read
// "active", not 0.
func (s Status) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// Member is one site's slot in the configuration: its current serving
// address, lifecycle state, and incarnation (bumped every time the slot
// is re-admitted, so two processes can never both believe they are the
// site's current incarnation).
//
//tempo:wire encode=appendMember decode=decodeMember
type Member struct {
	// Site is the slot: the 0-based site index of the topology.
	Site ids.SiteID `json:"site"`
	// Name labels the site ("site-0", an EC2 region, ...).
	Name string `json:"name"`
	// Addr is the slot's serving address ("" when the slot never ran).
	Addr string `json:"addr"`
	// Status is the slot's lifecycle state.
	Status Status `json:"status"`
	// Incarnation counts admissions of this slot, starting at 1.
	Incarnation uint64 `json:"incarnation"`
}

// Config is one epoch of the cluster configuration. It is immutable
// once built; transitions go through WithMember, which returns an
// epoch+1 copy.
//
//tempo:wire encode=AppendConfig decode=DecodeConfig
type Config struct {
	// Epoch versions the configuration, starting at 1.
	Epoch uint64 `json:"epoch"`
	// F is the per-shard failure tolerance (fixed for the deployment).
	F int `json:"f"`
	// NumShards is the shard count (fixed for the deployment).
	NumShards int `json:"num_shards"`
	// ShardSites lists, per shard, the site indices replicating it
	// (nil: every site replicates every shard). Fixed for the
	// deployment — reconfiguration rebinds slots, it does not move
	// shards.
	ShardSites [][]int `json:"shard_sites,omitempty"`
	// Members holds one entry per site, in site order.
	Members []Member `json:"members"`
}

// Validate checks structural invariants: a positive epoch, one member
// per site in site order with positive incarnations, and a shard map
// the topology package accepts.
func (c *Config) Validate() error {
	if c.Epoch == 0 {
		return fmt.Errorf("membership: epoch 0 (epochs start at 1)")
	}
	if len(c.Members) == 0 {
		return fmt.Errorf("membership: no members")
	}
	for i, m := range c.Members {
		if m.Site != ids.SiteID(i) {
			return fmt.Errorf("membership: member %d has site %d; members must be in site order", i, m.Site)
		}
		if m.Incarnation == 0 {
			return fmt.Errorf("membership: site %d has incarnation 0 (incarnations start at 1)", i)
		}
	}
	if _, err := c.Topology(); err != nil {
		return err
	}
	return nil
}

// Topology derives the quorum topology of this configuration. The RTT
// matrix is zero: quorum *selection* prefers low RTT and breaks ties
// by process id, so derived topologies pick deterministic quorums;
// quorum *intersection* (safety) does not depend on RTT at all.
// Deployments that want latency-aware quorums keep their original
// topology alongside the view (see NewView).
func (c *Config) Topology() (*topology.Topology, error) {
	names := make([]string, len(c.Members))
	rtt := make([][]time.Duration, len(c.Members))
	for i, m := range c.Members {
		names[i] = m.Name
		if names[i] == "" {
			names[i] = fmt.Sprintf("site-%d", i)
		}
		rtt[i] = make([]time.Duration, len(c.Members))
	}
	return topology.New(topology.Config{
		SiteNames:  names,
		RTT:        rtt,
		NumShards:  c.NumShards,
		F:          c.F,
		ShardSites: c.ShardSites,
	})
}

// Member returns the slot for a site.
func (c *Config) Member(site ids.SiteID) (Member, bool) {
	if int(site) >= len(c.Members) {
		return Member{}, false
	}
	return c.Members[site], true
}

// WithMember returns a copy of c at epoch+1 with the site's slot
// replaced by m. It is the single transition constructor: every
// reconfiguration is one slot change per epoch.
func (c *Config) WithMember(m Member) (*Config, error) {
	if int(m.Site) >= len(c.Members) {
		return nil, fmt.Errorf("membership: site %d out of range 0..%d", m.Site, len(c.Members)-1)
	}
	nc := c.Clone()
	nc.Epoch = c.Epoch + 1
	nc.Members[m.Site] = m
	return nc, nil
}

// WithStatus returns a copy of c at epoch+1 with only the site's
// status changed (address and incarnation kept).
func (c *Config) WithStatus(site ids.SiteID, st Status) (*Config, error) {
	m, ok := c.Member(site)
	if !ok {
		return nil, fmt.Errorf("membership: site %d out of range 0..%d", site, len(c.Members)-1)
	}
	m.Status = st
	return c.WithMember(m)
}

// MatchesTopology reports (as an error) whether c's quorum geometry
// differs from topo's — deployments that pair a latency-aware
// topology with a fetched config must check before installing.
func (c *Config) MatchesTopology(topo *topology.Topology) error {
	return sameGeometry(FromTopology(topo, nil), c)
}

// Clone deep-copies the config.
func (c *Config) Clone() *Config {
	nc := *c
	nc.Members = append([]Member(nil), c.Members...)
	if c.ShardSites != nil {
		nc.ShardSites = make([][]int, len(c.ShardSites))
		for i, ss := range c.ShardSites {
			nc.ShardSites[i] = append([]int(nil), ss...)
		}
	}
	return &nc
}

// Addrs lists every distinct non-empty member address, Active members
// first — the contact order for config fetch/push fan-out.
func (c *Config) Addrs() []string {
	seen := make(map[string]bool)
	var active, rest []string
	for _, m := range c.Members {
		if m.Addr == "" || seen[m.Addr] {
			continue
		}
		seen[m.Addr] = true
		if m.Status == Active {
			active = append(active, m.Addr)
		} else {
			rest = append(rest, m.Addr)
		}
	}
	return append(active, rest...)
}

// FromTopology lifts static wiring into epoch 1: every site Active at
// incarnation 1, addressed per siteAddrs. It is how existing
// deployments enter the membership world without new flags.
func FromTopology(topo *topology.Topology, siteAddrs map[ids.SiteID]string) *Config {
	sites := topo.Sites()
	c := &Config{
		Epoch:     1,
		F:         topo.F(),
		NumShards: topo.NumShards(),
		Members:   make([]Member, len(sites)),
	}
	// Recover the shard→site lists from the process table so the derived
	// topology reproduces the original process-id assignment exactly.
	full := true
	c.ShardSites = make([][]int, topo.NumShards())
	for s := 0; s < topo.NumShards(); s++ {
		for _, pid := range topo.ShardProcesses(ids.ShardID(s)) {
			c.ShardSites[s] = append(c.ShardSites[s], int(topo.Process(pid).Site))
		}
		if len(c.ShardSites[s]) != len(sites) || !sort.IntsAreSorted(c.ShardSites[s]) {
			full = false
		}
	}
	if full {
		// Full replication in site order is the nil default; keep the
		// config canonical.
		allDefault := true
		for _, ss := range c.ShardSites {
			for i, v := range ss {
				if v != i {
					allDefault = false
				}
			}
		}
		if allDefault {
			c.ShardSites = nil
		}
	}
	for i, s := range sites {
		c.Members[i] = Member{
			Site:        s.ID,
			Name:        s.Name,
			Addr:        siteAddrs[s.ID],
			Status:      Active,
			Incarnation: 1,
		}
	}
	return c
}

// --- binary codec ---

// AppendConfig appends the wire encoding of c to buf: epoch, f,
// shard map, then the members.
func AppendConfig(buf []byte, c *Config) []byte {
	buf = proto.AppendUvarint(buf, c.Epoch)
	buf = proto.AppendUvarint(buf, uint64(c.F))
	buf = proto.AppendUvarint(buf, uint64(c.NumShards))
	buf = proto.AppendUvarint(buf, uint64(len(c.ShardSites)))
	for _, ss := range c.ShardSites {
		buf = proto.AppendUvarint(buf, uint64(len(ss)))
		for _, site := range ss {
			buf = proto.AppendUvarint(buf, uint64(site))
		}
	}
	buf = proto.AppendUvarint(buf, uint64(len(c.Members)))
	for i := range c.Members {
		buf = appendMember(buf, &c.Members[i])
	}
	return buf
}

// DecodeConfig decodes a config encoded by AppendConfig.
func DecodeConfig(b []byte) (*Config, error) {
	c := &Config{}
	var v uint64
	var err error
	if c.Epoch, b, err = proto.ReadUvarint(b); err != nil {
		return nil, err
	}
	if v, b, err = proto.ReadUvarint(b); err != nil {
		return nil, err
	}
	c.F = int(v)
	if v, b, err = proto.ReadUvarint(b); err != nil {
		return nil, err
	}
	c.NumShards = int(v)
	var nss uint64
	if nss, b, err = proto.ReadUvarint(b); err != nil {
		return nil, err
	}
	if nss > maxSlice {
		return nil, proto.ErrCorrupt
	}
	if nss > 0 {
		c.ShardSites = make([][]int, nss)
		for i := range c.ShardSites {
			var n uint64
			if n, b, err = proto.ReadUvarint(b); err != nil {
				return nil, err
			}
			if n > maxSlice {
				return nil, proto.ErrCorrupt
			}
			c.ShardSites[i] = make([]int, n)
			for j := range c.ShardSites[i] {
				if v, b, err = proto.ReadUvarint(b); err != nil {
					return nil, err
				}
				c.ShardSites[i][j] = int(v)
			}
		}
	}
	var nm uint64
	if nm, b, err = proto.ReadUvarint(b); err != nil {
		return nil, err
	}
	if nm > maxSlice {
		return nil, proto.ErrCorrupt
	}
	c.Members = make([]Member, nm)
	for i := range c.Members {
		if b, err = decodeMember(b, &c.Members[i]); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// maxSlice bounds decoded slice lengths against corrupt frames.
const maxSlice = 1 << 16

// appendMember appends one member's wire encoding.
func appendMember(buf []byte, m *Member) []byte {
	buf = proto.AppendUvarint(buf, uint64(m.Site))
	buf = proto.AppendUvarint(buf, uint64(len(m.Name)))
	buf = append(buf, m.Name...)
	buf = proto.AppendUvarint(buf, uint64(len(m.Addr)))
	buf = append(buf, m.Addr...)
	buf = append(buf, byte(m.Status))
	buf = proto.AppendUvarint(buf, m.Incarnation)
	return buf
}

// decodeMember decodes one member, returning the remaining bytes.
func decodeMember(b []byte, m *Member) ([]byte, error) {
	var v uint64
	var err error
	if v, b, err = proto.ReadUvarint(b); err != nil {
		return b, err
	}
	m.Site = ids.SiteID(v)
	if m.Name, b, err = readString(b); err != nil {
		return b, err
	}
	if m.Addr, b, err = readString(b); err != nil {
		return b, err
	}
	if len(b) == 0 {
		return b, proto.ErrCorrupt
	}
	m.Status = Status(b[0])
	b = b[1:]
	if m.Incarnation, b, err = proto.ReadUvarint(b); err != nil {
		return b, err
	}
	return b, nil
}

// readString reads a uvarint-length-prefixed string.
func readString(b []byte) (string, []byte, error) {
	n, b, err := proto.ReadUvarint(b)
	if err != nil {
		return "", b, err
	}
	if n > uint64(len(b)) {
		return "", b, proto.ErrCorrupt
	}
	return string(b[:n]), b[n:], nil
}
