package membership

import (
	"reflect"
	"testing"
	"time"

	"tempo/internal/ids"
	"tempo/internal/topology"
)

func testConfig(t *testing.T) *Config {
	t.Helper()
	return &Config{
		Epoch:     1,
		F:         1,
		NumShards: 2,
		ShardSites: [][]int{
			{0, 1, 2},
			{1, 2, 3},
		},
		Members: []Member{
			{Site: 0, Name: "a", Addr: "127.0.0.1:7001", Status: Active, Incarnation: 1},
			{Site: 1, Name: "b", Addr: "127.0.0.1:7002", Status: Active, Incarnation: 1},
			{Site: 2, Name: "c", Addr: "127.0.0.1:7003", Status: Active, Incarnation: 1},
			{Site: 3, Name: "d", Addr: "127.0.0.1:7004", Status: Active, Incarnation: 1},
		},
	}
}

func TestConfigRoundTrip(t *testing.T) {
	c := testConfig(t)
	c.Members[2].Status = Draining
	c.Members[3] = Member{Site: 3, Name: "d", Addr: "", Status: Dead, Incarnation: 4}
	got, err := DecodeConfig(AppendConfig(nil, c))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c, got) {
		t.Fatalf("round trip mismatch:\n  in  %+v\n  out %+v", c, got)
	}
}

func TestTopologyMatchesStatic(t *testing.T) {
	// The derived topology must reproduce the static process-id
	// assignment (shard-major, rank = position+1), or epoch-1 configs
	// lifted from flags would disagree with running replicas.
	c := testConfig(t)
	derived, err := c.Topology()
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"a", "b", "c", "d"}
	rtt := make([][]time.Duration, 4)
	for i := range rtt {
		rtt[i] = make([]time.Duration, 4)
	}
	static, err := topology.New(topology.Config{
		SiteNames: names, RTT: rtt, NumShards: 2, F: 1,
		ShardSites: [][]int{{0, 1, 2}, {1, 2, 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(static.Processes(), derived.Processes()) {
		t.Fatalf("derived process table differs from static:\n  static  %+v\n  derived %+v",
			static.Processes(), derived.Processes())
	}
}

func TestFromTopologyRoundTrip(t *testing.T) {
	names := []string{"s0", "s1", "s2"}
	rtt := make([][]time.Duration, 3)
	for i := range rtt {
		rtt[i] = make([]time.Duration, 3)
	}
	topo, err := topology.New(topology.Config{SiteNames: names, RTT: rtt, NumShards: 1, F: 1})
	if err != nil {
		t.Fatal(err)
	}
	addrs := map[ids.SiteID]string{0: "h0:1", 1: "h1:1", 2: "h2:1"}
	c := FromTopology(topo, addrs)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.ShardSites != nil {
		t.Fatalf("full replication should canonicalize to nil ShardSites, got %v", c.ShardSites)
	}
	derived, err := c.Topology()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(topo.Processes(), derived.Processes()) {
		t.Fatalf("FromTopology lost the process table")
	}
}

func TestViewInstall(t *testing.T) {
	c := testConfig(t)
	v, err := NewView(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1", v.Epoch())
	}
	// Shard 0 is sites {0,1,2} → pids 1..3; shard 1 is sites {1,2,3} → 4..6.
	st := v.State()
	if st.Addrs[ids.ProcessID(1)] != "127.0.0.1:7001" || st.Addrs[ids.ProcessID(6)] != "127.0.0.1:7004" {
		t.Fatalf("derived addrs wrong: %v", st.Addrs)
	}

	var notified uint64
	v.Subscribe(func(s *State) { notified = s.Epoch() })

	next, err := c.WithMember(Member{Site: 3, Name: "d", Addr: "127.0.0.1:8004", Status: Dead, Incarnation: 1})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := v.Install(next)
	if err != nil || !ok {
		t.Fatalf("install = %v, %v", ok, err)
	}
	if notified != 2 {
		t.Fatalf("subscriber saw epoch %d, want 2", notified)
	}
	st = v.State()
	if !st.Fenced(ids.ProcessID(6)) {
		t.Fatal("pid 6 (site 3) should be fenced after Dead")
	}
	if _, ok := st.Addrs[ids.ProcessID(6)]; ok {
		t.Fatal("fenced pid should have no serving address")
	}
	if st.Fenced(ids.ProcessID(1)) {
		t.Fatal("pid 1 should not be fenced")
	}

	// Re-installing an old epoch is a no-op.
	ok, err = v.Install(c)
	if err != nil || ok {
		t.Fatalf("stale install = %v, %v; want false, nil", ok, err)
	}

	// Geometry changes are rejected.
	bad := next.Clone()
	bad.Epoch++
	bad.F = 2
	if _, err := v.Install(bad); err == nil {
		t.Fatal("geometry-changing install must fail")
	}
}

func TestStatusTransitions(t *testing.T) {
	c := testConfig(t)
	d1, err := c.WithStatus(2, Draining)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Epoch != 2 || d1.Members[2].Status != Draining || c.Members[2].Status != Active {
		t.Fatalf("WithStatus mutated in place or mis-bumped: %+v", d1)
	}
	if got := d1.Addrs(); got[len(got)-1] != "127.0.0.1:7003" {
		t.Fatalf("draining member should sort after active ones in Addrs(): %v", got)
	}
}
