package membership

import (
	"fmt"
	"sync"
	"sync/atomic"

	"tempo/internal/ids"
	"tempo/internal/topology"
)

// State is one immutable, fully-derived epoch of the configuration:
// the config itself plus everything the runtime needs per message
// (address lookups, fencing) precomputed, so hot paths pay one atomic
// load and a map read.
type State struct {
	// Config is the epoch's configuration.
	Config *Config
	// Topo is the quorum topology (shared across epochs when the
	// geometry is unchanged, which slot-based reconfiguration
	// guarantees).
	Topo *topology.Topology
	// Addrs maps every process of a routable slot (status not Dead or
	// Left) to its serving address.
	Addrs map[ids.ProcessID]string
	// ShardOf maps every process to its shard.
	ShardOf map[ids.ProcessID]ids.ShardID

	siteOf map[ids.ProcessID]ids.SiteID
	fenced map[ids.ProcessID]bool
}

// Epoch returns the state's configuration epoch.
func (s *State) Epoch() uint64 { return s.Config.Epoch }

// Fenced reports whether a process's slot is Dead or Left: its traffic
// must be dropped, because a successor incarnation may be serving (or
// about to serve) under the same process id.
func (s *State) Fenced(pid ids.ProcessID) bool { return s.fenced[pid] }

// Status returns the lifecycle state of a process's slot (Active for
// unknown pids, the static-deployment default).
func (s *State) Status(pid ids.ProcessID) Status {
	site, ok := s.siteOf[pid]
	if !ok {
		return Active
	}
	return s.Config.Members[site].Status
}

// SiteOf returns the site owning a process's slot.
func (s *State) SiteOf(pid ids.ProcessID) (ids.SiteID, bool) {
	site, ok := s.siteOf[pid]
	return site, ok
}

// newState derives a State from a validated config. topo overrides the
// derived zero-RTT topology when the caller has a latency-aware one
// with identical geometry (the static-deployment entry path).
func newState(cfg *Config, topo *topology.Topology) (*State, error) {
	if topo == nil {
		var err error
		if topo, err = cfg.Topology(); err != nil {
			return nil, err
		}
	}
	s := &State{
		Config:  cfg,
		Topo:    topo,
		Addrs:   make(map[ids.ProcessID]string),
		ShardOf: make(map[ids.ProcessID]ids.ShardID),
		siteOf:  make(map[ids.ProcessID]ids.SiteID),
		fenced:  make(map[ids.ProcessID]bool),
	}
	for _, p := range topo.Processes() {
		s.ShardOf[p.ID] = p.Shard
		s.siteOf[p.ID] = p.Site
		m := cfg.Members[p.Site]
		switch m.Status {
		case Dead, Left:
			s.fenced[p.ID] = true
		default:
			if m.Addr != "" {
				s.Addrs[p.ID] = m.Addr
			}
		}
	}
	return s, nil
}

// View is a node's live handle on the configuration: an atomically
// swappable State plus install-time subscribers. One View is shared by
// every node of a process (all shards of a psmr group) and by the
// group's listener.
type View struct {
	cur  atomic.Pointer[State]
	mu   sync.Mutex // serializes Install and guards subs
	subs []func(*State)
}

// NewView builds a view at cfg. topo, when non-nil, overrides the
// derived topology (it must have the same geometry; the static entry
// path passes the deployment's latency-aware topology).
func NewView(cfg *Config, topo *topology.Topology) (*View, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	st, err := newState(cfg, topo)
	if err != nil {
		return nil, err
	}
	v := &View{}
	v.cur.Store(st)
	return v, nil
}

// State returns the current state. The result is immutable; hot paths
// may hold it across a batch but must re-load per message loop to see
// installs.
func (v *View) State() *State { return v.cur.Load() }

// Epoch returns the current epoch.
func (v *View) Epoch() uint64 { return v.State().Epoch() }

// Install adopts cfg if its epoch exceeds the current one, returning
// whether it was installed. Geometry (r, f, shards) must match the
// current state; the topology object is carried over so quorum
// selection stays latency-aware across epochs.
func (v *View) Install(cfg *Config) (bool, error) {
	if err := cfg.Validate(); err != nil {
		return false, err
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	cur := v.cur.Load()
	if cfg.Epoch <= cur.Epoch() {
		return false, nil
	}
	if err := sameGeometry(cur.Config, cfg); err != nil {
		return false, err
	}
	st, err := newState(cfg, cur.Topo)
	if err != nil {
		return false, err
	}
	v.cur.Store(st)
	for _, fn := range v.subs {
		fn(st)
	}
	return true, nil
}

// Subscribe registers fn to run (under the install lock, after the
// swap) on every future install. Used for cache invalidation — closing
// connections to re-addressed slots — not for heavy work.
func (v *View) Subscribe(fn func(*State)) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.subs = append(v.subs, fn)
}

// sameGeometry checks the slot-based invariant: epochs may rebind
// slots, never change the quorum geometry.
func sameGeometry(a, b *Config) error {
	if a.F != b.F || a.NumShards != b.NumShards || len(a.Members) != len(b.Members) {
		return fmt.Errorf("membership: epoch %d changes geometry (f=%d shards=%d sites=%d -> f=%d shards=%d sites=%d); slots are fixed for a deployment",
			b.Epoch, a.F, a.NumShards, len(a.Members), b.F, b.NumShards, len(b.Members))
	}
	if len(a.ShardSites) != len(b.ShardSites) {
		return fmt.Errorf("membership: epoch %d changes the shard map", b.Epoch)
	}
	for i := range a.ShardSites {
		if len(a.ShardSites[i]) != len(b.ShardSites[i]) {
			return fmt.Errorf("membership: epoch %d changes shard %d's replica set", b.Epoch, i)
		}
		for j := range a.ShardSites[i] {
			if a.ShardSites[i][j] != b.ShardSites[i][j] {
				return fmt.Errorf("membership: epoch %d changes shard %d's replica set", b.Epoch, i)
			}
		}
	}
	return nil
}
