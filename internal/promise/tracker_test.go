package promise

import (
	"testing"

	"tempo/internal/ids"
)

func dot(s, q int) ids.Dot { return ids.Dot{Source: ids.ProcessID(s), Seq: uint64(q)} }

// TestFigure2Stability encodes Figure 2 of the paper: r = 3 processes
// A, B, C (ranks 1, 2, 3) and promise sets
//
//	X = {<A,1>, <C,3>}
//	Y = {<B,1>, <B,2>, <B,3>}
//	Z = {<A,2>, <C,1>, <C,2>}
//
// with the stable timestamps the paper lists for each combination.
func TestFigure2Stability(t *testing.T) {
	const A, B, C = ids.Rank(1), ids.Rank(2), ids.Rank(3)
	type p struct {
		rank ids.Rank
		ts   uint64
	}
	X := []p{{A, 1}, {C, 3}}
	Y := []p{{B, 1}, {B, 2}, {B, 3}}
	Z := []p{{A, 2}, {C, 1}, {C, 2}}

	cases := []struct {
		name string
		sets [][]p
		want uint64
	}{
		{"X", [][]p{X}, 0},
		{"Y", [][]p{Y}, 0},
		{"Z", [][]p{Z}, 0},
		{"X+Y", [][]p{X, Y}, 1},
		{"X+Z", [][]p{X, Z}, 2},
		{"Y+Z", [][]p{Y, Z}, 2},
		{"X+Y+Z", [][]p{X, Y, Z}, 3},
	}
	for _, c := range cases {
		tr := NewTracker(3)
		for _, set := range c.sets {
			for _, pr := range set {
				tr.AddDetached(pr.rank, pr.ts, pr.ts)
			}
		}
		if got := tr.Stable(); got != c.want {
			t.Errorf("%s: stable = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestAttachedBufferedUntilCommit(t *testing.T) {
	tr := NewTracker(3)
	id := dot(1, 1)
	// Majority promises up to 1, but rank 2's promise is attached to an
	// uncommitted command: it must not count.
	tr.AddDetached(1, 1, 1)
	if incorporated := tr.AddAttached(Attached{Owner: 2, ID: id, TS: 1}); incorporated {
		t.Fatal("attached promise for uncommitted command must be buffered")
	}
	if tr.Stable() != 0 {
		t.Fatalf("stable = %d, want 0 before commit", tr.Stable())
	}
	tr.Committed(id)
	if tr.Stable() != 1 {
		t.Fatalf("stable = %d, want 1 after commit", tr.Stable())
	}
	// A later attached promise for an already committed command is
	// incorporated immediately.
	if incorporated := tr.AddAttached(Attached{Owner: 3, ID: id, TS: 1}); !incorporated {
		t.Fatal("attached promise for committed command must be incorporated")
	}
}

func TestPendingIDs(t *testing.T) {
	tr := NewTracker(3)
	a, b := dot(1, 1), dot(2, 1)
	tr.AddAttached(Attached{Owner: 1, ID: b, TS: 2})
	tr.AddAttached(Attached{Owner: 1, ID: a, TS: 1})
	got := tr.PendingIDs()
	if len(got) != 2 || got[0] != a || got[1] != b {
		t.Fatalf("PendingIDs = %v", got)
	}
	tr.Committed(a)
	if got := tr.PendingIDs(); len(got) != 1 || got[0] != b {
		t.Fatalf("PendingIDs after commit = %v", got)
	}
}

func TestStableMajorityR5(t *testing.T) {
	tr := NewTracker(5)
	// 3 of 5 processes have everything up to 7; stability = 7 regardless
	// of the stragglers.
	for rank := ids.Rank(1); rank <= 3; rank++ {
		tr.AddDetached(rank, 1, 7)
	}
	tr.AddDetached(4, 1, 2)
	if got := tr.Stable(); got != 7 {
		t.Fatalf("stable = %d, want 7", got)
	}
	// With only 2 of 5 at 7, stability is bounded by the third highest.
	tr2 := NewTracker(5)
	tr2.AddDetached(1, 1, 7)
	tr2.AddDetached(2, 1, 7)
	tr2.AddDetached(3, 1, 4)
	if got := tr2.Stable(); got != 4 {
		t.Fatalf("stable = %d, want 4", got)
	}
}

func TestHighestContiguousPerRank(t *testing.T) {
	tr := NewTracker(3)
	tr.AddDetached(1, 1, 3)
	tr.AddDetached(1, 5, 6)
	if got := tr.HighestContiguous(1); got != 3 {
		t.Fatalf("got %d, want 3", got)
	}
	if got := tr.HighestContiguous(2); got != 0 {
		t.Fatalf("got %d, want 0", got)
	}
}

func TestForget(t *testing.T) {
	tr := NewTracker(3)
	id := dot(1, 1)
	tr.Committed(id)
	tr.Forget(id)
	if tr.IsCommitted(id) {
		t.Error("forgotten command should not be committed")
	}
}
