// Package promise implements Tempo's promise-tracking machinery (§3.2 of
// the paper): interval-compressed sets of timestamp promises per process,
// and the stability computation of Theorem 1 (a timestamp s is stable once
// a majority of processes have promised every timestamp up to s).
package promise

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// IntervalSet is a set of uint64 timestamps stored as sorted, disjoint,
// non-adjacent closed intervals. The zero value is an empty set.
//
// Promises issued by a process are dense ranges with occasional holes, so
// the representation stays tiny regardless of how many timestamps it
// covers.
type IntervalSet struct {
	iv []interval
}

type interval struct{ lo, hi uint64 }

// Add inserts a single timestamp.
func (s *IntervalSet) Add(t uint64) { s.AddRange(t, t) }

// AddRange inserts all timestamps in [lo, hi]. Empty ranges (lo > hi) are
// ignored.
func (s *IntervalSet) AddRange(lo, hi uint64) {
	if lo > hi {
		return
	}
	// Find the first interval that could merge with [lo, hi]: the first
	// with iv.hi >= lo-1 (adjacency merges too).
	lom := lo
	if lom > 0 {
		lom--
	}
	i := sort.Search(len(s.iv), func(i int) bool { return s.iv[i].hi >= lom })
	// Find one past the last interval that could merge: first with
	// iv.lo > hi+1.
	him := hi + 1
	if him < hi { // overflow
		him = hi
	}
	j := sort.Search(len(s.iv), func(i int) bool { return s.iv[i].lo > him })
	if i == j {
		// No overlap or adjacency: insert new interval at i.
		s.iv = append(s.iv, interval{})
		copy(s.iv[i+1:], s.iv[i:])
		s.iv[i] = interval{lo, hi}
		return
	}
	// Merge intervals i..j-1 with [lo, hi].
	if s.iv[i].lo < lo {
		lo = s.iv[i].lo
	}
	if s.iv[j-1].hi > hi {
		hi = s.iv[j-1].hi
	}
	s.iv[i] = interval{lo, hi}
	s.iv = append(s.iv[:i+1], s.iv[j:]...)
}

// AddSet unions another set into s.
func (s *IntervalSet) AddSet(o *IntervalSet) {
	for _, iv := range o.iv {
		s.AddRange(iv.lo, iv.hi)
	}
}

// AddPairs unions wire-encoded lo/hi pairs (the Encode format) into s
// without materializing an intermediate set. A trailing odd element is
// ignored, as in DecodeSet.
func (s *IntervalSet) AddPairs(pairs []uint64) {
	for i := 0; i+1 < len(pairs); i += 2 {
		s.AddRange(pairs[i], pairs[i+1])
	}
}

// Contains reports whether t is in the set.
func (s *IntervalSet) Contains(t uint64) bool {
	i := sort.Search(len(s.iv), func(i int) bool { return s.iv[i].hi >= t })
	return i < len(s.iv) && s.iv[i].lo <= t
}

// ContainsRange reports whether every timestamp in [lo, hi] is in the set.
func (s *IntervalSet) ContainsRange(lo, hi uint64) bool {
	if lo > hi {
		return true
	}
	i := sort.Search(len(s.iv), func(i int) bool { return s.iv[i].hi >= lo })
	return i < len(s.iv) && s.iv[i].lo <= lo && s.iv[i].hi >= hi
}

// HighestContiguous returns the largest c such that the set contains every
// timestamp in [1, c]; 0 if 1 is absent. This is
// highest_contiguous_promise of Algorithm 2.
func (s *IntervalSet) HighestContiguous() uint64 {
	if len(s.iv) == 0 || s.iv[0].lo > 1 {
		return 0
	}
	return s.iv[0].hi
}

// Min returns the smallest element, or 0 if empty.
func (s *IntervalSet) Min() uint64 {
	if len(s.iv) == 0 {
		return 0
	}
	return s.iv[0].lo
}

// Max returns the largest element, or 0 if empty.
func (s *IntervalSet) Max() uint64 {
	if len(s.iv) == 0 {
		return 0
	}
	return s.iv[len(s.iv)-1].hi
}

// Len returns the number of timestamps in the set, saturating at
// math.MaxUint64 (the full range [0, MaxUint64] has 2^64 elements, which
// does not fit in a uint64).
func (s *IntervalSet) Len() uint64 {
	var n uint64
	for _, iv := range s.iv {
		d := iv.hi - iv.lo + 1 // 0 only for the full range (overflow)
		if d == 0 || n+d < n {
			return math.MaxUint64
		}
		n += d
	}
	return n
}

// NumIntervals returns the number of stored intervals (a measure of
// fragmentation, exposed for tests and metrics).
func (s *IntervalSet) NumIntervals() int { return len(s.iv) }

// Clone returns a deep copy.
func (s *IntervalSet) Clone() *IntervalSet {
	c := &IntervalSet{iv: make([]interval, len(s.iv))}
	copy(c.iv, s.iv)
	return c
}

// Ranges calls fn for every interval in ascending order; fn returning
// false stops the iteration.
func (s *IntervalSet) Ranges(fn func(lo, hi uint64) bool) {
	for _, iv := range s.iv {
		if !fn(iv.lo, iv.hi) {
			return
		}
	}
}

// Encode flattens the set to a []uint64 of lo/hi pairs (wire format).
func (s *IntervalSet) Encode() []uint64 {
	out := make([]uint64, 0, 2*len(s.iv))
	for _, iv := range s.iv {
		out = append(out, iv.lo, iv.hi)
	}
	return out
}

// DecodeSet rebuilds a set from Encode output.
func DecodeSet(pairs []uint64) *IntervalSet {
	s := &IntervalSet{}
	for i := 0; i+1 < len(pairs); i += 2 {
		s.AddRange(pairs[i], pairs[i+1])
	}
	return s
}

// Validate checks the representation invariants: sorted, disjoint,
// non-adjacent, lo <= hi. It is used by property tests.
func (s *IntervalSet) Validate() error {
	for i, iv := range s.iv {
		if iv.lo > iv.hi {
			return fmt.Errorf("interval %d inverted: [%d,%d]", i, iv.lo, iv.hi)
		}
		// Overlap: prev.hi >= lo. Adjacency: lo - prev.hi == 1, computed
		// without prev.hi+1, which wraps when prev.hi == math.MaxUint64
		// and used to let a corrupt set ending in MaxUint64 validate.
		if i > 0 {
			prev := s.iv[i-1]
			if prev.hi >= iv.lo || iv.lo-prev.hi == 1 {
				return fmt.Errorf("intervals %d,%d overlap or are adjacent: [%d,%d] [%d,%d]",
					i-1, i, prev.lo, prev.hi, iv.lo, iv.hi)
			}
		}
	}
	return nil
}

// String renders the set as "{[lo,hi] ...}" for tests and logs.
func (s *IntervalSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, iv := range s.iv {
		if i > 0 {
			b.WriteByte(' ')
		}
		if iv.lo == iv.hi {
			fmt.Fprintf(&b, "%d", iv.lo)
		} else {
			fmt.Fprintf(&b, "%d-%d", iv.lo, iv.hi)
		}
	}
	b.WriteByte('}')
	return b.String()
}
