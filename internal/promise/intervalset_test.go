package promise

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestAddRangeMerging(t *testing.T) {
	s := &IntervalSet{}
	s.AddRange(5, 7)
	s.AddRange(1, 2)
	if s.String() != "{1-2 5-7}" {
		t.Fatalf("got %s", s)
	}
	s.AddRange(3, 4) // adjacency merges everything
	if s.String() != "{1-7}" {
		t.Fatalf("got %s", s)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddOverlapping(t *testing.T) {
	s := &IntervalSet{}
	s.AddRange(10, 20)
	s.AddRange(15, 25)
	s.AddRange(5, 12)
	if s.String() != "{5-25}" {
		t.Fatalf("got %s", s)
	}
}

func TestAddSubsumed(t *testing.T) {
	s := &IntervalSet{}
	s.AddRange(1, 100)
	s.AddRange(40, 50)
	if s.String() != "{1-100}" || s.NumIntervals() != 1 {
		t.Fatalf("got %s", s)
	}
}

func TestAddSpanningMany(t *testing.T) {
	s := &IntervalSet{}
	s.Add(1)
	s.Add(5)
	s.Add(9)
	s.AddRange(2, 10)
	if s.String() != "{1-10}" {
		t.Fatalf("got %s", s)
	}
}

func TestContains(t *testing.T) {
	s := &IntervalSet{}
	s.AddRange(3, 5)
	s.Add(9)
	for _, v := range []uint64{3, 4, 5, 9} {
		if !s.Contains(v) {
			t.Errorf("should contain %d", v)
		}
	}
	for _, v := range []uint64{1, 2, 6, 8, 10} {
		if s.Contains(v) {
			t.Errorf("should not contain %d", v)
		}
	}
}

func TestContainsRange(t *testing.T) {
	s := &IntervalSet{}
	s.AddRange(3, 8)
	if !s.ContainsRange(4, 8) || !s.ContainsRange(3, 3) {
		t.Error("subranges should be contained")
	}
	if s.ContainsRange(2, 4) || s.ContainsRange(7, 9) {
		t.Error("ranges crossing the boundary should not be contained")
	}
	if !s.ContainsRange(5, 4) {
		t.Error("empty range is vacuously contained")
	}
}

func TestHighestContiguous(t *testing.T) {
	s := &IntervalSet{}
	if s.HighestContiguous() != 0 {
		t.Error("empty set should have 0")
	}
	s.AddRange(2, 10)
	if s.HighestContiguous() != 0 {
		t.Error("set without 1 should have 0")
	}
	s.Add(1)
	if got := s.HighestContiguous(); got != 10 {
		t.Errorf("got %d, want 10", got)
	}
	s.AddRange(15, 20)
	if got := s.HighestContiguous(); got != 10 {
		t.Errorf("hole must cap contiguous: got %d, want 10", got)
	}
}

func TestMinMaxLen(t *testing.T) {
	s := &IntervalSet{}
	if s.Min() != 0 || s.Max() != 0 || s.Len() != 0 {
		t.Error("empty set min/max/len should be 0")
	}
	s.AddRange(4, 6)
	s.Add(10)
	if s.Min() != 4 || s.Max() != 10 || s.Len() != 4 {
		t.Errorf("min=%d max=%d len=%d", s.Min(), s.Max(), s.Len())
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := &IntervalSet{}
	s.AddRange(1, 5)
	s.Add(9)
	s.AddRange(20, 30)
	got := DecodeSet(s.Encode())
	if !reflect.DeepEqual(s.iv, got.iv) {
		t.Errorf("round trip: %s vs %s", s, got)
	}
}

func TestClone(t *testing.T) {
	s := &IntervalSet{}
	s.AddRange(1, 5)
	c := s.Clone()
	c.Add(10)
	if s.Contains(10) {
		t.Error("clone must not alias")
	}
}

// Property: IntervalSet behaves exactly like a map-based set under a random
// sequence of Add/AddRange operations, and its invariants always hold.
func TestQuickModelEquivalence(t *testing.T) {
	f := func(seed int64, nOps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := &IntervalSet{}
		model := map[uint64]bool{}
		for i := 0; i < int(nOps); i++ {
			lo := uint64(rng.Intn(64)) + 1
			hi := lo + uint64(rng.Intn(8))
			s.AddRange(lo, hi)
			for v := lo; v <= hi; v++ {
				model[v] = true
			}
			if err := s.Validate(); err != nil {
				t.Logf("invariant violated: %v", err)
				return false
			}
		}
		// Compare membership over the whole domain.
		for v := uint64(1); v <= 80; v++ {
			if s.Contains(v) != model[v] {
				t.Logf("membership mismatch at %d (set %s)", v, s)
				return false
			}
		}
		// Compare cardinality and highest contiguous.
		if s.Len() != uint64(len(model)) {
			return false
		}
		want := uint64(0)
		for model[want+1] {
			want++
		}
		return s.HighestContiguous() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: union via AddSet equals element-wise insertion.
func TestQuickAddSet(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := &IntervalSet{}, &IntervalSet{}
		for i := 0; i < 20; i++ {
			a.AddRange(uint64(rng.Intn(50)+1), uint64(rng.Intn(50)+1)+5)
			b.AddRange(uint64(rng.Intn(50)+1), uint64(rng.Intn(50)+1)+5)
		}
		u := a.Clone()
		u.AddSet(b)
		if err := u.Validate(); err != nil {
			return false
		}
		for v := uint64(1); v <= 120; v++ {
			if u.Contains(v) != (a.Contains(v) || b.Contains(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAddRangeSequential(b *testing.B) {
	s := &IntervalSet{}
	for i := 0; i < b.N; i++ {
		s.AddRange(uint64(i)*3+1, uint64(i)*3+2)
	}
}

func BenchmarkHighestContiguous(b *testing.B) {
	s := &IntervalSet{}
	for i := 0; i < 1000; i++ {
		s.AddRange(uint64(i)*3+1, uint64(i)*3+2)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.HighestContiguous()
	}
}
