package promise

import (
	"math"
	"testing"
)

// The timestamp space is the full uint64 range, so the interval-set
// arithmetic (hi+1 adjacency probes, element counting) must not wrap at
// math.MaxUint64. These tests pin the edge behaviour.

func TestAddRangeMaxUint64(t *testing.T) {
	const m = math.MaxUint64
	s := &IntervalSet{}
	s.AddRange(m, m)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if !s.Contains(m) || s.Contains(m-1) {
		t.Fatalf("after Add(max): %v", s)
	}
	// Adjacent-below range merges into one interval ending at max.
	s.AddRange(10, m-1)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.NumIntervals() != 1 || s.Min() != 10 || s.Max() != m {
		t.Fatalf("merge below max: %v", s)
	}
	if !s.ContainsRange(10, m) {
		t.Fatalf("ContainsRange(10, max) = false on %v", s)
	}
}

func TestAddRangeMaxUint64SwallowsSuffix(t *testing.T) {
	const m = math.MaxUint64
	s := &IntervalSet{}
	s.AddRange(5, 7)
	s.AddRange(100, 200)
	s.AddRange(m-3, m)
	// [6, max] overlaps everything from the first interval on.
	s.AddRange(6, m)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.NumIntervals() != 1 || s.Min() != 5 || s.Max() != m {
		t.Fatalf("suffix swallow: %v", s)
	}
}

func TestContainsRangeMaxUint64(t *testing.T) {
	const m = math.MaxUint64
	s := &IntervalSet{}
	s.AddRange(m-10, m)
	if !s.ContainsRange(m-10, m) || !s.ContainsRange(m, m) {
		t.Fatalf("ContainsRange at max: %v", s)
	}
	if s.ContainsRange(m-11, m) || s.ContainsRange(1, m) {
		t.Fatalf("ContainsRange over-approximates: %v", s)
	}
}

func TestLenSaturatesAtMax(t *testing.T) {
	const m = math.MaxUint64
	full := &IntervalSet{}
	full.AddRange(0, m) // 2^64 elements: must saturate, not wrap to 0
	if got := full.Len(); got != m {
		t.Fatalf("Len(full range) = %d, want saturation at MaxUint64", got)
	}
	s := &IntervalSet{}
	s.AddRange(1, m) // 2^64-1 elements: exactly representable
	if got := s.Len(); got != m {
		t.Fatalf("Len([1,max]) = %d, want %d", got, uint64(m))
	}
	s2 := &IntervalSet{}
	s2.AddRange(3, m)
	s2.AddRange(1, 1)
	if got := s2.Len(); got != m-1 {
		t.Fatalf("Len = %d, want %d", got, uint64(m-1))
	}
}

func TestValidateDetectsOverlapAtMax(t *testing.T) {
	const m = math.MaxUint64
	// A corrupt set whose first interval ends at MaxUint64: the old
	// prev.hi+1 adjacency probe wrapped to 0 and reported it valid.
	s := &IntervalSet{iv: []interval{{5, m}, {7, 9}}}
	if err := s.Validate(); err == nil {
		t.Fatal("Validate missed overlap past an interval ending at MaxUint64")
	}
}

func TestHighestContiguousFullRange(t *testing.T) {
	s := &IntervalSet{}
	s.AddRange(1, math.MaxUint64)
	if got := s.HighestContiguous(); got != math.MaxUint64 {
		t.Fatalf("HighestContiguous = %d", got)
	}
}

func TestAddPairs(t *testing.T) {
	s := &IntervalSet{}
	s.AddPairs([]uint64{1, 3, 5, 9, 2, 4})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.String() != "{1-9}" { // [1,3]∪[5,9]∪[2,4] → [1,4] adjacent to [5,9]
		t.Fatalf("AddPairs = %v", s)
	}
	// Trailing odd element ignored, as in DecodeSet.
	s2 := &IntervalSet{}
	s2.AddPairs([]uint64{1, 2, 99})
	if s2.Contains(99) || !s2.ContainsRange(1, 2) {
		t.Fatalf("AddPairs odd tail: %v", s2)
	}
}
