package promise

import (
	"sort"

	"tempo/internal/ids"
)

// Attached is a promise attached to a command: process rank owner promised
// timestamp TS for command ID and will not reuse it (line 37 of
// Algorithm 1).
type Attached struct {
	Owner ids.Rank
	ID    ids.Dot
	TS    uint64
}

// Tracker is the Promises variable of Algorithm 2 for one shard: the
// promises known from each of the r processes of the shard, plus the
// stability computation of Theorem 1.
//
// Detached promises are incorporated immediately; attached promises only
// once their command is known to be committed (the caller signals commits
// via Committed). Attached promises received earlier are buffered.
type Tracker struct {
	r       int
	perRank []*IntervalSet // rank-1 indexed
	// hc caches perRank[i].HighestContiguous(); maintained incrementally
	// on every promise insertion so Stable never re-walks the sets.
	hc []uint64
	// stable caches the Theorem 1 watermark; recomputed from hc (via
	// scratch, an order-statistic buffer) only after an insertion moved
	// some rank's contiguous frontier.
	stable  uint64
	dirty   bool
	scratch []uint64
	// pending holds attached promises whose command is not yet committed
	// locally, keyed by command id.
	pending map[ids.Dot][]Attached
	// committed remembers command ids whose attached promises may be
	// incorporated.
	committed map[ids.Dot]struct{}
}

// NewTracker creates a tracker for a replica group of r processes.
func NewTracker(r int) *Tracker {
	t := &Tracker{
		r:         r,
		perRank:   make([]*IntervalSet, r),
		hc:        make([]uint64, r),
		scratch:   make([]uint64, r),
		pending:   make(map[ids.Dot][]Attached),
		committed: make(map[ids.Dot]struct{}),
	}
	for i := range t.perRank {
		t.perRank[i] = &IntervalSet{}
	}
	return t
}

// refresh re-reads a rank's contiguous frontier after an insertion and
// marks the stability watermark dirty if it moved.
func (t *Tracker) refresh(rank ids.Rank) {
	if h := t.perRank[rank-1].HighestContiguous(); h != t.hc[rank-1] {
		t.hc[rank-1] = h
		t.dirty = true
	}
}

// AddDetached records a detached promise range [lo, hi] by rank.
func (t *Tracker) AddDetached(rank ids.Rank, lo, hi uint64) {
	t.perRank[rank-1].AddRange(lo, hi)
	t.refresh(rank)
}

// AddDetachedSet records a set of detached promises by rank.
func (t *Tracker) AddDetachedSet(rank ids.Rank, s *IntervalSet) {
	t.perRank[rank-1].AddSet(s)
	t.refresh(rank)
}

// AddDetachedPairs records wire-encoded detached promises (lo/hi pairs,
// as produced by IntervalSet.Encode) by rank, without materializing an
// intermediate set.
func (t *Tracker) AddDetachedPairs(rank ids.Rank, pairs []uint64) {
	t.perRank[rank-1].AddPairs(pairs)
	t.refresh(rank)
}

// AddAttached records an attached promise. If the command is already known
// committed the promise is incorporated immediately; otherwise it is
// buffered until Committed is called for the command. It returns true if
// the promise was incorporated and false if buffered.
func (t *Tracker) AddAttached(a Attached) bool {
	if _, ok := t.committed[a.ID]; ok {
		t.perRank[a.Owner-1].Add(a.TS)
		t.refresh(a.Owner)
		return true
	}
	t.pending[a.ID] = append(t.pending[a.ID], a)
	return false
}

// Committed marks a command as committed (or executed), releasing any
// buffered attached promises for it (line 47 of Algorithm 2).
func (t *Tracker) Committed(id ids.Dot) {
	if _, ok := t.committed[id]; ok {
		return
	}
	t.committed[id] = struct{}{}
	for _, a := range t.pending[id] {
		t.perRank[a.Owner-1].Add(a.TS)
		t.refresh(a.Owner)
	}
	delete(t.pending, id)
}

// IsCommitted reports whether the tracker has been told id is committed.
func (t *Tracker) IsCommitted(id ids.Dot) bool {
	_, ok := t.committed[id]
	return ok
}

// PendingIDs returns the ids with buffered attached promises: commands
// some process has proposed a timestamp for, but that are not committed
// locally. The liveness protocol sends MCommitRequest for these.
func (t *Tracker) PendingIDs() []ids.Dot {
	out := make([]ids.Dot, 0, len(t.pending))
	for id := range t.pending {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// HighestContiguous returns highest_contiguous_promise(rank).
func (t *Tracker) HighestContiguous(rank ids.Rank) uint64 {
	return t.hc[rank-1]
}

// Max returns the highest timestamp this tracker has ever seen promised
// by rank (attached or detached), contiguous or not. It bounds what the
// rank's process could have handed out as far as this process observed —
// the membership frontier query for node replacement.
func (t *Tracker) Max(rank ids.Rank) uint64 {
	return t.perRank[rank-1].Max()
}

// Stable returns the highest stable timestamp per Theorem 1: the largest s
// such that some majority (⌊r/2⌋+1 processes) have all promises up to s.
// Sorting the per-rank highest contiguous promises ascending, this is the
// element at index ⌊r/2⌋ (Algorithm 2, line 50-51).
//
// The result is cached: Stable runs on every protocol step, while the
// per-rank contiguous frontiers move far less often, so the order
// statistic is recomputed (allocation-free, over the cached frontiers)
// only when an insertion actually moved one.
func (t *Tracker) Stable() uint64 {
	if t.dirty {
		t.dirty = false
		s := t.scratch
		copy(s, t.hc)
		for i := 1; i < len(s); i++ { // insertion sort; r is tiny
			for j := i; j > 0 && s[j] < s[j-1]; j-- {
				s[j], s[j-1] = s[j-1], s[j]
			}
		}
		t.stable = s[t.r/2]
	}
	return t.stable
}

// Forget drops commit bookkeeping for a command once its attached
// promises can no longer arrive (after global execution); it bounds the
// committed map. The promise intervals themselves are retained (they are
// compressed).
func (t *Tracker) Forget(id ids.Dot) {
	delete(t.committed, id)
	delete(t.pending, id)
}
