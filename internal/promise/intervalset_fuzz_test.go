package promise

import (
	"encoding/binary"
	"testing"
)

// FuzzIntervalSet drives an IntervalSet with a fuzzer-chosen sequence of
// AddRange operations and checks, after every step, the representation
// invariants (Validate) plus membership against a list of the ranges
// inserted so far. Inputs are 17-byte records: op byte + two uint64s.
func FuzzIntervalSet(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 5})
	f.Add([]byte{
		0, 255, 255, 255, 255, 255, 255, 255, 255, 255, 255, 255, 255, 255, 255, 255, 255,
		1, 0, 0, 0, 0, 0, 0, 0, 1, 255, 255, 255, 255, 255, 255, 255, 254,
	})
	f.Add([]byte{2, 0, 0, 0, 0, 0, 0, 0, 9, 0, 0, 0, 0, 0, 0, 0, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		s := &IntervalSet{}
		var added [][2]uint64
		for len(data) >= 17 {
			op := data[0] % 3
			lo := binary.BigEndian.Uint64(data[1:9])
			hi := binary.BigEndian.Uint64(data[9:17])
			data = data[17:]
			switch op {
			case 0:
				s.AddRange(lo, hi)
			case 1:
				s.AddPairs([]uint64{lo, hi})
			case 2:
				other := &IntervalSet{}
				other.AddRange(lo, hi)
				s.AddSet(other)
			}
			if lo <= hi {
				added = append(added, [2]uint64{lo, hi})
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("after AddRange(%d, %d): %v\nset: %v", lo, hi, err, s)
			}
			if lo <= hi && !s.ContainsRange(lo, hi) {
				t.Fatalf("just-added [%d,%d] not contained in %v", lo, hi, s)
			}
		}
		// Membership must match the inserted ranges at their boundaries
		// and just outside them.
		contains := func(x uint64) bool {
			for _, r := range added {
				if r[0] <= x && x <= r[1] {
					return true
				}
			}
			return false
		}
		for _, r := range added {
			for _, x := range []uint64{r[0], r[1], r[0] - 1, r[1] + 1} {
				// r[0]-1 / r[1]+1 may wrap; the wrapped points are still
				// legitimate probes.
				if got, want := s.Contains(x), contains(x); got != want {
					t.Fatalf("Contains(%d) = %v, want %v\nset: %v", x, got, want, s)
				}
			}
		}
		// The interval representation must round-trip through the wire
		// encoding.
		rt := DecodeSet(s.Encode())
		if rt.String() != s.String() {
			t.Fatalf("encode/decode changed the set: %v -> %v", s, rt)
		}
	})
}
