package command

import (
	"encoding/binary"
	"errors"

	"tempo/internal/ids"
)

// Binary wire encoding of commands, shared by every protocol message
// that carries a payload. The command package sits below internal/proto
// in the import graph, so the varint primitives are local.

// ErrCorrupt reports an undecodable command encoding.
var ErrCorrupt = errors.New("command: corrupt wire data")

// AppendCommand appends the binary encoding of c to buf: a presence
// byte, then id, ops (kind, key, value) and padding. A nil command
// encodes as a single 0 byte.
func AppendCommand(buf []byte, c *Command) []byte {
	if c == nil {
		return append(buf, 0)
	}
	buf = append(buf, 1)
	buf = binary.AppendUvarint(buf, uint64(c.ID.Source))
	buf = binary.AppendUvarint(buf, c.ID.Seq)
	buf = binary.AppendUvarint(buf, uint64(len(c.Ops)))
	for _, op := range c.Ops {
		buf = append(buf, byte(op.Kind))
		buf = binary.AppendUvarint(buf, uint64(len(op.Key)))
		buf = append(buf, op.Key...)
		buf = binary.AppendUvarint(buf, uint64(len(op.Value)))
		buf = append(buf, op.Value...)
	}
	buf = binary.AppendUvarint(buf, uint64(c.Padding))
	return buf
}

// DecodeCommand decodes a command from the front of b, returning the
// unconsumed remainder.
func DecodeCommand(b []byte) (*Command, []byte, error) {
	if len(b) == 0 {
		return nil, b, ErrCorrupt
	}
	present := b[0]
	b = b[1:]
	if present == 0 {
		return nil, b, nil
	}
	c := &Command{}
	var v uint64
	var err error
	if v, b, err = readUvarint(b); err != nil {
		return nil, b, err
	}
	c.ID.Source = ids.ProcessID(v)
	if c.ID.Seq, b, err = readUvarint(b); err != nil {
		return nil, b, err
	}
	var nops uint64
	if nops, b, err = readUvarint(b); err != nil {
		return nil, b, err
	}
	if nops > uint64(len(b)) { // each op needs at least one byte
		return nil, b, ErrCorrupt
	}
	if nops > 0 {
		c.Ops = make([]Op, nops)
	}
	for i := range c.Ops {
		if len(b) == 0 {
			return nil, b, ErrCorrupt
		}
		c.Ops[i].Kind = OpKind(b[0])
		b = b[1:]
		var n uint64
		if n, b, err = readUvarint(b); err != nil || n > uint64(len(b)) {
			return nil, b, ErrCorrupt
		}
		c.Ops[i].Key = Key(b[:n])
		b = b[n:]
		if n, b, err = readUvarint(b); err != nil || n > uint64(len(b)) {
			return nil, b, ErrCorrupt
		}
		if n > 0 {
			c.Ops[i].Value = append([]byte(nil), b[:n]...)
			b = b[n:]
		}
	}
	var pad uint64
	if pad, b, err = readUvarint(b); err != nil {
		return nil, b, err
	}
	c.Padding = int(pad)
	return c, b, nil
}

func readUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, b, ErrCorrupt
	}
	return v, b[n:], nil
}
