package command

import (
	"encoding/binary"
	"errors"

	"tempo/internal/ids"
)

// Binary wire encoding of commands, shared by every protocol message
// that carries a payload. The command package sits below internal/proto
// in the import graph, so the varint primitives are local.

// ErrCorrupt reports an undecodable command encoding.
var ErrCorrupt = errors.New("command: corrupt wire data")

// AppendCommand appends the binary encoding of c to buf: a presence
// byte, then id, ops (kind, key, value) and padding. A nil command
// encodes as a single 0 byte.
//
//tempo:noalloc
func AppendCommand(buf []byte, c *Command) []byte {
	if c == nil {
		return append(buf, 0)
	}
	buf = append(buf, 1)
	buf = binary.AppendUvarint(buf, uint64(c.ID.Source))
	buf = binary.AppendUvarint(buf, c.ID.Seq)
	buf = binary.AppendUvarint(buf, uint64(len(c.Ops)))
	for _, op := range c.Ops {
		buf = append(buf, byte(op.Kind))
		buf = binary.AppendUvarint(buf, uint64(len(op.Key)))
		buf = append(buf, op.Key...)
		buf = binary.AppendUvarint(buf, uint64(len(op.Value)))
		buf = append(buf, op.Value...)
	}
	buf = binary.AppendUvarint(buf, uint64(c.Padding))
	return buf
}

// DecodeCommand decodes a command from the front of b, returning the
// unconsumed remainder.
func DecodeCommand(b []byte) (*Command, []byte, error) {
	if len(b) == 0 {
		return nil, b, ErrCorrupt
	}
	present := b[0]
	b = b[1:]
	if present == 0 {
		return nil, b, nil
	}
	c := &Command{}
	var v uint64
	var err error
	if v, b, err = readUvarint(b); err != nil {
		return nil, b, err
	}
	c.ID.Source = ids.ProcessID(v)
	if c.ID.Seq, b, err = readUvarint(b); err != nil {
		return nil, b, err
	}
	var nops uint64
	if nops, b, err = readUvarint(b); err != nil {
		return nil, b, err
	}
	if nops > uint64(len(b)) { // each op needs at least one byte
		return nil, b, ErrCorrupt
	}
	if nops > 0 {
		c.Ops = make([]Op, nops)
	}
	for i := range c.Ops {
		if len(b) == 0 {
			return nil, b, ErrCorrupt
		}
		c.Ops[i].Kind = OpKind(b[0])
		b = b[1:]
		var n uint64
		if n, b, err = readUvarint(b); err != nil || n > uint64(len(b)) {
			return nil, b, ErrCorrupt
		}
		c.Ops[i].Key = Key(b[:n])
		b = b[n:]
		if n, b, err = readUvarint(b); err != nil || n > uint64(len(b)) {
			return nil, b, ErrCorrupt
		}
		if n > 0 {
			c.Ops[i].Value = append([]byte(nil), b[:n]...)
			b = b[n:]
		}
	}
	var pad uint64
	if pad, b, err = readUvarint(b); err != nil {
		return nil, b, err
	}
	c.Padding = int(pad)
	return c, b, nil
}

func readUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, b, ErrCorrupt
	}
	return v, b[n:], nil
}

// Client protocol payloads. The client↔replica protocol frames carry raw
// operation lists (the replica mints the command identifier), per-op
// result values, and typed errors; their encoders live here so both the
// cluster runtime and the public client package share one layout.

// MaxOpsPerCommand bounds the operation count a decoded command may
// claim. It caps what an untrusted client connection can make the
// server allocate before per-op decoding detects corruption, and is far
// above any real command (the paper's workloads use 1-2 ops).
const MaxOpsPerCommand = 1 << 16

// AppendOps appends the binary encoding of an operation list to buf.
//
//tempo:noalloc
func AppendOps(buf []byte, ops []Op) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(ops)))
	for _, op := range ops {
		buf = append(buf, byte(op.Kind))
		buf = binary.AppendUvarint(buf, uint64(len(op.Key)))
		buf = append(buf, op.Key...)
		buf = binary.AppendUvarint(buf, uint64(len(op.Value)))
		buf = append(buf, op.Value...)
	}
	return buf
}

// DecodeOps decodes an operation list from the front of b, returning the
// unconsumed remainder.
func DecodeOps(b []byte) ([]Op, []byte, error) {
	nops, b, err := readUvarint(b)
	// Each op needs ≥3 bytes (kind, key length, value length); the hard
	// cap keeps a hostile length claim from amplifying into a huge
	// allocation before per-op decoding fails.
	if err != nil || nops > MaxOpsPerCommand || nops*3 > uint64(len(b)) {
		return nil, b, ErrCorrupt
	}
	ops := make([]Op, nops)
	for i := range ops {
		if len(b) == 0 {
			return nil, b, ErrCorrupt
		}
		ops[i].Kind = OpKind(b[0])
		b = b[1:]
		var n uint64
		if n, b, err = readUvarint(b); err != nil || n > uint64(len(b)) {
			return nil, b, ErrCorrupt
		}
		ops[i].Key = Key(b[:n])
		b = b[n:]
		if n, b, err = readUvarint(b); err != nil || n > uint64(len(b)) {
			return nil, b, ErrCorrupt
		}
		if n > 0 {
			ops[i].Value = append([]byte(nil), b[:n]...)
			b = b[n:]
		}
	}
	return ops, b, nil
}

// AppendValues appends per-op result values with a presence byte per
// entry, so a nil value (key not found) survives the wire distinct from
// a present-but-empty value.
//
//tempo:noalloc
func AppendValues(buf []byte, values [][]byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(values)))
	for _, v := range values {
		if v == nil {
			buf = append(buf, 0)
			continue
		}
		buf = append(buf, 1)
		buf = binary.AppendUvarint(buf, uint64(len(v)))
		buf = append(buf, v...)
	}
	return buf
}

// DecodeValues decodes a value list encoded by AppendValues. Absent
// entries decode as nil; present entries are always non-nil, even when
// empty.
func DecodeValues(b []byte) ([][]byte, []byte, error) {
	nv, b, err := readUvarint(b)
	if err != nil || nv > uint64(len(b)) { // each value needs ≥1 byte
		return nil, b, ErrCorrupt
	}
	values := make([][]byte, nv)
	for i := range values {
		if len(b) == 0 {
			return nil, b, ErrCorrupt
		}
		present := b[0]
		b = b[1:]
		if present == 0 {
			continue
		}
		var n uint64
		if n, b, err = readUvarint(b); err != nil || n > uint64(len(b)) {
			return nil, b, ErrCorrupt
		}
		values[i] = make([]byte, n)
		copy(values[i], b[:n])
		b = b[n:]
	}
	return values, b, nil
}

// ErrCode is a typed error crossing the client protocol.
type ErrCode byte

// Wire error codes. Never reuse or renumber: the code is the
// cross-version contract with deployed clients.
const (
	// ErrCodeNone means success.
	ErrCodeNone ErrCode = 0
	// ErrCodeTimeout reports that the request's deadline expired before
	// the command executed.
	ErrCodeTimeout ErrCode = 1
	// ErrCodeBadRequest reports a malformed request (e.g. no operations).
	ErrCodeBadRequest ErrCode = 2
	// ErrCodeShutdown reports that the serving replica is shutting down.
	ErrCodeShutdown ErrCode = 3
	// ErrCodeWrongShard reports a request whose key's shard is not
	// replicated by the serving process.
	ErrCodeWrongShard ErrCode = 4
	// ErrCodeCrossShard reports a plain submission whose operations span
	// shards; such commands must go through the cross-shard submission
	// protocol (submit-at + watch), which merges per-shard result
	// segments instead of silently returning one shard's values.
	ErrCodeCrossShard ErrCode = 5
	// ErrCodeDraining reports a submission to a replica that is leaving
	// the cluster (dynamic membership's graceful drain): it still
	// finishes accepted commands but takes no new ones. Clients retry
	// against another replica and refresh their configuration.
	ErrCodeDraining ErrCode = 6
)

// Typed client-visible errors mirroring the wire codes. They live here,
// below every runtime in the import graph, so both the public client
// package (which re-exports them) and the in-process runtimes return
// the same sentinels.
var (
	// ErrTimeout reports a request whose deadline expired before the
	// command executed.
	ErrTimeout = errors.New("tempo: request timed out")
	// ErrNotFound reports a read of a key with no value.
	ErrNotFound = errors.New("tempo: key not found")
	// ErrClosed reports a request against a closed session or a replica
	// that shut down.
	ErrClosed = errors.New("tempo: session closed")
	// ErrWrongShard reports a command on a key whose shard is not
	// replicated by any reachable process (a partial-replication topology
	// where the session dialed only a subset of the shards).
	ErrWrongShard = errors.New("tempo: key's shard not replicated by any dialed replica")
	// ErrDraining reports a submission to a replica that is gracefully
	// leaving the cluster; retry against another replica (sessions with
	// membership refresh re-route automatically).
	ErrDraining = errors.New("tempo: replica draining")
)

// WireError is a typed error plus detail message as carried by the
// client protocol.
//
//tempo:wire encode=AppendError decode=DecodeError
type WireError struct {
	Code ErrCode
	Msg  string
}

// AppendError appends the binary encoding of a wire error.
//
//tempo:noalloc
func AppendError(buf []byte, e WireError) []byte {
	buf = append(buf, byte(e.Code))
	buf = binary.AppendUvarint(buf, uint64(len(e.Msg)))
	return append(buf, e.Msg...)
}

// DecodeError decodes a wire error from the front of b.
func DecodeError(b []byte) (WireError, []byte, error) {
	if len(b) == 0 {
		return WireError{}, b, ErrCorrupt
	}
	e := WireError{Code: ErrCode(b[0])}
	b = b[1:]
	n, b, err := readUvarint(b)
	if err != nil || n > uint64(len(b)) {
		return WireError{}, b, ErrCorrupt
	}
	e.Msg = string(b[:n])
	return e, b[n:], nil
}
