package command

import (
	"bytes"
	"reflect"
	"testing"
)

func TestOpsRoundTrip(t *testing.T) {
	cases := [][]Op{
		nil,
		{{Kind: Put, Key: "k", Value: []byte("v")}},
		{{Kind: Get, Key: "a"}, {Kind: Put, Key: "b", Value: nil}, {Kind: Put, Key: "", Value: bytes.Repeat([]byte{7}, 300)}},
	}
	for _, ops := range cases {
		buf := AppendOps(nil, ops)
		got, rest, err := DecodeOps(buf)
		if err != nil || len(rest) != 0 {
			t.Fatalf("decode(%v): %v, rest=%d", ops, err, len(rest))
		}
		if len(got) != len(ops) {
			t.Fatalf("round-trip %v -> %v", ops, got)
		}
		for i := range ops {
			if got[i].Kind != ops[i].Kind || got[i].Key != ops[i].Key || !bytes.Equal(got[i].Value, ops[i].Value) {
				t.Fatalf("op %d: %v -> %v", i, ops[i], got[i])
			}
		}
	}
}

// TestValuesRoundTripPreservesNil pins the contract the client API's
// ErrNotFound depends on: a nil value (missing key) crosses the wire
// distinct from a present empty value.
func TestValuesRoundTripPreservesNil(t *testing.T) {
	in := [][]byte{nil, {}, []byte("x"), nil}
	buf := AppendValues(nil, in)
	out, rest, err := DecodeValues(buf)
	if err != nil || len(rest) != 0 {
		t.Fatal(err)
	}
	if len(out) != 4 {
		t.Fatalf("len = %d", len(out))
	}
	if out[0] != nil || out[3] != nil {
		t.Fatalf("nil values not preserved: %v", out)
	}
	if out[1] == nil || len(out[1]) != 0 {
		t.Fatalf("empty value decoded as %v, want non-nil empty", out[1])
	}
	if !bytes.Equal(out[2], []byte("x")) {
		t.Fatalf("out[2] = %v", out[2])
	}
}

func TestWireErrorRoundTrip(t *testing.T) {
	for _, e := range []WireError{
		{},
		{Code: ErrCodeTimeout, Msg: "deadline exceeded before execution"},
		{Code: ErrCodeBadRequest, Msg: ""},
	} {
		buf := AppendError(nil, e)
		got, rest, err := DecodeError(buf)
		if err != nil || len(rest) != 0 {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, e) {
			t.Fatalf("%+v -> %+v", e, got)
		}
	}
}

// TestDecodeCorruptClientPayloads checks truncated inputs fail rather
// than panic or over-read.
func TestDecodeCorruptClientPayloads(t *testing.T) {
	ops := AppendOps(nil, []Op{{Kind: Put, Key: "key", Value: []byte("value")}})
	for cut := 0; cut < len(ops); cut++ {
		if _, _, err := DecodeOps(ops[:cut]); err == nil && cut < len(ops) {
			// Some prefixes decode cleanly only if they form a complete
			// encoding; a strict subset never should.
			t.Fatalf("DecodeOps accepted truncation at %d", cut)
		}
	}
	vals := AppendValues(nil, [][]byte{[]byte("abc"), nil})
	for cut := 0; cut < len(vals); cut++ {
		if _, _, err := DecodeValues(vals[:cut]); err == nil {
			t.Fatalf("DecodeValues accepted truncation at %d", cut)
		}
	}
	if _, _, err := DecodeError(nil); err == nil {
		t.Fatal("DecodeError accepted empty input")
	}
}
