// Package command defines the client command model shared by all protocols:
// keyed read/write operations against the replicated key-value state
// machine, the conflict relation used by dependency-based protocols, and
// multi-shard access sets used by the partial-replication protocols.
package command

import (
	"fmt"
	"sort"

	"tempo/internal/ids"
)

// Key is a state-machine key. In the paper's partial-replication model each
// key is its own partition; keys map to shards via the topology.
type Key string

// OpKind distinguishes reads from writes. Tempo deliberately does not
// exploit the distinction (§3.3); EPaxos/Atlas/Janus* do: two commands
// conflict only if they share a key and at least one writes it.
type OpKind uint8

const (
	// Get reads a key.
	Get OpKind = iota
	// Put writes a key.
	Put
)

// String returns "get" or "put".
func (k OpKind) String() string {
	if k == Get {
		return "get"
	}
	return "put"
}

// Op is a single operation on one key.
//
//tempo:wire encode=AppendOps decode=DecodeOps
type Op struct {
	Kind  OpKind
	Key   Key
	Value []byte // payload for Put; ignored for Get
}

// Command is a client command: a set of operations plus the unique
// identifier assigned by the submitting process. A command may touch keys
// in several shards; a PSMR protocol executes it once per accessed shard.
//
//tempo:wire encode=AppendCommand decode=DecodeCommand
type Command struct {
	ID  ids.Dot
	Ops []Op
	// Padding emulates extra payload bytes (the paper's microbenchmark
	// varies payload size from 100B to 4KB); it has no semantic effect.
	Padding int
}

// New builds a command with the given id and operations.
func New(id ids.Dot, ops ...Op) *Command {
	return &Command{ID: id, Ops: ops}
}

// NewPut builds a single-key write command.
func NewPut(id ids.Dot, key Key, value []byte) *Command {
	return New(id, Op{Kind: Put, Key: key, Value: value})
}

// NewGet builds a single-key read command.
func NewGet(id ids.Dot, key Key) *Command {
	return New(id, Op{Kind: Get, Key: key})
}

// Keys returns the distinct keys accessed by the command, sorted.
func (c *Command) Keys() []Key {
	seen := make(map[Key]struct{}, len(c.Ops))
	var out []Key
	for _, op := range c.Ops {
		if _, ok := seen[op.Key]; !ok {
			seen[op.Key] = struct{}{}
			out = append(out, op.Key)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// WritesKey reports whether the command writes the given key.
func (c *Command) WritesKey(k Key) bool {
	for _, op := range c.Ops {
		if op.Key == k && op.Kind == Put {
			return true
		}
	}
	return false
}

// ReadOnly reports whether the command performs no writes.
func (c *Command) ReadOnly() bool {
	for _, op := range c.Ops {
		if op.Kind == Put {
			return false
		}
	}
	return true
}

// Conflicts reports whether two commands conflict: they access a common
// key and at least one of them writes it. This is the relation used by the
// dependency-based baselines. Tempo never calls it.
func (c *Command) Conflicts(d *Command) bool {
	for _, opC := range c.Ops {
		for _, opD := range d.Ops {
			if opC.Key == opD.Key && (opC.Kind == Put || opD.Kind == Put) {
				return true
			}
		}
	}
	return false
}

// ConflictsAny is Conflicts restricted to a single shard's keys: two
// commands conflict within a shard if they conflict on a key of that
// shard. shardOf maps keys to shards.
func (c *Command) ConflictsOnShard(d *Command, shard ids.ShardID, shardOf func(Key) ids.ShardID) bool {
	for _, opC := range c.Ops {
		if shardOf(opC.Key) != shard {
			continue
		}
		for _, opD := range d.Ops {
			if opC.Key == opD.Key && (opC.Kind == Put || opD.Kind == Put) {
				return true
			}
		}
	}
	return false
}

// Shards returns the sorted set of shards accessed by the command, given a
// key-to-shard mapping.
func (c *Command) Shards(shardOf func(Key) ids.ShardID) []ids.ShardID {
	seen := make(map[ids.ShardID]struct{}, 2)
	var out []ids.ShardID
	for _, op := range c.Ops {
		s := shardOf(op.Key)
		if _, ok := seen[s]; !ok {
			seen[s] = struct{}{}
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SizeBytes approximates the wire size of the command: key and value bytes
// plus padding plus a small per-op overhead. The simulator's NIC model
// uses it.
func (c *Command) SizeBytes() int {
	n := 16 + c.Padding // id + padding
	for _, op := range c.Ops {
		n += 8 + len(op.Key) + len(op.Value)
	}
	return n
}

// String renders the command id and operation count for logs.
func (c *Command) String() string {
	return fmt.Sprintf("cmd(%s,%d ops)", c.ID, len(c.Ops))
}

// Result is the value returned by executing a command against one shard's
// state: one entry per operation on that shard (reads return the value
// read, writes return nil).
type Result struct {
	ID     ids.Dot
	Shard  ids.ShardID
	Values [][]byte
}
