package command

import (
	"testing"

	"tempo/internal/ids"
)

func dot(s, q int) ids.Dot { return ids.Dot{Source: ids.ProcessID(s), Seq: uint64(q)} }

func TestKeysDedupSorted(t *testing.T) {
	c := New(dot(1, 1),
		Op{Kind: Put, Key: "b"},
		Op{Kind: Get, Key: "a"},
		Op{Kind: Put, Key: "b"},
	)
	keys := c.Keys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("Keys() = %v, want [a b]", keys)
	}
}

func TestConflicts(t *testing.T) {
	w1 := NewPut(dot(1, 1), "x", nil)
	w2 := NewPut(dot(1, 2), "x", nil)
	r1 := NewGet(dot(1, 3), "x")
	r2 := NewGet(dot(1, 4), "x")
	other := NewPut(dot(1, 5), "y", nil)

	if !w1.Conflicts(w2) {
		t.Error("write-write on same key must conflict")
	}
	if !w1.Conflicts(r1) || !r1.Conflicts(w1) {
		t.Error("read-write on same key must conflict (both directions)")
	}
	if r1.Conflicts(r2) {
		t.Error("read-read must not conflict")
	}
	if w1.Conflicts(other) {
		t.Error("disjoint keys must not conflict")
	}
}

func TestReadOnly(t *testing.T) {
	if !NewGet(dot(1, 1), "x").ReadOnly() {
		t.Error("get should be read-only")
	}
	if NewPut(dot(1, 1), "x", nil).ReadOnly() {
		t.Error("put should not be read-only")
	}
	mixed := New(dot(1, 1), Op{Kind: Get, Key: "a"}, Op{Kind: Put, Key: "b"})
	if mixed.ReadOnly() {
		t.Error("mixed command should not be read-only")
	}
}

func TestShards(t *testing.T) {
	shardOf := func(k Key) ids.ShardID {
		if k < "m" {
			return 0
		}
		return 1
	}
	c := New(dot(1, 1), Op{Kind: Put, Key: "a"}, Op{Kind: Put, Key: "z"}, Op{Kind: Get, Key: "b"})
	sh := c.Shards(shardOf)
	if len(sh) != 2 || sh[0] != 0 || sh[1] != 1 {
		t.Fatalf("Shards = %v, want [0 1]", sh)
	}
	single := NewPut(dot(1, 2), "a", nil)
	if got := single.Shards(shardOf); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Shards = %v, want [0]", got)
	}
}

func TestConflictsOnShard(t *testing.T) {
	shardOf := func(k Key) ids.ShardID {
		if k < "m" {
			return 0
		}
		return 1
	}
	a := New(dot(1, 1), Op{Kind: Put, Key: "a"}, Op{Kind: Put, Key: "z"})
	b := New(dot(2, 1), Op{Kind: Put, Key: "z"})
	if a.ConflictsOnShard(b, 0, shardOf) {
		t.Error("no shared key on shard 0")
	}
	if !a.ConflictsOnShard(b, 1, shardOf) {
		t.Error("shared written key z on shard 1 must conflict")
	}
}

func TestSizeBytes(t *testing.T) {
	c := NewPut(dot(1, 1), "key!", make([]byte, 100))
	c.Padding = 50
	want := 16 + 50 + 8 + 4 + 100
	if got := c.SizeBytes(); got != want {
		t.Errorf("SizeBytes = %d, want %d", got, want)
	}
}

func TestWritesKey(t *testing.T) {
	c := New(dot(1, 1), Op{Kind: Get, Key: "a"}, Op{Kind: Put, Key: "b"})
	if c.WritesKey("a") {
		t.Error("a is only read")
	}
	if !c.WritesKey("b") {
		t.Error("b is written")
	}
}
