package bench

import (
	"os"
	"time"
)

// smokeOpts keeps harness tests fast: heavy scaling, short windows.
func smokeOpts() Options {
	return Options{Scale: 128, Duration: 800 * time.Millisecond, Warmup: 300 * time.Millisecond, Seed: 7, Out: os.Stdout}
}
