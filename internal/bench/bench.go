// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (§6) on the discrete-event simulator,
// printing the same rows/series the paper reports. cmd/bench and the
// repository-level benchmarks drive it.
//
// Scale note: the paper's cluster experiments use up to 20480 clients per
// site; the harness accepts a scale factor so the same sweeps run in
// seconds on a laptop. Shapes (who wins, by what factor, where crossovers
// fall) are preserved; absolute ops/s are not comparable to the paper's
// hardware.
package bench

import (
	"fmt"
	"io"
	"time"

	"tempo/internal/caesar"
	"tempo/internal/epaxos"
	"tempo/internal/fpaxos"
	"tempo/internal/ids"
	"tempo/internal/proto"
	"tempo/internal/sim"
	"tempo/internal/tempo"
	"tempo/internal/topology"
	"tempo/internal/workload"
)

// Protocol names a benchmarked protocol configuration.
type Protocol struct {
	Name string
	// New builds one replica; nil Cost entries use the default.
	New func(topo *topology.Topology) func(ids.ProcessID) proto.Replica
	// Cost is the CPU/NIC model used in throughput experiments.
	Cost *sim.CostModel
}

// The cost models encode the relative per-message/execution expense of
// each protocol family, calibrated so the paper's bottlenecks appear:
// FPaxos is cheap per message but the leader serializes everything;
// dependency-based protocols pay per graph node in their single-threaded
// executor; Tempo's executor is cheap (heap + interval sets).
var (
	// The handler station stands for the machine's parallel protocol
	// threads (the paper's machines have 8 vCPUs), so per-message work is
	// cheap; the execution station is single-threaded by design in the
	// real systems, so it carries the per-command and (for the EPaxos
	// family) per-graph-node costs. FPaxos's first bottleneck at 4KB
	// payloads is the leader's outbound NIC, as in the paper.
	costTempo = &sim.CostModel{
		PerMsg: 800 * time.Nanosecond, PerByte: time.Nanosecond / 4,
		PerSend: 500 * time.Nanosecond,
		PerExec: 4 * time.Microsecond, NICBytesPerSec: 1 << 30,
	}
	costDeps = &sim.CostModel{
		PerMsg: 800 * time.Nanosecond, PerByte: time.Nanosecond / 4,
		PerSend: 500 * time.Nanosecond,
		PerExec: 6 * time.Microsecond, PerGraphNode: 300 * time.Nanosecond,
		NICBytesPerSec: 1 << 30,
	}
	// Caesar's handlers scan per-key conflict sets on every proposal and
	// defer/retry under contention, making its per-message work heavier.
	costCaesar = &sim.CostModel{
		PerMsg: 3 * time.Microsecond, PerByte: time.Nanosecond / 4,
		PerSend: 500 * time.Nanosecond,
		PerExec: 6 * time.Microsecond, NICBytesPerSec: 1 << 30,
	}
	costFPaxos = &sim.CostModel{
		PerMsg: 800 * time.Nanosecond, PerByte: time.Nanosecond / 4,
		PerSend: 500 * time.Nanosecond,
		PerExec: 3 * time.Microsecond, NICBytesPerSec: 1 << 30,
	}
)

// TempoProto returns the Tempo configuration under test.
func TempoProto(f int, opts tempo.Config) Protocol {
	return Protocol{
		Name: fmt.Sprintf("tempo f=%d", f),
		New: func(topo *topology.Topology) func(ids.ProcessID) proto.Replica {
			return func(id ids.ProcessID) proto.Replica {
				cfg := opts
				if cfg.PromiseInterval == 0 {
					cfg.PromiseInterval = 2 * time.Millisecond
				}
				cfg.RecoveryTimeout = time.Hour // failure-free runs
				return tempo.New(id, topo, cfg)
			}
		},
		Cost: costTempo,
	}
}

// AtlasProto returns the Atlas baseline.
func AtlasProto(f int) Protocol {
	return Protocol{
		Name: fmt.Sprintf("atlas f=%d", f),
		New: func(topo *topology.Topology) func(ids.ProcessID) proto.Replica {
			return func(id ids.ProcessID) proto.Replica {
				return epaxos.New(id, topo, epaxos.Config{Variant: epaxos.VariantAtlas})
			}
		},
		Cost: costDeps,
	}
}

// EPaxosProto returns the EPaxos baseline.
func EPaxosProto() Protocol {
	return Protocol{
		Name: "epaxos",
		New: func(topo *topology.Topology) func(ids.ProcessID) proto.Replica {
			return func(id ids.ProcessID) proto.Replica {
				return epaxos.New(id, topo, epaxos.Config{Variant: epaxos.VariantEPaxos})
			}
		},
		Cost: costDeps,
	}
}

// FPaxosProto returns the FPaxos baseline (batching per cfg).
func FPaxosProto(f int, cfg fpaxos.Config) Protocol {
	name := fmt.Sprintf("fpaxos f=%d", f)
	if cfg.Batching {
		name += " batched"
	}
	return Protocol{
		Name: name,
		New: func(topo *topology.Topology) func(ids.ProcessID) proto.Replica {
			return func(id ids.ProcessID) proto.Replica {
				return fpaxos.New(id, topo, cfg)
			}
		},
		Cost: costFPaxos,
	}
}

// CaesarProto returns the Caesar baseline; star follows the paper's
// "Caesar*" idealization (execute on commit) used in Figure 7.
func CaesarProto(star bool) Protocol {
	name := "caesar"
	if star {
		name = "caesar*"
	}
	return Protocol{
		Name: name,
		New: func(topo *topology.Topology) func(ids.ProcessID) proto.Replica {
			return func(id ids.ProcessID) proto.Replica {
				return caesar.New(id, topo, caesar.Config{ExecuteOnCommit: star})
			}
		},
		Cost: costCaesar,
	}
}

// JanusProto returns the Janus* baseline for partial replication.
func JanusProto() Protocol {
	return Protocol{
		Name: "janus*",
		New: func(topo *topology.Topology) func(ids.ProcessID) proto.Replica {
			return func(id ids.ProcessID) proto.Replica {
				return epaxos.New(id, topo, epaxos.Config{
					Variant:          epaxos.VariantAtlas,
					NonGenuineCommit: true,
				})
			}
		},
		Cost: costDeps,
	}
}

// Options control experiment scale.
type Options struct {
	// Scale divides the paper's client counts (default 16: e.g. 512
	// clients/site becomes 32). Scale 1 reproduces the full counts.
	Scale int
	// Duration is the measured window of simulated time (default 2s).
	Duration time.Duration
	// Warmup precedes measurement (default 500ms).
	Warmup time.Duration
	Seed   int64
	Out    io.Writer
}

func (o Options) withDefaults() Options {
	if o.Scale == 0 {
		o.Scale = 16
	}
	if o.Duration == 0 {
		o.Duration = 2 * time.Second
	}
	if o.Warmup == 0 {
		o.Warmup = 500 * time.Millisecond
	}
	if o.Out == nil {
		o.Out = io.Discard
	}
	return o
}

func (o Options) clients(paper int) int {
	n := paper / o.Scale
	if n < 1 {
		n = 1
	}
	return n
}

// run executes one simulator configuration. When a cost model is in
// play, its capacity is scaled down by the same factor as the client
// counts so that saturation occurs at the same (scaled) sweep position
// as in the paper's full-size runs.
func run(p Protocol, topo *topology.Topology, wl workload.Workload, clients int,
	sites []ids.SiteID, cost *sim.CostModel, o Options) *sim.Result {
	if cost != nil && o.Scale > 1 {
		scaled := *cost
		k := time.Duration(o.Scale)
		scaled.PerMsg *= k
		scaled.PerByte *= k
		scaled.PerSend *= k
		scaled.PerExec *= k
		scaled.PerGraphNode *= k
		if scaled.NICBytesPerSec > 0 {
			scaled.NICBytesPerSec /= float64(o.Scale)
		}
		cost = &scaled
	}
	return sim.Run(sim.Config{
		Topo:           topo,
		NewReplica:     p.New(topo),
		Workload:       wl,
		ClientsPerSite: clients,
		ClientSites:    sites,
		Warmup:         o.Warmup,
		Duration:       o.Duration,
		Cost:           cost,
		Seed:           o.Seed + 1,
	})
}

// gossip returns the MPromises interval for throughput runs: scaled with
// the cost model so gossip consumes a constant fraction of the (scaled)
// CPU capacity, as a production deployment would tune it.
func gossip(o Options) time.Duration {
	k := o.Scale
	if k < 1 {
		k = 1
	}
	// Sub-linear scaling: promise messages are tiny, so gossip overhead
	// per interval grows with PerMsg*Scale; sqrt keeps it a small
	// fraction of capacity without inflating the stability lag linearly.
	d := 2 * float64(time.Millisecond) * sqrtf(float64(k))
	return time.Duration(d)
}

func sqrtf(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 24; i++ {
		z = (z + x/z) / 2
	}
	return z
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.0f", float64(d)/float64(time.Millisecond))
}
