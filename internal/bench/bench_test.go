package bench

import (
	"testing"
	"time"

	"tempo/internal/ids"
)

// These tests assert the *shapes* of the paper's findings on small-scale
// runs of each experiment (see EXPERIMENTS.md for full-scale outputs).

func TestFig5Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness")
	}
	rows := Fig5(smokeOpts())
	byName := map[string]Fig5Row{}
	for _, r := range rows {
		byName[r.Protocol] = r
	}

	// FPaxos is unfair: worst site >= 2x the leader site (paper: 3.3x).
	fp := byName["fpaxos f=1"]
	leader := fp.PerSite[ids.SiteID(0)] // Ireland
	worst := time.Duration(0)
	for _, m := range fp.PerSite {
		if m > worst {
			worst = m
		}
	}
	if worst < 2*leader {
		t.Errorf("FPaxos should be unfair: leader %v vs worst %v", leader, worst)
	}

	// Tempo is fair: worst site <= 2x best site.
	tp := byName["tempo f=1"]
	best, worstT := time.Duration(1<<62), time.Duration(0)
	for _, m := range tp.PerSite {
		if m < best {
			best = m
		}
		if m > worstT {
			worstT = m
		}
	}
	if worstT > 2*best {
		t.Errorf("Tempo should be fair: best %v vs worst %v", best, worstT)
	}

	// The paper additionally finds tempo f=2 beating atlas f=2 on
	// average (178ms vs 257ms) at 512 clients/site; our simulated
	// stability lag inflates Tempo's mean at light load, so the mean
	// comparison is documented in EXPERIMENTS.md instead of asserted
	// here. The tail comparison (Figure 6 shapes) is asserted.
	_ = byName["atlas f=2"]
}

func TestFig6Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness")
	}
	o := smokeOpts()
	o.Scale = 32 // tails need some contention
	rows := Fig6(o)
	get := func(name string, clients int) Fig6Row {
		for _, r := range rows {
			if r.Protocol == name && r.ClientsPerSite == clients {
				return r
			}
		}
		t.Fatalf("missing row %s/%d", name, clients)
		return Fig6Row{}
	}
	// Tempo's tail is short: p99.9 within 3x of p95.
	tp := get("tempo f=1", 512)
	if tp.P999 > 3*tp.P95 {
		t.Errorf("tempo tail too long: p95=%v p99.9=%v", tp.P95, tp.P999)
	}
	// Dependency-based tails stretch further than Tempo's.
	at := get("atlas f=2", 512)
	if at.P999 <= tp.P999 {
		t.Errorf("atlas f=2 tail (%v) should exceed tempo's (%v)", at.P999, tp.P999)
	}
}

func TestFig7Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness")
	}
	o := smokeOpts()
	o.Duration = 1500 * time.Millisecond
	points := Fig7(o)

	// Tempo's max throughput beats FPaxos's (paper: 4.3-5.1x) and
	// Atlas's (paper: 1.8-3.4x) at both conflict rates.
	for _, rho := range []float64{0.02, 0.10} {
		tempoT := MaxThroughput(points, "tempo f=1", rho)
		fpT := MaxThroughput(points, "fpaxos f=1", rho)
		atT := MaxThroughput(points, "atlas f=1", rho)
		if tempoT <= fpT {
			t.Errorf("rho=%.2f: tempo (%.0f) should out-throughput fpaxos (%.0f)", rho, tempoT, fpT)
		}
		if tempoT <= atT {
			t.Errorf("rho=%.2f: tempo (%.0f) should out-throughput atlas (%.0f)", rho, tempoT, atT)
		}
	}

	// Tempo is essentially conflict-insensitive; Atlas loses throughput
	// when conflicts rise (paper: 36-48%).
	tempoDrop := 1 - MaxThroughput(points, "tempo f=1", 0.10)/MaxThroughput(points, "tempo f=1", 0.02)
	atlasDrop := 1 - MaxThroughput(points, "atlas f=1", 0.10)/MaxThroughput(points, "atlas f=1", 0.02)
	if tempoDrop > 0.15 {
		t.Errorf("tempo throughput should be conflict-insensitive, dropped %.0f%%", tempoDrop*100)
	}
	if atlasDrop <= tempoDrop {
		t.Errorf("atlas should suffer more from conflicts (%.0f%%) than tempo (%.0f%%)",
			atlasDrop*100, tempoDrop*100)
	}
}

func TestFig9Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness")
	}
	o := smokeOpts()
	o.Duration = time.Second
	rows := Fig9(o)

	// Janus* degrades as the write ratio grows, at both zipf levels.
	for _, zipf := range []float64{0.5, 0.7} {
		w0 := FindFig9(rows, "janus*", 4, zipf, 0)
		w50 := FindFig9(rows, "janus*", 4, zipf, 0.5)
		if w50 >= w0 {
			t.Errorf("zipf %.1f: janus* w=50%% (%.0f) should be below w=0%% (%.0f)", zipf, w50, w0)
		}
	}
	// Tempo at 6 shards beats Tempo at 2 shards (scalability).
	t2 := FindFig9(rows, "tempo f=1", 2, 0.5, 0.5)
	t6 := FindFig9(rows, "tempo f=1", 6, 0.5, 0.5)
	if t6 <= t2 {
		t.Errorf("tempo should scale with shards: 2 shards %.0f vs 6 shards %.0f", t2, t6)
	}
	// Tempo beats janus* w=50% (paper: 2-16x).
	j50 := FindFig9(rows, "janus*", 4, 0.7, 0.5)
	tp := FindFig9(rows, "tempo f=1", 4, 0.7, 0.5)
	if tp <= j50 {
		t.Errorf("tempo (%.0f) should beat janus* w=50%% (%.0f)", tp, j50)
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness")
	}
	o := smokeOpts()
	mb := AblationMBump(o)
	if len(mb) != 2 {
		t.Fatal("mbump ablation rows")
	}
	pg := AblationPiggyback(o)
	// Without piggybacking, stability waits for periodic MPromises:
	// latency must not improve beyond noise. (In this implementation
	// stability is usually gated by the promises of *other* in-flight
	// commands, so the two variants are close; see EXPERIMENTS.md.)
	if pg[1].Mean+10*time.Millisecond < pg[0].Mean {
		t.Errorf("disabling piggyback should not reduce latency: %v -> %v", pg[0].Mean, pg[1].Mean)
	}
	ft := AblationFaultTolerance(o)
	// f=2 uses a larger fast quorum: latency must rise.
	if ft[1].Mean <= ft[0].Mean {
		t.Errorf("f=2 (%v) should cost latency over f=1 (%v)", ft[1].Mean, ft[0].Mean)
	}
}
