package bench

import (
	"fmt"
	"time"

	"tempo/internal/metrics"
	"tempo/internal/tempo"
	"tempo/internal/topology"
	"tempo/internal/workload"
)

// Fig6Row is one protocol's tail-latency profile (Figure 6): latency
// percentiles under 256 and 512 clients per site, 2% conflicts.
type Fig6Row struct {
	Protocol       string
	ClientsPerSite int
	P95, P99       time.Duration
	P999, P9999    time.Duration
}

// Fig6 regenerates Figure 6: latency distribution tails from the 95th to
// the 99.99th percentile.
//
// Paper expectations: Atlas/EPaxos/Caesar tails reach seconds and degrade
// sharply from 256 to 512 clients; Tempo's tail stays within ~1.5x of its
// p95 (an order of magnitude below the dependency-based protocols).
func Fig6(o Options) []Fig6Row {
	o = o.withDefaults()
	topo1 := topology.EC2(1)
	topo2 := topology.EC2(2)

	protos := []struct {
		p    Protocol
		topo *topology.Topology
	}{
		{TempoProto(1, tempo.Config{}), topo1},
		{TempoProto(2, tempo.Config{}), topo2},
		{AtlasProto(1), topo1},
		{AtlasProto(2), topo2},
		{EPaxosProto(), topo1},
		{CaesarProto(false), topo2},
	}

	var rows []Fig6Row
	tbl := metrics.NewTable("protocol", "clients", "p95", "p99", "p99.9", "p99.99 (ms)")
	for _, load := range []int{256, 512} {
		clients := o.clients(load)
		for _, pc := range protos {
			wl := workload.NewMicrobench(0.02, 100, newRng(o.Seed))
			res := run(pc.p, pc.topo, wl, clients, nil, nil, o)
			row := Fig6Row{
				Protocol:       pc.p.Name,
				ClientsPerSite: load,
				P95:            res.All.Percentile(95),
				P99:            res.All.Percentile(99),
				P999:           res.All.Percentile(99.9),
				P9999:          res.All.Percentile(99.99),
			}
			rows = append(rows, row)
			tbl.Row(pc.p.Name, fmt.Sprint(load), ms(row.P95), ms(row.P99), ms(row.P999), ms(row.P9999))
		}
	}
	fmt.Fprintf(o.Out, "Figure 6 — latency percentiles (ms), 2%% conflicts (client counts scaled 1/%d)\n%s\n", o.Scale, tbl)
	return rows
}
