package bench

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"tempo/client"
	"tempo/internal/cluster"
	"tempo/internal/command"
	"tempo/internal/ids"
	"tempo/internal/tempo"
	"tempo/internal/topology"
)

// The fault-injection experiment (`bench -exp fault`): a real 3-replica
// cluster of OS processes with durable data directories, driven by the
// PR 3 loaded-cluster workload shape, with one replica SIGKILL'd
// mid-load and restarted on its data directory. Unlike every other
// experiment it measures the failure path: how deep throughput dips
// when a replica dies, how quickly sessions homed on it take their
// traffic elsewhere, and how long the restarted process takes to
// replay+catch-up before serving again. Results go to BENCH_fault.json.
//
// The replicas are real processes (the bench re-execs itself in a
// node-runner mode, see RunFaultNode) because SIGKILL is the point: no
// deferred cleanups, no flushed WAL tails, kernel-closed sockets.

// FaultOptions configures the fault experiment.
type FaultOptions struct {
	// Phase is the length of each measured phase (pre-crash steady
	// state, outage, post-restart steady state). Default 3s.
	Phase time.Duration
	// Sessions is the number of concurrent client sessions, spread
	// round-robin over the replicas via per-session home routing
	// (default 9 = 3 per replica).
	Sessions int
	// Inflight is the pipelined requests per session (default 64).
	Inflight int
}

func (o FaultOptions) withDefaults() FaultOptions {
	if o.Phase == 0 {
		o.Phase = 3 * time.Second
	}
	if o.Sessions == 0 {
		o.Sessions = 9
	}
	if o.Inflight == 0 {
		o.Inflight = 64
	}
	return o
}

// FaultResult is the schema of BENCH_fault.json.
type FaultResult struct {
	Generated string  `json:"generated"`
	Go        string  `json:"go"`
	PhaseMS   float64 `json:"phase_ms"`
	Sessions  int     `json:"sessions"`
	Inflight  int     `json:"inflight"`

	// SteadyOpsPerSec is the pre-crash throughput.
	SteadyOpsPerSec float64 `json:"steady_ops_per_sec"`
	// DipOpsPerSec is the worst 100ms bucket in the 1.5s after the kill.
	DipOpsPerSec float64 `json:"dip_ops_per_sec"`
	// TakeoverMS is how long the slowest victim-homed session took to
	// complete its first request after the kill (fail-over latency).
	TakeoverMS float64 `json:"takeover_ms"`
	// CatchupMS is restart-to-serving: process start through WAL
	// replay, peer state sync and watermark reservation, until the node
	// accepts work (the node-runner reports readiness only then).
	CatchupMS float64 `json:"catchup_ms"`
	// PostOpsPerSec is the steady throughput after the restarted
	// replica rejoined (measured after a short settle).
	PostOpsPerSec float64 `json:"post_ops_per_sec"`
	// PostOverSteady = PostOpsPerSec/SteadyOpsPerSec; the acceptance
	// bar is >= 0.9.
	PostOverSteady float64 `json:"post_over_steady"`

	// TimelineOpsPerSec is completed ops/s in 100ms buckets across the
	// whole run (kill and restart land mid-array; see the *Index
	// fields).
	TimelineOpsPerSec []float64 `json:"timeline_ops_per_sec"`
	KillIndex         int       `json:"kill_index"`
	RestartIndex      int       `json:"restart_index"`
}

// RunFaultNode is the node-runner mode of cmd/bench: one durable
// cluster replica in this process, serving until stdin closes or the
// process is killed. It prints NODE_READY once recovery is complete and
// the node serves.
func RunFaultNode(id int, peersCSV, dir string, fsync time.Duration) error {
	peers := strings.Split(peersCSV, ",")
	names := make([]string, len(peers))
	rtt := make([][]time.Duration, len(peers))
	for i := range names {
		names[i] = fmt.Sprintf("s%d", i)
		rtt[i] = make([]time.Duration, len(peers))
	}
	topo, err := topology.New(topology.Config{SiteNames: names, RTT: rtt, NumShards: 1, F: 1})
	if err != nil {
		return err
	}
	addrs := make(map[ids.ProcessID]string, len(peers))
	for i, a := range peers {
		addrs[ids.ProcessID(i+1)] = a
	}
	rep := tempo.New(ids.ProcessID(id), topo, tempo.Config{
		PromiseInterval: time.Millisecond,
	})
	node := cluster.NewNode(ids.ProcessID(id), rep, addrs)
	if err := node.SetDurable(cluster.DurableConfig{Dir: dir, SyncInterval: fsync}); err != nil {
		return err
	}
	if err := node.Start(); err != nil {
		return err
	}
	fmt.Println("NODE_READY")
	var buf [1]byte
	os.Stdin.Read(buf[:])
	node.Close()
	return nil
}

// faultProc is one spawned node-runner.
type faultProc struct {
	cmd   *exec.Cmd
	stdin io.WriteCloser
}

func (p *faultProc) kill() {
	if p.cmd.Process != nil {
		p.cmd.Process.Signal(syscall.SIGKILL)
	}
	p.cmd.Wait()
}

// spawnFaultNode re-execs this binary in node-runner mode and waits for
// NODE_READY (recovery included). The ready wait IS the catch-up
// measurement on restart.
func spawnFaultNode(id int, peers []string, dir string) (*faultProc, error) {
	return spawnNode(id, []string{
		"-fault-node",
		"-node-id", fmt.Sprint(id),
		"-node-peers", strings.Join(peers, ","),
		"-node-dir", dir,
	})
}

// spawnNode re-execs this binary with the given node-runner flags and
// waits for the child's NODE_READY line (recovery included).
func spawnNode(id int, args []string) (*faultProc, error) {
	cmd := exec.Command(os.Args[0], args...)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	p := &faultProc{cmd: cmd, stdin: stdin}
	br := bufio.NewReader(stdout)
	readyCh := make(chan error, 1)
	go func() {
		for {
			line, err := br.ReadString('\n')
			if strings.Contains(line, "NODE_READY") {
				readyCh <- nil
				io.Copy(io.Discard, br) // keep the pipe drained
				return
			}
			if err != nil {
				readyCh <- fmt.Errorf("node %d exited before ready", id)
				return
			}
		}
	}()
	select {
	case err := <-readyCh:
		if err != nil {
			p.kill()
			return nil, err
		}
	case <-time.After(60 * time.Second):
		p.kill()
		return nil, fmt.Errorf("node %d not ready in time", id)
	}
	return p, nil
}

// RunFault runs the kill-restart experiment and returns the measured
// result. Progress lines go to out.
func RunFault(out io.Writer, opts FaultOptions) (FaultResult, error) {
	opts = opts.withDefaults()
	res := FaultResult{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Go:        runtime.Version(),
		PhaseMS:   float64(opts.Phase.Milliseconds()),
		Sessions:  opts.Sessions,
		Inflight:  opts.Inflight,
	}

	// Addresses and data directories for a 3-replica cluster.
	const r = 3
	peers := make([]string, r)
	for i := range peers {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return res, err
		}
		peers[i] = ln.Addr().String()
		ln.Close()
	}
	base, err := os.MkdirTemp("", "tempo-fault-")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(base)
	dirs := make([]string, r)
	procs := make([]*faultProc, r)
	for i := 0; i < r; i++ {
		dirs[i] = filepath.Join(base, fmt.Sprintf("node-%d", i+1))
		p, err := spawnFaultNode(i+1, peers, dirs[i])
		if err != nil {
			return res, err
		}
		procs[i] = p
	}
	defer func() {
		for _, p := range procs {
			if p != nil {
				p.kill()
			}
		}
	}()
	fmt.Fprintf(out, "fault: 3 durable replicas up (%s)\n", strings.Join(peers, " "))

	addrMap := make(map[ids.ProcessID]string, r)
	for i, a := range peers {
		addrMap[ids.ProcessID(i+1)] = a
	}
	const victim = ids.ProcessID(3) // fast quorums prefer low ids; the victim's loss never blocks them

	// Load: closed-loop sessions with per-replica home routing; every
	// completion (or failure) is timestamped relative to start.
	type sessStats struct {
		mu    sync.Mutex
		done  []time.Duration // completion offsets
		fails int
	}
	start := time.Now()
	stats := make([]sessStats, opts.Sessions)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for si := 0; si < opts.Sessions; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			home := ids.ProcessID(si%r + 1)
			sess, err := client.New(client.Config{
				Addrs:         addrMap,
				Prefer:        home,
				RedialBackoff: 250 * time.Millisecond,
				DialTimeout:   500 * time.Millisecond,
			})
			if err != nil {
				return
			}
			defer sess.Close()
			st := &stats[si]
			op := command.Op{Kind: command.Put, Key: command.Key(fmt.Sprintf("fault-%d", si)), Value: []byte("x")}
			ctx := context.Background()
			futs := make([]*client.Future, 0, opts.Inflight)
			for {
				select {
				case <-stop:
					return
				default:
				}
				futs = futs[:0]
				for i := 0; i < opts.Inflight; i++ {
					futs = append(futs, sess.Do(ctx, op))
				}
				for _, f := range futs {
					wctx, cancel := context.WithTimeout(ctx, 2*time.Second)
					_, err := f.Wait(wctx)
					cancel()
					st.mu.Lock()
					if err != nil {
						st.fails++
					} else {
						st.done = append(st.done, time.Since(start))
					}
					st.mu.Unlock()
				}
			}
		}(si)
	}

	// Phase 1: warmup + steady state.
	time.Sleep(opts.Phase / 2) // warmup
	steadyFrom := time.Since(start)
	time.Sleep(opts.Phase)
	killAt := time.Since(start)

	// Phase 2: SIGKILL the victim, serve degraded.
	procs[victim-1].kill()
	procs[victim-1] = nil
	fmt.Fprintf(out, "fault: killed replica %d at t=%v\n", victim, killAt.Round(time.Millisecond))
	time.Sleep(opts.Phase)

	// Phase 3: restart on the same directory; the ready wait measures
	// replay + peer catch-up + reservation.
	restartAt := time.Since(start)
	p, err := spawnFaultNode(int(victim), peers, dirs[victim-1])
	if err != nil {
		close(stop)
		wg.Wait()
		return res, fmt.Errorf("restart: %w", err)
	}
	procs[victim-1] = p
	readyAt := time.Since(start)
	res.CatchupMS = float64((readyAt - restartAt).Microseconds()) / 1e3
	fmt.Fprintf(out, "fault: replica %d restarted, ready after %.0fms\n", victim, res.CatchupMS)

	// Phase 4: settle, then post-restart steady state.
	time.Sleep(opts.Phase / 2)
	postFrom := time.Since(start)
	time.Sleep(opts.Phase)
	end := time.Since(start)
	close(stop)
	wg.Wait()

	// Collate the timelines.
	var all []time.Duration
	takeover := time.Duration(0)
	for si := range stats {
		st := &stats[si]
		st.mu.Lock()
		all = append(all, st.done...)
		if ids.ProcessID(si%r+1) == victim {
			first := time.Duration(-1)
			for _, d := range st.done {
				if d > killAt {
					first = d
					break
				}
			}
			if first >= 0 && first-killAt > takeover {
				takeover = first - killAt
			}
		}
		st.mu.Unlock()
	}
	res.TakeoverMS = float64(takeover.Microseconds()) / 1e3

	count := func(from, to time.Duration) int {
		n := 0
		for _, d := range all {
			if d >= from && d < to {
				n++
			}
		}
		return n
	}
	res.SteadyOpsPerSec = float64(count(steadyFrom, killAt)) / (killAt - steadyFrom).Seconds()
	res.PostOpsPerSec = float64(count(postFrom, end)) / (end - postFrom).Seconds()
	if res.SteadyOpsPerSec > 0 {
		res.PostOverSteady = res.PostOpsPerSec / res.SteadyOpsPerSec
	}

	const bucket = 100 * time.Millisecond
	nb := int(end/bucket) + 1
	buckets := make([]float64, nb)
	for _, d := range all {
		buckets[int(d/bucket)] += 1 / bucket.Seconds()
	}
	res.TimelineOpsPerSec = buckets
	res.KillIndex = int(killAt / bucket)
	res.RestartIndex = int(readyAt / bucket)
	dip := -1.0
	for i := res.KillIndex; i < nb && i <= res.KillIndex+15; i++ {
		if dip < 0 || buckets[i] < dip {
			dip = buckets[i]
		}
	}
	res.DipOpsPerSec = dip

	fmt.Fprintf(out, "fault: steady %.0f ops/s | dip %.0f ops/s | takeover %.0fms | catch-up %.0fms | post %.0f ops/s (%.2fx steady)\n",
		res.SteadyOpsPerSec, res.DipOpsPerSec, res.TakeoverMS, res.CatchupMS, res.PostOpsPerSec, res.PostOverSteady)
	return res, nil
}

// WriteFaultJSON writes the result to path in the BENCH_fault.json
// schema.
func WriteFaultJSON(path string, res FaultResult) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
