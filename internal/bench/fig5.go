package bench

import (
	"fmt"
	"time"

	"tempo/internal/fpaxos"
	"tempo/internal/ids"
	"tempo/internal/metrics"
	"tempo/internal/tempo"
	"tempo/internal/topology"
	"tempo/internal/workload"
)

// Fig5Row is one protocol's per-site mean latency (Figure 5 of the
// paper): 5 EC2 sites, 512 clients/site, 2% conflicts.
type Fig5Row struct {
	Protocol string
	PerSite  map[ids.SiteID]time.Duration
	Average  time.Duration
}

// Fig5 regenerates Figure 5: per-site latency fairness of Tempo, Atlas,
// FPaxos (f ∈ {1,2}) and Caesar.
//
// Paper expectations: FPaxos is up to 3.3x worse at non-leader sites
// than at the leader; the leaderless protocols are far more uniform;
// Tempo f=2 beats Atlas f=2 on average.
func Fig5(o Options) []Fig5Row {
	o = o.withDefaults()
	topo := topology.EC2(1)
	topo2 := topology.EC2(2)
	clients := o.clients(512)

	protos := []struct {
		p    Protocol
		topo *topology.Topology
	}{
		{TempoProto(1, tempo.Config{}), topo},
		{TempoProto(2, tempo.Config{}), topo2},
		{AtlasProto(1), topo},
		{AtlasProto(2), topo2},
		{FPaxosProto(1, fpaxos.Config{}), topo},
		{FPaxosProto(2, fpaxos.Config{}), topo2},
		{CaesarProto(false), topo2},
	}

	var rows []Fig5Row
	tbl := metrics.NewTable("protocol", "singapore", "canada", "ireland", "s.paulo", "n.calif", "avg (ms)")
	for _, pc := range protos {
		wl := workload.NewMicrobench(0.02, 100, newRng(o.Seed))
		res := run(pc.p, pc.topo, wl, clients, nil, nil, o)
		row := Fig5Row{Protocol: pc.p.Name, PerSite: map[ids.SiteID]time.Duration{}}
		var sum time.Duration
		for s := ids.SiteID(0); s < 5; s++ {
			m := res.SiteMean(s)
			row.PerSite[s] = m
			sum += m
		}
		row.Average = sum / 5
		rows = append(rows, row)
		// Figure 5's site order: Singapore, Canada, Ireland, S. Paulo,
		// N. California.
		tbl.Row(pc.p.Name,
			ms(row.PerSite[2]), ms(row.PerSite[3]), ms(row.PerSite[0]),
			ms(row.PerSite[4]), ms(row.PerSite[1]), ms(row.Average))
	}
	fmt.Fprintf(o.Out, "Figure 5 — per-site mean latency (ms), %d clients/site, 2%% conflicts\n%s\n", clients, tbl)
	return rows
}
