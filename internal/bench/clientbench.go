package bench

import (
	"context"
	"testing"

	"tempo/client"
	"tempo/internal/cluster"
	"tempo/internal/command"
)

// Closed-loop client round-trip benchmarks over a real loopback
// cluster: the legacy gob client (one request in flight per connection)
// against the pipelined binary session with a 64-deep window. Both
// measure the same thing — completed Puts against a 3-replica Tempo
// cluster — so the ns/op ratio is the throughput multiple the
// session-based API buys on the client↔replica path.

// ClientBenchWindow is the pipeline depth of the pipelined round-trip
// benchmark (the acceptance bar of the client API redesign is ≥2x the
// legacy client's throughput at ≥64 in flight).
const ClientBenchWindow = 64

// loopbackCluster boots a 3-replica Tempo cluster on loopback with the
// default server batching and returns the client addresses in
// process-id order plus a shutdown function. (The cluster experiment's
// loopbackClusterBatch in clusterbench.go is the one implementation, so
// the micro round-trip and loaded-cluster numbers always measure the
// same cluster shape.)
func loopbackCluster() ([]string, func()) {
	return loopbackClusterBatch(cluster.DefaultBatchOps, cluster.DefaultBatchWindow)
}

func putOp(key string, v []byte) command.Op {
	return command.Op{Kind: command.Put, Key: command.Key(key), Value: v}
}

// ClientLegacyRoundTripLoop measures the legacy gob client: one
// blocking Put per iteration, strictly one request in flight.
func ClientLegacyRoundTripLoop(b *testing.B) {
	addrs, cleanup := loopbackCluster()
	defer cleanup()
	c, err := cluster.Dial(addrs[0])
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	// One warm-up op so the cluster's promise gossip is flowing.
	if err := c.Put("warm", []byte("x")); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Put("bench", []byte("x")); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
}

// ClientPipelinedRoundTripLoop measures the session API with
// ClientBenchWindow requests in flight on one connection.
func ClientPipelinedRoundTripLoop(b *testing.B) {
	addrs, cleanup := loopbackCluster()
	defer cleanup()
	sess, err := client.Dial(addrs...)
	if err != nil {
		b.Fatal(err)
	}
	defer sess.Close()
	ctx := context.Background()
	if err := sess.Put(ctx, "warm", []byte("x")); err != nil {
		b.Fatal(err)
	}
	op := putOp("bench", []byte("x"))
	b.ResetTimer()
	window := make([]*client.Future, 0, ClientBenchWindow)
	for i := 0; i < b.N; i++ {
		if len(window) == ClientBenchWindow {
			if _, err := window[0].Wait(ctx); err != nil {
				b.Fatal(err)
			}
			window = append(window[:0], window[1:]...)
		}
		window = append(window, sess.Do(ctx, op))
	}
	for _, f := range window {
		if _, err := f.Wait(ctx); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
	b.ReportMetric(ClientBenchWindow, "inflight")
}
