package bench

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"tempo/client"
	"tempo/internal/command"
	"tempo/internal/ids"
	"tempo/internal/membership"
	"tempo/internal/psmr"
	"tempo/internal/tempo"
	"tempo/internal/topology"
	"tempo/internal/vulture"
)

// The reconfiguration experiment (`bench -exp reconfig`): a rolling
// replacement of every site of a 3-site durable psmr deployment, under
// client load and with the consistency vulture attached. Site 0 is
// replaced gracefully (drain via Leave, successor joins at a fresh
// address); sites 1 and 2 are replaced the hard way (SIGKILL, fenced
// with Remove, successor joins with frontier-derived floors). By the
// end every process, address and data directory differs from the
// start, yet the deployment never stopped serving: the run FAILS on
// any consistency violation, or when throughput outside the takeover
// windows drops below 0.75x the pre-reconfig steady state. Results go
// to BENCH_reconfig.json.
//
// The replicas are real OS processes (the bench re-execs itself, see
// RunReconfigNode) because both halves matter: SIGKILL must be a real
// process death, and the successor must bootstrap over the wire into
// a cold directory.

// ReconfigOptions configures the reconfig experiment.
type ReconfigOptions struct {
	// Phase is the steady-state measurement length (and paces the
	// settle gaps between replacements). Default 3s.
	Phase time.Duration
	// Sessions is the number of concurrent load sessions, spread
	// round-robin over the sites via per-session home routing
	// (default 6 = 2 per site).
	Sessions int
	// Inflight is the pipelined requests per session (default 32).
	Inflight int
	// AvailGate fails the run when AvailOverSteady lands below it
	// (default 0.75). Negative disables the gate — the CI smoke leg
	// runs phases too short to amortize the post-takeover settle, but
	// consistency violations stay fatal regardless.
	AvailGate float64
}

func (o ReconfigOptions) withDefaults() ReconfigOptions {
	if o.Phase == 0 {
		o.Phase = 3 * time.Second
	}
	if o.Sessions == 0 {
		o.Sessions = 6
	}
	if o.Inflight == 0 {
		o.Inflight = 32
	}
	if o.AvailGate == 0 {
		o.AvailGate = 0.75
	}
	return o
}

// ReconfigStage is one site replacement on the timeline.
type ReconfigStage struct {
	// Name tags the stage ("drain-replace-0", "crash-replace-1", ...).
	Name string `json:"name"`
	// Kind is "graceful" (drain) or "crash" (SIGKILL + Remove).
	Kind string `json:"kind"`
	// Site is the replaced site id.
	Site int `json:"site"`
	// NewAddr is the successor's address.
	NewAddr string `json:"new_addr"`
	// StartSec/ReadySec bound the takeover window (offsets from run
	// start): first disruptive action to successor serving.
	StartSec float64 `json:"start_sec"`
	ReadySec float64 `json:"ready_sec"`
	// TakeoverMS = ReadySec-StartSec: drain/fence plus join (frontier
	// queries, bootstrap, activation).
	TakeoverMS float64 `json:"takeover_ms"`
}

// ReconfigResult is the schema of BENCH_reconfig.json.
type ReconfigResult struct {
	Generated string  `json:"generated"`
	Go        string  `json:"go"`
	PhaseMS   float64 `json:"phase_ms"`
	Sessions  int     `json:"sessions"`
	Inflight  int     `json:"inflight"`

	// SteadyOpsPerSec is the pre-reconfig throughput.
	SteadyOpsPerSec float64 `json:"steady_ops_per_sec"`
	// Stages lists the three replacements in order.
	Stages []ReconfigStage `json:"stages"`
	// FinalEpoch is the configuration epoch after the last activation
	// (the static wiring is epoch 1).
	FinalEpoch uint64 `json:"final_epoch"`
	// AvailOpsPerSec is the throughput over the whole reconfig span
	// with the takeover windows excluded.
	AvailOpsPerSec float64 `json:"avail_ops_per_sec"`
	// AvailOverSteady = AvailOpsPerSec/SteadyOpsPerSec; the acceptance
	// bar is >= 0.75.
	AvailOverSteady float64 `json:"avail_over_steady"`
	// PostOpsPerSec is the steady throughput on the fully replaced
	// cluster.
	PostOpsPerSec float64 `json:"post_ops_per_sec"`

	// TimelineOpsPerSec is completed ops/s in 100ms buckets across the
	// run; StageIndexes marks each stage's start bucket.
	TimelineOpsPerSec []float64 `json:"timeline_ops_per_sec"`
	StageIndexes      []int     `json:"stage_indexes"`

	// Vulture is the prober's report: violations must be zero.
	Vulture vulture.Report `json:"vulture"`
}

// RunReconfigNode is the reconfig node-runner mode of cmd/bench: one
// durable psmr site in this process. With join empty it starts as an
// initial member of the static 3-site wiring (peersCSV); with join set
// it ignores peersCSV and joins the running deployment through the
// seed replica, advertising addr (psmr.Join: fetch config, announce
// Joining, frontier floors, bootstrap, activate). It prints NODE_READY
// once serving, then waits on stdin: the line "leave" drains the site
// out gracefully (psmr.Leave) and exits; EOF or a kill just stops it.
func RunReconfigNode(site int, peersCSV, addr, join, dir string, fsync time.Duration) error {
	cfg := psmr.Config{
		Site: ids.SiteID(site),
		// A crash-replace stalls execution until recovery (Algorithm 5)
		// decides the killed coordinator's in-flight commands — their
		// attached promises at the survivors hold the stability frontier
		// until then. On a loopback deployment the default 500ms timeout
		// dominates the takeover window, so detect faster.
		Tempo: tempo.Config{
			PromiseInterval: time.Millisecond,
			RecoveryTimeout: 150 * time.Millisecond,
		},
		DataDir:       dir,
		FsyncInterval: fsync,
	}
	var g *psmr.Group
	var err error
	if join != "" {
		cfg.SiteAddrs = map[ids.SiteID]string{ids.SiteID(site): addr}
		g, err = psmr.Join(cfg, join, 10*time.Second)
	} else {
		peers := strings.Split(peersCSV, ",")
		names := make([]string, len(peers))
		rtt := make([][]time.Duration, len(peers))
		sa := make(map[ids.SiteID]string, len(peers))
		for i, a := range peers {
			names[i] = fmt.Sprintf("s%d", i)
			rtt[i] = make([]time.Duration, len(peers))
			sa[ids.SiteID(i)] = a
		}
		cfg.Topo, err = topology.New(topology.Config{SiteNames: names, RTT: rtt, NumShards: 1, F: 1})
		if err != nil {
			return err
		}
		cfg.SiteAddrs = sa
		g, err = psmr.Start(cfg)
	}
	if err != nil {
		return err
	}
	defer g.Close()
	fmt.Println("NODE_READY")
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "leave" {
			if err := g.Leave(10 * time.Second); err != nil {
				fmt.Fprintln(os.Stderr, "reconfig-node: leave:", err)
			}
			return nil
		}
	}
	return nil
}

// spawnReconfigMember starts an initial member of the static wiring.
func spawnReconfigMember(site int, peers []string, dir string) (*faultProc, error) {
	return spawnNode(site, []string{
		"-reconfig-node",
		"-node-site", fmt.Sprint(site),
		"-node-peers", strings.Join(peers, ","),
		"-node-dir", dir,
	})
}

// spawnReconfigJoiner starts a successor that joins through seed,
// advertising addr. The NODE_READY wait covers the whole join flow —
// fencing push, frontier queries, state bootstrap, activation.
func spawnReconfigJoiner(site int, addr, seed, dir string) (*faultProc, error) {
	return spawnNode(site, []string{
		"-reconfig-node",
		"-node-site", fmt.Sprint(site),
		"-node-addr", addr,
		"-node-join", seed,
		"-node-dir", dir,
	})
}

// RunReconfig runs the rolling-replacement experiment. The returned
// error is non-nil when the vulture saw a violation or the
// availability gate failed; the result is meaningful either way.
func RunReconfig(out io.Writer, opts ReconfigOptions) (ReconfigResult, error) {
	opts = opts.withDefaults()
	res := ReconfigResult{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Go:        runtime.Version(),
		PhaseMS:   float64(opts.Phase.Milliseconds()),
		Sessions:  opts.Sessions,
		Inflight:  opts.Inflight,
	}

	const r = 3
	freeAddr := func() (string, error) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", err
		}
		a := ln.Addr().String()
		ln.Close()
		return a, nil
	}
	cur := make([]string, r) // current address per site
	for i := range cur {
		a, err := freeAddr()
		if err != nil {
			return res, err
		}
		cur[i] = a
	}
	base, err := os.MkdirTemp("", "tempo-reconfig-")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(base)
	procs := make([]*faultProc, r)
	for i := 0; i < r; i++ {
		p, err := spawnReconfigMember(i, cur, filepath.Join(base, fmt.Sprintf("site-%d-inc1", i)))
		if err != nil {
			return res, err
		}
		procs[i] = p
	}
	defer func() {
		for _, p := range procs {
			if p != nil {
				p.kill()
			}
		}
	}()
	fmt.Fprintf(out, "reconfig: 3 durable sites up (%s)\n", strings.Join(cur, " "))

	addrMap := make(map[ids.ProcessID]string, r)
	for i, a := range cur {
		addrMap[ids.ProcessID(i+1)] = a
	}

	// The vulture probes with membership-aware sessions: draining
	// replies and lost connections trigger its config refreshes.
	v, err := vulture.New(vulture.Config{
		Client: client.Config{
			Addrs:          addrMap,
			Refresh:        true,
			RequestTimeout: 3 * time.Second,
			DialTimeout:    500 * time.Millisecond,
			RedialBackoff:  250 * time.Millisecond,
		},
		Writers:  2,
		Readers:  2,
		Keys:     32,
		Interval: 2 * time.Millisecond,
	})
	if err != nil {
		return res, err
	}
	vctx, vcancel := context.WithCancel(context.Background())
	defer vcancel()
	vDone := make(chan error, 1)
	go func() { vDone <- v.Run(vctx) }()

	// Load sessions: closed-loop, per-site home routing, refresh on.
	type sessStats struct {
		mu   sync.Mutex
		done []time.Duration
	}
	start := time.Now()
	since := func() time.Duration { return time.Since(start) }
	stats := make([]sessStats, opts.Sessions)
	sessions := make([]*client.Session, opts.Sessions)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for si := 0; si < opts.Sessions; si++ {
		sess, err := client.New(client.Config{
			Addrs:         addrMap,
			Prefer:        ids.ProcessID(si%r + 1),
			Refresh:       true,
			RedialBackoff: 250 * time.Millisecond,
			DialTimeout:   500 * time.Millisecond,
		})
		if err != nil {
			close(stop)
			vcancel()
			<-vDone
			return res, err
		}
		sessions[si] = sess
		defer sess.Close()
		wg.Add(1)
		go func(si int, sess *client.Session) {
			defer wg.Done()
			st := &stats[si]
			op := command.Op{Kind: command.Put, Key: command.Key(fmt.Sprintf("reconfig-%d", si)), Value: []byte("x")}
			ctx := context.Background()
			futs := make([]*client.Future, 0, opts.Inflight)
			for {
				select {
				case <-stop:
					return
				default:
				}
				futs = futs[:0]
				for i := 0; i < opts.Inflight; i++ {
					futs = append(futs, sess.Do(ctx, op))
				}
				for _, f := range futs {
					wctx, cancel := context.WithTimeout(ctx, 2*time.Second)
					_, err := f.Wait(wctx)
					cancel()
					if err == nil {
						st.mu.Lock()
						st.done = append(st.done, since())
						st.mu.Unlock()
					}
				}
			}
		}(si, sess)
	}

	// Steady state.
	time.Sleep(opts.Phase / 2) // warmup
	steadyFrom := since()
	time.Sleep(opts.Phase)
	steadyTo := since()

	// liveSeed returns a replica address other than the given site's —
	// the fetch/push contact point for that site's replacement.
	liveSeed := func(site int) string { return cur[(site+1)%r] }

	replace := func(site int, graceful bool) (ReconfigStage, error) {
		st := ReconfigStage{Site: site}
		if graceful {
			st.Name, st.Kind = fmt.Sprintf("drain-replace-%d", site), "graceful"
		} else {
			st.Name, st.Kind = fmt.Sprintf("crash-replace-%d", site), "crash"
		}
		from := since()
		st.StartSec = from.Seconds()
		if graceful {
			v.Event(fmt.Sprintf("drain-%d", site))
			fmt.Fprintf(out, "reconfig: draining site %d\n", site)
			chaosCmd(procs[site], "leave") // Leave: drain, then exit
			procs[site].cmd.Wait()
			procs[site] = nil
		} else {
			v.Event(fmt.Sprintf("kill-%d", site))
			fmt.Fprintf(out, "reconfig: SIGKILL site %d\n", site)
			procs[site].kill()
			procs[site] = nil
			if _, err := psmr.Remove(liveSeed(site), ids.SiteID(site), 5*time.Second); err != nil {
				return st, fmt.Errorf("remove site %d: %w", site, err)
			}
			v.Event(fmt.Sprintf("remove-%d", site))
		}
		newAddr, err := freeAddr()
		if err != nil {
			return st, err
		}
		v.Event(fmt.Sprintf("join-%d", site))
		p, err := spawnReconfigJoiner(site, newAddr, liveSeed(site),
			filepath.Join(base, fmt.Sprintf("site-%d-inc2", site)))
		if err != nil {
			return st, fmt.Errorf("join site %d: %w", site, err)
		}
		procs[site] = p
		cur[site] = newAddr
		ready := since()
		st.NewAddr = newAddr
		st.ReadySec = ready.Seconds()
		st.TakeoverMS = float64((ready - from).Microseconds()) / 1e3
		fmt.Fprintf(out, "reconfig: site %d replaced at %s (%s, takeover %.0fms)\n",
			site, newAddr, st.Kind, st.TakeoverMS)
		// Nudge the load sessions onto the new epoch, as an operator
		// notification would; the vulture's sessions are left to their
		// own triggers (draining replies, lost connections).
		for _, sess := range sessions {
			sess.RefreshConfig()
		}
		return st, nil
	}

	finish := func() {
		close(stop)
		wg.Wait()
		vcancel()
		<-vDone
	}

	for site := 0; site < r; site++ {
		st, err := replace(site, site == 0)
		if err != nil {
			finish()
			return res, err
		}
		res.Stages = append(res.Stages, st)
		time.Sleep(opts.Phase / 2) // settle, measured as available time
	}

	// Post-reconfig steady state on the fully replaced cluster.
	postFrom := since()
	time.Sleep(opts.Phase)
	end := since()
	finish()

	if cfg, err := membership.Fetch(cur[0], 2*time.Second); err == nil {
		res.FinalEpoch = cfg.Epoch
	}

	// Collate: throughput windows and the 100ms timeline.
	var all []time.Duration
	for si := range stats {
		all = append(all, stats[si].done...)
	}
	inStage := func(d time.Duration) bool {
		s := d.Seconds()
		for _, st := range res.Stages {
			if s >= st.StartSec && s < st.ReadySec+0.5 { // +0.5s: sessions re-route
				return true
			}
		}
		return false
	}
	count := func(from, to time.Duration, excludeStages bool) (int, float64) {
		n := 0
		for _, d := range all {
			if d >= from && d < to && !(excludeStages && inStage(d)) {
				n++
			}
		}
		span := (to - from).Seconds()
		if excludeStages {
			for _, st := range res.Stages {
				lo, hi := max(st.StartSec, from.Seconds()), min(st.ReadySec+0.5, to.Seconds())
				if hi > lo {
					span -= hi - lo
				}
			}
		}
		return n, span
	}
	n, span := count(steadyFrom, steadyTo, false)
	res.SteadyOpsPerSec = float64(n) / span
	n, span = count(steadyTo, end, true)
	if span > 0 {
		res.AvailOpsPerSec = float64(n) / span
	}
	if res.SteadyOpsPerSec > 0 {
		res.AvailOverSteady = res.AvailOpsPerSec / res.SteadyOpsPerSec
	}
	n, span = count(postFrom, end, false)
	res.PostOpsPerSec = float64(n) / span

	const bucket = 100 * time.Millisecond
	buckets := make([]float64, int(end/bucket)+1)
	for _, d := range all {
		buckets[int(d/bucket)] += 1 / bucket.Seconds()
	}
	res.TimelineOpsPerSec = buckets
	for _, st := range res.Stages {
		res.StageIndexes = append(res.StageIndexes, int(st.StartSec/bucket.Seconds()))
	}

	res.Vulture = v.Report()
	rep := res.Vulture
	fmt.Fprintf(out, "reconfig: steady %.0f ops/s | avail %.0f ops/s (%.2fx) | post %.0f ops/s | final epoch %d\n",
		res.SteadyOpsPerSec, res.AvailOpsPerSec, res.AvailOverSteady, res.PostOpsPerSec, res.FinalEpoch)
	fmt.Fprintf(out, "reconfig: vulture ops=%d errors=%d timeouts=%d violations=%d outages=%d\n",
		rep.Ops, rep.Errors, rep.Timeouts, rep.Violations, len(rep.Outages))
	for _, o := range rep.Outages {
		fmt.Fprintf(out, "reconfig:   outage %.1fs..%.1fs (%.0fms) after %q\n", o.StartSec, o.EndSec, o.DurationMS, o.After)
	}
	if err := v.Failed(); err != nil {
		return res, err
	}
	if opts.AvailGate > 0 && res.AvailOverSteady < opts.AvailGate {
		return res, fmt.Errorf("reconfig: availability %.2fx steady is below the %.2fx gate", res.AvailOverSteady, opts.AvailGate)
	}
	return res, nil
}

// WriteReconfigJSON writes the result to path in the
// BENCH_reconfig.json schema.
func WriteReconfigJSON(path string, res ReconfigResult) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
