package bench

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"tempo/client"
	"tempo/internal/chaos"
	"tempo/internal/cluster"
	"tempo/internal/ids"
	"tempo/internal/tempo"
	"tempo/internal/topology"
	"tempo/internal/vulture"
)

// The chaos soak (`bench -exp chaos`): a real 3-replica durable cluster
// of OS processes shaped by a chaos profile, probed end-to-end by the
// consistency vulture while the harness injects the combined fault
// schedule — a site partition (cut and healed at runtime through each
// node's stdin), a SIGKILL + same-directory restart, and a standing
// slow-fsync replica. The run FAILS (non-zero exit through cmd/bench)
// if the vulture observes a single consistency violation; the report —
// violations, availability windows per fault, op counters, restart
// catch-up time — goes to BENCH_chaos.json. `make soak` / `make
// soak-short` wrap this experiment; see docs/OPERATIONS.md.

// ChaosOptions configures the chaos soak.
type ChaosOptions struct {
	// Profile names the chaos link profile the replicas run under
	// (default "metro": WAN-ish delays without dominating a short soak).
	Profile string
	// Duration is the whole soak length, faults included (default 60s).
	Duration time.Duration
	// FsyncDelay stalls every WAL fsync of the slow replica (node 2) to
	// emulate a degraded disk (default 5ms; <0 disables).
	FsyncDelay time.Duration
}

func (o ChaosOptions) withDefaults() ChaosOptions {
	if o.Profile == "" {
		o.Profile = "metro"
	}
	if o.Duration == 0 {
		o.Duration = 60 * time.Second
	}
	if o.FsyncDelay == 0 {
		o.FsyncDelay = 5 * time.Millisecond
	}
	return o
}

// ChaosResult is the schema of BENCH_chaos.json.
type ChaosResult struct {
	Generated  string  `json:"generated"`
	Go         string  `json:"go"`
	Profile    string  `json:"profile"`
	DurationMS float64 `json:"duration_ms"`
	// Faults lists the injected schedule in order.
	Faults []string `json:"faults"`
	// CatchupMS is the killed replica's restart-to-serving time.
	CatchupMS float64 `json:"catchup_ms"`
	// Vulture is the prober's full report: op counters, violations
	// (must be zero for the run to pass), availability windows.
	Vulture vulture.Report `json:"vulture"`
}

// RunChaosNode is the chaos node-runner mode of cmd/bench: one durable
// replica shaped by the profile, with runtime partition control on
// stdin. It prints NODE_READY once recovery is complete, then executes
// one command per stdin line — "cut <pid>" / "heal <pid>" severs or
// restores this node's outgoing link, "isolate" / "healall" all of them
// — until stdin closes.
func RunChaosNode(id int, peersCSV, dir string, fsync, fsyncDelay time.Duration, profile string) error {
	p, err := chaos.Lookup(profile)
	if err != nil {
		return err
	}
	peers := strings.Split(peersCSV, ",")
	names := make([]string, len(peers))
	rtt := make([][]time.Duration, len(peers))
	for i := range names {
		names[i] = fmt.Sprintf("s%d", i)
		rtt[i] = make([]time.Duration, len(peers))
	}
	topo, err := topology.New(topology.Config{SiteNames: names, RTT: rtt, NumShards: 1, F: 1})
	if err != nil {
		return err
	}
	addrs := make(map[ids.ProcessID]string, len(peers))
	for i, a := range peers {
		addrs[ids.ProcessID(i+1)] = a
	}
	self := ids.ProcessID(id)
	rep := tempo.New(self, topo, tempo.Config{PromiseInterval: time.Millisecond})
	node := cluster.NewNode(self, rep, addrs)
	// Each process shapes its own outgoing half of every link, so the
	// cluster-wide policy emerges without any shared state.
	sh := chaos.NewShaper(topo, p)
	defer sh.Close()
	node.SetShaper(sh)
	if err := node.SetDurable(cluster.DurableConfig{
		Dir:          dir,
		SyncInterval: fsync,
		FsyncDelay:   fsyncDelay,
	}); err != nil {
		return err
	}
	if err := node.Start(); err != nil {
		return err
	}
	defer node.Close()
	fmt.Println("NODE_READY")

	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		arg := ids.ProcessID(0)
		if len(fields) > 1 {
			n, err := strconv.Atoi(fields[1])
			if err != nil {
				continue
			}
			arg = ids.ProcessID(n)
		}
		switch fields[0] {
		case "cut":
			sh.CutOneWay(self, arg)
		case "heal":
			sh.Heal(self, arg)
		case "isolate":
			for _, pi := range topo.Processes() {
				if pi.ID != self {
					sh.CutOneWay(self, pi.ID)
				}
			}
		case "healall":
			sh.HealAll()
		}
	}
	return nil
}

// chaosCmd sends one control line to a node-runner's stdin.
func chaosCmd(p *faultProc, line string) {
	fmt.Fprintln(p.stdin, line)
}

// spawnChaosNode re-execs this binary in chaos node-runner mode and
// waits for NODE_READY.
func spawnChaosNode(id int, peers []string, dir, profile string, fsyncDelay time.Duration) (*faultProc, error) {
	return spawnNode(id, []string{
		"-chaos-node",
		"-node-id", fmt.Sprint(id),
		"-node-peers", strings.Join(peers, ","),
		"-node-dir", dir,
		"-node-fsync-delay", fsyncDelay.String(),
		"-node-profile", profile,
	})
}

// RunChaos runs the chaos soak and returns the measured result; the
// returned error is non-nil when the vulture saw any violation.
func RunChaos(out io.Writer, opts ChaosOptions) (ChaosResult, error) {
	opts = opts.withDefaults()
	res := ChaosResult{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		Go:         runtime.Version(),
		Profile:    opts.Profile,
		DurationMS: float64(opts.Duration.Milliseconds()),
	}
	if _, err := chaos.Lookup(opts.Profile); err != nil {
		return res, err
	}

	const r = 3
	const victim = 3 // fast quorums prefer low ids; losing 3 never blocks them
	const slow = 2   // the standing slow-fsync replica
	peers := make([]string, r)
	for i := range peers {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return res, err
		}
		peers[i] = ln.Addr().String()
		ln.Close()
	}
	base, err := os.MkdirTemp("", "tempo-chaos-")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(base)
	dirs := make([]string, r)
	procs := make([]*faultProc, r)
	for i := 0; i < r; i++ {
		dirs[i] = filepath.Join(base, fmt.Sprintf("node-%d", i+1))
		delay := time.Duration(0)
		if i+1 == slow && opts.FsyncDelay > 0 {
			delay = opts.FsyncDelay
		}
		p, err := spawnChaosNode(i+1, peers, dirs[i], opts.Profile, delay)
		if err != nil {
			return res, err
		}
		procs[i] = p
	}
	defer func() {
		for _, p := range procs {
			if p != nil {
				p.kill()
			}
		}
	}()
	fmt.Fprintf(out, "chaos: 3 durable replicas up under profile %q (%s), replica %d fsync+%v\n",
		opts.Profile, strings.Join(peers, " "), slow, opts.FsyncDelay)

	addrMap := make(map[ids.ProcessID]string, r)
	for i, a := range peers {
		addrMap[ids.ProcessID(i+1)] = a
	}
	v, err := vulture.New(vulture.Config{
		Client: client.Config{
			Addrs:          addrMap,
			RequestTimeout: 3 * time.Second,
			DialTimeout:    500 * time.Millisecond,
			RedialBackoff:  250 * time.Millisecond,
		},
		Writers:  2,
		Readers:  2,
		Keys:     32,
		Interval: 2 * time.Millisecond,
	})
	if err != nil {
		return res, err
	}
	if opts.FsyncDelay > 0 {
		v.Event("slow-fsync")
		res.Faults = append(res.Faults, fmt.Sprintf("slow-fsync: replica %d, +%v per fsync, whole run", slow, opts.FsyncDelay))
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runDone := make(chan error, 1)
	go func() { runDone <- v.Run(ctx) }()

	// The schedule slices the soak into sixths: steady, partition,
	// steady, kill+down, restart+steady.
	slice := opts.Duration / 6
	sleep := func(d time.Duration) { time.Sleep(d) }

	sleep(slice) // steady warmup

	// Partition: isolate the victim both ways (its outgoing links, and
	// every other node's link to it).
	v.Event("partition")
	res.Faults = append(res.Faults, fmt.Sprintf("partition: replica %d isolated for %v", victim, slice))
	chaosCmd(procs[victim-1], "isolate")
	for i := 0; i < r; i++ {
		if i+1 != victim {
			chaosCmd(procs[i], fmt.Sprintf("cut %d", victim))
		}
	}
	fmt.Fprintf(out, "chaos: partitioned replica %d\n", victim)
	sleep(slice)

	v.Event("heal")
	for _, p := range procs {
		chaosCmd(p, "healall")
	}
	fmt.Fprintf(out, "chaos: healed\n")
	sleep(slice)

	// SIGKILL: no flushed WAL tail, kernel-closed sockets; restart on
	// the same directory and measure replay + catch-up.
	v.Event("sigkill")
	res.Faults = append(res.Faults, fmt.Sprintf("sigkill: replica %d killed, down %v, restarted on its data dir", victim, slice))
	procs[victim-1].kill()
	procs[victim-1] = nil
	fmt.Fprintf(out, "chaos: killed replica %d\n", victim)
	sleep(slice)

	v.Event("restart")
	restartAt := time.Now()
	p, err := spawnChaosNode(victim, peers, dirs[victim-1], opts.Profile, 0)
	if err != nil {
		cancel()
		<-runDone
		return res, fmt.Errorf("restart: %w", err)
	}
	procs[victim-1] = p
	res.CatchupMS = float64(time.Since(restartAt).Microseconds()) / 1e3
	fmt.Fprintf(out, "chaos: replica %d restarted, ready after %.0fms\n", victim, res.CatchupMS)
	sleep(2 * slice) // post-restart steady tail

	cancel()
	if err := <-runDone; err != nil {
		return res, err
	}
	res.Vulture = v.Report()
	rep := res.Vulture
	fmt.Fprintf(out, "chaos: vulture ops=%d errors=%d timeouts=%d not_found=%d violations=%d outages=%d\n",
		rep.Ops, rep.Errors, rep.Timeouts, rep.NotFound, rep.Violations, len(rep.Outages))
	for _, o := range rep.Outages {
		fmt.Fprintf(out, "chaos:   outage %.1fs..%.1fs (%.0fms) after %q\n", o.StartSec, o.EndSec, o.DurationMS, o.After)
	}
	if err := v.Failed(); err != nil {
		return res, err
	}
	return res, nil
}

// WriteChaosJSON writes the result to path in the BENCH_chaos.json
// schema.
func WriteChaosJSON(path string, res ChaosResult) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
