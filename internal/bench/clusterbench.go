package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"tempo/client"
	"tempo/internal/cluster"
	"tempo/internal/command"
	"tempo/internal/ids"
	"tempo/internal/tempo"
	"tempo/internal/topology"
	"tempo/internal/workload"
)

// The loaded-cluster experiment (`bench -exp cluster`): a real 3-replica
// TCP cluster on loopback, driven by concurrent pipelined sessions
// across server-side batching configurations. Unlike the micro suite it
// measures the full serving hot path — submit batching, consensus,
// off-lock execution, reply batching — and records throughput plus
// client-observed latency percentiles to BENCH_cluster.json. The
// direct-1x64 configuration reproduces the PR 2 pipelined-64 baseline
// shape; the batch-* configurations are the acceptance bar of the
// server-side batching work.

// ClusterConfig is one load point of the cluster experiment.
type ClusterConfig struct {
	Name     string
	Sessions int // concurrent sessions (spread round-robin over replicas)
	Inflight int // pipelined requests per session
	BatchOps int // server batch size cap; <=1 disables batching
	Window   time.Duration
	// ZipfTheta, when positive, draws each put's key zipfian over
	// ZipfKeys hot keys (internal/workload.Zipfian) instead of one
	// conflict-free key per session — conflict skew, where timestamp
	// stability is actually exercised.
	ZipfTheta float64
	ZipfKeys  int // keyspace size under ZipfTheta (default 1024)
}

// ClusterResult is one measured load point in BENCH_cluster.json.
type ClusterResult struct {
	Name          string  `json:"name"`
	Sessions      int     `json:"sessions"`
	Inflight      int     `json:"inflight"`
	BatchOps      int     `json:"batch_ops"`
	BatchWindowUS float64 `json:"batch_window_us"`
	ZipfTheta     float64 `json:"zipf_theta,omitempty"`
	ZipfKeys      int     `json:"zipf_keys,omitempty"`
	Ops           int     `json:"ops"`
	OpsPerSec     float64 `json:"ops_per_sec"`
	P50us         float64 `json:"p50_us"`
	P90us         float64 `json:"p90_us"`
	P99us         float64 `json:"p99_us"`
}

// ClusterReport is the schema of BENCH_cluster.json.
type ClusterReport struct {
	Generated  string          `json:"generated"`
	Go         string          `json:"go"`
	DurationMS float64         `json:"duration_ms"`
	Results    []ClusterResult `json:"results"`
}

// DefaultClusterConfigs sweeps batching off/on at one and at several
// loaded sessions. direct-1x64 is the PR 2 baseline shape.
func DefaultClusterConfigs() []ClusterConfig {
	const w = cluster.DefaultBatchWindow
	return []ClusterConfig{
		{Name: "direct-1x64", Sessions: 1, Inflight: 64, BatchOps: 1},
		{Name: "batch128-1x64", Sessions: 1, Inflight: 64, BatchOps: 128, Window: w},
		{Name: "direct-8x64", Sessions: 8, Inflight: 64, BatchOps: 1},
		{Name: "batch16-8x64", Sessions: 8, Inflight: 64, BatchOps: 16, Window: w},
		{Name: "batch64-8x64", Sessions: 8, Inflight: 64, BatchOps: 64, Window: w},
		{Name: "batch256-8x64", Sessions: 8, Inflight: 64, BatchOps: 256, Window: 2 * w},
		// Conflict skew: every session hammers the same zipfian hot
		// keys (theta 0.5 mild, 0.99 heavy — the YCSB extremes).
		{Name: "zipf50-8x64", Sessions: 8, Inflight: 64, BatchOps: 64, Window: w, ZipfTheta: 0.5, ZipfKeys: 1024},
		{Name: "zipf99-8x64", Sessions: 8, Inflight: 64, BatchOps: 64, Window: w, ZipfTheta: 0.99, ZipfKeys: 1024},
	}
}

// loopbackClusterBatch boots a 3-replica Tempo cluster on loopback with
// the given server-side batching configuration and returns the client
// addresses in process-id order plus a shutdown function.
func loopbackClusterBatch(batchOps int, window time.Duration) ([]string, func()) {
	const r = 3
	names := make([]string, r)
	rtt := make([][]time.Duration, r)
	for i := range names {
		names[i] = fmt.Sprintf("s%d", i)
		rtt[i] = make([]time.Duration, r)
	}
	topo, err := topology.New(topology.Config{SiteNames: names, RTT: rtt, NumShards: 1, F: 1})
	if err != nil {
		log.Fatal(err)
	}
	addrs := make(map[ids.ProcessID]string)
	lns := make(map[ids.ProcessID]net.Listener)
	var list []string
	for _, pi := range topo.Processes() {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		lns[pi.ID] = ln
		addrs[pi.ID] = ln.Addr().String()
		list = append(list, ln.Addr().String())
	}
	var nodes []*cluster.Node
	for _, pi := range topo.Processes() {
		rep := tempo.New(pi.ID, topo, tempo.Config{
			PromiseInterval: time.Millisecond,
			RecoveryTimeout: time.Hour,
		})
		n := cluster.NewNode(pi.ID, rep, addrs)
		n.SetBatch(batchOps, window)
		n.StartListener(lns[pi.ID])
		nodes = append(nodes, n)
	}
	return list, func() {
		for _, n := range nodes {
			n.Close()
		}
	}
}

// runClusterConfig drives one load point: Sessions closed-loop sessions,
// each keeping Inflight puts pipelined on one connection, for
// warmup+duration; completions inside the measurement window are counted
// and their client-observed latencies sampled.
func runClusterConfig(cfg ClusterConfig, duration, warmup time.Duration) (ClusterResult, error) {
	addrs, cleanup := loopbackClusterBatch(cfg.BatchOps, cfg.Window)
	defer cleanup()

	type sessResult struct {
		ops  int
		lats []float64 // µs
		err  error
	}
	results := make([]sessResult, cfg.Sessions)
	start := time.Now()
	warmEnd := start.Add(warmup)
	stop := warmEnd.Add(duration)
	var wg sync.WaitGroup
	for si := 0; si < cfg.Sessions; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			res := &results[si]
			// Spread sessions round-robin over the replicas: Tempo is
			// leaderless, every replica coordinates its own clients.
			addr := addrs[si%len(addrs)]
			sess, err := client.New(client.Config{
				Addrs: map[ids.ProcessID]string{ids.ProcessID(si%len(addrs) + 1): addr},
			})
			if err != nil {
				res.err = err
				return
			}
			defer sess.Close()
			ctx := context.Background()
			nextOp := func() command.Op {
				return command.Op{Kind: command.Put, Key: command.Key(fmt.Sprintf("bench-%d", si)), Value: []byte("x")}
			}
			if cfg.ZipfTheta > 0 {
				keys := cfg.ZipfKeys
				if keys == 0 {
					keys = 1024
				}
				z := workload.NewZipfian(keys, cfg.ZipfTheta)
				rng := rand.New(rand.NewSource(int64(si)*7919 + 1))
				nextOp = func() command.Op {
					return command.Op{Kind: command.Put, Key: command.Key(fmt.Sprintf("z%d", z.Sample(rng))), Value: []byte("x")}
				}
			}
			type issued struct {
				f  *client.Future
				at time.Time
			}
			// Fixed ring: head chases tail at distance Inflight, so
			// completing an op is O(1) and the driver stays out of the
			// measured numbers.
			ring := make([]issued, cfg.Inflight)
			head, tail := 0, 0
			reap := func(it issued) bool {
				if _, err := it.f.Wait(ctx); err != nil {
					res.err = err
					return false
				}
				now := time.Now()
				if now.After(warmEnd) && !now.After(stop) {
					res.ops++
					res.lats = append(res.lats, float64(now.Sub(it.at).Nanoseconds())/1e3)
				}
				return true
			}
			for time.Now().Before(stop) {
				if tail-head == cfg.Inflight {
					if !reap(ring[head%cfg.Inflight]) {
						return
					}
					head++
				}
				ring[tail%cfg.Inflight] = issued{f: sess.Do(ctx, nextOp()), at: time.Now()}
				tail++
			}
			for ; head < tail; head++ {
				if !reap(ring[head%cfg.Inflight]) {
					return
				}
			}
		}(si)
	}
	wg.Wait()

	out := ClusterResult{
		Name:          cfg.Name,
		Sessions:      cfg.Sessions,
		Inflight:      cfg.Inflight,
		BatchOps:      cfg.BatchOps,
		BatchWindowUS: float64(cfg.Window.Microseconds()),
		ZipfTheta:     cfg.ZipfTheta,
		ZipfKeys:      cfg.ZipfKeys,
	}
	var lats []float64
	for _, r := range results {
		if r.err != nil {
			return out, r.err
		}
		out.Ops += r.ops
		lats = append(lats, r.lats...)
	}
	out.OpsPerSec = float64(out.Ops) / duration.Seconds()
	sort.Float64s(lats)
	pct := func(p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)-1))
		return lats[i]
	}
	out.P50us, out.P90us, out.P99us = pct(0.50), pct(0.90), pct(0.99)
	return out, nil
}

// RunCluster runs the loaded-cluster sweep and prints one line per load
// point.
func RunCluster(out io.Writer, cfgs []ClusterConfig, duration, warmup time.Duration) ([]ClusterResult, error) {
	var results []ClusterResult
	for _, cfg := range cfgs {
		r, err := runClusterConfig(cfg, duration, warmup)
		if err != nil {
			return results, fmt.Errorf("cluster config %s: %w", cfg.Name, err)
		}
		fmt.Fprintf(out, "%-16s %2d sess x %3d inflight  batch=%3d/%5.0fµs  %9.0f ops/s  p50=%7.0fµs p90=%7.0fµs p99=%7.0fµs\n",
			r.Name, r.Sessions, r.Inflight, r.BatchOps, r.BatchWindowUS, r.OpsPerSec, r.P50us, r.P90us, r.P99us)
		results = append(results, r)
	}
	return results, nil
}

// WriteClusterJSON writes the results to path in the BENCH_cluster.json
// schema.
func WriteClusterJSON(path string, results []ClusterResult, duration time.Duration) error {
	rep := ClusterReport{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		Go:         runtime.Version(),
		DurationMS: float64(duration.Milliseconds()),
		Results:    results,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
