package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"tempo/client"
	"tempo/internal/chaos"
	"tempo/internal/cluster"
	"tempo/internal/command"
	"tempo/internal/engine"
	"tempo/internal/epaxos"
	"tempo/internal/fpaxos"
	"tempo/internal/ids"
	"tempo/internal/tempo"
	"tempo/internal/topology"
)

// The engine-comparison experiment (`bench -exp compare`): the paper's
// 5-site EC2 topology with the chaos `ring` WAN profile delaying every
// inter-site protocol message by its real one-way latency, one cluster
// per consensus engine from the registry (Tempo, EPaxos, FPaxos), swept
// across key-conflict ratios. This is the paper's core claim made
// runnable on the real TCP stack: Tempo's timestamp ordering holds its
// latency profile as conflicts grow, EPaxos degrades with its
// dependency slow path, and FPaxos pays the leader detour regardless of
// conflicts. Results go to BENCH_compare.json.

// CompareProfile is the chaos link profile every compare point runs
// under.
const CompareProfile = "ring"

// CompareConfig is one load point of the engine-comparison experiment.
type CompareConfig struct {
	Engine   string  // engine registry name
	Conflict float64 // probability a put hits the shared hot key
	Sessions int     // concurrent sessions (spread round-robin over replicas)
	Inflight int     // pipelined requests per session
}

// CompareResult is one measured load point in BENCH_compare.json.
type CompareResult struct {
	Engine    string  `json:"engine"`
	Conflict  float64 `json:"conflict"`
	Sessions  int     `json:"sessions"`
	Inflight  int     `json:"inflight"`
	Ops       int     `json:"ops"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50us     float64 `json:"p50_us"`
	P90us     float64 `json:"p90_us"`
	P99us     float64 `json:"p99_us"`
}

// CompareReport is the schema of BENCH_compare.json.
type CompareReport struct {
	Generated  string          `json:"generated"`
	Go         string          `json:"go"`
	Profile    string          `json:"profile"`
	DurationMS float64         `json:"duration_ms"`
	Results    []CompareResult `json:"results"`
}

// DefaultCompareConfigs sweeps every registry engine across the paper's
// conflict ratios (0%, 5%, 50% — Figure 5's axis) at a fixed moderate
// load.
func DefaultCompareConfigs() []CompareConfig {
	var cfgs []CompareConfig
	for _, name := range engine.Names() {
		for _, conflict := range []float64{0, 0.05, 0.5} {
			cfgs = append(cfgs, CompareConfig{Engine: name, Conflict: conflict, Sessions: 4, Inflight: 16})
		}
	}
	return cfgs
}

// compareEngineConfig arms recovery timers loosely: on a healthy (if
// slow) WAN they should almost never fire, but a lost round must not
// wedge a measurement run.
func compareEngineConfig() engine.Config {
	return engine.Config{
		Tempo:  tempo.Config{PromiseInterval: 5 * time.Millisecond, RecoveryTimeout: time.Second},
		EPaxos: epaxos.Config{ResendInterval: 250 * time.Millisecond},
		FPaxos: fpaxos.Config{ResendInterval: 250 * time.Millisecond},
	}
}

// wanCompareCluster boots the named engine on the 5-site EC2 topology
// behind the ring chaos profile and returns the client addresses in
// process-id order plus a shutdown function.
func wanCompareCluster(engineName string) ([]string, func(), error) {
	topo := topology.EC2(1)
	prof, err := chaos.Lookup(CompareProfile)
	if err != nil {
		return nil, nil, err
	}
	shaper := chaos.NewShaper(topo, prof)
	addrs := make(map[ids.ProcessID]string)
	lns := make(map[ids.ProcessID]net.Listener)
	var list []string
	for _, pi := range topo.Processes() {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			shaper.Close()
			return nil, nil, err
		}
		lns[pi.ID] = ln
		addrs[pi.ID] = ln.Addr().String()
		list = append(list, ln.Addr().String())
	}
	var nodes []*cluster.Node
	cleanup := func() {
		for _, n := range nodes {
			n.Close()
		}
		for _, ln := range lns {
			ln.Close() // listeners not yet handed to a node
		}
		shaper.Close()
	}
	for _, pi := range topo.Processes() {
		rep, err := engine.New(engineName, pi.ID, topo, compareEngineConfig())
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		n := cluster.NewNode(pi.ID, rep, addrs)
		n.SetShaper(shaper)
		if err := n.StartListener(lns[pi.ID]); err != nil {
			cleanup()
			return nil, nil, err
		}
		delete(lns, pi.ID) // the node owns this listener now
		nodes = append(nodes, n)
	}
	return list, cleanup, nil
}

// runCompareConfig drives one load point against a freshly booted WAN
// cluster of cfg.Engine replicas: each session pipelines puts whose key
// is the shared hot key with probability cfg.Conflict and a
// session-private key otherwise.
func runCompareConfig(cfg CompareConfig, duration, warmup time.Duration) (CompareResult, error) {
	out := CompareResult{
		Engine:   cfg.Engine,
		Conflict: cfg.Conflict,
		Sessions: cfg.Sessions,
		Inflight: cfg.Inflight,
	}
	addrs, cleanup, err := wanCompareCluster(cfg.Engine)
	if err != nil {
		return out, err
	}
	defer cleanup()

	type sessResult struct {
		ops  int
		lats []float64 // µs
		err  error
	}
	results := make([]sessResult, cfg.Sessions)
	start := time.Now()
	warmEnd := start.Add(warmup)
	stop := warmEnd.Add(duration)
	var wg sync.WaitGroup
	for si := 0; si < cfg.Sessions; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			res := &results[si]
			// Round-robin session homes: every leaderless engine
			// coordinates at the session's replica; FPaxos forwards to
			// its leader from wherever the client lands — the detour is
			// part of what the comparison measures.
			addr := addrs[si%len(addrs)]
			sess, err := client.New(client.Config{
				Addrs: map[ids.ProcessID]string{ids.ProcessID(si%len(addrs) + 1): addr},
			})
			if err != nil {
				res.err = err
				return
			}
			defer sess.Close()
			ctx := context.Background()
			rng := rand.New(rand.NewSource(int64(si)*104729 + 17))
			nextOp := func() command.Op {
				key := command.Key(fmt.Sprintf("cmp-%d", si))
				if rng.Float64() < cfg.Conflict {
					key = "cmp-hot"
				}
				return command.Op{Kind: command.Put, Key: key, Value: []byte("x")}
			}
			type issued struct {
				f  *client.Future
				at time.Time
			}
			ring := make([]issued, cfg.Inflight)
			head, tail := 0, 0
			reap := func(it issued) bool {
				if _, err := it.f.Wait(ctx); err != nil {
					res.err = err
					return false
				}
				now := time.Now()
				if now.After(warmEnd) && !now.After(stop) {
					res.ops++
					res.lats = append(res.lats, float64(now.Sub(it.at).Nanoseconds())/1e3)
				}
				return true
			}
			for time.Now().Before(stop) {
				if tail-head == cfg.Inflight {
					if !reap(ring[head%cfg.Inflight]) {
						return
					}
					head++
				}
				ring[tail%cfg.Inflight] = issued{f: sess.Do(ctx, nextOp()), at: time.Now()}
				tail++
			}
			for ; head < tail; head++ {
				if !reap(ring[head%cfg.Inflight]) {
					return
				}
			}
		}(si)
	}
	wg.Wait()

	var lats []float64
	for _, r := range results {
		if r.err != nil {
			return out, fmt.Errorf("engine %s conflict %.2f: %w", cfg.Engine, cfg.Conflict, r.err)
		}
		out.Ops += r.ops
		lats = append(lats, r.lats...)
	}
	out.OpsPerSec = float64(out.Ops) / duration.Seconds()
	sort.Float64s(lats)
	pct := func(p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)-1))
		return lats[i]
	}
	out.P50us, out.P90us, out.P99us = pct(0.50), pct(0.90), pct(0.99)
	return out, nil
}

// RunCompare runs the engine-comparison sweep and prints one line per
// load point.
func RunCompare(out io.Writer, cfgs []CompareConfig, duration, warmup time.Duration) ([]CompareResult, error) {
	var results []CompareResult
	for _, cfg := range cfgs {
		r, err := runCompareConfig(cfg, duration, warmup)
		if err != nil {
			return results, fmt.Errorf("compare config %s/%.2f: %w", cfg.Engine, cfg.Conflict, err)
		}
		fmt.Fprintf(out, "%-8s conflict=%4.0f%%  %2d sess x %3d inflight  %8.1f ops/s  p50=%8.0fµs p90=%8.0fµs p99=%8.0fµs\n",
			r.Engine, r.Conflict*100, r.Sessions, r.Inflight, r.OpsPerSec, r.P50us, r.P90us, r.P99us)
		results = append(results, r)
	}
	return results, nil
}

// WriteCompareJSON writes the results to path in the BENCH_compare.json
// schema.
func WriteCompareJSON(path string, results []CompareResult, duration time.Duration) error {
	rep := CompareReport{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		Go:         runtime.Version(),
		Profile:    CompareProfile,
		DurationMS: float64(duration.Milliseconds()),
		Results:    results,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
