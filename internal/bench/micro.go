package bench

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"tempo/internal/command"
	"tempo/internal/ids"
	"tempo/internal/promise"
	"tempo/internal/proto"
	"tempo/internal/tempo"
	"tempo/internal/topology"
)

// Micro-benchmarks of the protocol hot paths, shared between `go test
// -bench` (see bench_test.go at the repository root) and `bench -exp
// micro`, which emits BENCH_micro.json so successive PRs can track the
// perf trajectory. Three paths matter per the paper's cost model
// (§6, Figures 7-9): per-message serialization (codec), the stability
// computation run on every protocol step (tracker), and the end-to-end
// per-command protocol work (process steady state).

func init() {
	// Reference codec for the codec comparison; registration is
	// idempotent for identical types.
	gob.Register(&tempo.MSubmit{})
	gob.Register(&tempo.MPayload{})
	gob.Register(&tempo.MPropose{})
	gob.Register(&tempo.MProposeAck{})
	gob.Register(&tempo.MBump{})
	gob.Register(&tempo.MCommit{})
	gob.Register(&tempo.MConsensus{})
	gob.Register(&tempo.MConsensusAck{})
	gob.Register(&tempo.MRec{})
	gob.Register(&tempo.MRecAck{})
	gob.Register(&tempo.MRecNAck{})
	gob.Register(&tempo.MCommitRequest{})
	gob.Register(&tempo.MPromises{})
	gob.Register(&tempo.MStable{})
}

// codecMix is a representative message mix for one fast-path commit
// round plus a promise broadcast.
func codecMix() []proto.Message {
	cmd := command.NewPut(ids.Dot{Source: 1, Seq: 42}, "key-0001", bytes.Repeat([]byte{0xAB}, 100))
	q := tempo.Quorums{0: {1, 2, 3}}
	return []proto.Message{
		&tempo.MSubmit{ID: cmd.ID, Cmd: cmd, Quorums: q},
		&tempo.MPropose{ID: cmd.ID, Cmd: cmd, Quorums: q, TS: 77},
		&tempo.MPayload{ID: cmd.ID, Cmd: cmd, Quorums: q},
		&tempo.MProposeAck{ID: cmd.ID, TS: 78, DetachedLo: 70, DetachedHi: 77},
		&tempo.MCommit{ID: cmd.ID, Shard: 0, TS: 78, Attached: []tempo.RankTS{
			{Rank: 1, TS: 78, DetLo: 70, DetHi: 77}, {Rank: 2, TS: 77}, {Rank: 3, TS: 78},
		}},
		&tempo.MPromises{Rank: 2, Detached: []uint64{1, 69, 71, 76},
			Attached: []tempo.AttachedWire{{ID: cmd.ID, TS: 77}},
			WM:       tempo.TSWatermark{TS: 69, ID: ids.Dot{Source: 2, Seq: 40}}},
		&tempo.MStable{ID: cmd.ID, Shard: 0},
	}
}

// CodecEncodeLoop measures encoding the mix with the binary codec
// (reused buffer) or gob (reused stream, as the legacy per-connection
// encoder amortized type descriptors).
func CodecEncodeLoop(b *testing.B, codec string) {
	msgs := codecMix()
	b.ReportAllocs()
	switch codec {
	case "binary":
		var buf []byte
		for i := 0; i < b.N; i++ {
			buf = buf[:0]
			var err error
			for _, m := range msgs {
				if buf, err = proto.AppendMessage(buf, m); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(len(buf)), "encoded-bytes")
	case "gob":
		var buf bytes.Buffer
		enc := gob.NewEncoder(&buf)
		for i := 0; i < b.N; i++ {
			buf.Reset()
			for _, m := range msgs {
				if err := enc.Encode(&m); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(buf.Len()), "encoded-bytes")
	default:
		b.Fatalf("unknown codec %q", codec)
	}
}

// CodecDecodeLoop measures decoding the same mix.
func CodecDecodeLoop(b *testing.B, codec string) {
	msgs := codecMix()
	b.ReportAllocs()
	switch codec {
	case "binary":
		var bin []byte
		var err error
		for _, m := range msgs {
			if bin, err = proto.AppendMessage(bin, m); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rest := bin
			for len(rest) > 0 {
				if _, rest, err = proto.DecodeMessage(rest); err != nil {
					b.Fatal(err)
				}
			}
		}
	case "gob":
		var buf bytes.Buffer
		enc := gob.NewEncoder(&buf)
		for _, m := range msgs {
			if err := enc.Encode(&m); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dec := gob.NewDecoder(bytes.NewReader(buf.Bytes()))
			for range msgs {
				var out proto.Message
				if err := dec.Decode(&out); err != nil {
					b.Fatal(err)
				}
			}
		}
	default:
		b.Fatalf("unknown codec %q", codec)
	}
}

// TrackerStableLoop measures the Theorem 1 stability computation in the
// pattern advanceExecution exercises it: a Stable read on every step,
// with occasional promise insertions that move a rank's frontier and
// force the cached watermark to refresh.
func TrackerStableLoop(b *testing.B) {
	tr := promise.NewTracker(5)
	for rank := ids.Rank(1); rank <= 5; rank++ {
		for t := uint64(1); t <= 10000; t += 2 {
			tr.AddDetached(rank, t, t)
		}
	}
	next := uint64(10001)
	b.ReportAllocs()
	b.ResetTimer()
	var s uint64
	for i := 0; i < b.N; i++ {
		if i%8 == 0 {
			tr.AddDetached(ids.Rank(i%5+1), next, next)
			next++
		}
		s = tr.Stable()
	}
	_ = s
}

// SteadyStateLoop measures the per-command cost of the full protocol hot
// path in steady state: submit, fast-path commit, promise gossip,
// stability, execution and garbage collection across the 5 replicas of
// the paper's single-shard EC2 topology. Ticks are interleaved so
// MPromises flow, watermarks advance and per-command state is recycled —
// the allocation profile is the one a loaded replica sees.
func SteadyStateLoop(b *testing.B) {
	topo := topology.EC2(1)
	reps := make(map[ids.ProcessID]proto.Replica)
	var procs []ids.ProcessID
	for _, pi := range topo.Processes() {
		reps[pi.ID] = tempo.New(pi.ID, topo, tempo.Config{
			PromiseInterval: time.Millisecond,
			RecoveryTimeout: time.Hour,
		})
		procs = append(procs, pi.ID)
	}
	coordinator := topo.ProcessAt(0, 0)
	type env struct {
		from, to ids.ProcessID
		msg      proto.Message
	}
	var queue []env
	push := func(from ids.ProcessID, acts []proto.Action) {
		for _, a := range acts {
			for _, to := range a.To {
				queue = append(queue, env{from, to, a.Msg})
			}
		}
	}
	drain := func() {
		for len(queue) > 0 {
			e := queue[0]
			queue = queue[1:]
			push(e.to, reps[e.to].Handle(e.from, e.msg))
			reps[e.to].Drain()
		}
	}
	now := time.Duration(0)
	tickAll := func() {
		now += 2 * time.Millisecond
		for _, id := range procs {
			push(id, reps[id].Tick(now))
		}
		drain()
	}
	submit := func(seq uint64) {
		cmd := command.NewPut(ids.Dot{Source: coordinator, Seq: seq}, "k", nil)
		push(coordinator, reps[coordinator].Submit(cmd))
		drain()
		tickAll()
	}
	// Warm up so every replica has promises, watermarks and a populated
	// tracker before measuring.
	for i := uint64(1); i <= 64; i++ {
		submit(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		submit(uint64(i) + 65)
	}
}

// MicroResult is one micro-benchmark measurement in BENCH_micro.json.
type MicroResult struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// MicroReport is the schema of BENCH_micro.json.
type MicroReport struct {
	Generated string        `json:"generated"`
	Go        string        `json:"go"`
	Results   []MicroResult `json:"results"`
}

// RunMicro runs the micro-benchmark suite and prints one line per
// result to out.
func RunMicro(out io.Writer) []MicroResult {
	var results []MicroResult
	run := func(name string, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		mr := MicroResult{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if len(r.Extra) > 0 {
			mr.Extra = make(map[string]float64, len(r.Extra))
			for k, v := range r.Extra {
				mr.Extra[k] = v
			}
		}
		fmt.Fprintf(out, "%-28s %12.1f ns/op %8d B/op %6d allocs/op",
			name, mr.NsPerOp, mr.BytesPerOp, mr.AllocsPerOp)
		for k, v := range mr.Extra {
			fmt.Fprintf(out, "  %s=%.0f", k, v)
		}
		fmt.Fprintln(out)
		results = append(results, mr)
	}
	run("codec/binary/encode", func(b *testing.B) { CodecEncodeLoop(b, "binary") })
	run("codec/gob/encode", func(b *testing.B) { CodecEncodeLoop(b, "gob") })
	run("codec/binary/decode", func(b *testing.B) { CodecDecodeLoop(b, "binary") })
	run("codec/gob/decode", func(b *testing.B) { CodecDecodeLoop(b, "gob") })
	run("tracker/stable", TrackerStableLoop)
	run("process/steady-state", SteadyStateLoop)
	run("client/roundtrip/legacy-gob", ClientLegacyRoundTripLoop)
	run("client/roundtrip/pipelined-64", ClientPipelinedRoundTripLoop)
	return results
}

// WriteMicroJSON writes the results to path in the BENCH_micro.json
// schema.
func WriteMicroJSON(path string, results []MicroResult) error {
	rep := MicroReport{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Go:        runtime.Version(),
		Results:   results,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
