package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"tempo/client"
	"tempo/internal/command"
	"tempo/internal/ids"
	"tempo/internal/psmr"
	"tempo/internal/tempo"
	"tempo/internal/topology"
)

// The sharded-cluster experiment (`bench -exp shard`): real TCP
// partial-replication clusters — three sites, each one psmr group
// hosting every shard behind a single listener — swept across shard
// counts and cross-shard command ratios, with results written to
// BENCH_shard.json.
//
// Methodology. The replicas run durable (batched fsync) with PACED
// group commit (cluster.Node.SetBatchPace): each shard admits at most
// one consensus round of batchOps operations per pace interval per
// serving replica, so a single shard's throughput is capped at
// sites*batchOps/pace no matter how many clients pile on — the
// per-shard ordering-pipeline bound that real deployments hit as
// per-shard round rate (quorum RTT pipelining, round fan-out, bounded
// recovery). That bound is exactly what partial replication multiplies:
// every added shard brings its own independently paced ordering
// pipeline, so aggregate admission grows linearly with the shard count
// while commands stay single-round. The sweep shows that scaling at 0%
// cross-shard commands, and prices the paper's cross-shard coordination
// (gateway + watch legs, stability barriers, max-timestamp execution)
// at 5% and 50% ratios. Note the harness host is a single-core
// container: the scaling measured here is the protocol-level
// multiplication of per-shard pipelines, not hardware parallelism — on
// multi-core/multi-machine deployments the same sweep additionally
// scales CPU.

// ShardConfig is one load point of the shard experiment.
type ShardConfig struct {
	Name     string
	Shards   int
	RatioPct int // percentage of commands that touch two shards
	Sessions int
	Inflight int
	BatchOps int
	Window   time.Duration
	Pace     time.Duration // per-shard round pacing (SetBatchPace)
}

// ShardResult is one measured load point in BENCH_shard.json.
type ShardResult struct {
	Name          string  `json:"name"`
	Shards        int     `json:"shards"`
	RatioPct      int     `json:"cross_ratio_pct"`
	Sessions      int     `json:"sessions"`
	Inflight      int     `json:"inflight"`
	Cmds          int     `json:"cmds"`
	CrossCmds     int     `json:"cross_cmds"`
	Ops           int     `json:"ops"`
	OpsPerSec     float64 `json:"ops_per_sec"`
	SingleP50us   float64 `json:"single_p50_us"`
	SingleP99us   float64 `json:"single_p99_us"`
	CrossP50us    float64 `json:"cross_p50_us"`
	CrossP99us    float64 `json:"cross_p99_us"`
	CrossMeanUS   float64 `json:"cross_mean_us"`
	SingleMeanUS  float64 `json:"single_mean_us"`
	CrossOverhead float64 `json:"cross_overhead_x"` // cross mean / single mean
}

// ShardReport is the schema of BENCH_shard.json.
type ShardReport struct {
	Generated  string        `json:"generated"`
	Go         string        `json:"go"`
	DurationMS float64       `json:"duration_ms"`
	Sites      int           `json:"sites"`
	Fsync      string        `json:"fsync"`
	ScalingX   float64       `json:"scaling_2shard_over_1shard_x"`
	Results    []ShardResult `json:"results"`
}

// DefaultShardConfigs sweeps shard counts 1..maxShards at 0% cross, and
// cross ratios 5%/50% at every multi-shard count.
func DefaultShardConfigs(maxShards int) []ShardConfig {
	if maxShards < 1 {
		maxShards = 1
	}
	const (
		sessions = 6
		inflight = 128
		batchOps = 64
		window   = 200 * time.Microsecond
		pace     = 5 * time.Millisecond
	)
	var cfgs []ShardConfig
	for s := 1; s <= maxShards; s++ {
		cfgs = append(cfgs, ShardConfig{
			Name:   fmt.Sprintf("shard%d-cross0", s),
			Shards: s, RatioPct: 0, Sessions: sessions, Inflight: inflight,
			BatchOps: batchOps, Window: window, Pace: pace,
		})
	}
	for s := 2; s <= maxShards; s++ {
		for _, r := range []int{5, 50} {
			cfgs = append(cfgs, ShardConfig{
				Name:   fmt.Sprintf("shard%d-cross%d", s, r),
				Shards: s, RatioPct: r, Sessions: sessions, Inflight: inflight,
				BatchOps: batchOps, Window: window, Pace: pace,
			})
		}
	}
	return cfgs
}

// startShardCluster boots a 3-site durable psmr deployment of the given
// shard count on loopback with paced group commit.
func startShardCluster(shards, batchOps int, window, pace time.Duration) (*topology.Topology, map[ids.ProcessID]string, func(), error) {
	const sites = 3
	names := make([]string, sites)
	rtt := make([][]time.Duration, sites)
	for i := range names {
		names[i] = fmt.Sprintf("s%d", i)
		rtt[i] = make([]time.Duration, sites)
	}
	topo, err := topology.New(topology.Config{SiteNames: names, RTT: rtt, NumShards: shards, F: 1})
	if err != nil {
		return nil, nil, nil, err
	}
	base, err := os.MkdirTemp("", "tempo-shardbench-*")
	if err != nil {
		return nil, nil, nil, err
	}
	siteAddrs := make(map[ids.SiteID]string)
	lns := make(map[ids.SiteID]net.Listener)
	for _, site := range topo.Sites() {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			os.RemoveAll(base)
			return nil, nil, nil, err
		}
		lns[site.ID] = ln
		siteAddrs[site.ID] = ln.Addr().String()
	}
	groups := make([]*psmr.Group, sites)
	errs := make([]error, sites)
	var wg sync.WaitGroup
	for i, site := range topo.Sites() {
		wg.Add(1)
		go func(i int, id ids.SiteID) {
			defer wg.Done()
			groups[i], errs[i] = psmr.StartListener(psmr.Config{
				Topo:      topo,
				Site:      id,
				SiteAddrs: siteAddrs,
				Tempo: tempo.Config{
					PromiseInterval: time.Millisecond,
					RecoveryTimeout: time.Hour,
				},
				BatchOps:    batchOps,
				BatchWindow: window,
				BatchPace:   pace,
				DataDir:     fmt.Sprintf("%s/site-%d", base, id),
			}, lns[id])
		}(i, site.ID)
	}
	wg.Wait()
	cleanup := func() {
		for _, g := range groups {
			if g != nil {
				g.Close()
			}
		}
		os.RemoveAll(base)
	}
	for _, err := range errs {
		if err != nil {
			cleanup()
			return nil, nil, nil, err
		}
	}
	addrs, _, err := psmr.ProcessAddrs(topo, siteAddrs)
	if err != nil {
		cleanup()
		return nil, nil, nil, err
	}
	return topo, addrs, cleanup, nil
}

// shardKeys picks, per shard, a pool of keys owned by it.
func shardKeys(topo *topology.Topology, shards, perShard int) [][]command.Key {
	pools := make([][]command.Key, shards)
	for i := 0; len(pools[0]) < perShard || shortest(pools) < perShard; i++ {
		k := command.Key(fmt.Sprintf("sb-%d", i))
		s := topo.ShardOf(k)
		if len(pools[s]) < perShard {
			pools[s] = append(pools[s], k)
		}
	}
	return pools
}

func shortest(pools [][]command.Key) int {
	m := len(pools[0])
	for _, p := range pools {
		if len(p) < m {
			m = len(p)
		}
	}
	return m
}

// runShardConfig drives one load point: Sessions closed-loop sessions
// (spread over the sites), each keeping Inflight commands pipelined; a
// RatioPct fraction of commands put two keys on two distinct shards
// (one cross-shard transaction), the rest put one key on one shard.
func runShardConfig(cfg ShardConfig, duration, warmup time.Duration) (ShardResult, error) {
	topo, addrs, cleanup, err := startShardCluster(cfg.Shards, cfg.BatchOps, cfg.Window, cfg.Pace)
	if err != nil {
		return ShardResult{}, err
	}
	defer cleanup()
	pools := shardKeys(topo, cfg.Shards, 64)

	type sessResult struct {
		cmds, crossCmds, ops  int
		singleLats, crossLats []float64 // µs
		err                   error
	}
	results := make([]sessResult, cfg.Sessions)
	start := time.Now()
	warmEnd := start.Add(warmup)
	stop := warmEnd.Add(duration)
	var wg sync.WaitGroup
	for si := 0; si < cfg.Sessions; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			res := &results[si]
			site := ids.SiteID(si % len(topo.Sites()))
			sess, err := client.New(client.Config{Addrs: addrs, Topo: topo, Site: site})
			if err != nil {
				res.err = err
				return
			}
			defer sess.Close()
			ctx := context.Background()
			rng := rand.New(rand.NewSource(int64(si) + 1))
			val := []byte("x")
			type issued struct {
				f     *client.Future
				at    time.Time
				cross bool
				nops  int
			}
			ring := make([]issued, cfg.Inflight)
			head, tail := 0, 0
			reap := func(it issued) bool {
				if _, err := it.f.Wait(ctx); err != nil {
					res.err = err
					return false
				}
				now := time.Now()
				if now.After(warmEnd) && !now.After(stop) {
					res.cmds++
					res.ops += it.nops
					lat := float64(now.Sub(it.at).Nanoseconds()) / 1e3
					if it.cross {
						res.crossCmds++
						res.crossLats = append(res.crossLats, lat)
					} else {
						res.singleLats = append(res.singleLats, lat)
					}
				}
				return true
			}
			issue := func() issued {
				s0 := rng.Intn(cfg.Shards)
				k0 := pools[s0][rng.Intn(len(pools[s0]))]
				if cfg.Shards > 1 && rng.Intn(100) < cfg.RatioPct {
					s1 := (s0 + 1 + rng.Intn(cfg.Shards-1)) % cfg.Shards
					k1 := pools[s1][rng.Intn(len(pools[s1]))]
					return issued{
						f: sess.Do(ctx,
							command.Op{Kind: command.Put, Key: k0, Value: val},
							command.Op{Kind: command.Put, Key: k1, Value: val}),
						at: time.Now(), cross: true, nops: 2,
					}
				}
				return issued{
					f:  sess.Do(ctx, command.Op{Kind: command.Put, Key: k0, Value: val}),
					at: time.Now(), nops: 1,
				}
			}
			for time.Now().Before(stop) {
				if tail-head == cfg.Inflight {
					if !reap(ring[head%cfg.Inflight]) {
						return
					}
					head++
				}
				ring[tail%cfg.Inflight] = issue()
				tail++
			}
			for ; head < tail; head++ {
				if !reap(ring[head%cfg.Inflight]) {
					return
				}
			}
		}(si)
	}
	wg.Wait()

	out := ShardResult{
		Name: cfg.Name, Shards: cfg.Shards, RatioPct: cfg.RatioPct,
		Sessions: cfg.Sessions, Inflight: cfg.Inflight,
	}
	var single, cross []float64
	for _, r := range results {
		if r.err != nil {
			return out, r.err
		}
		out.Cmds += r.cmds
		out.CrossCmds += r.crossCmds
		out.Ops += r.ops
		single = append(single, r.singleLats...)
		cross = append(cross, r.crossLats...)
	}
	out.OpsPerSec = float64(out.Ops) / duration.Seconds()
	sort.Float64s(single)
	sort.Float64s(cross)
	pct := func(lats []float64, p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		return lats[int(p*float64(len(lats)-1))]
	}
	mean := func(lats []float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		var s float64
		for _, l := range lats {
			s += l
		}
		return s / float64(len(lats))
	}
	out.SingleP50us, out.SingleP99us = pct(single, 0.50), pct(single, 0.99)
	out.CrossP50us, out.CrossP99us = pct(cross, 0.50), pct(cross, 0.99)
	out.SingleMeanUS, out.CrossMeanUS = mean(single), mean(cross)
	if out.SingleMeanUS > 0 && out.CrossMeanUS > 0 {
		out.CrossOverhead = out.CrossMeanUS / out.SingleMeanUS
	}
	return out, nil
}

// RunShard runs the sharded-cluster sweep, printing one line per load
// point.
func RunShard(out io.Writer, cfgs []ShardConfig, duration, warmup time.Duration) ([]ShardResult, error) {
	var results []ShardResult
	for _, cfg := range cfgs {
		r, err := runShardConfig(cfg, duration, warmup)
		if err != nil {
			return results, fmt.Errorf("shard config %s: %w", cfg.Name, err)
		}
		fmt.Fprintf(out, "%-16s %d shard(s) cross=%2d%%  %9.0f ops/s  single p50=%6.0fµs p99=%7.0fµs  cross p50=%6.0fµs p99=%7.0fµs\n",
			r.Name, r.Shards, r.RatioPct, r.OpsPerSec, r.SingleP50us, r.SingleP99us, r.CrossP50us, r.CrossP99us)
		results = append(results, r)
	}
	return results, nil
}

// WriteShardJSON writes the results (and the headline 2-shard/1-shard
// scaling factor at 0% cross) to path in the BENCH_shard.json schema.
func WriteShardJSON(path string, results []ShardResult, duration time.Duration) error {
	rep := ShardReport{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		Go:         runtime.Version(),
		DurationMS: float64(duration.Milliseconds()),
		Sites:      3,
		Fsync:      "batched-2ms",
		Results:    results,
	}
	var one, two float64
	for _, r := range results {
		if r.RatioPct == 0 {
			switch r.Shards {
			case 1:
				one = r.OpsPerSec
			case 2:
				two = r.OpsPerSec
			}
		}
	}
	if one > 0 {
		rep.ScalingX = two / one
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
