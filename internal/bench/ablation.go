package bench

import (
	"fmt"
	"time"

	"tempo/internal/ids"
	"tempo/internal/metrics"
	"tempo/internal/tempo"
	"tempo/internal/topology"
	"tempo/internal/workload"
)

// AblationRow compares a Tempo design choice on/off.
type AblationRow struct {
	Name     string
	Variant  string
	Mean     time.Duration
	P99      time.Duration
	Treached float64
}

// AblationMBump measures the "faster stability" MBump optimization of
// Algorithm 3 on multi-partition commands: without it, the detached
// promises needed for cross-partition stability are generated two message
// delays later (via MCommit), raising latency.
func AblationMBump(o Options) []AblationRow {
	o = o.withDefaults()
	topo := topology.EC2Sharded(2)
	sites := []ids.SiteID{0, 1, 2}
	clients := o.clients(256)

	var rows []AblationRow
	tbl := metrics.NewTable("variant", "mean", "p99 (ms)")
	for _, disabled := range []bool{false, true} {
		p := TempoProto(1, tempo.Config{DisableMBump: disabled})
		wl := workload.NewYCSBT(10_000, 0.5, 0.5, newRng(o.Seed))
		res := run(p, topo, wl, clients, sites, nil, o)
		v := "mbump on"
		if disabled {
			v = "mbump off"
		}
		rows = append(rows, AblationRow{Name: "mbump", Variant: v, Mean: res.All.Mean(), P99: res.All.Percentile(99)})
		tbl.Row(v, ms(res.All.Mean()), ms(res.All.Percentile(99)))
	}
	fmt.Fprintf(o.Out, "Ablation — MBump (multi-partition faster stability)\n%s\n", tbl)
	return rows
}

// AblationPiggyback measures the §3.2 optimization of broadcasting the
// fast quorum's promises in MCommit: without it, stability waits for the
// periodic MPromises exchange.
func AblationPiggyback(o Options) []AblationRow {
	o = o.withDefaults()
	topo := topology.EC2(1)
	clients := o.clients(256)

	var rows []AblationRow
	tbl := metrics.NewTable("variant", "mean", "p99 (ms)")
	for _, disabled := range []bool{false, true} {
		// A coarse promise interval isolates the piggyback's effect:
		// with it on, the quorum's promises arrive with the commit; with
		// it off, stability waits for the next gossip round.
		p := TempoProto(1, tempo.Config{DisablePiggyback: disabled, PromiseInterval: 20 * time.Millisecond})
		wl := workload.NewMicrobench(0.02, 100, newRng(o.Seed))
		res := run(p, topo, wl, clients, nil, nil, o)
		v := "piggyback on"
		if disabled {
			v = "piggyback off"
		}
		rows = append(rows, AblationRow{Name: "piggyback", Variant: v, Mean: res.All.Mean(), P99: res.All.Percentile(99)})
		tbl.Row(v, ms(res.All.Mean()), ms(res.All.Percentile(99)))
	}
	fmt.Fprintf(o.Out, "Ablation — attached-promise piggybacking on MCommit (§3.2)\n%s\n", tbl)
	return rows
}

// AblationFaultTolerance sweeps f (and thus the fast-quorum size
// ⌊r/2⌋+f), showing the latency cost of tolerating more failures.
func AblationFaultTolerance(o Options) []AblationRow {
	o = o.withDefaults()
	clients := o.clients(256)

	var rows []AblationRow
	tbl := metrics.NewTable("variant", "mean", "p99 (ms)")
	for _, f := range []int{1, 2} {
		topo := topology.EC2(f)
		p := TempoProto(f, tempo.Config{})
		wl := workload.NewMicrobench(0.02, 100, newRng(o.Seed))
		res := run(p, topo, wl, clients, nil, nil, o)
		v := fmt.Sprintf("f=%d (fast quorum %d)", f, topology.TempoFastQuorumSize(5, f))
		rows = append(rows, AblationRow{Name: "fault-tolerance", Variant: v, Mean: res.All.Mean(), P99: res.All.Percentile(99)})
		tbl.Row(v, ms(res.All.Mean()), ms(res.All.Percentile(99)))
	}
	fmt.Fprintf(o.Out, "Ablation — fault-tolerance level f\n%s\n", tbl)
	return rows
}
