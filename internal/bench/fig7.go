package bench

import (
	"fmt"
	"time"

	"tempo/internal/fpaxos"
	"tempo/internal/metrics"
	"tempo/internal/tempo"
	"tempo/internal/topology"
	"tempo/internal/workload"
)

// Fig7Point is one (protocol, load) measurement of Figure 7: throughput
// vs latency as load grows, 4KB payloads.
type Fig7Point struct {
	Protocol       string
	ConflictRate   float64
	ClientsPerSite int
	Throughput     float64 // ops per simulated second
	Mean           time.Duration
	P99            time.Duration
	CPUUtil        float64
	ExecUtil       float64
	NetUtil        float64
}

// fig7Loads is the paper's client sweep (32..20480 per site), thinned.
var fig7Loads = []int{32, 128, 512, 2048, 8192, 20480}

// Fig7 regenerates Figure 7: throughput and latency under increasing
// load at 2% (top) and 10% (bottom) conflicts, with the utilization
// heatmap data for the 2% runs.
//
// Paper expectations: FPaxos saturates first (leader bottleneck,
// unaffected by conflicts); Atlas loses 36-48% of throughput when
// conflicts rise to 10% (dependency-graph execution bottleneck); Caesar*
// degrades even more; Tempo delivers the highest throughput, independent
// of the conflict rate and of f.
func Fig7(o Options) []Fig7Point {
	o = o.withDefaults()
	topo1 := topology.EC2(1)
	topo2 := topology.EC2(2)

	protos := []struct {
		p    Protocol
		topo *topology.Topology
	}{
		{TempoProto(1, tempo.Config{PromiseInterval: gossip(o)}), topo1},
		{TempoProto(2, tempo.Config{PromiseInterval: gossip(o)}), topo2},
		{AtlasProto(1), topo1},
		{AtlasProto(2), topo2},
		{FPaxosProto(1, fpaxos.Config{}), topo1},
		{FPaxosProto(2, fpaxos.Config{}), topo2},
		{CaesarProto(true), topo2}, // Caesar*: execute on commit
	}

	var points []Fig7Point
	for _, rho := range []float64{0.02, 0.10} {
		tbl := metrics.NewTable("protocol", "clients/site", "Kops/s", "mean", "p99 (ms)", "cpu%", "exec%", "net%")
		for _, pc := range protos {
			for _, load := range fig7Loads {
				clients := o.clients(load)
				wl := workload.NewMicrobench(rho, 4096, newRng(o.Seed))
				res := run(pc.p, pc.topo, wl, clients, nil, pc.p.Cost, o)
				pt := Fig7Point{
					Protocol:       pc.p.Name,
					ConflictRate:   rho,
					ClientsPerSite: load,
					Throughput:     res.Throughput,
					Mean:           res.All.Mean(),
					P99:            res.All.Percentile(99),
					CPUUtil:        res.CPUUtil,
					ExecUtil:       res.ExecUtil,
					NetUtil:        res.NetUtil,
				}
				points = append(points, pt)
				tbl.Row(pc.p.Name, fmt.Sprint(load),
					fmt.Sprintf("%.1f", pt.Throughput/1000),
					ms(pt.Mean), ms(pt.P99),
					fmt.Sprintf("%.0f", pt.CPUUtil*100),
					fmt.Sprintf("%.0f", pt.ExecUtil*100),
					fmt.Sprintf("%.0f", pt.NetUtil*100))
			}
		}
		fmt.Fprintf(o.Out, "Figure 7 — throughput/latency sweep, %.0f%% conflicts, 4KB payload (clients scaled 1/%d)\n%s\n",
			rho*100, o.Scale, tbl)
	}
	return points
}

// MaxThroughput returns the best throughput a protocol achieved across
// the sweep at the given conflict rate.
func MaxThroughput(points []Fig7Point, protocol string, rho float64) float64 {
	best := 0.0
	for _, pt := range points {
		if pt.Protocol == protocol && pt.ConflictRate == rho && pt.Throughput > best {
			best = pt.Throughput
		}
	}
	return best
}
