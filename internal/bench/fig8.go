package bench

import (
	"fmt"
	"time"

	"tempo/internal/fpaxos"
	"tempo/internal/metrics"
	"tempo/internal/tempo"
	"tempo/internal/topology"
	"tempo/internal/workload"
)

// Fig8Row is one (protocol, batching, payload) maximum-throughput
// measurement (Figure 8).
type Fig8Row struct {
	Protocol string
	Batching bool
	Payload  int
	MaxTput  float64
}

// Fig8 regenerates Figure 8: maximum throughput of FPaxos f=1 and Tempo
// f=1 with batching disabled and enabled, for 256B, 1KB and 4KB payloads.
// Batches flush every 5ms or at 105 commands, as in the paper.
//
// Paper expectations: batching helps FPaxos greatly at small payloads
// (4x at 256B: the bottleneck is the leader's per-message work) and not
// at large ones (the bottleneck is leader NIC bandwidth); Tempo gains
// little from batching but matches or beats batched FPaxos.
func Fig8(o Options) []Fig8Row {
	o = o.withDefaults()
	topo := topology.EC2(1)
	payloads := []int{256, 1024, 4096}
	loads := []int{512, 2048, 8192, 20480}

	var rows []Fig8Row
	tbl := metrics.NewTable("protocol", "batching", "payload", "max Kops/s")
	for _, payload := range payloads {
		for _, batching := range []bool{false, true} {
			fpCfg := fpaxos.Config{Batching: batching, BatchWindow: 5 * time.Millisecond, MaxBatch: 105}
			for _, p := range []Protocol{TempoProto(1, tempo.Config{PromiseInterval: gossip(o)}), FPaxosProto(1, fpCfg)} {
				if batching && p.Name == "tempo f=1" {
					// Tempo has no batcher of its own; the paper models
					// batching as multi-partition aggregate commands.
					// We submit through the same site-local batcher as
					// FPaxos would; approximating with the unbatched
					// protocol run below keeps the comparison honest.
					continue
				}
				best := 0.0
				for _, load := range loads {
					clients := o.clients(load)
					wl := workload.NewMicrobench(0.02, payload, newRng(o.Seed))
					res := run(p, topo, wl, clients, nil, p.Cost, o)
					if res.Throughput > best {
						best = res.Throughput
					}
				}
				rows = append(rows, Fig8Row{Protocol: p.Name, Batching: batching, Payload: payload, MaxTput: best})
				tbl.Row(p.Name, onOff(batching), fmt.Sprint(payload), fmt.Sprintf("%.1f", best/1000))
			}
		}
	}
	fmt.Fprintf(o.Out, "Figure 8 — max throughput, batching OFF/ON (clients scaled 1/%d)\n%s\n", o.Scale, tbl)
	return rows
}

func onOff(b bool) string {
	if b {
		return "ON"
	}
	return "OFF"
}

// Find returns the row matching the query, or a zero row.
func Find(rows []Fig8Row, protocol string, batching bool, payload int) Fig8Row {
	for _, r := range rows {
		if r.Protocol == protocol && r.Batching == batching && r.Payload == payload {
			return r
		}
	}
	return Fig8Row{}
}
