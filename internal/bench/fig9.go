package bench

import (
	"fmt"
	"math/rand"

	"tempo/internal/ids"
	"tempo/internal/metrics"
	"tempo/internal/tempo"
	"tempo/internal/topology"
	"tempo/internal/workload"
)

// Fig9Row is one partial-replication maximum-throughput measurement
// (Figure 9): YCSB+T over 2/4/6 shards, zipf 0.5/0.7.
type Fig9Row struct {
	Protocol   string
	Shards     int
	Zipf       float64
	WriteRatio float64
	MaxTput    float64
}

// Fig9 regenerates Figure 9: Tempo vs Janus* under YCSB+T. Each shard is
// replicated at 3 sites; transactions access two zipfian keys. Janus* is
// measured at w ∈ {0%, 5%, 50%} writes (YCSB C/B/A); Tempo does not
// distinguish reads from writes, so it has a single series.
//
// Paper expectations: Tempo matches Janus*'s best case (w=0%) and is
// unaffected by contention; Janus* loses 25-56% at zipf 0.5 and up to
// 87-94% at zipf 0.7 as the write ratio grows; throughput scales with
// the number of shards for Tempo.
func Fig9(o Options) []Fig9Row {
	o = o.withDefaults()
	keysPerShard := 100_000 / o.Scale
	loads := []int{2048, 8192, 32768}
	sites := []ids.SiteID{0, 1, 2}

	var rows []Fig9Row
	tbl := metrics.NewTable("shards", "zipf", "protocol", "writes", "max Kops/s")
	for _, shards := range []int{2, 4, 6} {
		topo := topology.EC2Sharded(shards)
		keys := keysPerShard * shards
		for _, zipf := range []float64{0.5, 0.7} {
			type series struct {
				p Protocol
				w float64
			}
			var all []series
			all = append(all, series{TempoProto(1, tempo.Config{PromiseInterval: gossip(o)}), 0.5})
			for _, w := range []float64{0, 0.05, 0.5} {
				all = append(all, series{JanusProto(), w})
			}
			for _, sr := range all {
				best := 0.0
				for _, load := range loads {
					clients := o.clients(load)
					wl := workload.NewYCSBT(keys, zipf, sr.w, newRng(o.Seed))
					res := run(sr.p, topo, wl, clients, sites, sr.p.Cost, o)
					if res.Throughput > best {
						best = res.Throughput
					}
				}
				name := sr.p.Name
				rows = append(rows, Fig9Row{
					Protocol: name, Shards: shards, Zipf: zipf,
					WriteRatio: sr.w, MaxTput: best,
				})
				tbl.Row(fmt.Sprint(shards), fmt.Sprintf("%.1f", zipf), name,
					fmt.Sprintf("%.0f%%", sr.w*100), fmt.Sprintf("%.1f", best/1000))
			}
		}
	}
	fmt.Fprintf(o.Out, "Figure 9 — partial replication max throughput, YCSB+T (scaled 1/%d)\n%s\n", o.Scale, tbl)
	return rows
}

// FindFig9 returns the matching row's throughput (0 if absent).
func FindFig9(rows []Fig9Row, protocol string, shards int, zipf, w float64) float64 {
	for _, r := range rows {
		if r.Protocol == protocol && r.Shards == shards && r.Zipf == zipf && r.WriteRatio == w {
			return r.MaxTput
		}
	}
	return 0
}

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
