package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"tempo/client"
	"tempo/internal/chaos"
	"tempo/internal/cluster"
	"tempo/internal/command"
	"tempo/internal/ids"
	"tempo/internal/psmr"
	"tempo/internal/tempo"
	"tempo/internal/topology"
)

// The WAN experiment (`bench -exp wan`): real durable 3-region psmr
// deployments on loopback, with the chaos link shaper emulating the
// named multi-region profiles — the paper's EC2 ring, an asymmetric
// lossy transatlantic pair, a metro triangle, a flapping link, a
// slow-fsync site — and clients co-located with their home region (the
// client hop stays unshaped; only inter-site consensus traffic pays the
// WAN). Each profile gets its own cluster boot, warmup, and measured
// window; BENCH_wan.json records throughput plus client-observed
// latency percentiles per profile, the latency/throughput curve the
// chaos runbook and EXPERIMENTS.md cite.

// WANConfig is one profile run of the WAN experiment.
type WANConfig struct {
	// Profile names a chaos profile (chaos.Names).
	Profile  string
	Sessions int
	Inflight int
	BatchOps int
	Window   time.Duration
}

// WANResult is one measured profile in BENCH_wan.json.
type WANResult struct {
	Profile     string  `json:"profile"`
	Description string  `json:"description"`
	Sessions    int     `json:"sessions"`
	Inflight    int     `json:"inflight"`
	Ops         int     `json:"ops"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	P50ms       float64 `json:"p50_ms"`
	P90ms       float64 `json:"p90_ms"`
	P99ms       float64 `json:"p99_ms"`
	// ShapedDelivered/ShapedDropped count inter-site messages the
	// shaper carried and shed (loss + partitions) during the run.
	ShapedDelivered uint64 `json:"shaped_delivered"`
	ShapedDropped   uint64 `json:"shaped_dropped"`
}

// WANReport is the schema of BENCH_wan.json.
type WANReport struct {
	Generated  string      `json:"generated"`
	Go         string      `json:"go"`
	DurationMS float64     `json:"duration_ms"`
	Sites      int         `json:"sites"`
	Fsync      string      `json:"fsync"`
	Results    []WANResult `json:"results"`
}

// DefaultWANConfigs sweeps the named profiles from the loopback
// baseline out to the paper's EC2 ring, plus the standing-fault
// profiles (flapping link, slow-fsync site).
func DefaultWANConfigs() []WANConfig {
	var cfgs []WANConfig
	for _, p := range []string{"lan", "metro", "ring", "transatlantic", "flap", "slow-fsync"} {
		cfgs = append(cfgs, WANConfig{
			Profile: p, Sessions: 3, Inflight: 32,
			BatchOps: 64, Window: 200 * time.Microsecond,
		})
	}
	return cfgs
}

// startWANCluster boots a durable 3-region psmr deployment shaped by
// the profile: one shared shaper across the in-process sites, the
// profile's fsync stall on its slow site, and its standing faults
// running. The returned cleanup stops faults, closes the groups, then
// the shaper.
func startWANCluster(p chaos.Profile, batchOps int, window time.Duration) (*topology.Topology, map[ids.ProcessID]string, *cluster.Shaper, func(), error) {
	const sites = 3
	names := make([]string, sites)
	for i := range names {
		names[i] = fmt.Sprintf("s%d", i)
	}
	rtt := make([][]time.Duration, sites)
	for i := range rtt {
		rtt[i] = make([]time.Duration, sites)
	}
	topo, err := topology.New(topology.Config{SiteNames: names, RTT: rtt, NumShards: 1, F: 1})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	base, err := os.MkdirTemp("", "tempo-wanbench-*")
	if err != nil {
		return nil, nil, nil, nil, err
	}
	sh := chaos.NewShaper(topo, p)
	stopFaults := p.StartFaults(sh, topo)

	siteAddrs := make(map[ids.SiteID]string)
	lns := make(map[ids.SiteID]net.Listener)
	for _, site := range topo.Sites() {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			stopFaults()
			sh.Close()
			os.RemoveAll(base)
			return nil, nil, nil, nil, err
		}
		lns[site.ID] = ln
		siteAddrs[site.ID] = ln.Addr().String()
	}
	groups := make([]*psmr.Group, sites)
	errs := make([]error, sites)
	var wg sync.WaitGroup
	for i, site := range topo.Sites() {
		wg.Add(1)
		go func(i int, id ids.SiteID) {
			defer wg.Done()
			groups[i], errs[i] = psmr.StartListener(psmr.Config{
				Topo:      topo,
				Site:      id,
				SiteAddrs: siteAddrs,
				// Lossy profiles (transatlantic) rely on resend: a dropped
				// inter-site message must be retransmitted well inside the
				// client deadline, but the resend interval must also clear
				// the ring profile's ~360ms quorum round trips.
				Tempo: tempo.Config{
					PromiseInterval: time.Millisecond,
					RecoveryTimeout: time.Second,
				},
				BatchOps:    batchOps,
				BatchWindow: window,
				DataDir:     fmt.Sprintf("%s/site-%d", base, id),
				FsyncDelay:  p.FsyncDelayFor(id),
				Shaper:      sh,
			}, lns[id])
		}(i, site.ID)
	}
	wg.Wait()
	cleanup := func() {
		stopFaults()
		for _, g := range groups {
			if g != nil {
				g.Close()
			}
		}
		sh.Close()
		os.RemoveAll(base)
	}
	for _, err := range errs {
		if err != nil {
			cleanup()
			return nil, nil, nil, nil, err
		}
	}
	addrs, _, err := psmr.ProcessAddrs(topo, siteAddrs)
	if err != nil {
		cleanup()
		return nil, nil, nil, nil, err
	}
	return topo, addrs, sh, cleanup, nil
}

// runWANConfig drives one profile: boot the shaped durable deployment,
// run Sessions closed-loop pipelined sessions each homed on one region,
// and sample client-observed latencies inside the measured window.
func runWANConfig(cfg WANConfig, duration, warmup time.Duration) (WANResult, error) {
	p, err := chaos.Lookup(cfg.Profile)
	if err != nil {
		return WANResult{}, err
	}
	topo, addrs, sh, cleanup, err := startWANCluster(p, cfg.BatchOps, cfg.Window)
	if err != nil {
		return WANResult{}, err
	}
	defer cleanup()

	type sessResult struct {
		ops  int
		lats []float64 // ms
		err  error
	}
	results := make([]sessResult, cfg.Sessions)
	start := time.Now()
	warmEnd := start.Add(warmup)
	stop := warmEnd.Add(duration)
	var wg sync.WaitGroup
	for si := 0; si < cfg.Sessions; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			res := &results[si]
			site := ids.SiteID(si % len(topo.Sites()))
			sess, err := client.New(client.Config{Addrs: addrs, Topo: topo, Site: site})
			if err != nil {
				res.err = err
				return
			}
			defer sess.Close()
			ctx := context.Background()
			key := command.Key(fmt.Sprintf("wan-%d", si))
			type issued struct {
				f  *client.Future
				at time.Time
			}
			ring := make([]issued, cfg.Inflight)
			head, tail := 0, 0
			reap := func(it issued) bool {
				if _, err := it.f.Wait(ctx); err != nil {
					res.err = err
					return false
				}
				now := time.Now()
				if now.After(warmEnd) && !now.After(stop) {
					res.ops++
					res.lats = append(res.lats, float64(now.Sub(it.at).Nanoseconds())/1e6)
				}
				return true
			}
			for time.Now().Before(stop) {
				if tail-head == cfg.Inflight {
					if !reap(ring[head%cfg.Inflight]) {
						return
					}
					head++
				}
				ring[tail%cfg.Inflight] = issued{
					f:  sess.Do(ctx, command.Op{Kind: command.Put, Key: key, Value: []byte("x")}),
					at: time.Now(),
				}
				tail++
			}
			for ; head < tail; head++ {
				if !reap(ring[head%cfg.Inflight]) {
					return
				}
			}
		}(si)
	}
	wg.Wait()

	out := WANResult{
		Profile:     cfg.Profile,
		Description: p.Description,
		Sessions:    cfg.Sessions,
		Inflight:    cfg.Inflight,
	}
	var lats []float64
	for _, r := range results {
		if r.err != nil {
			return out, r.err
		}
		out.Ops += r.ops
		lats = append(lats, r.lats...)
	}
	out.OpsPerSec = float64(out.Ops) / duration.Seconds()
	sort.Float64s(lats)
	pct := func(q float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		return lats[int(q*float64(len(lats)-1))]
	}
	out.P50ms, out.P90ms, out.P99ms = pct(0.50), pct(0.90), pct(0.99)
	st := sh.State()
	out.ShapedDelivered, out.ShapedDropped = st.Delivered, st.Dropped
	return out, nil
}

// RunWAN runs the WAN profile sweep, printing one line per profile.
func RunWAN(out io.Writer, cfgs []WANConfig, duration, warmup time.Duration) ([]WANResult, error) {
	var results []WANResult
	for _, cfg := range cfgs {
		r, err := runWANConfig(cfg, duration, warmup)
		if err != nil {
			return results, fmt.Errorf("wan profile %s: %w", cfg.Profile, err)
		}
		fmt.Fprintf(out, "%-14s %d sess x %2d inflight  %8.0f ops/s  p50=%7.1fms p90=%7.1fms p99=%7.1fms  shaped=%d dropped=%d\n",
			r.Profile, r.Sessions, r.Inflight, r.OpsPerSec, r.P50ms, r.P90ms, r.P99ms, r.ShapedDelivered, r.ShapedDropped)
		results = append(results, r)
	}
	return results, nil
}

// WriteWANJSON writes the results to path in the BENCH_wan.json schema.
func WriteWANJSON(path string, results []WANResult, duration time.Duration) error {
	rep := WANReport{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		Go:         runtime.Version(),
		DurationMS: float64(duration.Milliseconds()),
		Sites:      3,
		Fsync:      "batched-2ms",
		Results:    results,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
