package janus

import (
	"fmt"
	"testing"
	"time"

	"tempo/internal/command"
	"tempo/internal/ids"
	"tempo/internal/proto"
	"tempo/internal/testnet"
	"tempo/internal/topology"
)

func TestJanusCrossShardTransaction(t *testing.T) {
	// 3 sites, 2 shards, every site replicating both shards (the §6.4
	// geometry scaled down).
	names := []string{"a", "b", "c"}
	rtt := make([][]time.Duration, 3)
	for i := range rtt {
		rtt[i] = make([]time.Duration, 3)
		for j := range rtt[i] {
			if i != j {
				rtt[i][j] = 2 * time.Millisecond
			}
		}
	}
	topo, err := topology.New(topology.Config{SiteNames: names, RTT: rtt, NumShards: 2, F: 1})
	if err != nil {
		t.Fatal(err)
	}
	var reps []proto.Replica
	for _, pi := range topo.Processes() {
		reps = append(reps, New(pi.ID, topo, Config{}))
	}
	net := testnet.New(reps...)

	// A transaction spanning both shards.
	var k0, k1 command.Key
	for i := 0; k0 == "" || k1 == ""; i++ {
		k := command.Key(fmt.Sprintf("key%d", i))
		if topo.ShardOf(k) == 0 && k0 == "" {
			k0 = k
		} else if topo.ShardOf(k) == 1 && k1 == "" {
			k1 = k
		}
	}
	submitter := topo.ProcessAt(0, 0)
	cmd := command.New(ids.Dot{Source: submitter, Seq: 1},
		command.Op{Kind: command.Put, Key: k0, Value: []byte("v")},
		command.Op{Kind: command.Put, Key: k1, Value: []byte("v")},
	)
	net.Submit(submitter, cmd)
	net.Drain(0)

	executed := net.DrainExecuted()
	// Every process of both shards executes it (6 processes).
	if len(executed) != 6 {
		t.Fatalf("executed at %d processes, want 6", len(executed))
	}
}
