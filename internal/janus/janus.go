// Package janus constructs the Janus* baseline of the paper (§6): Janus
// (Mu et al., OSDI 2016) generalizes EPaxos to partial replication; the
// paper's improved variant ("Janus*") is built on Atlas instead, giving
// fast quorums of size ⌊r/2⌋+f and a more permissive fast-path condition.
//
// Janus* is exactly the multi-shard Atlas of internal/epaxos with
// non-genuine commit broadcast: dependency graphs reference commands of
// other shards, so every commit is disseminated to every process in the
// system — the cross-shard traffic that costs Janus* its scalability
// (Figure 9).
package janus

import (
	"tempo/internal/epaxos"
	"tempo/internal/ids"
	"tempo/internal/topology"
)

// Config tunes a Janus* replica.
type Config struct {
	// ExecuteOnCommit measures the commit protocol alone (throughput
	// harness only).
	ExecuteOnCommit bool
}

// New creates a Janus* replica: Atlas with non-genuine commits.
func New(id ids.ProcessID, topo *topology.Topology, cfg Config) *epaxos.Process {
	return epaxos.New(id, topo, epaxos.Config{
		Variant:          epaxos.VariantAtlas,
		NonGenuineCommit: true,
		ExecuteOnCommit:  cfg.ExecuteOnCommit,
	})
}
