// Package metrics provides the latency/throughput instrumentation used by
// the evaluation harness: sample-based histograms with percentile queries
// and throughput accounting with warmup exclusion.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Histogram collects duration samples. The zero value is ready to use.
type Histogram struct {
	samples []time.Duration
	sorted  bool
}

// Add records a sample.
func (h *Histogram) Add(d time.Duration) {
	h.samples = append(h.samples, d)
	h.sorted = false
}

// Merge adds all samples of o.
func (h *Histogram) Merge(o *Histogram) {
	h.samples = append(h.samples, o.samples...)
	h.sorted = false
}

// Count returns the number of samples.
func (h *Histogram) Count() int { return len(h.samples) }

func (h *Histogram) sort() {
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
}

// Percentile returns the p-th percentile (0 < p <= 100) using
// nearest-rank; it returns 0 on an empty histogram.
func (h *Histogram) Percentile(p float64) time.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	h.sort()
	rank := int(math.Ceil(p / 100 * float64(len(h.samples))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(h.samples) {
		rank = len(h.samples)
	}
	return h.samples[rank-1]
}

// Mean returns the average sample, or 0 if empty.
func (h *Histogram) Mean() time.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range h.samples {
		sum += s
	}
	return sum / time.Duration(len(h.samples))
}

// Min returns the smallest sample, or 0 if empty.
func (h *Histogram) Min() time.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	h.sort()
	return h.samples[0]
}

// Max returns the largest sample, or 0 if empty.
func (h *Histogram) Max() time.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	h.sort()
	return h.samples[len(h.samples)-1]
}

// Summary renders mean and key percentiles.
func (h *Histogram) Summary() string {
	if h.Count() == 0 {
		return "no samples"
	}
	return fmt.Sprintf("n=%d mean=%s p50=%s p95=%s p99=%s p99.9=%s max=%s",
		h.Count(),
		round(h.Mean()), round(h.Percentile(50)), round(h.Percentile(95)),
		round(h.Percentile(99)), round(h.Percentile(99.9)), round(h.Max()))
}

func round(d time.Duration) time.Duration { return d.Round(100 * time.Microsecond) }

// Throughput accounts completed operations over a measurement window.
type Throughput struct {
	completed uint64
	start     time.Duration
	end       time.Duration
}

// NewThroughput creates an accounting window starting at start.
func NewThroughput(start time.Duration) *Throughput {
	return &Throughput{start: start}
}

// Done records n completed operations at time now.
func (t *Throughput) Done(now time.Duration, n int) {
	t.completed += uint64(n)
	if now > t.end {
		t.end = now
	}
}

// Completed returns the operations counted.
func (t *Throughput) Completed() uint64 { return t.completed }

// OpsPerSec returns the completion rate over [start, end].
func (t *Throughput) OpsPerSec() float64 {
	window := t.end - t.start
	if window <= 0 {
		return 0
	}
	return float64(t.completed) / window.Seconds()
}

// Table is a minimal fixed-width table printer for the experiment
// harness's paper-style outputs.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// Row appends a row.
func (t *Table) Row(cells ...string) { t.rows = append(t.rows, cells) }

// String renders the table.
func (t *Table) String() string {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}
