package metrics

import (
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Server-side instrumentation: lock-free counters for serving hot paths
// (cluster.Node), a rate tracker for ops/s style readings, and the JSON
// HTTP handler behind tempo-server's -metrics-addr endpoint.

// Counter is a monotonically increasing, concurrency-safe counter.
// The zero value is ready to use.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// RateTracker turns successive counter observations into per-second
// rates: each named reading remembers its previous (value, time) pair.
// Safe for concurrent use.
type RateTracker struct {
	mu     sync.Mutex
	last   map[string]uint64
	lastAt map[string]time.Time
}

// NewRateTracker creates an empty tracker.
func NewRateTracker() *RateTracker {
	return &RateTracker{last: make(map[string]uint64), lastAt: make(map[string]time.Time)}
}

// Rate records the current value of the named counter and returns the
// per-second rate since the previous observation (0 on the first one).
func (r *RateTracker) Rate(name string, cur uint64) float64 {
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	prev, ok := r.last[name]
	prevAt := r.lastAt[name]
	r.last[name], r.lastAt[name] = cur, now
	if !ok || cur < prev {
		return 0
	}
	window := now.Sub(prevAt).Seconds()
	if window <= 0 {
		return 0
	}
	return float64(cur-prev) / window
}

// JSONHandler serves the value returned by snapshot as indented JSON —
// the shape of tempo-server's metrics endpoint. snapshot runs per
// request and must be safe for concurrent use.
func JSONHandler(snapshot func() any) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		data, err := json.MarshalIndent(snapshot(), "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(append(data, '\n'))
	})
}
