package metrics

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				c.Add(2)
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 8*1000*3 {
		t.Fatalf("counter = %d, want %d", got, 8*1000*3)
	}
}

func TestRateTracker(t *testing.T) {
	r := NewRateTracker()
	if rate := r.Rate("x", 100); rate != 0 {
		t.Fatalf("first observation rate = %v, want 0", rate)
	}
	time.Sleep(20 * time.Millisecond)
	rate := r.Rate("x", 300)
	if rate <= 0 {
		t.Fatalf("rate = %v, want > 0", rate)
	}
	// 200 ops over >=20ms: rate must be at most 200/0.02 = 10000/s.
	if rate > 10000 {
		t.Fatalf("rate = %v, implausibly high", rate)
	}
	// A counter reset (restart) must not yield a negative/huge rate.
	if rate := r.Rate("x", 10); rate != 0 {
		t.Fatalf("rate after reset = %v, want 0", rate)
	}
}

func TestJSONHandler(t *testing.T) {
	h := JSONHandler(func() any {
		return map[string]int{"ops": 42}
	})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var got map[string]int
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got["ops"] != 42 {
		t.Fatalf("body = %v", got)
	}
}
