package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestPercentiles(t *testing.T) {
	h := &Histogram{}
	for i := 1; i <= 100; i++ {
		h.Add(time.Duration(i) * time.Millisecond)
	}
	cases := map[float64]time.Duration{
		50:  50 * time.Millisecond,
		95:  95 * time.Millisecond,
		99:  99 * time.Millisecond,
		100: 100 * time.Millisecond,
	}
	for p, want := range cases {
		if got := h.Percentile(p); got != want {
			t.Errorf("p%.0f = %v, want %v", p, got, want)
		}
	}
	if h.Min() != time.Millisecond || h.Max() != 100*time.Millisecond {
		t.Error("min/max wrong")
	}
	if h.Mean() != 50500*time.Microsecond {
		t.Errorf("mean = %v", h.Mean())
	}
}

func TestEmptyHistogram(t *testing.T) {
	h := &Histogram{}
	if h.Percentile(99) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Error("empty histogram should return zeros")
	}
	if h.Summary() != "no samples" {
		t.Error("empty summary")
	}
}

func TestMerge(t *testing.T) {
	a, b := &Histogram{}, &Histogram{}
	a.Add(time.Millisecond)
	b.Add(3 * time.Millisecond)
	a.Merge(b)
	if a.Count() != 2 || a.Max() != 3*time.Millisecond {
		t.Error("merge lost samples")
	}
}

func TestThroughput(t *testing.T) {
	tp := NewThroughput(time.Second)
	tp.Done(2*time.Second, 100)
	tp.Done(3*time.Second, 100)
	if tp.Completed() != 200 {
		t.Fatalf("completed = %d", tp.Completed())
	}
	if got := tp.OpsPerSec(); got != 100 {
		t.Fatalf("ops/s = %v, want 100", got)
	}
}

func TestThroughputEmptyWindow(t *testing.T) {
	tp := NewThroughput(time.Second)
	if tp.OpsPerSec() != 0 {
		t.Error("empty window should be 0")
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("proto", "p99")
	tb.Row("tempo", "280ms")
	tb.Row("atlas", "586ms")
	s := tb.String()
	if !strings.Contains(s, "tempo") || !strings.Contains(s, "586ms") {
		t.Errorf("table missing cells:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 {
		t.Errorf("want header+sep+2 rows, got %d lines", len(lines))
	}
}
