package ids

import (
	"testing"
	"testing/quick"
)

func TestDotLess(t *testing.T) {
	cases := []struct {
		a, b Dot
		want bool
	}{
		{Dot{1, 1}, Dot{1, 2}, true},
		{Dot{1, 2}, Dot{1, 1}, false},
		{Dot{1, 9}, Dot{2, 1}, true},
		{Dot{2, 1}, Dot{1, 9}, false},
		{Dot{1, 1}, Dot{1, 1}, false},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.want {
			t.Errorf("%v.Less(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDotIsZero(t *testing.T) {
	if !(Dot{}).IsZero() {
		t.Error("zero Dot should be zero")
	}
	if (Dot{1, 0}).IsZero() || (Dot{0, 1}).IsZero() {
		t.Error("non-zero Dot reported zero")
	}
}

func TestInitialBallot(t *testing.T) {
	for rank := Rank(1); rank <= 5; rank++ {
		b := InitialBallot(rank)
		if BallotLeader(b, 5) != rank {
			t.Errorf("rank %d: initial ballot %d owned by %d", rank, b, BallotLeader(b, 5))
		}
	}
}

func TestNextBallotPaperFormula(t *testing.T) {
	// With r = 5, a process with rank 2 recovering from ballot 0 picks
	// 2 + 5*(floor((0-1)/5)+1)... the paper's formula with bal=0 is taken
	// as prev=0, so the first recovery ballot is rank + r.
	if got := NextBallot(2, 0, 5); got != 7 {
		t.Errorf("NextBallot(2, 0, 5) = %d, want 7", got)
	}
	if got := NextBallot(2, 7, 5); got != 12 {
		t.Errorf("NextBallot(2, 7, 5) = %d, want 12", got)
	}
	// Recovering over a ballot owned by someone else: the paper's formula
	// jumps to the next round of ballots, 3 + 5*(floor(6/5)+1) = 13.
	if got := NextBallot(3, 7, 5); got != 13 {
		t.Errorf("NextBallot(3, 7, 5) = %d, want 13", got)
	}
}

func TestNextBallotProperties(t *testing.T) {
	f := func(rank8 uint8, cur16 uint16, r8 uint8) bool {
		r := int(r8%7) + 1
		rank := Rank(int(rank8)%r + 1)
		cur := Ballot(cur16)
		b := NextBallot(rank, cur, r)
		// Strictly larger than cur, owned by rank, and beyond the
		// initial-ballot range.
		return b > cur && BallotLeader(b, r) == rank && uint64(b) > uint64(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestBallotLeaderRoundRobin(t *testing.T) {
	r := 3
	want := []Rank{1, 2, 3, 1, 2, 3, 1, 2, 3}
	for i, w := range want {
		b := Ballot(i + 1)
		if got := BallotLeader(b, r); got != w {
			t.Errorf("BallotLeader(%d, %d) = %d, want %d", b, r, got, w)
		}
	}
	if BallotLeader(0, r) != 0 {
		t.Error("ballot 0 should have no leader")
	}
}
