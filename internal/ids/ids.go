// Package ids defines the identifier types shared by every protocol in the
// repository: process, site and shard identifiers, command identifiers
// (dots), and the round-robin ballot arithmetic used by Tempo's recovery
// protocol (Algorithm 5 of the paper).
package ids

import "fmt"

// ProcessID identifies a process globally (across all shards). Process ids
// are dense, starting at 1; 0 is reserved as "no process".
type ProcessID uint32

// ShardID identifies a shard: a group of partitions replicated together by
// the same set of processes. In the full-replication experiments there is a
// single shard 0.
type ShardID uint32

// SiteID identifies a geographic site (an EC2 region in the paper's
// evaluation). Each site hosts one process per shard.
type SiteID uint32

// Rank is the index of a process within its shard's replica group,
// 1-based as in the paper (ballot i is reserved for the initial
// coordinator i, and ballots larger than r for recovery).
type Rank uint32

// Dot is a unique command identifier: the process that created it plus a
// per-process sequence number. Dots double as the identifier space D of
// the paper.
type Dot struct {
	Source ProcessID
	Seq    uint64
}

// IsZero reports whether d is the zero Dot (no command).
func (d Dot) IsZero() bool { return d.Source == 0 && d.Seq == 0 }

// Less orders dots lexicographically by (Source, Seq). It is used only to
// break ties between equal timestamps, so any total order works as long as
// every process applies the same one.
func (d Dot) Less(o Dot) bool {
	if d.Source != o.Source {
		return d.Source < o.Source
	}
	return d.Seq < o.Seq
}

// String renders the dot as "source.seq".
func (d Dot) String() string { return fmt.Sprintf("%d.%d", d.Source, d.Seq) }

// Ballot is a consensus ballot number. Ballot 0 means "no ballot"; ballot
// b in 1..r is reserved for the initial coordinator with rank b; higher
// ballots are allocated round-robin to ranks for recovery.
type Ballot uint64

// InitialBallot is the ballot owned by the initial coordinator of a
// command at a process with the given rank.
func InitialBallot(rank Rank) Ballot { return Ballot(rank) }

// NextBallot returns the smallest ballot larger than cur that is owned by
// rank, following the paper's formula b = i + r*(floor((bal-1)/r) + 1).
func NextBallot(rank Rank, cur Ballot, r int) Ballot {
	var prev uint64
	if cur > 0 {
		prev = (uint64(cur) - 1) / uint64(r)
	}
	b := uint64(rank) + uint64(r)*(prev+1)
	for b <= uint64(cur) {
		b += uint64(r)
	}
	return Ballot(b)
}

// BallotLeader returns the rank that owns ballot b in a group of r
// processes: bal_leader(b) = b - r*floor((b-1)/r).
func BallotLeader(b Ballot, r int) Rank {
	if b == 0 {
		return 0
	}
	return Rank(uint64(b) - uint64(r)*((uint64(b)-1)/uint64(r)))
}
