// Package depgraph implements the dependency-graph execution mechanism of
// EPaxos-family protocols (EPaxos, Atlas, Janus): committed commands carry
// explicit dependency sets, execution finds strongly connected components
// (Tarjan) of the committed graph and executes components in reverse
// topological order, commands within a component ordered by (seq, id).
//
// A component may only execute once every command it (transitively)
// depends on is committed — this is the mechanism whose unbounded chains
// cause the high tail latencies the paper measures (§3.3, Appendix D).
package depgraph

import (
	"slices"

	"tempo/internal/command"
	"tempo/internal/ids"
)

// Node is a committed command with its dependencies.
type Node struct {
	ID   ids.Dot
	Seq  uint64
	Deps []ids.Dot
	Cmd  *command.Command

	// Tarjan bookkeeping (reset per run).
	index, lowlink int
	onStack        bool
	visited        bool
	sccIndex       int
}

// Graph accumulates committed commands and yields executable batches.
type Graph struct {
	nodes    map[ids.Dot]*Node
	executed map[ids.Dot]bool

	// Scratch reused across Executable calls (roots, the blocked-SCC
	// bitmap and the Tarjan stack), so steady-state execution does not
	// re-allocate them every drain.
	roots      []*Node
	blockedSCC []bool
	tj         tarjan

	// stats
	maxSCC      int
	execCount   uint64
	sccSizes    []int
	blockedPeak int
}

// cmpSeqID is the deterministic (seq, id) execution order.
func cmpSeqID(a, b *Node) int {
	if a.Seq != b.Seq {
		if a.Seq < b.Seq {
			return -1
		}
		return 1
	}
	if a.ID.Less(b.ID) {
		return -1
	}
	if b.ID.Less(a.ID) {
		return 1
	}
	return 0
}

// New creates an empty graph.
func New() *Graph {
	return &Graph{
		nodes:    make(map[ids.Dot]*Node),
		executed: make(map[ids.Dot]bool),
	}
}

// Commit adds a committed command. Committing the same id twice is a
// no-op (commits are idempotent).
func (g *Graph) Commit(id ids.Dot, seq uint64, deps []ids.Dot, cmd *command.Command) {
	if g.executed[id] {
		return
	}
	if _, ok := g.nodes[id]; ok {
		return
	}
	g.nodes[id] = &Node{ID: id, Seq: seq, Deps: deps, Cmd: cmd}
}

// IsCommitted reports whether id has been committed (or executed).
func (g *Graph) IsCommitted(id ids.Dot) bool {
	if g.executed[id] {
		return true
	}
	_, ok := g.nodes[id]
	return ok
}

// Pending returns the number of committed-but-unexecuted commands.
func (g *Graph) Pending() int { return len(g.nodes) }

// MaxSCC returns the largest strongly connected component executed so far
// (a proxy for the dependency-chain pathology of §3.3).
func (g *Graph) MaxSCC() int { return g.maxSCC }

// Executed returns how many commands have been executed.
func (g *Graph) Executed() uint64 { return g.execCount }

// SCCSizes returns the sizes of all executed components, in execution
// order (for tests and metrics); the slice is shared, do not mutate.
func (g *Graph) SCCSizes() []int { return g.sccSizes }

// Executable runs Tarjan over the committed subgraph and returns every
// command that may now execute, in execution order. A strongly connected
// component executes only if none of its members depends (transitively)
// on an uncommitted command. Returned commands are removed from the
// graph.
func (g *Graph) Executable() []*Node {
	if len(g.nodes) == 0 {
		return nil
	}
	t := &g.tj
	t.g = g
	t.counter = 0
	stack := t.stack[:cap(t.stack)]
	clear(stack) // unpin nodes from the previous drain
	t.stack = stack[:0]
	sccs := t.sccs[:cap(t.sccs)]
	clear(sccs)
	t.sccs = sccs[:0]
	roots := g.roots[:0]
	for _, n := range g.nodes {
		n.visited = false
		n.onStack = false
		roots = append(roots, n)
	}
	// Deterministic DFS roots so that independent components execute in
	// the same (seq, id) order at every replica.
	slices.SortFunc(roots, cmpSeqID)
	for _, n := range roots {
		if !n.visited {
			t.strongConnect(n)
		}
	}
	clear(roots) // do not pin executed nodes until the next drain
	g.roots = roots[:0]
	// t.sccs is in reverse topological order of the condensation
	// (Tarjan emits an SCC only after all SCCs it depends on): execute
	// components in emission order, skipping components that are blocked
	// (depend on an uncommitted command or on a blocked component).
	if cap(g.blockedSCC) < len(t.sccs) {
		g.blockedSCC = make([]bool, len(t.sccs))
	}
	blockedSCC := g.blockedSCC[:len(t.sccs)]
	clear(blockedSCC)
	var out []*Node
	for i, scc := range t.sccs {
		blocked := false
		for _, n := range scc {
			for _, d := range n.Deps {
				if g.executed[d] {
					continue
				}
				dep, committed := g.nodes[d]
				if !committed {
					blocked = true
					break
				}
				// Dependency inside this same SCC is fine; otherwise it
				// was emitted earlier — blocked iff that SCC is blocked.
				if dep.sccIndex != i && blockedSCC[dep.sccIndex] {
					blocked = true
					break
				}
			}
			if blocked {
				break
			}
		}
		blockedSCC[i] = blocked
		if blocked {
			continue
		}
		slices.SortFunc(scc, cmpSeqID)
		if len(scc) > g.maxSCC {
			g.maxSCC = len(scc)
		}
		g.sccSizes = append(g.sccSizes, len(scc))
		for _, n := range scc {
			g.executed[n.ID] = true
			g.execCount++
			delete(g.nodes, n.ID)
			out = append(out, n)
		}
	}
	if p := len(g.nodes); p > g.blockedPeak {
		g.blockedPeak = p
	}
	return out
}

// BlockedPeak returns the largest number of committed-but-blocked
// commands observed.
func (g *Graph) BlockedPeak() int { return g.blockedPeak }

// MissingDeps returns the deduplicated dependencies of committed-but-
// unexecuted commands that are neither executed nor committed here —
// the commits this replica still has to learn before the blocked part
// of the graph can progress. Protocol recovery uses it to request
// re-commits after a partition (messages dropped on a cut link would
// otherwise block dependent commands forever).
func (g *Graph) MissingDeps() []ids.Dot {
	var out []ids.Dot
	var seen map[ids.Dot]bool
	for _, n := range g.nodes {
		for _, d := range n.Deps {
			if g.executed[d] || seen[d] {
				continue
			}
			if _, committed := g.nodes[d]; committed {
				continue
			}
			if seen == nil {
				seen = make(map[ids.Dot]bool)
			}
			seen[d] = true
			out = append(out, d)
		}
	}
	return out
}

// tarjan is the classic iterative-enough recursion (dependency chains in
// tests are short; the simulator bounds graph sizes). One instance lives
// in the Graph and is reset per Executable call so its stack and SCC
// list are reused.
type tarjan struct {
	g       *Graph
	counter int
	stack   []*Node
	sccs    [][]*Node
}

func (t *tarjan) strongConnect(n *Node) {
	n.visited = true
	n.index = t.counter
	n.lowlink = t.counter
	t.counter++
	t.stack = append(t.stack, n)
	n.onStack = true

	for _, d := range n.Deps {
		if t.g.executed[d] {
			continue
		}
		m, ok := t.g.nodes[d]
		if !ok {
			continue // uncommitted: handled by the blocked check later
		}
		if !m.visited {
			t.strongConnect(m)
			if m.lowlink < n.lowlink {
				n.lowlink = m.lowlink
			}
		} else if m.onStack {
			if m.index < n.lowlink {
				n.lowlink = m.index
			}
		}
	}

	if n.lowlink == n.index {
		var scc []*Node
		for {
			m := t.stack[len(t.stack)-1]
			t.stack = t.stack[:len(t.stack)-1]
			m.onStack = false
			m.sccIndex = len(t.sccs)
			scc = append(scc, m)
			if m == n {
				break
			}
		}
		t.sccs = append(t.sccs, scc)
	}
}
