package depgraph

import (
	"fmt"
	"math/rand"
	"testing"

	"tempo/internal/ids"
)

func dot(s, q int) ids.Dot { return ids.Dot{Source: ids.ProcessID(s), Seq: uint64(q)} }

func idsOf(nodes []*Node) []ids.Dot {
	out := make([]ids.Dot, len(nodes))
	for i, n := range nodes {
		out[i] = n.ID
	}
	return out
}

func TestLinearChainExecutesInOrder(t *testing.T) {
	g := New()
	a, b, c := dot(1, 1), dot(1, 2), dot(1, 3)
	g.Commit(c, 3, []ids.Dot{b}, nil)
	g.Commit(b, 2, []ids.Dot{a}, nil)
	// a missing: nothing executable.
	if got := g.Executable(); got != nil {
		t.Fatalf("executed %v before chain head committed", idsOf(got))
	}
	g.Commit(a, 1, nil, nil)
	got := idsOf(g.Executable())
	want := []ids.Dot{a, b, c}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("got %v, want %v", got, want)
	}
	if g.MaxSCC() != 1 {
		t.Errorf("MaxSCC = %d, want 1", g.MaxSCC())
	}
}

func TestCycleExecutesAsOneComponent(t *testing.T) {
	g := New()
	a, b := dot(1, 1), dot(2, 1)
	g.Commit(a, 2, []ids.Dot{b}, nil)
	g.Commit(b, 1, []ids.Dot{a}, nil)
	got := idsOf(g.Executable())
	// Cycle: executes as one SCC, ordered by (seq, id): b (seq 1) then a.
	if len(got) != 2 || got[0] != b || got[1] != a {
		t.Fatalf("got %v, want [b a]", got)
	}
	if g.MaxSCC() != 2 {
		t.Errorf("MaxSCC = %d, want 2", g.MaxSCC())
	}
}

func TestSCCBlockedOnUncommittedDependency(t *testing.T) {
	// Figure 3's dependency graph: w -> y, y -> z, z -> {w, x}; x is
	// never committed, so the SCC {w,y,z} cannot execute (unlike Tempo).
	g := New()
	w, x, y, z := dot(1, 1), dot(1, 2), dot(2, 1), dot(3, 1)
	g.Commit(w, 1, []ids.Dot{y}, nil)
	g.Commit(y, 2, []ids.Dot{z}, nil)
	g.Commit(z, 3, []ids.Dot{w, x}, nil)
	if got := g.Executable(); got != nil {
		t.Fatalf("executed %v despite uncommitted dependency x", idsOf(got))
	}
	if g.Pending() != 3 {
		t.Errorf("pending = %d, want 3", g.Pending())
	}
	// Once x commits, the whole component unblocks.
	g.Commit(x, 4, []ids.Dot{w}, nil) // x depends on w: 4-cycle
	got := idsOf(g.Executable())
	if len(got) != 4 {
		t.Fatalf("got %v, want all four", got)
	}
	if g.MaxSCC() != 4 {
		t.Errorf("MaxSCC = %d, want 4", g.MaxSCC())
	}
}

func TestBlockedSCCBlocksDownstream(t *testing.T) {
	// c depends on SCC {a<->b}; a,b blocked on uncommitted u; c must not
	// execute even though its direct deps are committed.
	g := New()
	a, b, c, u := dot(1, 1), dot(2, 1), dot(3, 1), dot(4, 1)
	g.Commit(a, 1, []ids.Dot{b, u}, nil)
	g.Commit(b, 2, []ids.Dot{a}, nil)
	g.Commit(c, 3, []ids.Dot{a}, nil)
	if got := g.Executable(); got != nil {
		t.Fatalf("executed %v despite transitive block", idsOf(got))
	}
	g.Commit(u, 0, nil, nil)
	if got := g.Executable(); len(got) != 4 {
		t.Fatalf("got %v after unblock, want 4 commands", idsOf(got))
	}
}

func TestIndependentCommandsDeterministicOrder(t *testing.T) {
	mk := func() []ids.Dot {
		g := New()
		for i := 10; i >= 1; i-- {
			g.Commit(dot(i, 1), uint64(i), nil, nil)
		}
		return idsOf(g.Executable())
	}
	first := mk()
	for i := 0; i < 10; i++ {
		if got := mk(); fmt.Sprint(got) != fmt.Sprint(first) {
			t.Fatalf("nondeterministic order: %v vs %v", got, first)
		}
	}
	// Order must be by (seq, id).
	for i := 1; i < len(first); i++ {
		if first[i].Source < first[i-1].Source {
			t.Fatalf("not in seq order: %v", first)
		}
	}
}

func TestCommitIdempotent(t *testing.T) {
	g := New()
	a := dot(1, 1)
	g.Commit(a, 1, nil, nil)
	g.Commit(a, 99, []ids.Dot{dot(2, 2)}, nil) // ignored
	got := g.Executable()
	if len(got) != 1 || got[0].Seq != 1 {
		t.Fatalf("duplicate commit mutated node: %+v", got)
	}
	g.Commit(a, 1, nil, nil) // after execution: still ignored
	if g.Pending() != 0 {
		t.Error("re-commit after execution should be dropped")
	}
}

func TestAppendixDEPaxosUnboundedSCC(t *testing.T) {
	// Appendix D: the EPaxos arrival order produces dep[1]={2},
	// dep[2]={3}, dep[3]={1,4}, dep[4]={1,2,5}, dep[5]={2,3,6}, ... —
	// one giant strongly connected component that keeps growing: as long
	// as commands keep arriving, nothing executes.
	g := New()
	n := 60
	depsOf := func(i int) []ids.Dot {
		// Chain structure from the appendix: i depends on i+1 (committed
		// later) plus earlier commands, forming one SCC.
		var d []ids.Dot
		if i+1 <= n+1 {
			d = append(d, dot(1, i+1))
		}
		if i >= 3 {
			d = append(d, dot(1, i-2))
		}
		return d
	}
	for i := 1; i <= n; i++ {
		g.Commit(dot(1, i), uint64(i), depsOf(i), nil)
		if got := g.Executable(); got != nil {
			t.Fatalf("executed %d commands at i=%d; expected indefinite blocking", len(got), i)
		}
	}
	if g.Pending() != n {
		t.Fatalf("pending = %d, want %d", g.Pending(), n)
	}
	// Only when the chain is cut (command n+1 commits with no forward
	// dep) does everything execute — as one giant component.
	g.Commit(dot(1, n+1), uint64(n+1), []ids.Dot{dot(1, n-1)}, nil)
	got := g.Executable()
	if len(got) != n+1 {
		t.Fatalf("got %d, want %d", len(got), n+1)
	}
	if g.MaxSCC() < n {
		t.Errorf("expected a giant SCC, got max %d", g.MaxSCC())
	}
}

func TestRandomGraphsEventuallyExecuteAll(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		n := 50
		perm := rng.Perm(n)
		total := 0
		for _, i := range perm {
			// Deps point at arbitrary other commands.
			var deps []ids.Dot
			for k := 0; k < rng.Intn(4); k++ {
				deps = append(deps, dot(1, 1+rng.Intn(n)))
			}
			g.Commit(dot(1, i+1), uint64(i+1), deps, nil)
			total += len(g.Executable())
		}
		total += len(g.Executable())
		if total != n {
			t.Fatalf("seed %d: executed %d of %d", seed, total, n)
		}
		if g.Pending() != 0 {
			t.Fatalf("seed %d: %d stuck", seed, g.Pending())
		}
	}
}

func BenchmarkExecutableChain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := New()
		for j := 1; j <= 200; j++ {
			var deps []ids.Dot
			if j > 1 {
				deps = []ids.Dot{dot(1, j-1)}
			}
			g.Commit(dot(1, j), uint64(j), deps, nil)
			g.Executable()
		}
	}
}
