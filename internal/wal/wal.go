// Package wal implements the write-ahead log behind a durable cluster
// node (tempo-server -data-dir): a length-prefixed, CRC-checked append
// log of applied commands and protocol watermarks, plus
// generation-numbered state-machine snapshots that bound the log's
// length.
//
// Layout of a data directory at generation g:
//
//	snap-g    state-machine snapshot (caller-provided body, CRC footer)
//	wal-g     records applied since snap-g was taken
//
// A snapshot rotation writes snap-(g+1) (via a temp file + rename, so a
// crash never leaves a half snapshot under a live name), starts wal-(g+1)
// and deletes the generation-g pair. Recovery loads the newest valid
// snapshot and replays its log; a torn record at the log's tail (the
// normal result of crashing mid-write) is detected by the CRC, truncated
// and logging resumes from there.
//
// Appends are fsync-batched: Append buffers the record and a flusher
// goroutine writes + syncs at most once per the configured interval, so
// the executor hot path never waits on the disk. A zero interval makes
// every Append durable before it returns; AppendSync forces that for a
// single record regardless of the interval (used for clock/id
// reservations, which must be durable before the reserved range is
// used). The record payloads reuse the internal/proto varint primitives.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Record types carried by the log. Never reuse or renumber: the type
// byte is the on-disk contract across versions.
const (
	// RecApply records one command applied to the state machine:
	// ts, shard, command (see internal/cluster's durability layer).
	RecApply byte = 1
	// RecMark records durable watermark reservations: the protocol clock
	// and command-id sequence the next incarnation must start above.
	RecMark byte = 2
)

// ErrCorrupt reports an undecodable snapshot or record.
var ErrCorrupt = errors.New("wal: corrupt data")

// Options tunes a Log.
type Options struct {
	// SyncInterval batches fsyncs: buffered records are written and
	// synced at most once per interval. 0 syncs every Append before it
	// returns (strict local durability).
	SyncInterval time.Duration
	// FsyncDelay is a fault-injection hook: when positive, every fsync
	// sleeps this long first, under the log's lock — emulating a slow
	// disk (a degraded volume, a saturated fsync queue). Appends queue
	// behind the stalled sync exactly as they would on real slow
	// storage. Never set it in production configurations.
	FsyncDelay time.Duration
}

// Log is an append log plus snapshot store in one directory. Append and
// AppendSync are safe for concurrent use; Replay/Rotate/Close belong to
// the owning runtime's single recovery/executor thread.
type Log struct {
	dir  string
	opts Options
	gen  uint64

	mu     sync.Mutex
	f      *os.File
	buf    []byte // records appended since the last write
	failed error  // sticky I/O error; appends become no-ops

	flushKick chan struct{}
	done      chan struct{}
	closeOnce sync.Once
	flushed   sync.WaitGroup
}

const (
	snapPrefix = "snap-"
	logPrefix  = "wal-"
)

func snapName(gen uint64) string { return fmt.Sprintf("%s%08d", snapPrefix, gen) }
func logName(gen uint64) string  { return fmt.Sprintf("%s%08d", logPrefix, gen) }

// Open opens (creating if needed) a data directory. The returned Log is
// positioned at the newest generation with a valid snapshot (generation
// 0 has none); call Snapshot then Replay to recover state, after which
// the log accepts appends.
func Open(dir string, opts Options) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{
		dir:       dir,
		opts:      opts,
		flushKick: make(chan struct{}, 1),
		done:      make(chan struct{}),
	}
	gens, err := l.snapshotGens()
	if err != nil {
		return nil, err
	}
	// Newest valid snapshot wins; a corrupt one (crash mid-rotation plus
	// a torn rename is practically impossible, but cheap to tolerate)
	// falls back to the previous generation.
	for i := len(gens) - 1; i >= 0; i-- {
		if _, err := readSnapshotFile(filepath.Join(dir, snapName(gens[i]))); err == nil {
			l.gen = gens[i]
			break
		}
	}
	return l, nil
}

// snapshotGens lists the generations with a snapshot file, ascending.
func (l *Log) snapshotGens() ([]uint64, error) {
	ents, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, err
	}
	var gens []uint64
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, snapPrefix) || strings.HasSuffix(name, ".tmp") {
			continue
		}
		g, err := strconv.ParseUint(strings.TrimPrefix(name, snapPrefix), 10, 64)
		if err != nil {
			continue
		}
		gens = append(gens, g)
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, nil
}

// Gen returns the current snapshot generation (0 = none yet).
func (l *Log) Gen() uint64 { return l.gen }

// Snapshot returns the current generation's snapshot body (nil at
// generation 0: fresh directory or nothing rotated yet).
func (l *Log) Snapshot() ([]byte, error) {
	if l.gen == 0 {
		return nil, nil
	}
	return readSnapshotFile(filepath.Join(l.dir, snapName(l.gen)))
}

// Replay streams the current generation's log records through fn in
// append order, truncates any torn tail, opens the log for appending and
// starts the flusher. fn receives a body slice only valid for the call.
func (l *Log) Replay(fn func(typ byte, body []byte) error) error {
	path := filepath.Join(l.dir, logName(l.gen))
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	valid := 0
	b := data
	for len(b) > 0 {
		n, sz := binary.Uvarint(b)
		if sz <= 0 || n < 1 || len(b)-sz-4 < 0 || uint64(len(b)-sz-4) < n {
			break // torn length or truncated record
		}
		rec := b[sz+4 : sz+4+int(n)]
		if crc32.ChecksumIEEE(rec) != binary.LittleEndian.Uint32(b[sz:]) {
			break // torn write
		}
		if err := fn(rec[0], rec[1:]); err != nil {
			return err
		}
		b = b[sz+4+int(n):]
		valid = len(data) - len(b)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if err := f.Truncate(int64(valid)); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Seek(int64(valid), io.SeekStart); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.flushed.Add(1)
	go l.flushLoop()
	return nil
}

// appendFrameTo appends one encoded record frame to buf.
func appendFrameTo(buf []byte, typ byte, body []byte) []byte {
	n := uint64(1 + len(body))
	buf = binary.AppendUvarint(buf, n)
	var crc [5]byte
	crc[4] = typ
	sum := crc32.NewIEEE()
	sum.Write(crc[4:5])
	sum.Write(body)
	binary.LittleEndian.PutUint32(crc[:4], sum.Sum32())
	buf = append(buf, crc[:]...)
	return append(buf, body...)
}

// appendFrame stages one record into the buffer. Caller holds l.mu.
func (l *Log) appendFrame(typ byte, body []byte) {
	l.buf = appendFrameTo(l.buf, typ, body)
}

// Append buffers one record; the flusher makes it durable within the
// sync interval (immediately when the interval is 0). It never blocks on
// I/O when an interval is configured.
func (l *Log) Append(typ byte, body []byte) {
	l.mu.Lock()
	if l.failed != nil || l.f == nil {
		l.mu.Unlock()
		return
	}
	l.appendFrame(typ, body)
	if l.opts.SyncInterval == 0 {
		l.writeAndSyncLocked()
		l.mu.Unlock()
		return
	}
	l.mu.Unlock()
	select {
	case l.flushKick <- struct{}{}:
	default:
	}
}

// AppendSync appends one record and returns only once it (and everything
// buffered before it) is on stable storage. Reservation records use it:
// the reserved range may only be handed out after the reservation is
// durable.
func (l *Log) AppendSync(typ byte, body []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("wal: not open for append (Replay first)")
	}
	if l.failed != nil {
		return l.failed
	}
	l.appendFrame(typ, body)
	l.writeAndSyncLocked()
	return l.failed
}

// writeAndSyncLocked flushes the buffer to the file and fsyncs. Caller
// holds l.mu. The first I/O error sticks: the log stops accepting
// appends and the node runs on (peer replication still covers it; the
// operator sees the error via Err).
func (l *Log) writeAndSyncLocked() {
	if len(l.buf) == 0 || l.failed != nil {
		return
	}
	if _, err := l.f.Write(l.buf); err != nil {
		l.failed = fmt.Errorf("wal: append: %w", err)
		return
	}
	l.buf = l.buf[:0]
	if l.opts.FsyncDelay > 0 {
		time.Sleep(l.opts.FsyncDelay)
	}
	if err := l.f.Sync(); err != nil {
		l.failed = fmt.Errorf("wal: fsync: %w", err)
	}
}

// Err returns the sticky I/O error, if any.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failed
}

// flushLoop batches fsyncs: it wakes on the first append after an idle
// period, then writes+syncs at most once per SyncInterval while appends
// keep arriving.
func (l *Log) flushLoop() {
	defer l.flushed.Done()
	iv := l.opts.SyncInterval
	if iv <= 0 {
		// Appends sync inline; nothing to do but wait for Close.
		<-l.done
		return
	}
	for {
		select {
		case <-l.done:
			l.mu.Lock()
			l.writeAndSyncLocked()
			l.mu.Unlock()
			return
		case <-l.flushKick:
		}
		time.Sleep(iv)
		l.mu.Lock()
		l.writeAndSyncLocked()
		l.mu.Unlock()
	}
}

// Record is one log record, used to seed a new generation during
// Rotate.
type Record struct {
	// Type is the record-type byte (RecApply, RecMark, ...).
	Type byte
	// Body is the record payload.
	Body []byte
}

// Rotate writes the next generation's snapshot (body produced by write),
// switches appends to a fresh log seeded with first, and deletes the
// generation before the previous one. Durability order matters twice
// over: the seed records are fsynced into the new log *before* the
// snapshot rename makes the new generation the one recovery loads (a
// crash in between recovers the old generation, whose log still holds
// everything), and the snapshot itself is durable (temp file, fsync,
// rename, directory fsync) before any old generation goes away.
// Callers use first to carry the watermark reservations across the
// rotation — losing them would let a restarted node re-promise
// timestamps.
func (l *Log) Rotate(write func(io.Writer) error, first ...Record) error {
	next := l.gen + 1
	nf, err := os.OpenFile(filepath.Join(l.dir, logName(next)), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	var seed []byte
	for _, r := range first {
		seed = appendFrameTo(seed, r.Type, r.Body)
	}
	if len(seed) > 0 {
		if _, err := nf.Write(seed); err != nil {
			nf.Close()
			return err
		}
		if err := nf.Sync(); err != nil {
			nf.Close()
			return err
		}
	}
	if err := syncDir(l.dir); err != nil {
		nf.Close()
		return err
	}
	if err := writeSnapshotFile(l.dir, snapName(next), write); err != nil {
		nf.Close()
		return err
	}
	l.mu.Lock()
	l.writeAndSyncLocked()
	old := l.f
	l.f = nf
	l.buf = l.buf[:0]
	l.mu.Unlock()
	if old != nil {
		old.Close()
	}
	prev := l.gen
	l.gen = next
	// Keep the previous generation as a spare — if the newest snapshot
	// turns out unreadable (bit rot), recovery falls back to it — and
	// delete the one before that. Best effort: a leftover pair is
	// harmless (recovery picks the newest valid snapshot).
	if prev > 0 {
		os.Remove(filepath.Join(l.dir, logName(prev-1)))
		os.Remove(filepath.Join(l.dir, snapName(prev-1)))
	}
	return nil
}

// Close flushes and closes the log.
func (l *Log) Close() error {
	l.closeOnce.Do(func() { close(l.done) })
	l.flushed.Wait()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.writeAndSyncLocked()
	if l.f != nil {
		l.f.Close()
		l.f = nil
	}
	return l.failed
}

// Snapshot file format: body || crc32le(body). The CRC footer
// distinguishes a complete snapshot from one cut short by a crash (the
// temp-file + rename dance already makes that near-impossible; the CRC
// also catches bit rot).

func writeSnapshotFile(dir, name string, write func(io.Writer) error) error {
	tmp := filepath.Join(dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	sum := crc32.NewIEEE()
	if err := write(io.MultiWriter(f, sum)); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], sum.Sum32())
	if _, err := f.Write(crc[:]); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

func readSnapshotFile(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < 4 {
		return nil, ErrCorrupt
	}
	body := data[:len(data)-4]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(data[len(data)-4:]) {
		return nil, ErrCorrupt
	}
	return body, nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
