package wal

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// replayAll opens dir and collects every record of the current
// generation.
func replayAll(t *testing.T, dir string) (*Log, [][2]any) {
	t.Helper()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var recs [][2]any
	if err := l.Replay(func(typ byte, body []byte) error {
		recs = append(recs, [2]any{typ, append([]byte(nil), body...)})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return l, recs
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Replay(func(byte, []byte) error { t.Fatal("fresh log has records"); return nil }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		l.Append(RecApply, []byte(fmt.Sprintf("rec-%03d", i)))
	}
	if err := l.AppendSync(RecMark, []byte("mark")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, recs := replayAll(t, dir)
	defer l2.Close()
	if len(recs) != 101 {
		t.Fatalf("replayed %d records, want 101", len(recs))
	}
	if recs[42][0].(byte) != RecApply || string(recs[42][1].([]byte)) != "rec-042" {
		t.Fatalf("record 42 = %v", recs[42])
	}
	if recs[100][0].(byte) != RecMark || string(recs[100][1].([]byte)) != "mark" {
		t.Fatalf("record 100 = %v", recs[100])
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Replay(func(byte, []byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := l.AppendSync(RecApply, []byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Crash mid-write: chop bytes off the last record, then flip a bit
	// in what remains of it.
	path := filepath.Join(dir, logName(0))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := append([]byte(nil), data[:len(data)-3]...)
	torn[len(torn)-1] ^= 0xFF
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, recs := replayAll(t, dir)
	if len(recs) != 9 {
		t.Fatalf("replayed %d records after torn tail, want 9", len(recs))
	}
	// The torn bytes are gone: appending and replaying again yields the
	// 9 survivors plus the new record.
	if err := l2.AppendSync(RecApply, []byte("after-crash")); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	l3, recs := replayAll(t, dir)
	defer l3.Close()
	if len(recs) != 10 || string(recs[9][1].([]byte)) != "after-crash" {
		t.Fatalf("after truncate+append: %d records, last %v", len(recs), recs[len(recs)-1])
	}
}

func TestCorruptMiddleStopsReplay(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir, Options{})
	l.Replay(func(byte, []byte) error { return nil })
	for i := 0; i < 5; i++ {
		l.AppendSync(RecApply, bytes.Repeat([]byte{byte(i)}, 32))
	}
	l.Close()
	path := filepath.Join(dir, logName(0))
	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 0x01 // bit flip inside an earlier record
	os.WriteFile(path, data, 0o644)

	l2, recs := replayAll(t, dir)
	defer l2.Close()
	if len(recs) >= 5 {
		t.Fatalf("corrupt record not detected: replayed %d records", len(recs))
	}
}

func TestRotateAndRecover(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir, Options{})
	l.Replay(func(byte, []byte) error { return nil })
	l.AppendSync(RecApply, []byte("old-gen"))
	if err := l.Rotate(func(w io.Writer) error {
		_, err := w.Write([]byte("snapshot-state-1"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if l.Gen() != 1 {
		t.Fatalf("gen = %d, want 1", l.Gen())
	}
	l.AppendSync(RecApply, []byte("new-gen"))
	l.Close()

	l2, recs := replayAll(t, dir)
	defer l2.Close()
	snap, err := l2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if string(snap) != "snapshot-state-1" {
		t.Fatalf("snapshot = %q", snap)
	}
	if len(recs) != 1 || string(recs[0][1].([]byte)) != "new-gen" {
		t.Fatalf("post-rotation records = %v (old generation must be gone)", recs)
	}
	// One spare generation is kept for snapshot-corruption fallback;
	// anything older is deleted on the next rotation.
	if err := l2.Rotate(func(w io.Writer) error { _, err := w.Write([]byte("snapshot-state-2")); return err }); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, logName(0))); !os.IsNotExist(err) {
		t.Fatalf("wal-0 still present after two rotations: %v", err)
	}
}

func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir, Options{})
	l.Replay(func(byte, []byte) error { return nil })
	l.Rotate(func(w io.Writer) error { _, err := w.Write([]byte("good")); return err })
	l.Rotate(func(w io.Writer) error { _, err := w.Write([]byte("newer")); return err })
	l.Close()
	// Corrupt the newest snapshot; recovery must fall back to gen 1.
	path := filepath.Join(dir, snapName(2))
	data, _ := os.ReadFile(path)
	data[0] ^= 0xFF
	os.WriteFile(path, data, 0o644)

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Gen() != 1 {
		t.Fatalf("gen after corrupt newest snapshot = %d, want 1", l2.Gen())
	}
	snap, err := l2.Snapshot()
	if err != nil || string(snap) != "good" {
		t.Fatalf("snapshot = %q, %v", snap, err)
	}
}

func TestBatchedSyncDelivers(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir, Options{SyncInterval: time.Millisecond})
	l.Replay(func(byte, []byte) error { return nil })
	for i := 0; i < 50; i++ {
		l.Append(RecApply, []byte{byte(i)})
	}
	l.Close() // flushes the batch

	l2, recs := replayAll(t, dir)
	defer l2.Close()
	if len(recs) != 50 {
		t.Fatalf("replayed %d batched records, want 50", len(recs))
	}
}
