package caesar

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"tempo/internal/check"
	"tempo/internal/command"
	"tempo/internal/ids"
	"tempo/internal/proto"
	"tempo/internal/testnet"
	"tempo/internal/topology"
)

func lineTopo(t *testing.T, r, f int) *topology.Topology {
	t.Helper()
	names := make([]string, r)
	rtt := make([][]time.Duration, r)
	for i := range names {
		names[i] = string(rune('A' + i))
		rtt[i] = make([]time.Duration, r)
		for j := range rtt[i] {
			d := i - j
			if d < 0 {
				d = -d
			}
			rtt[i][j] = time.Duration(d) * 2 * time.Millisecond
		}
	}
	topo, err := topology.New(topology.Config{SiteNames: names, RTT: rtt, NumShards: 1, F: f})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func makeNet(t *testing.T, topo *topology.Topology, cfg Config) (map[ids.ProcessID]*Process, *testnet.Net) {
	t.Helper()
	procs := make(map[ids.ProcessID]*Process)
	var reps []proto.Replica
	for _, pi := range topo.Processes() {
		p := New(pi.ID, topo, cfg)
		procs[pi.ID] = p
		reps = append(reps, p)
	}
	return procs, testnet.New(reps...)
}

func at(topo *topology.Topology, site int) ids.ProcessID {
	return topo.ProcessAt(ids.SiteID(site), 0)
}

func TestUniqueTimestamps(t *testing.T) {
	topo := lineTopo(t, 5, 1)
	procs, _ := makeNet(t, topo, Config{})
	seen := map[uint64]ids.ProcessID{}
	for site := 0; site < 5; site++ {
		p := procs[at(topo, site)]
		for k := 0; k < 20; k++ {
			ts := p.nextTS(uint64(k * 3))
			if owner, dup := seen[ts]; dup {
				t.Fatalf("timestamp %d issued by both %d and %d", ts, owner, p.ID())
			}
			seen[ts] = p.ID()
			if ts%uint64(5) != uint64(p.rank)%5 {
				t.Fatalf("timestamp %d not owned by rank %d", ts, p.rank)
			}
		}
	}
}

func TestSingleCommand(t *testing.T) {
	topo := lineTopo(t, 5, 1)
	procs, net := makeNet(t, topo, Config{})
	a := at(topo, 0)
	c := command.NewPut(procs[a].NextID(), "k", []byte("v"))
	net.Submit(a, c)
	net.Drain(0)
	for pid, p := range procs {
		if got := len(p.Drain()); got != 1 {
			t.Fatalf("process %d executed %d, want 1", pid, got)
		}
	}
	if fast, retry, _ := procs[a].Stats(); fast != 1 || retry != 0 {
		t.Errorf("fast=%d retry=%d, want 1/0", fast, retry)
	}
}

// TestBlockingCascade reproduces the wait-condition behaviour of §3.3:
// three conflicting commands proposed concurrently commit in *reverse*
// timestamp order (each reply blocked until the higher-timestamped
// command commits), yet execute in timestamp order.
func TestBlockingCascade(t *testing.T) {
	topo := lineTopo(t, 3, 1)
	procs, net := makeNet(t, topo, Config{})
	A, B, C := at(topo, 0), at(topo, 1), at(topo, 2)

	c1 := command.NewPut(procs[A].NextID(), "hot", nil)
	c2 := command.NewPut(procs[B].NextID(), "hot", nil)
	c3 := command.NewPut(procs[C].NextID(), "hot", nil)
	net.Submit(A, c1) // ts 1
	net.Submit(B, c2) // ts 2
	net.Submit(C, c3) // ts 3
	net.Drain(0)

	wantCommit := []ids.Dot{c3.ID, c2.ID, c1.ID}
	for i, id := range wantCommit {
		if procs[A].commitOrder[i] != id {
			t.Fatalf("commit order at A = %v, want %v (reverse cascade)", procs[A].commitOrder, wantCommit)
		}
	}
	var execOrder []ids.Dot
	for _, e := range procs[A].Drain() {
		execOrder = append(execOrder, e.Cmd.ID)
	}
	wantExec := []ids.Dot{c1.ID, c2.ID, c3.ID}
	for i, id := range wantExec {
		if execOrder[i] != id {
			t.Fatalf("execution order = %v, want %v", execOrder, wantExec)
		}
	}
	if _, _, blocked := procs[B].Stats(); blocked == 0 {
		t.Error("B should have blocked at least one reply (wait condition)")
	}
}

// TestAppendixDLivelock reproduces the pathological scenario of
// Appendix D: conflicting commands keep arriving round-robin (A proposes
// 1, 4, 7, ...; B proposes 2, 5, 8, ...; C proposes 3, 6, 9, ...), and
// each round's proposals are delivered only after the next round has been
// submitted — so every propose reply is blocked by the receiver's own
// higher-timestamped pending command, and *no command is ever committed*
// while arrivals continue.
func TestAppendixDLivelock(t *testing.T) {
	topo := lineTopo(t, 3, 1)
	procs, net := makeNet(t, topo, Config{})
	A, B, C := at(topo, 0), at(topo, 1), at(topo, 2)

	rounds := 12
	for round := 0; round < rounds; round++ {
		net.Submit(A, command.NewPut(procs[A].NextID(), "hot", nil))
		net.Submit(B, command.NewPut(procs[B].NextID(), "hot", nil))
		net.Submit(C, command.NewPut(procs[C].NextID(), "hot", nil))
		if round == 0 {
			continue
		}
		// Deliver the previous round's six cross proposals (each of the
		// three commands sends to two remote quorum members). Every one
		// of them parks on the receiver's newer pending command.
		for i := 0; i < 6; i++ {
			if !net.Step() {
				t.Fatal("expected queued proposals")
			}
		}
		for pid, p := range procs {
			if len(p.commitOrder) != 0 {
				t.Fatalf("round %d: process %d committed %v; Appendix D predicts no commits under continuous arrivals",
					round, pid, p.commitOrder)
			}
		}
	}
	_, _, blocked := procs[A].Stats()
	if blocked == 0 {
		t.Error("expected blocked replies at A")
	}

	// Once arrivals stop, the highest-timestamped command has no blocker
	// and the whole chain commits in reverse — confirming the blocking
	// chain (not message loss) was withholding progress.
	net.Drain(0)
	if got := len(procs[A].commitOrder); got != 3*rounds {
		t.Fatalf("after arrivals stop, %d/%d committed", got, 3*rounds)
	}
}

// TestRejectAndRetry drives the NACK path: a command proposed with a
// timestamp lower than an already committed conflicting command (whose
// deps do not include it) must be rejected and retried higher.
func TestRejectAndRetry(t *testing.T) {
	topo := lineTopo(t, 5, 1)
	procs, net := makeNet(t, topo, Config{})
	A := at(topo, 0)
	E := at(topo, 4)

	// c2 from E commits among {E,D,C,B} (A's fast quorum not needed);
	// keep A in the dark by parking its CCommit.
	c2 := command.NewPut(procs[E].NextID(), "hot", nil)
	net.Hold = func(e testnet.Env) bool {
		_, is := e.Msg.(*CCommit)
		return is && e.To == A
	}
	net.Submit(E, c2)
	net.Drain(0)
	if procs[E].cmds[c2.ID].status != statusCommitted && procs[E].cmds[c2.ID].status != statusExecuted {
		t.Fatal("setup: c2 should be committed")
	}
	tsC2 := procs[E].cmds[c2.ID].ts

	// A, unaware, proposes c1 with a low timestamp: B (in A's quorum)
	// knows c2 committed at a higher timestamp without c1 in deps: NACK.
	c1 := command.NewPut(procs[A].NextID(), "hot", nil)
	net.Submit(A, c1)
	net.Drain(0)
	if _, retry, _ := procs[A].Stats(); retry != 1 {
		t.Fatalf("expected a retry at A, got %d", retry)
	}
	if got := procs[A].cmds[c1.ID].ts; got <= tsC2 {
		t.Fatalf("retried ts %d must exceed committed conflicting ts %d", got, tsC2)
	}
	net.ReleaseHeld()
	net.Drain(0)
	// Everyone executes c2 then c1.
	for pid, p := range procs {
		var order []ids.Dot
		for _, e := range p.Drain() {
			order = append(order, e.Cmd.ID)
		}
		if len(order) != 2 || order[0] != c2.ID || order[1] != c1.ID {
			t.Fatalf("process %d executed %v, want [c2 c1]", pid, order)
		}
	}
}

func TestRandomWorkloadOrdering(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			topo := lineTopo(t, 5, 1)
			procs, net := makeNet(t, topo, Config{})
			net.Rng = rng
			chk := check.New()
			n := 25
			for i := 0; i < n; i++ {
				p := procs[at(topo, rng.Intn(5))]
				c := command.NewPut(p.NextID(), command.Key(fmt.Sprintf("k%d", rng.Intn(3))), nil)
				chk.Submitted(c)
				net.Submit(p.ID(), c)
				// Draining between submissions keeps arrivals spread out,
				// avoiding the Appendix-D livelock regime.
				net.Drain(0)
			}
			net.Drain(0)
			for pid, p := range procs {
				var order []ids.Dot
				for _, e := range p.Drain() {
					order = append(order, e.Cmd.ID)
				}
				if len(order) != n {
					t.Fatalf("process %d executed %d/%d", pid, len(order), n)
				}
				chk.Executed(check.Log{Process: pid, Shard: 0, Order: order})
			}
			if err := chk.Verify(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestExecuteOnCommit(t *testing.T) {
	topo := lineTopo(t, 3, 1)
	procs, net := makeNet(t, topo, Config{ExecuteOnCommit: true})
	a := at(topo, 0)
	c := command.NewPut(procs[a].NextID(), "k", nil)
	net.Submit(a, c)
	net.Drain(0)
	if len(procs[a].Drain()) != 1 {
		t.Fatal("command should execute on commit")
	}
}
