// Package caesar implements the Caesar baseline of the paper (Arun et al.,
// DSN 2017): a leaderless protocol that, like Tempo, orders commands by
// timestamp, but detects timestamp stability through explicit
// dependencies. Its distinguishing (and costly) feature is the *wait
// condition*: a replica receiving a proposal with timestamp t must delay
// its answer while any conflicting command with a higher pending
// timestamp is uncommitted, so that the invariant
//
//	ts(c) < ts(c') ⇒ c ∈ dep(c')
//
// can be maintained. The paper shows this blocking causes both high tail
// latency (§6.3) and outright livelock under continuous arrivals
// (Appendix D); both behaviours are reproduced by this implementation and
// its tests.
//
// Timestamps are globally unique: process with rank k proposes values
// ≡ k (mod r). The fast quorum has size ⌈3r/4⌉. Recovery is not
// implemented (the evaluation runs baselines failure-free).
package caesar

import (
	"fmt"
	"sort"
	"time"

	"tempo/internal/command"
	"tempo/internal/ids"
	"tempo/internal/kvstore"
	"tempo/internal/proto"
	"tempo/internal/topology"
)

// CPropose carries a command and its proposed timestamp to the fast
// quorum.
type CPropose struct {
	ID  ids.Dot
	Cmd *command.Command
	TS  uint64
}

// CProposeAck answers CPropose. OK=false (a NACK) suggests a higher
// timestamp. Deps lists the conflicting commands with lower timestamps
// known to the sender.
type CProposeAck struct {
	ID   ids.Dot
	OK   bool
	TS   uint64
	Deps []ids.Dot
}

// CRetry re-proposes the command at a higher timestamp after a NACK.
type CRetry struct {
	ID   ids.Dot
	Cmd  *command.Command
	TS   uint64
	Deps []ids.Dot
}

// CRetryAck acknowledges a retry, contributing additional dependencies.
type CRetryAck struct {
	ID   ids.Dot
	Deps []ids.Dot
}

// CCommit finalizes a command's timestamp and dependencies.
type CCommit struct {
	ID   ids.Dot
	Cmd  *command.Command
	TS   uint64
	Deps []ids.Dot
}

const hdr = 24

func cmdSize(c *command.Command) int {
	if c == nil {
		return 0
	}
	return c.SizeBytes()
}

// Size implements proto.Message.
func (m *CPropose) Size() int { return hdr + 8 + cmdSize(m.Cmd) }

// Size implements proto.Message.
func (m *CProposeAck) Size() int { return hdr + 9 + 16*len(m.Deps) }

// Size implements proto.Message.
func (m *CRetry) Size() int { return hdr + 8 + cmdSize(m.Cmd) + 16*len(m.Deps) }

// Size implements proto.Message.
func (m *CRetryAck) Size() int { return hdr + 16*len(m.Deps) }

// Size implements proto.Message.
func (m *CCommit) Size() int { return hdr + 8 + cmdSize(m.Cmd) + 16*len(m.Deps) }

// Config tunes a replica.
type Config struct {
	// ExecuteOnCommit executes commands as soon as they commit, skipping
	// the timestamp-order executor. This is the paper's "Caesar*"
	// idealization (Figure 7): it measures the commit protocol alone and
	// must only be used for throughput experiments.
	ExecuteOnCommit bool
}

type status uint8

const (
	statusUnknown status = iota
	statusPending
	statusCommitted
	statusExecuted
)

type cstate struct {
	cmd    *command.Command
	ts     uint64
	deps   []ids.Dot
	status status
	// Coordinator state.
	acks    map[ids.ProcessID]*CProposeAck
	retries map[ids.ProcessID]*CRetryAck
	retried bool
}

// deferred is a propose reply parked by the wait condition.
type deferred struct {
	id    ids.Dot
	coord ids.ProcessID
	ts    uint64
}

// Process is a Caesar replica. It implements proto.Replica.
type Process struct {
	id    ids.ProcessID
	shard ids.ShardID
	rank  ids.Rank
	r, f  int
	topo  *topology.Topology
	cfg   Config

	clock   uint64
	nextSeq uint64
	cmds    map[ids.Dot]*cstate
	// byKey indexes known commands by key for conflict computation.
	byKey map[command.Key]map[ids.Dot]bool
	// blockedOn maps a pending command to the propose replies waiting
	// for it to commit.
	blockedOn map[ids.Dot][]deferred
	store     *kvstore.Store

	executedOut []proto.Executed
	crashed     bool

	statFast, statRetry uint64
	statBlocked         uint64
	commitOrder         []ids.Dot // local commit sequence (tests, metrics)
}

var _ proto.Replica = (*Process)(nil)
var _ proto.Crashable = (*Process)(nil)

// FastQuorumSize is ⌈3r/4⌉.
func FastQuorumSize(r int) int { return (3*r + 3) / 4 }

// New creates a Caesar replica.
func New(id ids.ProcessID, topo *topology.Topology, cfg Config) *Process {
	pi := topo.Process(id)
	if pi.ID != id {
		panic(fmt.Sprintf("caesar: unknown process %d", id))
	}
	return &Process{
		id:        id,
		shard:     pi.Shard,
		rank:      pi.Rank,
		r:         topo.R(),
		f:         topo.F(),
		topo:      topo,
		cfg:       cfg,
		cmds:      make(map[ids.Dot]*cstate),
		byKey:     make(map[command.Key]map[ids.Dot]bool),
		blockedOn: make(map[ids.Dot][]deferred),
		store:     kvstore.New(),
	}
}

// ID implements proto.Replica.
func (p *Process) ID() ids.ProcessID { return p.id }

// Store returns the replica's key-value store.
func (p *Process) Store() *kvstore.Store { return p.store }

// Stats returns (fast commits, retried commits, propose-replies blocked).
func (p *Process) Stats() (fast, retry, blocked uint64) {
	return p.statFast, p.statRetry, p.statBlocked
}

// Crash implements proto.Crashable.
func (p *Process) Crash() { p.crashed = true }

// NextID mints a fresh command identifier.
func (p *Process) NextID() ids.Dot {
	p.nextSeq++
	return ids.Dot{Source: p.id, Seq: p.nextSeq}
}

// nextTS returns the smallest unused timestamp owned by this process
// (≡ rank mod r) greater than both the local clock and min.
func (p *Process) nextTS(min uint64) uint64 {
	base := p.clock
	if min > base {
		base = min
	}
	// Smallest t > base with t ≡ rank (mod r).
	k := base / uint64(p.r)
	for {
		t := k*uint64(p.r) + uint64(p.rank)
		if t > base {
			p.clock = t
			return t
		}
		k++
	}
}

func (p *Process) observe(ts uint64) {
	if ts > p.clock {
		p.clock = ts
	}
}

// Submit implements proto.Replica.
func (p *Process) Submit(cmd *command.Command) []proto.Action {
	if p.crashed {
		return nil
	}
	ts := p.nextTS(0)
	fq := p.topo.FastQuorum(p.id, FastQuorumSize(p.r))
	st := p.state(cmd.ID)
	st.cmd = cmd
	st.acks = make(map[ids.ProcessID]*CProposeAck, len(fq))
	return p.route([]proto.Action{proto.Send(&CPropose{ID: cmd.ID, Cmd: cmd, TS: ts}, fq...)})
}

// Handle implements proto.Replica.
func (p *Process) Handle(from ids.ProcessID, msg proto.Message) []proto.Action {
	if p.crashed {
		return nil
	}
	return p.route(p.handle(from, msg))
}

// Tick implements proto.Replica (no periodic machinery).
func (p *Process) Tick(time.Duration) []proto.Action { return nil }

// Drain implements proto.Replica.
func (p *Process) Drain() []proto.Executed {
	out := p.executedOut
	p.executedOut = nil
	return out
}

func (p *Process) route(acts []proto.Action) []proto.Action {
	var out []proto.Action
	queue := acts
	for len(queue) > 0 {
		a := queue[0]
		queue = queue[1:]
		var others []ids.ProcessID
		self := false
		for _, to := range a.To {
			if to == p.id {
				self = true
			} else {
				others = append(others, to)
			}
		}
		if len(others) > 0 {
			out = append(out, proto.Action{To: others, Msg: a.Msg})
		}
		if self {
			queue = append(queue, p.handle(p.id, a.Msg)...)
		}
	}
	return out
}

func (p *Process) handle(from ids.ProcessID, msg proto.Message) []proto.Action {
	switch m := msg.(type) {
	case *CPropose:
		return p.onPropose(from, m)
	case *CProposeAck:
		return p.onProposeAck(from, m)
	case *CRetry:
		return p.onRetry(from, m)
	case *CRetryAck:
		return p.onRetryAck(from, m)
	case *CCommit:
		return p.onCommit(m)
	default:
		panic(fmt.Sprintf("caesar: unknown message %T", msg))
	}
}

func (p *Process) state(id ids.Dot) *cstate {
	st, ok := p.cmds[id]
	if !ok {
		st = &cstate{}
		p.cmds[id] = st
	}
	return st
}

func (p *Process) index(cmd *command.Command) {
	for _, op := range cmd.Ops {
		m := p.byKey[op.Key]
		if m == nil {
			m = make(map[ids.Dot]bool)
			p.byKey[op.Key] = m
		}
		m[cmd.ID] = true
	}
}

// conflicts returns the known commands conflicting with cmd, filtered by
// pred.
func (p *Process) conflicts(cmd *command.Command, pred func(*cstate) bool) []ids.Dot {
	seen := map[ids.Dot]bool{}
	var out []ids.Dot
	for _, op := range cmd.Ops {
		for id := range p.byKey[op.Key] {
			if id == cmd.ID || seen[id] {
				continue
			}
			st := p.cmds[id]
			if st == nil || st.cmd == nil || !st.cmd.Conflicts(cmd) {
				continue
			}
			if pred(st) {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// onPropose applies the wait condition and answers with dependencies.
func (p *Process) onPropose(from ids.ProcessID, m *CPropose) []proto.Action {
	st := p.state(m.ID)
	if st.cmd == nil {
		st.cmd = m.Cmd
	}
	if st.status == statusUnknown {
		st.status = statusPending
	}
	st.ts = m.TS
	p.observe(m.TS)
	p.index(m.Cmd)
	return p.answerPropose(deferred{id: m.ID, coord: from, ts: m.TS})
}

// answerPropose replies to a (possibly previously deferred) proposal, or
// parks it again if the wait condition still holds.
func (p *Process) answerPropose(d deferred) []proto.Action {
	st := p.cmds[d.id]
	if st == nil || st.cmd == nil || st.status != statusPending {
		return nil // committed meanwhile (e.g. via retry); nothing to do
	}
	// Wait condition: any conflicting pending command with a higher
	// timestamp blocks the reply until it commits.
	blockers := p.conflicts(st.cmd, func(o *cstate) bool {
		return o.status == statusPending && tsAfter(o, st)
	})
	if len(blockers) > 0 {
		p.statBlocked++
		p.blockedOn[blockers[0]] = append(p.blockedOn[blockers[0]], d)
		return nil
	}
	// Reject if a conflicting command already committed with a higher
	// timestamp that does not include this command among its deps: the
	// timestamp invariant would break.
	rejected := p.conflicts(st.cmd, func(o *cstate) bool {
		return (o.status == statusCommitted || o.status == statusExecuted) &&
			tsAfter(o, st) && !containsDot(o.deps, d.id)
	})
	if len(rejected) > 0 {
		return []proto.Action{proto.Send(&CProposeAck{
			ID: d.id, OK: false, TS: p.nextTS(d.ts), Deps: nil,
		}, d.coord)}
	}
	deps := p.conflicts(st.cmd, func(o *cstate) bool {
		return o.status != statusUnknown && !tsAfter(o, st)
	})
	return []proto.Action{proto.Send(&CProposeAck{ID: d.id, OK: true, TS: d.ts, Deps: deps}, d.coord)}
}

// tsAfter orders states by (ts, id); o strictly after c.
func tsAfter(o *cstate, c *cstate) bool {
	if o.ts != c.ts {
		return o.ts > c.ts
	}
	return false // distinct timestamps are guaranteed unique
}

// onProposeAck gathers the fast quorum at the coordinator.
func (p *Process) onProposeAck(from ids.ProcessID, m *CProposeAck) []proto.Action {
	st, ok := p.cmds[m.ID]
	if !ok || st.acks == nil || st.status == statusCommitted || st.status == statusExecuted || st.retried {
		return nil
	}
	if _, dup := st.acks[from]; dup {
		return nil
	}
	st.acks[from] = m
	p.observe(m.TS)
	if len(st.acks) < FastQuorumSize(p.r) {
		return nil
	}
	allOK := true
	var maxSuggest uint64
	var deps []ids.Dot
	for _, a := range st.acks {
		if !a.OK {
			allOK = false
			if a.TS > maxSuggest {
				maxSuggest = a.TS
			}
		}
		deps = unionDots(deps, a.Deps)
	}
	if allOK {
		p.statFast++
		return p.commitActions(m.ID, st, st.ts, deps)
	}
	// Retry at a higher, still-unique timestamp.
	p.statRetry++
	st.retried = true
	st.retries = make(map[ids.ProcessID]*CRetryAck, p.r)
	newTS := p.nextTS(maxSuggest)
	st.ts = newTS
	st.deps = deps
	return []proto.Action{proto.Send(&CRetry{ID: m.ID, Cmd: st.cmd, TS: newTS, Deps: deps},
		p.topo.ShardProcesses(p.shard)...)}
}

// onRetry records the new timestamp and contributes deps.
func (p *Process) onRetry(from ids.ProcessID, m *CRetry) []proto.Action {
	st := p.state(m.ID)
	if st.cmd == nil {
		st.cmd = m.Cmd
		p.index(m.Cmd)
	}
	if st.status == statusUnknown {
		st.status = statusPending
	}
	oldBlocked := p.takeBlocked(m.ID)
	st.ts = m.TS
	p.observe(m.TS)
	deps := p.conflicts(st.cmd, func(o *cstate) bool {
		return o.status != statusUnknown && !tsAfter(o, st)
	})
	acts := []proto.Action{proto.Send(&CRetryAck{ID: m.ID, Deps: deps}, from)}
	// The timestamp moved: replies that were blocked on this command at
	// its old timestamp stay blocked (it is still pending), re-park them.
	for _, d := range oldBlocked {
		acts = append(acts, p.answerPropose(d)...)
	}
	return acts
}

// onRetryAck finishes the retry once a majority answered.
func (p *Process) onRetryAck(from ids.ProcessID, m *CRetryAck) []proto.Action {
	st, ok := p.cmds[m.ID]
	if !ok || st.retries == nil || st.status == statusCommitted || st.status == statusExecuted {
		return nil
	}
	if _, dup := st.retries[from]; dup {
		return nil
	}
	st.retries[from] = m
	if len(st.retries) < p.r/2+1 {
		return nil
	}
	deps := st.deps
	for _, a := range st.retries {
		deps = unionDots(deps, a.Deps)
	}
	st.retries = nil
	return p.commitActions(m.ID, st, st.ts, deps)
}

func (p *Process) commitActions(id ids.Dot, st *cstate, ts uint64, deps []ids.Dot) []proto.Action {
	return []proto.Action{proto.Send(&CCommit{ID: id, Cmd: st.cmd, TS: ts, Deps: deps},
		p.topo.ShardProcesses(p.shard)...)}
}

// onCommit finalizes a command, releases replies blocked on it, and runs
// the executor.
func (p *Process) onCommit(m *CCommit) []proto.Action {
	st := p.state(m.ID)
	if st.status == statusCommitted || st.status == statusExecuted {
		return nil
	}
	if st.cmd == nil {
		st.cmd = m.Cmd
		p.index(m.Cmd)
	}
	st.ts = m.TS
	st.deps = m.Deps
	st.status = statusCommitted
	p.commitOrder = append(p.commitOrder, m.ID)
	p.observe(m.TS)

	var acts []proto.Action
	for _, d := range p.takeBlocked(m.ID) {
		acts = append(acts, p.answerPropose(d)...)
	}
	if p.cfg.ExecuteOnCommit {
		p.executeNow(st)
	} else {
		p.runExecutor()
	}
	return acts
}

func (p *Process) takeBlocked(id ids.Dot) []deferred {
	ds := p.blockedOn[id]
	delete(p.blockedOn, id)
	return ds
}

// runExecutor executes committed commands in timestamp order once their
// dependencies are satisfied (executed, or ordered after this command).
func (p *Process) runExecutor() {
	for {
		progress := false
		var ready []*cstate
		var readyIDs []ids.Dot
		for id, st := range p.cmds {
			if st.status != statusCommitted {
				continue
			}
			if p.depsSatisfied(st) {
				ready = append(ready, st)
				readyIDs = append(readyIDs, id)
			}
		}
		// Execute in (ts, id) order for determinism.
		idx := make([]int, len(ready))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			ra, rb := ready[idx[a]], ready[idx[b]]
			if ra.ts != rb.ts {
				return ra.ts < rb.ts
			}
			return readyIDs[idx[a]].Less(readyIDs[idx[b]])
		})
		for _, i := range idx {
			p.executeNow(ready[i])
			progress = true
		}
		if !progress {
			return
		}
	}
}

func (p *Process) depsSatisfied(st *cstate) bool {
	for _, d := range st.deps {
		o := p.cmds[d]
		if o == nil {
			return false // dependency not even known yet
		}
		if o.status == statusExecuted {
			continue
		}
		// A dependency ordered after us by timestamp does not gate us
		// (it will have us among its own deps).
		if (o.status == statusCommitted) && o.ts > st.ts {
			continue
		}
		return false
	}
	return true
}

func (p *Process) executeNow(st *cstate) {
	if st.status == statusExecuted {
		return
	}
	st.status = statusExecuted
	res := p.store.Apply(st.cmd, p.shard, p.topo.ShardOf)
	p.executedOut = append(p.executedOut, proto.Executed{Cmd: st.cmd, Shard: p.shard, Result: res})
}

// --- helpers ---

func unionDots(a, b []ids.Dot) []ids.Dot {
	if len(b) == 0 {
		return a
	}
	set := make(map[ids.Dot]bool, len(a)+len(b))
	for _, d := range a {
		set[d] = true
	}
	for _, d := range b {
		set[d] = true
	}
	out := make([]ids.Dot, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

func containsDot(list []ids.Dot, d ids.Dot) bool {
	for _, x := range list {
		if x == d {
			return true
		}
	}
	return false
}
