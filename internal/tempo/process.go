package tempo

import (
	"fmt"
	"slices"
	"sync"
	"time"

	"tempo/internal/command"
	"tempo/internal/ids"
	"tempo/internal/kvstore"
	"tempo/internal/promise"
	"tempo/internal/proto"
	"tempo/internal/topology"
)

// Config tunes a Tempo process. The zero value gets sensible defaults.
type Config struct {
	// PromiseInterval is how often MPromises are broadcast (Algorithm 2,
	// line 44). Default 5ms.
	PromiseInterval time.Duration
	// RecoveryTimeout is how long a command may stay pending before the
	// shard leader starts recovery for it. Default 500ms. Zero disables
	// recovery (useful for failure-free benchmarks).
	RecoveryTimeout time.Duration
	// ResendInterval is how often pending payloads are re-broadcast
	// (Appendix B, line 77). Default equals RecoveryTimeout.
	ResendInterval time.Duration
	// DisableMBump turns off the "faster stability" MBump optimization
	// of Algorithm 3 (used by the ablation benchmarks).
	DisableMBump bool
	// DisablePiggyback turns off attached-promise piggybacking on
	// MCommit (§3.2 optimization; ablation only). Stability then relies
	// solely on periodic MPromises.
	DisablePiggyback bool
	// CommitRequestDelay is how long an attached promise for an unknown
	// command may linger before the process asks for its commit
	// (Appendix B suggests delaying MCommitRequest "in the hope that
	// such information will be received anyway"). Default
	// RecoveryTimeout/4; commit requests are also rate-limited per
	// command at this interval.
	CommitRequestDelay time.Duration
	// RetainLog keeps per-command state after it becomes garbage-
	// collectable (globally executed). Tests and debugging tools use it;
	// production deployments should leave it off so memory stays
	// bounded.
	RetainLog bool
}

func (c Config) withDefaults() Config {
	if c.PromiseInterval == 0 {
		c.PromiseInterval = 5 * time.Millisecond
	}
	if c.RecoveryTimeout == 0 {
		c.RecoveryTimeout = 500 * time.Millisecond
	}
	if c.ResendInterval == 0 {
		c.ResendInterval = c.RecoveryTimeout
	}
	if c.CommitRequestDelay == 0 {
		c.CommitRequestDelay = c.RecoveryTimeout / 4
	}
	return c
}

// cmdInfo is the per-command state of Algorithm 5 (Table 3) plus the
// coordinator-side bookkeeping.
//
// The coordinator bookkeeping is rank-indexed (dense slices of length r,
// index rank-1, zero value = absent) rather than keyed by process id, and
// cmdInfo structs are recycled through a sync.Pool once a command is
// garbage-collected, so the steady-state hot path allocates no per-command
// maps. Timestamps and ballots are >= 1, so 0 is a safe absence sentinel.
type cmdInfo struct {
	cmd     *command.Command
	shards  []ids.ShardID
	quorums Quorums
	phase   Phase
	ts      uint64 // shard-local timestamp (proposal or consensus value)
	bal     ids.Ballot
	abal    ids.Ballot

	// Coordinator state (initial or recovery), allocated lazily — most
	// commands are never coordinated here — and retained across pool
	// round-trips.
	proposals     []uint64 // MProposeAck replies by rank-1; 0 = none
	nProposals    int
	ackDetached   [][2]uint64 // piggybacked detached ranges by rank-1
	consensusFrom []bool      // MConsensusAck seen, by rank-1
	nConsensusAck int
	recAcks       []*MRecAck // recovery acks by rank-1
	nRecAcks      int
	coordBallot   ids.Ballot // ballot this process is coordinating, 0 if none
	slowPath      bool

	// Commit state: parallel slices over the (few) shards a command
	// accesses; linear scans beat map overhead at this size.
	commitShards []ids.ShardID
	commitVals   []uint64
	finalTS      uint64
	// attachedMine is this process's own attached promise for the
	// command (0 if it never proposed).
	attachedMine uint64

	// Execution state (multi-shard): shards that signalled stability.
	stableShards []ids.ShardID
	sentStable   bool

	enqueued time.Duration // when the command became known (for recovery)
}

// commitFor returns the committed timestamp recorded for a shard.
func (ci *cmdInfo) commitFor(s ids.ShardID) (uint64, bool) {
	for i, cs := range ci.commitShards {
		if cs == s {
			return ci.commitVals[i], true
		}
	}
	return 0, false
}

// setCommit records a shard's committed timestamp; the first write wins,
// as with the map it replaces.
func (ci *cmdInfo) setCommit(s ids.ShardID, ts uint64) {
	if _, ok := ci.commitFor(s); !ok {
		ci.commitShards = append(ci.commitShards, s)
		ci.commitVals = append(ci.commitVals, ts)
	}
}

// markStable records that a shard signalled timestamp stability.
func (ci *cmdInfo) markStable(s ids.ShardID) {
	for _, x := range ci.stableShards {
		if x == s {
			return
		}
	}
	ci.stableShards = append(ci.stableShards, s)
}

// stableAt reports whether a shard signalled stability.
func (ci *cmdInfo) stableAt(s ids.ShardID) bool {
	for _, x := range ci.stableShards {
		if x == s {
			return true
		}
	}
	return false
}

func (ci *cmdInfo) committedAllShards() bool {
	if len(ci.shards) == 0 {
		return false
	}
	for _, s := range ci.shards {
		if _, ok := ci.commitFor(s); !ok {
			return false
		}
	}
	return true
}

// reset clears a cmdInfo for pool reuse, keeping the backing arrays of
// the lazily-allocated coordinator slices.
func (ci *cmdInfo) reset() {
	ci.cmd = nil
	ci.shards = nil
	ci.quorums = nil
	ci.phase = PhaseStart
	ci.ts, ci.finalTS, ci.attachedMine = 0, 0, 0
	ci.bal, ci.abal, ci.coordBallot = 0, 0, 0
	ci.slowPath, ci.sentStable = false, false
	for i := range ci.proposals {
		ci.proposals[i] = 0
	}
	ci.nProposals = 0
	for i := range ci.ackDetached {
		ci.ackDetached[i] = [2]uint64{}
	}
	for i := range ci.consensusFrom {
		ci.consensusFrom[i] = false
	}
	ci.nConsensusAck = 0
	for i := range ci.recAcks {
		ci.recAcks[i] = nil
	}
	ci.nRecAcks = 0
	ci.commitShards = ci.commitShards[:0]
	ci.commitVals = ci.commitVals[:0]
	ci.stableShards = ci.stableShards[:0]
	ci.enqueued = 0
}

// Process is a Tempo replica of one shard at one process. It implements
// proto.Replica. It is not safe for concurrent use; runtimes serialize
// calls.
type Process struct {
	id    ids.ProcessID
	shard ids.ShardID
	rank  ids.Rank
	r, f  int
	topo  *topology.Topology
	cfg   Config

	shardProcs  []ids.ProcessID
	shardOthers []ids.ProcessID // shardProcs minus self (gossip targets)
	// rankOf is indexed by process id (dense, small); 0 = not in shard.
	rankOf []ids.Rank

	clock    uint64
	detached *promise.IntervalSet // own detached promises (for broadcast)
	// attachedOwn holds this process's attached promises not yet folded
	// into the detached set. attachedSorted mirrors it sorted by command
	// id; new promises land in attachedFresh with an O(1) append and are
	// merged in at the next broadcast or GC sweep (attachedMerge is the
	// spare merge buffer). The per-command work stays constant and the
	// periodic MPromises broadcast pays one O(fresh log fresh + total)
	// merge instead of re-sorting the whole set — cheaper than the
	// sort.Slice it replaced even under an overload backlog.
	attachedOwn    map[ids.Dot]uint64
	attachedSorted []AttachedWire
	attachedFresh  []AttachedWire
	attachedMerge  []AttachedWire
	tracker        *promise.Tracker

	cmds    map[ids.Dot]*cmdInfo
	nextSeq uint64
	// seenSeq[rank-1] is the highest command-sequence number observed
	// from the rank's process — the id half of the membership frontier
	// (see ObservedFrom).
	seenSeq []uint64
	leader  ids.Rank
	crashed bool
	now     time.Duration

	// Executor state.
	committed  tsDotHeap
	ready      []tsDot // stable commands waiting (in order) for execution
	executedWM TSWatermark
	peerWM     map[ids.Rank]TSWatermark
	store      *kvstore.Store
	// executedOut collects inline executions; in deferred-apply mode
	// stableOut collects execution-stable commands for the runtime to
	// apply off the protocol lock instead (see proto.DeferredApplier).
	executedOut []proto.Executed
	stableOut   []proto.Stable
	deferApply  bool

	lastPromises time.Duration
	lastResend   time.Duration
	// uncommittedSeen tracks when an attached promise for a not-locally-
	// committed command was first observed, and lastCommitReq rate-limits
	// MCommitRequest per command (Appendix B liveness, delayed).
	uncommittedSeen map[ids.Dot]time.Duration
	lastCommitReq   map[ids.Dot]time.Duration
	rankToProc      []ids.ProcessID // indexed by rank-1

	// ciPool recycles cmdInfo structs of garbage-collected commands.
	ciPool sync.Pool
	// routeQueue/routeOut are per-step scratch buffers reused by route;
	// see the proto.Replica contract on action-slice lifetime.
	routeQueue []proto.Action
	routeOut   []proto.Action

	// stats
	statFast, statSlow, statRecovered uint64
}

var _ proto.Replica = (*Process)(nil)
var _ proto.LeaderAware = (*Process)(nil)
var _ proto.Crashable = (*Process)(nil)
var _ proto.DeferredApplier = (*Process)(nil)

// New creates the Tempo replica for process id within the topology.
func New(id ids.ProcessID, topo *topology.Topology, cfg Config) *Process {
	pi := topo.Process(id)
	if pi.ID != id {
		panic(fmt.Sprintf("tempo: unknown process %d", id))
	}
	p := &Process{
		id:              id,
		shard:           pi.Shard,
		rank:            pi.Rank,
		r:               topo.R(),
		f:               topo.F(),
		topo:            topo,
		cfg:             cfg.withDefaults(),
		shardProcs:      topo.ShardProcesses(pi.Shard),
		detached:        &promise.IntervalSet{},
		attachedOwn:     make(map[ids.Dot]uint64),
		tracker:         promise.NewTracker(topo.R()),
		cmds:            make(map[ids.Dot]*cmdInfo),
		peerWM:          make(map[ids.Rank]TSWatermark),
		uncommittedSeen: make(map[ids.Dot]time.Duration),
		lastCommitReq:   make(map[ids.Dot]time.Duration),
		rankToProc:      make([]ids.ProcessID, topo.R()),
		seenSeq:         make([]uint64, topo.R()),
		store:           kvstore.New(),
		leader:          1,
	}
	maxID := ids.ProcessID(0)
	for _, q := range p.shardProcs {
		if q > maxID {
			maxID = q
		}
	}
	p.rankOf = make([]ids.Rank, maxID+1)
	for _, q := range p.shardProcs {
		r := topo.Process(q).Rank
		p.rankOf[q] = r
		p.rankToProc[r-1] = q
		if q != p.id {
			p.shardOthers = append(p.shardOthers, q)
		}
	}
	return p
}

// rankOfProc returns the shard-local rank of a process (0 if the process
// does not replicate this shard).
func (p *Process) rankOfProc(q ids.ProcessID) ids.Rank {
	if int(q) >= len(p.rankOf) {
		return 0
	}
	return p.rankOf[q]
}

// ID implements proto.Replica.
func (p *Process) ID() ids.ProcessID { return p.id }

// Shard returns the shard this replica serves.
func (p *Process) Shard() ids.ShardID { return p.shard }

// Rank returns the shard-local rank.
func (p *Process) Rank() ids.Rank { return p.rank }

// Clock returns the current logical clock (for tests and metrics).
func (p *Process) Clock() uint64 { return p.clock }

// Store returns the replica's key-value store.
func (p *Process) Store() *kvstore.Store { return p.store }

// Stats returns (fast-path commits, slow-path commits, recovered commits)
// decided by this process as coordinator.
func (p *Process) Stats() (fast, slow, recovered uint64) {
	return p.statFast, p.statSlow, p.statRecovered
}

// SetLeader implements proto.LeaderAware: the Ω failure detector output
// for this shard.
func (p *Process) SetLeader(rank ids.Rank) { p.leader = rank }

// Crash implements proto.Crashable.
func (p *Process) Crash() { p.crashed = true }

// NextID mints a fresh command identifier for a client of this process.
func (p *Process) NextID() ids.Dot {
	p.nextSeq++
	return ids.Dot{Source: p.id, Seq: p.nextSeq}
}

// OpsShard returns the shard owning every key of ops and true, or false
// when the ops span shards. Runtimes use it to coalesce single-shard
// client operations into one command (batching ops of different shards
// would turn them into a multi-shard command, changing both the quorum
// cost and the per-op result set). It reads only immutable topology, so
// it is safe to call concurrently with protocol steps.
func (p *Process) OpsShard(ops []command.Op) (ids.ShardID, bool) {
	if len(ops) == 0 {
		return 0, false
	}
	s := p.topo.ShardOf(ops[0].Key)
	for _, op := range ops[1:] {
		if p.topo.ShardOf(op.Key) != s {
			return 0, false
		}
	}
	return s, true
}

// Submit implements proto.Replica (Algorithm 1, line 1). The command's id
// must come from NextID of this process.
func (p *Process) Submit(cmd *command.Command) []proto.Action {
	if p.crashed {
		return nil
	}
	shards := p.topo.CmdShards(cmd)
	coords := p.topo.ClosestPerShard(p.id, shards)
	quorums := make(Quorums, len(shards))
	fqSize := topology.TempoFastQuorumSize(p.r, p.f)
	for i, s := range shards {
		quorums[s] = p.topo.FastQuorum(coords[i], fqSize)
	}
	sub := &MSubmit{ID: cmd.ID, Cmd: cmd, Quorums: quorums}
	return p.route([]proto.Action{proto.Send(sub, coords...)})
}

// Handle implements proto.Replica.
func (p *Process) Handle(from ids.ProcessID, msg proto.Message) []proto.Action {
	if p.crashed {
		return nil
	}
	return p.route(p.handle(from, msg))
}

// route delivers self-addressed actions immediately (the paper assumes
// self-messages are delivered instantaneously) and returns the remaining
// external sends. The returned slice is scratch space owned by the
// Process: it is valid only until the next Submit/Handle/Tick call (the
// proto.Replica contract; all runtimes consume actions synchronously).
func (p *Process) route(acts []proto.Action) []proto.Action {
	queue := append(p.routeQueue[:0], acts...)
	// The previous step's returned actions are dead by contract; zero the
	// backing array so it does not pin their message payloads.
	prev := p.routeOut[:cap(p.routeOut)]
	clear(prev)
	out := prev[:0]
	for i := 0; i < len(queue); i++ {
		a := queue[i]
		self := false
		nOthers := 0
		for _, to := range a.To {
			if to == p.id {
				self = true
			} else {
				nOthers++
			}
		}
		if nOthers == len(a.To) {
			out = append(out, a) // common case: no self-send, reuse a.To
		} else if nOthers > 0 {
			others := make([]ids.ProcessID, 0, nOthers)
			for _, to := range a.To {
				if to != p.id {
					others = append(others, to)
				}
			}
			out = append(out, proto.Action{To: others, Msg: a.Msg})
		}
		if self {
			queue = append(queue, p.handle(p.id, a.Msg)...)
		}
	}
	// Everything queued was handled; zero the backing array so recycled
	// slots do not pin handled messages until the next burst.
	queue = queue[:cap(queue)]
	clear(queue)
	p.routeQueue = queue[:0]
	p.routeOut = out
	return out
}

func (p *Process) handle(from ids.ProcessID, msg proto.Message) []proto.Action {
	// A command whose state was garbage-collected after global execution
	// is done here; late messages for it (e.g. a commit replay answering
	// an old MCommitRequest) must not recreate state, or the command
	// would execute twice.
	var id ids.Dot
	switch m := msg.(type) {
	case *MPayload:
		id = m.ID
	case *MPropose:
		id = m.ID
	case *MCommit:
		id = m.ID
	case *MConsensus:
		id = m.ID
	case *MBump:
		id = m.ID
	case *MStable:
		id = m.ID
	}
	if !id.IsZero() {
		if _, live := p.cmds[id]; !live && p.tracker.IsCommitted(id) {
			return nil
		}
	}
	var acts []proto.Action
	switch m := msg.(type) {
	case *MSubmit:
		acts = p.onMSubmit(m)
	case *MPayload:
		acts = p.onMPayload(m)
	case *MPropose:
		acts = p.onMPropose(from, m)
	case *MProposeAck:
		acts = p.onMProposeAck(from, m)
	case *MBump:
		acts = p.onMBump(m)
	case *MCommit:
		acts = p.onMCommit(m)
	case *MConsensus:
		acts = p.onMConsensus(from, m)
	case *MConsensusAck:
		acts = p.onMConsensusAck(from, m)
	case *MRec:
		acts = p.onMRec(from, m)
	case *MRecAck:
		acts = p.onMRecAck(from, m)
	case *MRecNAck:
		acts = p.onMRecNAck(m)
	case *MCommitRequest:
		acts = p.onMCommitRequest(from, m)
	case *MPromises:
		acts = p.onMPromises(m)
	case *MStable:
		acts = p.onMStable(m)
	default:
		panic(fmt.Sprintf("tempo: unknown message %T", msg))
	}
	return append(acts, p.advanceExecution()...)
}

// info returns (creating if needed) the state for a command id.
func (p *Process) info(id ids.Dot) *cmdInfo {
	p.noteDot(id)
	ci, ok := p.cmds[id]
	if !ok {
		if v := p.ciPool.Get(); v != nil {
			ci = v.(*cmdInfo)
		} else {
			ci = &cmdInfo{}
		}
		ci.phase = PhaseStart
		ci.enqueued = p.now
		p.cmds[id] = ci
	}
	return ci
}

// collect removes a command's state and recycles it through the pool.
func (p *Process) collect(id ids.Dot, ci *cmdInfo) {
	delete(p.cmds, id)
	ci.reset()
	p.ciPool.Put(ci)
}

// learnPayload records the payload and quorums if not yet known.
func (p *Process) learnPayload(ci *cmdInfo, cmd *command.Command, q Quorums) {
	if ci.cmd == nil && cmd != nil {
		ci.cmd = cmd
		ci.shards = p.topo.CmdShards(cmd)
	}
	if ci.quorums == nil && q != nil {
		ci.quorums = q
	}
}

// onMSubmit makes this process the command's coordinator at its shard
// (Algorithm 1, line 5).
func (p *Process) onMSubmit(m *MSubmit) []proto.Action {
	t := p.clock + 1
	fq := m.Quorums[p.shard]
	prop := &MPropose{ID: m.ID, Cmd: m.Cmd, Quorums: m.Quorums, TS: t}
	acts := []proto.Action{proto.Send(prop, fq...)}
	var rest []ids.ProcessID
	for _, q := range p.shardProcs {
		in := false
		for _, x := range fq {
			if x == q {
				in = true
				break
			}
		}
		if !in {
			rest = append(rest, q)
		}
	}
	if len(rest) > 0 {
		acts = append(acts, proto.Send(&MPayload{ID: m.ID, Cmd: m.Cmd, Quorums: m.Quorums}, rest...))
	}
	return acts
}

// onMPayload stores the payload (line 9).
func (p *Process) onMPayload(m *MPayload) []proto.Action {
	ci := p.info(m.ID)
	p.learnPayload(ci, m.Cmd, m.Quorums)
	if ci.phase == PhaseStart {
		ci.phase = PhasePayload
	}
	p.maybeFinishCommit(m.ID, ci)
	return nil
}

// onMPropose computes a timestamp proposal (line 12).
func (p *Process) onMPropose(from ids.ProcessID, m *MPropose) []proto.Action {
	ci := p.info(m.ID)
	if ci.phase != PhaseStart {
		// Already past start (e.g. recovery touched the command first):
		// the MPropose precondition fails and we must not propose.
		return nil
	}
	p.learnPayload(ci, m.Cmd, m.Quorums)
	ci.phase = PhasePropose
	lo := p.clock + 1
	ci.ts = p.proposal(m.ID, m.TS)
	ci.attachedMine = ci.ts
	ack := &MProposeAck{ID: m.ID, TS: ci.ts}
	if hi := ci.ts - 1; lo <= hi {
		ack.DetachedLo, ack.DetachedHi = lo, hi
	}
	acts := []proto.Action{proto.Send(ack, from)}
	// Faster stability for multi-shard commands (Algorithm 3, line 68):
	// tell the nearby replicas of sibling shards about our proposal.
	if !p.cfg.DisableMBump && len(ci.shards) > 1 {
		for _, q := range p.topo.ClosestPerShard(p.id, ci.shards) {
			if q != p.id {
				acts = append(acts, proto.Send(&MBump{ID: m.ID, TS: ci.ts}, q))
			}
		}
	}
	return acts
}

// proposal implements lines 34-39: computes a timestamp proposal, records
// the attached promise and the detached promises below it, and bumps the
// clock.
func (p *Process) proposal(id ids.Dot, m uint64) uint64 {
	t := max64(m, p.clock+1)
	if lo := p.clock + 1; lo <= t-1 {
		p.addOwnDetached(lo, t-1)
	}
	p.addOwnAttached(id, t)
	p.clock = t
	return t
}

// cmpAttachedID orders AttachedWire entries by command id (the broadcast
// order of MPromises.Attached).
func cmpAttachedID(a AttachedWire, id ids.Dot) int {
	if a.ID.Less(id) {
		return -1
	}
	if id.Less(a.ID) {
		return 1
	}
	return 0
}

// addOwnAttached records an attached promise: O(1) on the hot path (an
// append to the fresh tail), with ordering restored lazily by
// foldFreshAttached at broadcast/GC time.
func (p *Process) addOwnAttached(id ids.Dot, t uint64) {
	if _, ok := p.attachedOwn[id]; ok {
		p.attachedOwn[id] = t
		// Rare (a command proposes once): refresh whichever view holds
		// the entry.
		if i, found := slices.BinarySearchFunc(p.attachedSorted, id, cmpAttachedID); found {
			p.attachedSorted[i].TS = t
			return
		}
		for i := range p.attachedFresh {
			if p.attachedFresh[i].ID == id {
				p.attachedFresh[i].TS = t
				return
			}
		}
		return
	}
	p.attachedOwn[id] = t
	p.attachedFresh = append(p.attachedFresh, AttachedWire{ID: id, TS: t})
}

// foldFreshAttached merges the fresh tail into the sorted view: sort
// the (small) tail, then one linear merge, ping-ponging between two
// retained buffers so steady state allocates nothing.
func (p *Process) foldFreshAttached() {
	if len(p.attachedFresh) == 0 {
		return
	}
	slices.SortFunc(p.attachedFresh, func(a, b AttachedWire) int { return cmpAttachedID(a, b.ID) })
	merged := p.attachedMerge[:0]
	i, j := 0, 0
	for i < len(p.attachedSorted) && j < len(p.attachedFresh) {
		if cmpAttachedID(p.attachedSorted[i], p.attachedFresh[j].ID) < 0 {
			merged = append(merged, p.attachedSorted[i])
			i++
		} else {
			merged = append(merged, p.attachedFresh[j])
			j++
		}
	}
	merged = append(merged, p.attachedSorted[i:]...)
	merged = append(merged, p.attachedFresh[j:]...)
	p.attachedMerge = p.attachedSorted[:0]
	p.attachedSorted = merged
	p.attachedFresh = p.attachedFresh[:0]
}

// bump implements lines 40-43: advances the clock to t, generating
// detached promises for the skipped range (including t itself).
func (p *Process) bump(t uint64) {
	if t <= p.clock {
		return
	}
	p.addOwnDetached(p.clock+1, t)
	p.clock = t
}

func (p *Process) addOwnDetached(lo, hi uint64) {
	p.detached.AddRange(lo, hi)
	p.tracker.AddDetached(p.rank, lo, hi)
}

// onMProposeAck gathers proposals at the coordinator (line 17).
func (p *Process) onMProposeAck(from ids.ProcessID, m *MProposeAck) []proto.Action {
	ci, ok := p.cmds[m.ID]
	if !ok || ci.phase != PhasePropose || ci.quorums == nil {
		return nil
	}
	fq := ci.quorums[p.shard]
	if len(fq) == 0 || fq[0] != p.id {
		return nil // not the coordinator at this shard
	}
	rank := p.rankOfProc(from)
	if rank == 0 {
		return nil
	}
	if ci.proposals == nil {
		ci.proposals = make([]uint64, p.r)
	}
	// Record the ack (at most one per process) and piggybacked detached
	// promises.
	if ci.proposals[rank-1] != 0 {
		return nil
	}
	ci.proposals[rank-1] = m.TS
	ci.nProposals++
	if m.DetachedLo != 0 {
		p.tracker.AddDetached(rank, m.DetachedLo, m.DetachedHi)
		if ci.ackDetached == nil {
			ci.ackDetached = make([][2]uint64, p.r)
		}
		ci.ackDetached[rank-1] = [2]uint64{m.DetachedLo, m.DetachedHi}
	}
	if ci.nProposals < len(fq) {
		return nil
	}
	// All fast-quorum processes answered: decide fast or slow path
	// (lines 19-21).
	var t uint64
	for _, ts := range ci.proposals {
		t = max64(t, ts)
	}
	count := 0
	for _, ts := range ci.proposals {
		if ts != 0 && ts == t {
			count++
		}
	}
	if count >= p.f {
		p.statFast++
		return p.sendCommit(m.ID, ci, t)
	}
	// Slow path: Flexible Paxos phase 2 at the initial ballot (our rank).
	p.statSlow++
	ci.slowPath = true
	ci.coordBallot = ids.InitialBallot(p.rank)
	return []proto.Action{proto.Send(&MConsensus{ID: m.ID, TS: t, Ballot: ci.coordBallot}, p.shardProcs...)}
}

// sendCommit broadcasts MCommit for this shard to every process that
// replicates a shard accessed by the command (line 20/33).
func (p *Process) sendCommit(id ids.Dot, ci *cmdInfo, t uint64) []proto.Action {
	mc := &MCommit{ID: id, Shard: p.shard, TS: t}
	if !p.cfg.DisablePiggyback {
		// proposals is rank-indexed, so iterating it yields the attached
		// promises already sorted by rank.
		for i, ts := range ci.proposals {
			if ts == 0 {
				continue
			}
			rt := RankTS{Rank: ids.Rank(i + 1), TS: ts}
			if ci.ackDetached != nil {
				rt.DetLo, rt.DetHi = ci.ackDetached[i][0], ci.ackDetached[i][1]
			}
			mc.Attached = append(mc.Attached, rt)
		}
	}
	to := p.cmdProcesses(ci)
	return []proto.Action{proto.Send(mc, to...)}
}

// cmdProcesses returns I_c for a command with known payload.
func (p *Process) cmdProcesses(ci *cmdInfo) []ids.ProcessID {
	var out []ids.ProcessID
	for _, s := range ci.shards {
		out = append(out, p.topo.ShardProcesses(s)...)
	}
	return out
}

// onMBump bumps the clock on behalf of a sibling shard's proposal
// (Algorithm 3, line 69).
func (p *Process) onMBump(m *MBump) []proto.Action {
	ci, ok := p.cmds[m.ID]
	if !ok || ci.phase != PhasePropose {
		// The paper's precondition is id ∈ propose; note our own shard's
		// proposal handler runs before MBump arrives from siblings.
		return nil
	}
	p.bump(m.TS)
	return nil
}

// onMCommit records a shard's committed timestamp (Algorithm 3, line 56).
func (p *Process) onMCommit(m *MCommit) []proto.Action {
	ci := p.info(m.ID)
	if ci.phase == PhaseCommit || ci.phase == PhaseExecute {
		return nil
	}
	ci.setCommit(m.Shard, m.TS)
	// Attached promises of our shard's fast quorum, piggybacked for
	// faster stability (§3.2). Buffered by the tracker until the command
	// is fully committed here.
	if m.Shard == p.shard {
		for _, a := range m.Attached {
			p.tracker.AddAttached(promise.Attached{Owner: a.Rank, ID: m.ID, TS: a.TS})
			if a.DetLo != 0 {
				p.tracker.AddDetached(a.Rank, a.DetLo, a.DetHi)
			}
		}
	}
	p.maybeFinishCommit(m.ID, ci)
	return nil
}

// maybeFinishCommit moves the command to the commit phase once the
// payload is known and every accessed shard has committed.
func (p *Process) maybeFinishCommit(id ids.Dot, ci *cmdInfo) {
	if ci.cmd == nil || ci.phase == PhaseCommit || ci.phase == PhaseExecute {
		return
	}
	if !ci.committedAllShards() {
		return
	}
	var t uint64
	for _, ts := range ci.commitVals {
		t = max64(t, ts)
	}
	ci.finalTS = t
	ci.phase = PhaseCommit
	delete(p.uncommittedSeen, id)
	delete(p.lastCommitReq, id)
	// Generating detached promises up to the committed timestamp helps
	// liveness of the execution mechanism (line 25/59).
	p.bump(t)
	p.tracker.Committed(id)
	if ci.attachedMine != 0 {
		p.tracker.AddAttached(promise.Attached{Owner: p.rank, ID: id, TS: ci.attachedMine})
	}
	p.committed.push(tsDot{ts: t, id: id})
}

// onMConsensus is Flexible Paxos phase 2 at an acceptor (line 26/30).
func (p *Process) onMConsensus(from ids.ProcessID, m *MConsensus) []proto.Action {
	ci := p.info(m.ID)
	if ci.bal > m.Ballot {
		// Appendix B: NACK stale ballots so the recovering leader can
		// catch up.
		return []proto.Action{proto.Send(&MRecNAck{ID: m.ID, Ballot: ci.bal}, from)}
	}
	ci.ts = m.TS
	ci.bal = m.Ballot
	ci.abal = m.Ballot
	p.bump(m.TS)
	return []proto.Action{proto.Send(&MConsensusAck{ID: m.ID, Ballot: m.Ballot}, from)}
}

// onMConsensusAck gathers f+1 accepts and commits (line 31).
func (p *Process) onMConsensusAck(from ids.ProcessID, m *MConsensusAck) []proto.Action {
	ci, ok := p.cmds[m.ID]
	if !ok || ci.coordBallot != m.Ballot || ci.bal != m.Ballot {
		return nil
	}
	rank := p.rankOfProc(from)
	if rank == 0 {
		return nil
	}
	if ci.consensusFrom == nil {
		ci.consensusFrom = make([]bool, p.r)
	}
	if !ci.consensusFrom[rank-1] {
		ci.consensusFrom[rank-1] = true
		ci.nConsensusAck++
	}
	if ci.nConsensusAck != p.f+1 {
		return nil
	}
	ci.coordBallot = 0 // done coordinating
	if ci.cmd == nil {
		// We cannot know I_c without the payload; recovery coordinators
		// always have it (recover requires id ∈ pending).
		return nil
	}
	return p.sendCommit(m.ID, ci, ci.ts)
}

// Tick implements proto.Replica: periodic promise broadcast, payload
// resend and recovery (Algorithm 6).
func (p *Process) Tick(now time.Duration) []proto.Action {
	if p.crashed {
		return nil
	}
	p.now = now
	var acts []proto.Action
	if now-p.lastPromises >= p.cfg.PromiseInterval {
		p.lastPromises = now
		acts = append(acts, p.broadcastPromises()...)
	}
	if p.cfg.RecoveryTimeout > 0 && now-p.lastResend >= p.cfg.ResendInterval {
		p.lastResend = now
		acts = append(acts, p.periodicRecovery()...)
	}
	return p.route(append(acts, p.advanceExecution()...))
}

// broadcastPromises sends MPromises to the other shard replicas (line 90).
func (p *Process) broadcastPromises() []proto.Action {
	if len(p.shardOthers) == 0 {
		return nil
	}
	m := &MPromises{
		Rank:     p.rank,
		Detached: p.detached.Encode(),
		WM:       p.executedWM,
	}
	// Fold the fresh tail in, then the broadcast is a bounded copy of the
	// id-ordered set — no full re-sort per broadcast. The copy is
	// required: the message is encoded asynchronously by the peer writers
	// while the live set keeps mutating.
	//
	// The cap bounds the gossip size under overload: advertise the oldest
	// entries first (the rest follow once those are garbage-collected).
	// Without it, a backlog inflates every MPromises and starves the CPU.
	p.foldFreshAttached()
	const maxAttachedGossip = 256
	if n := min(len(p.attachedSorted), maxAttachedGossip); n > 0 {
		m.Attached = append(make([]AttachedWire, 0, n), p.attachedSorted[:n]...)
	}
	return []proto.Action{proto.Send(m, p.shardOthers...)}
}

// onMPromises incorporates a peer's promises (line 92) and performs
// promise GC based on executed watermarks.
func (p *Process) onMPromises(m *MPromises) []proto.Action {
	p.tracker.AddDetachedPairs(m.Rank, m.Detached)
	var acts []proto.Action
	for _, a := range m.Attached {
		p.noteDot(a.ID)
		incorporated := p.tracker.AddAttached(promise.Attached{Owner: m.Rank, ID: a.ID, TS: a.TS})
		if incorporated || p.tracker.IsCommitted(a.ID) {
			continue
		}
		// Liveness (Appendix B, line 96): somebody proposed a timestamp
		// for a command we have not committed. Per the paper, delay the
		// MCommitRequest: commits normally arrive on their own, and
		// requesting eagerly on every MPromises would flood the shard
		// under load.
		first, seen := p.uncommittedSeen[a.ID]
		if !seen {
			p.uncommittedSeen[a.ID] = p.now
			continue
		}
		if p.now-first < p.cfg.CommitRequestDelay {
			continue
		}
		if last, ok := p.lastCommitReq[a.ID]; ok && p.now-last < p.cfg.CommitRequestDelay {
			continue
		}
		p.lastCommitReq[a.ID] = p.now
		// Ask the whole shard: any process that committed the command
		// can answer (the advertiser alone may only have it pending, or
		// may have crashed). The per-command rate limit above keeps this
		// bounded under load.
		acts = append(acts, proto.Send(&MCommitRequest{ID: a.ID}, p.shardProcs...))
	}
	if wm, ok := p.peerWM[m.Rank]; !ok || wm.less(m.WM) {
		p.peerWM[m.Rank] = m.WM
		p.gcPromises()
	}
	return acts
}

// gcPromises folds own attached promises into the detached set once every
// peer's executed watermark has passed the command: at that point every
// replica has committed (indeed executed) the command, so re-advertising
// the timestamp as detached can no longer create a premature stability
// decision. This also garbage-collects per-command state.
func (p *Process) gcPromises() {
	if len(p.peerWM) < p.r-1 {
		return
	}
	minWM := p.executedWM
	for _, wm := range p.peerWM {
		if wm.less(minWM) {
			minWM = wm
		}
	}
	// Sweep the sorted view (fresh tail folded in first so nothing is
	// missed), compacting in place so it stays ordered; the map mirrors
	// every fold.
	p.foldFreshAttached()
	kept := p.attachedSorted[:0]
	for _, aw := range p.attachedSorted {
		id, ts := aw.ID, aw.TS
		ci, ok := p.cmds[id]
		if !ok {
			// Command state already collected; the promise point is
			// covered by the executed watermark.
			p.addOwnDetached(ts, ts)
			delete(p.attachedOwn, id)
			continue
		}
		if ci.phase != PhaseExecute {
			kept = append(kept, aw)
			continue
		}
		point := TSWatermark{TS: ci.finalTS, ID: id}
		if point.less(minWM) || point == minWM {
			p.addOwnDetached(ts, ts)
			delete(p.attachedOwn, id)
			if !p.cfg.RetainLog {
				p.collect(id, ci)
			}
			continue
		}
		kept = append(kept, aw)
	}
	p.attachedSorted = kept
}

// onMCommitRequest replays payload and commit info for a committed
// command (Appendix B, line 86).
func (p *Process) onMCommitRequest(from ids.ProcessID, m *MCommitRequest) []proto.Action {
	ci, ok := p.cmds[m.ID]
	if !ok || (ci.phase != PhaseCommit && ci.phase != PhaseExecute) {
		return nil
	}
	acts := []proto.Action{
		proto.Send(&MPayload{ID: m.ID, Cmd: ci.cmd, Quorums: ci.quorums}, from),
	}
	for i, s := range ci.commitShards {
		acts = append(acts, proto.Send(&MCommit{ID: m.ID, Shard: s, TS: ci.commitVals[i]}, from))
	}
	return acts
}

// Drain implements proto.Replica.
func (p *Process) Drain() []proto.Executed {
	out := p.executedOut
	p.executedOut = nil
	return out
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
