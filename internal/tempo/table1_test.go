package tempo

import (
	"testing"
	"time"

	"tempo/internal/command"
	"tempo/internal/ids"
)

// TestTable1FastPath encodes Table 1 of the paper: r = 5 processes
// A..E on a line (so A's fast quorum is {A,B,C} for f=1 and {A,B,C,D} for
// f=2), with preset clocks such that A proposes timestamp 6. Each row
// checks whether the fast path is taken and the committed timestamp.
func TestTable1FastPath(t *testing.T) {
	cases := []struct {
		name     string
		f        int
		clocks   map[int]uint64 // site index -> initial clock (via bump)
		wantTS   uint64
		wantFast bool
	}{
		// a) f=2: proposals A=6, B=7, C=11, D=11; count(11)=2 >= f.
		{"a_f2_fast", 2, map[int]uint64{0: 5, 1: 6, 2: 10, 3: 10}, 11, true},
		// b) f=2: proposals A=6, B=7, C=11, D=6; count(11)=1 < f.
		{"b_f2_slow", 2, map[int]uint64{0: 5, 1: 6, 2: 10, 3: 5}, 11, false},
		// c) f=1: proposals A=6, B=7, C=11; f=1 always fast.
		{"c_f1_fast", 1, map[int]uint64{0: 5, 1: 6, 2: 10}, 11, true},
		// d) f=1: proposals A=6, B=6, C=6; everyone matches.
		{"d_f1_fast_match", 1, map[int]uint64{0: 5, 1: 4, 2: 1}, 6, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			topo := lineTopo(t, 5, c.f, 1)
			procs, net := makeNet(t, topo, Config{})
			for site, clock := range c.clocks {
				procs[at(topo, site, 0)].bump(clock)
			}
			a := at(topo, 0, 0)
			cmd := command.NewPut(procs[a].NextID(), "k", nil)
			net.Submit(a, cmd)
			net.Drain(0)

			fast, slow, _ := procs[a].Stats()
			if c.wantFast && (fast != 1 || slow != 0) {
				t.Errorf("want fast path, got fast=%d slow=%d", fast, slow)
			}
			if !c.wantFast && (fast != 0 || slow != 1) {
				t.Errorf("want slow path, got fast=%d slow=%d", fast, slow)
			}
			for id, p := range procs {
				ci := p.cmds[cmd.ID]
				if ci == nil || ci.phase != PhaseCommit && ci.phase != PhaseExecute {
					t.Fatalf("process %d: not committed (phase %v)", id, phaseOf(ci))
				}
				if ci.finalTS != c.wantTS {
					t.Errorf("process %d: ts=%d, want %d", id, ci.finalTS, c.wantTS)
				}
			}
		})
	}
}

// TestF1AlwaysFastPath verifies that Tempo f=1 never takes the slow path
// regardless of contention (the trivial count >= 1 condition, §3.1).
func TestF1AlwaysFastPath(t *testing.T) {
	topo := lineTopo(t, 5, 1, 1)
	procs, net := makeNet(t, topo, Config{})
	for site := 0; site < 5; site++ {
		p := procs[at(topo, site, 0)]
		for k := 0; k < 5; k++ {
			net.Submit(p.ID(), command.NewPut(p.NextID(), "contended", nil))
		}
	}
	net.Drain(0)
	var fastTotal, slowTotal uint64
	for _, p := range procs {
		fast, slow, _ := p.Stats()
		fastTotal += fast
		slowTotal += slow
	}
	if slowTotal != 0 {
		t.Errorf("f=1 must never take the slow path, got %d slow commits", slowTotal)
	}
	if fastTotal != 25 {
		t.Errorf("want 25 fast commits, got %d", fastTotal)
	}
}

// TestSlowPathAgreement drives a contended f=2 workload and checks that
// slow-path commits still satisfy Property 1 (timestamp agreement).
func TestSlowPathAgreement(t *testing.T) {
	topo := lineTopo(t, 5, 2, 1)
	procs, net := makeNet(t, topo, Config{})
	var cmds []*command.Command
	for site := 0; site < 5; site++ {
		p := procs[at(topo, site, 0)]
		for k := 0; k < 6; k++ {
			c := command.NewPut(p.NextID(), "hot", nil)
			cmds = append(cmds, c)
			net.Submit(p.ID(), c)
		}
	}
	net.Drain(0)
	net.Settle(5, 5*time.Millisecond)
	var slowTotal uint64
	for _, p := range procs {
		_, slow, _ := p.Stats()
		slowTotal += slow
	}
	if slowTotal == 0 {
		t.Log("note: no slow paths hit in this schedule")
	}
	for _, c := range cmds {
		ts := map[uint64][]ids.ProcessID{}
		for id, p := range procs {
			ci := p.cmds[c.ID]
			if ci == nil {
				t.Fatalf("process %d missing command %v", id, c.ID)
			}
			ts[ci.finalTS] = append(ts[ci.finalTS], id)
		}
		if len(ts) != 1 {
			t.Fatalf("Property 1 violated for %v: %v", c.ID, ts)
		}
	}
}
