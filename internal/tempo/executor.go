package tempo

import (
	"container/heap"

	"tempo/internal/command"
	"tempo/internal/ids"
	"tempo/internal/proto"
)

// tsDot orders committed commands by (timestamp, id), the execution order
// of the protocol.
type tsDot struct {
	ts uint64
	id ids.Dot
}

func (a tsDot) less(b tsDot) bool {
	if a.ts != b.ts {
		return a.ts < b.ts
	}
	return a.id.Less(b.id)
}

// tsDotHeap is a min-heap of committed-but-unexecuted commands.
type tsDotHeap struct{ h tsDotSlice }

type tsDotSlice []tsDot

// Len implements heap.Interface.
func (s tsDotSlice) Len() int { return len(s) }

// Less implements heap.Interface: the protocol's (ts, id) execution order.
func (s tsDotSlice) Less(i, j int) bool { return s[i].less(s[j]) }

// Swap implements heap.Interface.
func (s tsDotSlice) Swap(i, j int) { s[i], s[j] = s[j], s[i] }

// Push implements heap.Interface.
func (s *tsDotSlice) Push(x interface{}) { *s = append(*s, x.(tsDot)) }

// Pop implements heap.Interface.
func (s *tsDotSlice) Pop() interface{} {
	old := *s
	n := len(old)
	x := old[n-1]
	*s = old[:n-1]
	return x
}

func (h *tsDotHeap) push(x tsDot) { heap.Push(&h.h, x) }
func (h *tsDotHeap) pop() tsDot   { return heap.Pop(&h.h).(tsDot) }
func (h *tsDotHeap) peek() tsDot  { return h.h[0] }
func (h *tsDotHeap) len() int     { return len(h.h) }

// advanceExecution runs the execution protocol (Algorithm 2/6): pop
// committed commands whose timestamps are stable per Theorem 1, in
// (ts, id) order; single-shard commands execute immediately, multi-shard
// commands exchange MStable barriers first.
func (p *Process) advanceExecution() []proto.Action {
	var acts []proto.Action
	stable := p.tracker.Stable()
	for p.committed.len() > 0 && p.committed.peek().ts <= stable {
		td := p.committed.pop()
		p.ready = append(p.ready, td)
		// Signal stability to the other shards of the command as soon as
		// it is locally stable (line 101); sending eagerly (before head-
		// of-line commands execute) is safe because the signal only
		// states a fact about this shard.
		ci := p.cmds[td.id]
		if ci != nil && len(ci.shards) > 1 && !ci.sentStable {
			ci.sentStable = true
			ci.markStable(p.shard)
			if to := p.stableTargets(ci); len(to) > 0 {
				acts = append(acts, proto.Send(&MStable{ID: td.id, Shard: p.shard}, to...))
			}
		}
	}
	// Execute ready commands in order; a multi-shard head blocks until
	// every accessed shard signalled stability (line 102).
	for len(p.ready) > 0 {
		td := p.ready[0]
		ci := p.cmds[td.id]
		if ci == nil {
			p.ready = p.ready[1:]
			continue
		}
		if len(ci.shards) > 1 && !p.stableAtAllShards(ci) {
			break
		}
		p.execute(td, ci)
		p.ready = p.ready[1:]
	}
	return acts
}

// stableTargets returns the sibling-shard processes this replica signals
// stability to. A process only needs the signal from one replica per
// accessed shard (the paper waits on I^i_c, the closest replica of each
// shard), so we signal the co-located replicas — one per sibling shard
// per site — rather than broadcasting to all of I_c. If a sibling shard
// has no replica at this site, we fall back to all its replicas.
func (p *Process) stableTargets(ci *cmdInfo) []ids.ProcessID {
	site := p.topo.Process(p.id).Site
	var to []ids.ProcessID
	for _, s := range ci.shards {
		if s == p.shard {
			continue
		}
		if q := p.topo.ProcessAt(site, s); q != 0 {
			to = append(to, q)
		} else {
			to = append(to, p.topo.ShardProcesses(s)...)
		}
	}
	return to
}

func (p *Process) stableAtAllShards(ci *cmdInfo) bool {
	for _, s := range ci.shards {
		if !ci.stableAt(s) {
			return false
		}
	}
	return true
}

// execute performs the execute_p(c) upcall and advances the executed
// watermark. Inline mode (the default) applies the command to the local
// shard's state immediately; deferred mode only records that the
// command's execution order is final — the runtime applies it via
// ApplyStable, off the protocol's critical section. Delivery order is
// fixed here either way, so the watermark (which gates promise GC, not
// reads — reads are themselves commands) may advance before the deferred
// apply lands.
//
// A command at or below the executed watermark was already applied by a
// previous incarnation of this process (the state was restored from a
// snapshot or replayed log covering it, see Restore); re-delivered
// history — e.g. a commit replay answering an MCommitRequest after a
// restart emptied the tracker's committed set — only moves the phase, so
// nothing is applied twice.
func (p *Process) execute(td tsDot, ci *cmdInfo) {
	ci.phase = PhaseExecute
	point := TSWatermark{TS: td.ts, ID: td.id}
	if !p.executedWM.less(point) {
		return // at or below the watermark: executed before a restart
	}
	if p.deferApply {
		p.stableOut = append(p.stableOut, proto.Stable{
			Cmd:   ci.cmd,
			Shard: p.shard,
			TS:    td.ts,
			Multi: len(ci.shards) > 1,
		})
	} else {
		res := p.store.ApplyAt(ci.cmd, p.shard, p.topo.ShardOf, td.ts)
		p.executedOut = append(p.executedOut, proto.Executed{
			Cmd:    ci.cmd,
			Shard:  p.shard,
			Result: res,
		})
	}
	p.executedWM = point
}

// SetDeferredApply implements proto.DeferredApplier: when on, stable
// commands are emitted through DrainStable instead of being applied
// inline by protocol steps. Switch modes only before commands flow.
func (p *Process) SetDeferredApply(on bool) { p.deferApply = on }

// DrainStable implements proto.DeferredApplier: it returns the commands
// whose execution order became final since the last call, in execution
// order. Like Drain, calls are serialized with Submit/Handle/Tick.
func (p *Process) DrainStable() []proto.Stable {
	out := p.stableOut
	p.stableOut = nil
	return out
}

// ApplyStable implements proto.DeferredApplier: it applies one stable
// command (with final timestamp ts) to the local shard's store and
// returns its results. It touches only the store (which has its own
// lock) and immutable topology, so the runtime may call it concurrently
// with protocol steps. The store's applied-watermark guard makes
// re-applies no-ops, so WAL replay after a crash feeds records through
// this same entry point.
func (p *Process) ApplyStable(cmd *command.Command, ts uint64) *command.Result {
	return p.store.ApplyAt(cmd, p.shard, p.topo.ShardOf, ts)
}

// onMStable records that a sibling shard reached stability for a command
// (Algorithm 3/6).
func (p *Process) onMStable(m *MStable) []proto.Action {
	ci := p.info(m.ID)
	ci.markStable(m.Shard)
	return nil
}
