package tempo

import (
	"io"

	"tempo/internal/ids"
	"tempo/internal/proto"
)

// Crash-restart support (proto.Durable). The paper's model is crash-stop
// (Algorithm 4 recovers commands whose coordinator is gone; it never
// brings a process back), so a restarting replica must behave like a new
// process that honours every promise its previous incarnation made:
//
//   - It never re-promises a timestamp: Restore installs a clock
//     reservation at least as high as any value the old incarnation
//     reached, and new promises (attached or detached) start above it.
//     The gap below the restored clock is deliberately left unpromised —
//     some of those timestamps were attached to commands that may still
//     commit, so declaring them detached could order a late commit after
//     executions that assumed the slot was free. Theorem 1 stability
//     needs only a majority of ranks, so the permanently-stuck frontier
//     of a restarted rank costs exactly as much liveness as its crash
//     already did.
//   - It never re-mints a command id (the nextSeq reservation).
//   - It never re-executes history: the applied watermark makes
//     execute() and ApplyStable idempotent for everything the restored
//     state already covers.
//
// Per-command acceptor state (proposals, consensus accepts) is NOT
// persisted — the protocol treats the downtime as a crash and recovers
// in-flight commands from the surviving replicas (Algorithm 4), exactly
// as it would had the process never returned. The crash-failure model
// this preserves is the standard one (cf. "From Byzantine Failures to
// Crash Failures"): at most f replicas simultaneously crashed or
// restarting.

var _ proto.Durable = (*Process)(nil)

// AppliedWM implements proto.Durable: the applied watermark of the
// replica's store. Safe to call concurrently with protocol steps (the
// store carries its own lock).
func (p *Process) AppliedWM() (uint64, ids.Dot) { return p.store.AppliedWM() }

// Restore implements proto.Durable: it installs recovered durable state
// into a freshly constructed process. Call once, after replaying any
// snapshot/log into the store and before the first protocol step.
func (p *Process) Restore(clock, nextSeq, wmTS uint64, wmID ids.Dot) {
	if clock > p.clock {
		p.clock = clock
	}
	if nextSeq > p.nextSeq {
		p.nextSeq = nextSeq
	}
	wm := TSWatermark{TS: wmTS, ID: wmID}
	if p.executedWM.less(wm) {
		p.executedWM = wm
	}
}

// SnapshotTo implements proto.Durable: it serializes the replica's store
// together with its applied watermark. Consistent under concurrent
// applies, so a live node can answer a restarting peer's catch-up
// request with it.
func (p *Process) SnapshotTo(w io.Writer) error { return p.store.WriteSnapshot(w) }

// RestoreFrom implements proto.Durable: it replaces the store's contents
// with a snapshot written by SnapshotTo and advances the executed
// watermark to the snapshot's applied watermark. Like Restore, call only
// before protocol steps flow (local recovery and startup catch-up).
func (p *Process) RestoreFrom(r io.Reader) (uint64, ids.Dot, error) {
	if err := p.store.ReadSnapshot(r); err != nil {
		return 0, ids.Dot{}, err
	}
	ts, id := p.store.AppliedWM()
	wm := TSWatermark{TS: ts, ID: id}
	if p.executedWM.less(wm) {
		p.executedWM = wm
	}
	return ts, id, nil
}
