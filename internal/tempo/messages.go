// Package tempo implements the Tempo protocol of the paper "Efficient
// Replication via Timestamp Stability" (EuroSys 2021): a leaderless
// partial state-machine replication protocol that timestamps every command
// and executes it once its timestamp is stable.
//
// The implementation follows Algorithms 1-6 of the paper:
//
//   - the commit protocol with fast paths (count(t) >= f over a fast
//     quorum of size ⌊r/2⌋+f) and Flexible-Paxos slow paths over f+1
//     processes (Algorithm 1/5);
//   - the execution protocol based on timestamp stability detected from
//     attached and detached promises (Algorithm 2/6, Theorem 1);
//   - the multi-partition extension where a command's final timestamp is
//     the maximum over its per-partition timestamps, with MBump for
//     faster stability and MStable barriers (Algorithm 3);
//   - the recovery protocol with round-robin ballots (Algorithm 4/5);
//   - the liveness mechanisms of Appendix B (MRecNAck ballot catch-up,
//     MCommitRequest, periodic MPayload for pending commands).
package tempo

import (
	"tempo/internal/command"
	"tempo/internal/ids"
)

// Phase is the journey of a command through the protocol (Figure 1).
type Phase uint8

const (
	// PhaseStart is the initial phase: nothing known.
	PhaseStart Phase = iota
	// PhasePayload means the payload is known (MPayload received).
	PhasePayload
	// PhasePropose means a timestamp proposal was computed in the
	// MPropose handler.
	PhasePropose
	// PhaseRecoverR means the proposal was computed in the MRec handler.
	PhaseRecoverR
	// PhaseRecoverP means the proposal was computed in the MPropose
	// handler and an MRec was subsequently processed.
	PhaseRecoverP
	// PhaseCommit means the final timestamp is known.
	PhaseCommit
	// PhaseExecute means the command has been executed.
	PhaseExecute
)

// String names the phase as in Figure 1 of the paper.
func (p Phase) String() string {
	switch p {
	case PhaseStart:
		return "start"
	case PhasePayload:
		return "payload"
	case PhasePropose:
		return "propose"
	case PhaseRecoverR:
		return "recover-r"
	case PhaseRecoverP:
		return "recover-p"
	case PhaseCommit:
		return "commit"
	case PhaseExecute:
		return "execute"
	}
	return "?"
}

// pending reports whether the phase is in the pending set of the paper:
// payload ∪ propose ∪ recover-r ∪ recover-p.
func (p Phase) pending() bool {
	return p == PhasePayload || p == PhasePropose || p == PhaseRecoverR || p == PhaseRecoverP
}

// Quorums maps each shard accessed by a command to the fast quorum used at
// that shard. The first element of each quorum is the shard's coordinator.
type Quorums map[ids.ShardID][]ids.ProcessID

func (q Quorums) size() int {
	n := 0
	for _, ps := range q {
		n += 8 + 4*len(ps)
	}
	return n
}

// RankTS carries one fast-quorum member's promises on the wire: the
// attached promise TS plus the detached range [DetLo, DetHi] generated
// while computing the proposal (zero DetLo means no detached promises).
// Broadcasting these in MCommit is the §3.2 optimization that makes a
// committed timestamp usually stable immediately.
//
//tempo:wire encode=MCommit.AppendBinary decode=decodeMCommit
type RankTS struct {
	Rank         ids.Rank
	TS           uint64
	DetLo, DetHi uint64
}

// TSWatermark is the executed watermark of a process: commands are
// executed in (TS, ID) order, so everything up to the watermark has been
// executed by the sender.
//
//tempo:wire encode=appendWM decode=readWM
type TSWatermark struct {
	TS uint64
	ID ids.Dot
}

// less orders watermark points by (ts, id).
func (w TSWatermark) less(o TSWatermark) bool {
	if w.TS != o.TS {
		return w.TS < o.TS
	}
	return w.ID.Less(o.ID)
}

// MSubmit asks a process to act as a command's coordinator for its shard
// (line 4 of Algorithm 1). The submitting process sends it to one replica
// of each shard the command accesses.
//
//tempo:wire
type MSubmit struct {
	ID      ids.Dot
	Cmd     *command.Command
	Quorums Quorums
}

// MPayload carries the command payload to the processes outside the fast
// quorum (line 8).
//
//tempo:wire
type MPayload struct {
	ID      ids.Dot
	Cmd     *command.Command
	Quorums Quorums
}

// MPropose asks a fast-quorum process for a timestamp proposal (line 7).
//
//tempo:wire
type MPropose struct {
	ID      ids.Dot
	Cmd     *command.Command
	Quorums Quorums
	TS      uint64 // coordinator's own proposal m
}

// MProposeAck returns a timestamp proposal to the coordinator (line 16).
// DetachedLo/Hi piggyback the detached promises generated while computing
// the proposal (§3.2 optimization); an empty range means none.
//
//tempo:wire
type MProposeAck struct {
	ID         ids.Dot
	TS         uint64
	DetachedLo uint64
	DetachedHi uint64
}

// MBump tells nearby processes of sibling shards to bump their clocks to
// the sender's proposal, generating detached promises early (Algorithm 3,
// line 68; "faster stability").
//
//tempo:wire
type MBump struct {
	ID ids.Dot
	TS uint64
}

// MCommit announces the timestamp committed for a command at one shard
// (lines 20/33). Attached carries the attached promises of the shard's
// fast quorum so receivers can advance stability immediately (§3.2).
//
//tempo:wire
type MCommit struct {
	ID       ids.Dot
	Shard    ids.ShardID
	TS       uint64
	Attached []RankTS
}

// MConsensus is Flexible Paxos phase 2 for the slow path (line 21).
//
//tempo:wire
type MConsensus struct {
	ID     ids.Dot
	TS     uint64
	Ballot ids.Ballot
}

// MConsensusAck accepts a consensus proposal (line 30).
//
//tempo:wire
type MConsensusAck struct {
	ID     ids.Dot
	Ballot ids.Ballot
}

// MRec starts recovery of a command at a ballot (Algorithm 4, line 75).
//
//tempo:wire
type MRec struct {
	ID     ids.Dot
	Ballot ids.Ballot
}

// MRecAck answers MRec with the local timestamp, phase and accepted
// ballot (line 85).
//
//tempo:wire
type MRecAck struct {
	ID       ids.Dot
	TS       uint64
	Phase    Phase
	ABallot  ids.Ballot
	Ballot   ids.Ballot
	Attached bool // whether TS is a genuine proposal (attached promise)
}

// MRecNAck tells a would-be recovery coordinator that its ballot is stale
// (Appendix B, line 81).
//
//tempo:wire
type MRecNAck struct {
	ID     ids.Dot
	Ballot ids.Ballot
}

// MCommitRequest asks a process that has committed a command to share the
// payload and commit information (Appendix B, line 86).
//
//tempo:wire
type MCommitRequest struct {
	ID ids.Dot
}

// MPromises periodically broadcasts the sender's promises within its shard
// (Algorithm 2, line 45). Detached is an interval-encoded set (pairs of
// lo,hi); Attached lists the sender's attached promises not yet folded
// away; WM is the sender's executed watermark, used for promise GC.
//
//tempo:wire
type MPromises struct {
	Rank     ids.Rank
	Detached []uint64
	Attached []AttachedWire
	WM       TSWatermark
}

// AttachedWire is an attached promise on the wire, including the command
// id it is attached to.
//
//tempo:wire encode=MPromises.AppendBinary decode=decodeMPromises
type AttachedWire struct {
	ID ids.Dot
	TS uint64
}

// MStable signals that a command's timestamp is stable at the sender's
// shard (Algorithm 3, line 64). A process executes a multi-shard command
// only after every accessed shard signalled stability.
//
//tempo:wire
type MStable struct {
	ID    ids.Dot
	Shard ids.ShardID
}

// Message sizes: approximate wire sizes used by the simulator's bandwidth
// model. Command payloads dominate.

const hdr = 24 // id + type tag

func cmdSize(c *command.Command) int {
	if c == nil {
		return 0
	}
	return c.SizeBytes()
}

// Size implements proto.Message.
func (m *MSubmit) Size() int { return hdr + cmdSize(m.Cmd) + m.Quorums.size() }

// Size implements proto.Message.
func (m *MPayload) Size() int { return hdr + cmdSize(m.Cmd) + m.Quorums.size() }

// Size implements proto.Message.
func (m *MPropose) Size() int { return hdr + 8 + cmdSize(m.Cmd) + m.Quorums.size() }

// Size implements proto.Message.
func (m *MProposeAck) Size() int { return hdr + 24 }

// Size implements proto.Message.
func (m *MBump) Size() int { return hdr + 8 }

// Size implements proto.Message.
func (m *MCommit) Size() int { return hdr + 12 + 28*len(m.Attached) }

// Size implements proto.Message.
func (m *MConsensus) Size() int { return hdr + 16 }

// Size implements proto.Message.
func (m *MConsensusAck) Size() int { return hdr + 8 }

// Size implements proto.Message.
func (m *MRec) Size() int { return hdr + 8 }

// Size implements proto.Message.
func (m *MRecAck) Size() int { return hdr + 26 }

// Size implements proto.Message.
func (m *MRecNAck) Size() int { return hdr + 8 }

// Size implements proto.Message.
func (m *MCommitRequest) Size() int { return hdr }

// Size implements proto.Message.
func (m *MPromises) Size() int {
	return hdr + 4 + 8*len(m.Detached) + 24*len(m.Attached) + 24
}

// Size implements proto.Message.
func (m *MStable) Size() int { return hdr + 4 }
