package tempo

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"tempo/internal/command"
	"tempo/internal/ids"
	"tempo/internal/testnet"
)

// TestDuplicatedMessagesAreIdempotent delivers every protocol message
// twice (modelling sender retries over an at-least-once link): commits
// must not double-execute, acks must not double-count, and all replicas
// must still converge to identical execution sequences.
func TestDuplicatedMessagesAreIdempotent(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			topo := lineTopo(t, 5, 2, 1)
			procs, net := makeNet(t, topo, Config{})
			net.Rng = rng
			net.Duplicate = func(e testnet.Env) bool { return rng.Intn(2) == 0 }

			var cmds []*command.Command
			for i := 0; i < 20; i++ {
				p := procs[at(topo, rng.Intn(5), 0)]
				c := command.NewPut(p.NextID(), command.Key(fmt.Sprintf("k%d", rng.Intn(3))), nil)
				cmds = append(cmds, c)
				net.Submit(p.ID(), c)
				for s := 0; s < rng.Intn(10); s++ {
					net.Step()
				}
			}
			net.Drain(0)
			net.Settle(6, 5*time.Millisecond)

			var ref []ids.Dot
			for pid, p := range procs {
				var got []ids.Dot
				for _, e := range p.Drain() {
					got = append(got, e.Cmd.ID)
				}
				if len(got) != len(cmds) {
					t.Fatalf("process %d executed %d/%d under duplication", pid, len(got), len(cmds))
				}
				if ref == nil {
					ref = got
					continue
				}
				for i := range ref {
					if ref[i] != got[i] {
						t.Fatalf("divergence under duplication at %d", i)
					}
				}
			}
		})
	}
}

// TestDuplicatedCommitIsIgnored replays an MCommit directly and checks
// the executor does not run the command twice.
func TestDuplicatedCommitIsIgnored(t *testing.T) {
	topo := lineTopo(t, 3, 1, 1)
	procs, net := makeNet(t, topo, Config{})
	a := at(topo, 0, 0)
	b := at(topo, 1, 0)
	cmd := command.NewPut(procs[a].NextID(), "k", nil)

	var commit *MCommit
	net.Hold = func(e testnet.Env) bool {
		if mc, ok := e.Msg.(*MCommit); ok && commit == nil {
			commit = mc
		}
		return false
	}
	net.Submit(a, cmd)
	net.Drain(0)
	net.Settle(3, 5*time.Millisecond)
	if commit == nil {
		t.Fatal("setup: no commit captured")
	}
	before := len(procs[b].Drain())

	// Replay the commit at B several times.
	for i := 0; i < 3; i++ {
		net.Deliver(a, b, commit)
	}
	net.Drain(0)
	net.Settle(2, 5*time.Millisecond)
	if extra := len(procs[b].Drain()); extra != 0 {
		t.Fatalf("duplicate MCommit re-executed the command %d times (had %d)", extra, before)
	}
}
