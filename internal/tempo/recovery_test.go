package tempo

import (
	"testing"
	"time"

	"tempo/internal/command"
	"tempo/internal/testnet"
)

// recoveryConfig enables recovery with a short timeout.
func recoveryConfig() Config {
	return Config{
		PromiseInterval: 5 * time.Millisecond,
		RecoveryTimeout: 20 * time.Millisecond,
		RetainLog:       true,
	}
}

// TestRecoveryFastPathTimestamp exercises Property 4: the coordinator
// takes the fast path and crashes before anyone (except possibly a subset)
// receives MCommit; the recovered timestamp must equal the fast-path one.
//
// Setup (r=5, f=1, quorum {A,B,C}): A proposes 1, B proposes 6, C proposes
// 10; fast path decides ts = 10 (count >= f=1 trivially).
func TestRecoveryFastPathTimestamp(t *testing.T) {
	topo := lineTopo(t, 5, 1, 1)
	procs, net := makeNet(t, topo, recoveryConfig())
	A := at(topo, 0, 0)
	B := at(topo, 1, 0)
	C := at(topo, 2, 0)
	procs[B].bump(5)
	procs[C].bump(9)

	cmd := command.NewPut(procs[A].NextID(), "k", nil)
	// Park every MCommit: the coordinator decides but nobody learns.
	net.Hold = func(e testnet.Env) bool {
		_, is := e.Msg.(*MCommit)
		return is
	}
	net.Submit(A, cmd)
	net.Drain(0)
	if fast, _, _ := procs[A].Stats(); fast != 1 {
		t.Fatal("setup: coordinator should have taken the fast path")
	}
	if procs[B].cmds[cmd.ID].phase != PhasePropose {
		t.Fatal("setup: B should still be in propose")
	}

	// Coordinator crashes; the parked MCommits die with it, and the
	// network heals for everyone else.
	net.Crash(A)
	net.Hold = nil
	net.SetLeader(procs[B].Rank())
	net.Settle(10, 10*time.Millisecond)

	// Everyone alive commits with the fast-path timestamp 10.
	for pid, p := range procs {
		if pid == A {
			continue
		}
		ci := p.cmds[cmd.ID]
		if ci == nil || (ci.phase != PhaseCommit && ci.phase != PhaseExecute) {
			t.Fatalf("process %d: not committed after recovery (phase %v)", pid, phaseOf(ci))
		}
		if ci.finalTS != 10 {
			t.Errorf("process %d: recovered ts = %d, want 10 (Property 4)", pid, ci.finalTS)
		}
	}
	if _, _, rec := procs[B].Stats(); rec == 0 {
		t.Error("leader B should have run recovery")
	}
}

// TestRecoveryWithInitialCoordinatorAlive: the coordinator never decides
// (an ack is lost) but stays alive; the leader recovers and, because the
// initial coordinator replies to MRec, any majority max is a valid
// timestamp (case s = true of Algorithm 4).
func TestRecoveryCoordinatorAlive(t *testing.T) {
	topo := lineTopo(t, 5, 1, 1)
	procs, net := makeNet(t, topo, recoveryConfig())
	A := at(topo, 0, 0)
	B := at(topo, 1, 0)
	C := at(topo, 2, 0)
	procs[C].bump(9)

	cmd := command.NewPut(procs[A].NextID(), "k", nil)
	// Lose C's proposal ack: A can never decide.
	net.Drop = func(e testnet.Env) bool {
		_, is := e.Msg.(*MProposeAck)
		return is && e.From == C
	}
	net.Submit(A, cmd)
	net.Drain(0)
	if ci := procs[A].cmds[cmd.ID]; ci.phase != PhasePropose {
		t.Fatalf("setup: A should be stuck in propose, got %v", ci.phase)
	}

	net.SetLeader(procs[B].Rank())
	net.Settle(10, 10*time.Millisecond)

	var ts uint64
	for pid, p := range procs {
		ci := p.cmds[cmd.ID]
		if ci == nil || (ci.phase != PhaseCommit && ci.phase != PhaseExecute) {
			t.Fatalf("process %d: not committed after recovery", pid)
		}
		if ts == 0 {
			ts = ci.finalTS
		} else if ci.finalTS != ts {
			t.Fatalf("Property 1 violated: %d vs %d", ci.finalTS, ts)
		}
	}
	// C proposed 10 and its ack was lost, but C still answers MRec with
	// its proposal, so the recovered timestamp is 10.
	if ts != 10 {
		t.Errorf("recovered ts = %d, want 10", ts)
	}
}

// TestRecoverySlowPathAcceptedValue: the coordinator starts the slow path,
// a minority accepts its consensus proposal, and the coordinator crashes.
// Recovery must adopt the accepted value (standard Paxos rule, line 89).
func TestRecoverySlowPathAcceptedValue(t *testing.T) {
	topo := lineTopo(t, 5, 2, 1)
	procs, net := makeNet(t, topo, recoveryConfig())
	A := at(topo, 0, 0)
	B := at(topo, 1, 0)
	C := at(topo, 2, 0)
	// Proposals: A=1, B=6, C=10, D=1 -> max 10 with count 1 < f=2: slow
	// path with consensus value 10.
	procs[B].bump(5)
	procs[C].bump(9)

	cmd := command.NewPut(procs[A].NextID(), "k", nil)
	// B's consensus ack gets through; then freeze commits entirely.
	net.Hold = func(e testnet.Env) bool {
		if _, is := e.Msg.(*MCommit); is {
			return true
		}
		if _, is := e.Msg.(*MConsensusAck); is && e.From != B {
			return true
		}
		return false
	}
	net.Submit(A, cmd)
	net.Drain(0)
	if _, slow, _ := procs[A].Stats(); slow != 1 {
		t.Fatal("setup: expected slow path")
	}
	if procs[B].cmds[cmd.ID].abal == 0 {
		t.Fatal("setup: B should have accepted a consensus value")
	}

	net.Crash(A)
	net.Hold = nil
	net.SetLeader(procs[C].Rank())
	net.Settle(10, 10*time.Millisecond)

	for pid, p := range procs {
		if pid == A {
			continue
		}
		ci := p.cmds[cmd.ID]
		if ci == nil || (ci.phase != PhaseCommit && ci.phase != PhaseExecute) {
			t.Fatalf("process %d: not committed after recovery", pid)
		}
		if ci.finalTS != 10 {
			t.Errorf("process %d: ts = %d, want the accepted value 10", pid, ci.finalTS)
		}
	}
}

// TestRecoveryBallotNAckCatchUp: two processes race to recover; the one
// with the stale ballot gets MRecNAck and retries with a higher ballot
// (Appendix B).
func TestRecoveryBallotNAckCatchUp(t *testing.T) {
	topo := lineTopo(t, 5, 1, 1)
	procs, net := makeNet(t, topo, recoveryConfig())
	A := at(topo, 0, 0)
	B := at(topo, 1, 0)
	C := at(topo, 2, 0)

	cmd := command.NewPut(procs[A].NextID(), "k", nil)
	net.Hold = func(e testnet.Env) bool {
		_, is := e.Msg.(*MCommit)
		return is
	}
	net.Submit(A, cmd)
	net.Drain(0)
	net.Crash(A)
	net.Hold = nil

	// C recovers first at its ballot...
	net.SetLeader(procs[C].Rank())
	net.Settle(3, 15*time.Millisecond)
	// ...then the oracle switches to B, whose first ballot is lower than
	// C's; B must NAck-catch-up and still finish.
	net.SetLeader(procs[B].Rank())
	net.Settle(10, 15*time.Millisecond)

	var ts uint64
	for pid, p := range procs {
		if pid == A {
			continue
		}
		ci := p.cmds[cmd.ID]
		if ci == nil || (ci.phase != PhaseCommit && ci.phase != PhaseExecute) {
			t.Fatalf("process %d: not committed (phase %v)", pid, phaseOf(ci))
		}
		if ts == 0 {
			ts = ci.finalTS
		} else if ci.finalTS != ts {
			t.Fatalf("Property 1 violated after dueling recoveries")
		}
	}
}

// TestPayloadViaCommitRequest: a process that missed the payload (and
// whose MCommit arrived before it) catches up through the
// MPromises/MCommitRequest liveness path of Appendix B.
func TestPayloadViaCommitRequest(t *testing.T) {
	topo := lineTopo(t, 5, 1, 1)
	procs, net := makeNet(t, topo, recoveryConfig())
	A := at(topo, 0, 0)
	E := at(topo, 4, 0)

	cmd := command.NewPut(procs[A].NextID(), "k", []byte("v"))
	// E never receives the payload directly.
	net.Drop = func(e testnet.Env) bool {
		_, is := e.Msg.(*MPayload)
		return is && e.To == E
	}
	net.Submit(A, cmd)
	net.Drain(0)
	if ci := procs[E].cmds[cmd.ID]; ci != nil && ci.cmd != nil {
		t.Fatal("setup: E should not have the payload")
	}
	// Allow payloads now (the drop stands in for a transient loss);
	// E learns about the command through attached promises in MPromises
	// and asks for the commit.
	net.Drop = nil
	net.Settle(6, 10*time.Millisecond)
	ci := procs[E].cmds[cmd.ID]
	if ci == nil || ci.phase != PhaseExecute {
		t.Fatalf("E did not catch up: phase %v", phaseOf(ci))
	}
	if v, ok := procs[E].Store().Get("k"); !ok || string(v) != "v" {
		t.Error("E's store missing the value")
	}
}

// TestRecoveryIdempotentOnCommitted: MRec for an already committed command
// replays the commit instead of recovering.
func TestRecoveryIdempotentOnCommitted(t *testing.T) {
	topo := lineTopo(t, 5, 1, 1)
	procs, net := makeNet(t, topo, recoveryConfig())
	A := at(topo, 0, 0)
	B := at(topo, 1, 0)
	cmd := command.NewPut(procs[A].NextID(), "k", nil)
	net.Submit(A, cmd)
	net.Drain(0)
	tsBefore := procs[B].cmds[cmd.ID].finalTS

	// A stale MRec arrives at B after commit.
	net.Deliver(at(topo, 2, 0), B, &MRec{ID: cmd.ID, Ballot: 99})
	net.Drain(0)
	if got := procs[B].cmds[cmd.ID].finalTS; got != tsBefore {
		t.Errorf("commit mutated by stale MRec: %d -> %d", tsBefore, got)
	}
}
