package tempo

import (
	"testing"
	"time"

	"tempo/internal/command"
	"tempo/internal/ids"
)

// TestAttachedPromisesStaySorted pins the incremental sorted-set
// invariant that replaced the per-broadcast sort.Slice: attachedSorted
// stays ordered by command id through out-of-order inserts and updates,
// mirrors the map exactly, and is what MPromises carries.
func TestAttachedPromisesStaySorted(t *testing.T) {
	topo := lineTopo(t, 5, 1, 1)
	p := New(at(topo, 0, 0), topo, Config{})

	dots := []ids.Dot{
		{Source: 3, Seq: 5}, {Source: 1, Seq: 9}, {Source: 2, Seq: 1},
		{Source: 1, Seq: 2}, {Source: 5, Seq: 7}, {Source: 2, Seq: 4},
	}
	for i, d := range dots {
		p.addOwnAttached(d, uint64(10+i))
	}
	assertAttachedViewsAgree(t, p)

	// Updating an existing id must not duplicate the entry.
	p.addOwnAttached(dots[0], 99)
	if len(p.attachedSorted) != len(dots) {
		t.Fatalf("update grew the sorted view to %d entries, want %d", len(p.attachedSorted), len(dots))
	}
	assertAttachedViewsAgree(t, p)

	acts := p.broadcastPromises()
	if len(acts) != 1 {
		t.Fatalf("broadcastPromises returned %d actions", len(acts))
	}
	m := acts[0].Msg.(*MPromises)
	if len(m.Attached) != len(dots) {
		t.Fatalf("broadcast carries %d attached, want %d", len(m.Attached), len(dots))
	}
	for i := 1; i < len(m.Attached); i++ {
		if !m.Attached[i-1].ID.Less(m.Attached[i].ID) {
			t.Fatalf("MPromises.Attached out of order at %d: %v then %v",
				i, m.Attached[i-1].ID, m.Attached[i].ID)
		}
	}
}

// TestAttachedSortedSurvivesWorkload runs a real multi-site workload to
// completion and checks every replica's sorted view still matches its
// map after the GC sweep folded promises away.
func TestAttachedSortedSurvivesWorkload(t *testing.T) {
	topo := lineTopo(t, 5, 1, 1)
	procs, net := makeNet(t, topo, Config{})
	for site := 0; site < 5; site++ {
		p := procs[at(topo, site, 0)]
		for k := 0; k < 4; k++ {
			net.Submit(p.ID(), command.NewPut(p.NextID(), "hot", []byte{byte(site), byte(k)}))
		}
	}
	net.Drain(0)
	net.Settle(5, 5*time.Millisecond)
	for id, p := range procs {
		t.Run("", func(t *testing.T) { _ = id; assertAttachedViewsAgree(t, p) })
	}
}

func assertAttachedViewsAgree(t *testing.T, p *Process) {
	t.Helper()
	p.foldFreshAttached()
	if len(p.attachedSorted) != len(p.attachedOwn) {
		t.Fatalf("sorted view has %d entries, map has %d", len(p.attachedSorted), len(p.attachedOwn))
	}
	for i, aw := range p.attachedSorted {
		if ts, ok := p.attachedOwn[aw.ID]; !ok || ts != aw.TS {
			t.Fatalf("entry %d (%v, ts %d) disagrees with map (ts %d, present %v)", i, aw.ID, aw.TS, ts, ok)
		}
		if i > 0 && !p.attachedSorted[i-1].ID.Less(aw.ID) {
			t.Fatalf("sorted view out of order at %d: %v then %v", i, p.attachedSorted[i-1].ID, aw.ID)
		}
	}
}

// TestMCommitAttachedSortedByRank pins the §3.2 piggyback layout: the
// attached promises broadcast in MCommit are ordered by rank (the
// rank-indexed proposal slice guarantees it by construction).
func TestMCommitAttachedSortedByRank(t *testing.T) {
	topo := lineTopo(t, 5, 1, 1)
	p := New(at(topo, 0, 0), topo, Config{})
	id := ids.Dot{Source: p.ID(), Seq: 1}
	ci := &cmdInfo{
		cmd:       command.NewPut(id, "k", []byte("v")),
		shards:    []ids.ShardID{0},
		proposals: []uint64{7, 0, 9, 8, 9}, // rank 2 never answered
	}
	acts := p.sendCommit(id, ci, 9)
	if len(acts) != 1 {
		t.Fatalf("sendCommit returned %d actions", len(acts))
	}
	mc := acts[0].Msg.(*MCommit)
	if len(mc.Attached) != 4 {
		t.Fatalf("MCommit carries %d attached, want 4", len(mc.Attached))
	}
	for i := 1; i < len(mc.Attached); i++ {
		if mc.Attached[i-1].Rank >= mc.Attached[i].Rank {
			t.Fatalf("MCommit.Attached not sorted by rank: %v", mc.Attached)
		}
	}
}
