package tempo

import (
	"testing"
	"time"

	"tempo/internal/command"
	"tempo/internal/ids"
	"tempo/internal/proto"
	"tempo/internal/testnet"
	"tempo/internal/topology"
)

// lineTopo builds r sites on a line with RTT 2ms per hop, so the fast
// quorum of the site-0 process is deterministic: the next sites in order.
func lineTopo(t *testing.T, r, f, shards int) *topology.Topology {
	t.Helper()
	names := make([]string, r)
	rtt := make([][]time.Duration, r)
	for i := range names {
		names[i] = string(rune('A' + i))
		rtt[i] = make([]time.Duration, r)
		for j := range rtt[i] {
			d := i - j
			if d < 0 {
				d = -d
			}
			rtt[i][j] = time.Duration(d) * 2 * time.Millisecond
		}
	}
	topo, err := topology.New(topology.Config{
		SiteNames: names,
		RTT:       rtt,
		NumShards: shards,
		F:         f,
	})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// makeNet builds one Tempo replica per process in the topology plus a
// testnet pump. Recovery is effectively disabled unless cfg says
// otherwise.
func makeNet(t *testing.T, topo *topology.Topology, cfg Config) (map[ids.ProcessID]*Process, *testnet.Net) {
	t.Helper()
	if cfg.RecoveryTimeout == 0 {
		cfg.RecoveryTimeout = time.Hour
	}
	cfg.RetainLog = true // tests inspect per-command state after GC
	procs := make(map[ids.ProcessID]*Process)
	var reps []proto.Replica
	for _, pi := range topo.Processes() {
		p := New(pi.ID, topo, cfg)
		procs[pi.ID] = p
		reps = append(reps, p)
	}
	return procs, testnet.New(reps...)
}

func at(topo *topology.Topology, site int, shard int) ids.ProcessID {
	return topo.ProcessAt(ids.SiteID(site), ids.ShardID(shard))
}

func TestSingleCommandCommitsAndExecutes(t *testing.T) {
	topo := lineTopo(t, 5, 1, 1)
	procs, net := makeNet(t, topo, Config{})
	a := at(topo, 0, 0)
	cmd := command.NewPut(procs[a].NextID(), "x", []byte("v"))
	net.Submit(a, cmd)
	net.Drain(0)
	net.Settle(3, 5*time.Millisecond)

	for id, p := range procs {
		ci := p.cmds[cmd.ID]
		if ci == nil || ci.phase != PhaseExecute {
			t.Fatalf("process %d: command not executed (phase %v)", id, phaseOf(ci))
		}
		if v, ok := p.Store().Get("x"); !ok || string(v) != "v" {
			t.Errorf("process %d: store missing value", id)
		}
	}
	if fast, slow, _ := procs[a].Stats(); fast != 1 || slow != 0 {
		t.Errorf("expected 1 fast path commit, got fast=%d slow=%d", fast, slow)
	}
}

func phaseOf(ci *cmdInfo) Phase {
	if ci == nil {
		return PhaseStart
	}
	return ci.phase
}

func TestSequentialCommandsTotalOrder(t *testing.T) {
	topo := lineTopo(t, 5, 1, 1)
	procs, net := makeNet(t, topo, Config{})
	// Concurrent conflicting submissions from every site.
	var cmds []*command.Command
	for site := 0; site < 5; site++ {
		p := procs[at(topo, site, 0)]
		for k := 0; k < 4; k++ {
			c := command.NewPut(p.NextID(), "hot", []byte{byte(site), byte(k)})
			cmds = append(cmds, c)
			net.Submit(p.ID(), c)
		}
	}
	net.Drain(0)
	net.Settle(5, 5*time.Millisecond)

	// Every process must execute every command, in the same order.
	var ref []ids.Dot
	for id, p := range procs {
		var got []ids.Dot
		for _, e := range p.Drain() {
			got = append(got, e.Cmd.ID)
		}
		if len(got) != len(cmds) {
			t.Fatalf("process %d executed %d of %d commands", id, len(got), len(cmds))
		}
		if ref == nil {
			ref = got
			continue
		}
		for i := range ref {
			if ref[i] != got[i] {
				t.Fatalf("process %d diverges at %d: %v vs %v", id, i, got[i], ref[i])
			}
		}
	}

	// Property 1: all processes agree on each command's timestamp.
	for _, c := range cmds {
		var ts uint64
		for id, p := range procs {
			got := p.cmds[c.ID].finalTS
			if ts == 0 {
				ts = got
			} else if got != ts {
				t.Fatalf("process %d: ts(%v)=%d, others %d", id, c.ID, got, ts)
			}
		}
	}
}

func TestProposalGeneratesPromises(t *testing.T) {
	topo := lineTopo(t, 3, 1, 1)
	procs, _ := makeNet(t, topo, Config{})
	p := procs[at(topo, 0, 0)]

	// First proposal from clock 0: no detached promises, attached at 1.
	id1 := p.NextID()
	if got := p.proposal(id1, 0); got != 1 {
		t.Fatalf("proposal = %d, want 1", got)
	}
	if p.attachedOwn[id1] != 1 {
		t.Error("attached promise missing")
	}
	if p.detached.Len() != 0 {
		t.Errorf("unexpected detached promises: %v", p.detached)
	}

	// Proposal forced to 6 from clock 1: detached 2..5, attached 6.
	id2 := p.NextID()
	if got := p.proposal(id2, 6); got != 6 {
		t.Fatalf("proposal = %d, want 6", got)
	}
	if !p.detached.ContainsRange(2, 5) || p.detached.Contains(6) {
		t.Errorf("detached = %v, want exactly 2-5", p.detached)
	}
	if p.clock != 6 {
		t.Errorf("clock = %d, want 6", p.clock)
	}
}

func TestBumpGeneratesDetachedIncludingTarget(t *testing.T) {
	topo := lineTopo(t, 3, 1, 1)
	procs, _ := makeNet(t, topo, Config{})
	p := procs[at(topo, 0, 0)]
	p.bump(4)
	if !p.detached.ContainsRange(1, 4) || p.detached.Len() != 4 {
		t.Errorf("detached = %v, want exactly 1-4", p.detached)
	}
	p.bump(2) // no-op: clock already past
	if p.clock != 4 {
		t.Errorf("clock = %d, want 4", p.clock)
	}
}

func TestReadYourWrite(t *testing.T) {
	topo := lineTopo(t, 3, 1, 1)
	procs, net := makeNet(t, topo, Config{})
	a := at(topo, 0, 0)
	p := procs[a]
	net.Submit(a, command.NewPut(p.NextID(), "k", []byte("v1")))
	net.Drain(0)
	net.Settle(3, 5*time.Millisecond)
	read := command.NewGet(p.NextID(), "k")
	net.Submit(a, read)
	net.Drain(0)
	net.Settle(3, 5*time.Millisecond)
	var res *command.Result
	for _, e := range p.Drain() {
		if e.Cmd.ID == read.ID {
			res = e.Result
		}
	}
	if res == nil || len(res.Values) != 1 || string(res.Values[0]) != "v1" {
		t.Fatalf("read result = %+v, want v1", res)
	}
}

func TestPromiseGC(t *testing.T) {
	topo := lineTopo(t, 3, 1, 1)
	procs, net := makeNet(t, topo, Config{})
	for _, p := range procs {
		p.cfg.RetainLog = false // this test verifies GC itself
	}
	a := at(topo, 0, 0)
	p := procs[a]
	for i := 0; i < 10; i++ {
		net.Submit(a, command.NewPut(p.NextID(), "k", []byte{byte(i)}))
		net.Drain(0)
	}
	net.Settle(6, 5*time.Millisecond)
	// After everything executed everywhere and watermarks propagated, the
	// coordinator's attached promises must be folded into the detached
	// set and per-command state collected.
	if len(p.attachedOwn) != 0 {
		t.Errorf("attachedOwn not collected: %d entries", len(p.attachedOwn))
	}
	if len(p.cmds) != 0 {
		t.Errorf("cmds not collected: %d entries", len(p.cmds))
	}
	if p.detached.NumIntervals() != 1 {
		t.Errorf("detached set should have merged into one interval, got %v", p.detached)
	}
}

func TestSubmitMultiShard(t *testing.T) {
	topo := lineTopo(t, 3, 1, 2)
	procs, net := makeNet(t, topo, Config{})
	a := at(topo, 0, 0)
	p := procs[a]

	// Build a command touching both shards.
	k0 := findKey(topo, 0)
	k1 := findKey(topo, 1)
	c := command.New(p.NextID(),
		command.Op{Kind: command.Put, Key: k0, Value: []byte("v0")},
		command.Op{Kind: command.Put, Key: k1, Value: []byte("v1")},
	)
	net.Submit(a, c)
	net.Drain(0)
	net.Settle(5, 5*time.Millisecond)

	for id, proc := range procs {
		ci := proc.cmds[c.ID]
		if ci == nil || ci.phase != PhaseExecute {
			t.Fatalf("process %d (shard %d): phase %v, want execute", id, proc.Shard(), phaseOf(ci))
		}
	}
	// Shard stores only hold their own keys.
	if v, ok := procs[at(topo, 0, 0)].Store().Get(k0); !ok || string(v) != "v0" {
		t.Error("shard 0 store missing k0")
	}
	if _, ok := procs[at(topo, 0, 0)].Store().Get(k1); ok {
		t.Error("shard 0 store must not hold shard-1 key")
	}
	if v, ok := procs[at(topo, 0, 1)].Store().Get(k1); !ok || string(v) != "v1" {
		t.Error("shard 1 store missing k1")
	}
}

// findKey returns a key hashed to the given shard.
func findKey(topo *topology.Topology, shard ids.ShardID) command.Key {
	for i := 0; ; i++ {
		k := command.Key("key-" + string(rune('a'+i%26)) + string(rune('0'+i/26)))
		if topo.ShardOf(k) == shard {
			return k
		}
	}
}

func TestCrashedProcessIsSilent(t *testing.T) {
	topo := lineTopo(t, 3, 1, 1)
	procs, _ := makeNet(t, topo, Config{})
	p := procs[at(topo, 0, 0)]
	p.Crash()
	if acts := p.Submit(command.NewPut(ids.Dot{Source: p.ID(), Seq: 1}, "k", nil)); acts != nil {
		t.Error("crashed process must not act on submit")
	}
	if acts := p.Tick(time.Second); acts != nil {
		t.Error("crashed process must not tick")
	}
}
