package tempo

import (
	"testing"
	"time"

	"tempo/internal/command"
	"tempo/internal/ids"
	"tempo/internal/testnet"
)

// TestFigure3TimestampStability encodes the left-hand side of Figure 3:
// r = 3 processes A, B, C; commands w, x submitted by A, y by B, z by C,
// arriving as w, x, z at A; y, w at B; z, y at C (x's proposal to B is
// delayed). The paper derives:
//
//	attached promises: w -> {<A,1>,<B,2>}, x -> {<A,2>},
//	                   y -> {<B,1>,<C,2>}, z -> {<C,1>,<A,3>}
//	timestamps:        ts(w)=2, ts(y)=2, ts(z)=3, x uncommitted
//
// and timestamp 2 is stable, so w and y execute even though x is not
// committed — unlike EPaxos/Caesar in the same scenario (§3.3).
func TestFigure3TimestampStability(t *testing.T) {
	topo := lineTopo(t, 3, 1, 1)
	procs, net := makeNet(t, topo, Config{})
	A := at(topo, 0, 0)
	B := at(topo, 1, 0)
	C := at(topo, 2, 0)

	w := command.NewPut(procs[A].NextID(), "w", nil)
	x := command.NewPut(procs[A].NextID(), "x", nil)
	y := command.NewPut(procs[B].NextID(), "y", nil)
	z := command.NewPut(procs[C].NextID(), "z", nil)

	// Park x's proposal to B so that only A sees x.
	net.Hold = func(e testnet.Env) bool {
		mp, ok := e.Msg.(*MPropose)
		return ok && mp.ID == x.ID && e.To == B
	}

	// Fast quorums as in the figure: w,x use {A,B}; y uses {B,C};
	// z uses {C,A}. Submissions happen in order w, x, y, z; remote
	// proposals then drain FIFO, giving the figure's arrival order.
	submit := func(coord ids.ProcessID, c *command.Command, fq ...ids.ProcessID) {
		net.Deliver(coord, coord, &MSubmit{ID: c.ID, Cmd: c, Quorums: Quorums{0: fq}})
	}
	submit(A, w, A, B)
	submit(A, x, A, B)
	submit(B, y, B, C)
	submit(C, z, C, A)
	net.Drain(0)

	// Committed timestamps match the paper.
	wantTS := map[ids.Dot]uint64{w.ID: 2, y.ID: 2, z.ID: 3}
	for id, want := range wantTS {
		for pid, p := range procs {
			ci := p.cmds[id]
			if ci == nil || (ci.phase != PhaseCommit && ci.phase != PhaseExecute) {
				t.Fatalf("process %d: %v not committed", pid, id)
			}
			if ci.finalTS != want {
				t.Errorf("process %d: ts(%v)=%d, want %d", pid, id, ci.finalTS, want)
			}
		}
	}
	if ci := procs[A].cmds[x.ID]; ci.phase != PhasePropose {
		t.Fatalf("x should still be pending at A, phase %v", ci.phase)
	}

	// Attached promises match the figure (checking the proposers' own
	// records).
	if procs[A].attachedOwn[w.ID] != 1 || procs[B].attachedOwn[w.ID] != 2 {
		t.Error("w attached promises should be <A,1>,<B,2>")
	}
	if procs[A].attachedOwn[x.ID] != 2 {
		t.Error("x attached promise should be <A,2>")
	}
	if procs[B].attachedOwn[y.ID] != 1 || procs[C].attachedOwn[y.ID] != 2 {
		t.Error("y attached promises should be <B,1>,<C,2>")
	}
	if procs[C].attachedOwn[z.ID] != 1 || procs[A].attachedOwn[z.ID] != 3 {
		t.Error("z attached promises should be <C,1>,<A,3>")
	}

	// Timestamp 2 is stable at A (promises piggybacked on MCommit), so w
	// and y executed — despite x being uncommitted.
	if got := procs[A].tracker.Stable(); got != 2 {
		t.Errorf("stable at A = %d, want 2", got)
	}
	execA := procs[A].Drain()
	if len(execA) != 2 || execA[0].Cmd.ID != w.ID || execA[1].Cmd.ID != y.ID {
		got := make([]ids.Dot, len(execA))
		for i, e := range execA {
			got[i] = e.Cmd.ID
		}
		t.Fatalf("A executed %v, want [w y]", got)
	}

	// After detached promises propagate (periodic MPromises), z's
	// timestamp 3 becomes stable via B and C, and z executes — still
	// without x.
	net.Settle(3, 5*time.Millisecond)
	found := false
	for _, e := range procs[A].Drain() {
		if e.Cmd.ID == z.ID {
			found = true
		}
		if e.Cmd.ID == x.ID {
			t.Fatal("x must not execute: it was never committed")
		}
	}
	if !found {
		t.Fatal("z should execute once detached promises propagate")
	}
}
