package tempo

import (
	"tempo/internal/ids"
	"tempo/internal/proto"
)

// The membership frontier (proto.Joiner): what a successor process
// taking over a dead replica's slot must never reuse.
//
// A Tempo process hands out two kinds of values that outlive it:
// logical-clock timestamps (attached and detached promises, Algorithm
// 2) and command ids (Dots minted for clients). A successor reusing
// either would violate the promise discipline ("a timestamp is
// promised at most once per rank") or mint a duplicate Dot. Live shard
// peers observe both continuously — promises via the MPromises gossip
// and per-message proposals (folded into the promise tracker), ids via
// every message that references a command (folded into seenSeq by
// info) — so max-ing ObservedFrom over the live peers plus
// membership.FrontierMargin bounds everything the dead incarnation
// can still inject into a quorum. See membership.FrontierMargin for
// the precise assumption (surviving peers continuously live since the
// dead node's last communication); this is the same fail-stop envelope
// as the paper's recovery protocol, which the runtime drives anyway to
// finish the dead rank's in-flight commands (Algorithm 5 — recovery
// needs only the id and rank, which the successor inherits, never the
// predecessor's local state).

var _ proto.Joiner = (*Process)(nil)

// noteDot records the highest command-sequence number seen from each
// shard member — the id half of the frontier.
func (p *Process) noteDot(id ids.Dot) {
	if r := p.rankOfProc(id.Source); r != 0 && id.Seq > p.seenSeq[r-1] {
		p.seenSeq[r-1] = id.Seq
	}
}

// ObservedFrom implements proto.Joiner: the highest promised timestamp
// and minted command-sequence number this replica has observed from
// pid (0, 0 when pid does not replicate this shard).
func (p *Process) ObservedFrom(pid ids.ProcessID) (clock, seq uint64) {
	r := p.rankOfProc(pid)
	if r == 0 {
		return 0, 0
	}
	return p.tracker.Max(r), p.seenSeq[r-1]
}

// JoinFloor implements proto.Joiner: it raises the clock and id floors
// before the successor's first protocol step. Restore already has
// exactly the max-in semantics required.
//
// Beyond raising the floors, the successor covers the predecessor's
// entire timestamp range (1..clock) with detached promises. The dead
// incarnation's promises can never be completed: detached ranges it
// skipped but did not gossip before dying, and attached promises of
// commands that will never commit, leave permanent holes in the rank's
// contiguous frontier — and gcPromises only ever folds a process's OWN
// attached promises into its detached set, so no survivor can fill
// them. Left uncovered, each replacement permanently freezes one
// rank's frontier; after f+1 replacements the Theorem 1 median is
// stuck and execution halts cluster-wide. Covering the range is sound
// under the same envelope as the floor itself (see FrontierMargin):
// every timestamp the dead incarnation handed out is at most the
// floor, commands already committed carry their final timestamps in
// the committed queues regardless of promise state, and the recovery
// protocol (Algorithm 5) decides the dead rank's in-flight commands —
// whose live quorum members hold their own attached promises, keeping
// stability below the undecided timestamps until the decision lands.
func (p *Process) JoinFloor(clock, seq uint64) {
	p.Restore(clock, seq, 0, ids.Dot{})
	if p.clock > 0 {
		p.addOwnDetached(1, p.clock)
	}
}
