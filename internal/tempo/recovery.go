package tempo

import (
	"tempo/internal/ids"
	"tempo/internal/proto"
)

// periodicRecovery implements the periodic block of Algorithm 6 (line 75):
// re-broadcast payloads of long-pending commands and, if this process is
// the shard leader (per the Ω failure detector), take over their
// coordination.
func (p *Process) periodicRecovery() []proto.Action {
	var acts []proto.Action
	for id, ci := range p.cmds {
		if !ci.phase.pending() || p.now-ci.enqueued < p.cfg.RecoveryTimeout {
			continue
		}
		if ci.cmd != nil {
			acts = append(acts, proto.Send(&MPayload{ID: id, Cmd: ci.cmd, Quorums: ci.quorums}, p.cmdProcesses(ci)...))
		}
		// The paper avoids disrupting a recovery led by this process; we
		// additionally retry a stalled self-led recovery (with a strictly
		// higher ballot) so that acceptors that lacked the payload at the
		// time of the first MRec eventually participate. recover resets
		// the command's timeout.
		if p.leader == p.rank {
			acts = append(acts, p.recover(id, ci)...)
		}
	}
	return acts
}

// recover starts a new ballot owned by this process (Algorithm 4,
// line 72).
func (p *Process) recover(id ids.Dot, ci *cmdInfo) []proto.Action {
	if !ci.phase.pending() {
		return nil
	}
	b := ids.NextBallot(p.rank, ci.bal, p.r)
	ci.coordBallot = b
	if ci.recAcks == nil {
		ci.recAcks = make([]*MRecAck, p.r)
	} else {
		for i := range ci.recAcks {
			ci.recAcks[i] = nil
		}
	}
	ci.nRecAcks = 0
	for i := range ci.consensusFrom {
		ci.consensusFrom[i] = false
	}
	ci.nConsensusAck = 0
	ci.enqueued = p.now
	p.statRecovered++
	return []proto.Action{proto.Send(&MRec{ID: id, Ballot: b}, p.shardProcs...)}
}

// onMRec is the acceptor side of recovery phase 1 (Algorithm 4, line 76).
func (p *Process) onMRec(from ids.ProcessID, m *MRec) []proto.Action {
	ci, ok := p.cmds[m.ID]
	if !ok || !ci.phase.pending() {
		// Either we know nothing of the command (no payload, so we could
		// not answer usefully) or it is already committed; in the latter
		// case replay the commit to help the recovering process.
		if ok && (ci.phase == PhaseCommit || ci.phase == PhaseExecute) {
			return p.onMCommitRequest(from, &MCommitRequest{ID: m.ID})
		}
		return nil
	}
	if ci.bal >= m.Ballot {
		return []proto.Action{proto.Send(&MRecNAck{ID: m.ID, Ballot: ci.bal}, from)}
	}
	attached := false
	if ci.bal == 0 {
		switch ci.phase {
		case PhasePayload:
			ci.ts = p.proposal(m.ID, 0)
			ci.attachedMine = ci.ts
			ci.phase = PhaseRecoverR
		case PhasePropose:
			ci.phase = PhaseRecoverP
		}
	}
	if ci.phase == PhaseRecoverR || ci.phase == PhaseRecoverP {
		attached = ci.abal == 0 && ci.attachedMine != 0
	}
	ci.bal = m.Ballot
	ack := &MRecAck{
		ID:       m.ID,
		TS:       ci.ts,
		Phase:    ci.phase,
		ABallot:  ci.abal,
		Ballot:   m.Ballot,
		Attached: attached,
	}
	return []proto.Action{proto.Send(ack, from)}
}

// onMRecAck is the recovery coordinator gathering r−f phase-1 answers
// (Algorithm 4, line 86).
func (p *Process) onMRecAck(from ids.ProcessID, m *MRecAck) []proto.Action {
	ci, ok := p.cmds[m.ID]
	if !ok || ci.coordBallot != m.Ballot || ci.bal != m.Ballot {
		return nil
	}
	rank := p.rankOfProc(from)
	if rank == 0 {
		return nil
	}
	if ci.recAcks == nil {
		ci.recAcks = make([]*MRecAck, p.r)
	}
	if ci.recAcks[rank-1] != nil {
		return nil
	}
	ci.recAcks[rank-1] = m
	ci.nRecAcks++
	if ci.nRecAcks != p.r-p.f {
		return nil
	}
	// Decide the consensus proposal.
	var t uint64
	if k := highestAccepted(ci.recAcks); k != nil {
		// Someone accepted a consensus value: by the Paxos rules, adopt
		// the one with the highest accepted ballot (line 89).
		t = k.TS
	} else {
		// Nobody accepted a value. Compute I = Q ∩ fast quorum, and
		// decide whether the initial coordinator could have taken the
		// fast path (lines 92-95).
		fq := ci.quorums[p.shard]
		initial := ids.ProcessID(0)
		if len(fq) > 0 {
			initial = fq[0]
		}
		inFQ := func(q ids.ProcessID) bool {
			for _, x := range fq {
				if x == q {
					return true
				}
			}
			return false
		}
		var iMax uint64 // max proposal over I = Q ∩ fast quorum
		initialReplied := false
		anyRecoverR := false
		for i, ack := range ci.recAcks {
			if ack == nil {
				continue
			}
			q := p.rankToProc[i]
			if !inFQ(q) {
				continue
			}
			iMax = max64(iMax, ack.TS)
			if q == initial {
				initialReplied = true
			}
			if ack.Phase == PhaseRecoverR {
				anyRecoverR = true
			}
		}
		if initialReplied || anyRecoverR {
			// The fast path cannot have been taken: any majority max
			// respects Property 3; use the whole recovery quorum.
			for _, ack := range ci.recAcks {
				if ack != nil {
					t = max64(t, ack.TS)
				}
			}
		} else {
			// The fast path may have been taken: by Property 4, the max
			// over the surviving ⌊r/2⌋ fast-quorum processes recovers it.
			t = iMax
		}
	}
	p.recoveredAttached(ci)
	return []proto.Action{proto.Send(&MConsensus{ID: m.ID, TS: t, Ballot: m.Ballot}, p.shardProcs...)}
}

// recoveredAttached collects the genuine timestamp proposals reported in
// recovery acks so that the eventual MCommit can piggyback them as
// attached promises.
func (p *Process) recoveredAttached(ci *cmdInfo) {
	if ci.proposals == nil {
		ci.proposals = make([]uint64, p.r)
	}
	for i, ack := range ci.recAcks {
		if ack != nil && ack.Attached && ack.TS != 0 {
			if ci.proposals[i] == 0 {
				ci.nProposals++
			}
			ci.proposals[i] = ack.TS
		}
	}
}

func highestAccepted(acks []*MRecAck) *MRecAck {
	var best *MRecAck
	for _, a := range acks {
		if a == nil || a.ABallot == 0 {
			continue
		}
		if best == nil || a.ABallot > best.ABallot {
			best = a
		}
	}
	return best
}

// onMRecNAck performs ballot catch-up at a (would-be) recovery leader
// (Appendix B, line 82).
func (p *Process) onMRecNAck(m *MRecNAck) []proto.Action {
	ci, ok := p.cmds[m.ID]
	if !ok || p.leader != p.rank || ci.bal >= m.Ballot {
		return nil
	}
	ci.bal = m.Ballot
	if !ci.phase.pending() {
		return nil
	}
	return p.recover(m.ID, ci)
}
