package tempo

import (
	"testing"
	"time"

	"tempo/internal/command"
	"tempo/internal/testnet"
)

// TestFigure4MultiPartition encodes Figure 4 of the paper: a command
// accessing two partitions gets per-partition timestamps 6 and 10 and a
// final timestamp max(6,10) = 10, and executes at both partitions.
func TestFigure4MultiPartition(t *testing.T) {
	topo := lineTopo(t, 5, 1, 2)
	procs, net := makeNet(t, topo, Config{})

	// Preset clocks: shard-0 replicas to 5, shard-1 replicas to 9.
	for site := 0; site < 5; site++ {
		procs[at(topo, site, 0)].bump(5)
		procs[at(topo, site, 1)].bump(9)
	}

	A := at(topo, 0, 0) // shard 0 coordinator
	F := at(topo, 0, 1) // shard 1 coordinator (co-located with A)

	k0 := findKey(topo, 0)
	k1 := findKey(topo, 1)
	c := command.New(procs[A].NextID(),
		command.Op{Kind: command.Put, Key: k0, Value: []byte("v0")},
		command.Op{Kind: command.Put, Key: k1, Value: []byte("v1")},
	)
	net.Submit(A, c)
	net.Drain(0)

	// Final timestamp is max(6, 10) = 10 at every process of both shards.
	for pid, p := range procs {
		ci := p.cmds[c.ID]
		if ci == nil || (ci.phase != PhaseCommit && ci.phase != PhaseExecute) {
			t.Fatalf("process %d: not committed", pid)
		}
		if ci.finalTS != 10 {
			t.Errorf("process %d: final ts = %d, want 10", pid, ci.finalTS)
		}
		if got, _ := ci.commitFor(0); got != 6 {
			t.Errorf("process %d: shard-0 ts = %d, want 6", pid, got)
		}
		if got, _ := ci.commitFor(1); got != 10 {
			t.Errorf("process %d: shard-1 ts = %d, want 10", pid, got)
		}
	}

	// With MBump, shard-0 replicas bumped their clocks to 10 when the
	// co-located shard-1 replicas proposed (the "faster stability"
	// mechanism): A, B, C hold detached promises up to 10.
	for site := 0; site < 3; site++ {
		p := procs[at(topo, site, 0)]
		if p.clock < 10 {
			t.Errorf("shard-0 site %d clock = %d, want >= 10 (MBump)", site, p.clock)
		}
	}

	net.Settle(4, 5*time.Millisecond)
	for pid, p := range procs {
		if ci := p.cmds[c.ID]; ci != nil && ci.phase != PhaseExecute {
			t.Errorf("process %d: phase %v, want execute", pid, ci.phase)
		}
	}
	if v, ok := procs[F].Store().Get(k1); !ok || string(v) != "v1" {
		t.Error("shard 1 store missing value")
	}
}

// TestMBumpDisabledStillCommits checks the ablation configuration: without
// MBump the command still commits and executes (stability arrives via the
// MCommit-generated detached promises, two message delays later).
func TestMBumpDisabledStillCommits(t *testing.T) {
	topo := lineTopo(t, 5, 1, 2)
	procs, net := makeNet(t, topo, Config{DisableMBump: true})
	for site := 0; site < 5; site++ {
		procs[at(topo, site, 0)].bump(5)
		procs[at(topo, site, 1)].bump(9)
	}
	A := at(topo, 0, 0)
	c := command.New(procs[A].NextID(),
		command.Op{Kind: command.Put, Key: findKey(topo, 0), Value: []byte("v0")},
		command.Op{Kind: command.Put, Key: findKey(topo, 1), Value: []byte("v1")},
	)
	// No MBump messages should flow.
	net.Hold = func(e testnet.Env) bool {
		_, isBump := e.Msg.(*MBump)
		if isBump {
			t.Error("MBump sent despite DisableMBump")
		}
		return false
	}
	net.Submit(A, c)
	net.Drain(0)
	net.Settle(5, 5*time.Millisecond)
	for pid, p := range procs {
		if ci := p.cmds[c.ID]; ci == nil || ci.phase != PhaseExecute {
			t.Fatalf("process %d: not executed", pid)
		}
	}
}

// TestPiggybackDisabledStillExecutes checks the second ablation: without
// attached promises on MCommit, stability is reached via periodic
// MPromises only.
func TestPiggybackDisabledStillExecutes(t *testing.T) {
	topo := lineTopo(t, 5, 1, 1)
	procs, net := makeNet(t, topo, Config{DisablePiggyback: true})
	a := at(topo, 0, 0)
	c := command.NewPut(procs[a].NextID(), "k", []byte("v"))
	net.Submit(a, c)
	net.Drain(0)
	// Not yet executed: no promises have flowed.
	if ci := procs[a].cmds[c.ID]; ci.phase != PhaseCommit {
		t.Fatalf("phase = %v, want commit (execution needs promises)", ci.phase)
	}
	net.Settle(3, 5*time.Millisecond)
	if ci := procs[a].cmds[c.ID]; ci.phase != PhaseExecute {
		t.Fatalf("phase = %v, want execute after MPromises", ci.phase)
	}
}
