package tempo

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"tempo/internal/command"
	"tempo/internal/ids"
)

// runRandomSchedule submits n commands from random processes over a small
// key space and drains with a seeded random interleaving (per-link FIFO
// preserved). It returns the per-process execution sequences.
func runRandomSchedule(t *testing.T, seed int64, f, n, keys int) (map[ids.ProcessID]*Process, map[ids.ProcessID][]ids.Dot, []*command.Command) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	topo := lineTopo(t, 5, f, 1)
	procs, net := makeNet(t, topo, Config{})
	net.Rng = rng

	var cmds []*command.Command
	for i := 0; i < n; i++ {
		site := rng.Intn(5)
		p := procs[at(topo, site, 0)]
		key := command.Key(fmt.Sprintf("k%d", rng.Intn(keys)))
		c := command.NewPut(p.NextID(), key, []byte{byte(i)})
		cmds = append(cmds, c)
		net.Submit(p.ID(), c)
		// Interleave deliveries with submissions.
		for s := 0; s < rng.Intn(20); s++ {
			net.Step()
		}
	}
	net.Drain(0)
	net.Settle(6, 5*time.Millisecond)

	order := make(map[ids.ProcessID][]ids.Dot)
	for id, p := range procs {
		for _, e := range p.Drain() {
			order[id] = append(order[id], e.Cmd.ID)
		}
	}
	return procs, order, cmds
}

// TestRandomSchedulesTotalOrder checks, across many random schedules, that
// every process executes every command in the same total order and agrees
// on timestamps (Properties 1 and 2 end-to-end).
func TestRandomSchedulesTotalOrder(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		for _, f := range []int{1, 2} {
			t.Run(fmt.Sprintf("seed%d_f%d", seed, f), func(t *testing.T) {
				procs, order, cmds := runRandomSchedule(t, seed, f, 30, 3)
				var ref []ids.Dot
				for pid, got := range order {
					if len(got) != len(cmds) {
						t.Fatalf("process %d executed %d/%d", pid, len(got), len(cmds))
					}
					if ref == nil {
						ref = got
						continue
					}
					for i := range ref {
						if ref[i] != got[i] {
							t.Fatalf("divergence at index %d: %v vs %v", i, got[i], ref[i])
						}
					}
				}
				// Property 1: identical final timestamps everywhere.
				for _, c := range cmds {
					ts := uint64(0)
					for pid, p := range procs {
						ci := p.cmds[c.ID]
						if ci == nil {
							t.Fatalf("process %d lost command %v", pid, c.ID)
						}
						if ts == 0 {
							ts = ci.finalTS
						} else if ci.finalTS != ts {
							t.Fatalf("ts disagreement on %v", c.ID)
						}
					}
				}
			})
		}
	}
}

// TestRandomCrashConvergence crashes the busiest coordinator mid-run and
// checks that the surviving processes converge to identical execution
// sequences (commands lost with the coordinator may vanish, but
// consistently so).
func TestRandomCrashConvergence(t *testing.T) {
	for seed := int64(100); seed < 110; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			topo := lineTopo(t, 5, 1, 1)
			procs, net := makeNet(t, topo, Config{
				PromiseInterval: 5 * time.Millisecond,
				RecoveryTimeout: 20 * time.Millisecond,
				RetainLog:       true,
			})
			net.Rng = rng

			victim := at(topo, rng.Intn(5), 0)
			for i := 0; i < 25; i++ {
				site := rng.Intn(5)
				p := procs[at(topo, site, 0)]
				c := command.NewPut(p.NextID(), command.Key(fmt.Sprintf("k%d", rng.Intn(3))), nil)
				net.Submit(p.ID(), c)
				for s := 0; s < rng.Intn(10); s++ {
					net.Step()
				}
				if i == 12 {
					net.Crash(victim)
					// Ω settles on the lowest-rank survivor.
					for r := ids.Rank(1); r <= 5; r++ {
						if topo.ProcessAt(ids.SiteID(r-1), 0) != victim {
							net.SetLeader(procs[at(topo, int(r-1), 0)].Rank())
							break
						}
					}
				}
			}
			net.Drain(0)
			net.Settle(30, 10*time.Millisecond)

			var ref []ids.Dot
			var refPid ids.ProcessID
			for pid, p := range procs {
				if pid == victim {
					continue
				}
				var got []ids.Dot
				for _, e := range p.Drain() {
					got = append(got, e.Cmd.ID)
				}
				if ref == nil {
					ref, refPid = got, pid
					continue
				}
				if len(got) != len(ref) {
					t.Fatalf("survivors disagree on executed count: %d (%d) vs %d (%d)",
						len(got), pid, len(ref), refPid)
				}
				for i := range ref {
					if ref[i] != got[i] {
						t.Fatalf("survivor divergence at %d", i)
					}
				}
			}
			if len(ref) == 0 {
				t.Fatal("nothing executed at survivors")
			}
		})
	}
}

// TestRandomMultiShard runs random 1- and 2-shard commands and checks that
// each shard's replicas execute identical sequences, and that final
// timestamps agree across all processes of all shards.
func TestRandomMultiShard(t *testing.T) {
	for seed := int64(200); seed < 208; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			topo := lineTopo(t, 5, 1, 2)
			procs, net := makeNet(t, topo, Config{})
			net.Rng = rng

			k0 := findKey(topo, 0)
			k1 := findKey(topo, 1)
			var cmds []*command.Command
			for i := 0; i < 25; i++ {
				shard := ids.ShardID(rng.Intn(2))
				p := procs[at(topo, rng.Intn(5), int(shard))]
				var c *command.Command
				if rng.Intn(3) == 0 { // multi-shard command
					c = command.New(p.NextID(),
						command.Op{Kind: command.Put, Key: k0},
						command.Op{Kind: command.Put, Key: k1})
				} else {
					k := k0
					if shard == 1 {
						k = k1
					}
					c = command.NewPut(p.NextID(), k, nil)
				}
				cmds = append(cmds, c)
				net.Submit(p.ID(), c)
				for s := 0; s < rng.Intn(15); s++ {
					net.Step()
				}
			}
			net.Drain(0)
			net.Settle(10, 5*time.Millisecond)

			// Per-shard identical execution sequences.
			for shard := 0; shard < 2; shard++ {
				var ref []ids.Dot
				for site := 0; site < 5; site++ {
					p := procs[at(topo, site, shard)]
					var got []ids.Dot
					for _, e := range p.Drain() {
						got = append(got, e.Cmd.ID)
					}
					if ref == nil {
						ref = got
						continue
					}
					if len(ref) != len(got) {
						t.Fatalf("shard %d: executed %d vs %d", shard, len(got), len(ref))
					}
					for i := range ref {
						if ref[i] != got[i] {
							t.Fatalf("shard %d divergence at %d", shard, i)
						}
					}
				}
			}
			// Property 1 across shards: every process that committed a
			// command agrees on its final timestamp.
			for _, c := range cmds {
				ts := uint64(0)
				for _, p := range procs {
					ci := p.cmds[c.ID]
					if ci == nil || (ci.phase != PhaseCommit && ci.phase != PhaseExecute) {
						continue
					}
					if ts == 0 {
						ts = ci.finalTS
					} else if ci.finalTS != ts {
						t.Fatalf("cross-shard ts disagreement on %v", c.ID)
					}
				}
			}
		})
	}
}
