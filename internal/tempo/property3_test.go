package tempo

import (
	"fmt"
	"math/rand"
	"testing"

	"tempo/internal/command"
	"tempo/internal/testnet"
)

// TestProperty3CommitTimestamps checks Property 3 of the paper on every
// MCommit observed in failure-free random schedules: the committed
// timestamp is the maximum over timestamp proposals from at least
// ⌊r/2⌋+1 processes. (The piggybacked Attached list carries exactly the
// fast quorum's proposals, of size ⌊r/2⌋+f ≥ ⌊r/2⌋+1.)
func TestProperty3CommitTimestamps(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		for _, f := range []int{1, 2} {
			t.Run(fmt.Sprintf("seed%d_f%d", seed, f), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				topo := lineTopo(t, 5, f, 1)
				procs, net := makeNet(t, topo, Config{})
				net.Rng = rng

				commits := 0
				net.Hold = func(e testnet.Env) bool {
					mc, ok := e.Msg.(*MCommit)
					if !ok {
						return false
					}
					commits++
					if len(mc.Attached) < 5/2+1 {
						t.Errorf("MCommit(%v) carries %d proposals, want >= majority 3",
							mc.ID, len(mc.Attached))
					}
					var max uint64
					seen := map[uint64]bool{}
					for _, a := range mc.Attached {
						if seen[uint64(a.Rank)] {
							t.Errorf("MCommit(%v): duplicate rank %d", mc.ID, a.Rank)
						}
						seen[uint64(a.Rank)] = true
						if a.TS > max {
							max = a.TS
						}
					}
					if mc.TS != max {
						t.Errorf("MCommit(%v): ts=%d but max proposal=%d (Property 3)",
							mc.ID, mc.TS, max)
					}
					return false
				}

				for i := 0; i < 20; i++ {
					p := procs[at(topo, rng.Intn(5), 0)]
					net.Submit(p.ID(), command.NewPut(p.NextID(), command.Key(fmt.Sprintf("k%d", rng.Intn(2))), nil))
					for s := 0; s < rng.Intn(12); s++ {
						net.Step()
					}
				}
				net.Drain(0)
				if commits == 0 {
					t.Fatal("no commits observed")
				}
			})
		}
	}
}

// TestClockMonotonicity checks that a process's clock never regresses
// and that every proposal strictly exceeds the previous clock value
// (uniqueness of own attached promises).
func TestClockMonotonicity(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		topo := lineTopo(t, 5, 1, 1)
		procs, net := makeNet(t, topo, Config{})
		net.Rng = rng
		prev := map[*Process]uint64{}
		for i := 0; i < 25; i++ {
			p := procs[at(topo, rng.Intn(5), 0)]
			net.Submit(p.ID(), command.NewPut(p.NextID(), "hot", nil))
			for s := 0; s < rng.Intn(8); s++ {
				net.Step()
			}
			for _, q := range procs {
				if q.Clock() < prev[q] {
					t.Fatalf("clock regressed at %d: %d -> %d", q.ID(), prev[q], q.Clock())
				}
				prev[q] = q.Clock()
			}
		}
		net.Drain(0)
		// Own attached promises are pairwise distinct timestamps.
		for _, q := range procs {
			seen := map[uint64]bool{}
			for _, ts := range q.attachedOwn {
				if seen[ts] {
					t.Fatalf("process %d reused timestamp %d", q.ID(), ts)
				}
				seen[ts] = true
			}
		}
	}
}
