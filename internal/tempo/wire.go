package tempo

import (
	"encoding/gob"

	"tempo/internal/command"
	"tempo/internal/ids"
	"tempo/internal/proto"
)

// Binary wire codec for the Tempo messages: hand-rolled, varint-based,
// append-style encoders (proto.BinaryMessage) plus registered decoders.
// The cluster runtime uses it instead of gob on peer links; encodings
// are deterministic (Quorums maps are serialized in shard order), so
// decode∘encode is the identity on bytes — pinned by TestCodecRoundTrip
// and FuzzCodecRoundTrip.

// Wire tags. Never reuse or renumber: the tag is the cross-version
// contract.
const (
	tagMSubmit byte = iota + 1
	tagMPayload
	tagMPropose
	tagMProposeAck
	tagMBump
	tagMCommit
	tagMConsensus
	tagMConsensusAck
	tagMRec
	tagMRecAck
	tagMRecNAck
	tagMCommitRequest
	tagMPromises
	tagMStable
)

func init() {
	proto.RegisterWire(tagMSubmit, decodeMSubmit)
	proto.RegisterWire(tagMPayload, decodeMPayload)
	proto.RegisterWire(tagMPropose, decodeMPropose)
	proto.RegisterWire(tagMProposeAck, decodeMProposeAck)
	proto.RegisterWire(tagMBump, decodeMBump)
	proto.RegisterWire(tagMCommit, decodeMCommit)
	proto.RegisterWire(tagMConsensus, decodeMConsensus)
	proto.RegisterWire(tagMConsensusAck, decodeMConsensusAck)
	proto.RegisterWire(tagMRec, decodeMRec)
	proto.RegisterWire(tagMRecAck, decodeMRecAck)
	proto.RegisterWire(tagMRecNAck, decodeMRecNAck)
	proto.RegisterWire(tagMCommitRequest, decodeMCommitRequest)
	proto.RegisterWire(tagMPromises, decodeMPromises)
	proto.RegisterWire(tagMStable, decodeMStable)

	// Concrete-type registrations for the legacy gob peer codec; each
	// engine registers its own messages so the cluster runtime stays
	// protocol-agnostic.
	gob.Register(&MSubmit{})
	gob.Register(&MPayload{})
	gob.Register(&MPropose{})
	gob.Register(&MProposeAck{})
	gob.Register(&MBump{})
	gob.Register(&MCommit{})
	gob.Register(&MConsensus{})
	gob.Register(&MConsensusAck{})
	gob.Register(&MRec{})
	gob.Register(&MRecAck{})
	gob.Register(&MRecNAck{})
	gob.Register(&MCommitRequest{})
	gob.Register(&MPromises{})
	gob.Register(&MStable{})
}

// --- shared field helpers ---

//
//tempo:noalloc
func appendDot(buf []byte, d ids.Dot) []byte {
	buf = proto.AppendUvarint(buf, uint64(d.Source))
	return proto.AppendUvarint(buf, d.Seq)
}

func readDot(b []byte) (ids.Dot, []byte, error) {
	src, b, err := proto.ReadUvarint(b)
	if err != nil {
		return ids.Dot{}, b, err
	}
	seq, b, err := proto.ReadUvarint(b)
	if err != nil {
		return ids.Dot{}, b, err
	}
	return ids.Dot{Source: ids.ProcessID(src), Seq: seq}, b, nil
}

// appendQuorums serializes the map in ascending shard order so equal
// maps always produce equal bytes.
//
//tempo:noalloc
func appendQuorums(buf []byte, q Quorums) []byte {
	buf = proto.AppendUvarint(buf, uint64(len(q)))
	var stack [8]ids.ShardID
	keys := stack[:0]
	for s := range q {
		//tempo:allowalloc stack-backed up to 8 shards; grows only beyond that
		keys = append(keys, s)
	}
	for i := 1; i < len(keys); i++ { // insertion sort; quorum maps are tiny
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	for _, s := range keys {
		buf = proto.AppendUvarint(buf, uint64(s))
		ps := q[s]
		buf = proto.AppendUvarint(buf, uint64(len(ps)))
		for _, p := range ps {
			buf = proto.AppendUvarint(buf, uint64(p))
		}
	}
	return buf
}

func readQuorums(b []byte) (Quorums, []byte, error) {
	n, b, err := proto.ReadUvarint(b)
	if err != nil || n > uint64(len(b)) {
		return nil, b, proto.ErrCorrupt
	}
	if n == 0 {
		return nil, b, nil
	}
	q := make(Quorums, n)
	for i := uint64(0); i < n; i++ {
		var s, k uint64
		if s, b, err = proto.ReadUvarint(b); err != nil {
			return nil, b, err
		}
		if k, b, err = proto.ReadUvarint(b); err != nil || k > uint64(len(b)) {
			return nil, b, proto.ErrCorrupt
		}
		var ps []ids.ProcessID // nil when empty, matching gob
		if k > 0 {
			ps = make([]ids.ProcessID, k)
		}
		for j := uint64(0); j < k; j++ {
			var p uint64
			if p, b, err = proto.ReadUvarint(b); err != nil {
				return nil, b, err
			}
			ps[j] = ids.ProcessID(p)
		}
		q[ids.ShardID(s)] = ps
	}
	return q, b, nil
}

//
//tempo:noalloc
func appendWM(buf []byte, w TSWatermark) []byte {
	buf = proto.AppendUvarint(buf, w.TS)
	return appendDot(buf, w.ID)
}

func readWM(b []byte) (TSWatermark, []byte, error) {
	ts, b, err := proto.ReadUvarint(b)
	if err != nil {
		return TSWatermark{}, b, err
	}
	id, b, err := readDot(b)
	if err != nil {
		return TSWatermark{}, b, err
	}
	return TSWatermark{TS: ts, ID: id}, b, nil
}

// --- per-message encoders and decoders ---

// WireTag implements proto.BinaryMessage.
func (m *MSubmit) WireTag() byte { return tagMSubmit }

// AppendBinary implements proto.BinaryMessage.
//
//tempo:noalloc
func (m *MSubmit) AppendBinary(buf []byte) []byte {
	buf = appendDot(buf, m.ID)
	buf = command.AppendCommand(buf, m.Cmd)
	return appendQuorums(buf, m.Quorums)
}

func decodeMSubmit(b []byte) (proto.Message, []byte, error) {
	m := &MSubmit{}
	var err error
	if m.ID, b, err = readDot(b); err != nil {
		return nil, b, err
	}
	if m.Cmd, b, err = command.DecodeCommand(b); err != nil {
		return nil, b, err
	}
	if m.Quorums, b, err = readQuorums(b); err != nil {
		return nil, b, err
	}
	return m, b, nil
}

// WireTag implements proto.BinaryMessage.
func (m *MPayload) WireTag() byte { return tagMPayload }

// AppendBinary implements proto.BinaryMessage.
//
//tempo:noalloc
func (m *MPayload) AppendBinary(buf []byte) []byte {
	buf = appendDot(buf, m.ID)
	buf = command.AppendCommand(buf, m.Cmd)
	return appendQuorums(buf, m.Quorums)
}

func decodeMPayload(b []byte) (proto.Message, []byte, error) {
	m := &MPayload{}
	var err error
	if m.ID, b, err = readDot(b); err != nil {
		return nil, b, err
	}
	if m.Cmd, b, err = command.DecodeCommand(b); err != nil {
		return nil, b, err
	}
	if m.Quorums, b, err = readQuorums(b); err != nil {
		return nil, b, err
	}
	return m, b, nil
}

// WireTag implements proto.BinaryMessage.
func (m *MPropose) WireTag() byte { return tagMPropose }

// AppendBinary implements proto.BinaryMessage.
//
//tempo:noalloc
func (m *MPropose) AppendBinary(buf []byte) []byte {
	buf = appendDot(buf, m.ID)
	buf = command.AppendCommand(buf, m.Cmd)
	buf = appendQuorums(buf, m.Quorums)
	return proto.AppendUvarint(buf, m.TS)
}

func decodeMPropose(b []byte) (proto.Message, []byte, error) {
	m := &MPropose{}
	var err error
	if m.ID, b, err = readDot(b); err != nil {
		return nil, b, err
	}
	if m.Cmd, b, err = command.DecodeCommand(b); err != nil {
		return nil, b, err
	}
	if m.Quorums, b, err = readQuorums(b); err != nil {
		return nil, b, err
	}
	if m.TS, b, err = proto.ReadUvarint(b); err != nil {
		return nil, b, err
	}
	return m, b, nil
}

// WireTag implements proto.BinaryMessage.
func (m *MProposeAck) WireTag() byte { return tagMProposeAck }

// AppendBinary implements proto.BinaryMessage.
//
//tempo:noalloc
func (m *MProposeAck) AppendBinary(buf []byte) []byte {
	buf = appendDot(buf, m.ID)
	buf = proto.AppendUvarint(buf, m.TS)
	buf = proto.AppendUvarint(buf, m.DetachedLo)
	return proto.AppendUvarint(buf, m.DetachedHi)
}

func decodeMProposeAck(b []byte) (proto.Message, []byte, error) {
	m := &MProposeAck{}
	var err error
	if m.ID, b, err = readDot(b); err != nil {
		return nil, b, err
	}
	if m.TS, b, err = proto.ReadUvarint(b); err != nil {
		return nil, b, err
	}
	if m.DetachedLo, b, err = proto.ReadUvarint(b); err != nil {
		return nil, b, err
	}
	if m.DetachedHi, b, err = proto.ReadUvarint(b); err != nil {
		return nil, b, err
	}
	return m, b, nil
}

// WireTag implements proto.BinaryMessage.
func (m *MBump) WireTag() byte { return tagMBump }

// AppendBinary implements proto.BinaryMessage.
//
//tempo:noalloc
func (m *MBump) AppendBinary(buf []byte) []byte {
	buf = appendDot(buf, m.ID)
	return proto.AppendUvarint(buf, m.TS)
}

func decodeMBump(b []byte) (proto.Message, []byte, error) {
	m := &MBump{}
	var err error
	if m.ID, b, err = readDot(b); err != nil {
		return nil, b, err
	}
	if m.TS, b, err = proto.ReadUvarint(b); err != nil {
		return nil, b, err
	}
	return m, b, nil
}

// WireTag implements proto.BinaryMessage.
func (m *MCommit) WireTag() byte { return tagMCommit }

// AppendBinary implements proto.BinaryMessage.
//
//tempo:noalloc
func (m *MCommit) AppendBinary(buf []byte) []byte {
	buf = appendDot(buf, m.ID)
	buf = proto.AppendUvarint(buf, uint64(m.Shard))
	buf = proto.AppendUvarint(buf, m.TS)
	buf = proto.AppendUvarint(buf, uint64(len(m.Attached)))
	for _, a := range m.Attached {
		buf = proto.AppendUvarint(buf, uint64(a.Rank))
		buf = proto.AppendUvarint(buf, a.TS)
		buf = proto.AppendUvarint(buf, a.DetLo)
		buf = proto.AppendUvarint(buf, a.DetHi)
	}
	return buf
}

func decodeMCommit(b []byte) (proto.Message, []byte, error) {
	m := &MCommit{}
	var err error
	if m.ID, b, err = readDot(b); err != nil {
		return nil, b, err
	}
	var shard, n uint64
	if shard, b, err = proto.ReadUvarint(b); err != nil {
		return nil, b, err
	}
	m.Shard = ids.ShardID(shard)
	if m.TS, b, err = proto.ReadUvarint(b); err != nil {
		return nil, b, err
	}
	if n, b, err = proto.ReadUvarint(b); err != nil || n > uint64(len(b)) {
		return nil, b, proto.ErrCorrupt
	}
	if n > 0 {
		m.Attached = make([]RankTS, n)
	}
	for i := range m.Attached {
		var rank uint64
		if rank, b, err = proto.ReadUvarint(b); err != nil {
			return nil, b, err
		}
		m.Attached[i].Rank = ids.Rank(rank)
		if m.Attached[i].TS, b, err = proto.ReadUvarint(b); err != nil {
			return nil, b, err
		}
		if m.Attached[i].DetLo, b, err = proto.ReadUvarint(b); err != nil {
			return nil, b, err
		}
		if m.Attached[i].DetHi, b, err = proto.ReadUvarint(b); err != nil {
			return nil, b, err
		}
	}
	return m, b, nil
}

// WireTag implements proto.BinaryMessage.
func (m *MConsensus) WireTag() byte { return tagMConsensus }

// AppendBinary implements proto.BinaryMessage.
//
//tempo:noalloc
func (m *MConsensus) AppendBinary(buf []byte) []byte {
	buf = appendDot(buf, m.ID)
	buf = proto.AppendUvarint(buf, m.TS)
	return proto.AppendUvarint(buf, uint64(m.Ballot))
}

func decodeMConsensus(b []byte) (proto.Message, []byte, error) {
	m := &MConsensus{}
	var err error
	if m.ID, b, err = readDot(b); err != nil {
		return nil, b, err
	}
	if m.TS, b, err = proto.ReadUvarint(b); err != nil {
		return nil, b, err
	}
	var bal uint64
	if bal, b, err = proto.ReadUvarint(b); err != nil {
		return nil, b, err
	}
	m.Ballot = ids.Ballot(bal)
	return m, b, nil
}

// WireTag implements proto.BinaryMessage.
func (m *MConsensusAck) WireTag() byte { return tagMConsensusAck }

// AppendBinary implements proto.BinaryMessage.
//
//tempo:noalloc
func (m *MConsensusAck) AppendBinary(buf []byte) []byte {
	buf = appendDot(buf, m.ID)
	return proto.AppendUvarint(buf, uint64(m.Ballot))
}

func decodeMConsensusAck(b []byte) (proto.Message, []byte, error) {
	m := &MConsensusAck{}
	var err error
	if m.ID, b, err = readDot(b); err != nil {
		return nil, b, err
	}
	var bal uint64
	if bal, b, err = proto.ReadUvarint(b); err != nil {
		return nil, b, err
	}
	m.Ballot = ids.Ballot(bal)
	return m, b, nil
}

// WireTag implements proto.BinaryMessage.
func (m *MRec) WireTag() byte { return tagMRec }

// AppendBinary implements proto.BinaryMessage.
//
//tempo:noalloc
func (m *MRec) AppendBinary(buf []byte) []byte {
	buf = appendDot(buf, m.ID)
	return proto.AppendUvarint(buf, uint64(m.Ballot))
}

func decodeMRec(b []byte) (proto.Message, []byte, error) {
	m := &MRec{}
	var err error
	if m.ID, b, err = readDot(b); err != nil {
		return nil, b, err
	}
	var bal uint64
	if bal, b, err = proto.ReadUvarint(b); err != nil {
		return nil, b, err
	}
	m.Ballot = ids.Ballot(bal)
	return m, b, nil
}

// WireTag implements proto.BinaryMessage.
func (m *MRecAck) WireTag() byte { return tagMRecAck }

// AppendBinary implements proto.BinaryMessage.
//
//tempo:noalloc
func (m *MRecAck) AppendBinary(buf []byte) []byte {
	buf = appendDot(buf, m.ID)
	buf = proto.AppendUvarint(buf, m.TS)
	buf = append(buf, byte(m.Phase))
	buf = proto.AppendUvarint(buf, uint64(m.ABallot))
	buf = proto.AppendUvarint(buf, uint64(m.Ballot))
	if m.Attached {
		return append(buf, 1)
	}
	return append(buf, 0)
}

func decodeMRecAck(b []byte) (proto.Message, []byte, error) {
	m := &MRecAck{}
	var err error
	if m.ID, b, err = readDot(b); err != nil {
		return nil, b, err
	}
	if m.TS, b, err = proto.ReadUvarint(b); err != nil {
		return nil, b, err
	}
	if len(b) == 0 {
		return nil, b, proto.ErrCorrupt
	}
	m.Phase = Phase(b[0])
	b = b[1:]
	var bal uint64
	if bal, b, err = proto.ReadUvarint(b); err != nil {
		return nil, b, err
	}
	m.ABallot = ids.Ballot(bal)
	if bal, b, err = proto.ReadUvarint(b); err != nil {
		return nil, b, err
	}
	m.Ballot = ids.Ballot(bal)
	if len(b) == 0 {
		return nil, b, proto.ErrCorrupt
	}
	m.Attached = b[0] != 0
	b = b[1:]
	return m, b, nil
}

// WireTag implements proto.BinaryMessage.
func (m *MRecNAck) WireTag() byte { return tagMRecNAck }

// AppendBinary implements proto.BinaryMessage.
//
//tempo:noalloc
func (m *MRecNAck) AppendBinary(buf []byte) []byte {
	buf = appendDot(buf, m.ID)
	return proto.AppendUvarint(buf, uint64(m.Ballot))
}

func decodeMRecNAck(b []byte) (proto.Message, []byte, error) {
	m := &MRecNAck{}
	var err error
	if m.ID, b, err = readDot(b); err != nil {
		return nil, b, err
	}
	var bal uint64
	if bal, b, err = proto.ReadUvarint(b); err != nil {
		return nil, b, err
	}
	m.Ballot = ids.Ballot(bal)
	return m, b, nil
}

// WireTag implements proto.BinaryMessage.
func (m *MCommitRequest) WireTag() byte { return tagMCommitRequest }

// AppendBinary implements proto.BinaryMessage.
//
//tempo:noalloc
func (m *MCommitRequest) AppendBinary(buf []byte) []byte {
	return appendDot(buf, m.ID)
}

func decodeMCommitRequest(b []byte) (proto.Message, []byte, error) {
	m := &MCommitRequest{}
	var err error
	if m.ID, b, err = readDot(b); err != nil {
		return nil, b, err
	}
	return m, b, nil
}

// WireTag implements proto.BinaryMessage.
func (m *MPromises) WireTag() byte { return tagMPromises }

// AppendBinary implements proto.BinaryMessage.
//
//tempo:noalloc
func (m *MPromises) AppendBinary(buf []byte) []byte {
	buf = proto.AppendUvarint(buf, uint64(m.Rank))
	buf = proto.AppendUvarint(buf, uint64(len(m.Detached)))
	for _, v := range m.Detached {
		buf = proto.AppendUvarint(buf, v)
	}
	buf = proto.AppendUvarint(buf, uint64(len(m.Attached)))
	for _, a := range m.Attached {
		buf = appendDot(buf, a.ID)
		buf = proto.AppendUvarint(buf, a.TS)
	}
	return appendWM(buf, m.WM)
}

func decodeMPromises(b []byte) (proto.Message, []byte, error) {
	m := &MPromises{}
	var rank, n uint64
	var err error
	if rank, b, err = proto.ReadUvarint(b); err != nil {
		return nil, b, err
	}
	m.Rank = ids.Rank(rank)
	if n, b, err = proto.ReadUvarint(b); err != nil || n > uint64(len(b)) {
		return nil, b, proto.ErrCorrupt
	}
	if n > 0 {
		m.Detached = make([]uint64, n)
	}
	for i := range m.Detached {
		if m.Detached[i], b, err = proto.ReadUvarint(b); err != nil {
			return nil, b, err
		}
	}
	if n, b, err = proto.ReadUvarint(b); err != nil || n > uint64(len(b)) {
		return nil, b, proto.ErrCorrupt
	}
	if n > 0 {
		m.Attached = make([]AttachedWire, n)
	}
	for i := range m.Attached {
		if m.Attached[i].ID, b, err = readDot(b); err != nil {
			return nil, b, err
		}
		if m.Attached[i].TS, b, err = proto.ReadUvarint(b); err != nil {
			return nil, b, err
		}
	}
	if m.WM, b, err = readWM(b); err != nil {
		return nil, b, err
	}
	return m, b, nil
}

// WireTag implements proto.BinaryMessage.
func (m *MStable) WireTag() byte { return tagMStable }

// AppendBinary implements proto.BinaryMessage.
//
//tempo:noalloc
func (m *MStable) AppendBinary(buf []byte) []byte {
	buf = appendDot(buf, m.ID)
	return proto.AppendUvarint(buf, uint64(m.Shard))
}

func decodeMStable(b []byte) (proto.Message, []byte, error) {
	m := &MStable{}
	var err error
	if m.ID, b, err = readDot(b); err != nil {
		return nil, b, err
	}
	var shard uint64
	if shard, b, err = proto.ReadUvarint(b); err != nil {
		return nil, b, err
	}
	m.Shard = ids.ShardID(shard)
	return m, b, nil
}
