package tempo

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"tempo/internal/command"
	"tempo/internal/ids"
	"tempo/internal/proto"
)

func init() {
	// The binary codec's reference implementation for the equivalence
	// tests. Registration is idempotent for identical types.
	gob.Register(&MSubmit{})
	gob.Register(&MPayload{})
	gob.Register(&MPropose{})
	gob.Register(&MProposeAck{})
	gob.Register(&MBump{})
	gob.Register(&MCommit{})
	gob.Register(&MConsensus{})
	gob.Register(&MConsensusAck{})
	gob.Register(&MRec{})
	gob.Register(&MRecAck{})
	gob.Register(&MRecNAck{})
	gob.Register(&MCommitRequest{})
	gob.Register(&MPromises{})
	gob.Register(&MStable{})
}

func sampleCmd() *command.Command {
	c := command.New(ids.Dot{Source: 3, Seq: 41},
		command.Op{Kind: command.Put, Key: "alpha", Value: []byte("v-alpha")},
		command.Op{Kind: command.Get, Key: "beta"},
	)
	c.Padding = 100
	return c
}

// sampleMessages covers every registered message type with
// representative field values (including empty/nil optional fields).
func sampleMessages() []proto.Message {
	cmd := sampleCmd()
	q := Quorums{
		0: {1, 2, 3},
		1: {4, 5},
	}
	return []proto.Message{
		&MSubmit{ID: ids.Dot{Source: 1, Seq: 7}, Cmd: cmd, Quorums: q},
		&MSubmit{ID: ids.Dot{Source: 1, Seq: 8}}, // nil payload, nil quorums
		&MPayload{ID: ids.Dot{Source: 2, Seq: 9}, Cmd: cmd, Quorums: q},
		&MPropose{ID: ids.Dot{Source: 2, Seq: 10}, Cmd: cmd, Quorums: q, TS: 77},
		&MProposeAck{ID: ids.Dot{Source: 3, Seq: 11}, TS: 78, DetachedLo: 70, DetachedHi: 77},
		&MProposeAck{ID: ids.Dot{Source: 3, Seq: 12}, TS: 79},
		&MBump{ID: ids.Dot{Source: 4, Seq: 13}, TS: 80},
		&MCommit{ID: ids.Dot{Source: 4, Seq: 14}, Shard: 1, TS: 81, Attached: []RankTS{
			{Rank: 1, TS: 81, DetLo: 75, DetHi: 80},
			{Rank: 2, TS: 79},
		}},
		&MCommit{ID: ids.Dot{Source: 4, Seq: 15}, Shard: 0, TS: 82},
		&MConsensus{ID: ids.Dot{Source: 5, Seq: 16}, TS: 83, Ballot: 12},
		&MConsensusAck{ID: ids.Dot{Source: 5, Seq: 17}, Ballot: 12},
		&MRec{ID: ids.Dot{Source: 1, Seq: 18}, Ballot: 9},
		&MRecAck{ID: ids.Dot{Source: 1, Seq: 19}, TS: 84, Phase: PhaseRecoverP, ABallot: 3, Ballot: 9, Attached: true},
		&MRecNAck{ID: ids.Dot{Source: 2, Seq: 20}, Ballot: 14},
		&MCommitRequest{ID: ids.Dot{Source: 2, Seq: 21}},
		&MPromises{Rank: 3, Detached: []uint64{1, 10, 15, 20},
			Attached: []AttachedWire{{ID: ids.Dot{Source: 1, Seq: 22}, TS: 85}},
			WM:       TSWatermark{TS: 60, ID: ids.Dot{Source: 3, Seq: 5}}},
		&MPromises{Rank: 4, WM: TSWatermark{TS: 0, ID: ids.Dot{}}},
		&MStable{ID: ids.Dot{Source: 3, Seq: 23}, Shard: 1},
	}
}

// TestCodecRoundTrip pins the acceptance property: the binary codec
// round-trips every message type byte-identically to its decoded form.
func TestCodecRoundTrip(t *testing.T) {
	for _, m := range sampleMessages() {
		b1, err := proto.AppendMessage(nil, m)
		if err != nil {
			t.Fatalf("%T: %v", m, err)
		}
		m2, rest, err := proto.DecodeMessage(b1)
		if err != nil {
			t.Fatalf("%T: decode: %v", m, err)
		}
		if len(rest) != 0 {
			t.Fatalf("%T: %d trailing bytes", m, len(rest))
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("%T: decoded %+v != original %+v", m, m2, m)
		}
		b2, err := proto.AppendMessage(nil, m2)
		if err != nil {
			t.Fatalf("%T: re-encode: %v", m, err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("%T: re-encode not byte-identical:\n  %x\n  %x", m, b1, b2)
		}
	}
}

// TestCodecSmallerThanGob pins the size claim: the binary encoding of
// every sample message is smaller than its gob envelope encoding (gob's
// per-stream type descriptors excluded — each message is encoded on a
// fresh stream, as the legacy per-connection encoder amortizes them but
// every new connection repays them).
func TestCodecSmallerThanGob(t *testing.T) {
	var totalBin, totalGob int
	for _, m := range sampleMessages() {
		bin, err := proto.AppendMessage(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		var g bytes.Buffer
		if err := gob.NewEncoder(&g).Encode(&m); err != nil {
			t.Fatalf("%T: gob: %v", m, err)
		}
		if len(bin) >= g.Len() {
			t.Errorf("%T: binary %dB >= gob %dB", m, len(bin), g.Len())
		}
		totalBin += len(bin)
		totalGob += g.Len()
	}
	t.Logf("total encoded size: binary %dB, gob %dB (%.1fx)",
		totalBin, totalGob, float64(totalGob)/float64(totalBin))
}

// gobRoundTrip passes a message through gob via the proto.Message
// interface, as the legacy cluster codec does.
func gobRoundTrip(t *testing.T, m proto.Message) proto.Message {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&m); err != nil {
		t.Fatalf("gob encode %T: %v", m, err)
	}
	var out proto.Message
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatalf("gob decode %T: %v", m, err)
	}
	return out
}

// gobLossless reports whether gob preserves the message exactly. gob
// flattens pointers, so a non-nil *Command whose value is the zero
// Command decodes as nil — a gob wart the binary codec does not share.
func gobLossless(m proto.Message) bool {
	switch v := m.(type) {
	case *MSubmit:
		return v.Cmd == nil || !reflect.DeepEqual(*v.Cmd, command.Command{})
	case *MPayload:
		return v.Cmd == nil || !reflect.DeepEqual(*v.Cmd, command.Command{})
	case *MPropose:
		return v.Cmd == nil || !reflect.DeepEqual(*v.Cmd, command.Command{})
	}
	return true
}

// TestCodecGobEquivalence checks that the two codecs agree on every
// sample message.
func TestCodecGobEquivalence(t *testing.T) {
	for _, m := range sampleMessages() {
		bin, err := proto.AppendMessage(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		binDec, _, err := proto.DecodeMessage(bin)
		if err != nil {
			t.Fatal(err)
		}
		gobDec := gobRoundTrip(t, m)
		if !reflect.DeepEqual(binDec, gobDec) {
			t.Fatalf("%T: binary %+v != gob %+v", m, binDec, gobDec)
		}
	}
}

// FuzzCodecRoundTrip fuzzes the decoder with raw bytes: anything that
// decodes must re-encode byte-identically, decode back DeepEqual, and
// agree with a gob round trip (the legacy codec), for every registered
// message type.
func FuzzCodecRoundTrip(f *testing.F) {
	for _, m := range sampleMessages() {
		b, err := proto.AppendMessage(nil, m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, rest, err := proto.DecodeMessage(data)
		if err != nil {
			return // corrupt input rejected: fine
		}
		_ = rest
		b1, err := proto.AppendMessage(nil, msg)
		if err != nil {
			t.Fatalf("decoded %T does not re-encode: %v", msg, err)
		}
		msg2, rest2, err := proto.DecodeMessage(b1)
		if err != nil || len(rest2) != 0 {
			t.Fatalf("re-decode %T: %v (%d trailing)", msg, err, len(rest2))
		}
		if !reflect.DeepEqual(msg, msg2) {
			t.Fatalf("round trip changed %T:\n  %+v\n  %+v", msg, msg, msg2)
		}
		b2, err := proto.AppendMessage(nil, msg2)
		if err != nil || !bytes.Equal(b1, b2) {
			t.Fatalf("%T encoding not canonical", msg)
		}
		if gobLossless(msg) {
			if g := gobRoundTrip(t, msg); !reflect.DeepEqual(msg, g) {
				t.Fatalf("gob disagrees for %T:\n  %+v\n  %+v", msg, msg, g)
			}
		}
	})
}

// BenchmarkCodec (binary vs gob) lives in the repository-level
// bench_test.go, backed by internal/bench's micro harness so `bench
// -exp micro` emits the same numbers to BENCH_micro.json.
