// Package core is the library facade: it wires a topology, a replication
// protocol and a runtime into a usable replicated key-value service.
//
// Cluster runs every replica in-process with synchronous message delivery
// — the easiest way to embed the library, used by the examples and the
// cmd tools. For real deployments over TCP see internal/cluster; for
// simulated geo-distributed experiments see internal/sim.
package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"tempo/internal/command"
	"tempo/internal/epaxos"
	"tempo/internal/fpaxos"
	"tempo/internal/ids"
	"tempo/internal/proto"
	"tempo/internal/tempo"
	"tempo/internal/testnet"
	"tempo/internal/topology"
)

// ProtocolKind selects the replication protocol.
type ProtocolKind string

// Available protocols.
const (
	ProtocolTempo  ProtocolKind = "tempo"
	ProtocolAtlas  ProtocolKind = "atlas"
	ProtocolEPaxos ProtocolKind = "epaxos"
	ProtocolFPaxos ProtocolKind = "fpaxos"
)

// Options configure a Cluster.
type Options struct {
	// Sites are the replica locations; default: the paper's five EC2
	// regions.
	Sites []string
	// F is the number of tolerated failures per shard (default 1).
	F int
	// Shards is the number of shards (default 1 = full replication).
	Shards int
	// Protocol selects the SMR protocol (default Tempo).
	Protocol ProtocolKind
	// Tempo tunes the Tempo protocol when selected.
	Tempo tempo.Config
}

// Cluster is an in-process deployment of the replicated service.
type Cluster struct {
	topo *topology.Topology
	net  *testnet.Net
	reps map[ids.ProcessID]proto.Replica
	// executed[id] holds the processes that executed the command.
	executed map[ids.Dot]map[ids.ProcessID]*command.Result
}

// NewReplicaFunc builds protocol replicas for a topology.
func NewReplicaFunc(kind ProtocolKind, topo *topology.Topology, tcfg tempo.Config) (func(ids.ProcessID) proto.Replica, error) {
	switch kind {
	case "", ProtocolTempo:
		return func(id ids.ProcessID) proto.Replica { return tempo.New(id, topo, tcfg) }, nil
	case ProtocolAtlas:
		return func(id ids.ProcessID) proto.Replica {
			return epaxos.New(id, topo, epaxos.Config{Variant: epaxos.VariantAtlas, NonGenuineCommit: topo.NumShards() > 1})
		}, nil
	case ProtocolEPaxos:
		return func(id ids.ProcessID) proto.Replica {
			return epaxos.New(id, topo, epaxos.Config{Variant: epaxos.VariantEPaxos})
		}, nil
	case ProtocolFPaxos:
		return func(id ids.ProcessID) proto.Replica { return fpaxos.New(id, topo, fpaxos.Config{}) }, nil
	default:
		return nil, fmt.Errorf("core: unknown protocol %q", kind)
	}
}

// New creates an in-process cluster.
func New(opts Options) (*Cluster, error) {
	sites := opts.Sites
	if sites == nil {
		sites = topology.EC2Sites
	}
	f := opts.F
	if f == 0 {
		f = 1
	}
	shards := opts.Shards
	if shards == 0 {
		shards = 1
	}
	var rtt [][]time.Duration
	if len(sites) == len(topology.EC2Sites) {
		rtt = topology.EC2RTT()
	} else {
		rtt = make([][]time.Duration, len(sites))
		for i := range rtt {
			rtt[i] = make([]time.Duration, len(sites))
			for j := range rtt[i] {
				if i != j {
					rtt[i][j] = 2 * time.Millisecond
				}
			}
		}
	}
	topo, err := topology.New(topology.Config{
		SiteNames: sites, RTT: rtt, NumShards: shards, F: f,
	})
	if err != nil {
		return nil, err
	}
	nr, err := NewReplicaFunc(opts.Protocol, topo, opts.Tempo)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		topo:     topo,
		reps:     make(map[ids.ProcessID]proto.Replica),
		executed: make(map[ids.Dot]map[ids.ProcessID]*command.Result),
	}
	var all []proto.Replica
	for _, pi := range topo.Processes() {
		r := nr(pi.ID)
		c.reps[pi.ID] = r
		all = append(all, r)
	}
	c.net = testnet.New(all...)
	return c, nil
}

// Topology exposes the cluster's topology.
func (c *Cluster) Topology() *topology.Topology { return c.topo }

// Client returns a session bound to a site.
func (c *Cluster) Client(site int) *Client {
	return &Client{c: c, site: ids.SiteID(site)}
}

// Crash fail-stops the process of the given shard at the given site.
func (c *Cluster) Crash(site, shard int) {
	c.net.Crash(c.topo.ProcessAt(ids.SiteID(site), ids.ShardID(shard)))
}

// SetLeader informs leader-aware replicas of the Ω oracle's choice.
func (c *Cluster) SetLeader(rank int) { c.net.SetLeader(ids.Rank(rank)) }

// Settle pumps messages and periodic work (promise gossip, recovery) for
// the given number of rounds.
func (c *Cluster) Settle(rounds int, dt time.Duration) {
	c.net.Settle(rounds, dt)
	c.collect()
}

// collect gathers executions from all replicas.
func (c *Cluster) collect() {
	for id, r := range c.reps {
		for _, e := range r.Drain() {
			m := c.executed[e.Cmd.ID]
			if m == nil {
				m = make(map[ids.ProcessID]*command.Result)
				c.executed[e.Cmd.ID] = m
			}
			m[id] = e.Result
		}
	}
}

// Client is a session submitting commands at one site. It mirrors the
// networked session API of the top-level client package (contexts,
// typed errors) so code can move between the in-process and TCP
// runtimes unchanged.
type Client struct {
	c    *Cluster
	site ids.SiteID
}

type idMinter interface{ NextID() ids.Dot }

// Execute submits a command built from ops and waits (synchronously
// pumping the in-process network) until it executes at every co-located
// shard replica, or ctx is done. It returns the per-shard results.
func (cl *Client) Execute(ctx context.Context, ops ...command.Op) ([]*command.Result, error) {
	if len(ops) == 0 {
		return nil, fmt.Errorf("core: empty command")
	}
	topo := cl.c.topo
	first := topo.ShardOf(ops[0].Key)
	proc := topo.ProcessAt(cl.site, first)
	if proc == 0 {
		return nil, fmt.Errorf("core: site %d does not replicate shard %d", cl.site, first)
	}
	rep := cl.c.reps[proc]
	cmd := command.New(rep.(idMinter).NextID(), ops...)

	need := make(map[ids.ProcessID]bool)
	for _, s := range cmd.Shards(topo.ShardOf) {
		p := topo.ProcessAt(cl.site, s)
		if p == 0 {
			return nil, fmt.Errorf("core: site %d does not replicate shard %d", cl.site, s)
		}
		need[p] = true
	}

	cl.c.net.Submit(proc, cmd)
	// Pump until executed at all co-located replicas (bounded).
	for i := 0; i < 1000; i++ {
		if err := ctx.Err(); err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				return nil, fmt.Errorf("%w: %w", command.ErrTimeout, err)
			}
			return nil, err
		}
		cl.c.net.Drain(0)
		cl.c.collect()
		if got := cl.c.executed[cmd.ID]; got != nil {
			done := true
			for p := range need {
				if _, ok := got[p]; !ok {
					done = false
				}
			}
			if done {
				var out []*command.Result
				for p := range need {
					out = append(out, got[p])
				}
				return out, nil
			}
		}
		cl.c.net.Tick(2 * time.Millisecond)
	}
	return nil, fmt.Errorf("core: command %v did not execute (crashed quorum?)", cmd.ID)
}

// Put writes a key.
func (cl *Client) Put(ctx context.Context, key string, value []byte) error {
	_, err := cl.Execute(ctx, command.Op{Kind: command.Put, Key: command.Key(key), Value: value})
	return err
}

// Get reads a key. A missing key returns command.ErrNotFound, distinct
// from a present empty value.
func (cl *Client) Get(ctx context.Context, key string) ([]byte, error) {
	res, err := cl.Execute(ctx, command.Op{Kind: command.Get, Key: command.Key(key)})
	if err != nil {
		return nil, err
	}
	v := res[0].Values[0]
	if v == nil {
		return nil, fmt.Errorf("%w: %q", command.ErrNotFound, key)
	}
	return v, nil
}
