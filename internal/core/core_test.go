package core

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"tempo/internal/command"
	"tempo/internal/tempo"
)

func TestPutGetTempo(t *testing.T) {
	ctx := context.Background()
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	cl := c.Client(0)
	if err := cl.Put(ctx, "greeting", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	v, err := cl.Get(ctx, "greeting")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v, []byte("hello")) {
		t.Fatalf("got %q", v)
	}
	// A client at another site reads the same value (linearizability).
	v, err = c.Client(2).Get(ctx, "greeting")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v, []byte("hello")) {
		t.Fatalf("remote client got %q", v)
	}
}

func TestAllProtocols(t *testing.T) {
	for _, kind := range []ProtocolKind{ProtocolTempo, ProtocolAtlas, ProtocolEPaxos, ProtocolFPaxos} {
		t.Run(string(kind), func(t *testing.T) {
			ctx := context.Background()
			c, err := New(Options{Protocol: kind})
			if err != nil {
				t.Fatal(err)
			}
			cl := c.Client(1)
			if err := cl.Put(ctx, "k", []byte("v")); err != nil {
				t.Fatal(err)
			}
			v, err := cl.Get(ctx, "k")
			if err != nil {
				t.Fatal(err)
			}
			if string(v) != "v" {
				t.Fatalf("got %q", v)
			}
		})
	}
}

func TestMultiShardTransaction(t *testing.T) {
	ctx := context.Background()
	c, err := New(Options{Shards: 2, Sites: []string{"a", "b", "c"}})
	if err != nil {
		t.Fatal(err)
	}
	cl := c.Client(0)
	// Find keys on both shards.
	var k0, k1 string
	for i := 0; k0 == "" || k1 == ""; i++ {
		k := string(rune('a'+i%26)) + string(rune('0'+i/26))
		if c.Topology().ShardOf(command.Key(k)) == 0 && k0 == "" {
			k0 = k
		} else if c.Topology().ShardOf(command.Key(k)) == 1 && k1 == "" {
			k1 = k
		}
	}
	res, err := cl.Execute(ctx,
		command.Op{Kind: command.Put, Key: command.Key(k0), Value: []byte("x")},
		command.Op{Kind: command.Put, Key: command.Key(k1), Value: []byte("y")},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("want results from 2 shards, got %d", len(res))
	}
	v, err := cl.Get(ctx, k1)
	if err != nil || string(v) != "y" {
		t.Fatalf("k1 = %q, %v", v, err)
	}
}

func TestCrashRecovery(t *testing.T) {
	ctx := context.Background()
	c, err := New(Options{
		Tempo: tempoRecoveryConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := c.Client(0)
	if err := cl.Put(ctx, "before", []byte("1")); err != nil {
		t.Fatal(err)
	}
	// Crash the Ireland replica (rank 1); clients there are out of luck,
	// but the rest of the system keeps going once Ω settles on rank 2.
	c.Crash(0, 0)
	c.SetLeader(2)
	c.Settle(5, 20*time.Millisecond)
	cl2 := c.Client(1)
	if err := cl2.Put(ctx, "after", []byte("2")); err != nil {
		t.Fatal(err)
	}
	v, err := cl2.Get(ctx, "before")
	if err != nil || string(v) != "1" {
		t.Fatalf("pre-crash write lost: %q, %v", v, err)
	}
}

func TestGetMissingKeyTyped(t *testing.T) {
	ctx := context.Background()
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Client(0).Get(ctx, "missing"); !errors.Is(err, command.ErrNotFound) {
		t.Fatalf("Get(missing) = %v, want command.ErrNotFound", err)
	}
}

func TestUnknownProtocol(t *testing.T) {
	if _, err := New(Options{Protocol: "zab"}); err == nil {
		t.Fatal("unknown protocol should error")
	}
}

// tempoRecoveryConfig enables fast recovery for the crash test.
func tempoRecoveryConfig() (c tempo.Config) {
	c.RecoveryTimeout = 20 * time.Millisecond
	c.PromiseInterval = 5 * time.Millisecond
	return c
}
