package cluster

import (
	"sync"
	"testing"
	"time"

	"tempo/internal/ids"
	"tempo/internal/proto"
)

// sizedMsg is a shaper test message with a controllable wire size.
type sizedMsg struct{ N int }

func (m sizedMsg) Size() int { return m.N }

// recorder collects shaped deliveries with their arrival times.
type recorder struct {
	mu   sync.Mutex
	got  []sizedMsg
	at   []time.Time
	done chan struct{} // closed when want messages arrived
	want int
}

func newRecorder(want int) *recorder {
	return &recorder{done: make(chan struct{}), want: want}
}

func (r *recorder) deliver(from, to ids.ProcessID, msg proto.Message) {
	r.mu.Lock()
	r.got = append(r.got, msg.(sizedMsg))
	r.at = append(r.at, time.Now())
	if len(r.got) == r.want {
		close(r.done)
	}
	r.mu.Unlock()
}

func (r *recorder) wait(t *testing.T) {
	t.Helper()
	select {
	case <-r.done:
	case <-time.After(10 * time.Second):
		t.Fatalf("recorder: got %d of %d messages", len(r.got), r.want)
	}
}

func TestShaperDelayAndFIFO(t *testing.T) {
	const n = 64
	delay := 20 * time.Millisecond
	sh := NewShaper(func(from, to ids.ProcessID) LinkPolicy {
		return LinkPolicy{Delay: delay, Jitter: 10 * time.Millisecond}
	})
	defer sh.Close()
	rec := newRecorder(n)
	start := time.Now()
	for i := 0; i < n; i++ {
		sh.Send(1, 2, sizedMsg{N: i}, rec.deliver)
	}
	rec.wait(t)
	for i, m := range rec.got {
		if m.N != i {
			t.Fatalf("message %d arrived at position %d: shaped link reordered", m.N, i)
		}
		if lat := rec.at[i].Sub(start); lat < delay {
			t.Fatalf("message %d delivered after %v, want >= %v", i, lat, delay)
		}
	}
	if got := sh.Delivered(); got != n {
		t.Fatalf("Delivered() = %d, want %d", got, n)
	}
}

func TestShaperSelfBypass(t *testing.T) {
	sh := NewShaper(func(from, to ids.ProcessID) LinkPolicy {
		return LinkPolicy{Delay: time.Hour}
	})
	defer sh.Close()
	sh.Isolate(7)
	rec := newRecorder(1)
	sh.Send(7, 7, sizedMsg{}, rec.deliver) // inline, despite delay and isolation
	select {
	case <-rec.done:
	default:
		t.Fatal("self-send was shaped or dropped")
	}
}

func TestShaperPartitions(t *testing.T) {
	sh := NewShaper(nil)
	defer sh.Close()
	count := func(from, to ids.ProcessID) int {
		rec := newRecorder(1)
		sh.Send(from, to, sizedMsg{}, rec.deliver)
		rec.mu.Lock()
		defer rec.mu.Unlock()
		return len(rec.got) // nil policy: delivery is inline when not blocked
	}

	if count(1, 2) != 1 {
		t.Fatal("healthy link dropped")
	}
	sh.Cut(1, 2)
	if count(1, 2) != 0 || count(2, 1) != 0 {
		t.Fatal("cut link delivered")
	}
	if count(1, 3) != 1 {
		t.Fatal("cut of (1,2) blocked (1,3)")
	}
	sh.Heal(1, 2)
	if count(1, 2) != 1 || count(2, 1) != 1 {
		t.Fatal("healed link still blocked")
	}

	sh.CutOneWay(3, 1)
	if count(3, 1) != 0 {
		t.Fatal("one-way cut delivered")
	}
	if count(1, 3) != 1 {
		t.Fatal("one-way cut blocked the reverse direction")
	}

	sh.Isolate(5)
	if count(5, 1) != 0 || count(1, 5) != 0 {
		t.Fatal("isolated process still reachable")
	}
	sh.Rejoin(5)
	if count(5, 1) != 1 {
		t.Fatal("rejoined process still blocked")
	}

	sh.Cut(1, 2)
	sh.Isolate(5)
	sh.HealAll()
	if count(1, 2) != 1 || count(5, 1) != 1 {
		t.Fatal("HealAll left links blocked")
	}
	st := sh.State()
	if len(st.Cuts) != 0 || len(st.Isolated) != 0 {
		t.Fatalf("State after HealAll = %+v, want empty", st)
	}
	if st.Dropped != sh.Dropped() || st.Dropped == 0 {
		t.Fatalf("State.Dropped = %d, want %d > 0", st.Dropped, sh.Dropped())
	}
}

func TestShaperBandwidth(t *testing.T) {
	// 10 KB/s and three 250-byte messages: serialization alone spaces
	// them 25ms apart, so the third cannot arrive before ~75ms.
	sh := NewShaper(func(from, to ids.ProcessID) LinkPolicy {
		return LinkPolicy{Bandwidth: 10_000}
	})
	defer sh.Close()
	rec := newRecorder(3)
	start := time.Now()
	for i := 0; i < 3; i++ {
		sh.Send(1, 2, sizedMsg{N: 250}, rec.deliver)
	}
	rec.wait(t)
	if lat := rec.at[2].Sub(start); lat < 70*time.Millisecond {
		t.Fatalf("third message after %v, want >= 70ms of serialization", lat)
	}
}

func TestShaperLoss(t *testing.T) {
	sh := NewShaper(func(from, to ids.ProcessID) LinkPolicy {
		return LinkPolicy{Loss: 1.0}
	})
	defer sh.Close()
	rec := newRecorder(1)
	for i := 0; i < 20; i++ {
		sh.Send(1, 2, sizedMsg{}, rec.deliver)
	}
	if sh.Dropped() != 20 || sh.Delivered() != 0 {
		t.Fatalf("loss=1.0: dropped=%d delivered=%d, want 20/0", sh.Dropped(), sh.Delivered())
	}
}

func TestShaperCloseDiscards(t *testing.T) {
	sh := NewShaper(func(from, to ids.ProcessID) LinkPolicy {
		return LinkPolicy{Delay: time.Hour}
	})
	rec := newRecorder(1)
	sh.Send(1, 2, sizedMsg{}, rec.deliver)
	sh.Close()
	sh.Send(1, 2, sizedMsg{}, rec.deliver) // post-close: dropped, no panic
	time.Sleep(10 * time.Millisecond)
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.got) != 0 {
		t.Fatal("closed shaper delivered a delayed message")
	}
}

// TestClusterUnderShaper runs a real 3-node TCP cluster with a shared
// shaper adding a 5ms one-way delay on every inter-process link and
// checks that commands still commit — and take at least one shaped
// round trip.
func TestClusterUnderShaper(t *testing.T) {
	sh := NewShaper(func(from, to ids.ProcessID) LinkPolicy {
		return LinkPolicy{Delay: 5 * time.Millisecond}
	})
	defer sh.Close()
	nodes, addrs, topo := startClusterWith(t, 3, 1, func(i int, n *Node) {
		n.SetShaper(sh)
	})
	_ = nodes
	c, err := Dial(addrs[topo.ProcessAt(0, 0)])
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	if err := c.Put("wan-k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if lat := time.Since(start); lat < 10*time.Millisecond {
		t.Fatalf("shaped commit took %v, want >= one 5ms round trip", lat)
	}
	v, err := c.Get("wan-k")
	if err != nil || string(v) != "v" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if sh.Delivered() == 0 {
		t.Fatal("shaper saw no protocol traffic")
	}
}
