package cluster_test

// End-to-end crash-restart: real OS processes (the re-exec'd test
// binary), a real SIGKILL mid-load, a real restart on the same data
// directory. This is the acceptance test of the durability subsystem —
// everything the in-process tests cannot exercise (kernel-destroyed
// sockets, unsynced WAL tails, a genuinely fresh address space) happens
// here. The same harness shape drives `bench -exp fault`.

import (
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"tempo/client"
	"tempo/internal/cluster"
	"tempo/internal/ids"
	"tempo/internal/tempo"
	"tempo/internal/topology"
)

// TestHelperNodeProcess is not a test: it is the child-process entry
// point. The driver re-execs the test binary with TEMPO_NODE_CHILD set;
// a plain `go test` run skips it immediately.
func TestHelperNodeProcess(t *testing.T) {
	if os.Getenv("TEMPO_NODE_CHILD") == "" {
		t.Skip("child-process helper")
	}
	id, _ := strconv.Atoi(os.Getenv("TEMPO_NODE_ID"))
	peers := strings.Split(os.Getenv("TEMPO_NODE_PEERS"), ",")
	dir := os.Getenv("TEMPO_NODE_DIR")

	names := make([]string, len(peers))
	rtt := make([][]time.Duration, len(peers))
	for i := range names {
		names[i] = fmt.Sprintf("s%d", i)
		rtt[i] = make([]time.Duration, len(peers))
	}
	topo, err := topology.New(topology.Config{SiteNames: names, RTT: rtt, NumShards: 1, F: 1})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	addrs := make(map[ids.ProcessID]string, len(peers))
	for i, a := range peers {
		addrs[ids.ProcessID(i+1)] = a
	}
	rep := tempo.New(ids.ProcessID(id), topo, tempo.Config{
		PromiseInterval: 2 * time.Millisecond,
		RecoveryTimeout: 200 * time.Millisecond,
	})
	node := cluster.NewNode(ids.ProcessID(id), rep, addrs)
	if err := node.SetDurable(cluster.DurableConfig{Dir: dir, SyncInterval: time.Millisecond}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := node.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// Signal readiness, then serve until the parent kills us or closes
	// our stdin (belt and braces against orphaned children).
	fmt.Println("NODE_READY")
	var buf [1]byte
	os.Stdin.Read(buf[:])
	node.Close()
}

// spawnNode starts one cluster node as a child process and waits for it
// to finish recovery and serve.
func spawnNode(t *testing.T, id int, peers []string, dir string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestHelperNodeProcess$", "-test.v")
	cmd.Env = append(os.Environ(),
		"TEMPO_NODE_CHILD=1",
		fmt.Sprintf("TEMPO_NODE_ID=%d", id),
		"TEMPO_NODE_PEERS="+strings.Join(peers, ","),
		"TEMPO_NODE_DIR="+dir,
	)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		stdin.Close()
		if cmd.Process != nil {
			cmd.Process.Kill()
		}
		cmd.Wait()
	})
	// Wait for the ready line (recovery included).
	readyCh := make(chan error, 1)
	go func() {
		buf := make([]byte, 4096)
		var acc []byte
		for {
			n, err := stdout.Read(buf)
			acc = append(acc, buf[:n]...)
			if strings.Contains(string(acc), "NODE_READY") {
				readyCh <- nil
				// Keep draining so the child never blocks on stdout.
				go func() {
					for {
						if _, err := stdout.Read(buf); err != nil {
							return
						}
					}
				}()
				return
			}
			if err != nil {
				readyCh <- fmt.Errorf("child %d exited before ready: %s", id, acc)
				return
			}
		}
	}()
	select {
	case err := <-readyCh:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("child %d not ready in time", id)
	}
	return cmd
}

func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs
}

// TestCrashRestartSIGKILL is the end-to-end acceptance test: a replica
// killed with SIGKILL mid-load restarts on its data directory, replays
// snapshot+WAL, catches up from its peers (including writes acknowledged
// during the outage and any unsynced WAL tail), and serves again.
func TestCrashRestartSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	addrs := freeAddrs(t, 3)
	base := t.TempDir()
	dirs := make([]string, 3)
	cmds := make([]*exec.Cmd, 3)
	for i := 0; i < 3; i++ {
		dirs[i] = filepath.Join(base, fmt.Sprintf("node-%d", i+1))
		cmds[i] = spawnNode(t, i+1, addrs, dirs[i])
	}

	sess, err := client.Dial(addrs...)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	ctx := context.Background()

	put := func(s *client.Session, k, v string) error {
		c, cancel := context.WithTimeout(ctx, 5*time.Second)
		defer cancel()
		return s.Put(c, k, []byte(v))
	}
	for i := 0; i < 50; i++ {
		if err := put(sess, fmt.Sprintf("pre-%d", i), fmt.Sprintf("v%d", i)); err != nil {
			t.Fatalf("pre-crash put %d: %v", i, err)
		}
	}

	// Give the victim a beat to apply the replicated writes (execution
	// at non-coordinating replicas trails the coordinator ack by the
	// promise-gossip interval), so the restart genuinely replays a WAL.
	time.Sleep(300 * time.Millisecond)

	// SIGKILL the third replica: no Close, no WAL flush, no goodbye.
	victim := cmds[2]
	if err := victim.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	victim.Wait()

	// The cluster stays available (f=1): writes keep succeeding while
	// the victim is down. The session fails over away from it.
	for i := 0; i < 50; i++ {
		if err := put(sess, fmt.Sprintf("outage-%d", i), fmt.Sprintf("o%d", i)); err != nil {
			t.Fatalf("during-outage put %d: %v", i, err)
		}
	}

	// Restart on the same directory and address.
	cmds[2] = spawnNode(t, 3, addrs, dirs[2])

	// The restarted replica serves linearizable reads of everything:
	// pre-crash writes (local replay), outage writes (peer catch-up).
	probe, err := client.New(client.Config{Addrs: map[ids.ProcessID]string{3: addrs[2]}})
	if err != nil {
		t.Fatal(err)
	}
	defer probe.Close()
	get := func(k string) (string, error) {
		c, cancel := context.WithTimeout(ctx, 5*time.Second)
		defer cancel()
		v, err := probe.Get(c, k)
		return string(v), err
	}
	var v string
	deadline := time.Now().Add(20 * time.Second)
	for {
		v, err = get("outage-49")
		if err == nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if err != nil || v != "o49" {
		t.Fatalf("outage-49 via restarted node = %q, %v", v, err)
	}
	if v, err := get("pre-7"); err != nil || v != "v7" {
		t.Fatalf("pre-7 via restarted node = %q, %v", v, err)
	}
	// And it takes new writes.
	if err := put(probe, "post-restart", "back"); err != nil {
		t.Fatalf("post-restart put via restarted node: %v", err)
	}
	if v, err := get("post-restart"); err != nil || v != "back" {
		t.Fatalf("post-restart read-back = %q, %v", v, err)
	}
}
