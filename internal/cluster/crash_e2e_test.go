package cluster_test

// End-to-end crash-restart: real OS processes (the re-exec'd test
// binary), a real SIGKILL mid-load, a real restart on the same data
// directory. This is the acceptance test of the durability subsystem —
// everything the in-process tests cannot exercise (kernel-destroyed
// sockets, unsynced WAL tails, a genuinely fresh address space) happens
// here. The same harness shape drives `bench -exp fault`.

import (
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"tempo/client"
	"tempo/internal/cluster"
	"tempo/internal/command"
	"tempo/internal/ids"
	"tempo/internal/proto"
	"tempo/internal/psmr"
	"tempo/internal/tempo"
	"tempo/internal/topology"
)

// TestHelperNodeProcess is not a test: it is the child-process entry
// point. The driver re-execs the test binary with TEMPO_NODE_CHILD set;
// a plain `go test` run skips it immediately.
func TestHelperNodeProcess(t *testing.T) {
	if os.Getenv("TEMPO_NODE_CHILD") == "" {
		t.Skip("child-process helper")
	}
	id, _ := strconv.Atoi(os.Getenv("TEMPO_NODE_ID"))
	peers := strings.Split(os.Getenv("TEMPO_NODE_PEERS"), ",")
	dir := os.Getenv("TEMPO_NODE_DIR")

	names := make([]string, len(peers))
	rtt := make([][]time.Duration, len(peers))
	for i := range names {
		names[i] = fmt.Sprintf("s%d", i)
		rtt[i] = make([]time.Duration, len(peers))
	}
	topo, err := topology.New(topology.Config{SiteNames: names, RTT: rtt, NumShards: 1, F: 1})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	addrs := make(map[ids.ProcessID]string, len(peers))
	for i, a := range peers {
		addrs[ids.ProcessID(i+1)] = a
	}
	rep := tempo.New(ids.ProcessID(id), topo, tempo.Config{
		PromiseInterval: 2 * time.Millisecond,
		RecoveryTimeout: 200 * time.Millisecond,
	})
	node := cluster.NewNode(ids.ProcessID(id), rep, addrs)
	if err := node.SetDurable(cluster.DurableConfig{Dir: dir, SyncInterval: time.Millisecond}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := node.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// Signal readiness, then serve until the parent kills us or closes
	// our stdin (belt and braces against orphaned children).
	fmt.Println("NODE_READY")
	var buf [1]byte
	os.Stdin.Read(buf[:])
	node.Close()
}

// spawnNode starts one cluster node as a child process and waits for it
// to finish recovery and serve.
func spawnNode(t *testing.T, id int, peers []string, dir string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestHelperNodeProcess$", "-test.v")
	cmd.Env = append(os.Environ(),
		"TEMPO_NODE_CHILD=1",
		fmt.Sprintf("TEMPO_NODE_ID=%d", id),
		"TEMPO_NODE_PEERS="+strings.Join(peers, ","),
		"TEMPO_NODE_DIR="+dir,
	)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		stdin.Close()
		if cmd.Process != nil {
			cmd.Process.Kill()
		}
		cmd.Wait()
	})
	// Wait for the ready line (recovery included).
	readyCh := make(chan error, 1)
	go func() {
		buf := make([]byte, 4096)
		var acc []byte
		for {
			n, err := stdout.Read(buf)
			acc = append(acc, buf[:n]...)
			if strings.Contains(string(acc), "NODE_READY") {
				readyCh <- nil
				// Keep draining so the child never blocks on stdout.
				go func() {
					for {
						if _, err := stdout.Read(buf); err != nil {
							return
						}
					}
				}()
				return
			}
			if err != nil {
				readyCh <- fmt.Errorf("child %d exited before ready: %s", id, acc)
				return
			}
		}
	}()
	select {
	case err := <-readyCh:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("child %d not ready in time", id)
	}
	return cmd
}

func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs
}

// TestCrashRestartSIGKILL is the end-to-end acceptance test: a replica
// killed with SIGKILL mid-load restarts on its data directory, replays
// snapshot+WAL, catches up from its peers (including writes acknowledged
// during the outage and any unsynced WAL tail), and serves again.
func TestCrashRestartSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	addrs := freeAddrs(t, 3)
	base := t.TempDir()
	dirs := make([]string, 3)
	cmds := make([]*exec.Cmd, 3)
	for i := 0; i < 3; i++ {
		dirs[i] = filepath.Join(base, fmt.Sprintf("node-%d", i+1))
		cmds[i] = spawnNode(t, i+1, addrs, dirs[i])
	}

	sess, err := client.Dial(addrs...)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	ctx := context.Background()

	put := func(s *client.Session, k, v string) error {
		c, cancel := context.WithTimeout(ctx, 5*time.Second)
		defer cancel()
		return s.Put(c, k, []byte(v))
	}
	for i := 0; i < 50; i++ {
		if err := put(sess, fmt.Sprintf("pre-%d", i), fmt.Sprintf("v%d", i)); err != nil {
			t.Fatalf("pre-crash put %d: %v", i, err)
		}
	}

	// Give the victim a beat to apply the replicated writes (execution
	// at non-coordinating replicas trails the coordinator ack by the
	// promise-gossip interval), so the restart genuinely replays a WAL.
	time.Sleep(300 * time.Millisecond)

	// SIGKILL the third replica: no Close, no WAL flush, no goodbye.
	victim := cmds[2]
	if err := victim.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	victim.Wait()

	// The cluster stays available (f=1): writes keep succeeding while
	// the victim is down. The session fails over away from it.
	for i := 0; i < 50; i++ {
		if err := put(sess, fmt.Sprintf("outage-%d", i), fmt.Sprintf("o%d", i)); err != nil {
			t.Fatalf("during-outage put %d: %v", i, err)
		}
	}

	// Restart on the same directory and address.
	cmds[2] = spawnNode(t, 3, addrs, dirs[2])

	// The restarted replica serves linearizable reads of everything:
	// pre-crash writes (local replay), outage writes (peer catch-up).
	probe, err := client.New(client.Config{Addrs: map[ids.ProcessID]string{3: addrs[2]}})
	if err != nil {
		t.Fatal(err)
	}
	defer probe.Close()
	get := func(k string) (string, error) {
		c, cancel := context.WithTimeout(ctx, 5*time.Second)
		defer cancel()
		v, err := probe.Get(c, k)
		return string(v), err
	}
	var v string
	deadline := time.Now().Add(20 * time.Second)
	for {
		v, err = get("outage-49")
		if err == nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if err != nil || v != "o49" {
		t.Fatalf("outage-49 via restarted node = %q, %v", v, err)
	}
	if v, err := get("pre-7"); err != nil || v != "v7" {
		t.Fatalf("pre-7 via restarted node = %q, %v", v, err)
	}
	// And it takes new writes.
	if err := put(probe, "post-restart", "back"); err != nil {
		t.Fatalf("post-restart put via restarted node: %v", err)
	}
	if v, err := get("post-restart"); err != nil || v != "back" {
		t.Fatalf("post-restart read-back = %q, %v", v, err)
	}
}

// --- cross-shard crash-restart ---

// crossTopo is the fixed shape of the cross-shard crash test: 3 sites,
// 2 shards, f=1, every site hosting both shards (one psmr group per
// site). Parent and children must build the identical topology.
func crossTopo() (*topology.Topology, error) {
	names := []string{"s0", "s1", "s2"}
	rtt := make([][]time.Duration, 3)
	for i := range rtt {
		rtt[i] = make([]time.Duration, 3)
	}
	return topology.New(topology.Config{SiteNames: names, RTT: rtt, NumShards: 2, F: 1})
}

// TestHelperSiteProcess is the child entry point of the cross-shard
// crash test: one durable psmr site (a group hosting one replica per
// shard). It reports DOUBLE_APPLY on stdout if any command is applied
// twice by an executor within this incarnation — the exactly-once
// accounting the parent asserts on.
func TestHelperSiteProcess(t *testing.T) {
	if os.Getenv("TEMPO_SITE_CHILD") == "" {
		t.Skip("child-process helper")
	}
	site, _ := strconv.Atoi(os.Getenv("TEMPO_SITE_ID"))
	siteAddrList := strings.Split(os.Getenv("TEMPO_SITE_ADDRS"), ",")
	dir := os.Getenv("TEMPO_SITE_DIR")

	topo, err := crossTopo()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	siteAddrs := make(map[ids.SiteID]string, len(siteAddrList))
	for i, a := range siteAddrList {
		siteAddrs[ids.SiteID(i)] = a
	}
	// Exactly-once accounting, per (dot, shard): a site hosts one
	// replica per shard, so the same command legitimately applies once
	// for each hosted shard it accesses — but never twice for one shard
	// within an incarnation.
	type dotShard struct {
		id    ids.Dot
		shard ids.ShardID
	}
	var mu sync.Mutex
	applied := make(map[dotShard]int)
	g, err := psmr.Start(psmr.Config{
		Topo:      topo,
		Site:      ids.SiteID(site),
		SiteAddrs: siteAddrs,
		Tempo: tempo.Config{
			PromiseInterval: 2 * time.Millisecond,
			RecoveryTimeout: 200 * time.Millisecond,
		},
		DataDir:       dir,
		FsyncInterval: time.Millisecond,
		ExecObserver: func(st proto.Stable) {
			mu.Lock()
			k := dotShard{st.Cmd.ID, st.Shard}
			applied[k]++
			twice := applied[k] == 2
			mu.Unlock()
			if twice {
				fmt.Printf("DOUBLE_APPLY %v shard %d\n", st.Cmd.ID, st.Shard)
			}
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("NODE_READY")
	var buf [1]byte
	os.Stdin.Read(buf[:])
	g.Close()
}

// spawnSite starts one psmr site as a child process and waits for it to
// recover and serve. doubleApply is set if the child ever reports a
// within-incarnation double apply. It returns an error instead of
// failing the test so callers may spawn sites from goroutines (t.Fatal
// must only run on the test goroutine).
func spawnSite(t *testing.T, site int, siteAddrs []string, dir string, doubleApply *atomic.Bool) (*exec.Cmd, error) {
	cmd := exec.Command(os.Args[0], "-test.run=^TestHelperSiteProcess$", "-test.v")
	cmd.Env = append(os.Environ(),
		"TEMPO_SITE_CHILD=1",
		fmt.Sprintf("TEMPO_SITE_ID=%d", site),
		"TEMPO_SITE_ADDRS="+strings.Join(siteAddrs, ","),
		"TEMPO_SITE_DIR="+dir,
	)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	t.Cleanup(func() {
		stdin.Close()
		if cmd.Process != nil {
			cmd.Process.Kill()
		}
		cmd.Wait()
	})
	readyCh := make(chan error, 1)
	go func() {
		buf := make([]byte, 4096)
		var acc []byte
		ready := false
		for {
			n, err := stdout.Read(buf)
			acc = append(acc, buf[:n]...)
			if strings.Contains(string(acc), "DOUBLE_APPLY") && doubleApply != nil {
				doubleApply.Store(true)
			}
			if !ready && strings.Contains(string(acc), "NODE_READY") {
				ready = true
				readyCh <- nil
			}
			if err != nil {
				if !ready {
					readyCh <- fmt.Errorf("site child %d exited before ready: %s", site, acc)
				}
				return
			}
			// Bound the accumulator; keep a tail for marker matching.
			if len(acc) > 1<<16 {
				acc = append(acc[:0], acc[len(acc)-1024:]...)
			}
		}
	}()
	select {
	case err := <-readyCh:
		if err != nil {
			return nil, err
		}
	case <-time.After(30 * time.Second):
		return nil, fmt.Errorf("site child %d not ready in time", site)
	}
	return cmd, nil
}

// TestCrossShardCrashRestartSIGKILL kill-restarts one whole site of a
// sharded deployment — one replica of each shard — under continuous
// cross-shard load, and asserts: the load keeps completing through the
// outage (per-shard quorums survive f=1), every cross-shard command
// eventually completes, no command is applied twice within any
// incarnation, and the restarted site serves the recovered cross-shard
// state atomically.
func TestCrossShardCrashRestartSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	topo, err := crossTopo()
	if err != nil {
		t.Fatal(err)
	}
	siteAddrs := freeAddrs(t, 3)
	base := t.TempDir()
	var doubleApply atomic.Bool
	dirs := make([]string, 3)
	cmds := make([]*exec.Cmd, 3)
	spawnErrs := make([]error, 3)
	var spawnWG sync.WaitGroup
	for i := 0; i < 3; i++ {
		dirs[i] = filepath.Join(base, fmt.Sprintf("site-%d", i))
		spawnWG.Add(1)
		go func(i int) {
			defer spawnWG.Done()
			cmds[i], spawnErrs[i] = spawnSite(t, i, siteAddrs, dirs[i], &doubleApply)
		}(i)
	}
	spawnWG.Wait()
	for i, err := range spawnErrs {
		if err != nil {
			t.Fatalf("spawn site %d: %v", i, err)
		}
	}

	addrMap := make(map[ids.SiteID]string, 3)
	for i, a := range siteAddrs {
		addrMap[ids.SiteID(i)] = a
	}
	procAddrs, _, err := psmr.ProcessAddrs(topo, addrMap)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := client.New(client.Config{Addrs: procAddrs, Topo: topo, Site: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	ctx := context.Background()

	// Keys on distinct shards for the paired (atomic) writes.
	keyOn := func(shard ids.ShardID, tag string) string {
		for i := 0; ; i++ {
			k := fmt.Sprintf("%s-%d", tag, i)
			if topo.ShardOf(command.Key(k)) == shard {
				return k
			}
		}
	}
	k0, k1 := keyOn(0, "x0"), keyOn(1, "x1")

	crossPut := func(i int) error {
		c, cancel := context.WithTimeout(ctx, 10*time.Second)
		defer cancel()
		v := []byte(fmt.Sprintf("v%d", i))
		_, err := sess.Execute(c,
			command.Op{Kind: command.Put, Key: command.Key(k0), Value: v},
			command.Op{Kind: command.Put, Key: command.Key(k1), Value: v},
		)
		return err
	}
	for i := 0; i < 30; i++ {
		if err := crossPut(i); err != nil {
			t.Fatalf("pre-crash cross put %d: %v", i, err)
		}
	}
	time.Sleep(300 * time.Millisecond) // let the victim apply replicated history

	// SIGKILL site 2: one replica of shard 0 AND of shard 1 vanish.
	victim := cmds[2]
	if err := victim.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	victim.Wait()

	// Cross-shard commands keep completing during the outage: both
	// shards still have 2 of 3 replicas (a fast quorum at f=1), and the
	// client's gateway/watch legs fail over to the live sites.
	for i := 30; i < 60; i++ {
		if err := crossPut(i); err != nil {
			t.Fatalf("during-outage cross put %d: %v", i, err)
		}
	}

	// Restart the site on the same directories and address.
	if cmds[2], err = spawnSite(t, 2, siteAddrs, dirs[2], &doubleApply); err != nil {
		t.Fatalf("restart site 2: %v", err)
	}

	// A session homed at the restarted site reads the final pair — the
	// replay + catch-up state must be atomic (k0 == k1) and current.
	probe, err := client.New(client.Config{Addrs: procAddrs, Topo: topo, Site: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer probe.Close()
	readPair := func() (string, string, error) {
		c, cancel := context.WithTimeout(ctx, 10*time.Second)
		defer cancel()
		vals, err := probe.Execute(c,
			command.Op{Kind: command.Get, Key: command.Key(k0)},
			command.Op{Kind: command.Get, Key: command.Key(k1)},
		)
		if err != nil {
			return "", "", err
		}
		return string(vals[0]), string(vals[1]), nil
	}
	deadline := time.Now().Add(20 * time.Second)
	var a, b string
	for {
		a, b, err = readPair()
		if err == nil && a == "v59" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarted site never served the final state: a=%q b=%q err=%v", a, b, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
	if a != b {
		t.Fatalf("torn cross-shard state after restart: k0=%q k1=%q", a, b)
	}
	// New cross-shard commands commit with the restarted site back.
	for i := 60; i < 70; i++ {
		if err := crossPut(i); err != nil {
			t.Fatalf("post-restart cross put %d: %v", i, err)
		}
	}
	if doubleApply.Load() {
		t.Fatal("a site reported a within-incarnation double apply")
	}
}
