package cluster

import (
	"bufio"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"tempo/internal/command"
	"tempo/internal/ids"
	"tempo/internal/membership"
	"tempo/internal/proto"
)

// dialPeerTimeout bounds peer-link dials (same as node-owned links).
const dialPeerTimeout = 2 * time.Second

// Group hosts one Node per locally replicated shard behind a single
// listener and a single set of peer links — the deployment unit of
// partial replication: one tempo-server process per site, serving every
// shard that site replicates.
//
// Outbound protocol traffic from every hosted node funnels through the
// group (each node's Transport): messages to co-hosted shards take an
// in-process queue, messages to remote sites share one link per remote
// address, with the same coalesced frame batching as node-owned links.
// Group frames carry (from, to) per message, so one connection
// multiplexes every shard pair between two sites — including the
// cross-shard stability signals (MStable) and commit fan-out that make
// multi-shard commands execute.
//
// Inbound, the shared listener demultiplexes by magic prefix: group
// peer frames to the addressed node, client connections to a router
// that picks the hosted node by the request's shard, and state-sync
// requests to the local replica of the requester's shard.
//
// GroupMagic prefixes inter-group peer links. Like the other magics,
// the leading 0xFF cannot begin a gob stream.
var GroupMagic = [4]byte{0xFF, 'T', 'G', 1}

// groupMsg is one queued protocol message between two processes.
type groupMsg struct {
	from, to ids.ProcessID
	msg      proto.Message
}

// Group is the shared runtime for the nodes of one site. Create with
// NewGroup, add nodes, then StartListener + node StartHosted calls +
// SetReady (the psmr package wraps this sequence).
type Group struct {
	addrs   map[ids.ProcessID]string      // every process -> its site's address
	shardOf map[ids.ProcessID]ids.ShardID // every process -> its shard

	nodes   map[ids.ProcessID]*Node
	byShard map[ids.ShardID]*Node
	list    []*Node

	ln         net.Listener
	done       chan struct{}
	closed     sync.Once
	ready      atomic.Bool
	frameLimit uint64

	//tempo:guard
	outMu  sync.Mutex
	out    map[string]chan groupMsg        // per remote address
	localQ map[ids.ProcessID]chan groupMsg // per hosted node

	ccMu      sync.Mutex
	conns     map[*clientConn]struct{}
	peerConns map[net.Conn]struct{}

	// shaper, when set, interposes WAN emulation and runtime partitions
	// on every outgoing inter-process message; see SetShaper.
	shaper *Shaper

	// view, when set (SetMembership), supplies epoch-versioned
	// addressing and fencing for the shared links, and the config
	// protocol is served on the shared listener; see membership.go.
	view *membership.View
}

// NewGroup creates a group for the given global address and shard maps
// (every process of the topology, not just the local ones).
func NewGroup(addrs map[ids.ProcessID]string, shardOf map[ids.ProcessID]ids.ShardID) *Group {
	return &Group{
		addrs:      addrs,
		shardOf:    shardOf,
		nodes:      make(map[ids.ProcessID]*Node),
		byShard:    make(map[ids.ShardID]*Node),
		list:       nil,
		done:       make(chan struct{}),
		frameLimit: defaultMaxFrameBytes,
		out:        make(map[string]chan groupMsg),
		localQ:     make(map[ids.ProcessID]chan groupMsg),
		conns:      make(map[*clientConn]struct{}),
		peerConns:  make(map[net.Conn]struct{}),
	}
}

// AddNode registers a hosted node (one per locally replicated shard)
// and installs the group as its transport. Call before StartListener.
func (g *Group) AddNode(n *Node) {
	n.SetTransport(g)
	g.nodes[n.id] = n
	g.byShard[n.shard] = n
	g.list = append(g.list, n)
	q := make(chan groupMsg, 8192)
	g.localQ[n.id] = q
	go g.localLoop(n, q)
}

// StartListener starts accepting on the shared listener. Only the
// state-sync and peer protocols are served until SetReady — clients
// fail over to live sites while this one recovers, but co-recovering
// sites can still exchange snapshots and protocol traffic flows to
// nodes as each finishes recovery.
func (g *Group) StartListener(ln net.Listener) {
	g.ln = ln
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go g.serveConn(conn)
		}
	}()
}

// Addr returns the shared listen address.
func (g *Group) Addr() string { return g.ln.Addr().String() }

// SetReady opens the group for client traffic; call once every hosted
// node finished StartHosted.
func (g *Group) SetReady() { g.ready.Store(true) }

// Close tears the shared runtime down: the listener, every tracked
// connection, and the outbound links. Hosted nodes are closed by the
// caller first, so their shutdown replies are already queued on the
// client connections when the sockets go away (best effort, as with a
// standalone node).
func (g *Group) Close() {
	g.closed.Do(func() {
		close(g.done)
		if g.ln != nil {
			g.ln.Close()
		}
		g.ccMu.Lock()
		conns := make([]*clientConn, 0, len(g.conns))
		for cc := range g.conns {
			conns = append(conns, cc)
		}
		peers := make([]net.Conn, 0, len(g.peerConns))
		for pc := range g.peerConns {
			peers = append(peers, pc)
		}
		g.ccMu.Unlock()
		for _, cc := range conns {
			cc.conn.Close()
		}
		for _, pc := range peers {
			pc.Close()
		}
	})
}

// SetShaper interposes sh on the group's outgoing messages — both the
// inter-site links and the in-process queues between co-hosted shards,
// so a site-level partition severs a process from *every* peer, not
// just remote ones. Call before StartListener. The group does not own
// sh and never closes it.
func (g *Group) SetShaper(sh *Shaper) { g.shaper = sh }

// Send implements Transport: messages pass the shaper when one is
// installed (which may delay, drop, or partition them), then forward to
// the in-process queue or the shared per-address link.
func (g *Group) Send(from, to ids.ProcessID, msg proto.Message) {
	if g.shaper != nil {
		g.shaper.Send(from, to, msg, g.forward)
		return
	}
	g.forward(from, to, msg)
}

// forward implements the unshaped send path: co-hosted destinations
// take the in-process queue, remote ones the shared per-address link.
// Never blocks; full queues drop (the protocol's liveness machinery
// retries). Safe from shaper link goroutines.
func (g *Group) forward(from, to ids.ProcessID, msg proto.Message) {
	if g.fenced(to) {
		return
	}
	if q, ok := g.localQ[to]; ok {
		select {
		case q <- groupMsg{from, to, msg}:
		default:
		}
		return
	}
	addr := g.addrOf(to)
	if addr == "" {
		return
	}
	g.outMu.Lock()
	ch, ok := g.out[addr]
	if !ok {
		ch = make(chan groupMsg, 8192)
		g.out[addr] = ch
		go g.writer(addr, ch)
	}
	g.outMu.Unlock()
	select {
	case ch <- groupMsg{from, to, msg}:
	default:
	}
}

// localLoop drains one hosted node's in-process inbound queue,
// delivering runs of same-origin messages in one batch. Delivery waits
// for the node to finish recovery (ready), mirroring how a standalone
// node rejects peer traffic until then; pre-ready messages drop.
func (g *Group) localLoop(n *Node, q chan groupMsg) {
	var batch []proto.Message
	for {
		var m groupMsg
		select {
		case <-g.done:
			return
		case m = <-q:
		}
		from := m.from
		batch = append(batch[:0], m.msg)
	coalesce:
		for len(batch) < maxWriteBatch {
			select {
			case mm := <-q:
				if mm.from != from {
					if n.ready.Load() {
						n.Deliver(from, batch)
					}
					from = mm.from
					batch = batch[:0]
				}
				batch = append(batch, mm.msg)
			default:
				break coalesce
			}
		}
		if n.ready.Load() {
			n.Deliver(from, batch)
		}
		clear(batch) // drop message refs until the next wake-up
	}
}

// writer drains one remote address's outbound queue over a (re)dialed
// connection, coalescing everything queued at wake-up into framed
// writes, exactly like a node's own peer writer but with (from, to)
// multiplexing records.
func (g *Group) writer(addr string, ch chan groupMsg) {
	var conn net.Conn
	var bw *bufio.Writer
	var head, body []byte
	batch := make([]groupMsg, 0, maxWriteBatch)
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	for {
		var m groupMsg
		select {
		case <-g.done:
			return
		case m = <-ch:
		}
		batch = append(batch[:0], m)
	coalesce:
		for len(batch) < maxWriteBatch {
			select {
			case mm := <-ch:
				batch = append(batch, mm)
			default:
				break coalesce
			}
		}
		for attempt := 0; attempt < 2; attempt++ {
			if conn == nil {
				c, err := dialGroupPeer(addr)
				if err != nil {
					break // drop; liveness machinery retries
				}
				conn, bw = c, bufio.NewWriter(c)
			}
			err := g.writeGroupBatch(bw, batch, &head, &body)
			if err == nil {
				err = bw.Flush()
			}
			if err != nil {
				conn.Close()
				conn, bw = nil, nil
				continue
			}
			break
		}
	}
}

func dialGroupPeer(addr string) (net.Conn, error) {
	c, err := net.DialTimeout("tcp", addr, dialPeerTimeout)
	if err != nil {
		return nil, err
	}
	if _, err := c.Write(GroupMagic[:]); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// writeGroupBatch encodes one coalesced batch as group frames, each a
// sequence of (uvarint from || uvarint to || message) records, split so
// no frame body exceeds the frame limit. Oversized single messages drop,
// like everywhere else on the peer path.
func (g *Group) writeGroupBatch(bw *bufio.Writer, batch []groupMsg, head, body *[]byte) error {
	writeFrame := func(b []byte) error {
		h := proto.AppendUvarint((*head)[:0], uint64(len(b)))
		*head = h
		if _, err := bw.Write(h); err != nil {
			return err
		}
		_, err := bw.Write(b)
		return err
	}
	b := (*body)[:0]
	var err error
	for _, m := range batch {
		mark := len(b)
		b = proto.AppendUvarint(b, uint64(m.from))
		b = proto.AppendUvarint(b, uint64(m.to))
		if b, err = proto.AppendMessage(b, m.msg); err != nil {
			*body = b
			return err
		}
		if uint64(len(b)) > g.frameLimit && mark > 0 {
			if err := writeFrame(b[:mark]); err != nil {
				*body = b
				return err
			}
			moved := copy(b, b[mark:])
			b = b[:moved]
		}
		if uint64(len(b)) > g.frameLimit {
			b = b[:0] // oversized single message: drop
		}
	}
	*body = b
	if len(b) > 0 {
		return writeFrame(b)
	}
	return nil
}

// serveConn demultiplexes one inbound connection by magic prefix. The
// gob protocols are not served by groups (they predate sharded
// deployments); a single-node group still answers plain peerMagic links
// for mixed deployments of one shard.
func (g *Group) serveConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return
	}
	switch magic {
	case GroupMagic:
		if !g.trackPeerConn(conn) {
			return
		}
		defer g.untrackPeerConn(conn)
		g.servePeer(br)
	case peerMagic:
		if len(g.list) == 1 {
			n := g.list[0]
			if !n.ready.Load() || !g.trackPeerConn(conn) {
				return
			}
			defer g.untrackPeerConn(conn)
			n.serveBinaryPeer(br)
		}
	case ClientMagic, ClientMagic2:
		if !g.ready.Load() {
			return // mid-recovery: sessions fail over to live sites
		}
		serveClientStream(g, conn, br, magic == ClientMagic2)
	case SyncMagic:
		g.serveSync(conn, br)
	case membership.ConfigMagic:
		g.serveMembership(conn, br)
	}
}

// servePeer streams group frames, delivering runs of same-(from, to)
// messages to the addressed node in one batch. Frames for nodes still
// recovering (or not hosted here) drop, as a standalone node drops peer
// connections until ready.
func (g *Group) servePeer(br *bufio.Reader) {
	var buf []byte
	var msgs []proto.Message
	var curFrom, curTo ids.ProcessID
	flush := func() {
		if len(msgs) == 0 {
			return
		}
		if n := g.nodes[curTo]; n != nil && n.ready.Load() && !g.fenced(curFrom) {
			n.Deliver(curFrom, msgs)
		}
		clear(msgs)
		msgs = msgs[:0]
	}
	for {
		b, err := ReadFrame(br, g.frameLimit, &buf)
		if err != nil {
			return
		}
		for len(b) > 0 {
			var from, to uint64
			if from, b, err = proto.ReadUvarint(b); err != nil {
				return
			}
			if to, b, err = proto.ReadUvarint(b); err != nil {
				return
			}
			msg, rest, err := proto.DecodeMessage(b)
			if err != nil {
				return
			}
			b = rest
			if ids.ProcessID(from) != curFrom || ids.ProcessID(to) != curTo {
				flush()
				curFrom, curTo = ids.ProcessID(from), ids.ProcessID(to)
			}
			msgs = append(msgs, msg)
		}
		flush()
	}
}

// serveSync routes a state-catch-up request to the local replica of the
// requester's shard (the request names the requesting process; old
// single-shard requests without one are only answerable by single-node
// groups).
func (g *Group) serveSync(conn net.Conn, br *bufio.Reader) {
	req, ok := readSyncRequest(conn, br, g.frameLimit)
	if !ok {
		return
	}
	var n *Node
	if req.From != 0 {
		// The requester must be a known process: an unknown pid would
		// map to the zero shard and be handed the wrong state machine.
		if shard, ok := g.shardOfPid(req.From); ok {
			n = g.byShard[shard]
		}
	} else if len(g.list) == 1 {
		n = g.list[0]
	}
	if n != nil {
		n.answerSync(conn, req)
	}
}

func (g *Group) trackPeerConn(conn net.Conn) bool {
	g.ccMu.Lock()
	defer g.ccMu.Unlock()
	select {
	case <-g.done:
		return false
	default:
	}
	g.peerConns[conn] = struct{}{}
	return true
}

func (g *Group) untrackPeerConn(conn net.Conn) {
	g.ccMu.Lock()
	delete(g.peerConns, conn)
	g.ccMu.Unlock()
}

// Group as a clientHost: requests route to the hosted node of their
// shard.

// routeSubmit implements clientHost. Groups are younger than the
// version-2 protocol, so cross-shard ops are rejected on both protocol
// versions — a merged result needs submit-at/watch.
func (g *Group) routeSubmit(ops []command.Op, legacy bool) (*Node, command.WireError) {
	sharder := g.list[0].sharder
	if sharder == nil {
		return g.list[0], command.WireError{}
	}
	s, ok := sharder.OpsShard(ops)
	if !ok {
		return nil, command.WireError{Code: command.ErrCodeCrossShard,
			Msg: "operations span shards; use cross-shard submission"}
	}
	if n := g.byShard[s]; n != nil {
		return n, command.WireError{}
	}
	return nil, wrongShardErr(s)
}

// nodeForShard implements clientHost.
func (g *Group) nodeForShard(s ids.ShardID) *Node { return g.byShard[s] }

// mintNode implements clientHost: id blocks come from the first hosted
// node's Dot sequence.
func (g *Group) mintNode() *Node { return g.list[0] }

// localNodes implements clientHost.
func (g *Group) localNodes() []*Node { return g.list }

// trackClientConn implements clientHost.
func (g *Group) trackClientConn(cc *clientConn) bool {
	g.ccMu.Lock()
	defer g.ccMu.Unlock()
	select {
	case <-g.done:
		return false
	default:
	}
	g.conns[cc] = struct{}{}
	return true
}

// untrackClientConn implements clientHost.
func (g *Group) untrackClientConn(cc *clientConn) {
	g.ccMu.Lock()
	delete(g.conns, cc)
	g.ccMu.Unlock()
}

// maxFrame implements clientHost.
func (g *Group) maxFrame() uint64 { return g.frameLimit }
