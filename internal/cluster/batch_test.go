package cluster

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"tempo/internal/command"
	"tempo/internal/ids"
	"tempo/internal/proto"
	"tempo/internal/tempo"
	"tempo/internal/topology"
)

// startClusterWith boots a cluster like startCluster but lets the test
// configure each node (batch tuning, executor observers) before it
// starts.
func startClusterWith(t *testing.T, r, f int, configure func(i int, n *Node)) ([]*Node, map[ids.ProcessID]string, *topology.Topology) {
	t.Helper()
	names := make([]string, r)
	rtt := make([][]time.Duration, r)
	for i := range names {
		names[i] = fmt.Sprintf("s%d", i)
		rtt[i] = make([]time.Duration, r)
	}
	topo, err := topology.New(topology.Config{SiteNames: names, RTT: rtt, NumShards: 1, F: f})
	if err != nil {
		t.Fatal(err)
	}
	addrs := make(map[ids.ProcessID]string)
	lns := make(map[ids.ProcessID]net.Listener)
	for _, pi := range topo.Processes() {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[pi.ID] = ln
		addrs[pi.ID] = ln.Addr().String()
	}
	var nodes []*Node
	for i, pi := range topo.Processes() {
		rep := tempo.New(pi.ID, topo, tempo.Config{
			PromiseInterval: 2 * time.Millisecond,
			RecoveryTimeout: time.Hour,
		})
		n := NewNode(pi.ID, rep, addrs)
		if configure != nil {
			configure(i, n)
		}
		n.StartListener(lns[pi.ID])
		nodes = append(nodes, n)
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Close()
		}
	})
	return nodes, addrs, topo
}

// chanWaiter builds a legacy-style waiter completing over a channel, the
// in-process window into the batch submission path.
func chanWaiter(deadline time.Time) *waiter {
	return &waiter{deadline: deadline, ch: make(chan *ClientReply, 1)}
}

func awaitReply(t *testing.T, w *waiter, what string) *ClientReply {
	t.Helper()
	select {
	case rep := <-w.ch:
		return rep
	case <-time.After(10 * time.Second):
		t.Fatalf("%s: no reply", what)
		return nil
	}
}

// TestBatchIndependentResults pins per-request result routing through a
// shared batch: requests coalesced into one multi-op command must each
// complete with their own values, and a request whose deadline expires
// while queued fails with a timeout without dragging its batchmates
// down.
func TestBatchIndependentResults(t *testing.T) {
	var obsMu sync.Mutex
	var observed []*command.Command
	nodes, addrs, topo := startClusterWith(t, 3, 1, func(i int, n *Node) {
		if i == 0 {
			// A wide window so the three requests below land in one
			// bucket, flushed together long after A's deadline passed.
			n.SetBatch(1<<16, 60*time.Millisecond)
			n.execObserver = func(st proto.Stable) {
				obsMu.Lock()
				observed = append(observed, st.Cmd)
				obsMu.Unlock()
			}
		}
	})

	// Seed values through another node so the gets below have something
	// to read; their completion implies the writes are stable.
	seed, err := Dial(addrs[topo.ProcessAt(1, 0)])
	if err != nil {
		t.Fatal(err)
	}
	defer seed.Close()
	for i := 1; i <= 3; i++ {
		if err := seed.Put(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	n0 := nodes[0]
	// Park a never-completing pending command so the idle-node immediate
	// flush (group commit) stays out of the way and the window applies.
	blocker := chanWaiter(time.Time{})
	n0.waitMu.Lock()
	n0.waiters[ids.Dot{Source: 99, Seq: 1}] = &pendingCmd{members: []*waiter{blocker}}
	n0.syncPendingLocked()
	n0.waitMu.Unlock()

	wA := chanWaiter(time.Now().Add(time.Millisecond)) // expires before the flush
	wB := chanWaiter(time.Time{})
	wC := chanWaiter(time.Time{})
	n0.submit(wA, []command.Op{{Kind: command.Put, Key: "a", Value: []byte("never")}})
	n0.submit(wB, []command.Op{{Kind: command.Get, Key: "k1"}})
	n0.submit(wC, []command.Op{{Kind: command.Get, Key: "k2"}, {Kind: command.Get, Key: "k3"}})

	repA := awaitReply(t, wA, "request A")
	if repA.OK || !strings.Contains(repA.Error, "deadline") {
		t.Fatalf("expired batch member reply = %+v, want deadline error", repA)
	}
	repB := awaitReply(t, wB, "request B")
	if !repB.OK || len(repB.Values) != 1 || !bytes.Equal(repB.Values[0], []byte("v1")) {
		t.Fatalf("request B reply = %+v, want [v1]", repB)
	}
	repC := awaitReply(t, wC, "request C")
	if !repC.OK || len(repC.Values) != 2 ||
		!bytes.Equal(repC.Values[0], []byte("v2")) || !bytes.Equal(repC.Values[1], []byte("v3")) {
		t.Fatalf("request C reply = %+v, want [v2 v3]", repC)
	}

	// B and C rode one 3-op command; A's expired put was never submitted.
	obsMu.Lock()
	var batched *command.Command
	for _, c := range observed {
		if len(c.Ops) == 3 {
			batched = c
		}
		for _, op := range c.Ops {
			if op.Key == "a" {
				t.Errorf("expired request's op was submitted in %v", c)
			}
		}
	}
	obsMu.Unlock()
	if batched == nil {
		t.Fatal("B and C were not coalesced into one 3-op command")
	}
	if v, ok := n0.defRep.(*tempo.Process).Store().Get("a"); ok {
		t.Fatalf("expired put applied: a=%q", v)
	}
}

// TestExecutorAppliesInTimestampOrder drives concurrent sessions at
// every replica and asserts the executor pipeline applies stable
// commands in (timestamp, id) order — identically at every node.
func TestExecutorAppliesInTimestampOrder(t *testing.T) {
	const perClient = 25
	type obs struct {
		mu  sync.Mutex
		seq []tsDotKey
	}
	observers := make([]*obs, 3)
	nodes, addrs, topo := startClusterWith(t, 3, 1, func(i int, n *Node) {
		o := &obs{}
		observers[i] = o
		n.execObserver = func(st proto.Stable) {
			o.mu.Lock()
			o.seq = append(o.seq, tsDotKey{ts: st.TS, id: st.Cmd.ID})
			o.mu.Unlock()
		}
	})
	_ = nodes

	var wg sync.WaitGroup
	errs := make(chan error, 3)
	for site := 0; site < 3; site++ {
		wg.Add(1)
		go func(addr string, who int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < perClient; i++ {
				if err := c.Put("hot", []byte{byte(who), byte(i)}); err != nil {
					errs <- err
					return
				}
			}
		}(addrs[topo.ProcessAt(ids.SiteID(site), 0)], site)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Every node eventually executes every command: each client is
	// sequential, so its puts never coalesce and the workload is exactly
	// 3×perClient commands; the serving nodes are done once the clients
	// return and the others follow within gossip delay.
	const want = 3 * perClient
	deadline := time.Now().Add(10 * time.Second)
	for {
		lens := make([]int, 3)
		for i, o := range observers {
			o.mu.Lock()
			lens[i] = len(o.seq)
			o.mu.Unlock()
		}
		if lens[0] == want && lens[1] == want && lens[2] == want {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("executors did not converge: %v, want %d each", lens, want)
		}
		time.Sleep(5 * time.Millisecond)
	}

	var ref []tsDotKey
	for i, o := range observers {
		o.mu.Lock()
		seq := append([]tsDotKey(nil), o.seq...)
		o.mu.Unlock()
		if len(seq) != want {
			t.Fatalf("node %d executed %d commands, want %d", i, len(seq), want)
		}
		for j := 1; j < len(seq); j++ {
			if !seq[j-1].less(seq[j]) {
				t.Fatalf("node %d applied out of timestamp order at %d: %+v then %+v",
					i, j, seq[j-1], seq[j])
			}
		}
		if i == 0 {
			ref = seq
			continue
		}
		for j := range seq {
			if seq[j] != ref[j] {
				t.Fatalf("node %d execution order diverges from node 0 at %d: %+v vs %+v",
					i, j, seq[j], ref[j])
			}
		}
	}
}

// tsDotKey mirrors the protocol's (timestamp, id) execution order for
// assertions.
type tsDotKey struct {
	ts uint64
	id ids.Dot
}

func (a tsDotKey) less(b tsDotKey) bool {
	if a.ts != b.ts {
		return a.ts < b.ts
	}
	return a.id.Less(b.id)
}

// TestBatchDisabled pins the SetBatch(1, 0) escape hatch: requests are
// submitted directly, one command per request.
func TestBatchDisabled(t *testing.T) {
	nodes, _, _ := startClusterWith(t, 3, 1, func(i int, n *Node) {
		n.SetBatch(1, 0)
	})
	n0 := nodes[0]
	if n0.batcher != nil {
		t.Fatal("batcher built despite SetBatch(1, 0)")
	}
	w := chanWaiter(time.Time{})
	n0.submit(w, []command.Op{{Kind: command.Put, Key: "x", Value: []byte("v")}})
	rep := awaitReply(t, w, "direct request")
	if !rep.OK {
		t.Fatalf("direct request failed: %+v", rep)
	}
}
