package cluster

import (
	"bufio"
	"encoding/binary"
	"io"
	"time"

	"tempo/internal/command"
	"tempo/internal/ids"
	"tempo/internal/proto"
)

// Client wire protocol
//
// The binary client protocol mirrors the peer protocol: after a 4-byte
// magic prefix, each direction is a stream of length-prefixed frames
// (uvarint body length || body). Unlike the one-request-in-flight gob
// protocol it replaces, every request carries a client-chosen request
// id, so a session keeps any number of commands in flight on one
// connection and the server completes them in execution order.
//
// Request body:  uvarint(reqID) || uvarint(deadline µs, 0 = none) || ops
// Reply body:    uvarint(reqID) || error(code, msg) || values (code 0 only)
//
// Ops, values and errors use the command package encoders, so nil values
// (key not found) survive the wire distinct from empty ones. The legacy
// gob protocol (hello with From == 0, one blocking request at a time)
// remains auto-detected for old clients.

// ClientMagic prefixes binary-protocol client connections. Like
// peerMagic, the leading 0xFF cannot begin a gob stream, and the third
// byte distinguishes clients from peers.
var ClientMagic = [4]byte{0xFF, 'T', 'C', 1}

// ClientMagic2 prefixes version-2 client connections: every request
// frame starts with a kind byte, which adds the cross-shard requests
// (mint, submit-at, watch) next to plain submission. Replies are
// unchanged. Servers keep serving version-1 connections, so old clients
// interoperate; the client package always dials version 2, so new
// clients need servers at least this version (a pre-v2 server drops the
// unknown magic and the session reports every replica unreachable).
var ClientMagic2 = [4]byte{0xFF, 'T', 'C', 2}

// Version-2 request kinds.
const (
	// ReqSubmit is a plain submission: the serving replica mints the
	// command id, executes the ops on their (single) shard and replies
	// with the per-op values. Ops spanning shards are rejected with
	// ErrCodeCrossShard — a merged result needs ReqSubmitAt + ReqWatch.
	ReqSubmit byte = 1
	// ReqMint asks the replica to mint a contiguous block of command
	// identifiers for the session's cross-shard submissions. The reply
	// carries the first Dot of the block (see AppendMintReply); minted
	// seqs are covered by the replica's durable id reservation, so a
	// crash-restart never re-mints them.
	ReqMint byte = 2
	// ReqSubmitAt submits a (typically cross-shard) command under a
	// client-held id minted via ReqMint. The serving replica — the
	// "gateway", a replica of the request's target shard — drives the
	// whole multi-shard protocol and replies with its own shard's result
	// segment; the client collects the other shards' segments via
	// ReqWatch registrations placed concurrently at one replica of each
	// other accessed shard.
	ReqSubmitAt byte = 3
	// ReqWatch registers interest in a command id at a replica of the
	// request's target shard: the reply carries that shard's result
	// segment once the command executes locally (or immediately, from
	// the parked-results buffer, if it already has).
	ReqWatch byte = 4
)

// MaxClientFrameBytes bounds a client protocol frame body in both
// directions; receivers drop connections announcing larger frames.
const MaxClientFrameBytes = 64 << 20

// AppendClientRequest appends a client request frame (length prefix
// included) to buf. deadline is the time budget the server may hold the
// command before failing it with ErrCodeTimeout; 0 means no deadline.
// scratch is a reusable body buffer (the length prefix is variable
// width, so the body is staged there before the copy into buf); callers
// on the hot path keep one per connection so steady state allocates
// nothing.
//
//tempo:noalloc
func AppendClientRequest(buf []byte, scratch *[]byte, reqID uint64, deadline time.Duration, ops []command.Op) []byte {
	body := binary.AppendUvarint((*scratch)[:0], reqID)
	body = binary.AppendUvarint(body, uint64(deadline.Microseconds()))
	body = command.AppendOps(body, ops)
	*scratch = body
	buf = binary.AppendUvarint(buf, uint64(len(body)))
	return append(buf, body...)
}

// DecodeClientRequest decodes a request frame body.
func DecodeClientRequest(b []byte) (reqID uint64, deadline time.Duration, ops []command.Op, err error) {
	if reqID, b, err = proto.ReadUvarint(b); err != nil {
		return 0, 0, nil, err
	}
	var us uint64
	if us, b, err = proto.ReadUvarint(b); err != nil {
		return 0, 0, nil, err
	}
	deadline = time.Duration(us) * time.Microsecond
	if ops, _, err = command.DecodeOps(b); err != nil {
		return 0, 0, nil, err
	}
	return reqID, deadline, ops, nil
}

// AppendClientReply appends a reply frame (length prefix included) to
// buf. A zero werr.Code reports success and carries values; any other
// code carries only the error. scratch is reused as in
// AppendClientRequest.
//
//tempo:noalloc
func AppendClientReply(buf []byte, scratch *[]byte, reqID uint64, werr command.WireError, values [][]byte) []byte {
	body := binary.AppendUvarint((*scratch)[:0], reqID)
	body = command.AppendError(body, werr)
	if werr.Code == command.ErrCodeNone {
		body = command.AppendValues(body, values)
	}
	*scratch = body
	buf = binary.AppendUvarint(buf, uint64(len(body)))
	return append(buf, body...)
}

// DecodeClientReply decodes a reply frame body.
func DecodeClientReply(b []byte) (reqID uint64, werr command.WireError, values [][]byte, err error) {
	if reqID, b, err = proto.ReadUvarint(b); err != nil {
		return 0, command.WireError{}, nil, err
	}
	if werr, b, err = command.DecodeError(b); err != nil {
		return 0, command.WireError{}, nil, err
	}
	if werr.Code == command.ErrCodeNone {
		if values, _, err = command.DecodeValues(b); err != nil {
			return 0, command.WireError{}, nil, err
		}
	}
	return reqID, werr, values, nil
}

// ClientRequest2 is one decoded version-2 request frame. Which fields
// are meaningful depends on Kind: every request has ReqID; Deadline
// rides on Submit/SubmitAt/Watch; Shard and ID on SubmitAt/Watch; Ops
// on Submit/SubmitAt; Count on Mint.
//
//tempo:wire encode=- decode=DecodeClientRequest2
type ClientRequest2 struct {
	Kind     byte
	ReqID    uint64
	Deadline time.Duration
	Shard    ids.ShardID
	ID       ids.Dot
	Count    uint64
	Ops      []command.Op
}

// appendReqHeader stages the fields shared by every v2 request kind.
//
//tempo:noalloc
func appendReqHeader(body []byte, kind byte, reqID uint64, deadline time.Duration) []byte {
	body = append(body, kind)
	body = binary.AppendUvarint(body, reqID)
	return binary.AppendUvarint(body, uint64(deadline.Microseconds()))
}

// finishFrame appends the staged body to buf as one length-prefixed
// frame, updating the scratch buffer.
//
//tempo:noalloc
func finishFrame(buf []byte, scratch *[]byte, body []byte) []byte {
	*scratch = body
	buf = binary.AppendUvarint(buf, uint64(len(body)))
	return append(buf, body...)
}

// AppendSubmitRequest appends a v2 plain-submission frame.
//
//tempo:noalloc
func AppendSubmitRequest(buf []byte, scratch *[]byte, reqID uint64, deadline time.Duration, ops []command.Op) []byte {
	body := appendReqHeader((*scratch)[:0], ReqSubmit, reqID, deadline)
	body = command.AppendOps(body, ops)
	return finishFrame(buf, scratch, body)
}

// AppendMintRequest appends a v2 id-block mint frame.
//
//tempo:noalloc
func AppendMintRequest(buf []byte, scratch *[]byte, reqID uint64, count int) []byte {
	body := appendReqHeader((*scratch)[:0], ReqMint, reqID, 0)
	body = binary.AppendUvarint(body, uint64(count))
	return finishFrame(buf, scratch, body)
}

// AppendSubmitAtRequest appends a v2 cross-shard submission frame:
// the full op list submitted under a client-held id, served by a
// replica of the target shard.
//
//tempo:noalloc
func AppendSubmitAtRequest(buf []byte, scratch *[]byte, reqID uint64, deadline time.Duration, shard ids.ShardID, id ids.Dot, ops []command.Op) []byte {
	body := appendReqHeader((*scratch)[:0], ReqSubmitAt, reqID, deadline)
	body = binary.AppendUvarint(body, uint64(shard))
	body = appendDot(body, id)
	body = command.AppendOps(body, ops)
	return finishFrame(buf, scratch, body)
}

// AppendWatchRequest appends a v2 watch frame: the reply carries the
// target shard's result segment of the watched command.
//
//tempo:noalloc
func AppendWatchRequest(buf []byte, scratch *[]byte, reqID uint64, deadline time.Duration, shard ids.ShardID, id ids.Dot) []byte {
	body := appendReqHeader((*scratch)[:0], ReqWatch, reqID, deadline)
	body = binary.AppendUvarint(body, uint64(shard))
	body = appendDot(body, id)
	return finishFrame(buf, scratch, body)
}

//
//tempo:noalloc
func appendDot(buf []byte, id ids.Dot) []byte {
	buf = binary.AppendUvarint(buf, uint64(id.Source))
	return binary.AppendUvarint(buf, id.Seq)
}

func decodeDot(b []byte) (ids.Dot, []byte, error) {
	src, b, err := proto.ReadUvarint(b)
	if err != nil {
		return ids.Dot{}, b, err
	}
	seq, b, err := proto.ReadUvarint(b)
	if err != nil {
		return ids.Dot{}, b, err
	}
	return ids.Dot{Source: ids.ProcessID(src), Seq: seq}, b, nil
}

// DecodeClientRequest2 decodes a v2 request frame body.
func DecodeClientRequest2(b []byte) (req ClientRequest2, err error) {
	if len(b) == 0 {
		return req, proto.ErrCorrupt
	}
	req.Kind = b[0]
	b = b[1:]
	if req.ReqID, b, err = proto.ReadUvarint(b); err != nil {
		return req, err
	}
	var us uint64
	if us, b, err = proto.ReadUvarint(b); err != nil {
		return req, err
	}
	req.Deadline = time.Duration(us) * time.Microsecond
	switch req.Kind {
	case ReqSubmit:
		if req.Ops, _, err = command.DecodeOps(b); err != nil {
			return req, err
		}
	case ReqMint:
		if req.Count, _, err = proto.ReadUvarint(b); err != nil {
			return req, err
		}
	case ReqSubmitAt, ReqWatch:
		var s uint64
		if s, b, err = proto.ReadUvarint(b); err != nil {
			return req, err
		}
		req.Shard = ids.ShardID(s)
		if req.ID, b, err = decodeDot(b); err != nil {
			return req, err
		}
		if req.Kind == ReqSubmitAt {
			if req.Ops, _, err = command.DecodeOps(b); err != nil {
				return req, err
			}
		}
	default:
		return req, proto.ErrCorrupt
	}
	return req, nil
}

// MaxMintBlock bounds how many ids one mint request may reserve.
const MaxMintBlock = 1 << 16

// AppendMintReply encodes a mint reply's payload as a single result
// value: the first Dot of the reserved block (the block is
// [Seq, Seq+count) at that source).
func AppendMintReply(id ids.Dot) [][]byte {
	return [][]byte{appendDot(nil, id)}
}

// DecodeMintReply decodes the payload built by AppendMintReply.
func DecodeMintReply(values [][]byte) (ids.Dot, error) {
	if len(values) != 1 {
		return ids.Dot{}, proto.ErrCorrupt
	}
	id, _, err := decodeDot(values[0])
	return id, err
}

// ReadFrame reads one length-prefixed frame body into *buf (grown as
// needed and reused across calls) and returns the body slice, which is
// only valid until the next call.
func ReadFrame(br *bufio.Reader, limit uint64, buf *[]byte) ([]byte, error) {
	size, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if size > limit {
		return nil, proto.ErrCorrupt
	}
	if uint64(cap(*buf)) < size {
		*buf = make([]byte, size)
	}
	b := (*buf)[:size]
	if _, err := io.ReadFull(br, b); err != nil {
		return nil, err
	}
	return b, nil
}
