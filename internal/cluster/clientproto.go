package cluster

import (
	"bufio"
	"encoding/binary"
	"io"
	"time"

	"tempo/internal/command"
	"tempo/internal/proto"
)

// Client wire protocol
//
// The binary client protocol mirrors the peer protocol: after a 4-byte
// magic prefix, each direction is a stream of length-prefixed frames
// (uvarint body length || body). Unlike the one-request-in-flight gob
// protocol it replaces, every request carries a client-chosen request
// id, so a session keeps any number of commands in flight on one
// connection and the server completes them in execution order.
//
// Request body:  uvarint(reqID) || uvarint(deadline µs, 0 = none) || ops
// Reply body:    uvarint(reqID) || error(code, msg) || values (code 0 only)
//
// Ops, values and errors use the command package encoders, so nil values
// (key not found) survive the wire distinct from empty ones. The legacy
// gob protocol (hello with From == 0, one blocking request at a time)
// remains auto-detected for old clients.

// ClientMagic prefixes binary-protocol client connections. Like
// peerMagic, the leading 0xFF cannot begin a gob stream, and the third
// byte distinguishes clients from peers.
var ClientMagic = [4]byte{0xFF, 'T', 'C', 1}

// MaxClientFrameBytes bounds a client protocol frame body in both
// directions; receivers drop connections announcing larger frames.
const MaxClientFrameBytes = 64 << 20

// AppendClientRequest appends a client request frame (length prefix
// included) to buf. deadline is the time budget the server may hold the
// command before failing it with ErrCodeTimeout; 0 means no deadline.
// scratch is a reusable body buffer (the length prefix is variable
// width, so the body is staged there before the copy into buf); callers
// on the hot path keep one per connection so steady state allocates
// nothing.
func AppendClientRequest(buf []byte, scratch *[]byte, reqID uint64, deadline time.Duration, ops []command.Op) []byte {
	body := binary.AppendUvarint((*scratch)[:0], reqID)
	body = binary.AppendUvarint(body, uint64(deadline.Microseconds()))
	body = command.AppendOps(body, ops)
	*scratch = body
	buf = binary.AppendUvarint(buf, uint64(len(body)))
	return append(buf, body...)
}

// DecodeClientRequest decodes a request frame body.
func DecodeClientRequest(b []byte) (reqID uint64, deadline time.Duration, ops []command.Op, err error) {
	if reqID, b, err = proto.ReadUvarint(b); err != nil {
		return 0, 0, nil, err
	}
	var us uint64
	if us, b, err = proto.ReadUvarint(b); err != nil {
		return 0, 0, nil, err
	}
	deadline = time.Duration(us) * time.Microsecond
	if ops, _, err = command.DecodeOps(b); err != nil {
		return 0, 0, nil, err
	}
	return reqID, deadline, ops, nil
}

// AppendClientReply appends a reply frame (length prefix included) to
// buf. A zero werr.Code reports success and carries values; any other
// code carries only the error. scratch is reused as in
// AppendClientRequest.
func AppendClientReply(buf []byte, scratch *[]byte, reqID uint64, werr command.WireError, values [][]byte) []byte {
	body := binary.AppendUvarint((*scratch)[:0], reqID)
	body = command.AppendError(body, werr)
	if werr.Code == command.ErrCodeNone {
		body = command.AppendValues(body, values)
	}
	*scratch = body
	buf = binary.AppendUvarint(buf, uint64(len(body)))
	return append(buf, body...)
}

// DecodeClientReply decodes a reply frame body.
func DecodeClientReply(b []byte) (reqID uint64, werr command.WireError, values [][]byte, err error) {
	if reqID, b, err = proto.ReadUvarint(b); err != nil {
		return 0, command.WireError{}, nil, err
	}
	if werr, b, err = command.DecodeError(b); err != nil {
		return 0, command.WireError{}, nil, err
	}
	if werr.Code == command.ErrCodeNone {
		if values, _, err = command.DecodeValues(b); err != nil {
			return 0, command.WireError{}, nil, err
		}
	}
	return reqID, werr, values, nil
}

// ReadFrame reads one length-prefixed frame body into *buf (grown as
// needed and reused across calls) and returns the body slice, which is
// only valid until the next call.
func ReadFrame(br *bufio.Reader, limit uint64, buf *[]byte) ([]byte, error) {
	size, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if size > limit {
		return nil, proto.ErrCorrupt
	}
	if uint64(cap(*buf)) < size {
		*buf = make([]byte, size)
	}
	b := (*buf)[:size]
	if _, err := io.ReadFull(br, b); err != nil {
		return nil, err
	}
	return b, nil
}
