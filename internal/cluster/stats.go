package cluster

import "tempo/internal/metrics"

// nodeStats are the serving counters a node maintains on its hot paths
// (metrics.Counter: lock-free, incremented where the work happens,
// snapshotted by Stats for the -metrics-addr endpoint).
type nodeStats struct {
	submittedCmds  metrics.Counter // commands handed to the replica
	submittedOps   metrics.Counter // client ops inside those commands
	completedReqs  metrics.Counter // client requests answered with results
	appliedCmds    metrics.Counter // commands applied to the state machine
	crossSubmitted metrics.Counter // cross-shard commands submitted here
	watches        metrics.Counter // watch registrations served
	batchFlushes   metrics.Counter // submit batches flushed
	batchedOps     metrics.Counter // client ops that rode those batches
}

// Stats is a point-in-time snapshot of a node's serving counters,
// exposed through the tempo-server metrics endpoint.
type Stats struct {
	// Shard is the shard this node replicates.
	Shard uint32 `json:"shard"`
	// SubmittedCmds counts commands handed to the replica.
	SubmittedCmds uint64 `json:"submitted_cmds"`
	// SubmittedOps counts client operations inside those commands.
	SubmittedOps uint64 `json:"submitted_ops"`
	// CompletedReqs counts client requests answered with results.
	CompletedReqs uint64 `json:"completed_reqs"`
	// AppliedCmds counts commands applied to the state machine.
	AppliedCmds uint64 `json:"applied_cmds"`
	// CrossSubmitted counts cross-shard commands submitted at this node.
	CrossSubmitted uint64 `json:"cross_submitted"`
	// Watches counts cross-shard watch registrations served.
	Watches uint64 `json:"watches"`
	// BatchFlushes counts submit batches flushed.
	BatchFlushes uint64 `json:"batch_flushes"`
	// BatchedOps counts client operations that rode those batches; the
	// mean batch size is BatchedOps/BatchFlushes.
	BatchedOps uint64 `json:"batched_ops"`
	// ExecQueue is the executor delivery queue depth at snapshot time.
	ExecQueue int `json:"exec_queue"`
	// Pending is the number of commands awaiting execution with live
	// client waiters.
	Pending int `json:"pending"`
}

// Stats snapshots the node's serving counters.
func (n *Node) Stats() Stats {
	n.execMu.Lock()
	execQ := len(n.execQ)
	n.execMu.Unlock()
	return Stats{
		Shard:          uint32(n.shard),
		SubmittedCmds:  n.stat.submittedCmds.Load(),
		SubmittedOps:   n.stat.submittedOps.Load(),
		CompletedReqs:  n.stat.completedReqs.Load(),
		AppliedCmds:    n.stat.appliedCmds.Load(),
		CrossSubmitted: n.stat.crossSubmitted.Load(),
		Watches:        n.stat.watches.Load(),
		BatchFlushes:   n.stat.batchFlushes.Load(),
		BatchedOps:     n.stat.batchedOps.Load(),
		ExecQueue:      execQ,
		Pending:        n.pendingCmds(),
	}
}
