package cluster

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"tempo/internal/ids"
	"tempo/internal/tempo"
	"tempo/internal/topology"
)

// startCluster boots r Tempo nodes on loopback and returns them with
// their client addresses.
func startCluster(t *testing.T, r, f int) ([]*Node, map[ids.ProcessID]string, *topology.Topology) {
	t.Helper()
	names := make([]string, r)
	rtt := make([][]time.Duration, r)
	for i := range names {
		names[i] = fmt.Sprintf("s%d", i)
		rtt[i] = make([]time.Duration, r)
	}
	topo, err := topology.New(topology.Config{SiteNames: names, RTT: rtt, NumShards: 1, F: f})
	if err != nil {
		t.Fatal(err)
	}
	// Bind every listener first so the address map is complete and
	// immutable before any node starts sending.
	addrs := make(map[ids.ProcessID]string)
	lns := make(map[ids.ProcessID]net.Listener)
	for _, pi := range topo.Processes() {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[pi.ID] = ln
		addrs[pi.ID] = ln.Addr().String()
	}
	var nodes []*Node
	for _, pi := range topo.Processes() {
		rep := tempo.New(pi.ID, topo, tempo.Config{
			PromiseInterval: 2 * time.Millisecond,
			RecoveryTimeout: time.Hour,
		})
		n := NewNode(pi.ID, rep, addrs)
		n.StartListener(lns[pi.ID])
		nodes = append(nodes, n)
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Close()
		}
	})
	return nodes, addrs, topo
}

func TestLoopbackPutGet(t *testing.T) {
	nodes, addrs, topo := startCluster(t, 3, 1)
	_ = nodes
	c, err := Dial(addrs[topo.ProcessAt(0, 0)])
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put("k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, err := c.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v, []byte("v1")) {
		t.Fatalf("got %q", v)
	}
}

func TestLoopbackCrossNodeVisibility(t *testing.T) {
	_, addrs, topo := startCluster(t, 3, 1)
	c0, err := Dial(addrs[topo.ProcessAt(0, 0)])
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	if err := c0.Put("shared", []byte("from-node-0")); err != nil {
		t.Fatal(err)
	}
	c2, err := Dial(addrs[topo.ProcessAt(2, 0)])
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	// Linearizability: the read at another node sees the earlier write.
	v, err := c2.Get("shared")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v, []byte("from-node-0")) {
		t.Fatalf("read at node 2 = %q", v)
	}
}

func TestLoopbackConcurrentClients(t *testing.T) {
	_, addrs, topo := startCluster(t, 3, 1)
	var wg sync.WaitGroup
	errs := make(chan error, 30)
	for site := 0; site < 3; site++ {
		addr := addrs[topo.ProcessAt(ids.SiteID(site), 0)]
		for k := 0; k < 2; k++ {
			wg.Add(1)
			go func(addr string, who int) {
				defer wg.Done()
				c, err := Dial(addr)
				if err != nil {
					errs <- err
					return
				}
				defer c.Close()
				for i := 0; i < 5; i++ {
					if err := c.Put("contended", []byte{byte(who), byte(i)}); err != nil {
						errs <- err
						return
					}
				}
			}(addr, site*2+k)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// All replicas converge to the same final value.
	var vals [][]byte
	for site := 0; site < 3; site++ {
		c, err := Dial(addrs[topo.ProcessAt(ids.SiteID(site), 0)])
		if err != nil {
			t.Fatal(err)
		}
		v, err := c.Get("contended")
		c.Close()
		if err != nil {
			t.Fatal(err)
		}
		vals = append(vals, v)
	}
	if !bytes.Equal(vals[0], vals[1]) || !bytes.Equal(vals[1], vals[2]) {
		t.Fatalf("replicas diverged: %v", vals)
	}
}

func TestLoopbackFiveNodesF2(t *testing.T) {
	_, addrs, topo := startCluster(t, 5, 2)
	c, err := Dial(addrs[topo.ProcessAt(0, 0)])
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 10; i++ {
		if err := c.Put(fmt.Sprintf("k%d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	v, err := c.Get("k7")
	if err != nil || len(v) != 1 || v[0] != 7 {
		t.Fatalf("k7 = %v, %v", v, err)
	}
}

func TestClientErrors(t *testing.T) {
	_, addrs, topo := startCluster(t, 3, 1)
	c, err := Dial(addrs[topo.ProcessAt(0, 0)])
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Execute(); err == nil {
		t.Fatal("empty command should fail")
	}
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("dialing a dead address should fail")
	}
}
