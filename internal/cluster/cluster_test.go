package cluster

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"tempo/internal/command"
	"tempo/internal/ids"
	"tempo/internal/proto"
	"tempo/internal/tempo"
	"tempo/internal/topology"
)

// startCluster boots r Tempo nodes on loopback and returns them with
// their client addresses.
func startCluster(t *testing.T, r, f int) ([]*Node, map[ids.ProcessID]string, *topology.Topology) {
	return startClusterCodec(t, r, f, func(int) Codec { return CodecBinary })
}

// startClusterCodec boots a cluster whose node i sends with codecOf(i).
func startClusterCodec(t *testing.T, r, f int, codecOf func(i int) Codec) ([]*Node, map[ids.ProcessID]string, *topology.Topology) {
	t.Helper()
	names := make([]string, r)
	rtt := make([][]time.Duration, r)
	for i := range names {
		names[i] = fmt.Sprintf("s%d", i)
		rtt[i] = make([]time.Duration, r)
	}
	topo, err := topology.New(topology.Config{SiteNames: names, RTT: rtt, NumShards: 1, F: f})
	if err != nil {
		t.Fatal(err)
	}
	// Bind every listener first so the address map is complete and
	// immutable before any node starts sending.
	addrs := make(map[ids.ProcessID]string)
	lns := make(map[ids.ProcessID]net.Listener)
	for _, pi := range topo.Processes() {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[pi.ID] = ln
		addrs[pi.ID] = ln.Addr().String()
	}
	var nodes []*Node
	for i, pi := range topo.Processes() {
		rep := tempo.New(pi.ID, topo, tempo.Config{
			PromiseInterval: 2 * time.Millisecond,
			RecoveryTimeout: time.Hour,
		})
		n := NewNode(pi.ID, rep, addrs)
		n.SetCodec(codecOf(i))
		n.StartListener(lns[pi.ID])
		nodes = append(nodes, n)
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Close()
		}
	})
	return nodes, addrs, topo
}

func TestLoopbackPutGet(t *testing.T) {
	nodes, addrs, topo := startCluster(t, 3, 1)
	_ = nodes
	c, err := Dial(addrs[topo.ProcessAt(0, 0)])
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put("k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, err := c.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v, []byte("v1")) {
		t.Fatalf("got %q", v)
	}
}

func TestLoopbackCrossNodeVisibility(t *testing.T) {
	_, addrs, topo := startCluster(t, 3, 1)
	c0, err := Dial(addrs[topo.ProcessAt(0, 0)])
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	if err := c0.Put("shared", []byte("from-node-0")); err != nil {
		t.Fatal(err)
	}
	c2, err := Dial(addrs[topo.ProcessAt(2, 0)])
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	// Linearizability: the read at another node sees the earlier write.
	v, err := c2.Get("shared")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v, []byte("from-node-0")) {
		t.Fatalf("read at node 2 = %q", v)
	}
}

func TestLoopbackConcurrentClients(t *testing.T) {
	_, addrs, topo := startCluster(t, 3, 1)
	var wg sync.WaitGroup
	errs := make(chan error, 30)
	for site := 0; site < 3; site++ {
		addr := addrs[topo.ProcessAt(ids.SiteID(site), 0)]
		for k := 0; k < 2; k++ {
			wg.Add(1)
			go func(addr string, who int) {
				defer wg.Done()
				c, err := Dial(addr)
				if err != nil {
					errs <- err
					return
				}
				defer c.Close()
				for i := 0; i < 5; i++ {
					if err := c.Put("contended", []byte{byte(who), byte(i)}); err != nil {
						errs <- err
						return
					}
				}
			}(addr, site*2+k)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// All replicas converge to the same final value.
	var vals [][]byte
	for site := 0; site < 3; site++ {
		c, err := Dial(addrs[topo.ProcessAt(ids.SiteID(site), 0)])
		if err != nil {
			t.Fatal(err)
		}
		v, err := c.Get("contended")
		c.Close()
		if err != nil {
			t.Fatal(err)
		}
		vals = append(vals, v)
	}
	if !bytes.Equal(vals[0], vals[1]) || !bytes.Equal(vals[1], vals[2]) {
		t.Fatalf("replicas diverged: %v", vals)
	}
}

func TestLoopbackFiveNodesF2(t *testing.T) {
	_, addrs, topo := startCluster(t, 5, 2)
	c, err := Dial(addrs[topo.ProcessAt(0, 0)])
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 10; i++ {
		if err := c.Put(fmt.Sprintf("k%d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	v, err := c.Get("k7")
	if err != nil || len(v) != 1 || v[0] != 7 {
		t.Fatalf("k7 = %v, %v", v, err)
	}
}

// TestLoopbackGobCodec keeps the legacy gob peer codec working: a
// cross-version cluster (old binaries still gob-encode) must agree.
func TestLoopbackGobCodec(t *testing.T) {
	_, addrs, topo := startClusterCodec(t, 3, 1, func(int) Codec { return CodecGob })
	c, err := Dial(addrs[topo.ProcessAt(0, 0)])
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put("k", []byte("gob")); err != nil {
		t.Fatal(err)
	}
	c2, err := Dial(addrs[topo.ProcessAt(2, 0)])
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	v, err := c2.Get("k")
	if err != nil || !bytes.Equal(v, []byte("gob")) {
		t.Fatalf("gob cluster get = %q, %v", v, err)
	}
}

// TestLoopbackMixedCodecs runs a cluster where nodes disagree on their
// send codec; receivers auto-detect from the connection prefix, so a
// rolling upgrade from gob to binary stays available.
func TestLoopbackMixedCodecs(t *testing.T) {
	_, addrs, topo := startClusterCodec(t, 3, 1, func(i int) Codec {
		if i%2 == 0 {
			return CodecBinary
		}
		return CodecGob
	})
	c, err := Dial(addrs[topo.ProcessAt(1, 0)])
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put("k", []byte("mixed")); err != nil {
		t.Fatal(err)
	}
	c2, err := Dial(addrs[topo.ProcessAt(0, 0)])
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	v, err := c2.Get("k")
	if err != nil || !bytes.Equal(v, []byte("mixed")) {
		t.Fatalf("mixed cluster get = %q, %v", v, err)
	}
}

// TestWriteBatchSplitsFrames pins the frame-budget behaviour: a batch
// whose encoding exceeds the node's frame limit is split across frames (each
// acceptable to a receiver), and a single message that can never fit is
// dropped rather than wedging the link forever.
func TestWriteBatchSplitsFrames(t *testing.T) {
	mkStable := func(seq uint64) *tempo.MStable {
		return &tempo.MStable{ID: ids.Dot{Source: 1, Seq: seq}, Shard: 0}
	}
	big := &tempo.MPayload{
		ID:  ids.Dot{Source: 1, Seq: 99},
		Cmd: command.NewPut(ids.Dot{Source: 1, Seq: 99}, "k", bytes.Repeat([]byte{7}, 200)),
	}
	var batch []proto.Message
	for seq := uint64(1); seq <= 20; seq++ { // ~20 small messages: > one 64B frame
		batch = append(batch, mkStable(seq))
	}
	batch = append(batch[:10:10], append([]proto.Message{big}, batch[10:]...)...)

	n := &Node{id: 7, frameLimit: 64}
	var out bytes.Buffer
	bw := bufio.NewWriter(&out)
	var head, body []byte
	if err := n.writeBatch(bw, nil, batch, &head, &body); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}

	// Parse the stream as a receiver would and collect the messages.
	br := bufio.NewReader(&out)
	var got []proto.Message
	frames := 0
	for {
		size, err := binary.ReadUvarint(br)
		if err != nil {
			break
		}
		if size > n.frameLimit {
			t.Fatalf("frame body %d exceeds budget %d", size, n.frameLimit)
		}
		frames++
		buf := make([]byte, size)
		if _, err := io.ReadFull(br, buf); err != nil {
			t.Fatal(err)
		}
		from, b, err := proto.ReadUvarint(buf)
		if err != nil || from != 7 {
			t.Fatalf("frame from = %d, %v", from, err)
		}
		for len(b) > 0 {
			var msg proto.Message
			if msg, b, err = proto.DecodeMessage(b); err != nil {
				t.Fatal(err)
			}
			got = append(got, msg)
		}
	}
	if frames < 2 {
		t.Fatalf("expected the batch split across frames, got %d", frames)
	}
	if len(got) != 20 {
		t.Fatalf("delivered %d messages, want the 20 small ones", len(got))
	}
	for i, m := range got {
		ms, ok := m.(*tempo.MStable)
		if !ok || ms.ID.Seq != uint64(i+1) {
			t.Fatalf("message %d = %+v: oversized message not dropped or order lost", i, m)
		}
	}
}

func TestClientErrors(t *testing.T) {
	_, addrs, topo := startCluster(t, 3, 1)
	c, err := Dial(addrs[topo.ProcessAt(0, 0)])
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Execute(); err == nil {
		t.Fatal("empty command should fail")
	}
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("dialing a dead address should fail")
	}
}
