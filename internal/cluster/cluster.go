// Package cluster runs replicas as real networked processes: one Node per
// replica, TCP peer links, a periodic tick loop for protocol timers, and
// the server half of the client protocol (submit a command, get the
// results once it executes locally).
//
// The consensus engine is pluggable: a Node drives any proto.Replica
// that can mint command identifiers (proto.IDMinter) — Tempo, EPaxos and
// FPaxos all run over this runtime (internal/engine names them). The
// remaining engine features are optional capabilities detected at Start:
// proto.DeferredApplier moves execution off the protocol lock onto the
// node's executor goroutine, Shard()/OpsShard() enable shard routing and
// the submit batcher, proto.Durable unlocks SetDurable persistence, and
// proto.LeaderAware engines follow an external leader oracle. Engine
// messages cross the peer links through the self-describing binary frame
// layer: each message type registers its own tag and codec with
// proto.RegisterWire (and with gob for the legacy codec), so the node
// never inspects protocol messages. See docs/ARCHITECTURE.md "Pluggable
// engines".
//
// Peer links default to the hand-rolled binary codec (proto.BinaryMessage)
// with batched, length-prefixed frames: the writer goroutine coalesces
// every message queued for a destination into one framed write, so a tick
// burst costs one syscall instead of one gob encode per message. The
// legacy gob codec is kept behind SetCodec(CodecGob) for cross-version
// compatibility; receivers auto-detect the peer's codec from the magic
// prefix, so mixed-codec clusters interoperate.
//
// The client protocol (see clientproto.go) is binary and fully
// pipelined: every request carries a request id and an optional
// deadline, pending commands are tracked as id-tagged waiters completed
// by the protocol's execution path (no goroutine per request), and
// replies share the batched-writer machinery of the peer links. The
// legacy one-request-at-a-time gob protocol is auto-detected and served
// for old clients. The session API over this protocol lives in the
// top-level client package.
//
// A node configured with a data directory (SetDurable; tempo-server
// -data-dir) survives crash-restart: the executor goroutine records
// applied commands in a write-ahead log with periodic state snapshots
// (internal/wal), durable watermark reservations keep the restarted
// replica from ever re-promising a timestamp or re-minting a command
// id, and a startup state-sync round fetches from peers whatever the
// local log missed. See durable.go and docs/ARCHITECTURE.md.
//
// The cmd/tempo-server and cmd/tempo-client binaries are thin wrappers
// around this package; TestLoopback runs a full cluster over localhost.
package cluster

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"tempo/internal/command"
	"tempo/internal/ids"
	"tempo/internal/membership"
	"tempo/internal/proto"
)

// Codec selects the wire encoding for outgoing peer links.
type Codec int

const (
	// CodecBinary is the hand-rolled varint codec with batch framing
	// (the default).
	CodecBinary Codec = iota
	// CodecGob is the legacy reflection-based codec, kept for
	// cross-version compatibility tests.
	CodecGob
)

// peerMagic prefixes binary-codec peer connections. The first byte of a
// gob stream is a small message length (< 0x80), so 0xFF cannot be
// mistaken for the start of a gob or legacy connection.
var peerMagic = [4]byte{0xFF, 'T', 'P', 1}

const (
	// maxWriteBatch bounds how many queued messages one frame coalesces.
	maxWriteBatch = 512
	// defaultMaxFrameBytes is the default frame-body bound; see
	// Node.frameLimit.
	defaultMaxFrameBytes = 64 << 20
)

// envelope is the wire frame between nodes.
type envelope struct {
	From ids.ProcessID
	Msg  proto.Message
}

// hello identifies a connecting peer (or a client, with From == 0).
type hello struct {
	From ids.ProcessID
}

// ClientRequest submits a command; the node assigns the identifier.
type ClientRequest struct {
	Ops []command.Op
}

// ClientReply returns the local shard's execution results.
type ClientReply struct {
	OK     bool
	Error  string
	Values [][]byte
}

// Node runs one replica.
type Node struct {
	id    ids.ProcessID
	rep   proto.Replica
	addrs map[ids.ProcessID]string

	// sharder maps op lists to shards when the replica supports it;
	// shard/hasShard identify the (single) shard this replica serves.
	// Both drive client-request routing and the batcher.
	sharder  opSharder
	shard    ids.ShardID
	hasShard bool

	// transport, when set (group deployments), carries outgoing protocol
	// messages instead of the node's own per-peer links; see SetTransport.
	transport Transport

	// shaper, when set, interposes WAN emulation (delay/jitter/loss/
	// bandwidth) and runtime partitions on outgoing protocol messages
	// before they reach the transport or peer queues; see SetShaper.
	shaper *Shaper

	// syncPeers restricts the durable state-catch-up round to the
	// replicas of this node's own shard (nil: every address, the
	// single-shard default).
	syncPeers []ids.ProcessID

	// view, when set (SetMembership), supplies epoch-versioned peer
	// addressing and the fencing of Dead/Left slots; without one the
	// static addrs map rules forever. draining flips when Drain starts
	// (new submissions are rejected); joinClock/joinSeq are the
	// successor-safety floors of a joining replica (SetJoinFloor),
	// applied by startCore. See membership.go.
	view      *membership.View
	draining  atomic.Bool
	joinClock uint64
	joinSeq   uint64

	// linkMu guards lastRecv, the per-peer inbound-liveness stamps
	// behind the Links metrics snapshot.
	linkMu   sync.Mutex
	lastRecv map[ids.ProcessID]int64

	// stat collects the serving counters exposed by Stats.
	stat nodeStats

	//tempo:guard
	mu sync.Mutex // guards rep
	// out holds per-peer outbound queues; a writer goroutine per peer
	// dials and encodes, so protocol steps never block on the network.
	//tempo:guard
	outMu sync.Mutex
	out   map[ids.ProcessID]chan proto.Message

	// waiters maps a pending command id to the client requests riding on
	// it (one for a direct submission, many for a batched one). Each
	// member waiter is claimed (claimed flag flipped under waitMu)
	// exactly once — by local execution, by deadline expiry, by its
	// connection going away, or by shutdown — so a late result can never
	// reach a recycled request slot.
	//tempo:guard
	waitMu  sync.Mutex
	waiters map[ids.Dot]*pendingCmd
	// parked holds result values of executed cross-shard commands with
	// no local waiter, so a late watch still gets its segment (guarded
	// by waitMu; see completeOrPark in cross.go).
	parked map[ids.Dot]parkedResult
	// nPending mirrors len(waiters); updated under waitMu at every map
	// mutation and read lock-free by the batcher's idle check, keeping
	// the per-request submit path off waitMu.
	nPending atomic.Int64

	// batcher coalesces single-shard client submissions that arrive
	// within a flush window into one multi-op command (nil when batching
	// is disabled or the replica cannot map ops to shards).
	batcher     *submitBatcher
	batchMaxOps int
	batchWindow time.Duration
	batchPace   time.Duration

	// Deferred execution pipeline: when the replica implements
	// proto.DeferredApplier, protocol steps (under n.mu) only append
	// newly-stable commands to execQ, and a dedicated executor goroutine
	// applies them to the state machine and completes waiters — the
	// critical section shrinks to pure protocol state.
	defRep proto.DeferredApplier
	//tempo:guard
	execMu   sync.Mutex
	execQ    []proto.Stable
	execKick chan struct{} // cap 1: wakes the executor
	// execObserver, when set before Start, is called by the executor for
	// every command just before it is applied (test hook: execution
	// order).
	execObserver func(proto.Stable)

	// clientConns tracks live binary-protocol client connections so
	// Close can fail their pending requests and unblock their read
	// loops instead of stranding clients. peerConns tracks inbound peer
	// connections for the same reason: a closed node must stop consuming
	// protocol traffic, or peers would keep talking to a zombie instead
	// of redialing its successor (an in-process restart; a killed
	// process loses its sockets anyway).
	ccMu        sync.Mutex
	clientConns map[*clientConn]struct{}
	peerConns   map[net.Conn]struct{}

	// dur, when set via SetDurable, persists applied commands and
	// protocol watermarks to a data directory (see durable.go); lastSeq
	// mirrors the highest minted command seq for its reservations
	// (written under n.mu in submitCmd, read under n.mu by
	// maybeReserveLocked). ready flips once recovery finishes: until
	// then inbound connections are only served the sync protocol, so
	// peers restarting together can exchange state without any of them
	// accepting protocol or client traffic early.
	dur     *durability
	lastSeq uint64
	ready   atomic.Bool

	ln     net.Listener
	done   chan struct{}
	closed sync.Once
	tick   time.Duration
	codec  Codec
	// frameLimit bounds a frame body in both directions: receivers drop
	// connections that announce a larger frame (corruption guard), and
	// writeBatch splits batches so no frame exceeds it. Fixed at
	// construction (connection goroutines read it concurrently).
	frameLimit uint64
}

// Batching defaults: one consensus round amortizes over everything a
// flush window (or a full batch) gathers. The window bounds the latency
// a lone request pays; the op cap bounds command size under load, when
// flushes are almost always size-triggered.
const (
	DefaultBatchOps    = 128
	DefaultBatchWindow = 200 * time.Microsecond
)

// NewNode creates a node for process id with the given replica and the
// listen addresses of every process.
func NewNode(id ids.ProcessID, rep proto.Replica, addrs map[ids.ProcessID]string) *Node {
	n := &Node{
		id:          id,
		rep:         rep,
		addrs:       addrs,
		out:         make(map[ids.ProcessID]chan proto.Message),
		waiters:     make(map[ids.Dot]*pendingCmd),
		parked:      make(map[ids.Dot]parkedResult),
		lastRecv:    make(map[ids.ProcessID]int64),
		clientConns: make(map[*clientConn]struct{}),
		peerConns:   make(map[net.Conn]struct{}),
		done:        make(chan struct{}),
		tick:        5 * time.Millisecond,
		frameLimit:  defaultMaxFrameBytes,
		batchMaxOps: DefaultBatchOps,
		batchWindow: DefaultBatchWindow,
		execKick:    make(chan struct{}, 1),
	}
	if sh, ok := rep.(opSharder); ok {
		n.sharder = sh
	}
	if sr, ok := rep.(interface{ Shard() ids.ShardID }); ok {
		n.shard, n.hasShard = sr.Shard(), true
	}
	return n
}

// SetCodec selects the wire codec for outgoing peer links. Call before
// Start; the default is CodecBinary. Inbound links auto-detect the
// sender's codec, so nodes with different codecs interoperate.
func (n *Node) SetCodec(c Codec) { n.codec = c }

// Transport carries outgoing protocol messages on behalf of hosted
// nodes. A Group installs one so every node it hosts shares the group's
// peer links (and its in-process fast path between co-hosted shards)
// instead of dialing its own. Send must not block: implementations
// queue and drop like the node's own writers.
type Transport interface {
	Send(from, to ids.ProcessID, msg proto.Message)
}

// SetTransport routes the node's outgoing protocol messages through t
// instead of per-peer links owned by the node. Call before Start.
func (n *Node) SetTransport(t Transport) { n.transport = t }

// SetShaper interposes sh on the node's outgoing protocol messages:
// WAN emulation and runtime-controllable partitions for fault
// injection. Call before Start. Group-hosted nodes should install the
// shaper on the Group instead (one shaping layer per link, not two);
// the node does not own sh and never closes it.
func (n *Node) SetShaper(sh *Shaper) { n.shaper = sh }

// SetExecObserver registers fn to be called by the executor for every
// command just before it is applied — an instrumentation hook for tests
// and exactly-once accounting (WAL replay and peer catch-up do not run
// through it, so within-incarnation double applies are observable).
// Call before Start.
func (n *Node) SetExecObserver(fn func(proto.Stable)) { n.execObserver = fn }

// SetSyncPeers restricts the durable state-catch-up round to the given
// processes (the replicas of this node's own shard). Without it every
// address is asked, which is only correct when all processes replicate
// the same shard. Call before Start.
func (n *Node) SetSyncPeers(peers []ids.ProcessID) { n.syncPeers = peers }

// Deliver feeds a decoded message batch from a remote process into the
// replica; group transports use it to hand inbound traffic to the node
// they demultiplexed it for.
func (n *Node) Deliver(from ids.ProcessID, msgs []proto.Message) {
	n.deliverBatch(from, msgs)
}

// SetBatch tunes server-side submit batching: client operations arriving
// within window are coalesced, per target shard, into one command of at
// most maxOps operations, so one consensus round carries many client
// requests. maxOps <= 1 or window <= 0 disables batching. Call before
// Start. The defaults are DefaultBatchOps/DefaultBatchWindow.
func (n *Node) SetBatch(maxOps int, window time.Duration) {
	n.batchMaxOps, n.batchWindow = maxOps, window
}

// SetBatchPace bounds the batcher's per-shard consensus round rate: at
// most one flush per pace interval per shard bucket, each carrying at
// most the batch's maxOps operations (the remainder waits for the next
// round). Pacing caps a shard's admission at maxOps/pace per serving
// replica — overload amortizes into full rounds at a fixed rate,
// bounding round fan-out and executor backlog, at a latency cost of up
// to pace per request. Zero (the default) disables pacing. Call before
// Start.
func (n *Node) SetBatchPace(pace time.Duration) { n.batchPace = pace }

// Start listens on the node's address, recovers durable state when a
// data directory is configured, and runs the tick loop. It returns once
// the listener is ready and recovery is complete.
func (n *Node) Start() error {
	ln, err := net.Listen("tcp", n.addrs[n.id])
	if err != nil {
		return fmt.Errorf("cluster: listen %s: %w", n.addrs[n.id], err)
	}
	return n.StartListener(ln)
}

// StartListener runs the node on an already-bound listener; useful when
// ports are allocated dynamically and the full address map must be known
// before any node starts. With a durable configuration, recovery —
// snapshot load, WAL replay, peer catch-up, watermark reservation —
// happens here, before any protocol or client traffic is served.
func (n *Node) StartListener(ln net.Listener) error {
	if err := n.validateEngine(); err != nil {
		ln.Close()
		return err
	}
	n.ln = ln
	if n.dur != nil {
		// Accept connections during recovery so that peers restarting at
		// the same time can answer each other's state-catch-up requests;
		// serveConn rejects everything but the sync protocol until
		// n.ready flips.
		go n.acceptLoop()
		if err := n.recoverDurable(); err != nil {
			ln.Close()
			return fmt.Errorf("cluster: durable recovery: %w", err)
		}
	}
	n.startCore()
	if n.dur == nil {
		go n.acceptLoop()
	}
	go n.tickLoop()
	return nil
}

// StartHosted runs the node without a listener of its own: a Group owns
// the shared listener and hands the node its inbound traffic via
// Deliver/serve hooks. Durable recovery still runs here — the group's
// listener must already be accepting, so restarting sites can answer
// each other's state-catch-up requests mid-recovery.
func (n *Node) StartHosted() error {
	if err := n.validateEngine(); err != nil {
		return err
	}
	if n.dur != nil {
		if err := n.recoverDurable(); err != nil {
			return fmt.Errorf("cluster: durable recovery: %w", err)
		}
	}
	n.startCore()
	go n.tickLoop()
	return nil
}

// validateEngine rejects replicas missing a required capability before
// any goroutine starts, so a misconfigured engine fails loudly at boot
// instead of panicking on the first submitted command.
func (n *Node) validateEngine() error {
	if _, ok := n.rep.(proto.IDMinter); !ok {
		return fmt.Errorf("cluster: engine %T does not implement proto.IDMinter", n.rep)
	}
	return nil
}

// startCore arms the execution pipeline and the submit batcher and
// flips the node to ready. The join floor (if any) is applied first:
// it must precede the first protocol step, and with a durable
// configuration it composes with the recovery-time reservations
// (engines' Restore/JoinFloor take maxes).
func (n *Node) startCore() {
	n.applyJoinFloor()
	if dr, ok := n.rep.(proto.DeferredApplier); ok {
		dr.SetDeferredApply(true)
		n.defRep = dr
		go n.execLoop()
	}
	if n.sharder != nil && n.batchMaxOps > 1 && n.batchWindow > 0 {
		n.batcher = newSubmitBatcher(n, n.sharder, n.batchMaxOps, n.batchWindow, n.batchPace)
	}
	n.ready.Store(true)
}

// Addr returns the bound listen address ("" for a group-hosted node,
// which shares its group's listener).
func (n *Node) Addr() string {
	if n.ln == nil {
		return ""
	}
	return n.ln.Addr().String()
}

// Close shuts the node down. Pending client requests fail with a
// shutdown error (best effort — the reply races the connection
// teardown), and every client connection is closed so sessions observe
// the shutdown promptly instead of waiting on a silent socket.
func (n *Node) Close() {
	n.closed.Do(func() {
		close(n.done)
		if n.ln != nil {
			n.ln.Close()
		}
		// Claim every pending waiter — registered ones first, then the
		// requests still sitting in the batcher: binary ones get a
		// shutdown reply enqueued, legacy ones unblock their serving
		// goroutine.
		n.waitMu.Lock()
		var pending []*waiter
		for id, pc := range n.waiters {
			delete(n.waiters, id)
			pending = append(pending, pc.claimAllLocked()...)
		}
		n.syncPendingLocked()
		n.waitMu.Unlock()
		if n.batcher != nil {
			pending = append(pending, n.batcher.close()...)
		}
		for _, w := range pending {
			w.fail(command.WireError{Code: command.ErrCodeShutdown, Msg: "node shutting down"})
		}
		n.ccMu.Lock()
		conns := make([]*clientConn, 0, len(n.clientConns))
		for cc := range n.clientConns {
			conns = append(conns, cc)
		}
		peers := make([]net.Conn, 0, len(n.peerConns))
		for pc := range n.peerConns {
			peers = append(peers, pc)
		}
		n.ccMu.Unlock()
		for _, cc := range conns {
			cc.conn.Close()
		}
		for _, pc := range peers {
			pc.Close()
		}
		if n.dur != nil && n.dur.log != nil {
			if err := n.dur.log.Close(); err != nil {
				log.Printf("cluster: node %d wal close: %v", n.id, err)
			}
		}
	})
}

func (n *Node) acceptLoop() {
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return
		}
		go n.serveConn(conn)
	}
}

// serveConn handles an inbound connection: a binary-codec peer or a
// binary-protocol client (both detected by their magic prefix), a gob
// peer (hello with From != 0), or a legacy gob client (request/reply).
func (n *Node) serveConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	if first, err := br.Peek(1); err == nil && first[0] == peerMagic[0] {
		var magic [4]byte
		if _, err := io.ReadFull(br, magic[:]); err != nil {
			return
		}
		switch magic {
		case peerMagic:
			if !n.ready.Load() {
				return // mid-recovery: peers redial once we serve
			}
			if !n.trackPeerConn(conn) {
				return
			}
			defer n.untrackPeerConn(conn)
			n.serveBinaryPeer(br)
		case ClientMagic, ClientMagic2:
			if !n.ready.Load() {
				return // mid-recovery: sessions fail over to live replicas
			}
			serveClientStream(n, conn, br, magic == ClientMagic2)
		case SyncMagic:
			n.serveSync(conn, br)
		case membership.ConfigMagic:
			n.serveMembership(conn, br)
		}
		return
	}
	if !n.ready.Load() {
		return
	}
	dec := gob.NewDecoder(br)
	enc := gob.NewEncoder(conn)
	var h hello
	if err := dec.Decode(&h); err != nil {
		return
	}
	if h.From != 0 {
		// Legacy gob peer connection: stream envelopes.
		if !n.trackPeerConn(conn) {
			return
		}
		defer n.untrackPeerConn(conn)
		for {
			var env envelope
			if err := dec.Decode(&env); err != nil {
				return
			}
			n.deliver(env.From, env.Msg)
		}
	}
	// Legacy gob client connection: serve one blocking request at a time.
	for {
		var req ClientRequest
		if err := dec.Decode(&req); err != nil {
			return
		}
		res := n.serveClient(&req)
		if err := enc.Encode(res); err != nil {
			return
		}
	}
}

// serveBinaryPeer streams batch frames from a binary-codec peer. Each
// frame is uvarint(len(body)) || body, where body is uvarint(from)
// followed by tagged messages until the body is exhausted. The whole
// frame is decoded outside n.mu, then delivered under one lock
// acquisition — inbound decode work never extends the critical section,
// and a coalesced frame costs one lock round-trip instead of one per
// message.
func (n *Node) serveBinaryPeer(br *bufio.Reader) {
	var buf []byte
	var msgs []proto.Message
	for {
		b, err := ReadFrame(br, n.frameLimit, &buf)
		if err != nil {
			return
		}
		from, b, err := proto.ReadUvarint(b)
		if err != nil {
			return
		}
		msgs = msgs[:0]
		for len(b) > 0 {
			msg, rest, err := proto.DecodeMessage(b)
			if err != nil {
				return
			}
			b = rest
			msgs = append(msgs, msg)
		}
		n.deliverBatch(ids.ProcessID(from), msgs)
		clear(msgs) // drop message refs until the next frame
	}
}

// trackPeerConn registers an inbound peer connection so Close can tear
// it down; it reports false (and the caller must drop the connection)
// when the node is already shutting down.
func (n *Node) trackPeerConn(conn net.Conn) bool {
	n.ccMu.Lock()
	defer n.ccMu.Unlock()
	select {
	case <-n.done:
		return false
	default:
	}
	n.peerConns[conn] = struct{}{}
	return true
}

func (n *Node) untrackPeerConn(conn net.Conn) {
	n.ccMu.Lock()
	delete(n.peerConns, conn)
	n.ccMu.Unlock()
}

// legacyClientTimeout is the execution deadline applied to legacy gob
// clients, which cannot express one per request.
const legacyClientTimeout = 10 * time.Second

// waiter tracks one pending client request until it is claimed by
// exactly one of: local execution, deadline expiry, connection teardown,
// or node shutdown. Binary-protocol waiters complete by enqueuing a
// reply frame on their connection; legacy gob waiters complete over a
// buffered channel their serving goroutine blocks on.
//
// A waiter is one member of a pendingCmd: a direct submission has one
// member owning the whole result, a batched submission has one member
// per client request, each owning the [off, off+nvals) segment of the
// command's per-op result values.
type waiter struct {
	deadline time.Time // zero = no deadline
	cc       *clientConn
	reqID    uint64
	ch       chan *ClientReply // legacy path only

	// claimed is guarded by Node.waitMu; it holds the claim-once
	// discipline together wherever the waiter currently lives (batcher
	// bucket, waiters map, or in flight between the two).
	claimed bool
	// off/nvals locate this request's slice of the command's result
	// values; nvals < 0 means the whole result (direct submissions).
	// Written before the waiter is published under waitMu.
	off, nvals int
}

// pendingCmd is the set of client requests riding one submitted command.
type pendingCmd struct {
	members []*waiter
	// submitted records that the command was handed to the replica here
	// (false for entries created by a watch racing ahead of its
	// submission): a duplicated cross-shard submission for the same id
	// must register its waiter without re-running Submit.
	submitted bool
}

// claimAllLocked claims every unclaimed member and returns them. The
// caller holds Node.waitMu.
func (pc *pendingCmd) claimAllLocked() []*waiter {
	var out []*waiter
	for _, w := range pc.members {
		if !w.claimed {
			w.claimed = true
			out = append(out, w)
		}
	}
	return out
}

// allClaimedLocked reports whether no member is left to complete. The
// caller holds Node.waitMu.
func (pc *pendingCmd) allClaimedLocked() bool {
	for _, w := range pc.members {
		if !w.claimed {
			return false
		}
	}
	return true
}

// segment returns the waiter's slice of a command's result values,
// clipped to what the local shard actually produced.
func (w *waiter) segment(values [][]byte) [][]byte {
	if w.nvals < 0 {
		return values
	}
	lo := min(w.off, len(values))
	hi := min(w.off+w.nvals, len(values))
	return values[lo:hi]
}

// complete delivers an execution result. The caller has already claimed
// the waiter; complete never blocks.
func (w *waiter) complete(values [][]byte) {
	if w.cc != nil {
		w.cc.reply(w.reqID, command.WireError{}, values)
		return
	}
	//tempo:allowblock cap-1 channel, claimed exactly once, so the send always has buffer space
	w.ch <- &ClientReply{OK: true, Values: values}
}

// fail delivers a typed error. Same claiming contract as complete.
func (w *waiter) fail(e command.WireError) {
	if w.cc != nil {
		w.cc.reply(w.reqID, e, nil)
		return
	}
	//tempo:allowblock cap-1 channel, claimed exactly once, so the send always has buffer space
	w.ch <- &ClientReply{Error: e.Msg}
}

// submit routes one client request. The shard split is explicit:
// single-shard ops go through the batcher (the common case — one
// consensus round then carries many requests); ops spanning shards
// take the direct cross-shard path, never the batcher — coalescing
// them with single-shard requests would change the combined command's
// shard set, and therefore its quorum cost and every batchmate's
// result segment. The cross-shard waiter owns the whole local result
// (the serving shard's segment); version-2 clients obtain the other
// shards' segments via watch registrations.
func (n *Node) submit(w *waiter, ops []command.Op) {
	if n.draining.Load() {
		// Graceful drain: the replica finishes what it accepted but
		// takes nothing new; the session fails over and refreshes its
		// configuration.
		if n.claimOne(w) {
			w.fail(command.WireError{Code: command.ErrCodeDraining, Msg: "replica draining; retry another replica"})
		}
		return
	}
	if n.sharder != nil {
		shard, single := n.sharder.OpsShard(ops)
		if single && n.batcher != nil {
			n.batcher.add(shard, w, ops)
			return
		}
		if !single {
			n.stat.crossSubmitted.Add(1)
		}
	}
	w.nvals = -1
	n.submitCmd([]*waiter{w}, ops)
}

// submitCmd registers the members and hands the combined operations to
// the replica as one command. The critical section is exactly the
// replica interaction — id minting and Submit — plus the waiter-map
// insert that must precede any completion; waiter allocation, batching
// and reply handling happen outside n.mu.
//
// The shutdown check shares waitMu with Close's sweep: either this
// registration happens before the sweep (which then claims it), or the
// sweep ran first — in which case n.done is observably closed here and
// the members are failed directly, never registered into a map no one
// will drain (a flush racing Close would otherwise strand its waiters
// and enqueue work for an executor that already exited).
func (n *Node) submitCmd(members []*waiter, ops []command.Op) {
	n.mu.Lock()
	id := n.rep.(proto.IDMinter).NextID()
	n.waitMu.Lock()
	select {
	case <-n.done:
		var doomed []*waiter
		for _, w := range members {
			if !w.claimed {
				w.claimed = true
				doomed = append(doomed, w)
			}
		}
		n.waitMu.Unlock()
		n.mu.Unlock()
		for _, w := range doomed {
			w.fail(command.WireError{Code: command.ErrCodeShutdown, Msg: "node shutting down"})
		}
		return
	default:
	}
	n.waiters[id] = &pendingCmd{members: members, submitted: true}
	n.syncPendingLocked()
	n.waitMu.Unlock()
	if id.Seq > n.lastSeq {
		n.lastSeq = id.Seq
	}
	n.stat.submittedCmds.Add(1)
	n.stat.submittedOps.Add(uint64(len(ops)))
	acts := n.rep.Submit(command.New(id, ops...))
	n.afterStepLocked(acts)
	n.mu.Unlock()
}

// pendingCmds returns how many submitted commands are awaiting
// execution; the batcher uses it to decide whether a request has
// anything worth waiting to coalesce with. Lock-free (see nPending).
func (n *Node) pendingCmds() int { return int(n.nPending.Load()) }

// syncPendingLocked refreshes the lock-free mirror of len(waiters);
// call before releasing waitMu after any waiters-map mutation.
func (n *Node) syncPendingLocked() { n.nPending.Store(int64(len(n.waiters))) }

// claimOne claims a single waiter wherever it lives; it reports whether
// the caller won (and therefore owns the completion).
func (n *Node) claimOne(w *waiter) bool {
	n.waitMu.Lock()
	won := !w.claimed
	w.claimed = true
	n.waitMu.Unlock()
	return won
}

// completeCmd claims and completes every remaining member of a command,
// handing each its own slice of the result values. Safe to call from
// the executor goroutine (no Node locks held by the caller).
func (n *Node) completeCmd(id ids.Dot, values [][]byte) {
	n.waitMu.Lock()
	pc := n.waiters[id]
	if pc == nil {
		n.waitMu.Unlock()
		return
	}
	delete(n.waiters, id)
	n.syncPendingLocked()
	done := pc.claimAllLocked()
	n.waitMu.Unlock()
	n.stat.completedReqs.Add(uint64(len(done)))
	for _, w := range done {
		w.complete(w.segment(values))
	}
}

// expireWaiters fails every waiter whose deadline has passed — member by
// member, so one slow request in a batch cannot take its batchmates down
// with it. The tick loop calls it, so deadlines are enforced at tick
// granularity.
func (n *Node) expireWaiters(now time.Time) {
	var expired []*waiter
	n.waitMu.Lock()
	for id, pc := range n.waiters {
		for _, w := range pc.members {
			if !w.claimed && !w.deadline.IsZero() && now.After(w.deadline) {
				w.claimed = true
				expired = append(expired, w)
			}
		}
		if pc.allClaimedLocked() {
			delete(n.waiters, id)
		}
	}
	n.syncPendingLocked()
	n.waitMu.Unlock()
	for _, w := range expired {
		w.fail(command.WireError{Code: command.ErrCodeTimeout, Msg: "deadline exceeded before execution"})
	}
}

// serveClient serves one legacy gob request: submit, then block until a
// completion path claims the waiter. Only the claimant touches the
// channel, so there is no timeout/registration race.
func (n *Node) serveClient(req *ClientRequest) *ClientReply {
	if len(req.Ops) == 0 {
		return &ClientReply{Error: "empty command"}
	}
	w := &waiter{
		deadline: time.Now().Add(legacyClientTimeout),
		ch:       make(chan *ClientReply, 1),
	}
	n.submit(w, req.Ops)
	select {
	case rep := <-w.ch:
		return rep
	case <-n.done:
		if n.claimOne(w) {
			return &ClientReply{Error: "node shutting down"}
		}
		// Lost the claim race: the completion is already in flight.
		return <-w.ch
	}
}

// clientConn is the server half of one binary-protocol client
// connection. Replies are appended to a pending buffer and flushed by a
// dedicated writer goroutine, so completion paths (which run under
// n.mu) never block on the network, and replies completed in one
// protocol step coalesce into one write.
type clientConn struct {
	host clientHost
	conn net.Conn
	dead chan struct{} // closed when the read loop exits

	//tempo:guard
	mu      sync.Mutex
	closed  bool
	buf     []byte        // pending encoded reply frames
	scratch []byte        // reply-body staging, reused per frame
	kick    chan struct{} // cap 1: wakes the writer
}

// reply encodes and enqueues one reply frame.
func (cc *clientConn) reply(reqID uint64, werr command.WireError, values [][]byte) {
	cc.mu.Lock()
	if cc.closed {
		cc.mu.Unlock()
		return
	}
	cc.buf = AppendClientReply(cc.buf, &cc.scratch, reqID, werr, values)
	cc.mu.Unlock()
	select {
	case cc.kick <- struct{}{}:
	default:
	}
}

// writeLoop flushes pending reply frames; everything enqueued since the
// last wake-up goes out in one write. It exits with the connection
// (cc.dead), not with the node, so shutdown replies enqueued by
// Node.Close get a chance to flush before the socket closes.
func (cc *clientConn) writeLoop() {
	var free []byte
	for {
		select {
		case <-cc.kick:
		case <-cc.dead:
			return
		}
		cc.mu.Lock()
		out := cc.buf
		cc.buf = free[:0]
		cc.mu.Unlock()
		if len(out) == 0 {
			free = out
			continue
		}
		if _, err := cc.conn.Write(out); err != nil {
			cc.conn.Close()
			return
		}
		free = out[:0]
	}
}

// abandon tears the connection's server state down: the writer stops,
// and every waiter still pending for this connection — on any node the
// host serves — is claimed and dropped (there is no one left to reply
// to).
func (cc *clientConn) abandon() {
	close(cc.dead)
	cc.mu.Lock()
	cc.closed = true
	cc.mu.Unlock()
	cc.host.untrackClientConn(cc)
	for _, n := range cc.host.localNodes() {
		n.sweepConn(cc)
	}
}

// deliver feeds a message into the replica.
func (n *Node) deliver(from ids.ProcessID, msg proto.Message) {
	if n.fenced(from) {
		return
	}
	n.mu.Lock()
	acts := n.rep.Handle(from, msg)
	n.afterStepLocked(acts)
	n.mu.Unlock()
}

// deliverBatch feeds every message of a decoded frame into the replica
// under one lock acquisition. Actions are consumed after each step (the
// replica's action slices are scratch, valid only until its next step).
// Traffic from fenced slots (Dead/Left members whose id may already
// serve under a successor) drops here, before any protocol state sees
// it.
func (n *Node) deliverBatch(from ids.ProcessID, msgs []proto.Message) {
	if len(msgs) == 0 || n.fenced(from) {
		return
	}
	n.noteRecv(from)
	n.mu.Lock()
	for _, msg := range msgs {
		acts := n.rep.Handle(from, msg)
		n.afterStepLocked(acts)
	}
	n.mu.Unlock()
}

func (n *Node) tickLoop() {
	t := time.NewTicker(n.tick)
	defer t.Stop()
	start := time.Now()
	lastSweep := start
	for {
		select {
		case <-n.done:
			return
		case <-t.C:
			n.mu.Lock()
			acts := n.rep.Tick(time.Since(start))
			n.afterStepLocked(acts)
			n.mu.Unlock()
			now := time.Now()
			n.expireWaiters(now)
			if now.Sub(lastSweep) >= time.Second {
				lastSweep = now
				n.sweepParked(now)
			}
		}
	}
}

// afterStepLocked sends actions and routes newly-stable commands to the
// execution pipeline. Callers hold n.mu. With a deferred-applying
// replica the step only enqueues onto execQ (the executor goroutine
// applies and completes waiters off the lock); otherwise execution
// already happened inline and the results are completed here.
func (n *Node) afterStepLocked(acts []proto.Action) {
	// The reservation check runs before any of the step's messages are
	// released to the (concurrently draining) peer writers: when the
	// step bumped the clock past the durable reservation, the covering
	// RecMark must hit the disk before a promise above it can reach a
	// peer.
	n.maybeReserveLocked()
	for _, a := range acts {
		for _, to := range a.To {
			n.sendLocked(to, a.Msg)
		}
	}
	if n.defRep != nil {
		st := n.defRep.DrainStable()
		if len(st) == 0 {
			return
		}
		n.execMu.Lock()
		n.execQ = append(n.execQ, st...)
		n.execMu.Unlock()
		select {
		case n.execKick <- struct{}{}:
		default:
		}
		return
	}
	ex := n.rep.Drain()
	for _, e := range ex {
		n.stat.appliedCmds.Add(1)
		if n.crossShardCmd(e.Cmd.Ops) {
			n.completeOrPark(e.Cmd.ID, e.Result.Values)
		} else {
			n.completeCmd(e.Cmd.ID, e.Result.Values)
		}
	}
}

// execLoop is the per-replica executor: it drains the timestamp-ordered
// delivery queue filled by protocol steps, applies each stable command
// to the state machine, and completes the client requests riding on it.
// kvstore work and reply encoding thus never run under n.mu.
func (n *Node) execLoop() {
	var local []proto.Stable
	for {
		select {
		case <-n.execKick:
		case <-n.done:
			return
		}
		n.execMu.Lock()
		local, n.execQ = n.execQ, local[:0]
		n.execMu.Unlock()
		for _, it := range local {
			if n.execObserver != nil {
				n.execObserver(it)
			}
			res := n.defRep.ApplyStable(it.Cmd, it.TS)
			n.stat.appliedCmds.Add(1)
			// The WAL record precedes the replies: with a zero sync
			// interval the command is durable before any client sees its
			// result; with a batching interval the record is at most one
			// interval behind (see durability.recordApply). Cross-shard
			// applies ride the same record path — the final timestamp it
			// persists is already the max across the accessed shards.
			if n.dur != nil {
				n.dur.recordApply(it)
			}
			if it.Multi {
				n.completeOrPark(it.Cmd.ID, res.Values)
			} else {
				n.completeCmd(it.Cmd.ID, res.Values)
			}
		}
		clear(local) // drop command refs until the next swap
	}
}

// sendLocked routes one outgoing envelope: through the shaper when one
// is installed (which may delay, drop, or partition it), else straight
// to the transport/peer queues via forward.
func (n *Node) sendLocked(to ids.ProcessID, msg proto.Message) {
	if n.shaper != nil {
		n.shaper.Send(n.id, to, msg, n.forward)
		return
	}
	n.forward(n.id, to, msg)
}

// forward enqueues an envelope for a peer; a writer goroutine per peer
// performs the dialing and encoding. A full queue drops the message —
// the protocol's liveness machinery retries. Group-hosted nodes hand
// the message to the shared transport instead. Safe off the protocol
// lock (shaper link goroutines call it after the delay elapses).
func (n *Node) forward(from, to ids.ProcessID, msg proto.Message) {
	if n.fenced(to) {
		return
	}
	if n.transport != nil {
		n.transport.Send(from, to, msg)
		return
	}
	n.outMu.Lock()
	ch, ok := n.out[to]
	if !ok {
		ch = make(chan proto.Message, 4096)
		n.out[to] = ch
		go n.writer(to, ch)
	}
	n.outMu.Unlock()
	select {
	case ch <- msg:
	default:
	}
}

// writer drains a peer's outbound queue over a (re)dialed connection,
// coalescing everything queued at wake-up into one framed, buffered
// write: a protocol step or tick that fans out many messages to the same
// destination costs one syscall, not one encode+write per message. The
// destination address is resolved per batch, so an epoch that rebinds
// the peer's slot (node replacement) redirects the link without a
// restart.
func (n *Node) writer(to ids.ProcessID, ch chan proto.Message) {
	var conn net.Conn
	var bw *bufio.Writer
	var enc *gob.Encoder // CodecGob only
	var dialed string    // address conn was dialed to
	var head, body []byte
	batch := make([]proto.Message, 0, maxWriteBatch)
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	for {
		var msg proto.Message
		select {
		case <-n.done:
			return
		case msg = <-ch:
		}
		batch = append(batch[:0], msg)
	coalesce:
		for len(batch) < maxWriteBatch {
			select {
			case m := <-ch:
				batch = append(batch, m)
			default:
				break coalesce
			}
		}
		for attempt := 0; attempt < 2; attempt++ {
			addr := n.addrOf(to)
			if addr == "" {
				break // unroutable (fenced or unknown): drop
			}
			if conn != nil && addr != dialed {
				// The slot moved to a new address this epoch.
				conn.Close()
				conn, bw, enc = nil, nil, nil
			}
			if conn == nil {
				c, err := net.DialTimeout("tcp", addr, 2*time.Second)
				if err != nil {
					break // drop; liveness machinery retries
				}
				w := bufio.NewWriter(c)
				var e *gob.Encoder
				if n.codec == CodecGob {
					e = gob.NewEncoder(w)
					if err := e.Encode(&hello{From: n.id}); err != nil {
						c.Close()
						break
					}
				} else if _, err := w.Write(peerMagic[:]); err != nil {
					c.Close()
					break
				}
				conn, bw, enc, dialed = c, w, e, addr
			}
			err := n.writeBatch(bw, enc, batch, &head, &body)
			if err == nil {
				err = bw.Flush()
			}
			if err != nil {
				conn.Close()
				conn, bw, enc = nil, nil, nil
				continue
			}
			break
		}
	}
}

// writeBatch encodes one coalesced batch into bw, splitting it across
// frames so no frame body exceeds the frame limit (a receiver drops the
// connection on larger frames). A single message that alone exceeds the
// cap can never be delivered and is dropped, like a full queue — the
// protocol's liveness machinery retries. head and body are reused
// scratch buffers (binary codec only).
func (n *Node) writeBatch(bw *bufio.Writer, enc *gob.Encoder, batch []proto.Message, head, body *[]byte) error {
	if n.codec == CodecGob {
		for _, m := range batch {
			if err := enc.Encode(&envelope{From: n.id, Msg: m}); err != nil {
				return err
			}
		}
		return nil
	}
	writeFrame := func(b []byte) error {
		h := proto.AppendUvarint((*head)[:0], uint64(len(b)))
		*head = h
		if _, err := bw.Write(h); err != nil {
			return err
		}
		_, err := bw.Write(b)
		return err
	}
	b := (*body)[:0]
	b = proto.AppendUvarint(b, uint64(n.id))
	prefix := len(b)
	var err error
	for _, m := range batch {
		mark := len(b)
		if b, err = proto.AppendMessage(b, m); err != nil {
			*body = b
			return err
		}
		if uint64(len(b)) > n.frameLimit && mark > prefix {
			// Frame full: flush the messages before this one and move
			// this one's bytes down into a fresh frame.
			if err := writeFrame(b[:mark]); err != nil {
				*body = b
				return err
			}
			moved := copy(b[prefix:], b[mark:])
			b = b[:prefix+moved]
		}
		if uint64(len(b)) > n.frameLimit {
			b = b[:prefix] // oversized single message: drop
		}
	}
	*body = b
	if len(b) > prefix {
		return writeFrame(b)
	}
	return nil
}

// Client is the legacy gob client: one blocking request at a time on a
// dedicated connection. New code should use the top-level client
// package, which pipelines requests over the binary protocol; this type
// is kept so old binaries keep working and for cross-version tests.
type Client struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// Dial connects a client to a node.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil, err
	}
	enc := gob.NewEncoder(conn)
	if err := enc.Encode(&hello{From: 0}); err != nil {
		conn.Close()
		return nil, err
	}
	return &Client{conn: conn, enc: enc, dec: gob.NewDecoder(conn)}, nil
}

// Close closes the session.
func (c *Client) Close() error { return c.conn.Close() }

// Execute submits a command and returns the serving shard's results.
func (c *Client) Execute(ops ...command.Op) ([][]byte, error) {
	if err := c.enc.Encode(&ClientRequest{Ops: ops}); err != nil {
		return nil, err
	}
	var rep ClientReply
	if err := c.dec.Decode(&rep); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, errors.New("cluster: connection closed")
		}
		return nil, err
	}
	if !rep.OK {
		return nil, errors.New("cluster: " + rep.Error)
	}
	return rep.Values, nil
}

// Put writes a key.
func (c *Client) Put(key string, value []byte) error {
	_, err := c.Execute(command.Op{Kind: command.Put, Key: command.Key(key), Value: value})
	return err
}

// Get reads a key.
func (c *Client) Get(key string) ([]byte, error) {
	vals, err := c.Execute(command.Op{Kind: command.Get, Key: command.Key(key)})
	if err != nil {
		return nil, err
	}
	if len(vals) == 0 {
		return nil, nil
	}
	return vals[0], nil
}
