package cluster

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"tempo/internal/ids"
	"tempo/internal/tempo"
	"tempo/internal/topology"
)

// durableCluster is a 3-replica loopback cluster whose nodes all persist
// to per-node data directories, with enough handles kept around to
// restart individual nodes in place.
type durableCluster struct {
	t     *testing.T
	topo  *topology.Topology
	addrs map[ids.ProcessID]string
	dirs  map[ids.ProcessID]string
	mu    sync.Mutex // guards nodes/reps during the concurrent cold start
	nodes map[ids.ProcessID]*Node
	reps  map[ids.ProcessID]*tempo.Process
	cfg   DurableConfig
}

func startDurableCluster(t *testing.T, cfg DurableConfig) *durableCluster {
	t.Helper()
	const r = 3
	names := make([]string, r)
	rtt := make([][]time.Duration, r)
	for i := range names {
		names[i] = fmt.Sprintf("s%d", i)
		rtt[i] = make([]time.Duration, r)
	}
	topo, err := topology.New(topology.Config{SiteNames: names, RTT: rtt, NumShards: 1, F: 1})
	if err != nil {
		t.Fatal(err)
	}
	dc := &durableCluster{
		t:     t,
		topo:  topo,
		addrs: make(map[ids.ProcessID]string),
		dirs:  make(map[ids.ProcessID]string),
		nodes: make(map[ids.ProcessID]*Node),
		reps:  make(map[ids.ProcessID]*tempo.Process),
		cfg:   cfg,
	}
	lns := make(map[ids.ProcessID]net.Listener)
	for _, pi := range topo.Processes() {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[pi.ID] = ln
		dc.addrs[pi.ID] = ln.Addr().String()
		dc.dirs[pi.ID] = filepath.Join(t.TempDir(), fmt.Sprintf("node-%d", pi.ID))
	}
	// Start concurrently, as real deployments do: each node's sync
	// round finds the others' listeners already answering.
	var wg sync.WaitGroup
	for _, pi := range topo.Processes() {
		wg.Add(1)
		go func(id ids.ProcessID) {
			defer wg.Done()
			dc.startNodeListener(id, lns[id])
		}(pi.ID)
	}
	wg.Wait()
	t.Cleanup(func() {
		for _, n := range dc.nodes {
			n.Close()
		}
	})
	return dc
}

func (dc *durableCluster) newNode(id ids.ProcessID) *Node {
	rep := tempo.New(id, dc.topo, tempo.Config{
		PromiseInterval: 2 * time.Millisecond,
		RecoveryTimeout: 100 * time.Millisecond,
	})
	n := NewNode(id, rep, dc.addrs)
	cfg := dc.cfg
	cfg.Dir = dc.dirs[id]
	if err := n.SetDurable(cfg); err != nil {
		dc.t.Error(err)
		return n
	}
	dc.mu.Lock()
	dc.nodes[id] = n
	dc.reps[id] = rep
	dc.mu.Unlock()
	return n
}

func (dc *durableCluster) startNodeListener(id ids.ProcessID, ln net.Listener) {
	if err := dc.newNode(id).StartListener(ln); err != nil {
		dc.t.Error(err)
	}
}

// restart closes the node and brings a fresh replica up on the same
// address and data directory, as a process restart would.
func (dc *durableCluster) restart(id ids.ProcessID) {
	dc.t.Helper()
	dc.nodes[id].Close()
	// The listener port lingers briefly; retry the bind.
	var err error
	for i := 0; i < 50; i++ {
		if err = dc.newNode(id).Start(); err == nil {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	dc.t.Fatalf("restart node %d: %v", id, err)
}

func (dc *durableCluster) put(id ids.ProcessID, key, val string) {
	dc.t.Helper()
	c, err := Dial(dc.addrs[id])
	if err != nil {
		dc.t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put(key, []byte(val)); err != nil {
		dc.t.Fatalf("put %s via node %d: %v", key, id, err)
	}
}

func (dc *durableCluster) get(id ids.ProcessID, key string) string {
	dc.t.Helper()
	c, err := Dial(dc.addrs[id])
	if err != nil {
		dc.t.Fatal(err)
	}
	defer c.Close()
	v, err := c.Get(key)
	if err != nil {
		dc.t.Fatalf("get %s via node %d: %v", key, id, err)
	}
	return string(v)
}

// TestDurableRestartReplaysLocalState pins the local half of recovery: a
// gracefully closed durable node replays snapshot+WAL into a fresh
// replica, without any peer's help, and rejoins the cluster.
func TestDurableRestartReplaysLocalState(t *testing.T) {
	dc := startDurableCluster(t, DurableConfig{NoPeerSync: true})
	const victim = ids.ProcessID(3)
	for i := 0; i < 20; i++ {
		dc.put(1, fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))
	}
	// Wait until the victim's executor applied the writes (execution is
	// async at non-coordinating replicas).
	waitFor(t, time.Second, func() bool {
		v, ok := dc.reps[victim].Store().Get("k19")
		return ok && string(v) == "v19"
	})
	oldClock := dc.reps[victim].Clock()

	dc.restart(victim)

	// Local replay alone restored the state machine (peer sync is off).
	if v, ok := dc.reps[victim].Store().Get("k7"); !ok || string(v) != "v7" {
		t.Fatalf("restarted store k7 = %q, %v (want replayed v7)", v, ok)
	}
	// The clock reservation puts the new incarnation above anything the
	// old one could have promised.
	if got := dc.reps[victim].Clock(); got < oldClock {
		t.Fatalf("restarted clock %d < pre-restart clock %d: timestamps could be re-promised", got, oldClock)
	}
	// And the node serves again: new writes through it, old reads too.
	dc.put(victim, "post-restart", "alive")
	if got := dc.get(victim, "k3"); got != "v3" {
		t.Fatalf("get k3 via restarted node = %q", got)
	}
	if got := dc.get(1, "post-restart"); got != "alive" {
		t.Fatalf("write via restarted node not visible at node 1: %q", got)
	}
}

// TestDurableSnapshotRotationBoundsLog pins truncate-after-snapshot: a
// small SnapshotEvery forces rotations under load, replay starts from
// the newest snapshot, and old generations are garbage.
func TestDurableSnapshotRotationBoundsLog(t *testing.T) {
	dc := startDurableCluster(t, DurableConfig{NoPeerSync: true, SnapshotEvery: 8})
	const victim = ids.ProcessID(2)
	for i := 0; i < 60; i++ {
		dc.put(victim, fmt.Sprintf("rot%d", i), fmt.Sprintf("v%d", i))
	}
	waitFor(t, time.Second, func() bool {
		v, ok := dc.reps[victim].Store().Get("rot59")
		return ok && string(v) == "v59"
	})
	dc.nodes[victim].Close()

	// Rotations happened: the startup snapshot is gen 1, applies must
	// have pushed well past it, and at most two generations remain.
	ents, err := os.ReadDir(dc.dirs[victim])
	if err != nil {
		t.Fatal(err)
	}
	maxGen, snaps := 0, 0
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "snap-") {
			snaps++
			var g int
			fmt.Sscanf(strings.TrimPrefix(e.Name(), "snap-"), "%d", &g)
			if g > maxGen {
				maxGen = g
			}
		}
	}
	if maxGen < 2 {
		t.Fatalf("no rotation under load: max snapshot generation %d", maxGen)
	}
	if snaps > 2 {
		t.Fatalf("%d snapshot generations retained, want <= 2 (truncate-after-snapshot)", snaps)
	}

	var err2 error
	for i := 0; i < 50; i++ {
		if err2 = dc.newNode(victim).Start(); err2 == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err2 != nil {
		t.Fatal(err2)
	}
	if v, ok := dc.reps[victim].Store().Get("rot42"); !ok || string(v) != "v42" {
		t.Fatalf("post-rotation replay: rot42 = %q, %v", v, ok)
	}
}

// TestDurablePeerSyncHealsLostTail pins the replicated half of recovery:
// a node whose directory is wiped (the extreme form of an unsynced WAL
// tail) comes back empty locally and reconstructs the full state from a
// peer snapshot during startup.
func TestDurablePeerSyncHealsLostTail(t *testing.T) {
	dc := startDurableCluster(t, DurableConfig{})
	const victim = ids.ProcessID(3)
	for i := 0; i < 15; i++ {
		dc.put(1, fmt.Sprintf("h%d", i), fmt.Sprintf("v%d", i))
	}
	waitFor(t, time.Second, func() bool {
		v, ok := dc.reps[victim].Store().Get("h14")
		return ok && string(v) == "v14"
	})
	dc.nodes[victim].Close()
	if err := os.RemoveAll(dc.dirs[victim]); err != nil {
		t.Fatal(err)
	}

	var err error
	for i := 0; i < 50; i++ {
		if err = dc.newNode(victim).Start(); err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := dc.reps[victim].Store().Get("h9"); !ok || string(v) != "v9" {
		t.Fatalf("peer sync did not restore h9: %q, %v", v, ok)
	}
	// And the healed node serves linearizable reads of the lost history.
	if got := dc.get(victim, "h0"); got != "v0" {
		t.Fatalf("get h0 via healed node = %q", got)
	}
}

// TestDurableNoDoubleApplyAcrossRestart pins apply idempotence: history
// present in both the local WAL and a peer snapshot must not apply
// twice. A counter-free check: the store's Applied count after restart
// equals the WAL-replayed+synced state, and a re-put of the same value
// still works.
func TestDurableNoDoubleApplyAcrossRestart(t *testing.T) {
	dc := startDurableCluster(t, DurableConfig{}) // peer sync ON top of local replay
	const victim = ids.ProcessID(2)
	dc.put(victim, "ctr", "one")
	dc.put(victim, "ctr", "two")
	waitFor(t, time.Second, func() bool {
		v, ok := dc.reps[victim].Store().Get("ctr")
		return ok && string(v) == "two"
	})
	dc.restart(victim)
	if v, ok := dc.reps[victim].Store().Get("ctr"); !ok || !bytes.Equal(v, []byte("two")) {
		t.Fatalf("ctr after restart = %q, %v", v, ok)
	}
	dc.put(victim, "ctr", "three")
	if got := dc.get(1, "ctr"); got != "three" {
		t.Fatalf("ctr at node 1 = %q", got)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}
