// Package conformancetest is the protocol-agnostic conformance suite of
// the cluster runtime: a reusable harness that boots a real 3-replica
// TCP cluster on loopback around any pluggable consensus engine (a
// proto.Replica constructor — Tempo, EPaxos, FPaxos, or anything new)
// and drives it through the scenarios every engine must survive:
// linearizable history under concurrent conflicting sessions, server-
// side batching, client deadline propagation, a partition and heal via
// cluster.Shaper, and — for engines implementing proto.Durable — a
// kill-style restart on the same data directory.
//
// Every scenario is an error-returning function over an Engine, so the
// suite is its own test subject: internal/cluster's conformance tests
// run the matrix over the real engines AND prove the suite fails a
// deliberately broken engine. Executions are captured through
// cluster.Node.SetExecObserver and verified offline with check.Checker;
// engines declaring TotalOrder are additionally held to the prefix-
// total-order property (Tempo, FPaxos — EPaxos only orders conflicts).
package conformancetest

import (
	"context"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"time"

	"tempo/client"
	"tempo/internal/check"
	"tempo/internal/cluster"
	"tempo/internal/command"
	"tempo/internal/ids"
	"tempo/internal/membership"
	"tempo/internal/proto"
	"tempo/internal/topology"
)

// Engine is one consensus engine under test: a name for subtests and a
// constructor producing its replica for one process of the topology.
type Engine struct {
	// Name labels subtests and error messages.
	Name string
	// New constructs the engine's replica for process id. The replica
	// must satisfy the cluster runtime's required capabilities
	// (proto.IDMinter) and, for execution-log capture, defer apply
	// (proto.DeferredApplier). Recovery timers should be armed short:
	// the partition scenarios rely on them to re-drive stalled rounds.
	New func(id ids.ProcessID, topo *topology.Topology) proto.Replica
	// TotalOrder additionally asserts that all replicas execute one
	// common total order per shard (Tempo, FPaxos). Leave false for
	// engines that only order conflicting commands (EPaxos).
	TotalOrder bool
}

// durable reports whether the engine's replicas support runtime
// persistence (proto.Durable) — the gate of the restart scenario.
func (e Engine) durable() bool {
	topo := harnessTopo()
	_, ok := e.New(topo.Processes()[0].ID, topo).(proto.Durable)
	return ok
}

// harnessTopo is the suite's fixed shape: three single-shard sites at
// f=1, with RTTs growing in site distance so quorum selection is
// deterministic — FastQuorum(1, 2) = {1, 2}, which leaves process 3
// outside every quorum the scenarios' coordinator (process 1) or a
// leader at site 0 relies on, making it the safe partition victim for
// every engine. The RTTs only steer quorum choice; no link is actually
// shaped.
func harnessTopo() *topology.Topology {
	names := []string{"c0", "c1", "c2"}
	rtt := make([][]time.Duration, len(names))
	for i := range rtt {
		rtt[i] = make([]time.Duration, len(names))
		for j := range rtt[i] {
			if i != j {
				d := i - j
				if d < 0 {
					d = -d
				}
				rtt[i][j] = time.Duration(d) * time.Millisecond
			}
		}
	}
	topo, err := topology.New(topology.Config{SiteNames: names, RTT: rtt, NumShards: 1, F: 1})
	if err != nil {
		panic(err) // static configuration
	}
	return topo
}

// victim is the process the partition scenarios cut off: by
// harnessTopo's RTT shape it sits in no coordinator-1 or leader fast
// quorum, so the cluster keeps committing while it is gone.
const victim = ids.ProcessID(3)

// Options tunes a conformance Cluster.
type Options struct {
	// BatchOps, when above 1, arms server-side submit batching with
	// BatchWindow (cluster.DefaultBatchWindow when zero). At most 1,
	// batching is disabled — the suite's default, so each client op is
	// its own consensus command.
	BatchOps int
	// BatchWindow is the batching flush window (see BatchOps).
	BatchWindow time.Duration
	// DataDir, when set, starts every node durable in its own
	// subdirectory. Only valid for engines implementing proto.Durable.
	DataDir string
}

// Cluster is one booted conformance cluster: real nodes on loopback
// TCP, one shared Shaper for fault injection, and a recorder capturing
// every replica's execution log for offline verification.
type Cluster struct {
	// Topo is the fixed 3-site single-shard topology (see harnessTopo).
	Topo *topology.Topology
	// Addrs maps process ids to their fixed listen addresses (fixed so
	// a restarted node can rebind).
	Addrs map[ids.ProcessID]string
	// Shaper is shared by all nodes: scenarios cut, isolate and heal
	// through it.
	Shaper *cluster.Shaper

	eng  Engine
	opts Options
	rec  *recorder
	// baseCfg is the epoch-1 membership configuration every node's view
	// starts from (the static wiring lifted; see internal/membership).
	baseCfg *membership.Config

	mu    sync.Mutex
	nodes map[ids.ProcessID]*cluster.Node
	views map[ids.ProcessID]*membership.View
}

// Start boots a conformance cluster running e's replicas.
func Start(e Engine, opts Options) (*Cluster, error) {
	topo := harnessTopo()
	c := &Cluster{
		Topo:   topo,
		Addrs:  make(map[ids.ProcessID]string),
		Shaper: cluster.NewShaper(nil),
		eng:    e,
		opts:   opts,
		rec:    newRecorder(),
		nodes:  make(map[ids.ProcessID]*cluster.Node),
		views:  make(map[ids.ProcessID]*membership.View),
	}
	lns := make(map[ids.ProcessID]net.Listener)
	for _, pi := range topo.Processes() {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			c.Close()
			return nil, err
		}
		lns[pi.ID] = ln
		c.Addrs[pi.ID] = ln.Addr().String()
	}
	// Lift the fixed wiring into the epoch-1 membership config, so every
	// node runs under a live view: the reconfig scenario drives epoch
	// changes through the wire config protocol, and the remaining
	// scenarios prove the views change nothing while the config is
	// static.
	siteAddrs := make(map[ids.SiteID]string)
	for _, pi := range topo.Processes() {
		siteAddrs[pi.Site] = c.Addrs[pi.ID]
	}
	c.baseCfg = membership.FromTopology(topo, siteAddrs)
	for _, pi := range topo.Processes() {
		if err := c.startNode(pi.ID, lns[pi.ID]); err != nil {
			for id, ln := range lns {
				if _, started := c.nodes[id]; !started {
					ln.Close()
				}
			}
			c.Close()
			return nil, fmt.Errorf("conformance: start %s node %d: %w", e.Name, pi.ID, err)
		}
	}
	return c, nil
}

// startNode builds and starts one node; ln nil re-listens on the
// process's fixed address (the restart path).
func (c *Cluster) startNode(id ids.ProcessID, ln net.Listener) error {
	rep := c.eng.New(id, c.Topo)
	n := cluster.NewNode(id, rep, c.Addrs)
	n.SetShaper(c.Shaper)
	if c.opts.BatchOps > 1 {
		w := c.opts.BatchWindow
		if w <= 0 {
			w = cluster.DefaultBatchWindow
		}
		n.SetBatch(c.opts.BatchOps, w)
	} else {
		n.SetBatch(1, 0)
	}
	n.SetExecObserver(c.rec.observer(id))
	view, err := membership.NewView(c.baseCfg, c.Topo)
	if err != nil {
		return err
	}
	n.SetMembership(view)
	if c.opts.DataDir != "" {
		if err := n.SetDurable(cluster.DurableConfig{
			Dir:          filepath.Join(c.opts.DataDir, fmt.Sprintf("node-%d", id)),
			SyncInterval: time.Millisecond,
		}); err != nil {
			return err
		}
	}
	if ln != nil {
		err = n.StartListener(ln)
	} else {
		err = n.Start()
	}
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.nodes[id] = n
	c.views[id] = view
	c.mu.Unlock()
	return nil
}

// node returns process id's running node (nil when stopped).
func (c *Cluster) node(id ids.ProcessID) *cluster.Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nodes[id]
}

// Stop closes process id's node; its listener and links die with it.
func (c *Cluster) Stop(id ids.ProcessID) {
	c.mu.Lock()
	n := c.nodes[id]
	delete(c.nodes, id)
	c.mu.Unlock()
	if n != nil {
		n.Close()
	}
}

// Restart stops process id's node and boots a fresh replica on the same
// data directory and address — the in-process analogue of a
// kill-restart (the real SIGKILL end-to-end test lives in the cluster
// package's crash tests). Only valid on durable clusters. Rebinding the
// fixed address can race the kernel's port release, so it retries
// briefly.
func (c *Cluster) Restart(id ids.ProcessID) error {
	if c.opts.DataDir == "" {
		return fmt.Errorf("conformance: Restart(%d) on a non-durable cluster", id)
	}
	c.Stop(id)
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := c.startNode(id, nil)
		if err == nil || time.Now().After(deadline) {
			return err
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// Close shuts every node and the shaper down.
func (c *Cluster) Close() {
	c.mu.Lock()
	nodes := make([]*cluster.Node, 0, len(c.nodes))
	for id, n := range c.nodes {
		nodes = append(nodes, n)
		delete(c.nodes, id)
	}
	c.mu.Unlock()
	for _, n := range nodes {
		n.Close()
	}
	c.Shaper.Close()
}

// Session opens a client session over the given replicas (over all of
// them when none are named).
func (c *Cluster) Session(procs ...ids.ProcessID) (*client.Session, error) {
	addrs := make(map[ids.ProcessID]string)
	if len(procs) == 0 {
		for id, a := range c.Addrs {
			addrs[id] = a
		}
	} else {
		for _, id := range procs {
			addrs[id] = c.Addrs[id]
		}
	}
	return client.New(client.Config{
		Addrs:          addrs,
		RequestTimeout: 10 * time.Second,
		RedialBackoff:  100 * time.Millisecond,
	})
}

// Put registers val as issued and writes it through sess. Scenario
// values MUST be globally unique within a cluster: the recorder ties
// executed commands back to issued operations by value.
func (c *Cluster) Put(ctx context.Context, sess *client.Session, key, val string) error {
	c.rec.issue(val)
	if err := sess.Put(ctx, key, []byte(val)); err != nil {
		return err
	}
	c.rec.ack(1)
	return nil
}

// Get reads key through sess (ErrNotFound counts as a completed,
// executed command).
func (c *Cluster) Get(ctx context.Context, sess *client.Session, key string) (string, error) {
	v, err := sess.Get(ctx, key)
	if err == nil || errors.Is(err, client.ErrNotFound) {
		c.rec.ack(1)
	}
	return string(v), err
}

// DoPipelined issues n single-op commands through sess, keeping up to
// inflight outstanding; op(i) builds the i-th operation (puts are
// registered as issued automatically).
func (c *Cluster) DoPipelined(ctx context.Context, sess *client.Session, inflight, n int, op func(i int) command.Op) error {
	if inflight < 1 {
		inflight = 1
	}
	futs := make([]*client.Future, 0, inflight)
	reap := func(f *client.Future) error {
		if _, err := f.Wait(ctx); err != nil {
			return err
		}
		c.rec.ack(1)
		return nil
	}
	for i := 0; i < n; i++ {
		if len(futs) == inflight {
			if err := reap(futs[0]); err != nil {
				return err
			}
			futs = futs[1:]
		}
		o := op(i)
		if o.Kind == command.Put {
			c.rec.issue(string(o.Value))
		}
		futs = append(futs, sess.Do(ctx, o))
	}
	for _, f := range futs {
		if err := reap(f); err != nil {
			return err
		}
	}
	return nil
}

// AckedOps returns how many client operations completed successfully so
// far — the floor every replica's execution log must eventually reach.
func (c *Cluster) AckedOps() int { return c.rec.ackedOps() }

// WaitExecuted blocks until every listed process's current incarnation
// has executed at least n client operations — the convergence barrier
// scenarios run before verifying logs. Restarted nodes re-count from
// their restart (WAL replay and peer state sync bypass the exec
// observer), so pass only full-history processes here.
func (c *Cluster) WaitExecuted(procs []ids.ProcessID, n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if c.rec.allExecuted(procs, n) {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("conformance: %s: processes %v did not reach %d executed ops in %v (at %v)",
				c.eng.Name, procs, n, timeout, c.rec.opCounts(procs))
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Pids returns every process id of the topology, in order.
func (c *Cluster) Pids() []ids.ProcessID {
	var out []ids.ProcessID
	for _, pi := range c.Topo.Processes() {
		out = append(out, pi.ID)
	}
	return out
}

// Verify replays the captured execution logs through check.Checker:
// Validity (at-most-once per incarnation, every executed write issued
// by this harness) and Ordering (conflicting pairs acyclic across all
// logs); totalOrder additionally requires one common per-shard prefix
// order. Call after WaitExecuted so slow replicas are not mistaken for
// divergent ones.
func (c *Cluster) Verify(totalOrder bool) error {
	return c.rec.verify(c.eng.Name, totalOrder)
}

// recorder captures per-process execution logs (via exec observers) and
// the client-side issue/ack ledger scenarios verify against.
type recorder struct {
	mu     sync.Mutex
	cmds   map[ids.Dot]*command.Command
	logs   map[ids.ProcessID][]incarnation
	issued map[string]bool
	acked  int
}

// incarnation is one node incarnation's execution log: command order
// plus the client-op count (batched commands carry several ops).
type incarnation struct {
	order []ids.Dot
	ops   int
}

func newRecorder() *recorder {
	return &recorder{
		cmds:   make(map[ids.Dot]*command.Command),
		logs:   make(map[ids.ProcessID][]incarnation),
		issued: make(map[string]bool),
	}
}

// observer returns the exec-observer hook for one node incarnation.
func (r *recorder) observer(id ids.ProcessID) func(proto.Stable) {
	r.mu.Lock()
	r.logs[id] = append(r.logs[id], incarnation{})
	inc := len(r.logs[id]) - 1
	r.mu.Unlock()
	return func(st proto.Stable) {
		r.mu.Lock()
		in := &r.logs[id][inc]
		in.order = append(in.order, st.Cmd.ID)
		in.ops += len(st.Cmd.Ops)
		if _, ok := r.cmds[st.Cmd.ID]; !ok {
			r.cmds[st.Cmd.ID] = st.Cmd
		}
		r.mu.Unlock()
	}
}

func (r *recorder) issue(val string) {
	r.mu.Lock()
	r.issued[val] = true
	r.mu.Unlock()
}

func (r *recorder) ack(n int) {
	r.mu.Lock()
	r.acked += n
	r.mu.Unlock()
}

func (r *recorder) ackedOps() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.acked
}

// allExecuted reports whether every listed process's latest incarnation
// has executed at least n client ops.
func (r *recorder) allExecuted(procs []ids.ProcessID, n int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, p := range procs {
		incs := r.logs[p]
		if len(incs) == 0 || incs[len(incs)-1].ops < n {
			return false
		}
	}
	return true
}

// opCounts renders the latest-incarnation op counts for error messages.
func (r *recorder) opCounts(procs []ids.ProcessID) map[ids.ProcessID]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[ids.ProcessID]int, len(procs))
	for _, p := range procs {
		if incs := r.logs[p]; len(incs) > 0 {
			out[p] = incs[len(incs)-1].ops
		}
	}
	return out
}

// verify implements Cluster.Verify on a consistent snapshot.
func (r *recorder) verify(engine string, totalOrder bool) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	chk := check.New()
	for _, cmd := range r.cmds {
		for _, op := range cmd.Ops {
			if op.Kind == command.Put && !r.issued[string(op.Value)] {
				return fmt.Errorf("conformance: %s: executed write %q on key %q was never issued by a session",
					engine, op.Value, op.Key)
			}
		}
		chk.Submitted(cmd)
	}
	for pid, incs := range r.logs {
		for _, in := range incs {
			order := make([]ids.Dot, len(in.order))
			copy(order, in.order)
			chk.Executed(check.Log{Process: pid, Shard: 0, Order: order})
		}
	}
	if err := chk.Verify(); err != nil {
		return fmt.Errorf("conformance: %s: %w", engine, err)
	}
	if totalOrder {
		if err := chk.VerifyTotalOrder(); err != nil {
			return fmt.Errorf("conformance: %s: %w", engine, err)
		}
	}
	return nil
}
