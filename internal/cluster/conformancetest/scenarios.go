package conformancetest

import (
	"context"
	"errors"
	"fmt"
	"os"
	"testing"
	"time"

	"tempo/client"
	"tempo/internal/command"
)

// Scenario is one conformance property: an error-returning check over an
// Engine, so test suites can both run it (expect nil) and prove the
// suite's teeth on a deliberately broken engine (expect non-nil).
type Scenario struct {
	// Name labels the subtest.
	Name string
	// NeedsDurable gates the scenario on proto.Durable engines.
	NeedsDurable bool
	// Run executes the scenario against a fresh cluster of e's replicas.
	Run func(e Engine) error
}

// Scenarios returns the full conformance suite, in run order.
func Scenarios() []Scenario {
	return []Scenario{
		{Name: "Linearizability", Run: Linearizability},
		{Name: "Batching", Run: Batching},
		{Name: "Deadline", Run: Deadline},
		{Name: "PartitionHeal", Run: PartitionHeal},
		{Name: "DurableRestart", NeedsDurable: true, Run: DurableRestart},
	}
}

// Run executes every applicable scenario against e as subtests of t —
// the entry point engine test suites call.
func Run(t *testing.T, e Engine) {
	for _, sc := range Scenarios() {
		t.Run(sc.Name, func(t *testing.T) {
			if sc.NeedsDurable && !e.durable() {
				t.Skipf("engine %s does not implement proto.Durable", e.Name)
			}
			if err := sc.Run(e); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Linearizability drives six concurrent sessions — homed round-robin
// across all three replicas so every replica coordinates — through a
// pipelined mix of writes and reads over four heavily conflicting keys,
// then verifies the captured execution logs: validity, conflict-order
// acyclicity and (for TotalOrder engines) a single per-shard total
// order.
func Linearizability(e Engine) error {
	c, err := Start(e, Options{})
	if err != nil {
		return err
	}
	defer c.Close()
	pids := c.Pids()
	const nSess, opsPer, inflight = 6, 80, 8
	errc := make(chan error, nSess)
	for s := 0; s < nSess; s++ {
		go func(s int) {
			sess, err := c.Session(pids[s%len(pids)])
			if err != nil {
				errc <- err
				return
			}
			defer sess.Close()
			//tempo:allowctx scenario is a self-contained check and bounds its own run
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			errc <- c.DoPipelined(ctx, sess, inflight, opsPer, func(i int) command.Op {
				key := command.Key(fmt.Sprintf("hot-%d", i%4))
				if i%7 == 3 {
					return command.Op{Kind: command.Get, Key: key}
				}
				return command.Op{
					Kind:  command.Put,
					Key:   key,
					Value: []byte(fmt.Sprintf("lin-s%d-i%d", s, i)),
				}
			})
		}(s)
	}
	for s := 0; s < nSess; s++ {
		if err := <-errc; err != nil {
			return fmt.Errorf("conformance: %s: linearizability load: %w", e.Name, err)
		}
	}
	if err := c.WaitExecuted(pids, c.AckedOps(), 20*time.Second); err != nil {
		return err
	}
	return c.Verify(e.TotalOrder)
}

// Batching reruns the conflicting-write load with server-side submit
// batching armed, then checks the client-visible contract survives
// coalescing: a write issued after every other write acked must win the
// final read, and the per-op execution logs must still verify.
func Batching(e Engine) error {
	c, err := Start(e, Options{BatchOps: 64})
	if err != nil {
		return err
	}
	defer c.Close()
	sess, err := c.Session()
	if err != nil {
		return err
	}
	defer sess.Close()
	//tempo:allowctx scenario is a self-contained check and bounds its own run
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	err = c.DoPipelined(ctx, sess, 32, 200, func(i int) command.Op {
		return command.Op{
			Kind:  command.Put,
			Key:   "batch",
			Value: []byte(fmt.Sprintf("batch-%d", i)),
		}
	})
	if err != nil {
		return fmt.Errorf("conformance: %s: batched load: %w", e.Name, err)
	}
	const final = "batch-final"
	if err := c.Put(ctx, sess, "batch", final); err != nil {
		return fmt.Errorf("conformance: %s: final put: %w", e.Name, err)
	}
	got, err := c.Get(ctx, sess, "batch")
	if err != nil {
		return fmt.Errorf("conformance: %s: read-back: %w", e.Name, err)
	}
	if got != final {
		return fmt.Errorf("conformance: %s: read-back after batched load = %q, want %q (real-time write order lost)",
			e.Name, got, final)
	}
	if err := c.WaitExecuted(c.Pids(), c.AckedOps(), 20*time.Second); err != nil {
		return err
	}
	return c.Verify(e.TotalOrder)
}

// Deadline isolates one replica and writes through it with a short
// client deadline: the deadline must travel with the request and expire
// server-side as client.ErrTimeout well before the session-level
// request timeout, and after the heal the same replica must accept new
// writes again.
func Deadline(e Engine) error {
	c, err := Start(e, Options{})
	if err != nil {
		return err
	}
	defer c.Close()
	c.Shaper.Isolate(victim)
	sess, err := c.Session(victim)
	if err != nil {
		return err
	}
	defer sess.Close()
	start := time.Now()
	//tempo:allowctx scenario is a self-contained check and bounds its own run
	ctx, cancel := context.WithTimeout(context.Background(), 400*time.Millisecond)
	err = c.Put(ctx, sess, "dl", "dl-stalled")
	cancel()
	if err == nil {
		return fmt.Errorf("conformance: %s: put through a fully isolated replica succeeded", e.Name)
	}
	if !errors.Is(err, client.ErrTimeout) {
		return fmt.Errorf("conformance: %s: put on isolated replica = %v, want client.ErrTimeout", e.Name, err)
	}
	if el := time.Since(start); el > 5*time.Second {
		return fmt.Errorf("conformance: %s: deadline expired after %v; the 400ms client deadline did not propagate", e.Name, el)
	}
	c.Shaper.Rejoin(victim)
	healBy := time.Now().Add(15 * time.Second)
	for i := 0; ; i++ {
		//tempo:allowctx scenario is a self-contained check and bounds its own run
		pctx, pcancel := context.WithTimeout(context.Background(), time.Second)
		err := c.Put(pctx, sess, "dl", fmt.Sprintf("dl-retry-%d", i))
		pcancel()
		if err == nil {
			break
		}
		if time.Now().After(healBy) {
			return fmt.Errorf("conformance: %s: replica still rejects writes %v after heal: %w",
				e.Name, 15*time.Second, err)
		}
	}
	if err := c.WaitExecuted(c.Pids(), c.AckedOps(), 20*time.Second); err != nil {
		return err
	}
	return c.Verify(e.TotalOrder)
}

// PartitionHeal cuts the quorum-external replica off mid-stream: the
// cluster must keep committing writes during the partition, and after
// the heal the victim must catch up on everything it missed — driven by
// whatever recovery machinery the engine has (Tempo recovery, EPaxos
// commit requests, FPaxos slot requests) — until a consensus read at
// the victim observes the latest write.
func PartitionHeal(e Engine) error {
	c, err := Start(e, Options{})
	if err != nil {
		return err
	}
	defer c.Close()
	sess, err := c.Session()
	if err != nil {
		return err
	}
	defer sess.Close()
	//tempo:allowctx scenario is a self-contained check and bounds its own run
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	var last string
	put := func(phase string, i int) error {
		last = fmt.Sprintf("ph-%s-%d", phase, i)
		if err := c.Put(ctx, sess, "ph", last); err != nil {
			return fmt.Errorf("conformance: %s: %s-partition put %d: %w", e.Name, phase, i, err)
		}
		return nil
	}
	for i := 0; i < 15; i++ {
		if err := put("pre", i); err != nil {
			return err
		}
	}
	c.Shaper.Isolate(victim)
	for i := 0; i < 15; i++ {
		if err := put("cut", i); err != nil {
			return fmt.Errorf("%w (the victim sits outside every quorum; writes must not stall)", err)
		}
	}
	c.Shaper.Rejoin(victim)
	for i := 0; i < 15; i++ {
		if err := put("post", i); err != nil {
			return err
		}
	}
	if err := c.WaitExecuted(c.Pids(), c.AckedOps(), 30*time.Second); err != nil {
		return fmt.Errorf("%w (healed replica did not catch up)", err)
	}
	probe, err := c.Session(victim)
	if err != nil {
		return err
	}
	defer probe.Close()
	got, err := c.Get(ctx, probe, "ph")
	if err != nil {
		return fmt.Errorf("conformance: %s: consensus read at healed replica: %w", e.Name, err)
	}
	if got != last {
		return fmt.Errorf("conformance: %s: read at healed replica = %q, want %q", e.Name, got, last)
	}
	return c.Verify(e.TotalOrder)
}

// DurableRestart stops the quorum-external replica, keeps writing
// through the survivors, then boots a fresh replica on the same data
// directory and address: it must recover its state, observe the writes
// it missed and serve new consensus reads and writes. (The out-of-
// process SIGKILL variant lives in the cluster package's crash e2e
// test; this in-process variant is what makes the scenario runnable for
// any Durable engine.) Logs are verified without the total-order check:
// the restarted incarnation's observed log starts mid-stream, which the
// from-index-0 prefix comparison cannot represent.
func DurableRestart(e Engine) error {
	dir, err := os.MkdirTemp("", "conformance-"+e.Name+"-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	c, err := Start(e, Options{DataDir: dir})
	if err != nil {
		return err
	}
	defer c.Close()
	pids := c.Pids()
	//tempo:allowctx scenario is a self-contained check and bounds its own run
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	sess, err := c.Session()
	if err != nil {
		return err
	}
	defer sess.Close()
	for i := 0; i < 30; i++ {
		if err := c.Put(ctx, sess, fmt.Sprintf("dr-%d", i%5), fmt.Sprintf("dr-pre-%d", i)); err != nil {
			return fmt.Errorf("conformance: %s: pre-crash put %d: %w", e.Name, i, err)
		}
	}
	time.Sleep(300 * time.Millisecond) // let the victim's WAL sync past the acked writes
	c.Stop(victim)
	surv, err := c.Session(pids[0], pids[1])
	if err != nil {
		return err
	}
	defer surv.Close()
	var last string
	for i := 0; i < 20; i++ {
		last = fmt.Sprintf("dr-out-%d", i)
		if err := c.Put(ctx, surv, "dr-live", last); err != nil {
			return fmt.Errorf("conformance: %s: put with replica down: %w", e.Name, err)
		}
	}
	if err := c.Restart(victim); err != nil {
		return fmt.Errorf("conformance: %s: restart: %w", e.Name, err)
	}
	probe, err := c.Session(victim)
	if err != nil {
		return err
	}
	defer probe.Close()
	catchBy := time.Now().Add(20 * time.Second)
	for {
		//tempo:allowctx scenario is a self-contained check and bounds its own run
		pctx, pcancel := context.WithTimeout(context.Background(), time.Second)
		got, err := c.Get(pctx, probe, "dr-live")
		pcancel()
		if err == nil && got == last {
			break
		}
		if time.Now().After(catchBy) {
			return fmt.Errorf("conformance: %s: restarted replica reads %q (err %v), want %q", e.Name, got, err, last)
		}
	}
	if err := c.Put(ctx, probe, "dr-live", "dr-after-restart"); err != nil {
		return fmt.Errorf("conformance: %s: write through restarted replica: %w", e.Name, err)
	}
	got, err := c.Get(ctx, probe, "dr-live")
	if err != nil || got != "dr-after-restart" {
		return fmt.Errorf("conformance: %s: read-back through restarted replica = %q, %v", e.Name, got, err)
	}
	return c.Verify(false)
}
