package conformancetest

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"testing"
	"time"

	"tempo/client"
	"tempo/internal/cluster"
	"tempo/internal/command"
	"tempo/internal/ids"
	"tempo/internal/membership"
	"tempo/internal/proto"
)

// Scenario is one conformance property: an error-returning check over an
// Engine, so test suites can both run it (expect nil) and prove the
// suite's teeth on a deliberately broken engine (expect non-nil).
type Scenario struct {
	// Name labels the subtest.
	Name string
	// NeedsDurable gates the scenario on proto.Durable engines.
	NeedsDurable bool
	// Run executes the scenario against a fresh cluster of e's replicas.
	Run func(e Engine) error
}

// Scenarios returns the full conformance suite, in run order.
func Scenarios() []Scenario {
	return []Scenario{
		{Name: "Linearizability", Run: Linearizability},
		{Name: "Batching", Run: Batching},
		{Name: "Deadline", Run: Deadline},
		{Name: "PartitionHeal", Run: PartitionHeal},
		{Name: "DurableRestart", NeedsDurable: true, Run: DurableRestart},
		{Name: "Reconfig", Run: Reconfig},
	}
}

// Run executes every applicable scenario against e as subtests of t —
// the entry point engine test suites call.
func Run(t *testing.T, e Engine) {
	for _, sc := range Scenarios() {
		t.Run(sc.Name, func(t *testing.T) {
			if sc.NeedsDurable && !e.durable() {
				t.Skipf("engine %s does not implement proto.Durable", e.Name)
			}
			if err := sc.Run(e); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Linearizability drives six concurrent sessions — homed round-robin
// across all three replicas so every replica coordinates — through a
// pipelined mix of writes and reads over four heavily conflicting keys,
// then verifies the captured execution logs: validity, conflict-order
// acyclicity and (for TotalOrder engines) a single per-shard total
// order.
func Linearizability(e Engine) error {
	c, err := Start(e, Options{})
	if err != nil {
		return err
	}
	defer c.Close()
	pids := c.Pids()
	const nSess, opsPer, inflight = 6, 80, 8
	errc := make(chan error, nSess)
	for s := 0; s < nSess; s++ {
		go func(s int) {
			sess, err := c.Session(pids[s%len(pids)])
			if err != nil {
				errc <- err
				return
			}
			defer sess.Close()
			//tempo:allowctx scenario is a self-contained check and bounds its own run
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			errc <- c.DoPipelined(ctx, sess, inflight, opsPer, func(i int) command.Op {
				key := command.Key(fmt.Sprintf("hot-%d", i%4))
				if i%7 == 3 {
					return command.Op{Kind: command.Get, Key: key}
				}
				return command.Op{
					Kind:  command.Put,
					Key:   key,
					Value: []byte(fmt.Sprintf("lin-s%d-i%d", s, i)),
				}
			})
		}(s)
	}
	for s := 0; s < nSess; s++ {
		if err := <-errc; err != nil {
			return fmt.Errorf("conformance: %s: linearizability load: %w", e.Name, err)
		}
	}
	if err := c.WaitExecuted(pids, c.AckedOps(), 20*time.Second); err != nil {
		return err
	}
	return c.Verify(e.TotalOrder)
}

// Batching reruns the conflicting-write load with server-side submit
// batching armed, then checks the client-visible contract survives
// coalescing: a write issued after every other write acked must win the
// final read, and the per-op execution logs must still verify.
func Batching(e Engine) error {
	c, err := Start(e, Options{BatchOps: 64})
	if err != nil {
		return err
	}
	defer c.Close()
	sess, err := c.Session()
	if err != nil {
		return err
	}
	defer sess.Close()
	//tempo:allowctx scenario is a self-contained check and bounds its own run
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	err = c.DoPipelined(ctx, sess, 32, 200, func(i int) command.Op {
		return command.Op{
			Kind:  command.Put,
			Key:   "batch",
			Value: []byte(fmt.Sprintf("batch-%d", i)),
		}
	})
	if err != nil {
		return fmt.Errorf("conformance: %s: batched load: %w", e.Name, err)
	}
	const final = "batch-final"
	if err := c.Put(ctx, sess, "batch", final); err != nil {
		return fmt.Errorf("conformance: %s: final put: %w", e.Name, err)
	}
	got, err := c.Get(ctx, sess, "batch")
	if err != nil {
		return fmt.Errorf("conformance: %s: read-back: %w", e.Name, err)
	}
	if got != final {
		return fmt.Errorf("conformance: %s: read-back after batched load = %q, want %q (real-time write order lost)",
			e.Name, got, final)
	}
	if err := c.WaitExecuted(c.Pids(), c.AckedOps(), 20*time.Second); err != nil {
		return err
	}
	return c.Verify(e.TotalOrder)
}

// Deadline isolates one replica and writes through it with a short
// client deadline: the deadline must travel with the request and expire
// server-side as client.ErrTimeout well before the session-level
// request timeout, and after the heal the same replica must accept new
// writes again.
func Deadline(e Engine) error {
	c, err := Start(e, Options{})
	if err != nil {
		return err
	}
	defer c.Close()
	c.Shaper.Isolate(victim)
	sess, err := c.Session(victim)
	if err != nil {
		return err
	}
	defer sess.Close()
	start := time.Now()
	//tempo:allowctx scenario is a self-contained check and bounds its own run
	ctx, cancel := context.WithTimeout(context.Background(), 400*time.Millisecond)
	err = c.Put(ctx, sess, "dl", "dl-stalled")
	cancel()
	if err == nil {
		return fmt.Errorf("conformance: %s: put through a fully isolated replica succeeded", e.Name)
	}
	if !errors.Is(err, client.ErrTimeout) {
		return fmt.Errorf("conformance: %s: put on isolated replica = %v, want client.ErrTimeout", e.Name, err)
	}
	if el := time.Since(start); el > 5*time.Second {
		return fmt.Errorf("conformance: %s: deadline expired after %v; the 400ms client deadline did not propagate", e.Name, el)
	}
	c.Shaper.Rejoin(victim)
	healBy := time.Now().Add(15 * time.Second)
	for i := 0; ; i++ {
		//tempo:allowctx scenario is a self-contained check and bounds its own run
		pctx, pcancel := context.WithTimeout(context.Background(), time.Second)
		err := c.Put(pctx, sess, "dl", fmt.Sprintf("dl-retry-%d", i))
		pcancel()
		if err == nil {
			break
		}
		if time.Now().After(healBy) {
			return fmt.Errorf("conformance: %s: replica still rejects writes %v after heal: %w",
				e.Name, 15*time.Second, err)
		}
	}
	if err := c.WaitExecuted(c.Pids(), c.AckedOps(), 20*time.Second); err != nil {
		return err
	}
	return c.Verify(e.TotalOrder)
}

// PartitionHeal cuts the quorum-external replica off mid-stream: the
// cluster must keep committing writes during the partition, and after
// the heal the victim must catch up on everything it missed — driven by
// whatever recovery machinery the engine has (Tempo recovery, EPaxos
// commit requests, FPaxos slot requests) — until a consensus read at
// the victim observes the latest write.
func PartitionHeal(e Engine) error {
	c, err := Start(e, Options{})
	if err != nil {
		return err
	}
	defer c.Close()
	sess, err := c.Session()
	if err != nil {
		return err
	}
	defer sess.Close()
	//tempo:allowctx scenario is a self-contained check and bounds its own run
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	var last string
	put := func(phase string, i int) error {
		last = fmt.Sprintf("ph-%s-%d", phase, i)
		if err := c.Put(ctx, sess, "ph", last); err != nil {
			return fmt.Errorf("conformance: %s: %s-partition put %d: %w", e.Name, phase, i, err)
		}
		return nil
	}
	for i := 0; i < 15; i++ {
		if err := put("pre", i); err != nil {
			return err
		}
	}
	c.Shaper.Isolate(victim)
	for i := 0; i < 15; i++ {
		if err := put("cut", i); err != nil {
			return fmt.Errorf("%w (the victim sits outside every quorum; writes must not stall)", err)
		}
	}
	c.Shaper.Rejoin(victim)
	for i := 0; i < 15; i++ {
		if err := put("post", i); err != nil {
			return err
		}
	}
	if err := c.WaitExecuted(c.Pids(), c.AckedOps(), 30*time.Second); err != nil {
		return fmt.Errorf("%w (healed replica did not catch up)", err)
	}
	probe, err := c.Session(victim)
	if err != nil {
		return err
	}
	defer probe.Close()
	got, err := c.Get(ctx, probe, "ph")
	if err != nil {
		return fmt.Errorf("conformance: %s: consensus read at healed replica: %w", e.Name, err)
	}
	if got != last {
		return fmt.Errorf("conformance: %s: read at healed replica = %q, want %q", e.Name, got, last)
	}
	return c.Verify(e.TotalOrder)
}

// DurableRestart stops the quorum-external replica, keeps writing
// through the survivors, then boots a fresh replica on the same data
// directory and address: it must recover its state, observe the writes
// it missed and serve new consensus reads and writes. (The out-of-
// process SIGKILL variant lives in the cluster package's crash e2e
// test; this in-process variant is what makes the scenario runnable for
// any Durable engine.) Logs are verified without the total-order check:
// the restarted incarnation's observed log starts mid-stream, which the
// from-index-0 prefix comparison cannot represent.
func DurableRestart(e Engine) error {
	dir, err := os.MkdirTemp("", "conformance-"+e.Name+"-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	c, err := Start(e, Options{DataDir: dir})
	if err != nil {
		return err
	}
	defer c.Close()
	pids := c.Pids()
	//tempo:allowctx scenario is a self-contained check and bounds its own run
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	sess, err := c.Session()
	if err != nil {
		return err
	}
	defer sess.Close()
	for i := 0; i < 30; i++ {
		if err := c.Put(ctx, sess, fmt.Sprintf("dr-%d", i%5), fmt.Sprintf("dr-pre-%d", i)); err != nil {
			return fmt.Errorf("conformance: %s: pre-crash put %d: %w", e.Name, i, err)
		}
	}
	time.Sleep(300 * time.Millisecond) // let the victim's WAL sync past the acked writes
	c.Stop(victim)
	surv, err := c.Session(pids[0], pids[1])
	if err != nil {
		return err
	}
	defer surv.Close()
	var last string
	for i := 0; i < 20; i++ {
		last = fmt.Sprintf("dr-out-%d", i)
		if err := c.Put(ctx, surv, "dr-live", last); err != nil {
			return fmt.Errorf("conformance: %s: put with replica down: %w", e.Name, err)
		}
	}
	if err := c.Restart(victim); err != nil {
		return fmt.Errorf("conformance: %s: restart: %w", e.Name, err)
	}
	probe, err := c.Session(victim)
	if err != nil {
		return err
	}
	defer probe.Close()
	catchBy := time.Now().Add(20 * time.Second)
	for {
		//tempo:allowctx scenario is a self-contained check and bounds its own run
		pctx, pcancel := context.WithTimeout(context.Background(), time.Second)
		got, err := c.Get(pctx, probe, "dr-live")
		pcancel()
		if err == nil && got == last {
			break
		}
		if time.Now().After(catchBy) {
			return fmt.Errorf("conformance: %s: restarted replica reads %q (err %v), want %q", e.Name, got, err, last)
		}
	}
	if err := c.Put(ctx, probe, "dr-live", "dr-after-restart"); err != nil {
		return fmt.Errorf("conformance: %s: write through restarted replica: %w", e.Name, err)
	}
	got, err := c.Get(ctx, probe, "dr-live")
	if err != nil || got != "dr-after-restart" {
		return fmt.Errorf("conformance: %s: read-back through restarted replica = %q, %v", e.Name, got, err)
	}
	return c.Verify(false)
}

// Reconfig drains the quorum-external replica out of the cluster and
// admits a fresh successor on a new address and incarnation — a full
// dynamic-membership epoch change, mid-run, driven entirely through
// the wire config protocol (push, frontier query) against every
// engine. Liveness: writes must keep completing through every phase,
// a refresh-enabled session homed on the victim must re-route off the
// draining replica and return to the slot once the successor is
// active, and the successor must serve. Safety: the captured logs
// must still verify across the epoch change (without the total-order
// check — the successor's log starts mid-stream, like a restart).
func Reconfig(e Engine) error {
	c, err := Start(e, Options{})
	if err != nil {
		return err
	}
	defer c.Close()
	//tempo:allowctx scenario is a self-contained check and bounds its own run
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	const cfgTimeout = 5 * time.Second
	vicSite := c.Topo.Process(victim).Site

	// The session under test: homed on the victim, membership refresh
	// on. Draining replies and dial failures must push it off the slot;
	// an explicit refresh after the replacement must bring it back.
	addrs := make(map[ids.ProcessID]string, len(c.Addrs))
	for id, a := range c.Addrs {
		addrs[id] = a
	}
	sess, err := client.New(client.Config{
		Addrs:          addrs,
		Prefer:         victim,
		Refresh:        true,
		RequestTimeout: 10 * time.Second,
		RedialBackoff:  100 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer sess.Close()
	// put writes through sess, retrying draining rejections (the reply
	// every in-flight-at-drain or stale-routed submission legitimately
	// gets; each one also triggers the session's async refresh).
	put := func(key, val string) error {
		retryBy := time.Now().Add(15 * time.Second)
		for {
			err := c.Put(ctx, sess, key, val)
			if err == nil {
				return nil
			}
			if !errors.Is(err, client.ErrDraining) || time.Now().After(retryBy) {
				return err
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	for i := 0; i < 20; i++ {
		if err := put(fmt.Sprintf("rc-%d", i%4), fmt.Sprintf("rc-pre-%d", i)); err != nil {
			return fmt.Errorf("conformance: %s: pre-reconfig put %d: %w", e.Name, i, err)
		}
	}

	// Phase 1 — drain: announce Draining over the wire to every node
	// (including the victim), flush the victim's pipeline, announce
	// Left, stop the process. Writes must keep completing throughout.
	draining, err := c.baseCfg.WithStatus(vicSite, membership.Draining)
	if err != nil {
		return err
	}
	for id, a := range c.Addrs {
		if _, err := membership.Push(a, draining, cfgTimeout); err != nil {
			return fmt.Errorf("conformance: %s: push draining epoch to node %d: %w", e.Name, id, err)
		}
	}
	if err := c.node(victim).Drain(10 * time.Second); err != nil {
		return fmt.Errorf("conformance: %s: drain: %w", e.Name, err)
	}
	for i := 0; i < 10; i++ {
		if err := put("rc-drain", fmt.Sprintf("rc-mid-%d", i)); err != nil {
			return fmt.Errorf("conformance: %s: put during drain: %w", e.Name, err)
		}
	}
	left, err := draining.WithStatus(vicSite, membership.Left)
	if err != nil {
		return err
	}
	for id, a := range c.Addrs {
		if _, err := membership.Push(a, left, cfgTimeout); err != nil {
			return fmt.Errorf("conformance: %s: push left epoch to node %d: %w", e.Name, id, err)
		}
	}
	c.Stop(victim)

	// Phase 2 — admit the successor: a fresh replica takes over the
	// slot at a new address and incarnation. Announce Joining first
	// (the fence precedes the frontier measurement), then collect the
	// successor-safety floors from BOTH survivors over the wire.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	newAddr := ln.Addr().String()
	old, _ := left.Member(vicSite)
	joining, err := left.WithMember(membership.Member{
		Site:        vicSite,
		Name:        old.Name,
		Addr:        newAddr,
		Status:      membership.Joining,
		Incarnation: old.Incarnation + 1,
	})
	if err != nil {
		ln.Close()
		return err
	}
	var floorClock, floorSeq uint64
	for _, pid := range []ids.ProcessID{1, 2} {
		if _, err := membership.Push(c.Addrs[pid], joining, cfgTimeout); err != nil {
			ln.Close()
			return fmt.Errorf("conformance: %s: push joining epoch to node %d: %w", e.Name, pid, err)
		}
		clock, seq, ok, err := membership.QueryFrontier(c.Addrs[pid], victim, cfgTimeout)
		if err != nil || !ok {
			ln.Close()
			return fmt.Errorf("conformance: %s: frontier of %d from node %d: ok=%v err=%v", e.Name, victim, pid, ok, err)
		}
		floorClock, floorSeq = max(floorClock, clock), max(floorSeq, seq)
	}
	floorClock += membership.FrontierMargin
	floorSeq += membership.FrontierMargin

	rep := c.eng.New(victim, c.Topo)
	succAddrs := make(map[ids.ProcessID]string, len(c.Addrs))
	for id, a := range c.Addrs {
		succAddrs[id] = a
	}
	succAddrs[victim] = newAddr
	n := cluster.NewNode(victim, rep, succAddrs)
	n.SetShaper(c.Shaper)
	n.SetBatch(1, 0)
	n.SetExecObserver(c.rec.observer(victim))
	view, err := membership.NewView(joining, c.Topo)
	if err != nil {
		ln.Close()
		return err
	}
	n.SetMembership(view)
	n.SetJoinFloor(floorClock, floorSeq)
	if _, durable := rep.(proto.Durable); durable {
		if err := n.BootstrapFromPeers(); err != nil {
			ln.Close()
			return fmt.Errorf("conformance: %s: successor bootstrap: %w", e.Name, err)
		}
	}
	if err := n.StartListener(ln); err != nil {
		return fmt.Errorf("conformance: %s: start successor: %w", e.Name, err)
	}
	c.mu.Lock()
	c.nodes[victim] = n
	c.views[victim] = view
	c.mu.Unlock()
	active, err := joining.WithStatus(vicSite, membership.Active)
	if err != nil {
		return err
	}
	for pid, a := range map[ids.ProcessID]string{1: c.Addrs[1], 2: c.Addrs[2], victim: newAddr} {
		if _, err := membership.Push(a, active, cfgTimeout); err != nil {
			return fmt.Errorf("conformance: %s: push active epoch to node %d: %w", e.Name, pid, err)
		}
	}

	// Phase 3 — liveness across the epoch change: the successor must
	// serve, and the session under test must re-route back onto the
	// slot at its new address after a refresh.
	probe, err := client.New(client.Config{
		Addrs:          map[ids.ProcessID]string{victim: newAddr},
		RequestTimeout: 10 * time.Second,
		RedialBackoff:  100 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer probe.Close()
	serveBy := time.Now().Add(20 * time.Second)
	for i := 0; ; i++ {
		//tempo:allowctx scenario is a self-contained check and bounds its own run
		pctx, pcancel := context.WithTimeout(context.Background(), time.Second)
		err := c.Put(pctx, probe, "rc-succ", fmt.Sprintf("rc-succ-%d", i))
		pcancel()
		if err == nil {
			break
		}
		if time.Now().After(serveBy) {
			return fmt.Errorf("conformance: %s: successor still rejects writes: %w", e.Name, err)
		}
	}
	if installed, err := sess.RefreshConfig(); err != nil {
		return fmt.Errorf("conformance: %s: session refresh: %w", e.Name, err)
	} else if !installed && sess.Epoch() < active.Epoch {
		return fmt.Errorf("conformance: %s: session refresh stuck at epoch %d, want %d", e.Name, sess.Epoch(), active.Epoch)
	}
	if got := sess.Epoch(); got != active.Epoch {
		return fmt.Errorf("conformance: %s: session routes on epoch %d, want %d", e.Name, got, active.Epoch)
	}
	for i := 0; i < 10; i++ {
		if err := put("rc-post", fmt.Sprintf("rc-post-%d", i)); err != nil {
			return fmt.Errorf("conformance: %s: post-reconfig put %d: %w", e.Name, i, err)
		}
	}

	// The survivors hold the full history; the successor's incarnation
	// starts mid-stream, so logs verify without the total-order check.
	if err := c.WaitExecuted([]ids.ProcessID{1, 2}, c.AckedOps(), 30*time.Second); err != nil {
		return err
	}
	return c.Verify(false)
}
