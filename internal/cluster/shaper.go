package cluster

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tempo/internal/ids"
	"tempo/internal/proto"
)

// LinkPolicy shapes one direction of a link between two processes: a
// fixed propagation delay plus uniform jitter, an independent loss
// probability, and a serialization bandwidth. The zero value is an
// unshaped link (immediate in-process delivery).
type LinkPolicy struct {
	// Delay is the one-way propagation delay added to every message.
	Delay time.Duration
	// Jitter adds a uniform random extra delay in [0, Jitter).
	Jitter time.Duration
	// Loss drops each message independently with this probability.
	Loss float64
	// Bandwidth, when positive, is the link's serialization rate in
	// bytes per second: messages queue behind each other's transmission
	// time (proto.Message.Size) before the propagation delay applies.
	Bandwidth int64
}

func (p LinkPolicy) shaped() bool {
	return p.Delay > 0 || p.Jitter > 0 || p.Loss > 0 || p.Bandwidth > 0
}

// PolicyFunc returns the policy for one direction of a link. It must be
// safe for concurrent use and stable for a given (from, to) pair; the
// runtime consults it on the send path.
type PolicyFunc func(from, to ids.ProcessID) LinkPolicy

// DeliverFunc forwards a message that survived shaping to the real
// transport (a node's peer queue or a group's shared link).
type DeliverFunc func(from, to ids.ProcessID, msg proto.Message)

// maxShapedQueue bounds each directed link's in-flight queue; overflow
// drops (the protocol's liveness machinery retries), mirroring the
// bounded peer queues of the unshaped path.
const maxShapedQueue = 1 << 14

// Shaper emulates wide-area links on top of the cluster's real TCP
// transport: per-direction delay, jitter, loss, and bandwidth from a
// PolicyFunc, plus runtime-controllable partitions (Cut/Isolate/Heal)
// for fault injection. One Shaper instance can be shared by every node
// and group of an in-process deployment (its state is keyed by directed
// process pairs), or installed per server process in real deployments.
//
// Messages on a shaped link are released in FIFO order — a later
// message never overtakes an earlier one on the same directed link —
// matching TCP's in-order delivery. Unshaped, uncut links bypass the
// queue entirely and cost one function call.
type Shaper struct {
	policy PolicyFunc

	mu       sync.RWMutex
	cut      map[[2]ids.ProcessID]bool
	isolated map[ids.ProcessID]bool
	links    map[[2]ids.ProcessID]*shapedLink
	seed     int64

	done      chan struct{}
	closeOnce sync.Once
	closed    atomic.Bool

	dropped   atomic.Uint64
	delivered atomic.Uint64
}

// NewShaper builds a shaper; policy may be nil (no delay shaping — the
// shaper is then a pure partition injector).
func NewShaper(policy PolicyFunc) *Shaper {
	return &Shaper{
		policy:   policy,
		cut:      make(map[[2]ids.ProcessID]bool),
		isolated: make(map[ids.ProcessID]bool),
		links:    make(map[[2]ids.ProcessID]*shapedLink),
		seed:     rand.Int63(),
		done:     make(chan struct{}),
	}
}

// Send routes one message through the shaper: dropped when the link is
// cut or lossy, delivered inline when the link is unshaped, otherwise
// queued on the directed link and delivered by its goroutine after the
// policy's delay. Self-addressed messages always bypass shaping — the
// protocol model assumes instantaneous self-delivery, and a partition
// never severs a process from itself.
func (s *Shaper) Send(from, to ids.ProcessID, msg proto.Message, deliver DeliverFunc) {
	if from == to {
		deliver(from, to, msg)
		return
	}
	if s.closed.Load() {
		s.dropped.Add(1)
		return
	}
	if s.blocked(from, to) {
		s.dropped.Add(1)
		return
	}
	var p LinkPolicy
	if s.policy != nil {
		p = s.policy(from, to)
	}
	if !p.shaped() {
		s.delivered.Add(1)
		deliver(from, to, msg)
		return
	}
	s.link(from, to).push(s, p, from, to, msg, deliver)
}

func (s *Shaper) blocked(from, to ids.ProcessID) bool {
	s.mu.RLock()
	b := s.isolated[from] || s.isolated[to] || s.cut[[2]ids.ProcessID{from, to}]
	s.mu.RUnlock()
	return b
}

func (s *Shaper) link(from, to ids.ProcessID) *shapedLink {
	key := [2]ids.ProcessID{from, to}
	s.mu.RLock()
	l, ok := s.links[key]
	s.mu.RUnlock()
	if ok {
		return l
	}
	s.mu.Lock()
	l, ok = s.links[key]
	if !ok {
		l = &shapedLink{rng: rand.New(rand.NewSource(s.seed ^ int64(from)<<20 ^ int64(to)))}
		s.links[key] = l
	}
	s.mu.Unlock()
	return l
}

// CutOneWay severs the from→to direction only (an asymmetric partition).
func (s *Shaper) CutOneWay(from, to ids.ProcessID) {
	s.mu.Lock()
	s.cut[[2]ids.ProcessID{from, to}] = true
	s.mu.Unlock()
}

// Cut severs both directions of the link between a and b.
func (s *Shaper) Cut(a, b ids.ProcessID) {
	s.mu.Lock()
	s.cut[[2]ids.ProcessID{a, b}] = true
	s.cut[[2]ids.ProcessID{b, a}] = true
	s.mu.Unlock()
}

// Heal clears both directions of the cut between a and b (cuts only —
// an Isolate on either process still blocks the link).
func (s *Shaper) Heal(a, b ids.ProcessID) {
	s.mu.Lock()
	delete(s.cut, [2]ids.ProcessID{a, b})
	delete(s.cut, [2]ids.ProcessID{b, a})
	s.mu.Unlock()
}

// Isolate severs every link to and from p (the classic single-process
// partition). Self-delivery is unaffected.
func (s *Shaper) Isolate(p ids.ProcessID) {
	s.mu.Lock()
	s.isolated[p] = true
	s.mu.Unlock()
}

// Rejoin undoes Isolate(p); pairwise cuts involving p remain.
func (s *Shaper) Rejoin(p ids.ProcessID) {
	s.mu.Lock()
	delete(s.isolated, p)
	s.mu.Unlock()
}

// HealAll clears every cut and isolation.
func (s *Shaper) HealAll() {
	s.mu.Lock()
	clear(s.cut)
	clear(s.isolated)
	s.mu.Unlock()
}

// Dropped returns how many messages the shaper discarded (cuts,
// isolations, loss, queue overflow, or sends after Close).
func (s *Shaper) Dropped() uint64 { return s.dropped.Load() }

// Delivered returns how many messages passed the shaper.
func (s *Shaper) Delivered() uint64 { return s.delivered.Load() }

// ShaperState is a JSON-able snapshot of the shaper's runtime partition
// state and counters, served by the /chaos control endpoint.
type ShaperState struct {
	// Cuts lists the severed directed links as [from, to] pairs.
	Cuts [][2]ids.ProcessID `json:"cuts,omitempty"`
	// Isolated lists fully isolated processes.
	Isolated []ids.ProcessID `json:"isolated,omitempty"`
	// Dropped and Delivered mirror the shaper's counters.
	Dropped   uint64 `json:"dropped"`
	Delivered uint64 `json:"delivered"`
}

// State snapshots the current partition state.
func (s *Shaper) State() ShaperState {
	st := ShaperState{Dropped: s.dropped.Load(), Delivered: s.delivered.Load()}
	s.mu.RLock()
	for k := range s.cut {
		st.Cuts = append(st.Cuts, k)
	}
	for p := range s.isolated {
		st.Isolated = append(st.Isolated, p)
	}
	s.mu.RUnlock()
	sort.Slice(st.Cuts, func(i, j int) bool {
		if st.Cuts[i][0] != st.Cuts[j][0] {
			return st.Cuts[i][0] < st.Cuts[j][0]
		}
		return st.Cuts[i][1] < st.Cuts[j][1]
	})
	sort.Slice(st.Isolated, func(i, j int) bool { return st.Isolated[i] < st.Isolated[j] })
	return st
}

// Close stops every link goroutine; queued messages are discarded and
// later sends drop. Nodes and groups keep running (the shaper is an
// overlay, not the transport).
func (s *Shaper) Close() {
	s.closeOnce.Do(func() {
		s.closed.Store(true)
		close(s.done)
	})
}

// shapedLink is one directed process pair's delay queue: a FIFO of
// (releaseTime, message) drained by an on-demand goroutine.
type shapedLink struct {
	mu      sync.Mutex
	rng     *rand.Rand
	q       []shapedMsg
	head    int
	last    time.Time // release time of the newest queued message (FIFO clamp)
	busy    time.Time // when the serialization "wire" frees up (Bandwidth)
	running bool
}

type shapedMsg struct {
	at       time.Time
	from, to ids.ProcessID
	msg      proto.Message
	deliver  DeliverFunc
}

func (l *shapedLink) push(s *Shaper, p LinkPolicy, from, to ids.ProcessID, msg proto.Message, deliver DeliverFunc) {
	l.mu.Lock()
	if p.Loss > 0 && l.rng.Float64() < p.Loss {
		l.mu.Unlock()
		s.dropped.Add(1)
		return
	}
	if len(l.q)-l.head >= maxShapedQueue {
		l.mu.Unlock()
		s.dropped.Add(1)
		return
	}
	now := time.Now()
	release := now
	if p.Bandwidth > 0 {
		tx := time.Duration(float64(msg.Size()) / float64(p.Bandwidth) * float64(time.Second))
		if l.busy.Before(now) {
			l.busy = now
		}
		l.busy = l.busy.Add(tx)
		release = l.busy
	}
	release = release.Add(p.Delay)
	if p.Jitter > 0 {
		release = release.Add(time.Duration(l.rng.Int63n(int64(p.Jitter))))
	}
	// FIFO: a low-jitter message never overtakes an earlier high-jitter
	// one (TCP delivers in order; jitter stretches gaps, not ordering).
	if release.Before(l.last) {
		release = l.last
	}
	l.last = release
	l.q = append(l.q, shapedMsg{release, from, to, msg, deliver})
	kick := !l.running
	if kick {
		l.running = true
	}
	l.mu.Unlock()
	if kick {
		go l.run(s)
	}
}

func (l *shapedLink) run(s *Shaper) {
	timer := time.NewTimer(0)
	defer timer.Stop()
	for {
		l.mu.Lock()
		if l.head == len(l.q) {
			l.q = l.q[:0]
			l.head = 0
			l.running = false
			l.mu.Unlock()
			return
		}
		m := l.q[l.head]
		now := time.Now()
		if m.at.After(now) {
			l.mu.Unlock()
			timer.Reset(m.at.Sub(now))
			select {
			case <-timer.C:
			case <-s.done:
				l.mu.Lock()
				l.running = false
				l.mu.Unlock()
				return
			}
			continue
		}
		l.head++
		if l.head > 1024 && l.head*2 >= len(l.q) {
			l.q = append(l.q[:0], l.q[l.head:]...)
			l.head = 0
		}
		l.mu.Unlock()
		// A message in flight when the link is cut is lost, like a
		// packet on a severed wire.
		if s.blocked(m.from, m.to) {
			s.dropped.Add(1)
			continue
		}
		s.delivered.Add(1)
		m.deliver(m.from, m.to, m.msg)
	}
}
