package cluster_test

import (
	"testing"
	"time"

	"tempo/internal/cluster/conformancetest"
	"tempo/internal/command"
	"tempo/internal/engine"
	"tempo/internal/epaxos"
	"tempo/internal/fpaxos"
	"tempo/internal/ids"
	"tempo/internal/proto"
	"tempo/internal/tempo"
	"tempo/internal/topology"
)

// conformanceConfig arms every engine's recovery timers aggressively:
// the partition scenarios depend on resend/recovery to re-drive rounds
// that stalled while a replica was cut off.
func conformanceConfig() engine.Config {
	return engine.Config{
		Tempo:  tempo.Config{PromiseInterval: time.Millisecond, RecoveryTimeout: 250 * time.Millisecond},
		EPaxos: epaxos.Config{ResendInterval: 50 * time.Millisecond},
		FPaxos: fpaxos.Config{ResendInterval: 50 * time.Millisecond},
	}
}

// conformanceEngine adapts a registry engine name to the suite's Engine.
// EPaxos orders only conflicting commands, so it alone skips the
// total-order check.
func conformanceEngine(name string) conformancetest.Engine {
	return conformancetest.Engine{
		Name:       name,
		TotalOrder: name != engine.EPaxos,
		New: func(id ids.ProcessID, topo *topology.Topology) proto.Replica {
			rep, err := engine.New(name, id, topo, conformanceConfig())
			if err != nil {
				panic(err)
			}
			return rep
		},
	}
}

// TestConformance runs the shared conformance suite over every engine
// the registry knows: the acceptance gate for calling an engine
// runnable on the cluster stack.
func TestConformance(t *testing.T) {
	for _, name := range engine.Names() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			conformancetest.Run(t, conformanceEngine(name))
		})
	}
}

// brokenReplica is FPaxos with a sabotaged apply pipeline: DrainStable
// buffers execution-stable commands and releases adjacent pairs
// swapped, so one replica applies a different order than everyone else.
// Only called under the node's protocol lock, so pend needs no lock of
// its own.
type brokenReplica struct {
	*fpaxos.Process
	pend []proto.Stable
}

func (b *brokenReplica) DrainStable() []proto.Stable {
	b.pend = append(b.pend, b.Process.DrainStable()...)
	var out []proto.Stable
	for len(b.pend) >= 2 {
		out = append(out, b.pend[1], b.pend[0])
		b.pend = b.pend[2:]
	}
	return out
}

// TestConformanceCatchesReordering proves the suite has teeth: an
// engine whose replica 1 swaps adjacent stable commands must fail the
// linearizability scenario (its log diverges from the other replicas').
func TestConformanceCatchesReordering(t *testing.T) {
	t.Parallel()
	e := conformancetest.Engine{
		Name:       "broken-swap",
		TotalOrder: true,
		New: func(id ids.ProcessID, topo *topology.Topology) proto.Replica {
			p := fpaxos.New(id, topo, fpaxos.Config{ResendInterval: 50 * time.Millisecond})
			if id == 1 {
				return &brokenReplica{Process: p}
			}
			return p
		},
	}
	err := conformancetest.Linearizability(e)
	if err == nil {
		t.Fatal("conformance suite passed an engine that reorders execution on one replica")
	}
	t.Logf("suite caught the broken engine: %v", err)
}

// muteReplica is FPaxos that silently drops every client submission —
// a liveness hole rather than a safety one.
type muteReplica struct {
	*fpaxos.Process
}

func (m *muteReplica) Submit(cmd *command.Command) []proto.Action { return nil }

// TestConformanceCatchesMutedSubmit proves the suite also catches
// liveness failures: the deadline scenario's post-heal writes go
// through the mute replica, never commit, and fail the scenario.
func TestConformanceCatchesMutedSubmit(t *testing.T) {
	t.Parallel()
	e := conformancetest.Engine{
		Name:       "broken-mute",
		TotalOrder: true,
		New: func(id ids.ProcessID, topo *topology.Topology) proto.Replica {
			p := fpaxos.New(id, topo, fpaxos.Config{ResendInterval: 50 * time.Millisecond})
			if id == 3 {
				return &muteReplica{Process: p}
			}
			return p
		},
	}
	err := conformancetest.Deadline(e)
	if err == nil {
		t.Fatal("conformance suite passed an engine that drops submissions")
	}
	t.Logf("suite caught the mute engine: %v", err)
}
