package cluster

import (
	"bufio"
	"fmt"
	"log"
	"net"
	"time"

	"tempo/internal/ids"
	"tempo/internal/membership"
	"tempo/internal/proto"
)

// Dynamic membership at the runtime layer. A Node (or Group) given a
// membership.View via SetMembership resolves peer addresses through
// the view's current epoch instead of the static construction-time
// map, drops traffic from and to fenced slots (Dead/Left members,
// whose process ids may already be serving under a successor
// incarnation), and answers the configuration wire protocol
// (membership.ConfigMagic, auto-detected on the shared listen port
// like every other protocol). The epoch-change operations themselves
// — join, drain, replace — are orchestrated one level up by
// internal/psmr; this file provides their mechanisms: config
// fetch/push serving, the frontier query, the join floor, the
// pre-serve state bootstrap, and Drain.

// SetMembership installs a live configuration view. Call before
// Start; nodes without one run the static address map forever. All
// nodes of one process (every shard a psmr group hosts) and the group
// itself share a single view.
func (n *Node) SetMembership(v *membership.View) { n.view = v }

// Epoch returns the current configuration epoch (0 for a statically
// wired node).
func (n *Node) Epoch() uint64 {
	if n.view == nil {
		return 0
	}
	return n.view.Epoch()
}

// addrOf resolves a peer's current serving address: through the view
// when one is installed (so epoch installs re-route traffic without a
// restart), else the static map. "" means unroutable — fenced or
// unknown — and traffic toward the peer drops.
func (n *Node) addrOf(to ids.ProcessID) string {
	if n.view != nil {
		return n.view.State().Addrs[to]
	}
	return n.addrs[to]
}

// peerAddrs is the current address map (the view's epoch or the
// static one); the state-sync and config fan-out paths iterate it.
func (n *Node) peerAddrs() map[ids.ProcessID]string {
	if n.view != nil {
		return n.view.State().Addrs
	}
	return n.addrs
}

// fenced reports whether a peer's slot is Dead or Left: its traffic
// must drop in both directions, because the slot's process id may
// already be serving under a successor incarnation whose state the
// stale instance never saw.
func (n *Node) fenced(pid ids.ProcessID) bool {
	return n.view != nil && n.view.State().Fenced(pid)
}

// serveMembership answers one configuration-protocol request (see the
// wire protocol note in internal/membership). It is served even
// before the node is ready: joiners fetch configs and frontier
// answers from peers regardless of their recovery phase, exactly like
// the state-sync protocol.
func (n *Node) serveMembership(conn net.Conn, br *bufio.Reader) {
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	req, err := membership.ReadRequest(br)
	if err != nil {
		return
	}
	switch req.Kind {
	case membership.KindFetch, membership.KindPush:
		if n.view == nil {
			return // statically wired: no configuration to serve
		}
		if req.Kind == membership.KindPush {
			installPushed(n.view, req.Cfg, fmt.Sprintf("node %d", n.id))
		}
		membership.WriteConfigReply(conn, n.view.State().Config)
	case membership.KindFrontier:
		clock, seq, ok := n.Frontier(req.Subject)
		membership.WriteFrontierReply(conn, ok, clock, seq)
	}
}

// installPushed adopts a pushed config if newer, logging epoch
// transitions and rejections (shared by Node and Group serving).
func installPushed(v *membership.View, cfg *membership.Config, who string) {
	installed, err := v.Install(cfg)
	if err != nil {
		log.Printf("cluster: %s rejected config epoch %d: %v", who, cfg.Epoch, err)
		return
	}
	if installed {
		log.Printf("cluster: %s installed config epoch %d", who, cfg.Epoch)
	}
}

// Frontier returns the highest logical-clock value and command-
// sequence number this node's replica has observed from pid — the
// successor-safety query of the drain-less replace flow. ok is false
// when the engine cannot answer (no proto.Joiner).
func (n *Node) Frontier(pid ids.ProcessID) (clock, seq uint64, ok bool) {
	j, isJoiner := n.rep.(proto.Joiner)
	if !isJoiner {
		return 0, 0, false
	}
	n.mu.Lock()
	clock, seq = j.ObservedFrom(pid)
	n.mu.Unlock()
	return clock, seq, true
}

// SetJoinFloor installs the successor-safety floors for a replica
// taking over a slot: the max of the live shard peers' Frontier
// answers plus membership.FrontierMargin. Call before Start; the
// floors are applied (via the engine's max-in proto.Joiner.JoinFloor)
// after durable recovery and before the first protocol step, so
// reservations and floors compose.
func (n *Node) SetJoinFloor(clock, seq uint64) {
	n.joinClock, n.joinSeq = clock, seq
}

// applyJoinFloor raises the replica's clock and id floors; startCore
// calls it before the node goes ready.
func (n *Node) applyJoinFloor() {
	if n.joinClock == 0 && n.joinSeq == 0 {
		return
	}
	j, ok := n.rep.(proto.Joiner)
	if !ok {
		log.Printf("cluster: node %d has a join floor but engine %T implements no proto.Joiner", n.id, n.rep)
		return
	}
	n.mu.Lock()
	j.JoinFloor(n.joinClock, n.joinSeq)
	if n.joinSeq > n.lastSeq {
		n.lastSeq = n.joinSeq
	}
	// A durable joiner must not serve before the floor is covered by a
	// durable reservation (the floor jumped past the recovery-time
	// chunk); maybeReserveLocked takes the blocking path in that case.
	n.maybeReserveLocked()
	n.mu.Unlock()
}

// BootstrapFromPeers runs one state-catch-up round against the
// replica's shard peers before the node starts serving: the join
// flow's snapshot bootstrap. It reuses the durable runtime's sync
// protocol but needs no data directory — any proto.Durable engine can
// install a peer snapshot. Call after SetMembership/SetSyncPeers and
// before Start (durable nodes run the same round inside recovery
// anyway and need no separate call).
func (n *Node) BootstrapFromPeers() error {
	if _, ok := n.rep.(proto.Durable); !ok {
		return fmt.Errorf("cluster: engine %T cannot bootstrap (no proto.Durable)", n.rep)
	}
	n.syncFromPeers()
	return nil
}

// Drain moves the node to draining — dynamic membership's graceful
// leave. New client submissions are rejected with ErrCodeDraining
// (sessions fail over to serving replicas and refresh their
// configuration); commands already accepted finish, and once the
// pipeline empties the durable state is rotated into one
// self-contained snapshot, so the slot's next incarnation (or an
// operator archiving the directory) starts from a clean generation.
// An error reports an unflushed pipeline at timeout; the caller may
// still proceed to remove the node — the shard's surviving quorums
// recover whatever was in flight, as with a crash.
func (n *Node) Drain(timeout time.Duration) error {
	n.draining.Store(true)
	deadline := time.Now().Add(timeout)
	for {
		if n.pendingCmds() == 0 {
			n.execMu.Lock()
			idle := len(n.execQ) == 0
			n.execMu.Unlock()
			if idle {
				break
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster: node %d drain timed out with %d commands pending", n.id, n.pendingCmds())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if n.dur != nil {
		if err := n.dur.rotate(); err != nil {
			return fmt.Errorf("cluster: node %d drain-time snapshot: %w", n.id, err)
		}
	}
	return nil
}

// Draining reports whether Drain has begun.
func (n *Node) Draining() bool { return n.draining.Load() }

// LinkState is one peer link's health snapshot, exposed per peer by
// the metrics endpoint alongside the membership epoch.
type LinkState struct {
	// LastRecvUnixMS is when traffic from the peer last arrived at this
	// node (Unix milliseconds; 0 means never).
	LastRecvUnixMS int64 `json:"last_recv_unix_ms"`
	// QueueDepth is the outbound queue depth toward the peer on
	// node-owned links (group-hosted nodes report 0; see Group.Links).
	QueueDepth int `json:"queue_depth"`
}

// noteRecv stamps a peer's inbound-liveness clock — once per
// delivered frame, not per message.
func (n *Node) noteRecv(from ids.ProcessID) {
	now := time.Now().UnixMilli()
	n.linkMu.Lock()
	n.lastRecv[from] = now
	n.linkMu.Unlock()
}

// Links snapshots per-peer link state (inbound liveness, outbound
// queue depth).
func (n *Node) Links() map[ids.ProcessID]LinkState {
	out := make(map[ids.ProcessID]LinkState)
	n.linkMu.Lock()
	for pid, t := range n.lastRecv {
		out[pid] = LinkState{LastRecvUnixMS: t}
	}
	n.linkMu.Unlock()
	n.outMu.Lock()
	for pid, ch := range n.out {
		ls := out[pid]
		ls.QueueDepth = len(ch)
		out[pid] = ls
	}
	n.outMu.Unlock()
	return out
}

// --- Group side ---

// SetMembership installs the configuration view shared by the group
// and its hosted nodes. Call before StartListener (and SetMembership
// on each hosted node with the same view).
func (g *Group) SetMembership(v *membership.View) { g.view = v }

// Epoch returns the group's current configuration epoch (0 when
// statically wired).
func (g *Group) Epoch() uint64 {
	if g.view == nil {
		return 0
	}
	return g.view.Epoch()
}

// addrOf resolves a destination's current site address through the
// view's epoch (falling back to the static map).
func (g *Group) addrOf(to ids.ProcessID) string {
	if g.view != nil {
		return g.view.State().Addrs[to]
	}
	return g.addrs[to]
}

// fenced mirrors Node.fenced for group links.
func (g *Group) fenced(pid ids.ProcessID) bool {
	return g.view != nil && g.view.State().Fenced(pid)
}

// shardOfPid resolves a process's shard through the view (falling
// back to the static map) — sync and frontier requests route by it.
func (g *Group) shardOfPid(pid ids.ProcessID) (ids.ShardID, bool) {
	if g.view != nil {
		s, ok := g.view.State().ShardOf[pid]
		return s, ok
	}
	s, ok := g.shardOf[pid]
	return s, ok
}

// serveMembership answers configuration requests on the shared
// listener; frontier queries route to the hosted node replicating the
// subject's shard.
func (g *Group) serveMembership(conn net.Conn, br *bufio.Reader) {
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	req, err := membership.ReadRequest(br)
	if err != nil {
		return
	}
	switch req.Kind {
	case membership.KindFetch, membership.KindPush:
		if g.view == nil {
			return
		}
		if req.Kind == membership.KindPush {
			installPushed(g.view, req.Cfg, "group "+g.Addr())
		}
		membership.WriteConfigReply(conn, g.view.State().Config)
	case membership.KindFrontier:
		var n *Node
		if shard, ok := g.shardOfPid(req.Subject); ok {
			n = g.byShard[shard]
		}
		if n == nil {
			membership.WriteFrontierReply(conn, false, 0, 0)
			return
		}
		clock, seq, ok := n.Frontier(req.Subject)
		membership.WriteFrontierReply(conn, ok, clock, seq)
	}
}

// Links reports the group's outbound queue depth per remote address.
func (g *Group) Links() map[string]int {
	out := make(map[string]int)
	g.outMu.Lock()
	for addr, ch := range g.out {
		out[addr] = len(ch)
	}
	g.outMu.Unlock()
	return out
}
