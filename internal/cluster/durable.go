package cluster

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"log"
	"net"
	"sync/atomic"
	"time"

	"tempo/internal/command"
	"tempo/internal/ids"
	"tempo/internal/proto"
	"tempo/internal/wal"
)

// Durable node mode (tempo-server -data-dir). A node configured with a
// data directory survives SIGKILL:
//
//   - The executor goroutine appends every applied command (final
//     timestamp, shard, payload) to a CRC-checked write-ahead log,
//     fsync-batched so the apply hot path never waits on the disk, and
//     periodically snapshots the kvstore to bound the log's length
//     (truncate-after-snapshot, see internal/wal).
//   - The protocol's logical clock and command-id sequence are reserved
//     ahead in chunks (RecMark records): a restart resumes above any
//     value the previous incarnation could have promised or minted, so
//     no timestamp promise is ever re-issued and no Dot reused.
//   - On restart the node replays snapshot+log into the fresh replica,
//     then asks each peer (the sync protocol below, auto-detected on the
//     shared listen port) for a newer state snapshot — covering both the
//     commands executed while the node was down and any acknowledged
//     writes an unsynced WAL tail lost. Commands committed after the
//     freshest peer snapshot arrive through the protocol's own liveness
//     machinery (promise gossip + MCommitRequest), because peers cannot
//     garbage-collect a command until this node's executed watermark
//     passes it.
//
// What is deliberately NOT persisted: per-command acceptor state
// (proposals, consensus accepts). A restarting replica therefore behaves
// like a crashed one for commands that were in flight — the surviving
// replicas recover them (Algorithm 4) — which keeps the paper's
// crash-failure envelope: at most f replicas simultaneously down or
// restarting.

// DurableConfig configures persistence for a Node. See SetDurable.
type DurableConfig struct {
	// Dir is the node's data directory (created if missing). A restart
	// with the same directory, id and peer set resumes the replica.
	Dir string
	// SyncInterval batches WAL fsyncs (default 2ms). 0 fsyncs every
	// append before the client sees the result: strict local durability
	// at a per-apply fsync cost.
	SyncInterval time.Duration
	// SnapshotEvery rotates the log after this many applied commands
	// (default 8192). Smaller values shorten replay, larger ones shrink
	// snapshot write amplification.
	SnapshotEvery int
	// NoPeerSync skips the startup state-catch-up round (tests only).
	NoPeerSync bool
	// FsyncDelay is the wal.Options.FsyncDelay fault-injection hook:
	// every WAL fsync of this node sleeps this long first (the chaos
	// profiles' "slow-fsync site").
	FsyncDelay time.Duration
}

// Reservation chunking: RecMark records reserve [current, current+chunk)
// for the clock and the id sequence. The async refill fires margin
// before the reserved range runs out, so the synchronous fallback (a
// blocking fsync under the protocol lock) is only taken when the clock
// jumps past a whole chunk at once — a large MConsensus/commit bump.
const (
	reserveChunk  = 1 << 19
	reserveMargin = reserveChunk / 2
)

// defaultSyncInterval is the WAL fsync batching window when
// DurableConfig.SyncInterval is zero-valued via flag defaults.
const defaultSyncInterval = 2 * time.Millisecond

// DefaultSnapshotEvery is the default apply count between kvstore
// snapshots.
const DefaultSnapshotEvery = 8192

// durability is the per-node persistence state.
type durability struct {
	cfg DurableConfig
	log *wal.Log
	rep proto.Durable

	// Reserved watermarks (durable): the next incarnation restarts at
	// these. reserving gates the async refill goroutine.
	reservedClock atomic.Uint64
	reservedSeq   atomic.Uint64
	reserving     atomic.Bool

	// Executor-side state (single goroutine, no locking needed).
	sinceSnap int
	appendBuf []byte
	errLogged bool
}

// SyncMagic prefixes state-catch-up connections from a restarting peer
// (see the sync protocol in durable.go). Like the other magics, the
// leading 0xFF cannot begin a gob stream.
var SyncMagic = [4]byte{0xFF, 'T', 'Y', 1}

// SetDurable enables persistence. Call before Start; the replica must
// implement proto.Durable and proto.DeferredApplier (tempo.Process
// does). Recovery — snapshot load, WAL replay, reservation restore —
// runs inside Start/StartListener before the node serves.
func (n *Node) SetDurable(cfg DurableConfig) error {
	if cfg.Dir == "" {
		return fmt.Errorf("cluster: durable node needs a data directory")
	}
	if _, ok := n.rep.(proto.Durable); !ok {
		return fmt.Errorf("cluster: replica %T does not implement proto.Durable", n.rep)
	}
	if _, ok := n.rep.(proto.DeferredApplier); !ok {
		return fmt.Errorf("cluster: durable mode needs a deferred-applying replica, %T is not", n.rep)
	}
	if cfg.SyncInterval == 0 {
		cfg.SyncInterval = defaultSyncInterval
	}
	if cfg.SyncInterval < 0 {
		cfg.SyncInterval = 0 // explicit "fsync every append"
	}
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = DefaultSnapshotEvery
	}
	n.dur = &durability{cfg: cfg, rep: n.rep.(proto.Durable)}
	return nil
}

// recoverDurable loads the newest snapshot, replays the WAL through the
// replica's idempotent apply path, restores the protocol watermarks,
// catches up from peers, and writes the initial reservations. Called
// from StartListener before any goroutine serves.
func (n *Node) recoverDurable() error {
	d := n.dur
	l, err := wal.Open(d.cfg.Dir, wal.Options{SyncInterval: d.cfg.SyncInterval, FsyncDelay: d.cfg.FsyncDelay})
	if err != nil {
		return err
	}
	d.log = l
	snap, err := l.Snapshot()
	if err != nil {
		return err
	}
	if snap != nil {
		if _, _, err := d.rep.RestoreFrom(bytes.NewReader(snap)); err != nil {
			return fmt.Errorf("cluster: restore snapshot gen %d: %w", l.Gen(), err)
		}
	}
	var clockHi, seqHi uint64
	var wmTS uint64
	var wmID ids.Dot
	applier := n.rep.(proto.DeferredApplier)
	replayed := 0
	if err := l.Replay(func(typ byte, body []byte) error {
		switch typ {
		case wal.RecApply:
			ts, _, cmd, err := decodeApplyRec(body)
			if err != nil {
				return err
			}
			applier.ApplyStable(cmd, ts)
			wmTS, wmID = ts, cmd.ID
			replayed++
		case wal.RecMark:
			c, s, err := decodeMarkRec(body)
			if err != nil {
				return err
			}
			clockHi, seqHi = max(clockHi, c), max(seqHi, s)
		}
		return nil
	}); err != nil {
		return fmt.Errorf("cluster: wal replay: %w", err)
	}
	// The snapshot's own watermark may be ahead of the replayed tail
	// (empty or truncated log); Restore takes maxes, so feeding both is
	// safe.
	if sTS, sID := d.rep.AppliedWM(); wmTS == 0 || tsPointLess(wmTS, wmID, sTS, sID) {
		wmTS, wmID = sTS, sID
	}
	d.rep.Restore(clockHi, seqHi, wmTS, wmID)
	if replayed > 0 || snap != nil {
		log.Printf("cluster: node %d recovered local state (gen %d, %d log records, wm ts=%d)", n.id, l.Gen(), replayed, wmTS)
	}
	if !d.cfg.NoPeerSync {
		n.syncFromPeers()
	}
	// Rotate so the recovered+synced state is one self-contained
	// snapshot, seeding the fresh log with the first reservation chunks:
	// serving before the reservation is durable could re-promise
	// pre-crash timestamps. The replica's clock/seq were just restored
	// to the old reservations, so reserving above the current values
	// covers both. Rotate fsyncs the seed record before the snapshot
	// rename, so no crash window exists in which the authoritative
	// generation lacks the marks.
	clock, seq := d.rep.Clock()+reserveChunk, seqHi+reserveChunk
	if err := d.log.Rotate(d.rep.SnapshotTo, d.markRecord(clock, seq)); err != nil {
		return err
	}
	d.publishReservation(clock, seq)
	return nil
}

// rotate snapshots the state machine into the next generation, seeding
// the new log with the current reservations: the old generation's log —
// which held every RecMark so far — is on its way out, a restart
// replays only the current generation, and the seed is durable before
// the snapshot rename makes that generation authoritative.
func (d *durability) rotate() error {
	clock, seq := d.reservedClock.Load(), d.reservedSeq.Load()
	return d.log.Rotate(d.rep.SnapshotTo, d.markRecord(clock, seq))
}

// markRecord encodes a RecMark reservation record.
func (d *durability) markRecord(clock, seq uint64) wal.Record {
	body := proto.AppendUvarint(nil, clock)
	body = proto.AppendUvarint(body, seq)
	return wal.Record{Type: wal.RecMark, Body: body}
}

// publishReservation raises the in-memory reservation watermarks.
func (d *durability) publishReservation(clock, seq uint64) {
	if clock > d.reservedClock.Load() {
		d.reservedClock.Store(clock)
	}
	if seq > d.reservedSeq.Load() {
		d.reservedSeq.Store(seq)
	}
}

// reserve makes a (clock, seq) reservation durable and publishes it.
func (d *durability) reserve(clock, seq uint64) error {
	rec := d.markRecord(clock, seq)
	if err := d.log.AppendSync(rec.Type, rec.Body); err != nil {
		return err
	}
	d.publishReservation(clock, seq)
	return nil
}

// maybeReserveLocked keeps the durable reservations ahead of the live
// clock and id sequence. Callers hold n.mu (clock reads require it). The
// steady-state cost is two atomic loads; the refill itself runs on a
// spawned goroutine, except when the clock jumped past the whole
// reserved range at once — then the reservation must be durable before
// the next step could promise a timestamp above it, so the fsync happens
// inline (rare: a large commit-driven bump).
func (n *Node) maybeReserveLocked() {
	d := n.dur
	if d == nil {
		return
	}
	clock := d.rep.Clock()
	seq := n.lastSeq
	rc, rs := d.reservedClock.Load(), d.reservedSeq.Load()
	if clock >= rc || seq >= rs {
		//tempo:allowblock clock jumped past the reserved range; the reservation must be durable before the next step can promise above it
		if err := d.reserve(clock+reserveChunk, seq+reserveChunk); err != nil {
			log.Printf("cluster: node %d reservation failed: %v", n.id, err)
		}
		return
	}
	if clock+reserveMargin >= rc || seq+reserveMargin >= rs {
		if d.reserving.CompareAndSwap(false, true) {
			go func(clock, seq uint64) {
				defer d.reserving.Store(false)
				if err := d.reserve(clock+reserveChunk, seq+reserveChunk); err != nil {
					log.Printf("cluster: node %d reservation failed: %v", n.id, err)
				}
			}(clock, seq)
		}
	}
}

// recordApply appends one applied command to the WAL. Runs on the
// executor goroutine, before the waiters see the result: with a zero
// sync interval the record is durable before the client is answered;
// with a batching interval the client may briefly outrun the local disk
// — the peer-sync recovery path covers that tail, as long as at most f
// replicas fail together (the paper's failure envelope).
func (d *durability) recordApply(st proto.Stable) {
	body := d.appendBuf[:0]
	body = proto.AppendUvarint(body, st.TS)
	body = proto.AppendUvarint(body, uint64(st.Shard))
	body = command.AppendCommand(body, st.Cmd)
	d.appendBuf = body
	d.log.Append(wal.RecApply, body)
	// A sticky WAL error (disk full, I/O failure) turns appends into
	// no-ops; the node deliberately keeps serving — peer replication
	// still covers its state — but the operator must hear about the
	// lost local durability, once.
	if err := d.log.Err(); err != nil && !d.errLogged {
		d.errLogged = true
		log.Printf("cluster: WAL failed, node continues WITHOUT local durability (restart will rely on peer sync): %v", err)
	}
	d.sinceSnap++
	if d.sinceSnap >= d.cfg.SnapshotEvery {
		d.sinceSnap = 0
		if err := d.rotate(); err != nil {
			log.Printf("cluster: snapshot rotation failed: %v", err)
		}
	}
}

func decodeApplyRec(b []byte) (ts uint64, shard ids.ShardID, cmd *command.Command, err error) {
	if ts, b, err = proto.ReadUvarint(b); err != nil {
		return 0, 0, nil, err
	}
	var s uint64
	if s, b, err = proto.ReadUvarint(b); err != nil {
		return 0, 0, nil, err
	}
	if cmd, _, err = command.DecodeCommand(b); err != nil || cmd == nil {
		return 0, 0, nil, proto.ErrCorrupt
	}
	return ts, ids.ShardID(s), cmd, nil
}

func decodeMarkRec(b []byte) (clock, seq uint64, err error) {
	if clock, b, err = proto.ReadUvarint(b); err != nil {
		return 0, 0, err
	}
	if seq, _, err = proto.ReadUvarint(b); err != nil {
		return 0, 0, err
	}
	return clock, seq, nil
}

// tsPointLess orders (ts, id) execution points.
func tsPointLess(aTS uint64, aID ids.Dot, bTS uint64, bID ids.Dot) bool {
	if aTS != bTS {
		return aTS < bTS
	}
	return aID.Less(bID)
}

// --- state catch-up (sync) protocol ---
//
// One frame each way on a fresh connection to the shared listen port:
//
//	request:  SyncMagic || frame( wmTS, wmID.Source, wmID.Seq )
//	reply:    frame( 0 )                      — requester is up to date
//	          frame( 1 || snapshot bytes )    — kvstore snapshot (embeds
//	                                            the replier's applied WM)
//
// Any node can answer (the snapshot is read under the store's own lock,
// concurrent with its executor); only restarting durable nodes ask.

// syncFromPeers asks every peer replicating this node's shard for a
// state snapshot newer than ours, installing each improvement before
// asking the next peer (so at most one peer's full snapshot is
// typically transferred, and later peers are filtered against the
// improved watermark). Unreachable peers are skipped: on a cold cluster
// start nobody is ahead, and a lone restart only needs one live peer to
// heal the WAL's unsynced tail. The peer set defaults to every address
// (the single-shard deployments) and is restricted by SetSyncPeers in
// sharded ones, where other shards' processes hold a different state
// machine. It needs only proto.Durable, not a data directory: the join
// flow bootstraps fresh (possibly non-durable) replicas through the
// same round (BootstrapFromPeers), and addresses resolve through the
// membership view when one is installed.
func (n *Node) syncFromPeers() {
	rep, isDurable := n.rep.(proto.Durable)
	if !isDurable {
		return
	}
	caughtUp := false
	addrs := n.peerAddrs()
	peers := n.syncPeers
	if peers == nil {
		for pid := range addrs {
			peers = append(peers, pid)
		}
	}
	for _, pid := range peers {
		addr, ok := addrs[pid]
		if pid == n.id || !ok {
			continue
		}
		myTS, myID := rep.AppliedWM()
		snap, err := fetchPeerSnapshot(addr, n.id, myTS, myID, n.frameLimit)
		if err != nil {
			// Dial failures are the normal cold-start case; anything
			// else (protocol error, oversized snapshot) means a peer
			// tried to answer and failed — the operator must know the
			// node may be serving without the peers' newer state.
			var opErr *net.OpError
			if !errors.As(err, &opErr) {
				log.Printf("cluster: node %d state sync with %d failed (serving may lack its newer state): %v", n.id, pid, err)
			}
			continue
		}
		if snap == nil {
			continue
		}
		if _, _, err := rep.RestoreFrom(bytes.NewReader(snap)); err != nil {
			log.Printf("cluster: node %d peer snapshot from %d install failed: %v", n.id, pid, err)
			continue
		}
		caughtUp = true
	}
	if caughtUp {
		ts, id := rep.AppliedWM()
		log.Printf("cluster: node %d caught up from peers (wm ts=%d id=%v)", n.id, ts, id)
	}
}

// fetchPeerSnapshot performs one sync round trip. A nil result with nil
// error means the peer had nothing newer. from identifies the
// requesting process so a group listener can route the request to its
// local replica of the requester's shard.
func fetchPeerSnapshot(addr string, from ids.ProcessID, wmTS uint64, wmID ids.Dot, limit uint64) ([]byte, error) {
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	// The deadline bounds a peer that accepted the connection but cannot
	// answer (e.g. bound-but-not-yet-recovering during a simultaneous
	// cold start); an unreachable peer already failed the dial.
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	var req []byte
	req = append(req, SyncMagic[:]...)
	body := proto.AppendUvarint(nil, wmTS)
	body = proto.AppendUvarint(body, uint64(wmID.Source))
	body = proto.AppendUvarint(body, wmID.Seq)
	body = proto.AppendUvarint(body, uint64(from))
	req = proto.AppendUvarint(req, uint64(len(body)))
	req = append(req, body...)
	if _, err := conn.Write(req); err != nil {
		return nil, err
	}
	br := bufio.NewReader(conn)
	var buf []byte
	reply, err := ReadFrame(br, limit, &buf)
	if err != nil {
		return nil, err
	}
	if len(reply) == 0 {
		return nil, proto.ErrCorrupt
	}
	if reply[0] == 0 {
		return nil, nil
	}
	return append([]byte(nil), reply[1:]...), nil
}

// syncRequest is one decoded state-catch-up request: the requester's
// applied watermark plus (in sharded deployments) the requesting
// process, which identifies the shard whose state is wanted.
//
//tempo:wire encode=- decode=readSyncRequest
type syncRequest struct {
	TS   uint64
	ID   ids.Dot
	From ids.ProcessID // 0 when sent by an old single-shard binary
}

// readSyncRequest reads and decodes the one request frame of a sync
// connection. The From field is absent in frames from old binaries.
func readSyncRequest(conn net.Conn, br *bufio.Reader, limit uint64) (syncRequest, bool) {
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	var buf []byte
	body, err := ReadFrame(br, limit, &buf)
	if err != nil {
		return syncRequest{}, false
	}
	var r syncRequest
	var src, seq uint64
	if r.TS, body, err = proto.ReadUvarint(body); err != nil {
		return r, false
	}
	if src, body, err = proto.ReadUvarint(body); err != nil {
		return r, false
	}
	if seq, body, err = proto.ReadUvarint(body); err != nil {
		return r, false
	}
	r.ID = ids.Dot{Source: ids.ProcessID(src), Seq: seq}
	if len(body) > 0 { // optional requester id (sharded deployments)
		var from uint64
		if from, _, err = proto.ReadUvarint(body); err != nil {
			return r, false
		}
		r.From = ids.ProcessID(from)
	}
	return r, true
}

// serveSync answers one state-catch-up request (see the protocol note
// above).
func (n *Node) serveSync(conn net.Conn, br *bufio.Reader) {
	req, ok := readSyncRequest(conn, br, n.frameLimit)
	if !ok {
		return
	}
	n.answerSync(conn, req)
}

// answerSync ships a snapshot if ours is newer than the requester's
// watermark; ours is embedded in the snapshot itself.
func (n *Node) answerSync(conn net.Conn, req syncRequest) {
	d, ok := n.rep.(proto.Durable)
	if !ok {
		return
	}
	myTS, myID := d.AppliedWM()
	if !tsPointLess(req.TS, req.ID, myTS, myID) {
		conn.Write([]byte{1, 0}) // frame(0): up to date
		return
	}
	var snap bytes.Buffer
	snap.WriteByte(1)
	if err := d.SnapshotTo(&snap); err != nil {
		return
	}
	if uint64(snap.Len()) > n.frameLimit {
		// The requester would reject the frame anyway; dropping the
		// connection (instead of lying "up to date") surfaces the
		// failure on its side. Chunked state transfer is the known
		// missing piece for >64MB stores.
		log.Printf("cluster: node %d state snapshot (%d bytes) exceeds the sync frame limit; restarting peer cannot catch up from us", n.id, snap.Len())
		return
	}
	out := proto.AppendUvarint(nil, uint64(snap.Len()))
	out = append(out, snap.Bytes()...)
	conn.Write(out)
}
