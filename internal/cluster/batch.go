package cluster

import (
	"sync"
	"time"

	"tempo/internal/command"
	"tempo/internal/ids"
)

// opSharder maps an operation list to the single shard owning all of its
// keys (tempo.Process implements it). The batcher only coalesces
// single-shard requests: merging ops of different shards would turn them
// into a multi-shard command, changing quorum cost and result shape.
type opSharder interface {
	OpsShard(ops []command.Op) (ids.ShardID, bool)
}

// submitBatcher coalesces client submissions into multi-op commands.
// Requests arriving within a flush window accumulate, per target shard,
// until the window closes or the batch reaches maxOps operations; one
// Tempo command (one consensus round, one kvstore apply) then carries
// all of them, and each request's waiter is completed with its own
// segment of the per-op results.
type submitBatcher struct {
	n       *Node
	sharder opSharder
	maxOps  int
	window  time.Duration
	// pace, when non-zero, is the minimum interval between two flushes
	// of one bucket — a per-shard bound on the consensus round rate.
	// Each flush then carries at most maxOps operations (the remainder
	// stays queued for the next paced round), so a shard's admission is
	// capped at maxOps/pace per gateway: overload amortizes into
	// full-size rounds at a fixed rate instead of a round per arrival
	// burst, bounding round fan-out and executor backlog per shard at a
	// latency cost of up to pace per request. Zero (the default)
	// preserves plain group commit: flush on size or window, whole
	// bucket at once.
	pace time.Duration

	//tempo:guard
	mu      sync.Mutex
	closed  bool
	buckets map[ids.ShardID]*batchBucket
}

// batchEntry is one client request waiting in a bucket.
type batchEntry struct {
	w   *waiter
	ops []command.Op
}

type batchBucket struct {
	entries []batchEntry
	nops    int
	// lastFlush and timerSet drive paced flushing; lastFlush is zero
	// until the bucket's first flush.
	lastFlush time.Time
	timerSet  bool
}

func newSubmitBatcher(n *Node, sharder opSharder, maxOps int, window time.Duration, pace time.Duration) *submitBatcher {
	return &submitBatcher{
		n:       n,
		sharder: sharder,
		maxOps:  maxOps,
		window:  window,
		pace:    pace,
		buckets: make(map[ids.ShardID]*batchBucket),
	}
}

// add enqueues one request for a shard's bucket. A bucket reaching
// maxOps flushes immediately on the caller's goroutine; so does any
// arrival while the node has no command in flight — with nothing to
// coalesce against, holding the bucket the full window would tax serial
// clients for no batching gain (group commit: batch under concurrency,
// stay prompt when idle; the idle check covers the whole bucket, so
// requests queued behind a since-completed command ride out too).
// Otherwise the timer armed when the bucket went non-empty flushes one
// window later. A stale timer firing after a size-triggered flush just
// flushes the next batch early — smaller batch, never a stall.
func (b *submitBatcher) add(shard ids.ShardID, w *waiter, ops []command.Op) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		if b.n.claimOne(w) {
			w.fail(command.WireError{Code: command.ErrCodeShutdown, Msg: "node shutting down"})
		}
		return
	}
	bk := b.buckets[shard]
	if bk == nil {
		bk = &batchBucket{}
		b.buckets[shard] = bk
	}
	bk.entries = append(bk.entries, batchEntry{w: w, ops: ops})
	bk.nops += len(ops)
	now := time.Now()
	if (bk.nops >= b.maxOps || b.n.pendingCmds() == 0) && b.paceAllowsLocked(bk, now) {
		entries := b.takeLocked(bk, now)
		b.mu.Unlock()
		b.flushEntries(entries)
		return
	}
	b.armTimerLocked(shard, bk, now)
	b.mu.Unlock()
}

// paceAllowsLocked reports whether a bucket may flush now under the
// pacing policy. The caller holds b.mu.
func (b *submitBatcher) paceAllowsLocked(bk *batchBucket, now time.Time) bool {
	return b.pace == 0 || now.Sub(bk.lastFlush) >= b.pace
}

// takeLocked removes the next flush's entries from the bucket: the
// whole bucket unpaced, or up to maxOps operations (at least one entry)
// paced, with the remainder left for the next round. The caller holds
// b.mu and is responsible for arming a timer if a remainder stays.
func (b *submitBatcher) takeLocked(bk *batchBucket, now time.Time) []batchEntry {
	bk.lastFlush = now
	if b.pace == 0 {
		entries := bk.entries
		bk.entries, bk.nops = nil, 0
		return entries
	}
	n, ops := 0, 0
	for n < len(bk.entries) && (n == 0 || ops+len(bk.entries[n].ops) <= b.maxOps) {
		ops += len(bk.entries[n].ops)
		n++
	}
	entries := bk.entries[:n:n]
	bk.entries = append([]batchEntry(nil), bk.entries[n:]...)
	bk.nops -= ops
	return entries
}

// armTimerLocked schedules the next timer flush for a non-empty bucket:
// one window out, or when the pace next allows, whichever is later. The
// caller holds b.mu.
func (b *submitBatcher) armTimerLocked(shard ids.ShardID, bk *batchBucket, now time.Time) {
	if bk.timerSet || len(bk.entries) == 0 {
		return
	}
	bk.timerSet = true
	delay := b.window
	if b.pace > 0 {
		if until := bk.lastFlush.Add(b.pace).Sub(now); until > delay {
			delay = until
		}
	}
	time.AfterFunc(delay, func() { b.flushShard(shard) })
}

// flushShard flushes a shard's bucket (the timer path): everything it
// holds unpaced, the next maxOps-bounded round paced — re-arming for
// the round after when a remainder stays queued.
func (b *submitBatcher) flushShard(shard ids.ShardID) {
	b.mu.Lock()
	bk := b.buckets[shard]
	var entries []batchEntry
	if bk != nil {
		bk.timerSet = false
		now := time.Now()
		if len(bk.entries) > 0 {
			if b.paceAllowsLocked(bk, now) {
				entries = b.takeLocked(bk, now)
			}
			b.armTimerLocked(shard, bk, now)
		}
	}
	b.mu.Unlock()
	b.flushEntries(entries)
}

// flushEntries submits one batch as a single command. Requests whose
// deadline already passed while queued are failed with a timeout
// instead of being submitted — each entry succeeds or fails on its own,
// never dragging its batchmates along. Entry boundaries become value
// segments: ops stay contiguous per request, so the executed command's
// per-op results split back exactly.
func (b *submitBatcher) flushEntries(entries []batchEntry) {
	if len(entries) == 0 {
		return
	}
	now := time.Now()
	var expired []*waiter
	members := make([]*waiter, 0, len(entries))
	total := 0
	for _, e := range entries {
		total += len(e.ops)
	}
	ops := make([]command.Op, 0, total)
	for _, e := range entries {
		if !e.w.deadline.IsZero() && now.After(e.w.deadline) {
			if b.n.claimOne(e.w) {
				expired = append(expired, e.w)
			}
			continue
		}
		e.w.off, e.w.nvals = len(ops), len(e.ops)
		members = append(members, e.w)
		ops = append(ops, e.ops...)
	}
	for _, w := range expired {
		w.fail(command.WireError{Code: command.ErrCodeTimeout, Msg: "deadline exceeded before execution"})
	}
	if len(members) > 0 {
		b.n.stat.batchFlushes.Add(1)
		b.n.stat.batchedOps.Add(uint64(len(ops)))
		b.n.submitCmd(members, ops)
	}
}

// close fails every queued request and stops accepting new ones; it
// returns the waiters it claimed so Node.Close can fail them alongside
// the registered ones.
func (b *submitBatcher) close() []*waiter {
	b.mu.Lock()
	b.closed = true
	var all []batchEntry
	for _, bk := range b.buckets {
		all = append(all, bk.entries...)
		bk.entries, bk.nops = nil, 0
	}
	b.mu.Unlock()
	var claimed []*waiter
	for _, e := range all {
		if b.n.claimOne(e.w) {
			claimed = append(claimed, e.w)
		}
	}
	return claimed
}
