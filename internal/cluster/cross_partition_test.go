package cluster

import (
	"fmt"
	"net"
	"testing"
	"time"

	"tempo/internal/command"
	"tempo/internal/ids"
	"tempo/internal/tempo"
	"tempo/internal/topology"
)

// startShardedNodesShaped boots a sites x shards cluster like
// startShardedNodes, but routes every node's outgoing links through one
// shared delay-free Shaper (runtime partition control) and runs a short
// recovery timeout so replicas healed from a partition catch up via
// resend/recovery within test time.
func startShardedNodesShaped(t *testing.T, sites, shards int) (map[ids.ProcessID]*Node, map[ids.ProcessID]string, *topology.Topology, *Shaper) {
	t.Helper()
	names := make([]string, sites)
	rtt := make([][]time.Duration, sites)
	for i := range names {
		names[i] = fmt.Sprintf("s%d", i)
		rtt[i] = make([]time.Duration, sites)
	}
	topo, err := topology.New(topology.Config{SiteNames: names, RTT: rtt, NumShards: shards, F: 1})
	if err != nil {
		t.Fatal(err)
	}
	sh := NewShaper(nil)
	t.Cleanup(sh.Close) // registered first: runs after every node closed
	addrs := make(map[ids.ProcessID]string)
	lns := make(map[ids.ProcessID]net.Listener)
	for _, pi := range topo.Processes() {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[pi.ID] = ln
		addrs[pi.ID] = ln.Addr().String()
	}
	nodes := make(map[ids.ProcessID]*Node)
	for _, pi := range topo.Processes() {
		rep := tempo.New(pi.ID, topo, tempo.Config{
			PromiseInterval: 2 * time.Millisecond,
			RecoveryTimeout: 150 * time.Millisecond,
		})
		n := NewNode(pi.ID, rep, addrs)
		n.SetShaper(sh)
		if err := n.StartListener(lns[pi.ID]); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(n.Close)
		nodes[pi.ID] = n
	}
	return nodes, addrs, topo, sh
}

// setSitePartition severs (or restores) every link between site s and
// the other sites, both directions; intra-site links stay up.
func setSitePartition(sh *Shaper, topo *topology.Topology, s ids.SiteID, cut bool) {
	for _, a := range topo.Processes() {
		if a.Site != s {
			continue
		}
		for _, b := range topo.Processes() {
			if b.Site == s {
				continue
			}
			if cut {
				sh.Cut(a.ID, b.ID)
			} else {
				sh.Heal(a.ID, b.ID)
			}
		}
	}
}

// TestCrossShardWatchPartitionTimeoutThenParked pins the failure
// semantics of the version-2 cross-shard path under a site partition:
// the command commits on the surviving quorums, a watch at the
// partitioned site's replica fails with the typed timeout (never
// hangs), and after the heal the same id resolves there from the
// parked-results buffer.
func TestCrossShardWatchPartitionTimeoutThenParked(t *testing.T) {
	nodes, addrs, topo, sh := startShardedNodesShaped(t, 3, 2)
	gatewayPid := topo.ProcessAt(0, 0) // shard 0 at site 0
	targetPid := topo.ProcessAt(1, 1)  // shard 1 at the partitioned site

	k0 := shardedKey(t, topo, 0, "part0")
	k1 := shardedKey(t, topo, 1, "part1")
	id := nodes[gatewayPid].mintBlock(1)

	setSitePartition(sh, topo, 1, true)

	// The gateway submission still completes: with f=1, the quorums of
	// both shards survive losing one site.
	connG, brG := dialV2(t, addrs[gatewayPid])
	var scratch []byte
	frame := AppendSubmitAtRequest(nil, &scratch, 1, 10*time.Second, 0, id, []command.Op{
		{Kind: command.Put, Key: k0, Value: []byte("v0")},
		{Kind: command.Put, Key: k1, Value: []byte("v1")},
		{Kind: command.Get, Key: k1},
	})
	if _, err := connG.Write(frame); err != nil {
		t.Fatal(err)
	}
	if _, werr, vals := readReply(t, brG); werr.Code != command.ErrCodeNone || len(vals) != 1 {
		t.Fatalf("gateway submission under partition: code %d vals %d, want success with shard 0's segment", werr.Code, len(vals))
	}

	// The partitioned replica still accepts clients (the partition cuts
	// inter-replica links, not its listener), but it cannot execute; a
	// watch there must come back as a typed timeout, not hang.
	connW, brW := dialV2(t, addrs[targetPid])
	start := time.Now()
	frame = AppendWatchRequest(nil, &scratch, 2, 500*time.Millisecond, 1, id)
	if _, err := connW.Write(frame); err != nil {
		t.Fatal(err)
	}
	if _, werr, _ := readReply(t, brW); werr.Code != command.ErrCodeTimeout {
		t.Fatalf("watch at partitioned replica: code %d, want ErrCodeTimeout", werr.Code)
	}
	// Deadlines are enforced at tick granularity; anything near the
	// 500ms deadline (and far from the 10s hang ceiling) is on time.
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("typed timeout took %v, the watch effectively hung", waited)
	}

	// Heal. The replica catches up (resend/recovery), executes the
	// command with no watcher registered — the timed-out one is gone —
	// and parks the result.
	setSitePartition(sh, topo, 1, false)
	target := nodes[targetPid]
	deadline := time.Now().Add(20 * time.Second)
	for {
		target.waitMu.Lock()
		_, parked := target.parked[id]
		target.waitMu.Unlock()
		if parked {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healed replica never executed and parked the cross-shard result")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A fresh watch for the same id on the same connection resolves
	// immediately from the parked buffer with shard 1's segment.
	frame = AppendWatchRequest(nil, &scratch, 3, 10*time.Second, 1, id)
	if _, err := connW.Write(frame); err != nil {
		t.Fatal(err)
	}
	_, werr, vals := readReply(t, brW)
	if werr.Code != command.ErrCodeNone {
		t.Fatalf("watch after heal: code %d (%s)", werr.Code, werr.Msg)
	}
	if len(vals) != 2 || vals[0] != nil || string(vals[1]) != "v1" {
		t.Fatalf("watch after heal values = %q, want [nil, v1]", vals)
	}
}
