package cluster

import (
	"bufio"
	"fmt"
	"net"
	"reflect"
	"testing"
	"time"

	"tempo/internal/command"
	"tempo/internal/ids"
	"tempo/internal/proto"
	"tempo/internal/tempo"
	"tempo/internal/topology"
)

// startShardedNodes boots a sites x shards cluster, one node (own
// listener) per process, and returns the nodes indexed by process id.
func startShardedNodes(t *testing.T, sites, shards int) (map[ids.ProcessID]*Node, map[ids.ProcessID]string, *topology.Topology) {
	t.Helper()
	names := make([]string, sites)
	rtt := make([][]time.Duration, sites)
	for i := range names {
		names[i] = fmt.Sprintf("s%d", i)
		rtt[i] = make([]time.Duration, sites)
	}
	topo, err := topology.New(topology.Config{SiteNames: names, RTT: rtt, NumShards: shards, F: 1})
	if err != nil {
		t.Fatal(err)
	}
	addrs := make(map[ids.ProcessID]string)
	lns := make(map[ids.ProcessID]net.Listener)
	for _, pi := range topo.Processes() {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[pi.ID] = ln
		addrs[pi.ID] = ln.Addr().String()
	}
	nodes := make(map[ids.ProcessID]*Node)
	for _, pi := range topo.Processes() {
		rep := tempo.New(pi.ID, topo, tempo.Config{
			PromiseInterval: 2 * time.Millisecond,
			RecoveryTimeout: time.Hour,
		})
		n := NewNode(pi.ID, rep, addrs)
		if err := n.StartListener(lns[pi.ID]); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(n.Close)
		nodes[pi.ID] = n
	}
	return nodes, addrs, topo
}

func shardedKey(t *testing.T, topo *topology.Topology, shard ids.ShardID, tag string) command.Key {
	t.Helper()
	for i := 0; i < 100000; i++ {
		k := command.Key(fmt.Sprintf("%s-%d", tag, i))
		if topo.ShardOf(k) == shard {
			return k
		}
	}
	t.Fatalf("no key on shard %d", shard)
	return ""
}

// TestWatchAfterExecutionParked covers the watch-loses-the-race path: a
// cross-shard command fully executes before any watch reaches the
// sibling shard's replica; the late watch must still be answered, from
// the parked-results buffer.
func TestWatchAfterExecutionParked(t *testing.T) {
	nodes, _, topo := startShardedNodes(t, 3, 2)
	gateway := nodes[topo.ProcessAt(0, 0)] // shard 0 at site 0
	sibling := nodes[topo.ProcessAt(0, 1)] // shard 1 at site 0

	k0 := shardedKey(t, topo, 0, "pk0")
	k1 := shardedKey(t, topo, 1, "pk1")
	id := gateway.mintBlock(1)

	// Submit cross-shard via the gateway with a legacy-channel waiter.
	w := &waiter{ch: make(chan *ClientReply, 1)}
	gateway.submitCmdAt(id, w, []command.Op{
		{Kind: command.Put, Key: k0, Value: []byte("v0")},
		{Kind: command.Put, Key: k1, Value: []byte("v1")},
		{Kind: command.Get, Key: k1},
	})
	select {
	case rep := <-w.ch:
		if !rep.OK {
			t.Fatalf("gateway reply: %s", rep.Error)
		}
		// The gateway serves shard 0: exactly the k0 put's nil result.
		if len(rep.Values) != 1 {
			t.Fatalf("gateway returned %d values, want 1 (its own shard's segment)", len(rep.Values))
		}
	case <-time.After(10 * time.Second):
		t.Fatal("gateway submission timed out")
	}

	// Wait until the sibling replica executed and parked the result (no
	// watcher was registered there).
	deadline := time.Now().Add(10 * time.Second)
	for {
		sibling.waitMu.Lock()
		_, parked := sibling.parked[id]
		sibling.waitMu.Unlock()
		if parked {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("result never parked at the sibling shard's replica")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The late watch completes immediately from the parked buffer with
	// shard 1's segment: the k1 put (nil) and the k1 get ("v1").
	lw := &waiter{ch: make(chan *ClientReply, 1)}
	sibling.watch(lw, id)
	select {
	case rep := <-lw.ch:
		if !rep.OK {
			t.Fatalf("late watch reply: %s", rep.Error)
		}
		if len(rep.Values) != 2 || rep.Values[0] != nil || string(rep.Values[1]) != "v1" {
			t.Fatalf("late watch values = %q, want [nil, v1]", rep.Values)
		}
	case <-time.After(time.Second):
		t.Fatal("late watch did not complete from the parked result")
	}
	// The parked entry is consumed: a second watch would wait for a
	// (never-coming) re-execution instead of double-delivering.
	sibling.waitMu.Lock()
	_, still := sibling.parked[id]
	sibling.waitMu.Unlock()
	if still {
		t.Fatal("parked result not consumed by the watch")
	}
}

// TestSubmitAtDuplicateSubmitsOnce pins the client-retry guard: a
// second cross-shard submission under the same id registers its waiter
// but must not hand the command to the replica again.
func TestSubmitAtDuplicateSubmitsOnce(t *testing.T) {
	nodes, _, topo := startShardedNodes(t, 3, 2)
	gateway := nodes[topo.ProcessAt(0, 0)]
	k0 := shardedKey(t, topo, 0, "dup0")
	k1 := shardedKey(t, topo, 1, "dup1")
	id := gateway.mintBlock(1)
	ops := []command.Op{
		{Kind: command.Put, Key: k0, Value: []byte("v")},
		{Kind: command.Put, Key: k1, Value: []byte("v")},
	}
	w1 := &waiter{ch: make(chan *ClientReply, 1)}
	w2 := &waiter{ch: make(chan *ClientReply, 1)}
	gateway.submitCmdAt(id, w1, ops)
	gateway.submitCmdAt(id, w2, ops) // retry: same id
	for i, w := range []*waiter{w1, w2} {
		select {
		case rep := <-w.ch:
			if !rep.OK {
				t.Fatalf("waiter %d: %s", i, rep.Error)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("waiter %d timed out", i)
		}
	}
	if got := gateway.Stats().CrossSubmitted; got != 1 {
		t.Fatalf("command handed to the replica %d times, want 1", got)
	}
}

// dialV2 opens a raw version-2 client connection.
func dialV2(t *testing.T, addr string) (net.Conn, *bufio.Reader) {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	if _, err := conn.Write(ClientMagic2[:]); err != nil {
		t.Fatal(err)
	}
	return conn, bufio.NewReader(conn)
}

func readReply(t *testing.T, br *bufio.Reader) (uint64, command.WireError, [][]byte) {
	t.Helper()
	var buf []byte
	body, err := ReadFrame(br, MaxClientFrameBytes, &buf)
	if err != nil {
		t.Fatal(err)
	}
	reqID, werr, values, err := DecodeClientReply(body)
	if err != nil {
		t.Fatal(err)
	}
	return reqID, werr, values
}

// TestV2SubmitRejectsCrossAndForeignShards pins the typed errors of the
// version-2 plain submission: ops spanning shards are refused (the
// batcher bypass must be explicit, via submit-at), and ops of a shard
// the process does not replicate come back as wrong-shard.
func TestV2SubmitRejectsCrossAndForeignShards(t *testing.T) {
	nodes, addrs, topo := startShardedNodes(t, 3, 2)
	_ = nodes
	gatewayPid := topo.ProcessAt(0, 0)
	conn, br := dialV2(t, addrs[gatewayPid])

	k0 := shardedKey(t, topo, 0, "vr0")
	k1 := shardedKey(t, topo, 1, "vr1")

	var scratch []byte
	frame := AppendSubmitRequest(nil, &scratch, 1, time.Second, []command.Op{
		{Kind: command.Put, Key: k0, Value: []byte("a")},
		{Kind: command.Put, Key: k1, Value: []byte("b")},
	})
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	if _, werr, _ := readReply(t, br); werr.Code != command.ErrCodeCrossShard {
		t.Fatalf("cross-shard plain submit: code %d, want ErrCodeCrossShard", werr.Code)
	}

	frame = AppendSubmitRequest(nil, &scratch, 2, time.Second, []command.Op{
		{Kind: command.Get, Key: k1},
	})
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	if _, werr, _ := readReply(t, br); werr.Code != command.ErrCodeWrongShard {
		t.Fatalf("foreign-shard submit: code %d, want ErrCodeWrongShard", werr.Code)
	}

	// A watch for a foreign shard is refused the same way.
	frame = AppendWatchRequest(nil, &scratch, 3, time.Second, 1, ids.Dot{Source: 1, Seq: 99})
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	if _, werr, _ := readReply(t, br); werr.Code != command.ErrCodeWrongShard {
		t.Fatalf("foreign-shard watch: code %d, want ErrCodeWrongShard", werr.Code)
	}
}

// TestMintBlockAdvancesSequence checks mint blocks are disjoint and
// contiguous, and that minted ids never collide with server-minted ones.
func TestMintBlockAdvancesSequence(t *testing.T) {
	nodes, _, topo := startShardedNodes(t, 3, 1)
	n := nodes[topo.ProcessAt(0, 0)]
	a := n.mintBlock(16)
	b := n.mintBlock(16)
	if a.Source != n.id || b.Source != n.id {
		t.Fatalf("mint sources = %v/%v, want %v", a.Source, b.Source, n.id)
	}
	if b.Seq < a.Seq+16 {
		t.Fatalf("blocks overlap: a=%d..%d b=%d", a.Seq, a.Seq+15, b.Seq)
	}
	// A subsequent server-minted id lands above both blocks.
	n.mu.Lock()
	next := n.rep.(proto.IDMinter).NextID()
	n.mu.Unlock()
	if next.Seq < b.Seq+16 {
		t.Fatalf("server mint %d inside client block %d..%d", next.Seq, b.Seq, b.Seq+15)
	}
}

// FuzzShardMsgRoundTrip covers the cross-shard wire surfaces added for
// sharded deployments: the kind-tagged version-2 client request frames
// (submit, mint, submit-at, watch) and the (from, to)-multiplexed group
// frame records carrying cross-shard protocol messages (MStable/MBump).
// It checks encode->decode is the identity and that decoding arbitrary
// bytes never panics.
func FuzzShardMsgRoundTrip(f *testing.F) {
	f.Add(uint8(1), uint64(1), int64(1000), uint32(0), uint64(7), uint64(3), []byte("key"), []byte("val"), false)
	f.Add(uint8(2), uint64(2), int64(0), uint32(1), uint64(1), uint64(128), []byte(""), []byte(""), true)
	f.Add(uint8(3), uint64(9), int64(5000), uint32(3), uint64(2), uint64(11), []byte("k2"), []byte{0xFF, 0}, false)
	f.Add(uint8(4), uint64(1<<40), int64(1), uint32(7), uint64(1<<30), uint64(1<<20), []byte("x"), []byte("y"), true)
	f.Fuzz(func(t *testing.T, kind uint8, reqID uint64, deadlineUS int64, shard uint32,
		src, seq uint64, key, val []byte, getOp bool) {
		if deadlineUS < 0 {
			deadlineUS = -deadlineUS
		}
		deadline := time.Duration(deadlineUS) * time.Microsecond
		id := ids.Dot{Source: ids.ProcessID(src), Seq: seq}
		op := command.Op{Kind: command.Put, Key: command.Key(key), Value: val}
		if getOp {
			op = command.Op{Kind: command.Get, Key: command.Key(key)}
		}
		ops := []command.Op{op}

		var scratch []byte
		var frame []byte
		k := 1 + kind%4
		switch k {
		case ReqSubmit:
			frame = AppendSubmitRequest(nil, &scratch, reqID, deadline, ops)
		case ReqMint:
			count := int(seq%MaxMintBlock) + 1
			frame = AppendMintRequest(nil, &scratch, reqID, count)
		case ReqSubmitAt:
			frame = AppendSubmitAtRequest(nil, &scratch, reqID, deadline, ids.ShardID(shard), id, ops)
		case ReqWatch:
			frame = AppendWatchRequest(nil, &scratch, reqID, deadline, ids.ShardID(shard), id)
		}
		// Strip the length prefix, decode the body, compare.
		length, body, err := proto.ReadUvarint(frame)
		if err != nil || length != uint64(len(body)) {
			t.Fatalf("bad frame length: %v", err)
		}
		req, err := DecodeClientRequest2(body)
		if err != nil {
			t.Fatalf("decode own encoding (kind %d): %v", k, err)
		}
		if req.Kind != k || req.ReqID != reqID {
			t.Fatalf("kind/reqID mismatch: %v/%v", req.Kind, req.ReqID)
		}
		switch k {
		case ReqSubmit, ReqSubmitAt:
			if req.Deadline != deadline {
				t.Fatalf("deadline %v != %v", req.Deadline, deadline)
			}
			if !reflect.DeepEqual(normalizeOps(req.Ops), normalizeOps(ops)) {
				t.Fatalf("ops %+v != %+v", req.Ops, ops)
			}
		}
		if k == ReqSubmitAt || k == ReqWatch {
			if req.Shard != ids.ShardID(shard) || req.ID != id {
				t.Fatalf("shard/id mismatch: %v/%v", req.Shard, req.ID)
			}
		}

		// Arbitrary bytes must fail cleanly, never panic.
		if _, err := DecodeClientRequest2(key); err != nil {
			_ = err
		}
		if _, err := DecodeClientRequest2(val); err != nil {
			_ = err
		}

		// Group frame records: two cross-shard protocol messages between
		// fuzzed process pairs, encoded as one frame, decoded back.
		msgs := []groupMsg{
			{from: ids.ProcessID(src%1024 + 1), to: ids.ProcessID(seq%1024 + 1),
				msg: &tempo.MStable{ID: id, Shard: ids.ShardID(shard)}},
			{from: ids.ProcessID(seq%1024 + 1), to: ids.ProcessID(src%1024 + 1),
				msg: &tempo.MBump{ID: id, TS: reqID}},
		}
		var rec []byte
		for _, m := range msgs {
			rec = proto.AppendUvarint(rec, uint64(m.from))
			rec = proto.AppendUvarint(rec, uint64(m.to))
			if rec, err = proto.AppendMessage(rec, m.msg); err != nil {
				t.Fatalf("append group record: %v", err)
			}
		}
		b := rec
		for i := 0; len(b) > 0; i++ {
			var from, to uint64
			if from, b, err = proto.ReadUvarint(b); err != nil {
				t.Fatalf("record %d from: %v", i, err)
			}
			if to, b, err = proto.ReadUvarint(b); err != nil {
				t.Fatalf("record %d to: %v", i, err)
			}
			var msg proto.Message
			if msg, b, err = proto.DecodeMessage(b); err != nil {
				t.Fatalf("record %d msg: %v", i, err)
			}
			if i >= len(msgs) {
				t.Fatalf("decoded %d records, want %d", i+1, len(msgs))
			}
			want := msgs[i]
			if ids.ProcessID(from) != want.from || ids.ProcessID(to) != want.to {
				t.Fatalf("record %d addressing mismatch", i)
			}
			if !reflect.DeepEqual(msg, want.msg) {
				t.Fatalf("record %d message mismatch: %+v != %+v", i, msg, want.msg)
			}
		}
	})
}

// normalizeOps maps empty and nil byte slices together for comparison
// (the wire does not distinguish them for keys/op values).
func normalizeOps(ops []command.Op) []command.Op {
	out := make([]command.Op, len(ops))
	for i, op := range ops {
		out[i] = op
		if len(op.Value) == 0 {
			out[i].Value = nil
		}
	}
	return out
}
