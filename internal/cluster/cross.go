package cluster

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"tempo/internal/command"
	"tempo/internal/ids"
	"tempo/internal/proto"
)

// Cross-shard serving (the version-2 client protocol).
//
// A multi-shard command is ordered independently by every shard it
// accesses and executes, at every replica of each accessed shard, at the
// maximum timestamp across those shards (Algorithm 3 of the paper); each
// shard's execution produces only that shard's result segment. The
// version-2 protocol makes the full result reachable from the client
// with no extra round trip on the submission path:
//
//   - The session pre-mints a block of command ids from any replica
//     (ReqMint — the ids come out of the replica's ordinary Dot
//     sequence, covered by its durable id reservation).
//   - A cross-shard command is submitted under one such id to a replica
//     of its first accessed shard (ReqSubmitAt, the "gateway"), while
//     ReqWatch registrations carrying the same id go concurrently to
//     one replica of every other accessed shard.
//   - Each of those replicas completes its request with its own shard's
//     segment when the command executes locally; the session merges the
//     segments back into op order.
//
// A watch can lose the race with local execution (the command executed
// before the watch frame arrived). Executed cross-shard commands with no
// local waiter therefore park their result values for parkTTL; a late
// watch is answered straight from the parked buffer. Single-shard
// commands never park — their results always have a registered waiter
// or nobody to answer.

// clientHost serves client connections over a set of locally hosted
// nodes: a standalone Node hosts itself; a Group hosts one node per
// locally replicated shard and routes each request to the right one.
type clientHost interface {
	// routeSubmit picks the node serving a plain submission. legacy
	// marks version-1 connections, which keep their historical
	// pass-through semantics on standalone nodes.
	routeSubmit(ops []command.Op, legacy bool) (*Node, command.WireError)
	// nodeForShard returns the local node replicating shard s, or nil.
	nodeForShard(s ids.ShardID) *Node
	// mintNode returns the node whose Dot sequence serves ReqMint.
	mintNode() *Node
	// localNodes returns every hosted node (for the teardown sweep).
	localNodes() []*Node
	// trackClientConn registers a live connection; false means the host
	// is shutting down and the caller must drop the connection.
	trackClientConn(cc *clientConn) bool
	// untrackClientConn removes a connection from the host's set.
	untrackClientConn(cc *clientConn)
	// maxFrame bounds inbound client frame bodies (the host's
	// corruption guard).
	maxFrame() uint64
}

// Node as a clientHost: it hosts exactly itself.

// routeSubmit implements clientHost. Version-2 submissions are checked
// against the replica's shard map: ops of a foreign shard are rejected
// as ErrCodeWrongShard, ops spanning shards as ErrCodeCrossShard (the
// client must use the submit-at/watch path to get a merged result).
// Version-1 connections keep the historical behavior — submit whatever
// arrives — so old binaries against single-shard clusters are
// untouched.
func (n *Node) routeSubmit(ops []command.Op, legacy bool) (*Node, command.WireError) {
	if legacy || n.sharder == nil {
		return n, command.WireError{}
	}
	s, ok := n.sharder.OpsShard(ops)
	if !ok {
		return nil, command.WireError{Code: command.ErrCodeCrossShard,
			Msg: "operations span shards; use cross-shard submission"}
	}
	if n.hasShard && s != n.shard {
		return nil, wrongShardErr(s)
	}
	return n, command.WireError{}
}

// nodeForShard implements clientHost.
func (n *Node) nodeForShard(s ids.ShardID) *Node {
	if n.hasShard && s != n.shard {
		return nil
	}
	return n
}

// mintNode implements clientHost.
func (n *Node) mintNode() *Node { return n }

// localNodes implements clientHost.
func (n *Node) localNodes() []*Node { return []*Node{n} }

// trackClientConn implements clientHost. The done check shares ccMu
// with Close's sweep, so either the registration is visible to Close or
// the shutdown is visible here.
func (n *Node) trackClientConn(cc *clientConn) bool {
	n.ccMu.Lock()
	defer n.ccMu.Unlock()
	select {
	case <-n.done:
		return false
	default:
	}
	n.clientConns[cc] = struct{}{}
	return true
}

// untrackClientConn implements clientHost.
func (n *Node) untrackClientConn(cc *clientConn) {
	n.ccMu.Lock()
	delete(n.clientConns, cc)
	n.ccMu.Unlock()
}

// maxFrame implements clientHost.
func (n *Node) maxFrame() uint64 { return n.frameLimit }

// sweepConn claims every waiter still pending for a gone connection
// (there is no one left to reply to) and drops fully-claimed commands.
func (n *Node) sweepConn(cc *clientConn) {
	n.waitMu.Lock()
	for id, pc := range n.waiters {
		for _, w := range pc.members {
			if w.cc == cc {
				w.claimed = true // no one left to reply to
			}
		}
		if pc.allClaimedLocked() {
			delete(n.waiters, id)
		}
	}
	n.syncPendingLocked()
	n.waitMu.Unlock()
}

// serveClientStream runs one binary-protocol client connection against
// a host: requests are submitted with id-tagged waiters and completed
// asynchronously, so any number of requests from one connection are in
// flight at once, across every node the host serves.
func serveClientStream(h clientHost, conn net.Conn, br *bufio.Reader, v2 bool) {
	cc := &clientConn{
		host: h,
		conn: conn,
		dead: make(chan struct{}),
		kick: make(chan struct{}, 1),
	}
	if !h.trackClientConn(cc) {
		conn.Close()
		return
	}
	go cc.writeLoop()
	defer cc.abandon()
	limit := h.maxFrame()
	var buf []byte
	for {
		body, err := ReadFrame(br, limit, &buf)
		if err != nil {
			return
		}
		if v2 {
			if !serveRequest2(h, cc, body) {
				return
			}
			continue
		}
		reqID, deadline, ops, err := DecodeClientRequest(body)
		if err != nil {
			return
		}
		if len(ops) == 0 {
			cc.reply(reqID, command.WireError{Code: command.ErrCodeBadRequest, Msg: "empty command"}, nil)
			continue
		}
		n, werr := h.routeSubmit(ops, true)
		if werr.Code != command.ErrCodeNone {
			cc.reply(reqID, werr, nil)
			continue
		}
		w := &waiter{cc: cc, reqID: reqID}
		if deadline > 0 {
			w.deadline = time.Now().Add(deadline)
		}
		n.submit(w, ops)
	}
}

// serveRequest2 dispatches one version-2 request frame. It reports
// false on a protocol error (the connection must be dropped).
func serveRequest2(h clientHost, cc *clientConn, body []byte) bool {
	req, err := DecodeClientRequest2(body)
	if err != nil {
		return false
	}
	badReq := func(msg string) {
		cc.reply(req.ReqID, command.WireError{Code: command.ErrCodeBadRequest, Msg: msg}, nil)
	}
	newWaiter := func() *waiter {
		w := &waiter{cc: cc, reqID: req.ReqID}
		if req.Deadline > 0 {
			w.deadline = time.Now().Add(req.Deadline)
		}
		return w
	}
	switch req.Kind {
	case ReqSubmit:
		if len(req.Ops) == 0 {
			badReq("empty command")
			return true
		}
		n, werr := h.routeSubmit(req.Ops, false)
		if werr.Code != command.ErrCodeNone {
			cc.reply(req.ReqID, werr, nil)
			return true
		}
		n.submit(newWaiter(), req.Ops)
	case ReqMint:
		if req.Count == 0 || req.Count > MaxMintBlock {
			badReq("mint count out of range")
			return true
		}
		first := h.mintNode().mintBlock(int(req.Count))
		cc.reply(req.ReqID, command.WireError{}, AppendMintReply(first))
	case ReqSubmitAt:
		if len(req.Ops) == 0 || req.ID.IsZero() {
			badReq("cross-shard submission needs ops and an id")
			return true
		}
		n := h.nodeForShard(req.Shard)
		if n == nil {
			cc.reply(req.ReqID, wrongShardErr(req.Shard), nil)
			return true
		}
		n.submitCmdAt(req.ID, newWaiter(), req.Ops)
	case ReqWatch:
		if req.ID.IsZero() {
			badReq("watch needs an id")
			return true
		}
		n := h.nodeForShard(req.Shard)
		if n == nil {
			cc.reply(req.ReqID, wrongShardErr(req.Shard), nil)
			return true
		}
		n.watch(newWaiter(), req.ID)
	default:
		return false
	}
	return true
}

func wrongShardErr(s ids.ShardID) command.WireError {
	return command.WireError{Code: command.ErrCodeWrongShard,
		Msg: fmt.Sprintf("shard %d is not replicated by this process", s)}
}

// mintBlock reserves a contiguous block of count command ids from the
// replica's ordinary Dot sequence and returns the first. The block is
// covered by the durable id reservation before the reply, so a
// crash-restart of this replica never re-mints any of the ids; the
// session owning the block submits cross-shard commands under them.
func (n *Node) mintBlock(count int) ids.Dot {
	n.mu.Lock()
	defer n.mu.Unlock()
	m := n.rep.(proto.IDMinter)
	first := m.NextID()
	for i := 1; i < count; i++ {
		m.NextID()
	}
	if hi := first.Seq + uint64(count) - 1; hi > n.lastSeq {
		n.lastSeq = hi
	}
	n.maybeReserveLocked()
	return first
}

// submitCmdAt registers w and submits ops as one command under a
// client-held id (minted via mintBlock, possibly at another replica).
// Cross-shard commands always take this direct path: they are never
// batched — coalescing would change the command's shard set — and
// their waiter owns the whole local result segment. A duplicated
// submission for an already-submitted id (a client retry) only
// registers its waiter; the command is handed to the replica once.
func (n *Node) submitCmdAt(id ids.Dot, w *waiter, ops []command.Op) {
	w.nvals = -1
	n.mu.Lock()
	n.waitMu.Lock()
	select {
	case <-n.done:
		claimed := !w.claimed
		w.claimed = true
		n.waitMu.Unlock()
		n.mu.Unlock()
		if claimed {
			w.fail(command.WireError{Code: command.ErrCodeShutdown, Msg: "node shutting down"})
		}
		return
	default:
	}
	pc := n.waiters[id]
	if pc != nil {
		// A watch raced ahead of the submission, or a client
		// resubmitted: the command is one, the waiters are many.
		pc.members = append(pc.members, w)
	} else {
		pc = &pendingCmd{members: []*waiter{w}}
		n.waiters[id] = pc
	}
	resubmit := pc.submitted
	pc.submitted = true
	n.syncPendingLocked()
	n.waitMu.Unlock()
	if resubmit {
		n.mu.Unlock()
		return
	}
	n.stat.crossSubmitted.Add(1)
	n.stat.submittedCmds.Add(1)
	n.stat.submittedOps.Add(uint64(len(ops)))
	acts := n.rep.Submit(command.New(id, ops...))
	n.afterStepLocked(acts)
	n.mu.Unlock()
}

// watch registers interest in a command id: w completes with this
// shard's result segment when the command executes locally. A command
// that already executed is answered from the parked-results buffer.
func (n *Node) watch(w *waiter, id ids.Dot) {
	w.nvals = -1
	n.stat.watches.Add(1)
	n.waitMu.Lock()
	select {
	case <-n.done:
		w.claimed = true
		n.waitMu.Unlock()
		w.fail(command.WireError{Code: command.ErrCodeShutdown, Msg: "node shutting down"})
		return
	default:
	}
	if pr, ok := n.parked[id]; ok {
		delete(n.parked, id)
		w.claimed = true
		n.waitMu.Unlock()
		n.stat.completedReqs.Add(1)
		w.complete(pr.values)
		return
	}
	pc := n.waiters[id]
	if pc == nil {
		pc = &pendingCmd{}
		n.waiters[id] = pc
	}
	pc.members = append(pc.members, w)
	n.syncPendingLocked()
	n.waitMu.Unlock()
}

// Parked results: executed cross-shard commands with no local waiter
// keep their result values for parkTTL, so a watch that lost the race
// with execution is still answered. maxParked bounds the buffer — every
// replica of an accessed shard executes every cross-shard command, but
// only the client-chosen one carries a watch, so the others park
// everything they execute until the TTL reclaims it. A watch arriving
// after its entry was reclaimed (TTL, or cap eviction under extreme
// load) waits until its deadline and surfaces as a timeout — the same
// executed-but-unobserved ambiguity any timed-out command has; a
// deadline-less watch for a command that is never submitted locally is
// reclaimed when its connection goes away.
const (
	parkTTL   = 5 * time.Second
	maxParked = 1 << 16
)

type parkedResult struct {
	values  [][]byte
	expires time.Time
}

// completeOrPark completes every waiter of an executed cross-shard
// command, or parks the result when no one is waiting locally.
func (n *Node) completeOrPark(id ids.Dot, values [][]byte) {
	n.waitMu.Lock()
	if pc := n.waiters[id]; pc != nil {
		delete(n.waiters, id)
		n.syncPendingLocked()
		done := pc.claimAllLocked()
		n.waitMu.Unlock()
		n.stat.completedReqs.Add(uint64(len(done)))
		for _, w := range done {
			w.complete(w.segment(values))
		}
		return
	}
	if len(n.parked) >= maxParked {
		// Arbitrary eviction keeps the buffer bounded; the TTL sweep is
		// the primary reclaim.
		for k := range n.parked {
			delete(n.parked, k)
			break
		}
	}
	n.parked[id] = parkedResult{values: values, expires: time.Now().Add(parkTTL)}
	n.waitMu.Unlock()
}

// sweepParked drops parked results whose TTL expired. The tick loop
// calls it about once a second.
func (n *Node) sweepParked(now time.Time) {
	n.waitMu.Lock()
	for id, pr := range n.parked {
		if now.After(pr.expires) {
			delete(n.parked, id)
		}
	}
	n.waitMu.Unlock()
}

// crossShardCmd reports whether an executed command's ops span shards
// (such commands route results through completeOrPark).
func (n *Node) crossShardCmd(ops []command.Op) bool {
	if n.sharder == nil {
		return false
	}
	_, ok := n.sharder.OpsShard(ops)
	return !ok
}
