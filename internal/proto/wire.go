package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Binary wire codec
//
// The cluster runtime originally gob-encoded every envelope, paying
// reflection and type-descriptor costs on every send. The binary codec
// replaces that on the hot path: each message type implements
// BinaryMessage with a hand-rolled, varint-based, append-style encoder
// (zero allocations when the caller reuses the destination buffer), and
// registers a matching decoder under a one-byte tag. Framing for the
// cluster transport lives in internal/cluster; this file owns the
// per-message layer: tag dispatch plus shared varint primitives.

// ErrCorrupt reports undecodable wire data (truncated buffer, unknown
// tag, varint overflow).
var ErrCorrupt = errors.New("proto: corrupt wire data")

// BinaryMessage is implemented by messages that support the hand-rolled
// binary codec. AppendBinary appends the encoding of the message body
// (without the tag) to buf and returns the extended slice; it must not
// retain buf. Encoding the same value must always produce the same bytes
// (maps are serialized in sorted order), so decode∘encode is the
// identity on bytes.
type BinaryMessage interface {
	Message
	// WireTag returns the one-byte message type tag.
	WireTag() byte
	// AppendBinary appends the message body to buf.
	AppendBinary(buf []byte) []byte
}

// WireDecoder decodes a message body (tag already consumed) from the
// front of b, returning the message and the unconsumed remainder.
type WireDecoder func(b []byte) (Message, []byte, error)

var wireDecoders [256]WireDecoder

// RegisterWire registers the decoder for a message tag. It panics on
// duplicate registration, like gob.RegisterName.
func RegisterWire(tag byte, dec WireDecoder) {
	if wireDecoders[tag] != nil {
		panic(fmt.Sprintf("proto: wire tag %d registered twice", tag))
	}
	wireDecoders[tag] = dec
}

// AppendMessage appends the tagged binary encoding of m to buf.
//
//tempo:noalloc
func AppendMessage(buf []byte, m Message) ([]byte, error) {
	bm, ok := m.(BinaryMessage)
	if !ok {
		//tempo:allowalloc error path only; every registered message is a BinaryMessage
		return buf, fmt.Errorf("proto: %T does not implement BinaryMessage", m)
	}
	buf = append(buf, bm.WireTag())
	return bm.AppendBinary(buf), nil
}

// DecodeMessage decodes one tagged message from the front of b,
// returning the unconsumed remainder.
func DecodeMessage(b []byte) (Message, []byte, error) {
	if len(b) == 0 {
		return nil, b, ErrCorrupt
	}
	dec := wireDecoders[b[0]]
	if dec == nil {
		return nil, b, fmt.Errorf("proto: unknown wire tag %d: %w", b[0], ErrCorrupt)
	}
	return dec(b[1:])
}

// AppendUvarint appends v in varint encoding.
//
//tempo:noalloc
func AppendUvarint(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}

// ReadUvarint decodes a varint from the front of b.
func ReadUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, b, ErrCorrupt
	}
	return v, b[n:], nil
}

// AppendByteSlice appends a length-prefixed byte slice.
//
//tempo:noalloc
func AppendByteSlice(buf, s []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// ReadByteSlice decodes a length-prefixed byte slice. Empty slices
// decode as nil, so encodings round-trip byte-identically.
func ReadByteSlice(b []byte) ([]byte, []byte, error) {
	n, rest, err := ReadUvarint(b)
	if err != nil || uint64(len(rest)) < n {
		return nil, b, ErrCorrupt
	}
	if n == 0 {
		return nil, rest, nil
	}
	out := make([]byte, n)
	copy(out, rest[:n])
	return out, rest[n:], nil
}
