// Package proto defines the contract between replication protocols and the
// runtimes that drive them (the discrete-event simulator and the TCP
// cluster runtime).
//
// Protocols are deterministic state machines: every input (a submitted
// command, a delivered message, a periodic tick) returns a list of output
// actions. Protocols never spawn goroutines, read clocks, or perform I/O;
// that makes them trivially testable and lets the same code run under
// simulation and over a real network.
package proto

import (
	"io"
	"time"

	"tempo/internal/command"
	"tempo/internal/ids"
)

// Message is a protocol message. Concrete types live in each protocol
// package; runtimes treat them opaquely (the cluster runtime serializes
// them with gob, so all message types must be gob-encodable and
// registered).
type Message interface {
	// Size returns an approximate wire size in bytes, used by the
	// simulator's network model.
	Size() int
}

// Action is an output of a protocol step: send a message to a set of
// processes. Self-addressed sends are allowed and must be delivered
// immediately by the runtime (the paper assumes self-messages are
// delivered instantaneously).
type Action struct {
	To  []ids.ProcessID
	Msg Message
}

// Send builds an action addressed to the given processes.
func Send(msg Message, to ...ids.ProcessID) Action {
	return Action{To: to, Msg: msg}
}

// Executed records one command execution at one process for one shard:
// the execute_p(c) upcall of the PSMR specification.
type Executed struct {
	Cmd    *command.Command
	Shard  ids.ShardID
	Result *command.Result
}

// Stable records one command whose execution order became final at one
// process for one shard, in delivery order. Replicas running in deferred-
// apply mode (see DeferredApplier) emit Stable entries instead of applying
// commands inline, so a runtime can apply them to the state machine off
// the protocol's critical section. Multi marks commands accessing more
// than one shard (the protocol already knows the access set, sparing
// runtimes a per-op re-hash when routing cross-shard results).
type Stable struct {
	Cmd   *command.Command
	Shard ids.ShardID
	TS    uint64
	Multi bool
}

// DeferredApplier is implemented by replicas that can hand execution-
// stable commands to the runtime instead of applying them inline under
// the protocol lock. The contract: after SetDeferredApply(true), protocol
// steps append to an internal stable queue in execution order; the
// runtime drains it with DrainStable (serialized with Submit/Handle/Tick,
// like Drain) and applies each command with ApplyStable, which must be
// safe to call concurrently with protocol steps (it only touches the
// state machine, never protocol state). Applying in DrainStable order
// preserves the replica's execution order. ts is the command's final
// timestamp (Stable.TS): replicas that track an applied watermark use it
// to make re-applies idempotent, which lets runtimes replay a write-ahead
// log through the same entry point.
type DeferredApplier interface {
	SetDeferredApply(on bool)
	DrainStable() []Stable
	ApplyStable(cmd *command.Command, ts uint64) *command.Result
}

// Durable is implemented by replicas whose runtime persists execution
// state (internal/cluster nodes started with a data directory). The
// runtime records applied commands in a write-ahead log and periodically
// snapshots the state machine; on restart it replays snapshot+log into a
// fresh replica via ApplyStable, then calls Restore exactly once — before
// any protocol step — with the recovered protocol watermarks:
//
//   - clock: the logical-clock reservation. The restarted clock must be
//     at least any value the previous incarnation reached, so no
//     timestamp promised (attached or detached) before the crash is ever
//     promised again.
//   - nextSeq: the command-id reservation, so no Dot is minted twice
//     across incarnations.
//   - wmTS/wmID: the applied watermark of the recovered state machine.
//     Execution resumes above it; commands that re-commit at or below it
//     (peers replaying history the restarted replica forgot) are skipped
//     rather than applied twice.
//
// SnapshotTo and RestoreFrom serialize the state machine together with
// its applied watermark; SnapshotTo must be consistent under concurrent
// applies (the state machine carries its own lock), which also lets a
// live node answer a restarting peer's state-catch-up request. Clock and
// AppliedWM expose the values the runtime persists: Clock must be read
// under the runtime's protocol lock, AppliedWM is safe anytime.
type Durable interface {
	Clock() uint64
	AppliedWM() (ts uint64, id ids.Dot)
	Restore(clock, nextSeq, wmTS uint64, wmID ids.Dot)
	//tempo:blocks serializes the full state machine to w
	SnapshotTo(w io.Writer) error
	//tempo:blocks reads and applies a full snapshot from r
	RestoreFrom(r io.Reader) (wmTS uint64, wmID ids.Dot, err error)
}

// Replica is a protocol instance at one process (replicating one shard).
type Replica interface {
	// ID returns the process id of this replica.
	ID() ids.ProcessID

	// Submit hands a client command to this process, which must
	// replicate one of the shards the command accesses. It returns the
	// protocol messages to send.
	Submit(cmd *command.Command) []Action

	// Handle delivers a message from another process (or from self).
	Handle(from ids.ProcessID, msg Message) []Action

	// Tick drives periodic work: promise broadcasting, recovery
	// timeouts, batch flushing. now is the runtime's current time.
	Tick(now time.Duration) []Action

	// Drain returns the commands executed since the last call, in
	// execution order. Runtimes use it to complete client requests and
	// to feed the correctness checker.
	Drain() []Executed
}

// IDMinter is implemented by replicas that can mint globally-unique
// command identifiers on behalf of clients. The cluster runtime requires
// it: each submitted client command is stamped with NextID before it
// enters the protocol, so waiters can claim completion by Dot. NextID is
// called under the runtime's protocol lock (serialized with
// Submit/Handle/Tick).
type IDMinter interface {
	NextID() ids.Dot
}

// Joiner is implemented by replicas whose slot can be taken over by a
// fresh successor process (dynamic membership's drain-less replace):
// the successor must never mint a command id, nor promise a
// logical-clock timestamp, that its dead predecessor may already have
// handed out.
//
//   - ObservedFrom returns the highest logical-clock value and the
//     highest command-sequence number this replica has observed from
//     process pid (promises it made, command ids it minted). Protocols
//     without a logical clock return clock 0.
//   - JoinFloor raises the replica's own clock and id-sequence floors;
//     called once before any protocol step on a successor, with the
//     max of the live peers' ObservedFrom answers plus a safety margin
//     (membership.FrontierMargin documents the argument).
//
// Both run under the runtime's protocol lock.
type Joiner interface {
	ObservedFrom(pid ids.ProcessID) (clock, seq uint64)
	JoinFloor(clock, seq uint64)
}

// LeaderAware is implemented by protocols that depend on a leader oracle
// (the Ω failure detector of the paper, or the FPaxos leader). Runtimes
// call SetLeader when the oracle's output changes.
type LeaderAware interface {
	SetLeader(rank ids.Rank)
}

// Crashable is implemented by replicas that support fail-stop crash
// injection in tests; after Crash, the runtime stops delivering messages
// to and from the replica.
type Crashable interface {
	Crash()
}
