package topology

import (
	"testing"
	"time"

	"tempo/internal/command"
	"tempo/internal/ids"
)

func TestEC2Matrix(t *testing.T) {
	// Table 2 of the paper.
	rtt := EC2RTT()
	want := map[[2]int]int{
		{0, 1}: 141, {0, 2}: 186, {0, 3}: 72, {0, 4}: 183,
		{1, 2}: 181, {1, 3}: 78, {1, 4}: 190,
		{2, 3}: 221, {2, 4}: 338,
		{3, 4}: 123,
	}
	for pair, ms := range want {
		d := time.Duration(ms) * time.Millisecond
		if rtt[pair[0]][pair[1]] != d || rtt[pair[1]][pair[0]] != d {
			t.Errorf("RTT %v = %v/%v, want %v", pair, rtt[pair[0]][pair[1]], rtt[pair[1]][pair[0]], d)
		}
	}
	for i := range rtt {
		if rtt[i][i] != 0 {
			t.Errorf("diagonal %d not zero", i)
		}
	}
}

func TestEC2FullReplication(t *testing.T) {
	topo := EC2(1)
	if topo.R() != 5 || topo.F() != 1 || topo.NumShards() != 1 {
		t.Fatalf("r=%d f=%d shards=%d", topo.R(), topo.F(), topo.NumShards())
	}
	if len(topo.Processes()) != 5 {
		t.Fatalf("want 5 processes, got %d", len(topo.Processes()))
	}
	// Ranks 1..5, one per site.
	seenRank := map[ids.Rank]bool{}
	seenSite := map[ids.SiteID]bool{}
	for _, p := range topo.Processes() {
		seenRank[p.Rank] = true
		seenSite[p.Site] = true
	}
	if len(seenRank) != 5 || len(seenSite) != 5 {
		t.Errorf("ranks %v sites %v", seenRank, seenSite)
	}
}

func TestFastQuorumClosest(t *testing.T) {
	topo := EC2(1)
	// Ireland's closest two sites are Canada (72) and N. California (141).
	ireland := topo.ProcessAt(0, 0)
	q := topo.FastQuorum(ireland, TempoFastQuorumSize(5, 1))
	if len(q) != 3 {
		t.Fatalf("fast quorum size = %d, want 3", len(q))
	}
	if q[0] != ireland {
		t.Errorf("coordinator must be first: %v", q)
	}
	canada := topo.ProcessAt(3, 0)
	ncal := topo.ProcessAt(1, 0)
	got := map[ids.ProcessID]bool{q[1]: true, q[2]: true}
	if !got[canada] || !got[ncal] {
		t.Errorf("quorum = %v, want {ireland, canada, n-california}", q)
	}
}

func TestFastQuorumSizes(t *testing.T) {
	if TempoFastQuorumSize(5, 1) != 3 || TempoFastQuorumSize(5, 2) != 4 {
		t.Error("tempo fast quorum sizes wrong for r=5")
	}
	if TempoFastQuorumSize(3, 1) != 2 {
		t.Error("tempo fast quorum size wrong for r=3")
	}
}

func TestShardOfStable(t *testing.T) {
	topo := EC2Sharded(4)
	if topo.NumShards() != 4 || topo.R() != 3 {
		t.Fatalf("shards=%d r=%d", topo.NumShards(), topo.R())
	}
	k := command.Key("user/42")
	s1 := topo.ShardOf(k)
	s2 := topo.ShardOf(k)
	if s1 != s2 {
		t.Error("ShardOf not deterministic")
	}
	// All shards reachable over many keys.
	seen := map[ids.ShardID]bool{}
	for i := 0; i < 1000; i++ {
		seen[topo.ShardOf(command.Key(string(rune('a'+i%26))+string(rune('0'+i%10))+string(rune(i))))] = true
	}
	if len(seen) != 4 {
		t.Errorf("hash does not cover all shards: %v", seen)
	}
}

func TestClosestPerShard(t *testing.T) {
	topo := EC2Sharded(2)
	// Process of shard 0 in Ireland; the closest replica of shard 1 from
	// Ireland among {Ireland, NC, Singapore} is the Ireland one.
	p := topo.ProcessAt(0, 0)
	got := topo.ClosestPerShard(p, []ids.ShardID{0, 1})
	if got[0] != p {
		t.Errorf("own shard must map to self")
	}
	if topo.Process(got[1]).Site != 0 {
		t.Errorf("closest shard-1 replica should be co-located in Ireland, got site %d", topo.Process(got[1]).Site)
	}
}

func TestCmdProcesses(t *testing.T) {
	topo := EC2Sharded(2)
	// Find keys in different shards.
	var k0, k1 command.Key
	for i := 0; i < 100 && (k0 == "" || k1 == ""); i++ {
		k := command.Key(string(rune('a' + i)))
		if topo.ShardOf(k) == 0 && k0 == "" {
			k0 = k
		}
		if topo.ShardOf(k) == 1 && k1 == "" {
			k1 = k
		}
	}
	if k0 == "" || k1 == "" {
		t.Skip("could not find keys for both shards")
	}
	c := command.New(ids.Dot{Source: 1, Seq: 1},
		command.Op{Kind: command.Put, Key: k0},
		command.Op{Kind: command.Put, Key: k1})
	ps := topo.CmdProcesses(c)
	if len(ps) != 6 {
		t.Errorf("command across 2 shards should touch 6 processes, got %d", len(ps))
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config should fail")
	}
	if _, err := New(Config{SiteNames: []string{"a"}, RTT: [][]time.Duration{{0}}, F: 1}); err == nil {
		t.Error("f=1 with r=1 should fail")
	}
	rtt := EC2RTT()
	if _, err := New(Config{SiteNames: EC2Sites, RTT: rtt, F: 3}); err == nil {
		t.Error("f=3 with r=5 should fail")
	}
	if _, err := New(Config{SiteNames: EC2Sites, RTT: rtt[:3], F: 1}); err == nil {
		t.Error("ragged RTT should fail")
	}
}
