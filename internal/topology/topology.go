// Package topology describes the deployment of a PSMR system: geographic
// sites with pairwise latencies, shards, the processes replicating each
// shard, and quorum geometry (fast quorums of size ⌊r/2⌋+f, slow quorums
// of size f+1, recovery quorums of size r−f).
//
// It also ships the Amazon EC2 latency matrix from Table 2 of the paper
// (Appendix A), used by the evaluation experiments.
package topology

import (
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"tempo/internal/command"
	"tempo/internal/ids"
)

// Site is a geographic location hosting one process per shard.
type Site struct {
	ID   ids.SiteID
	Name string
}

// Process describes one replica process.
type Process struct {
	ID    ids.ProcessID
	Shard ids.ShardID
	Site  ids.SiteID
	Rank  ids.Rank // 1-based rank within the shard's replica group
}

// Topology is an immutable description of a deployment.
type Topology struct {
	sites  []Site
	procs  []Process
	rtt    [][]time.Duration // site x site round-trip times
	shards [][]ids.ProcessID // shard -> processes sorted by rank
	byID   map[ids.ProcessID]Process
	bySite map[ids.SiteID]map[ids.ShardID]ids.ProcessID
	n      int // replication factor r (same for every shard)
	f      int // tolerated failures
}

// Config configures New.
type Config struct {
	SiteNames []string
	RTT       [][]time.Duration // RTT[i][j] between SiteNames[i] and [j]
	NumShards int
	F         int
	// ShardSites[i] lists the site indices replicating shard i. If nil,
	// every shard is replicated at every site (full replication).
	ShardSites [][]int
}

// New builds a topology. Each listed site of a shard gets one process; the
// replication factor r of a shard is the number of sites replicating it.
// All shards must have the same replication factor.
func New(cfg Config) (*Topology, error) {
	ns := len(cfg.SiteNames)
	if ns == 0 {
		return nil, fmt.Errorf("topology: no sites")
	}
	if len(cfg.RTT) != ns {
		return nil, fmt.Errorf("topology: RTT matrix is %dx?, want %dx%d", len(cfg.RTT), ns, ns)
	}
	for i, row := range cfg.RTT {
		if len(row) != ns {
			return nil, fmt.Errorf("topology: RTT row %d has %d entries, want %d", i, len(row), ns)
		}
	}
	if cfg.NumShards <= 0 {
		cfg.NumShards = 1
	}
	shardSites := cfg.ShardSites
	if shardSites == nil {
		all := make([]int, ns)
		for i := range all {
			all[i] = i
		}
		shardSites = make([][]int, cfg.NumShards)
		for s := range shardSites {
			shardSites[s] = all
		}
	}
	if len(shardSites) != cfg.NumShards {
		return nil, fmt.Errorf("topology: ShardSites has %d entries, want %d", len(shardSites), cfg.NumShards)
	}
	r := len(shardSites[0])
	for s, ss := range shardSites {
		if len(ss) != r {
			return nil, fmt.Errorf("topology: shard %d has %d replicas, want %d", s, len(ss), r)
		}
	}
	if cfg.F < 1 || cfg.F > (r-1)/2 {
		return nil, fmt.Errorf("topology: f=%d out of range 1..%d for r=%d", cfg.F, (r-1)/2, r)
	}

	t := &Topology{
		rtt:    cfg.RTT,
		shards: make([][]ids.ProcessID, cfg.NumShards),
		byID:   make(map[ids.ProcessID]Process),
		bySite: make(map[ids.SiteID]map[ids.ShardID]ids.ProcessID),
		n:      r,
		f:      cfg.F,
	}
	for i, name := range cfg.SiteNames {
		t.sites = append(t.sites, Site{ID: ids.SiteID(i), Name: name})
		t.bySite[ids.SiteID(i)] = make(map[ids.ShardID]ids.ProcessID)
	}
	next := ids.ProcessID(1)
	for s := 0; s < cfg.NumShards; s++ {
		for rank, siteIdx := range shardSites[s] {
			if siteIdx < 0 || siteIdx >= ns {
				return nil, fmt.Errorf("topology: shard %d references site %d", s, siteIdx)
			}
			p := Process{
				ID:    next,
				Shard: ids.ShardID(s),
				Site:  ids.SiteID(siteIdx),
				Rank:  ids.Rank(rank + 1),
			}
			next++
			t.procs = append(t.procs, p)
			t.byID[p.ID] = p
			t.shards[s] = append(t.shards[s], p.ID)
			t.bySite[p.Site][p.Shard] = p.ID
		}
	}
	return t, nil
}

// R returns the replication factor of every shard.
func (t *Topology) R() int { return t.n }

// F returns the number of tolerated failures per shard.
func (t *Topology) F() int { return t.f }

// NumShards returns the number of shards.
func (t *Topology) NumShards() int { return len(t.shards) }

// Sites returns the sites.
func (t *Topology) Sites() []Site { return t.sites }

// Processes returns every process in the deployment.
func (t *Topology) Processes() []Process { return t.procs }

// Process returns the descriptor for a process id.
func (t *Topology) Process(id ids.ProcessID) Process { return t.byID[id] }

// ShardProcesses returns the processes replicating a shard (I_p), sorted
// by rank.
func (t *Topology) ShardProcesses(s ids.ShardID) []ids.ProcessID {
	return t.shards[s]
}

// ProcessAt returns the process of the given shard at the given site, or 0
// if the site does not replicate that shard.
func (t *Topology) ProcessAt(site ids.SiteID, shard ids.ShardID) ids.ProcessID {
	return t.bySite[site][shard]
}

// RTT returns the round-trip time between two processes' sites. Processes
// at the same site have IntraSiteRTT.
func (t *Topology) RTT(a, b ids.ProcessID) time.Duration {
	sa, sb := t.byID[a].Site, t.byID[b].Site
	return t.SiteRTT(sa, sb)
}

// IntraSiteRTT is the round-trip time between co-located processes.
const IntraSiteRTT = 500 * time.Microsecond

// SiteRTT returns the round-trip time between two sites.
func (t *Topology) SiteRTT(a, b ids.SiteID) time.Duration {
	if a == b {
		return IntraSiteRTT
	}
	return t.rtt[a][b]
}

// ShardOf maps a key to its shard by hashing. Keys of form "shard/rest"
// are not special-cased; the mapping is stable across processes.
func (t *Topology) ShardOf(k command.Key) ids.ShardID {
	if len(t.shards) == 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(k))
	return ids.ShardID(h.Sum32() % uint32(len(t.shards)))
}

// CmdShards returns the shards accessed by a command.
func (t *Topology) CmdShards(c *command.Command) []ids.ShardID {
	return c.Shards(t.ShardOf)
}

// CmdProcesses returns I_c: every process replicating a shard accessed by
// the command.
func (t *Topology) CmdProcesses(c *command.Command) []ids.ProcessID {
	var out []ids.ProcessID
	for _, s := range t.CmdShards(c) {
		out = append(out, t.shards[s]...)
	}
	return out
}

// ClosestPerShard returns I^i_c for a process i: for each shard accessed
// by the command, the replica of that shard whose site is closest to i's
// site (i itself for its own shard when i replicates one of them).
func (t *Topology) ClosestPerShard(i ids.ProcessID, shards []ids.ShardID) []ids.ProcessID {
	pi := t.byID[i]
	out := make([]ids.ProcessID, 0, len(shards))
	for _, s := range shards {
		if pi.Shard == s {
			out = append(out, i)
			continue
		}
		best := ids.ProcessID(0)
		var bestRTT time.Duration
		for _, q := range t.shards[s] {
			d := t.SiteRTT(pi.Site, t.byID[q].Site)
			if best == 0 || d < bestRTT {
				best, bestRTT = q, d
			}
		}
		out = append(out, best)
	}
	return out
}

// FastQuorum returns the fast quorum used by coordinator coord for its
// shard: the coordinator plus the size−1 other replicas of the shard
// closest to it by RTT. size is typically ⌊r/2⌋+f (Tempo/Atlas),
// ⌊3r/4⌋ (EPaxos) or ⌈3r/4⌉ (Caesar).
func (t *Topology) FastQuorum(coord ids.ProcessID, size int) []ids.ProcessID {
	p := t.byID[coord]
	others := make([]ids.ProcessID, 0, t.n-1)
	for _, q := range t.shards[p.Shard] {
		if q != coord {
			others = append(others, q)
		}
	}
	sort.Slice(others, func(i, j int) bool {
		di, dj := t.RTT(coord, others[i]), t.RTT(coord, others[j])
		if di != dj {
			return di < dj
		}
		return others[i] < others[j]
	})
	if size > t.n {
		size = t.n
	}
	q := make([]ids.ProcessID, 0, size)
	q = append(q, coord)
	q = append(q, others[:size-1]...)
	return q
}

// TempoFastQuorumSize is ⌊r/2⌋+f, shared by Tempo and Atlas.
func TempoFastQuorumSize(r, f int) int { return r/2 + f }

// EC2Sites are the five EC2 regions used in the paper's evaluation.
var EC2Sites = []string{"ireland", "n-california", "singapore", "canada", "sao-paulo"}

// EC2RTT returns the ping latency matrix of Table 2 (milliseconds, RTT).
func EC2RTT() [][]time.Duration {
	ms := func(v int) time.Duration { return time.Duration(v) * time.Millisecond }
	// Order: ireland, n-california, singapore, canada, sao-paulo.
	m := [][]int{
		{0, 141, 186, 72, 183},
		{141, 0, 181, 78, 190},
		{186, 181, 0, 221, 338},
		{72, 78, 221, 0, 123},
		{183, 190, 338, 123, 0},
	}
	out := make([][]time.Duration, len(m))
	for i, row := range m {
		out[i] = make([]time.Duration, len(row))
		for j, v := range row {
			out[i][j] = ms(v)
		}
	}
	return out
}

// EC2 builds the paper's 5-site full-replication topology with the given f.
func EC2(f int) *Topology {
	t, err := New(Config{SiteNames: EC2Sites, RTT: EC2RTT(), NumShards: 1, F: f})
	if err != nil {
		panic(err) // static configuration; cannot fail
	}
	return t
}

// EC2Sharded builds the paper's partial-replication topology (§6.4): each
// shard replicated at 3 sites (Ireland, N. California, Singapore) with the
// given number of shards and f=1.
func EC2Sharded(numShards int) *Topology {
	three := []int{0, 1, 2}
	ss := make([][]int, numShards)
	for i := range ss {
		ss[i] = three
	}
	t, err := New(Config{
		SiteNames:  EC2Sites,
		RTT:        EC2RTT(),
		NumShards:  numShards,
		F:          1,
		ShardSites: ss,
	})
	if err != nil {
		panic(err)
	}
	return t
}
