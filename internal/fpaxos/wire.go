package fpaxos

import (
	"encoding/gob"

	"tempo/internal/command"
	"tempo/internal/ids"
	"tempo/internal/proto"
)

// Binary wire codec for the FPaxos messages, mirroring the Tempo codec:
// hand-rolled, varint-based, append-style encoders (proto.BinaryMessage)
// plus registered decoders. Encodings are deterministic, so
// decode∘encode is the identity on bytes — pinned by
// FuzzCompareCodecRoundTrip in internal/engine.

// Wire tags. Tempo owns 1–14, EPaxos the 32-range; FPaxos owns the
// 48-range. Never reuse or renumber: the tag is the cross-version
// contract.
const (
	tagFForward byte = iota + 48
	tagFAccept
	tagFAcceptAck
	tagFCommit
	tagFSlotReq
)

func init() {
	proto.RegisterWire(tagFForward, decodeFForward)
	proto.RegisterWire(tagFAccept, decodeFAccept)
	proto.RegisterWire(tagFAcceptAck, decodeFAcceptAck)
	proto.RegisterWire(tagFCommit, decodeFCommit)
	proto.RegisterWire(tagFSlotReq, decodeFSlotReq)

	// Concrete-type registrations for the legacy gob peer codec.
	gob.Register(&FForward{})
	gob.Register(&FAccept{})
	gob.Register(&FAcceptAck{})
	gob.Register(&FCommit{})
	gob.Register(&FSlotReq{})
}

// --- shared field helpers ---

//
//tempo:noalloc
func appendCmds(buf []byte, cmds []*command.Command) []byte {
	buf = proto.AppendUvarint(buf, uint64(len(cmds)))
	for _, c := range cmds {
		buf = command.AppendCommand(buf, c)
	}
	return buf
}

func readCmds(b []byte) ([]*command.Command, []byte, error) {
	n, b, err := proto.ReadUvarint(b)
	if err != nil || n > uint64(len(b)) {
		return nil, b, proto.ErrCorrupt
	}
	var cmds []*command.Command // nil when empty, matching gob
	if n > 0 {
		cmds = make([]*command.Command, n)
	}
	for i := range cmds {
		if cmds[i], b, err = command.DecodeCommand(b); err != nil {
			return nil, b, err
		}
	}
	return cmds, b, nil
}

// --- per-message encoders and decoders ---

// WireTag implements proto.BinaryMessage.
func (m *FForward) WireTag() byte { return tagFForward }

// AppendBinary implements proto.BinaryMessage.
//
//tempo:noalloc
func (m *FForward) AppendBinary(buf []byte) []byte {
	return appendCmds(buf, m.Cmds)
}

func decodeFForward(b []byte) (proto.Message, []byte, error) {
	m := &FForward{}
	var err error
	if m.Cmds, b, err = readCmds(b); err != nil {
		return nil, b, err
	}
	return m, b, nil
}

// WireTag implements proto.BinaryMessage.
func (m *FAccept) WireTag() byte { return tagFAccept }

// AppendBinary implements proto.BinaryMessage.
//
//tempo:noalloc
func (m *FAccept) AppendBinary(buf []byte) []byte {
	buf = proto.AppendUvarint(buf, m.Slot)
	buf = proto.AppendUvarint(buf, uint64(m.Ballot))
	return appendCmds(buf, m.Cmds)
}

func decodeFAccept(b []byte) (proto.Message, []byte, error) {
	m := &FAccept{}
	var err error
	if m.Slot, b, err = proto.ReadUvarint(b); err != nil {
		return nil, b, err
	}
	var bal uint64
	if bal, b, err = proto.ReadUvarint(b); err != nil {
		return nil, b, err
	}
	m.Ballot = ids.Ballot(bal)
	if m.Cmds, b, err = readCmds(b); err != nil {
		return nil, b, err
	}
	return m, b, nil
}

// WireTag implements proto.BinaryMessage.
func (m *FAcceptAck) WireTag() byte { return tagFAcceptAck }

// AppendBinary implements proto.BinaryMessage.
//
//tempo:noalloc
func (m *FAcceptAck) AppendBinary(buf []byte) []byte {
	buf = proto.AppendUvarint(buf, m.Slot)
	return proto.AppendUvarint(buf, uint64(m.Ballot))
}

func decodeFAcceptAck(b []byte) (proto.Message, []byte, error) {
	m := &FAcceptAck{}
	var err error
	if m.Slot, b, err = proto.ReadUvarint(b); err != nil {
		return nil, b, err
	}
	var bal uint64
	if bal, b, err = proto.ReadUvarint(b); err != nil {
		return nil, b, err
	}
	m.Ballot = ids.Ballot(bal)
	return m, b, nil
}

// WireTag implements proto.BinaryMessage.
func (m *FCommit) WireTag() byte { return tagFCommit }

// AppendBinary implements proto.BinaryMessage.
//
//tempo:noalloc
func (m *FCommit) AppendBinary(buf []byte) []byte {
	buf = proto.AppendUvarint(buf, m.Slot)
	return appendCmds(buf, m.Cmds)
}

func decodeFCommit(b []byte) (proto.Message, []byte, error) {
	m := &FCommit{}
	var err error
	if m.Slot, b, err = proto.ReadUvarint(b); err != nil {
		return nil, b, err
	}
	if m.Cmds, b, err = readCmds(b); err != nil {
		return nil, b, err
	}
	return m, b, nil
}

// WireTag implements proto.BinaryMessage.
func (m *FSlotReq) WireTag() byte { return tagFSlotReq }

// AppendBinary implements proto.BinaryMessage.
//
//tempo:noalloc
func (m *FSlotReq) AppendBinary(buf []byte) []byte {
	return proto.AppendUvarint(buf, m.Next)
}

func decodeFSlotReq(b []byte) (proto.Message, []byte, error) {
	m := &FSlotReq{}
	var err error
	if m.Next, b, err = proto.ReadUvarint(b); err != nil {
		return nil, b, err
	}
	return m, b, nil
}
