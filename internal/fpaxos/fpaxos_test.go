package fpaxos

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"tempo/internal/check"
	"tempo/internal/command"
	"tempo/internal/ids"
	"tempo/internal/proto"
	"tempo/internal/testnet"
	"tempo/internal/topology"
)

func makeNet(t *testing.T, f int, cfg Config) (*topology.Topology, map[ids.ProcessID]*Process, *testnet.Net) {
	t.Helper()
	topo := topology.EC2(f)
	procs := make(map[ids.ProcessID]*Process)
	var reps []proto.Replica
	for _, pi := range topo.Processes() {
		p := New(pi.ID, topo, cfg)
		procs[pi.ID] = p
		reps = append(reps, p)
	}
	return topo, procs, testnet.New(reps...)
}

func TestLeaderCommitsAndAllExecute(t *testing.T) {
	topo, procs, net := makeNet(t, 1, Config{})
	leader := topo.ProcessAt(0, 0) // rank 1 is site 0
	c := command.NewPut(procs[leader].NextID(), "k", []byte("v"))
	net.Submit(leader, c)
	net.Drain(0)
	for pid, p := range procs {
		ex := p.Drain()
		if len(ex) != 1 || ex[0].Cmd.ID != c.ID {
			t.Fatalf("process %d executed %d commands", pid, len(ex))
		}
		if v, ok := p.Store().Get("k"); !ok || string(v) != "v" {
			t.Errorf("process %d store missing k", pid)
		}
	}
}

func TestFollowerForwardsToLeader(t *testing.T) {
	topo, procs, net := makeNet(t, 1, Config{})
	follower := topo.ProcessAt(2, 0)
	leader := topo.ProcessAt(0, 0)
	c := command.NewPut(procs[follower].NextID(), "k", []byte("v"))
	net.Submit(follower, c)
	net.Drain(0)
	if procs[leader].Proposed() != 1 {
		t.Error("leader should have proposed the forwarded command")
	}
	if procs[follower].Proposed() != 0 {
		t.Error("follower must not propose")
	}
	if len(procs[follower].Drain()) != 1 {
		t.Error("follower should execute the committed command")
	}
}

func TestTotalOrderUnderConcurrency(t *testing.T) {
	topo, procs, net := makeNet(t, 2, Config{})
	net.Rng = rand.New(rand.NewSource(7))
	chk := check.New()
	n := 0
	for site := 0; site < 5; site++ {
		p := procs[topo.ProcessAt(ids.SiteID(site), 0)]
		for k := 0; k < 6; k++ {
			c := command.NewPut(p.NextID(), command.Key(fmt.Sprintf("k%d", k%2)), nil)
			chk.Submitted(c)
			net.Submit(p.ID(), c)
			n++
		}
	}
	net.Drain(0)
	for pid, p := range procs {
		var order []ids.Dot
		for _, e := range p.Drain() {
			order = append(order, e.Cmd.ID)
		}
		if len(order) != n {
			t.Fatalf("process %d executed %d/%d", pid, len(order), n)
		}
		chk.Executed(check.Log{Process: pid, Shard: 0, Order: order})
	}
	if err := chk.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := chk.VerifyTotalOrder(); err != nil {
		t.Fatal(err)
	}
}

func TestBatchingAggregates(t *testing.T) {
	topo, procs, net := makeNet(t, 1, Config{Batching: true, BatchWindow: 5 * time.Millisecond, MaxBatch: 100})
	leader := topo.ProcessAt(0, 0)
	p := procs[leader]
	for i := 0; i < 10; i++ {
		net.Submit(leader, command.NewPut(p.NextID(), command.Key(fmt.Sprintf("k%d", i)), nil))
	}
	// Nothing proposed yet: the batch window has not elapsed.
	if p.Proposed() != 0 {
		t.Fatal("batch flushed too early")
	}
	net.Settle(2, 6*time.Millisecond)
	if p.Proposed() != 1 {
		t.Fatalf("proposed %d slots, want 1 batch", p.Proposed())
	}
	if got := len(p.Drain()); got != 10 {
		t.Fatalf("executed %d commands, want 10", got)
	}
}

func TestBatchingMaxBatchFlushesEarly(t *testing.T) {
	topo, procs, net := makeNet(t, 1, Config{Batching: true, BatchWindow: time.Hour, MaxBatch: 4})
	leader := topo.ProcessAt(0, 0)
	p := procs[leader]
	for i := 0; i < 4; i++ {
		net.Submit(leader, command.NewPut(p.NextID(), "k", nil))
	}
	net.Drain(0)
	if p.Proposed() != 1 {
		t.Fatalf("proposed %d, want 1 (size-triggered flush)", p.Proposed())
	}
}

func TestFollowerBatchForwarding(t *testing.T) {
	topo, procs, net := makeNet(t, 1, Config{Batching: true, BatchWindow: 5 * time.Millisecond})
	follower := topo.ProcessAt(3, 0)
	p := procs[follower]
	for i := 0; i < 7; i++ {
		net.Submit(follower, command.NewPut(p.NextID(), "k", nil))
	}
	net.Settle(3, 6*time.Millisecond)
	leader := procs[topo.ProcessAt(0, 0)]
	if leader.Proposed() != 1 {
		t.Fatalf("leader proposed %d slots, want 1 forwarded batch", leader.Proposed())
	}
	if got := len(p.Drain()); got != 7 {
		t.Fatalf("follower executed %d, want 7", got)
	}
}

func TestQuorumIsFPlusOne(t *testing.T) {
	// With f=1 and 5 replicas, FAccept must reach exactly 2 processes.
	topo, procs, net := makeNet(t, 1, Config{})
	leader := topo.ProcessAt(0, 0)
	accepts := 0
	net.Hold = func(e testnet.Env) bool {
		if _, ok := e.Msg.(*FAccept); ok {
			accepts++
		}
		return false
	}
	net.Submit(leader, command.NewPut(procs[leader].NextID(), "k", nil))
	net.Drain(0)
	// Leader self-accept is internal; one external FAccept (f+1 = 2
	// total, one of which is the leader itself).
	if accepts != 1 {
		t.Errorf("external FAccepts = %d, want 1 (quorum f+1 includes leader)", accepts)
	}
}

func TestLeaderChangeRedirectsForwards(t *testing.T) {
	topo, procs, net := makeNet(t, 1, Config{})
	oldLeader := topo.ProcessAt(0, 0) // rank 1
	newLeader := topo.ProcessAt(1, 0) // rank 2
	follower := topo.ProcessAt(3, 0)

	// The oracle switches everyone to rank 2.
	net.SetLeader(2)
	c := command.NewPut(procs[follower].NextID(), "k", []byte("v"))
	net.Submit(follower, c)
	net.Drain(0)
	if procs[oldLeader].Proposed() != 0 {
		t.Error("old leader must not propose after the switch")
	}
	if procs[newLeader].Proposed() != 1 {
		t.Error("new leader should have proposed the forwarded command")
	}
	if len(procs[follower].Drain()) != 1 {
		t.Error("command should still execute at the follower")
	}
}

func TestStaleForwardReForwarded(t *testing.T) {
	topo, procs, net := makeNet(t, 1, Config{})
	stale := topo.ProcessAt(4, 0) // rank 5, still believes rank 1 leads
	// The rest of the cluster has moved to rank 3; the old leader
	// re-forwards the stale submission to the new one.
	for pid, p := range procs {
		if pid != stale {
			p.SetLeader(3)
		}
	}
	c := command.NewPut(procs[stale].NextID(), "k", nil)
	net.Submit(stale, c)
	net.Drain(0)
	if got := procs[topo.ProcessAt(2, 0)].Proposed(); got != 1 {
		t.Fatalf("new leader proposed %d, want 1 (re-forwarded)", got)
	}
	if procs[topo.ProcessAt(0, 0)].Proposed() != 0 {
		t.Error("old leader must not propose")
	}
	if len(procs[stale].Drain()) != 1 {
		t.Error("command should execute despite the stale leader view")
	}
}
