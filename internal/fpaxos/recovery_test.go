package fpaxos

import (
	"testing"
	"time"

	"tempo/internal/command"
	"tempo/internal/testnet"
)

// The cluster runtime delivers Tick to every engine identically; these
// tests pin down that FPaxos turns those ticks into actual recovery on a
// lossy transport — the leader re-runs phase 2 for a stalled slot, and a
// follower with a stuck execution cursor requests decided slots back.

// TestLeaderResendsStalledAccept cuts the leader's FAccept to the other
// phase-2 quorum member, so the slot stalls below quorum. Ticking past
// ResendInterval must re-run phase 2 and commit everywhere.
func TestLeaderResendsStalledAccept(t *testing.T) {
	topo, procs, net := makeNet(t, 1, Config{ResendInterval: 10 * time.Millisecond})
	leader := topo.ProcessAt(0, 0)
	drop := true
	net.Drop = func(e testnet.Env) bool {
		_, isAcc := e.Msg.(*FAccept)
		return drop && isAcc && e.To != leader
	}
	c := command.NewPut(procs[leader].NextID(), "k", []byte("v"))
	net.Submit(leader, c)
	net.Drain(0)
	if len(procs[leader].Drain()) != 0 {
		t.Fatal("slot committed despite dropped accepts")
	}
	drop = false
	net.Settle(4, 20*time.Millisecond)
	for pid, p := range procs {
		if v, ok := p.Store().Get("k"); !ok || string(v) != "v" {
			t.Errorf("process %d store missing k after recovery (got %q)", pid, v)
		}
	}
}

// TestSlotReqCatchesUpMissedCommit loses slot 1's FCommit at one
// follower; when slot 2 decides, that follower's execution cursor is
// stuck behind the gap. Ticking past ResendInterval must issue FSlotReq
// and replay both slots in order.
func TestSlotReqCatchesUpMissedCommit(t *testing.T) {
	topo, procs, net := makeNet(t, 1, Config{ResendInterval: 10 * time.Millisecond})
	leader := topo.ProcessAt(0, 0)
	lagger := topo.ProcessAt(4, 0)
	drop := true
	net.Drop = func(e testnet.Env) bool {
		fc, isFC := e.Msg.(*FCommit)
		return drop && isFC && fc.Slot == 1 && e.To == lagger
	}
	c1 := command.NewPut(procs[leader].NextID(), "k", []byte("v1"))
	net.Submit(leader, c1)
	net.Drain(0)
	c2 := command.NewPut(procs[leader].NextID(), "k", []byte("v2"))
	net.Submit(leader, c2)
	net.Drain(0)
	drop = false
	if ex := procs[lagger].Drain(); len(ex) != 0 {
		t.Fatalf("lagger executed %d commands across the gap", len(ex))
	}
	net.Settle(4, 20*time.Millisecond)
	ex := procs[lagger].Drain()
	if len(ex) != 2 || ex[0].Cmd.ID != c1.ID || ex[1].Cmd.ID != c2.ID {
		t.Fatalf("lagger executed %d commands after recovery, want [c1 c2]", len(ex))
	}
	if v, ok := procs[lagger].Store().Get("k"); !ok || string(v) != "v2" {
		t.Errorf("lagger store k = %q, want v2", v)
	}
}
